// Tiny-transformer generation: an end-to-end *functional* demonstration
// that a pruned, TCA-BME-encoded model generates exactly the same tokens as
// its dense counterpart — the property that makes SpInfer a drop-in
// replacement for dense inference.
//
// Usage: tiny_generation [--sparsity=0.5] [--steps=12]
#include <cstdio>

#include "src/llm/tiny_transformer.h"
#include "src/pruning/magnitude.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace spinfer;
  const CliFlags flags(argc, argv);
  const double sparsity = flags.GetDouble("sparsity", 0.5);
  const int steps = static_cast<int>(flags.GetInt("steps", 12));

  TinyConfig cfg;
  cfg.vocab = 128;
  cfg.hidden = 64;
  cfg.layers = 2;
  cfg.heads = 4;
  cfg.ffn = 128;
  cfg.max_seq = 48;
  TinyTransformer model(cfg, /*seed=*/2025);

  std::printf("tiny transformer: %ld layers, hidden %ld, vocab %ld\n",
              static_cast<long>(cfg.layers), static_cast<long>(cfg.hidden),
              static_cast<long>(cfg.vocab));
  std::printf("dense weights: %s\n", FormatBytes(model.DenseWeightBytes()).c_str());

  model.PruneWeights(MagnitudePruner(), sparsity);
  std::printf("pruned to %.1f%% sparsity; TCA-BME weights: %s\n",
              100.0 * model.WeightSparsity(),
              FormatBytes(model.EncodedWeightBytes()).c_str());

  const std::vector<int32_t> prompt = {10, 42, 7};
  const auto dense_out = model.Generate(prompt, steps, MatmulBackend::kDense);
  const auto sparse_out = model.Generate(prompt, steps, MatmulBackend::kTcaBmeCpu);

  auto print_tokens = [](const char* label, const std::vector<int32_t>& toks) {
    std::printf("%-22s", label);
    for (int32_t t : toks) {
      std::printf(" %3d", t);
    }
    std::printf("\n");
  };
  print_tokens("dense backend:", dense_out);
  print_tokens("TCA-BME CPU backend:", sparse_out);
  const bool match = dense_out == sparse_out;
  std::printf("greedy decodes %s\n", match ? "MATCH exactly" : "DIVERGE");
  return match ? 0 : 1;
}
