// Prune-and-infer: the per-layer workflow the paper's end-to-end system
// applies to OPT — prune a dense projection layer with Wanda (activation-
// aware, 60% sparsity), compare against magnitude pruning, encode the
// survivor to TCA-BME, and run the SpMM, reporting output fidelity and
// memory savings.
//
// Usage: prune_and_infer [--rows=2048] [--cols=2048] [--sparsity=0.6]
#include <cmath>
#include <cstdio>

#include "src/core/spinfer.h"
#include "src/pruning/calibration.h"
#include "src/pruning/magnitude.h"
#include "src/pruning/wanda.h"
#include "src/util/cli.h"
#include "src/util/random.h"
#include "src/util/table.h"

namespace {

// Relative output error of the pruned layer vs the dense layer.
double OutputRelError(const spinfer::HalfMatrix& dense, const spinfer::HalfMatrix& pruned,
                      const spinfer::HalfMatrix& x) {
  using namespace spinfer;
  const FloatMatrix want = ReferenceGemm(dense, x);
  const FloatMatrix got = ReferenceGemm(pruned, x);
  double num = 0.0;
  double den = 0.0;
  for (int64_t i = 0; i < want.size(); ++i) {
    const double d = got.data()[i] - want.data()[i];
    num += d * d;
    den += static_cast<double>(want.data()[i]) * want.data()[i];
  }
  return std::sqrt(num / (den + 1e-30));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spinfer;
  const CliFlags flags(argc, argv);
  const int64_t rows = flags.GetInt("rows", 2048);
  const int64_t cols = flags.GetInt("cols", 2048);
  const double sparsity = flags.GetDouble("sparsity", 0.6);

  Rng rng(7);
  const HalfMatrix dense = HalfMatrix::Random(rows, cols, rng, 0.05f);

  // Calibration activations with transformer-style outlier channels; the
  // probe X reuses the same per-feature scales so Wanda's advantage shows.
  CalibrationConfig cal;
  cal.num_features = cols;
  Rng cal_rng(8);
  const auto norms = SyntheticFeatureNorms(cal, cal_rng);
  HalfMatrix x = HalfMatrix::Random(cols, 16, rng, 1.0f);
  for (int64_t r = 0; r < x.rows(); ++r) {
    const float scale = norms[r] / std::sqrt(128.0f);
    for (int64_t c = 0; c < x.cols(); ++c) {
      x.at(r, c) = Half(x.at(r, c).ToFloat() * scale);
    }
  }

  std::printf("Layer %ldx%ld, target sparsity %.0f%%\n\n", static_cast<long>(rows),
              static_cast<long>(cols), sparsity * 100);

  Table t({"pruner", "sparsity", "output rel err", "TCA-BME bytes", "CR"});
  const WandaPruner wanda(norms);
  const MagnitudePruner magnitude;
  HalfMatrix chosen;
  for (const Pruner* pruner : std::initializer_list<const Pruner*>{&wanda, &magnitude}) {
    const HalfMatrix pruned = pruner->Prune(dense, sparsity);
    const TcaBmeMatrix enc = TcaBmeMatrix::Encode(pruned);
    t.AddRow({pruner->name(), FormatF(100 * pruned.Sparsity(), 1) + "%",
              FormatF(OutputRelError(dense, pruned, x), 4),
              FormatBytes(enc.StorageBytes()), FormatF(enc.CompressionRatio(), 2) + "x"});
    if (pruner->name() == "wanda") {
      chosen = pruned;
    }
  }
  std::printf("%s\n", t.Render().c_str());

  // Run the SpInfer kernel on the Wanda-pruned layer, verify, and price it.
  const SpInferSpmmKernel kernel;
  PerfCounters counters;
  const FloatMatrix out = kernel.Run(chosen, x, &counters);
  const CompareResult check = CompareMatrices(out, ReferenceGemm(chosen, x), 2e-3, 5e-2);
  std::printf("SpInfer-SpMM on the pruned layer: %s\n", check.ok ? "VERIFIED" : "WRONG");

  SpmmProblem p;
  p.m = rows;
  p.k = cols;
  p.n = 16;
  p.sparsity = chosen.Sparsity();
  const double sparse_us = kernel.Estimate(p, Rtx4090()).time.total_us;
  p.sparsity = 0.0;
  std::printf("modeled RTX4090 time: %.1f us sparse (dense layer: 2x weight bytes)\n",
              sparse_us);
  return check.ok ? 0 : 1;
}
