// LLM serving simulator: size a deployment before buying GPUs.
//
// Given a model, device, batch and generation length, reports for each
// framework whether the configuration fits in memory, the modeled latency
// and throughput, and the time breakdown — the decision the paper's Figs.
// 13-15 inform.
//
// Usage: llm_serving_sim [--model=opt-13b] [--device=rtx4090] [--gpus=1]
//                        [--batch=16] [--input=128] [--output=256]
//                        [--sparsity=0.6]
#include <cstdio>

#include "src/llm/engine.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace spinfer;
  const CliFlags flags(argc, argv);
  EngineConfig cfg;
  cfg.model = ModelByName(flags.GetString("model", "opt-13b"));
  cfg.device = DeviceByName(flags.GetString("device", "rtx4090"));
  cfg.num_gpus = static_cast<int>(flags.GetInt("gpus", 1));
  cfg.batch = flags.GetInt("batch", 16);
  cfg.input_len = flags.GetInt("input", 128);
  cfg.output_len = flags.GetInt("output", 256);
  cfg.sparsity = flags.GetDouble("sparsity", 0.6);

  std::printf("%s on %dx %s | batch %ld | %ld in + %ld out tokens | sparsity %.0f%%\n\n",
              cfg.model.name.c_str(), cfg.num_gpus, cfg.device.name.c_str(),
              static_cast<long>(cfg.batch), static_cast<long>(cfg.input_len),
              static_cast<long>(cfg.output_len), cfg.sparsity * 100);

  Table t({"framework", "memory/GPU", "fits", "latency", "tok/s", "SpMM%", "MHA%",
           "COMM%"});
  for (Framework f : {Framework::kFasterTransformer, Framework::kDeepSpeed,
                      Framework::kFlashLlm, Framework::kSpInfer}) {
    cfg.framework = f;
    const InferenceReport r = SimulateInference(cfg);
    if (r.oom) {
      t.AddRow({FrameworkName(f), FormatBytes(r.memory.TotalBytes()), "OOM", "-", "-",
                "-", "-", "-"});
      continue;
    }
    const double linear = r.prefill.linear_us + r.decode.linear_us;
    const double attn = r.prefill.attention_us + r.decode.attention_us;
    const double comm = r.prefill.comm_us + r.decode.comm_us;
    const double total = r.total_ms * 1e3;
    t.AddRow({FrameworkName(f), FormatBytes(r.memory.TotalBytes()), "yes",
              FormatF(r.total_ms, 0) + "ms", FormatF(r.tokens_per_second, 0),
              FormatF(100 * linear / total, 1), FormatF(100 * attn / total, 1),
              FormatF(100 * comm / total, 1)});
  }
  std::printf("%s\n", t.Render().c_str());
  std::printf("Tip: sweep --gpus and --batch to find the cheapest configuration that\n"
              "fits; SpInfer's TCA-BME weights often halve the GPU count.\n");
  return 0;
}
