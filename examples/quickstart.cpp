// Quickstart: the 40-line tour of the SpInfer library.
//
//   1. make a sparse FP16 weight matrix (as a pruner would produce),
//   2. encode it into TCA-BME (watch the compression ratio),
//   3. run the SpInfer-SpMM kernel and verify against the reference GEMM,
//   4. ask the cost model what this would cost on an RTX 4090.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/core/spinfer.h"
#include "src/util/random.h"

int main() {
  using namespace spinfer;

  // 1. A 60%-sparse 1024x1024 weight matrix and a decode-phase activation.
  Rng rng(42);
  const HalfMatrix w = HalfMatrix::RandomSparse(1024, 1024, /*sparsity=*/0.6, rng);
  const HalfMatrix x = HalfMatrix::Random(1024, /*n=*/16, rng, 0.5f);
  std::printf("weights: %ldx%ld, sparsity %.1f%%\n", static_cast<long>(w.rows()),
              static_cast<long>(w.cols()), 100.0 * w.Sparsity());

  // 2. Encode: bitmap indexing costs 1 bit/element instead of >=16
  //    bits/nonzero, so compression beats 1.0 even at this sparsity.
  const TcaBmeMatrix encoded = TcaBmeMatrix::Encode(w);
  std::printf("TCA-BME: %lu bytes (dense would be %ld), compression ratio %.2fx\n",
              static_cast<unsigned long>(encoded.StorageBytes()),
              static_cast<long>(2 * w.rows() * w.cols()), encoded.CompressionRatio());

  // 3. Run the kernel (functional GPU simulation) and verify.
  const SpInferSpmmKernel kernel;
  PerfCounters counters;
  const FloatMatrix out = kernel.RunEncoded(encoded, x, &counters);
  const CompareResult check = CompareMatrices(out, ReferenceGemm(w, x), 2e-3, 5e-2);
  std::printf("SpMM output %s (max rel err %.2e); %lu Tensor Core mma ops, %lu DRAM bytes\n",
              check.ok ? "VERIFIED" : "WRONG", check.max_rel_err,
              static_cast<unsigned long>(counters.mma_instrs),
              static_cast<unsigned long>(counters.dram_bytes_read));

  // 4. Modeled GPU cost vs dense cuBLAS on an RTX 4090.
  SpmmProblem problem;
  problem.m = w.rows();
  problem.k = w.cols();
  problem.n = x.cols();
  problem.sparsity = w.Sparsity();
  const DeviceSpec dev = Rtx4090();
  const KernelEstimate est = kernel.Estimate(problem, dev);
  std::printf("modeled RTX4090 time: %.1f us (%.0f%% of peak DRAM bandwidth)\n",
              est.time.total_us, 100.0 * est.time.bw_utilization);
  return check.ok ? 0 : 1;
}
