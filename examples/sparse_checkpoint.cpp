// Sparse checkpoint workflow: the offline/online split of a real deployment.
//
//   offline: prune each layer (SparseGPT-style with OBS compensation),
//            encode to TCA-BME, and save a WeightBundle checkpoint;
//   online:  load the checkpoint (CRC-verified), and serve matmuls from the
//            encoded weights without ever materializing them densely.
//
// Usage: sparse_checkpoint [--hidden=512] [--layers=2] [--sparsity=0.6]
//                          [--path=/tmp/spinfer_ckpt.spwb]
#include <cstdio>

#include "src/core/cpu_backend.h"
#include "src/format/serialize.h"
#include "src/numeric/compare.h"
#include "src/pruning/sparsegpt.h"
#include "src/util/cli.h"
#include "src/util/random.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace spinfer;
  const CliFlags flags(argc, argv);
  const int64_t hidden = flags.GetInt("hidden", 512);
  const int64_t layers = flags.GetInt("layers", 2);
  const double sparsity = flags.GetDouble("sparsity", 0.6);
  const std::string path = flags.GetString("path", "/tmp/spinfer_ckpt.spwb");

  // ---- Offline: prune + encode + save. -------------------------------------
  Rng rng(99);
  const int64_t samples = 64;
  std::vector<float> calibration(static_cast<size_t>(samples * hidden));
  for (auto& v : calibration) {
    v = static_cast<float>(rng.Gaussian());
  }
  const SparseGptPruner pruner(calibration, samples, hidden);

  WeightBundle bundle;
  std::vector<HalfMatrix> pruned_layers;
  uint64_t dense_bytes = 0;
  for (int64_t l = 0; l < layers; ++l) {
    const HalfMatrix dense = HalfMatrix::Random(hidden, hidden, rng, 0.05f);
    dense_bytes += 2ull * dense.size();
    const HalfMatrix pruned = pruner.Prune(dense, sparsity);
    pruned_layers.push_back(pruned);
    bundle.Add("layer" + std::to_string(l) + ".weight", TcaBmeMatrix::Encode(pruned));
  }
  std::string error;
  if (!bundle.Save(path, &error)) {
    std::printf("save failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("checkpoint: %zu layers, %s encoded (dense would be %s) -> %s\n",
              bundle.size(), FormatBytes(bundle.TotalStorageBytes()).c_str(),
              FormatBytes(dense_bytes).c_str(), path.c_str());

  // ---- Online: load + serve. ------------------------------------------------
  const auto loaded = WeightBundle::Load(path, &error);
  if (!loaded) {
    std::printf("load failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("loaded and CRC-verified %zu layers\n", loaded->size());

  const HalfMatrix x = HalfMatrix::Random(hidden, 16, rng, 0.5f);
  bool all_ok = true;
  for (int64_t l = 0; l < layers; ++l) {
    const TcaBmeMatrix* w = loaded->Find("layer" + std::to_string(l) + ".weight");
    if (w == nullptr) {
      std::printf("layer %ld missing from checkpoint\n", static_cast<long>(l));
      return 1;
    }
    const FloatMatrix out = CpuSpmm(*w, x);
    const CompareResult check =
        CompareMatrices(out, ReferenceGemm(pruned_layers[static_cast<size_t>(l)], x),
                        2e-3, 5e-2);
    std::printf("layer %ld: SpMM from checkpoint %s (CR %.2fx)\n", static_cast<long>(l),
                check.ok ? "VERIFIED" : "WRONG", w->CompressionRatio());
    all_ok = all_ok && check.ok;
  }
  std::remove(path.c_str());
  return all_ok ? 0 : 1;
}
