// Format explorer: interactive what-if tool for sparse weight storage.
//
// For a weight shape and sparsity, prints every format's exact storage
// footprint, compression ratio, roofline compute intensity, and the modeled
// SpMM time on both evaluation GPUs — the full §3 analysis of the paper for
// any matrix you care about.
//
// Usage: format_explorer [--m=4096] [--k=4096] [--n=16] [--sparsity=0.5]
//                        [--measure] (also encode a real matrix, slower)
#include <cstdio>

#include "src/baselines/kernel_registry.h"
#include "src/format/csr.h"
#include "src/format/sparta_format.h"
#include "src/format/storage_model.h"
#include "src/format/tca_bme.h"
#include "src/format/tiled_csl.h"
#include "src/roofline/roofline.h"
#include "src/util/cli.h"
#include "src/util/random.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace spinfer;
  const CliFlags flags(argc, argv);
  const int64_t m = flags.GetInt("m", 4096);
  const int64_t k = flags.GetInt("k", 4096);
  const int64_t n = flags.GetInt("n", 16);
  const double s = flags.GetDouble("sparsity", 0.5);
  const int64_t nnz = static_cast<int64_t>(m * k * (1.0 - s));

  std::printf("W: %ldx%ld at %.0f%% sparsity (%ld nonzeros), X: %ldx%ld\n\n",
              static_cast<long>(m), static_cast<long>(k), s * 100,
              static_cast<long>(nnz), static_cast<long>(k), static_cast<long>(n));

  Table t({"format", "bytes", "CR", "CI (Eq.7)"});
  const uint64_t dense_bytes = 2ull * m * k;
  auto add = [&](const char* name, uint64_t bytes) {
    const double cr = CompressionRatio(m, k, bytes);
    t.AddRow({name, FormatBytes(bytes), FormatF(cr, 3), FormatF(CiSpmm(m, n, cr), 1)});
  };
  add("dense (FP16)", dense_bytes);
  add("CSR", CsrStorageModel(m, nnz));
  add("Tiled-CSL", TiledCslStorageModel((m / 64) * (k / 64), nnz));
  add("SparTA 2:4+CSR", SpartaStorageModel(m, k, s));
  add("TCA-BME", TcaBmeStorageModel(m, k, nnz));
  t.AddRow({"optimal", FormatBytes(static_cast<uint64_t>(2.0 * m * k * (1 - s))),
            FormatF(OptimalCompressionRatio(s), 3), FormatF(CiOptimal(m, n, s), 1)});
  std::printf("%s\n", t.Render().c_str());

  for (const DeviceSpec& dev : {Rtx4090(), A6000()}) {
    Table kt({"kernel", "modeled time (us)", "speedup vs cuBLAS"});
    SpmmProblem p;
    p.m = m;
    p.k = k;
    p.n = n;
    p.sparsity = s;
    const double cublas = MakeKernel("cublas_tc")->Estimate(p, dev).time.total_us;
    for (const std::string& name : KernelNames()) {
      const double time = MakeKernel(name)->Estimate(p, dev).time.total_us;
      kt.AddRow({name, FormatF(time, 1), FormatF(cublas / time, 2) + "x"});
    }
    std::printf("on %s:\n%s\n", dev.name.c_str(), kt.Render().c_str());
  }

  if (flags.GetBool("measure", false)) {
    // Byte-exact validation on a real (smaller) sample.
    const int64_t dim = std::min<int64_t>(1024, std::min(m, k));
    Rng rng(9);
    const HalfMatrix w = HalfMatrix::RandomSparse(dim, dim, s, rng);
    std::printf("byte-exact encoders on a %ldx%ld sample:\n", static_cast<long>(dim),
                static_cast<long>(dim));
    std::printf("  CSR       %10lu B\n",
                static_cast<unsigned long>(CsrMatrix::Encode(w).StorageBytes()));
    std::printf("  Tiled-CSL %10lu B\n",
                static_cast<unsigned long>(TiledCslMatrix::Encode(w).StorageBytes()));
    std::printf("  SparTA    %10lu B\n",
                static_cast<unsigned long>(SpartaMatrix::Encode(w).StorageBytes()));
    std::printf("  TCA-BME   %10lu B\n",
                static_cast<unsigned long>(TcaBmeMatrix::Encode(w).StorageBytes()));
  }
  return 0;
}
