// spinfer_cli: offline tooling for sparse weight checkpoints.
//
//   spinfer_cli gen     --rows R --cols C --sparsity S --out w.f16
//       Generate a raw row-major FP16 matrix (synthetic Gaussian weights).
//   spinfer_cli encode  --in w.f16 --rows R --cols C --out w.tcbm
//                       [--prune magnitude|random --sparsity S]
//       Optionally prune, then encode to a TCA-BME container.
//   spinfer_cli inspect --in w.tcbm
//       Print geometry, nnz, compression ratio, and per-GroupTile stats.
//   spinfer_cli time    --in w.tcbm [--n 16] [--device rtx4090] [--split-k 0]
//       Modeled GPU kernel time vs dense cuBLAS for this matrix.
//   spinfer_cli cuda    --out kernel.cu [--gt-rows 64] [--gt-cols 64]
//                       [--split-k 0]
//       Emit the CUDA C++ SpInfer-SpMM kernel for a real GPU build.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/baselines/cublas_gemm.h"
#include "src/codegen/cuda_codegen.h"
#include "src/core/spinfer_kernel.h"
#include "src/format/serialize.h"
#include "src/pruning/magnitude.h"
#include "src/pruning/pruner.h"
#include "src/util/cli.h"
#include "src/util/random.h"
#include "src/util/table.h"

namespace spinfer {
namespace {

bool WriteRawF16(const std::string& path, const HalfMatrix& m) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(m.data(), sizeof(Half), static_cast<size_t>(m.size()), f) ==
                  static_cast<size_t>(m.size());
  std::fclose(f);
  return ok;
}

bool ReadRawF16(const std::string& path, int64_t rows, int64_t cols, HalfMatrix* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  *out = HalfMatrix(rows, cols);
  const bool ok = std::fread(out->data(), sizeof(Half), static_cast<size_t>(out->size()),
                             f) == static_cast<size_t>(out->size());
  std::fclose(f);
  return ok;
}

// Flag validation shared by the subcommands. Bad values are rejected up
// front with the offending flag named, before any file I/O happens.
bool ValidatePositive(const char* flag, int64_t v) {
  if (v >= 1) {
    return true;
  }
  std::printf("error: --%s must be >= 1 (got %ld)\n", flag, static_cast<long>(v));
  return false;
}

bool ValidateSparsity(double s) {
  if (s >= 0.0 && s < 1.0) {
    return true;
  }
  std::printf("error: --sparsity must be in [0, 1) (got %g); 1.0 would leave no "
              "nonzeros to encode\n",
              s);
  return false;
}

bool ValidateSplitK(int64_t split_k) {
  if (split_k >= 0) {
    return true;
  }
  std::printf("error: --split-k must be >= 0 (got %ld); 0 selects the per-shape "
              "heuristic\n",
              static_cast<long>(split_k));
  return false;
}

int CmdGen(const CliFlags& flags) {
  const int64_t rows = flags.GetInt("rows", 1024);
  const int64_t cols = flags.GetInt("cols", 1024);
  const double sparsity = flags.GetDouble("sparsity", 0.0);
  const std::string out = flags.GetString("out", "w.f16");
  if (!ValidatePositive("rows", rows) || !ValidatePositive("cols", cols) ||
      !ValidateSparsity(sparsity)) {
    return 1;
  }
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  const HalfMatrix w = HalfMatrix::RandomSparse(rows, cols, sparsity, rng);
  if (!WriteRawF16(out, w)) {
    std::printf("error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %ldx%ld FP16 matrix (%.1f%% sparse) to %s\n",
              static_cast<long>(rows), static_cast<long>(cols), 100 * w.Sparsity(),
              out.c_str());
  return 0;
}

int CmdEncode(const CliFlags& flags) {
  const std::string in = flags.GetString("in", "");
  const std::string out = flags.GetString("out", "w.tcbm");
  const int64_t rows = flags.GetInt("rows", 0);
  const int64_t cols = flags.GetInt("cols", 0);
  if (in.empty() || rows <= 0 || cols <= 0) {
    std::printf("usage: spinfer_cli encode --in w.f16 --rows R --cols C --out w.tcbm\n");
    return 1;
  }
  HalfMatrix w;
  if (!ReadRawF16(in, rows, cols, &w)) {
    std::printf("error: cannot read %ldx%ld halves from %s\n", static_cast<long>(rows),
                static_cast<long>(cols), in.c_str());
    return 1;
  }
  const std::string prune = flags.GetString("prune", "");
  if (!prune.empty()) {
    const double sparsity = flags.GetDouble("sparsity", 0.5);
    if (!ValidateSparsity(sparsity)) {
      return 1;
    }
    if (prune == "magnitude") {
      w = MagnitudePruner().Prune(w, sparsity);
    } else if (prune == "random") {
      w = RandomPruner(11).Prune(w, sparsity);
    } else {
      std::printf("error: unknown pruner '%s' (magnitude|random)\n", prune.c_str());
      return 1;
    }
    std::printf("pruned (%s) to %.1f%% sparsity\n", prune.c_str(), 100 * w.Sparsity());
  }
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  std::string error;
  if (!SaveTcaBme(out, enc, &error)) {
    std::printf("error: %s\n", error.c_str());
    return 1;
  }
  std::printf("encoded: %s -> %s (%s, CR %.2fx)\n", in.c_str(), out.c_str(),
              FormatBytes(enc.StorageBytes()).c_str(), enc.CompressionRatio());
  return 0;
}

int CmdInspect(const CliFlags& flags) {
  const std::string in = flags.GetString("in", "");
  std::string error;
  const auto enc = LoadTcaBme(in, &error);
  if (!enc) {
    std::printf("error: %s\n", error.c_str());
    return 1;
  }
  std::printf("TCA-BME container: %s\n", in.c_str());
  std::printf("  shape        %ld x %ld (padded %ld x %ld)\n",
              static_cast<long>(enc->rows()), static_cast<long>(enc->cols()),
              static_cast<long>(enc->padded_rows()), static_cast<long>(enc->padded_cols()));
  std::printf("  GroupTile    %d x %d (%d TCTiles each)\n", enc->config().gt_rows,
              enc->config().gt_cols, enc->tcs_per_gt());
  std::printf("  nnz          %ld (%.2f%% sparsity)\n", static_cast<long>(enc->nnz()),
              100.0 * (1.0 - static_cast<double>(enc->nnz()) /
                                 static_cast<double>(enc->rows() * enc->cols())));
  std::printf("  storage      %s (CR %.3fx vs dense FP16)\n",
              FormatBytes(enc->StorageBytes()).c_str(), enc->CompressionRatio());
  std::printf("  arrays       %zu offsets, %zu bitmaps, %zu values\n",
              enc->gtile_offsets().size(), enc->bitmaps().size(), enc->values().size());
  // Payload distribution across GroupTiles.
  uint32_t min_seg = ~0u;
  uint32_t max_seg = 0;
  for (int64_t gt = 0; gt < enc->num_group_tiles(); ++gt) {
    const uint32_t seg = enc->gtile_offsets()[gt + 1] - enc->gtile_offsets()[gt];
    min_seg = std::min(min_seg, seg);
    max_seg = std::max(max_seg, seg);
  }
  std::printf("  GroupTile payloads: min %u, max %u elements (balance %.2f)\n", min_seg,
              max_seg,
              min_seg == 0 ? 0.0 : static_cast<double>(max_seg) / min_seg);
  return 0;
}

int CmdTime(const CliFlags& flags) {
  const std::string in = flags.GetString("in", "");
  const int64_t n = flags.GetInt("n", 16);
  const int64_t split_k = flags.GetInt("split-k", 0);
  if (!ValidatePositive("n", n) || !ValidateSplitK(split_k)) {
    return 1;
  }
  std::string error;
  const auto enc = LoadTcaBme(in, &error);
  if (!enc) {
    std::printf("error: %s\n", error.c_str());
    return 1;
  }
  const DeviceSpec dev = DeviceByName(flags.GetString("device", "rtx4090"));
  SpmmProblem p;
  p.m = enc->rows();
  p.k = enc->cols();
  p.n = n;
  p.nnz = enc->nnz();
  p.sparsity = 1.0 - static_cast<double>(enc->nnz()) /
                         static_cast<double>(enc->rows() * enc->cols());
  SpInferKernelConfig cfg;
  cfg.format = enc->config();
  cfg.split_k = static_cast<int>(split_k);
  const KernelEstimate spinfer_est = SpInferSpmmKernel(cfg).Estimate(p, dev);
  const KernelEstimate cublas_est = CublasGemmKernel().Estimate(p, dev);
  std::printf("modeled on %s at N=%ld:\n", dev.name.c_str(), static_cast<long>(n));
  std::printf("  SpInfer-SpMM  %8.1f us  (%.0f%% of peak bandwidth)\n",
              spinfer_est.time.total_us, 100 * spinfer_est.time.bw_utilization);
  std::printf("  cuBLAS dense  %8.1f us\n", cublas_est.time.total_us);
  std::printf("  speedup       %8.2fx\n",
              cublas_est.time.total_us / spinfer_est.time.total_us);
  return 0;
}

int CmdCuda(const CliFlags& flags) {
  SpInferKernelConfig cfg;
  const int64_t gt_rows = flags.GetInt("gt-rows", 64);
  const int64_t gt_cols = flags.GetInt("gt-cols", 64);
  const int64_t split_k = flags.GetInt("split-k", 0);
  if (!ValidatePositive("gt-rows", gt_rows) || !ValidatePositive("gt-cols", gt_cols) ||
      !ValidateSplitK(split_k)) {
    return 1;
  }
  cfg.format.gt_rows = static_cast<int>(gt_rows);
  cfg.format.gt_cols = static_cast<int>(gt_cols);
  cfg.split_k = static_cast<int>(split_k);
  const std::string out = flags.GetString("out", "spinfer_kernel.cu");
  const std::string src = GenerateSpInferCudaKernel(cfg);
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::printf("error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(src.data(), 1, src.size(), f);
  std::fclose(f);
  std::printf("emitted %zu bytes of CUDA to %s (compile with nvcc -arch=sm_80)\n",
              src.size(), out.c_str());
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: spinfer_cli <gen|encode|inspect|time> [--flags]\n");
    return 1;
  }
  const std::string cmd = argv[1];
  const CliFlags flags(argc - 1, argv + 1);
  if (cmd == "gen") {
    flags.RestrictTo({"rows", "cols", "sparsity", "seed", "out"});
    return CmdGen(flags);
  }
  if (cmd == "encode") {
    flags.RestrictTo({"in", "out", "rows", "cols", "prune", "sparsity"});
    return CmdEncode(flags);
  }
  if (cmd == "inspect") {
    flags.RestrictTo({"in"});
    return CmdInspect(flags);
  }
  if (cmd == "time") {
    flags.RestrictTo({"in", "n", "device", "split-k"});
    return CmdTime(flags);
  }
  if (cmd == "cuda") {
    flags.RestrictTo({"out", "gt-rows", "gt-cols", "split-k"});
    return CmdCuda(flags);
  }
  std::printf("unknown command '%s' (gen|encode|inspect|time|cuda)\n", cmd.c_str());
  return 1;
}

}  // namespace
}  // namespace spinfer

int main(int argc, char** argv) { return spinfer::Run(argc, argv); }
