#!/usr/bin/env python3
"""Lint a Prometheus text-exposition (format 0.0.4) snapshot.

Checks the invariants a scraper relies on for the .prom files written by
src/obs/prom_export.cc:
  - every sample's metric name matches [a-zA-Z_:][a-zA-Z0-9_:]*
  - '# TYPE <name> <counter|gauge|histogram|...>' precedes that name's
    samples, and HELP/TYPE appear at most once per metric
  - sample values parse as floats (including +Inf/-Inf/NaN)
  - counter sample names end in '_total'
  - histograms expose cumulative, non-decreasing '<name>_bucket{le="..."}'
    series ending in le="+Inf", plus '<name>_sum' and '<name>_count', with
    bucket(+Inf) == count

Stdlib-only on purpose: this must run on a bare CI runner and in the CTest
wiring (tools/CMakeLists.txt) with no pip installs.

Usage:
  prom_lint.py METRICS.prom   # prints 'OK: N metrics' or violations; exit 1
"""

import argparse
import os
import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# <name>{labels} <value>  — labels optional; value is the rest of the line.
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)\s*$")
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def _parse_value(text):
    """Prometheus float syntax: returns a float or None on parse failure."""
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    try:
        return float(text)
    except ValueError:
        return None


def _parse_labels(text):
    """Parses 'k1="v1",k2="v2"' into a dict, or None on malformed input."""
    labels = {}
    if not text:
        return labels
    for part in text.split(","):
        m = LABEL_RE.match(part.strip())
        if m is None:
            return None
        labels[m.group(1)] = m.group(2)
    return labels


def _base_name(sample_name, metric_type):
    """Maps a sample name back to the metric family it belongs to."""
    if metric_type == "histogram":
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                return sample_name[: -len(suffix)]
    return sample_name


def lint(text):
    """Returns (errors, metric_count) for one exposition document."""
    errors = []
    types = {}          # family name -> declared type
    declared = {"HELP": set(), "TYPE": set()}
    # family -> {"buckets": [(le_str, value)], "sum": v, "count": v}
    histograms = {}
    samples_seen = 0

    for lineno, line in enumerate(text.splitlines(), start=1):
        where = f"line {lineno}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # free-form comment
            kind, name = parts[1], parts[2]
            if not METRIC_NAME_RE.match(name):
                errors.append(f"{where}: bad metric name in {kind}: {name!r}")
                continue
            if name in declared[kind]:
                errors.append(f"{where}: duplicate {kind} for {name}")
            declared[kind].add(name)
            if kind == "TYPE":
                if len(parts) < 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary", "untyped"):
                    errors.append(f"{where}: bad TYPE for {name}: {line!r}")
                    continue
                types[name] = parts[3]
                if parts[3] == "histogram":
                    histograms[name] = {"buckets": [], "sum": None,
                                        "count": None}
            continue

        m = SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"{where}: unparseable sample: {line!r}")
            continue
        sample_name, _, label_text, value_text = m.groups()
        value = _parse_value(value_text)
        if value is None:
            errors.append(f"{where}: bad sample value: {value_text!r}")
            continue
        labels = _parse_labels(label_text or "")
        if labels is None:
            errors.append(f"{where}: malformed labels: {label_text!r}")
            continue
        samples_seen += 1

        family = None
        for candidate_type in ("histogram",):
            base = _base_name(sample_name, candidate_type)
            if types.get(base) == candidate_type:
                family = base
                break
        if family is None:
            family = sample_name
        if family not in types:
            errors.append(
                f"{where}: sample {sample_name} has no preceding TYPE")
            continue

        metric_type = types[family]
        if metric_type == "counter":
            if not sample_name.endswith("_total"):
                errors.append(
                    f"{where}: counter sample {sample_name} must end "
                    f"in '_total'")
            if value < 0:
                errors.append(f"{where}: counter {sample_name} is negative")
        elif metric_type == "histogram":
            h = histograms[family]
            if sample_name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(
                        f"{where}: histogram bucket without 'le' label")
                else:
                    h["buckets"].append((labels["le"], value))
            elif sample_name.endswith("_sum"):
                h["sum"] = value
            elif sample_name.endswith("_count"):
                h["count"] = value
            else:
                errors.append(
                    f"{where}: unexpected histogram sample {sample_name}")

    for name, h in sorted(histograms.items()):
        buckets = h["buckets"]
        if not buckets:
            errors.append(f"{name}: histogram has no buckets")
            continue
        if buckets[-1][0] != "+Inf":
            errors.append(f"{name}: last bucket must be le=\"+Inf\", "
                          f"got le={buckets[-1][0]!r}")
        prev_le, prev_count = None, None
        for le_str, count in buckets:
            le = _parse_value(le_str)
            if le is None:
                errors.append(f"{name}: unparseable le bound {le_str!r}")
                continue
            if prev_le is not None and le <= prev_le:
                errors.append(
                    f"{name}: le bounds not increasing ({prev_le} -> {le})")
            if prev_count is not None and count < prev_count:
                errors.append(
                    f"{name}: bucket counts not cumulative "
                    f"({prev_count} -> {count})")
            prev_le, prev_count = le, count
        if h["count"] is None or h["sum"] is None:
            errors.append(f"{name}: histogram missing _sum or _count")
        elif buckets[-1][0] == "+Inf" and buckets[-1][1] != h["count"]:
            errors.append(
                f"{name}: bucket(+Inf)={buckets[-1][1]} != "
                f"_count={h['count']}")

    for name in types:
        if name not in declared["HELP"]:
            errors.append(f"{name}: TYPE without HELP")
    if samples_seen == 0 and not errors:
        errors.append("document contains no samples")
    return errors, len(types)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Lint a Prometheus text-exposition snapshot.")
    parser.add_argument("snapshot", help="path to the .prom file")
    args = parser.parse_args(argv)

    try:
        with open(args.snapshot, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as err:
        print(f"prom_lint: cannot read {args.snapshot}: {err}",
              file=sys.stderr)
        return 1

    errors, n_metrics = lint(text)
    if errors:
        for err in errors[:20]:
            print(f"prom_lint: {err}", file=sys.stderr)
        if len(errors) > 20:
            print(f"prom_lint: ... and {len(errors) - 20} more",
                  file=sys.stderr)
        return 1
    print(f"OK: {n_metrics} metrics")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        os._exit(0)
