#!/usr/bin/env python3
"""Self-test for prom_lint.py (stdlib-only; run directly or via CTest)."""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import prom_lint

GOOD = """\
# HELP spinfer_requests_total spinfer metric srv.requests
# TYPE spinfer_requests_total counter
spinfer_requests_total 42
# HELP spinfer_kv_occupancy spinfer metric srv.slo.kv_occupancy
# TYPE spinfer_kv_occupancy gauge
spinfer_kv_occupancy 0.25
# HELP spinfer_ttft_ms spinfer metric srv.ttft_ms
# TYPE spinfer_ttft_ms histogram
spinfer_ttft_ms_bucket{le="1"} 1
spinfer_ttft_ms_bucket{le="2"} 3
spinfer_ttft_ms_bucket{le="4"} 3
spinfer_ttft_ms_bucket{le="+Inf"} 4
spinfer_ttft_ms_sum 105
spinfer_ttft_ms_count 4
"""


class LintTest(unittest.TestCase):
    def test_well_formed_document_passes(self):
        errors, n = prom_lint.lint(GOOD)
        self.assertEqual(errors, [])
        self.assertEqual(n, 3)

    def test_sample_before_type_rejected(self):
        errors, _ = prom_lint.lint("spinfer_orphan 1\n")
        self.assertTrue(any("no preceding TYPE" in e for e in errors))

    def test_bad_metric_name_rejected(self):
        doc = "# HELP 9bad x\n# TYPE 9bad gauge\n"
        errors, _ = prom_lint.lint(doc)
        self.assertTrue(any("bad metric name" in e for e in errors))

    def test_counter_requires_total_suffix(self):
        doc = ("# HELP spinfer_reqs x\n# TYPE spinfer_reqs counter\n"
               "spinfer_reqs 1\n")
        errors, _ = prom_lint.lint(doc)
        self.assertTrue(any("_total" in e for e in errors))

    def test_unparseable_value_rejected(self):
        doc = ("# HELP spinfer_g x\n# TYPE spinfer_g gauge\n"
               "spinfer_g banana\n")
        errors, _ = prom_lint.lint(doc)
        self.assertTrue(any("bad sample value" in e for e in errors))

    def test_inf_and_nan_values_accepted(self):
        doc = ("# HELP spinfer_g x\n# TYPE spinfer_g gauge\n"
               "spinfer_g +Inf\n")
        errors, _ = prom_lint.lint(doc)
        self.assertEqual(errors, [])

    def test_histogram_must_end_in_inf_bucket(self):
        doc = ("# HELP spinfer_h x\n# TYPE spinfer_h histogram\n"
               'spinfer_h_bucket{le="1"} 1\n'
               "spinfer_h_sum 0.5\nspinfer_h_count 1\n")
        errors, _ = prom_lint.lint(doc)
        self.assertTrue(any('le="+Inf"' in e for e in errors))

    def test_histogram_buckets_must_be_cumulative(self):
        doc = ("# HELP spinfer_h x\n# TYPE spinfer_h histogram\n"
               'spinfer_h_bucket{le="1"} 5\n'
               'spinfer_h_bucket{le="2"} 3\n'
               'spinfer_h_bucket{le="+Inf"} 5\n'
               "spinfer_h_sum 9\nspinfer_h_count 5\n")
        errors, _ = prom_lint.lint(doc)
        self.assertTrue(any("not cumulative" in e for e in errors))

    def test_inf_bucket_must_equal_count(self):
        doc = ("# HELP spinfer_h x\n# TYPE spinfer_h histogram\n"
               'spinfer_h_bucket{le="+Inf"} 4\n'
               "spinfer_h_sum 9\nspinfer_h_count 5\n")
        errors, _ = prom_lint.lint(doc)
        self.assertTrue(any("!= _count" in e for e in errors))

    def test_histogram_missing_sum_or_count_rejected(self):
        doc = ("# HELP spinfer_h x\n# TYPE spinfer_h histogram\n"
               'spinfer_h_bucket{le="+Inf"} 0\n')
        errors, _ = prom_lint.lint(doc)
        self.assertTrue(any("missing _sum or _count" in e for e in errors))

    def test_type_without_help_rejected(self):
        errors, _ = prom_lint.lint("# TYPE spinfer_g gauge\nspinfer_g 1\n")
        self.assertTrue(any("TYPE without HELP" in e for e in errors))

    def test_duplicate_type_rejected(self):
        doc = ("# HELP spinfer_g x\n# TYPE spinfer_g gauge\n"
               "# TYPE spinfer_g gauge\nspinfer_g 1\n")
        errors, _ = prom_lint.lint(doc)
        self.assertTrue(any("duplicate TYPE" in e for e in errors))

    def test_empty_document_rejected(self):
        errors, _ = prom_lint.lint("")
        self.assertTrue(any("no samples" in e for e in errors))


class MainTest(unittest.TestCase):
    def test_roundtrip_exit_codes(self):
        with tempfile.TemporaryDirectory() as tmp:
            good = os.path.join(tmp, "good.prom")
            with open(good, "w", encoding="utf-8") as f:
                f.write(GOOD)
            self.assertEqual(prom_lint.main([good]), 0)

            bad = os.path.join(tmp, "bad.prom")
            with open(bad, "w", encoding="utf-8") as f:
                f.write("spinfer_orphan 1\n")
            self.assertEqual(prom_lint.main([bad]), 1)
            self.assertEqual(
                prom_lint.main([os.path.join(tmp, "missing.prom")]), 1)


if __name__ == "__main__":
    unittest.main()
