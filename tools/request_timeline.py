#!/usr/bin/env python3
"""Summarize a per-request timeline JSONL file written by RequestLog.

Each input line is one event:
  {"req":N,"ev":"<kind>","iter":N,"vt_ns":N,"wall_ns":N, ...args}
with the kinds emitted by src/obs/request_log.cc: submitted, admitted,
prefix_match, chunk_scheduled, decode, finished, evicted, cancelled,
rejected. Timestamps are virtual-time nanoseconds (the engine's deterministic
clock), so every figure below is byte-stable across thread counts.

The report prints one row per request — outcome, TTFT (submit to first
decoded token), mean TBT (gap between consecutive decoded tokens), the
queue/compute split (submit-to-admit vs admit-to-terminal), generated token
count, and the prefix-cache hit ratio — followed by an aggregate summary.

Stdlib-only on purpose: this must run on a bare CI runner and in the CTest
wiring (tools/CMakeLists.txt) with no pip installs.

Usage:
  request_timeline.py TIMELINE.jsonl            # per-request table + summary
  request_timeline.py TIMELINE.jsonl --validate # schema-check; exit 1 on errors
"""

import argparse
import json
import os
import sys

KNOWN_EVENTS = (
    "submitted", "admitted", "prefix_match", "chunk_scheduled", "decode",
    "finished", "evicted", "cancelled", "rejected",
)
TERMINAL_EVENTS = ("finished", "evicted", "cancelled", "rejected")
REQUIRED_KEYS = ("req", "ev", "iter", "vt_ns", "wall_ns")


def parse_jsonl(text):
    """Parses JSONL text into (events, errors). Events keep their 1-based
    line number under the '_line' key for error reporting."""
    events, errors = [], []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            errors.append(f"line {lineno}: blank line (writer never emits one)")
            continue
        try:
            ev = json.loads(line)
        except ValueError as err:
            errors.append(f"line {lineno}: invalid JSON: {err}")
            continue
        if not isinstance(ev, dict):
            errors.append(f"line {lineno}: expected a JSON object")
            continue
        ev["_line"] = lineno
        events.append(ev)
    return events, errors


def validate(events):
    """Returns a list of human-readable violations (empty if valid)."""
    errors = []
    per_req = {}
    for ev in events:
        where = f"line {ev.get('_line', '?')}"
        bad = False
        for key in REQUIRED_KEYS:
            if key == "ev":
                if not isinstance(ev.get("ev"), str):
                    errors.append(f"{where}: 'ev' must be a string")
                    bad = True
            elif not isinstance(ev.get(key), int) or isinstance(
                    ev.get(key), bool):
                errors.append(f"{where}: '{key}' must be an integer")
                bad = True
        if bad:
            continue
        if ev["ev"] not in KNOWN_EVENTS:
            errors.append(f"{where}: unknown event kind {ev['ev']!r}")
            continue
        if ev["req"] < 0 or ev["vt_ns"] < 0:
            errors.append(f"{where}: req and vt_ns must be >= 0")
            continue
        per_req.setdefault(ev["req"], []).append(ev)

    for req, req_events in sorted(per_req.items()):
        submits = [e for e in req_events if e["ev"] == "submitted"]
        if len(submits) != 1:
            errors.append(
                f"req {req}: expected exactly 1 'submitted' event, "
                f"got {len(submits)}")
        elif req_events[0]["ev"] != "submitted":
            errors.append(
                f"req {req}: 'submitted' must be the first event "
                f"(line {submits[0]['_line']} comes after "
                f"line {req_events[0]['_line']})")
        terminals = [e for e in req_events if e["ev"] in TERMINAL_EVENTS]
        if len(terminals) > 1:
            errors.append(
                f"req {req}: more than one terminal event "
                f"({', '.join(e['ev'] for e in terminals)})")
        elif terminals and req_events[-1] is not terminals[0]:
            errors.append(
                f"req {req}: event after terminal "
                f"'{terminals[0]['ev']}' (line {req_events[-1]['_line']})")
        prev = None
        for e in req_events:
            if prev is not None and e["vt_ns"] < prev["vt_ns"]:
                errors.append(
                    f"req {req}: vt_ns goes backwards at line {e['_line']} "
                    f"({prev['vt_ns']} -> {e['vt_ns']})")
            prev = e
    return errors


def summarize(events):
    """Aggregates events into per-request rows.

    Returns a list of dicts sorted by request id, each with keys: req,
    outcome, ttft_ms, tbt_ms, queue_ms, compute_ms, generated, hit_blocks,
    miss_blocks. Timing fields are None when the request never reached the
    corresponding state (e.g. rejected requests have no queue/compute split).
    """
    per_req = {}
    for ev in events:
        if not isinstance(ev, dict) or not isinstance(ev.get("req"), int):
            continue
        per_req.setdefault(ev["req"], []).append(ev)

    rows = []
    for req, req_events in sorted(per_req.items()):
        sub_vt = adm_vt = term_vt = None
        outcome = "in-flight"
        decode_vts = []
        generated = 0
        hit = miss = 0
        for ev in req_events:
            kind, vt = ev.get("ev"), ev.get("vt_ns")
            if kind == "submitted":
                sub_vt = vt
            elif kind == "admitted":
                adm_vt = vt
            elif kind == "prefix_match":
                hit += ev.get("hit_blocks", 0)
                miss += ev.get("miss_blocks", 0)
            elif kind == "decode":
                decode_vts.append(vt)
                generated = max(generated, ev.get("generated", 0))
            elif kind in TERMINAL_EVENTS:
                outcome, term_vt = kind, vt
                generated = max(generated, ev.get("generated", 0))
        ttft = (decode_vts[0] - sub_vt) / 1e6 \
            if decode_vts and sub_vt is not None else None
        tbt = (decode_vts[-1] - decode_vts[0]) / (len(decode_vts) - 1) / 1e6 \
            if len(decode_vts) >= 2 else None
        queue = (adm_vt - sub_vt) / 1e6 \
            if adm_vt is not None and sub_vt is not None else None
        compute = (term_vt - adm_vt) / 1e6 \
            if term_vt is not None and adm_vt is not None else None
        rows.append({
            "req": req, "outcome": outcome, "ttft_ms": ttft, "tbt_ms": tbt,
            "queue_ms": queue, "compute_ms": compute, "generated": generated,
            "hit_blocks": hit, "miss_blocks": miss,
        })
    return rows


def aggregate(rows):
    """Fleet-level summary over per-request rows (dict of scalars)."""
    outcomes = {}
    for row in rows:
        outcomes[row["outcome"]] = outcomes.get(row["outcome"], 0) + 1
    ttfts = sorted(r["ttft_ms"] for r in rows if r["ttft_ms"] is not None)
    tbts = sorted(r["tbt_ms"] for r in rows if r["tbt_ms"] is not None)
    queue = sum(r["queue_ms"] for r in rows if r["queue_ms"] is not None)
    compute = sum(r["compute_ms"] for r in rows if r["compute_ms"] is not None)
    hit = sum(r["hit_blocks"] for r in rows)
    miss = sum(r["miss_blocks"] for r in rows)
    return {
        "requests": len(rows),
        "outcomes": outcomes,
        "ttft_p50_ms": _percentile(ttfts, 0.50),
        "ttft_p95_ms": _percentile(ttfts, 0.95),
        "tbt_p50_ms": _percentile(tbts, 0.50),
        "tbt_p95_ms": _percentile(tbts, 0.95),
        "queue_ms": queue,
        "compute_ms": compute,
        "prefix_hit_ratio": hit / (hit + miss) if hit + miss > 0 else None,
        "generated_tokens": sum(r["generated"] for r in rows),
    }


def _percentile(sorted_values, q):
    """Nearest-rank percentile (q in [0, 1]) of an ascending list."""
    if not sorted_values:
        return None
    rank = max(1, -(-len(sorted_values) * q // 1))
    return sorted_values[min(len(sorted_values), int(rank)) - 1]


def _fmt(value):
    return "-" if value is None else f"{value:.3f}"


def render(rows, agg):
    """Formats the per-request table and summary (list of lines)."""
    header = ("req", "outcome", "ttft ms", "tbt ms", "queue ms",
              "compute ms", "tokens", "prefix hit")
    body = []
    for r in rows:
        denom = r["hit_blocks"] + r["miss_blocks"]
        ratio = f"{r['hit_blocks'] / denom:.2f}" if denom else "-"
        body.append((str(r["req"]), r["outcome"], _fmt(r["ttft_ms"]),
                     _fmt(r["tbt_ms"]), _fmt(r["queue_ms"]),
                     _fmt(r["compute_ms"]), str(r["generated"]), ratio))
    widths = [max(len(row[i]) for row in [header] + body)
              for i in range(len(header))]
    lines = []
    for row in [header] + body:
        cells = [row[0].rjust(widths[0]), row[1].ljust(widths[1])]
        cells += [row[i].rjust(widths[i]) for i in range(2, len(row))]
        lines.append("  ".join(cells).rstrip())

    lines.append("")
    outcomes = " ".join(f"{k}={v}" for k, v in sorted(agg["outcomes"].items()))
    lines.append(f"requests: {agg['requests']} ({outcomes})")
    lines.append(
        f"ttft ms: p50={_fmt(agg['ttft_p50_ms'])} "
        f"p95={_fmt(agg['ttft_p95_ms'])}  "
        f"tbt ms: p50={_fmt(agg['tbt_p50_ms'])} p95={_fmt(agg['tbt_p95_ms'])}")
    total = agg["queue_ms"] + agg["compute_ms"]
    if total > 0:
        lines.append(
            f"time split: queue={agg['queue_ms']:.3f} ms "
            f"({100.0 * agg['queue_ms'] / total:.1f}%) "
            f"compute={agg['compute_ms']:.3f} ms "
            f"({100.0 * agg['compute_ms'] / total:.1f}%)")
    ratio = agg["prefix_hit_ratio"]
    lines.append(
        f"prefix hit ratio: {'-' if ratio is None else f'{ratio:.2f}'}  "
        f"generated tokens: {agg['generated_tokens']}")
    return lines


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Summarize a RequestLog timeline JSONL file.")
    parser.add_argument("timeline", help="path to the timeline JSONL file")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check only; exit 1 on any violation")
    args = parser.parse_args(argv)

    try:
        with open(args.timeline, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as err:
        print(f"request_timeline: cannot read {args.timeline}: {err}",
              file=sys.stderr)
        return 1

    events, errors = parse_jsonl(text)
    errors.extend(validate(events))
    if errors:
        for err in errors[:20]:
            print(f"request_timeline: {err}", file=sys.stderr)
        if len(errors) > 20:
            print(f"request_timeline: ... and {len(errors) - 20} more",
                  file=sys.stderr)
        return 1
    if args.validate:
        reqs = len({ev["req"] for ev in events})
        print(f"OK: {len(events)} events, {reqs} requests, schema valid")
        return 0

    rows = summarize(events)
    for line in render(rows, aggregate(rows)):
        print(line)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        os._exit(0)
