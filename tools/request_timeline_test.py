#!/usr/bin/env python3
"""Self-test for request_timeline.py (stdlib-only; run directly or via CTest)."""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import request_timeline


def ev(req, kind, iter_=0, vt_ns=0, wall_ns=0, **args):
    base = {"req": req, "ev": kind, "iter": iter_, "vt_ns": vt_ns,
            "wall_ns": wall_ns}
    base.update(args)
    return base


def jsonl(events):
    return "".join(json.dumps(e) + "\n" for e in events)


def full_request(req=0, base_vt=0):
    """A healthy submitted->admitted->decode*3->finished lifecycle."""
    return [
        ev(req, "submitted", iter_=-1, vt_ns=base_vt, prompt_tokens=8,
           max_new=3),
        ev(req, "admitted", vt_ns=base_vt + 1_000_000, fresh_blocks=2,
           shared_blocks=1),
        ev(req, "prefix_match", vt_ns=base_vt + 1_000_000, hit_blocks=1,
           miss_blocks=2, cached_tokens=4),
        ev(req, "chunk_scheduled", vt_ns=base_vt + 1_000_000, start=0,
           tokens=8),
        ev(req, "decode", iter_=1, vt_ns=base_vt + 3_000_000, token=5,
           generated=1),
        ev(req, "decode", iter_=2, vt_ns=base_vt + 4_000_000, token=6,
           generated=2),
        ev(req, "decode", iter_=3, vt_ns=base_vt + 5_000_000, token=7,
           generated=3),
        ev(req, "finished", iter_=3, vt_ns=base_vt + 5_000_000, generated=3,
           eos=0),
    ]


class ParseAndValidateTest(unittest.TestCase):
    def parse_validate(self, events):
        parsed, errors = request_timeline.parse_jsonl(jsonl(events))
        return errors + request_timeline.validate(parsed)

    def test_valid_lifecycle_passes(self):
        self.assertEqual(self.parse_validate(full_request()), [])

    def test_rejected_and_cancelled_lifecycles_pass(self):
        events = [
            ev(1, "submitted", iter_=-1, vt_ns=0),
            ev(1, "rejected", vt_ns=100),
            ev(2, "submitted", iter_=-1, vt_ns=0),
            ev(2, "cancelled", vt_ns=200, generated=0),
        ]
        self.assertEqual(self.parse_validate(events), [])

    def test_invalid_json_line_reported(self):
        parsed, errors = request_timeline.parse_jsonl(
            '{"req": 0, "ev": "submitted"\nnot json\n')
        self.assertEqual(len(errors), 2)
        self.assertEqual(parsed, [])

    def test_missing_required_key_reported(self):
        bad = ev(0, "submitted")
        del bad["vt_ns"]
        self.assertTrue(self.parse_validate([bad]))

    def test_unknown_event_kind_reported(self):
        errors = self.parse_validate(
            [ev(0, "submitted"), ev(0, "teleported", vt_ns=5)])
        self.assertTrue(any("teleported" in e for e in errors))

    def test_missing_submitted_reported(self):
        errors = self.parse_validate([ev(3, "decode", vt_ns=5, generated=1)])
        self.assertTrue(any("exactly 1 'submitted'" in e for e in errors))

    def test_double_terminal_reported(self):
        errors = self.parse_validate([
            ev(0, "submitted"),
            ev(0, "finished", vt_ns=10, generated=1),
            ev(0, "evicted", vt_ns=20, generated=1),
        ])
        self.assertTrue(any("more than one terminal" in e for e in errors))

    def test_event_after_terminal_reported(self):
        errors = self.parse_validate([
            ev(0, "submitted"),
            ev(0, "finished", vt_ns=10, generated=1),
            ev(0, "decode", vt_ns=20, generated=2),
        ])
        self.assertTrue(any("after terminal" in e for e in errors))

    def test_backwards_virtual_time_reported(self):
        errors = self.parse_validate([
            ev(0, "submitted", vt_ns=1000),
            ev(0, "admitted", vt_ns=500),
        ])
        self.assertTrue(any("backwards" in e for e in errors))


class SummarizeTest(unittest.TestCase):
    def test_latency_split_and_prefix_ratio(self):
        rows = request_timeline.summarize(full_request())
        self.assertEqual(len(rows), 1)
        r = rows[0]
        self.assertEqual(r["outcome"], "finished")
        # First decode at vt 3ms, submitted at 0 -> TTFT 3ms.
        self.assertAlmostEqual(r["ttft_ms"], 3.0)
        # Decodes at 3/4/5 ms -> mean inter-token gap 1ms.
        self.assertAlmostEqual(r["tbt_ms"], 1.0)
        self.assertAlmostEqual(r["queue_ms"], 1.0)    # submit -> admit
        self.assertAlmostEqual(r["compute_ms"], 4.0)  # admit -> finished
        self.assertEqual(r["generated"], 3)
        self.assertEqual((r["hit_blocks"], r["miss_blocks"]), (1, 2))

    def test_rejected_request_has_no_latency_fields(self):
        rows = request_timeline.summarize([
            ev(4, "submitted", iter_=-1, vt_ns=0),
            ev(4, "rejected", vt_ns=100),
        ])
        r = rows[0]
        self.assertEqual(r["outcome"], "rejected")
        self.assertIsNone(r["ttft_ms"])
        self.assertIsNone(r["queue_ms"])
        self.assertIsNone(r["compute_ms"])

    def test_aggregate_counts_outcomes_and_pools_prefix_blocks(self):
        events = full_request(req=0) + full_request(req=1, base_vt=2_000_000)
        events += [ev(2, "submitted", iter_=-1, vt_ns=0),
                   ev(2, "rejected", vt_ns=10)]
        agg = request_timeline.aggregate(request_timeline.summarize(events))
        self.assertEqual(agg["requests"], 3)
        self.assertEqual(agg["outcomes"], {"finished": 2, "rejected": 1})
        self.assertAlmostEqual(agg["prefix_hit_ratio"], 2 / 6)
        self.assertEqual(agg["generated_tokens"], 6)
        self.assertAlmostEqual(agg["ttft_p50_ms"], 3.0)
        self.assertAlmostEqual(agg["queue_ms"], 2.0)
        self.assertAlmostEqual(agg["compute_ms"], 8.0)

    def test_render_includes_header_rows_and_summary(self):
        rows = request_timeline.summarize(full_request())
        lines = request_timeline.render(rows, request_timeline.aggregate(rows))
        self.assertIn("outcome", lines[0])
        self.assertIn("prefix hit", lines[0])
        self.assertTrue(any("finished" in line for line in lines[1:]))
        self.assertTrue(any(line.startswith("time split:") for line in lines))


class MainTest(unittest.TestCase):
    def test_validate_and_table_roundtrip(self):
        with tempfile.TemporaryDirectory() as tmp:
            good = os.path.join(tmp, "good.jsonl")
            with open(good, "w", encoding="utf-8") as f:
                f.write(jsonl(full_request()))
            self.assertEqual(request_timeline.main([good, "--validate"]), 0)
            self.assertEqual(request_timeline.main([good]), 0)

            bad = os.path.join(tmp, "bad.jsonl")
            with open(bad, "w", encoding="utf-8") as f:
                f.write('{"req": 0}\n')
            self.assertEqual(request_timeline.main([bad, "--validate"]), 1)
            self.assertEqual(
                request_timeline.main([os.path.join(tmp, "nope.jsonl")]), 1)


if __name__ == "__main__":
    unittest.main()
