#!/usr/bin/env python3
"""Self-test for trace_report.py (stdlib-only; run directly or via CTest)."""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import trace_report


def x(name, ts, dur, tid=0, args=None):
    ev = {"name": name, "cat": "spinfer", "ph": "X", "pid": 1, "tid": tid,
          "ts": ts, "dur": dur}
    if args is not None:
        ev["args"] = args
    return ev


def meta(tid=0, thread="thread 0"):
    return {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": thread}}


def trace(events):
    return {"displayTimeUnit": "ms", "traceEvents": events}


def ab(ph, name, ts, span_id="0", cat="srv.request", args=None):
    ev = {"ph": ph, "pid": 0, "tid": 0, "id": span_id, "ts": ts,
          "name": name, "cat": cat}
    if args is not None:
        ev["args"] = args
    return ev


class ValidateTest(unittest.TestCase):
    def test_valid_trace_passes(self):
        t = trace([meta(), x("a", 0, 100, args={"m": 4}), x("b", 10, 20)])
        self.assertEqual(trace_report.validate(t), [])

    def test_top_level_must_be_object_with_event_array(self):
        self.assertTrue(trace_report.validate([]))
        self.assertTrue(trace_report.validate({"traceEvents": "nope"}))

    def test_x_event_requires_numeric_ts_and_dur(self):
        for bad in (
            {"name": "a", "ph": "X", "pid": 1, "tid": 0, "ts": 0},  # no dur
            x("a", -1, 5),                                          # negative
            {"name": "a", "ph": "X", "pid": 1, "tid": 0, "ts": "0", "dur": 1},
            {"name": "a", "ph": "X", "pid": 1, "tid": 0, "ts": True, "dur": 1},
        ):
            self.assertTrue(trace_report.validate(trace([bad])), bad)

    def test_rejects_unknown_phase_and_bad_metadata(self):
        self.assertTrue(trace_report.validate(trace([x("a", 0, 1) | {"ph": "B"}])))
        bad_meta = meta()
        bad_meta["args"] = {}
        self.assertTrue(trace_report.validate(trace([bad_meta])))

    def test_empty_name_rejected(self):
        self.assertTrue(trace_report.validate(trace([x("", 0, 1)])))

    def test_async_pairs_pass(self):
        t = trace([
            ab("b", "request/finished", 0, args={"generated": 4}),
            ab("e", "request/finished", 2500),
            ab("b", "queued", 0),
            ab("e", "queued", 1500),
        ])
        self.assertEqual(trace_report.validate(t), [])

    def test_async_event_requires_cat_and_id(self):
        no_cat = ab("b", "queued", 0)
        del no_cat["cat"]
        no_id = ab("b", "queued", 0)
        del no_id["id"]
        for bad in (no_cat, no_id,
                    ab("b", "queued", -1),
                    ab("b", "queued", "soon")):
            paired = dict(bad, ph="e") if bad.get("ph") == "b" else bad
            self.assertTrue(
                trace_report.validate(trace([bad, paired])), bad)

    def test_async_unbalanced_pairs_rejected(self):
        # 'e' without 'b', and 'b' without 'e'.
        self.assertTrue(trace_report.validate(
            trace([ab("e", "queued", 10)])))
        self.assertTrue(trace_report.validate(
            trace([ab("b", "queued", 0)])))
        # Matching is per (cat, id, name): same name under another id does
        # not satisfy the pair.
        self.assertTrue(trace_report.validate(trace([
            ab("b", "queued", 0, span_id="1"),
            ab("e", "queued", 10, span_id="2"),
        ])))

    def test_integer_ids_accepted(self):
        t = trace([ab("b", "exec", 0, span_id=7),
                   ab("e", "exec", 10, span_id=7)])
        self.assertEqual(trace_report.validate(t), [])


class RowsTest(unittest.TestCase):
    def test_aggregates_count_total_mean(self):
        t = trace([x("leaf", 0, 1000), x("leaf", 2000, 3000)])
        rows = trace_report.build_rows(t)
        self.assertEqual(len(rows), 1)
        name, count, total, mean, p95, parent, pct = rows[0]
        self.assertEqual((name, count), ("leaf", 2))
        self.assertAlmostEqual(total, 4.0)   # us -> ms
        self.assertAlmostEqual(mean, 2.0)
        self.assertAlmostEqual(p95, 3.0)     # nearest-rank of [1000, 3000]
        self.assertEqual(parent, "-")
        self.assertIsNone(pct)

    def test_nesting_gives_percent_of_parent(self):
        t = trace([
            x("task", 0, 1000),
            x("phase", 100, 250),
            x("phase", 400, 250),
            x("task", 2000, 1000),
            x("phase", 2100, 500),
        ])
        rows = {r[0]: r for r in trace_report.build_rows(t)}
        _, count, total, _, _, parent, pct = rows["phase"]
        self.assertEqual(count, 3)
        self.assertEqual(parent, "task")
        # 1000us of phase over 2000us of parent task instances.
        self.assertAlmostEqual(pct, 50.0)
        self.assertEqual(rows["task"][5], "-")

    def test_threads_nest_independently(self):
        t = trace([
            x("outer", 0, 100, tid=0),
            x("inner", 10, 50, tid=0),
            x("inner", 10, 50, tid=1),  # no enclosing span on tid 1
        ])
        rows = {r[0]: r for r in trace_report.build_rows(t)}
        # Dominant parent is 'outer' on tid 0; tid 1's instance is a root.
        self.assertEqual(rows["inner"][1], 2)
        self.assertEqual(rows["inner"][5], "outer")
        # Only the tid-0 instance counts towards the percentage (50 of 100);
        # the rootless tid-1 instance must not inflate it.
        self.assertAlmostEqual(rows["inner"][6], 50.0)

    def test_rows_sorted_by_total_descending(self):
        t = trace([x("small", 0, 10), x("big", 100, 500)])
        rows = trace_report.build_rows(t)
        self.assertEqual([r[0] for r in rows], ["big", "small"])


class RenderAndMainTest(unittest.TestCase):
    def test_render_includes_header_and_rows(self):
        lines = trace_report.render(trace_report.build_rows(
            trace([x("a", 0, 1000)])))
        self.assertIn("span", lines[0])
        self.assertIn("% of parent", lines[0])
        self.assertTrue(any(line.startswith("a") for line in lines[1:]))

    def test_main_validate_roundtrip(self):
        with tempfile.TemporaryDirectory() as tmp:
            good = os.path.join(tmp, "good.json")
            with open(good, "w", encoding="utf-8") as f:
                json.dump(trace([meta(), x("a", 0, 5)]), f)
            self.assertEqual(trace_report.main([good, "--validate"]), 0)
            self.assertEqual(trace_report.main([good]), 0)

            bad = os.path.join(tmp, "bad.json")
            with open(bad, "w", encoding="utf-8") as f:
                json.dump(trace([{"ph": "X"}]), f)
            self.assertEqual(trace_report.main([bad, "--validate"]), 1)
            self.assertEqual(
                trace_report.main([os.path.join(tmp, "missing.json")]), 1)


if __name__ == "__main__":
    unittest.main()
