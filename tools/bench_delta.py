#!/usr/bin/env python3
"""Compare a fresh BENCH.json against the committed bench baseline.

Prints a Markdown table (bench name, baseline ms, current ms, delta) suitable
for a CI job summary. Benches present in only one of the two files are listed
explicitly in their own sections — a bench silently disappearing from the
smoke is itself a regression worth seeing. Warn-only by design: shared-runner
clocks are noisy, so this tool always exits 0 — the table makes regressions
visible, a human decides whether they are real. Treat deltas beyond +/-30% on
the same machine as signal, anything less as noise (matches
bench/perf_regression.cc).

Usage: bench_delta.py [--baseline bench/BENCH_baseline.json] [--current BENCH.json]
"""

import argparse
import json
import sys

WARN_RATIO = 1.30  # flag rows whose wall time moved by more than this factor

# Benches the perf smoke is expected to produce. The table itself is a union
# of whatever the two JSON files contain, but a bench absent from BOTH files
# (e.g. perf_regression.cc lost a block in a refactor) would otherwise vanish
# without a trace — this list makes that failure mode visible too.
EXPECTED_BENCHES = (
    "reference_gemm",
    "spinfer_functional",
    "tca_bme_encode",
    "smbd_decode",
    "cpu_spmm_n8",
    "cpu_spmm_n64",
    "cpu_spmm_n64_t2",
    "cpu_spmm_n64_t4",
    "cpu_spmv",
    "cpu_spmv_portable",
    "cpu_spmv_int8",
    "tiny_transformer_decode_step",
    "paged_attention_ctx256",
    "paged_attention_ctx2048",
    "paged_attention_ctx2048_ref",
    "serving_decode_b1",
    "serving_decode_b4",
    "serving_decode_b8",
    "serving_decode_b8_longctx",
    "serving_prefix_cache",
    "serving_chunked_prefill",
    "serving_engine_b8",
    "serving_obs_overhead",
    "serving_tp2",
    "serving_tp4",
    "serving_disagg",
)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"bench_delta: cannot read {path}: {err}", file=sys.stderr)
        return None


def _wall_ms(record):
    ms = record.get("wall_ms") if isinstance(record, dict) else None
    return ms if isinstance(ms, (int, float)) and not isinstance(ms, bool) else None


def render(baseline, current):
    """Returns the full report as a list of Markdown lines."""
    lines = [
        "### Perf smoke vs committed baseline",
        "",
        "Warn-only: shared-runner clocks are noisy; ±30% is the signal bar.",
        "",
        "| bench | baseline ms | current ms | delta |",
        "|---|---:|---:|---:|",
    ]
    one_sided = []  # (name, "baseline only" | "current only", ms or None)
    for name in sorted(set(baseline) | set(current)):
        base = _wall_ms(baseline.get(name, {}))
        cur = _wall_ms(current.get(name, {}))
        if base is None or cur is None:
            side = "current only" if base is None else "baseline only"
            one_sided.append((name, side, cur if base is None else base))
            continue
        if base <= 0.0:
            lines.append(f"| {name} | {base:.3f} | {cur:.3f} | n/a |")
            continue
        ratio = cur / base
        flag = " ⚠️" if ratio > WARN_RATIO or ratio < 1.0 / WARN_RATIO else ""
        lines.append(f"| {name} | {base:.3f} | {cur:.3f} | {ratio - 1.0:+.1%}{flag} |")

    if one_sided:
        lines += ["", "Present in only one file (new bench, removed bench, or "
                      "a record missing its wall_ms):", ""]
        for name, side, ms in one_sided:
            shown = "?" if ms is None else f"{ms:.3f} ms"
            lines.append(f"- `{name}`: {side} ({shown})")

    missing = [n for n in EXPECTED_BENCHES if n not in baseline and n not in current]
    if missing:
        lines += ["", "Expected benches missing from BOTH files (did "
                      "perf_regression lose a block?):", ""]
        for name in missing:
            lines.append(f"- `{name}`")
    return lines


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench/BENCH_baseline.json")
    parser.add_argument("--current", default="BENCH.json")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    if baseline is None or current is None:
        print("bench_delta: nothing to compare (missing or unreadable input)")
        return 0

    print("\n".join(render(baseline, current)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
