#!/usr/bin/env python3
"""Compare a fresh BENCH.json against the committed bench baseline.

Prints a Markdown table (bench name, baseline ms, current ms, delta) suitable
for a CI job summary. Warn-only by design: shared-runner clocks are noisy, so
this tool always exits 0 — the table makes regressions visible, a human
decides whether they are real. Treat deltas beyond +/-30% on the same machine
as signal, anything less as noise (matches bench/perf_regression.cc).

Usage: bench_delta.py [--baseline bench/BENCH_baseline.json] [--current BENCH.json]
"""

import argparse
import json
import sys

WARN_RATIO = 1.30  # flag rows whose wall time moved by more than this factor


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"bench_delta: cannot read {path}: {err}", file=sys.stderr)
        return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench/BENCH_baseline.json")
    parser.add_argument("--current", default="BENCH.json")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    if baseline is None or current is None:
        print("bench_delta: nothing to compare (missing or unreadable input)")
        return 0

    print("### Perf smoke vs committed baseline")
    print()
    print("Warn-only: shared-runner clocks are noisy; ±30% is the signal bar.")
    print()
    print("| bench | baseline ms | current ms | delta |")
    print("|---|---:|---:|---:|")
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name, {}).get("wall_ms")
        cur = current.get(name, {}).get("wall_ms")
        if base is None or cur is None:
            status = "new" if base is None else "removed"
            shown = cur if cur is not None else base
            print(f"| {name} | {'' if base is None else f'{base:.3f}'} "
                  f"| {'' if cur is None else f'{cur:.3f}'} | ({status}) |")
            continue
        if base <= 0.0:
            print(f"| {name} | {base:.3f} | {cur:.3f} | n/a |")
            continue
        ratio = cur / base
        flag = " ⚠️" if ratio > WARN_RATIO or ratio < 1.0 / WARN_RATIO else ""
        print(f"| {name} | {base:.3f} | {cur:.3f} | {ratio - 1.0:+.1%}{flag} |")
    return 0


if __name__ == "__main__":
    sys.exit(main())
