#!/usr/bin/env python3
"""Self-test for bench_delta.py (stdlib-only; run directly or via CTest)."""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_delta


def rec(ms):
    return {"wall_ms": ms, "repetitions": 5, "threads": 1}


class RenderTest(unittest.TestCase):
    def test_common_bench_shows_delta(self):
        out = "\n".join(bench_delta.render({"a": rec(10.0)}, {"a": rec(11.0)}))
        self.assertIn("| a | 10.000 | 11.000 | +10.0% |", out)
        self.assertNotIn("⚠️", out)

    def test_large_move_is_flagged_both_directions(self):
        out = "\n".join(bench_delta.render(
            {"slow": rec(10.0), "fast": rec(10.0)},
            {"slow": rec(14.0), "fast": rec(7.0)}))
        self.assertIn("| slow | 10.000 | 14.000 | +40.0% ⚠️ |", out)
        self.assertIn("| fast | 10.000 | 7.000 | -30.0% ⚠️ |", out)

    def test_one_sided_benches_are_listed_explicitly(self):
        out = "\n".join(bench_delta.render(
            {"removed": rec(3.0), "kept": rec(1.0)},
            {"added": rec(4.0), "kept": rec(1.0)}))
        self.assertIn("- `removed`: baseline only (3.000 ms)", out)
        self.assertIn("- `added`: current only (4.000 ms)", out)
        # One-sided rows must not appear in (or vanish from) the delta table.
        self.assertNotIn("| removed |", out)
        self.assertNotIn("| added |", out)
        self.assertIn("| kept |", out)

    def test_record_missing_wall_ms_counts_as_one_sided(self):
        out = "\n".join(bench_delta.render(
            {"broken": {"repetitions": 5}}, {"broken": rec(2.0)}))
        self.assertIn("- `broken`: current only (2.000 ms)", out)

    def test_zero_baseline_renders_na(self):
        out = "\n".join(bench_delta.render({"z": rec(0.0)}, {"z": rec(1.0)}))
        self.assertIn("| z | 0.000 | 1.000 | n/a |", out)

    def test_empty_inputs_report_every_expected_bench_missing(self):
        lines = bench_delta.render({}, {})
        out = "\n".join(lines)
        self.assertTrue(any(line.startswith("### ") for line in lines))
        self.assertIn("missing from BOTH files", out)
        for name in bench_delta.EXPECTED_BENCHES:
            self.assertIn(f"- `{name}`", out)

    def test_expected_list_covers_spmv_family(self):
        # The batch-1 decode fast path must stay in the perf smoke; losing
        # these records would hide a routing regression.
        for name in ("cpu_spmv", "cpu_spmv_portable", "cpu_spmv_int8"):
            self.assertIn(name, bench_delta.EXPECTED_BENCHES)

    def test_expected_bench_in_either_file_is_not_reported_missing(self):
        base = {n: rec(1.0) for n in bench_delta.EXPECTED_BENCHES
                if n != "cpu_spmv_int8"}
        cur = dict(base)
        cur["cpu_spmv_int8"] = rec(2.0)  # present on one side only
        out = "\n".join(bench_delta.render(base, cur))
        self.assertNotIn("missing from BOTH files", out)
        self.assertIn("- `cpu_spmv_int8`: current only (2.000 ms)", out)


if __name__ == "__main__":
    unittest.main()
