#!/usr/bin/env python3
"""Summarize a Chrome trace-event JSON file produced by `--trace=FILE`.

Reads the `{"displayTimeUnit": "ms", "traceEvents": [...]}` object written by
src/obs/chrome_trace.cc and prints one row per span name: count, total ms,
mean ms, p95 ms, and the share of the dominant parent span's time. Nesting is
reconstructed per thread from the complete ("X") events' ts/dur intervals, so
the report shows e.g. cpu_spmm.decode as a child of cpu_spmm.row_task with a
percentage of that parent.

Stdlib-only on purpose: this must run on a bare CI runner and in the CTest
wiring (tools/CMakeLists.txt) with no pip installs.

Traces may also carry nestable async events ("b"/"e" pairs keyed by
(cat, id) — the per-request spans RequestLog::ChromeAsyncSpans emits). Those
are rendered as a second, per-request latency table: one row per matched
begin/end pair with its request id, phase name, start, and duration.

Usage:
  trace_report.py TRACE.json            # print the per-span table(s)
  trace_report.py TRACE.json --validate # schema-check only; exit 1 on errors

--validate asserts the invariants Perfetto/chrome://tracing rely on (object
top level, traceEvents array, X events with string name + numeric ts/dur,
"b"/"e" events with an id and a matching partner, thread_name metadata shape)
so a trace that passes loads with no fixups.
"""

import argparse
import json
import os
import sys


def validate(trace):
    """Returns a list of human-readable schema violations (empty if valid)."""
    errors = []
    if not isinstance(trace, dict):
        return ["top level: expected a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents: expected an array"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: expected an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M", "b", "e"):
            errors.append(
                f"{where}: ph must be one of 'X', 'M', 'b', 'e', got {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: name must be a non-empty string")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                errors.append(f"{where}: {key} must be an integer")
        if ph in ("b", "e"):
            # Nestable async events: viewers match them on (cat, id), so both
            # must be present; the id may be a string (the writer's form, so
            # 64-bit ids survive double-coercing parsers) or an integer.
            if not isinstance(ev.get("cat"), str) or not ev["cat"]:
                errors.append(f"{where}: async event needs a non-empty cat")
            if not isinstance(ev.get("id"), (str, int)) or isinstance(
                    ev.get("id"), bool):
                errors.append(f"{where}: async event needs a string/int id")
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or isinstance(ts, bool):
                errors.append(f"{where}: ts must be a number")
            elif ts < 0:
                errors.append(f"{where}: ts must be >= 0, got {ts}")
            continue
        if ph == "X":
            for key in ("ts", "dur"):
                val = ev.get(key)
                if not isinstance(val, (int, float)) or isinstance(val, bool):
                    errors.append(f"{where}: {key} must be a number")
                elif val < 0:
                    errors.append(f"{where}: {key} must be >= 0, got {val}")
            if "args" in ev and not isinstance(ev["args"], dict):
                errors.append(f"{where}: args must be an object")
        else:  # metadata
            if ev.get("name") == "thread_name":
                args = ev.get("args")
                if not isinstance(args, dict) or not isinstance(
                        args.get("name"), str):
                    errors.append(
                        f"{where}: thread_name metadata needs args.name string")
    errors.extend(_validate_async_pairing(events))
    return errors


def _async_key(ev):
    """Span identity for pairing: viewers match b/e on (cat, id); the name
    disambiguates the writer's multiple phases per request id."""
    return (ev.get("cat"), str(ev.get("id")), ev.get("name"))


def _validate_async_pairing(events):
    """Every 'b' needs a later 'e' with the same (cat, id, name), and vice
    versa — an unbalanced pair renders as an open-ended span in viewers."""
    errors = []
    open_begins = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or ev.get("ph") not in ("b", "e"):
            continue
        key = _async_key(ev)
        if ev["ph"] == "b":
            open_begins.setdefault(key, []).append(i)
        else:
            stack = open_begins.get(key)
            if not stack:
                errors.append(
                    f"traceEvents[{i}]: 'e' event with no matching 'b' "
                    f"for (cat={key[0]!r}, id={key[1]!r}, name={key[2]!r})")
            else:
                stack.pop()
    for key, indices in sorted(open_begins.items(),
                               key=lambda kv: kv[1] and kv[1][0] or 0):
        for i in indices:
            errors.append(
                f"traceEvents[{i}]: 'b' event with no matching 'e' "
                f"for (cat={key[0]!r}, id={key[1]!r}, name={key[2]!r})")
    return errors


def _assign_parents(events):
    """Yields (event, parent_event_or_None) for every X event.

    Chrome complete events nest by interval containment within a thread. Sort
    by (ts asc, dur desc) so an enclosing span precedes its children, then
    keep a stack of currently-open spans per tid.
    """
    by_tid = {}
    for ev in events:
        if ev.get("ph") == "X":
            by_tid.setdefault(ev.get("tid", 0), []).append(ev)
    for tid_events in by_tid.values():
        tid_events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for ev in tid_events:
            end = ev["ts"] + ev["dur"]
            while stack and ev["ts"] >= stack[-1]["ts"] + stack[-1]["dur"]:
                stack.pop()
            parent = stack[-1] if stack and end <= stack[-1]["ts"] + stack[-1]["dur"] else None
            yield ev, parent
            stack.append(ev)


def _percentile(sorted_values, q):
    """Nearest-rank percentile (q in [0, 1]) of an ascending list."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * q // 1))  # ceil without math import
    return sorted_values[min(len(sorted_values), int(rank)) - 1]


def build_rows(trace):
    """Aggregates X events by span name.

    Returns rows sorted by total time descending:
      (name, count, total_ms, mean_ms, p95_ms, parent_name, pct_of_parent)
    parent_name is the most common parent span name ('-' for roots);
    pct_of_parent divides this name's total by the summed duration of the
    actual parent event instances, or None when the span is a root.
    """
    durs = {}
    # name -> parent name -> [instance count, child dur total, {id: parent dur}]
    by_parent = {}
    for ev, parent in _assign_parents(trace.get("traceEvents", [])):
        name = ev["name"]
        durs.setdefault(name, []).append(ev["dur"])
        if parent is not None:
            slot = by_parent.setdefault(name, {}).setdefault(
                parent["name"], [0, 0.0, {}])
            slot[0] += 1
            slot[1] += ev["dur"]
            # Deduplicate shared parents by identity so two children of one
            # parent do not double-count the parent's duration.
            slot[2][id(parent)] = parent["dur"]

    rows = []
    for name, values in durs.items():
        values.sort()
        total = sum(values)
        count = len(values)
        if name in by_parent:
            parent, slot = max(by_parent[name].items(),
                               key=lambda kv: (kv[1][0], kv[0]))
            # Only the instances actually nested under the dominant parent
            # count towards the percentage — instances that are roots (e.g.
            # worker-thread tasks whose caller span lives on another thread)
            # or sit under a different parent would inflate it past 100%.
            parent_total = sum(slot[2].values())
            pct = 100.0 * slot[1] / parent_total if parent_total > 0 else None
        else:
            parent, pct = "-", None
        rows.append((name, count, total / 1e3, total / count / 1e3,
                     _percentile(values, 0.95) / 1e3, parent, pct))
    rows.sort(key=lambda r: (-r[2], r[0]))
    return rows


def build_async_rows(trace):
    """Matches "b"/"e" pairs into per-request latency rows.

    Returns rows sorted by (start, id, name):
      (cat, id, name, start_ms, dur_ms)
    one per matched pair — for RequestLog traces that is one row per request
    phase (request/<outcome>, queued, exec), i.e. the per-request latency
    table. Unmatched events are skipped (validate reports them).
    """
    rows = []
    open_begins = {}
    for ev in trace.get("traceEvents", []):
        if not isinstance(ev, dict) or ev.get("ph") not in ("b", "e"):
            continue
        key = _async_key(ev)
        if ev["ph"] == "b":
            open_begins.setdefault(key, []).append(ev)
        elif open_begins.get(key):
            begin = open_begins[key].pop()
            cat, span_id, name = key
            rows.append((cat, span_id, name, begin["ts"] / 1e3,
                         (ev["ts"] - begin["ts"]) / 1e3))
    rows.sort(key=lambda r: (r[3], _numeric_id(r[1]), r[2]))
    return rows


def _numeric_id(span_id):
    """Sort request ids numerically when they are numeric strings."""
    try:
        return (0, int(span_id))
    except (TypeError, ValueError):
        return (1, span_id)


def render_async(rows):
    """Formats per-request async rows as an aligned table (list of lines)."""
    header = ("cat", "id", "span", "start ms", "dur ms")
    body = [(cat, str(span_id), name, f"{start:.3f}", f"{dur:.3f}")
            for cat, span_id, name, start, dur in rows]
    widths = [max(len(row[i]) for row in [header] + body)
              for i in range(len(header))]
    lines = []
    for row in [header] + body:
        cells = [row[0].ljust(widths[0]), row[1].rjust(widths[1]),
                 row[2].ljust(widths[2])]
        cells += [row[i].rjust(widths[i]) for i in range(3, len(row))]
        lines.append("  ".join(cells).rstrip())
    return lines


def render(rows):
    """Formats aggregate rows as an aligned text table (list of lines)."""
    header = ("span", "count", "total ms", "mean ms", "p95 ms", "parent",
              "% of parent")
    body = [(name, str(count), f"{total:.3f}", f"{mean:.3f}", f"{p95:.3f}",
             parent, "-" if pct is None else f"{pct:.1f}%")
            for name, count, total, mean, p95, parent, pct in rows]
    widths = [max(len(row[i]) for row in [header] + body)
              for i in range(len(header))]
    lines = []
    for row in [header] + body:
        cells = [row[0].ljust(widths[0])]
        cells += [row[i].rjust(widths[i]) for i in range(1, len(row))]
        lines.append("  ".join(cells).rstrip())
    return lines


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Summarize a Chrome trace-event JSON file.")
    parser.add_argument("trace", help="path to the trace JSON file")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check only; exit 1 on any violation")
    args = parser.parse_args(argv)

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, ValueError) as err:
        print(f"trace_report: cannot read {args.trace}: {err}", file=sys.stderr)
        return 1

    errors = validate(trace)
    if errors:
        for err in errors[:20]:
            print(f"trace_report: {err}", file=sys.stderr)
        if len(errors) > 20:
            print(f"trace_report: ... and {len(errors) - 20} more",
                  file=sys.stderr)
        return 1
    if args.validate:
        n = sum(1 for ev in trace["traceEvents"] if ev.get("ph") == "X")
        n_async = sum(
            1 for ev in trace["traceEvents"] if ev.get("ph") == "b")
        print(f"OK: {n} spans, {n_async} async spans, schema valid")
        return 0

    for line in render(build_rows(trace)):
        print(line)
    async_rows = build_async_rows(trace)
    if async_rows:
        print()
        print("per-request async spans:")
        for line in render_async(async_rows):
            print(line)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # The reader (e.g. `| head`) closed the pipe mid-table; not an error.
        os._exit(0)
