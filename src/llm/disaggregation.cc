#include "src/llm/disaggregation.h"

#include <algorithm>
#include <cmath>

#include "src/llm/attention.h"
#include "src/llm/serving.h"
#include "src/util/check.h"

namespace spinfer {

DisaggReport PlanDisaggregation(const DisaggConfig& cfg) {
  DisaggReport report;
  // A plan that cannot be meaningfully sized — non-positive rate or lengths,
  // an empty cluster side, or a zero-capacity scheduler — reports "nothing
  // fits" (all-false, all-zero) instead of CHECK-crashing: planners get fed
  // swept configs, and a hole in the sweep is data, not a bug.
  if (cfg.request_rate_rps <= 0.0 || cfg.input_len <= 0 ||
      cfg.output_len <= 0 || cfg.max_decode_batch <= 0 ||
      cfg.prefill_gpus < 1 || cfg.decode_gpus < 1) {
    return report;
  }

  const WeightFormat format = FrameworkWeightFormat(cfg.framework);
  const double weight_sparsity =
      format == WeightFormat::kDense ? 0.0 : cfg.sparsity;

  // ---- Prefill cluster: one prompt at a time per instance. ------------------
  EngineConfig prefill_cfg;
  prefill_cfg.model = cfg.model;
  prefill_cfg.framework = cfg.framework;
  prefill_cfg.device = cfg.prefill_device;
  prefill_cfg.num_gpus = cfg.prefill_gpus;
  prefill_cfg.sparsity = cfg.sparsity;
  const MemoryPlan prefill_mem =
      PlanMemory(cfg.model, format, weight_sparsity, /*batch=*/1, cfg.input_len,
                 cfg.prefill_gpus, cfg.prefill_device);
  report.prefill_fits = prefill_mem.Fits();
  if (report.prefill_fits) {
    report.prefill_ms = PrefillTimeUs(prefill_cfg, 1, cfg.input_len) / 1e3;
  }

  // KV handoff: the prompt's full cache crosses the fabric once.
  const uint64_t kv_bytes = KvCacheBytes(cfg.model, 1, cfg.input_len, 1);
  report.kv_transfer_ms =
      static_cast<double>(kv_bytes) / (cfg.transfer_bw_gbs * 1e6);
  report.ttft_ms = report.prefill_ms + report.kv_transfer_ms;

  // ---- Decode cluster: continuous batching at the feasible batch. ----------
  EngineConfig decode_cfg = prefill_cfg;
  decode_cfg.device = cfg.decode_device;
  decode_cfg.num_gpus = cfg.decode_gpus;
  const int64_t max_context = cfg.input_len + cfg.output_len;
  int64_t lo = 0;
  int64_t hi = cfg.max_decode_batch;
  while (lo < hi) {
    const int64_t mid = (lo + hi + 1) / 2;
    if (PlanMemory(cfg.model, format, weight_sparsity, mid, max_context,
                   cfg.decode_gpus, cfg.decode_device)
            .Fits()) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  report.decode_batch = lo;
  report.decode_fits = lo > 0;
  if (report.decode_fits) {
    const int64_t mid_context = cfg.input_len + cfg.output_len / 2;
    const double step_us = DecodeStepTimeUs(decode_cfg, report.decode_batch, mid_context);
    report.tpot_ms = step_us / 1e3;
    report.decode_tokens_per_s = static_cast<double>(report.decode_batch) * 1e6 / step_us;
    report.decode_requests_per_s =
        report.decode_tokens_per_s / static_cast<double>(cfg.output_len);
  }

  // ---- Cluster sizing. -------------------------------------------------------
  if (report.prefill_fits) {
    report.prefill_instances =
        cfg.request_rate_rps * report.prefill_ms / 1e3;  // utilization-based
  }
  if (report.decode_fits) {
    report.decode_instances = cfg.request_rate_rps / report.decode_requests_per_s;
  }
  report.total_gpus = std::ceil(report.prefill_instances) * cfg.prefill_gpus +
                      std::ceil(report.decode_instances) * cfg.decode_gpus;
  return report;
}

}  // namespace spinfer
