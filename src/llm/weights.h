// Weight storage accounting per inference framework.
//
// Frameworks differ in how they store transformer weights:
//   * FasterTransformer / DeepSpeed: dense FP16;
//   * Flash-LLM: Tiled-CSL (4B per nonzero);
//   * SpInfer: TCA-BME (2B per nonzero + 1 bit per element).
// Embeddings and the LM head stay dense in all frameworks (pruning targets
// the transformer blocks). Sizes use the exact closed-form storage models
// validated against the encoders.
#pragma once

#include <cstdint>

#include "src/llm/model_config.h"

namespace spinfer {

enum class WeightFormat {
  kDense,
  kTiledCsl,
  kTcaBme,
  kTcaBmeQuant,  // sparsity x INT8 composition (see format/tca_bme_quant.h)
};

const char* WeightFormatName(WeightFormat f);

// Bytes for one (m x k) weight matrix at `sparsity` in `format`.
uint64_t WeightMatrixBytes(int64_t m, int64_t k, double sparsity, WeightFormat format);

// Bytes for all of a model's weights (transformer blocks at `sparsity` in
// `format`; embeddings + LM head dense).
uint64_t ModelWeightBytes(const ModelConfig& model, double sparsity, WeightFormat format);

}  // namespace spinfer
