#include "src/llm/memory_plan.h"

#include <sstream>

#include "src/llm/attention.h"
#include "src/util/check.h"
#include "src/util/table.h"

namespace spinfer {

std::string MemoryPlan::ToString() const {
  std::ostringstream oss;
  oss << "weights=" << FormatBytes(weight_bytes) << " kv=" << FormatBytes(kv_cache_bytes)
      << " act=" << FormatBytes(activation_bytes) << " ws=" << FormatBytes(workspace_bytes)
      << " reserve=" << FormatBytes(reserve_bytes) << " total=" << FormatBytes(TotalBytes())
      << "/" << FormatBytes(capacity_bytes) << (Fits() ? " OK" : " OOM");
  return oss.str();
}

MemoryPlan PlanMemory(const ModelConfig& model, WeightFormat format, double sparsity,
                      int64_t batch, int64_t max_context, int num_gpus,
                      const DeviceSpec& dev) {
  SPINFER_CHECK(num_gpus >= 1 && batch > 0 && max_context > 0);
  MemoryPlan plan;
  plan.capacity_bytes = dev.memory_bytes;
  plan.weight_bytes =
      ModelWeightBytes(model, sparsity, format) / static_cast<uint64_t>(num_gpus);
  plan.kv_cache_bytes = KvCacheBytes(model, batch, max_context, num_gpus);
  // Activations: a few live (batch x context x hidden) FP16 buffers plus the
  // FFN intermediate, sharded over GPUs. During decode context collapses to
  // 1, but the prefill peak is what must fit.
  const uint64_t act_tokens = static_cast<uint64_t>(batch) *
                              static_cast<uint64_t>(max_context);
  const int64_t widest = model.gated_ffn ? 2 * model.ffn_hidden : model.ffn_hidden;
  plan.activation_bytes =
      (4ull * static_cast<uint64_t>(model.hidden) + static_cast<uint64_t>(widest)) *
      act_tokens * 2ull / static_cast<uint64_t>(num_gpus);
  // Split-K FP32 reduction workspace for the largest linear, plus logits.
  plan.workspace_bytes =
      4ull * static_cast<uint64_t>(widest) * static_cast<uint64_t>(batch) * 8ull +
      2ull * static_cast<uint64_t>(model.vocab) * static_cast<uint64_t>(batch);
  plan.reserve_bytes = 1ull << 30;  // CUDA context, cuBLAS/NCCL workspaces
  return plan;
}

}  // namespace spinfer
