#include "src/llm/serving_substrate.h"

#include "src/util/check.h"

namespace spinfer {

SingleInstanceSubstrate::SingleInstanceSubstrate(const TinyTransformer* model,
                                                 int64_t kv_block_tokens,
                                                 int64_t kv_num_blocks)
    : model_(model),
      cache_(model->KvCacheConfig(kv_block_tokens, kv_num_blocks)) {
  SPINFER_CHECK(model != nullptr);
}

const TinyConfig& SingleInstanceSubstrate::model_config() const {
  return model_->config();
}

PagedKvCache::PrefixMatch SingleInstanceSubstrate::MatchPrefix(
    const std::vector<int32_t>& prompt) const {
  return cache_.MatchPrefix(prompt);
}

bool SingleInstanceSubstrate::AddSequenceSharing(
    int64_t seq_id, const std::vector<int32_t>& prompt, int64_t tokens,
    const PagedKvCache::PrefixMatch& match) {
  (void)prompt;  // only sharded substrates re-derive per-shard matches
  return cache_.AddSequenceSharing(seq_id, tokens, match);
}

void SingleInstanceSubstrate::RemoveSequence(int64_t seq_id) {
  cache_.RemoveSequence(seq_id);
}

void SingleInstanceSubstrate::IndexPrefix(int64_t seq_id,
                                          const std::vector<int32_t>& prompt,
                                          int64_t filled) {
  cache_.IndexPrefix(seq_id, prompt, filled);
}

void SingleInstanceSubstrate::MixedStep(const std::vector<int64_t>& dec_ids,
                                        const std::vector<int32_t>& dec_last,
                                        const std::vector<PrefillChunk>& chunks,
                                        MatmulBackend backend,
                                        std::vector<int32_t>* dec_next,
                                        std::vector<int32_t>* chunk_next) {
  model_->MixedStep(dec_ids, dec_last, chunks, backend, &cache_, dec_next,
                    chunk_next);
}

}  // namespace spinfer
