// Tensor-parallel communication model (Megatron-style sharding, as used by
// FasterTransformer and inherited by SpInfer's and Flash-LLM's integrations).
//
// Each decoder layer performs two all-reduces over the activations (after
// the attention output projection and after the FFN down projection). Cost
// follows the alpha-beta ring model on the platform interconnect: PCIe on the
// RTX4090 testbed (the paper measures 30.5 GB/s) and NVLink on A6000 — the
// source of the Fig. 15 COMM gap between the two platforms.
#pragma once

#include <cstdint>

#include "src/gpusim/device_spec.h"

namespace spinfer {

// Time for one all-reduce of `bytes` across `num_gpus` (ring algorithm:
// 2*(g-1)/g data exchange plus per-step latency).
double AllReduceTimeUs(uint64_t bytes, int num_gpus, const DeviceSpec& dev);

// Total per-layer communication for a token batch of `tokens` rows of
// `hidden` FP16 activations: two all-reduces.
double LayerCommTimeUs(int64_t tokens, int64_t hidden, int num_gpus,
                       const DeviceSpec& dev);

}  // namespace spinfer
