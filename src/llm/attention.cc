#include "src/llm/attention.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace spinfer {
namespace {

// Sustained efficiencies for the attention kernels (FlashAttention-style
// fused implementations).
constexpr double kAttnBwEff = 0.80;
constexpr double kAttnTcEff = 0.45;
// Softmax / rotary / cache-append overhead per layer per step.
constexpr double kAttnFixedPerLayerUs = 1.5;

}  // namespace

uint64_t KvCacheBytes(const ModelConfig& model, int64_t batch, int64_t context,
                      int num_gpus) {
  SPINFER_CHECK(num_gpus >= 1);
  const uint64_t kv_dim = static_cast<uint64_t>(model.kv_heads) *
                          static_cast<uint64_t>(model.head_dim());
  return 2ull * static_cast<uint64_t>(model.layers) * kv_dim *
         static_cast<uint64_t>(batch) * static_cast<uint64_t>(context) * 2ull /
         static_cast<uint64_t>(num_gpus);
}

AttentionCost DecodeAttentionCost(const ModelConfig& model, int64_t batch,
                                  int64_t context, int num_gpus, const DeviceSpec& dev) {
  AttentionCost cost;
  cost.kv_bytes_read = KvCacheBytes(model, batch, context, num_gpus);
  // QK^T and PV over the cached context for the new token.
  const uint64_t head_work = static_cast<uint64_t>(model.heads / num_gpus) *
                             static_cast<uint64_t>(model.head_dim());
  cost.flops = 2ull * 2ull * static_cast<uint64_t>(model.layers) *
               static_cast<uint64_t>(batch) * head_work *
               static_cast<uint64_t>(context);
  const double mem_us =
      static_cast<double>(cost.kv_bytes_read) / (dev.dram_bw_gbs * kAttnBwEff * 1e3);
  const double compute_us =
      static_cast<double>(cost.flops) / (dev.cuda_fp16_tflops * kAttnTcEff * 1e6);
  cost.time_us = std::max(mem_us, compute_us) +
                 kAttnFixedPerLayerUs * static_cast<double>(model.layers);
  return cost;
}

AttentionCost PrefillAttentionCost(const ModelConfig& model, int64_t batch,
                                   int64_t seq_len, int num_gpus, const DeviceSpec& dev) {
  AttentionCost cost;
  // Causal attention: ~seq^2/2 interactions for QK^T and PV.
  const uint64_t head_work = static_cast<uint64_t>(model.heads / num_gpus) *
                             static_cast<uint64_t>(model.head_dim());
  cost.flops = 2ull * static_cast<uint64_t>(model.layers) *
               static_cast<uint64_t>(batch) * head_work *
               static_cast<uint64_t>(seq_len) * static_cast<uint64_t>(seq_len);
  // FlashAttention streams K/V tiles once per query block; traffic ~ O(seq^2
  // / tile) is folded into the efficiency factor, so count the cache write.
  cost.kv_bytes_read = KvCacheBytes(model, batch, seq_len, num_gpus);
  const double mem_us =
      static_cast<double>(cost.kv_bytes_read) / (dev.dram_bw_gbs * kAttnBwEff * 1e3);
  const double compute_us =
      static_cast<double>(cost.flops) / (dev.tc_fp16_tflops * kAttnTcEff * 1e6);
  cost.time_us = std::max(mem_us, compute_us) +
                 kAttnFixedPerLayerUs * static_cast<double>(model.layers);
  return cost;
}

}  // namespace spinfer
