// Portable half of the batched paged-attention kernel: the batch driver
// (validation, per-item page-table resolution, scratch growth, ThreadPool
// fan-out, SIMD dispatch, tracing) plus the scalar block kernels shared
// through paged_attention_inner.h, and the retained scalar reference.
//
// Compiled with -ffp-contract=off (see src/llm/CMakeLists.txt): every
// multiply and add must round separately so results are bit-identical to the
// AVX2 unit and to the pre-fusion per-element loop.
#include "src/llm/paged_attention.h"

#include <algorithm>
#include <cmath>

#include "src/llm/paged_attention_inner.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/cpu_features.h"
#include "src/util/thread_pool.h"

namespace spinfer {
namespace {

using paged_attention_detail::AttnPhaseRecorder;
using paged_attention_detail::PvBlockFn;
using paged_attention_detail::QkBlockFn;

// AlignedBuffer::Reserve allocates exactly what is asked, so a decode loop
// whose context grows one token per step would reallocate `scores` every
// step. Growing geometrically keeps the serving loop's allocation count
// O(log max_context) instead of O(steps).
void ReserveGeometric(AlignedBuffer<float>* buf, size_t count) {
  if (count > buf->capacity()) {
    buf->Reserve(std::max(count, 2 * buf->capacity()));
  }
}

// Per-work-item scratch slices are padded to whole cache lines so
// concurrently running tasks never share a line (speed only — each task's
// writes are private either way).
int64_t RoundUpLine(int64_t floats) { return (floats + 15) & ~int64_t{15}; }

void BatchImpl(const PagedKvCache& cache, int64_t layer, int64_t heads,
               int64_t kv_heads, const FloatMatrix& q,
               const std::vector<PagedAttentionItem>& items, FloatMatrix* out,
               PagedAttentionScratch* scratch, CpuSpmmVariant variant) {
  const int64_t kv_dim = cache.config().kv_dim;
  SPINFER_CHECK(heads > 0 && kv_heads > 0);
  SPINFER_CHECK_MSG(heads % kv_heads == 0,
                    "GQA requires kv_heads to divide heads");
  SPINFER_CHECK(kv_dim % kv_heads == 0);
  const int64_t hd = kv_dim / kv_heads;
  const int64_t q_rows = heads * hd;
  SPINFER_CHECK_EQ(q.rows(), q_rows);
  SPINFER_CHECK_EQ(out->rows(), q_rows);
  const int64_t ni = static_cast<int64_t>(items.size());
  if (ni == 0) {
    return;
  }

  // Resolve every item's horizon and page table once, up front: the block
  // lists stay valid for the whole call (the cache is const), and the hot
  // loop indexes them directly.
  scratch->contexts.resize(static_cast<size_t>(ni));
  scratch->block_lists.resize(static_cast<size_t>(ni));
  int64_t max_ctx = 0;
  for (int64_t i = 0; i < ni; ++i) {
    const PagedAttentionItem& it = items[static_cast<size_t>(i)];
    SPINFER_CHECK(it.col >= 0 && it.col < q.cols());
    SPINFER_CHECK_EQ(out->cols(), q.cols());
    const int64_t ctx =
        it.context < 0 ? cache.SequenceTokens(it.seq_id) : it.context;
    SPINFER_CHECK_MSG(ctx > 0,
                      "sequence " << it.seq_id << " has no cached tokens");
    SPINFER_CHECK(ctx <= cache.SequenceTokens(it.seq_id));
    const std::vector<int32_t>* blocks = cache.SequenceBlockList(it.seq_id);
    SPINFER_CHECK(blocks != nullptr);
    scratch->contexts[static_cast<size_t>(i)] = ctx;
    scratch->block_lists[static_cast<size_t>(i)] = blocks;
    max_ctx = std::max(max_ctx, ctx);
  }

  const int64_t n_work = ni * heads;
  const int64_t hd_stride = RoundUpLine(hd);
  const int64_t ctx_stride = RoundUpLine(max_ctx);
  ReserveGeometric(&scratch->q, static_cast<size_t>(n_work * hd_stride));
  ReserveGeometric(&scratch->acc, static_cast<size_t>(n_work * hd_stride));
  ReserveGeometric(&scratch->scores, static_cast<size_t>(n_work * ctx_stride));
  float* q_base = scratch->q.data();
  float* acc_base = scratch->acc.data();
  float* scores_base = scratch->scores.data();

  const bool tracing = obs::TracingEnabled();
  obs::TraceScope call_scope("paged_attn");
  if (call_scope.active()) {
    call_scope.AddArg("items", ni);
    call_scope.AddArg("heads", heads);
    call_scope.AddArg("max_ctx", max_ctx);
  }

  const bool avx2 = variant == CpuSpmmVariant::kAvx2;
  const QkBlockFn qk_fn = avx2 ? &paged_attention_detail::QkBlockAvx2
                               : &paged_attention_detail::ScalarQkBlock;
  const PvBlockFn pv_fn = avx2 ? &paged_attention_detail::PvBlockAvx2
                               : &paged_attention_detail::ScalarPvBlock;
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(hd));
  const int64_t group = heads / kv_heads;

  // One task per (item, head); each owns rows [h*hd, (h+1)*hd) of its item's
  // output column, so writes are disjoint and bits thread-count-independent.
  // grain=1: tasks are coarse (a whole context sweep) and ragged contexts
  // make them uneven, so finer chunks schedule better than block splits.
  ParallelFor(
      0, n_work,
      [&](int64_t idx) {
        const int64_t i = idx / heads;
        const int64_t h = idx % heads;
        const PagedAttentionItem& it = items[static_cast<size_t>(i)];
        const std::vector<int32_t>& blocks =
            *scratch->block_lists[static_cast<size_t>(i)];
        const int64_t ctx = scratch->contexts[static_cast<size_t>(i)];
        const int64_t r0q = h * hd;
        const int64_t r0k = (h / group) * hd;
        float* qh = q_base + idx * hd_stride;
        float* acc = acc_base + idx * hd_stride;
        float* sc = scores_base + idx * ctx_stride;
        if (!tracing) {
          paged_attention_detail::RunAttentionItem<false>(
              cache, layer, blocks, ctx, q, it.col, r0q, r0k, hd, inv_sqrt_d,
              qk_fn, pv_fn, qh, sc, acc, out);
          return;
        }
        AttnPhaseRecorder rec;
        obs::Tracer& tracer = obs::Tracer::Global();
        const uint64_t task_start = tracer.NowNs();
        paged_attention_detail::RunAttentionItem<true>(
            cache, layer, blocks, ctx, q, it.col, r0q, r0k, hd, inv_sqrt_d,
            qk_fn, pv_fn, qh, sc, acc, out, &rec);
        const uint64_t task_end = tracer.NowNs();
        obs::TraceArg task_args[3] = {{"seq", it.seq_id},
                                      {"head", h},
                                      {"ctx", ctx}};
        tracer.Record("attn.item", task_start, task_end - task_start,
                      task_args, 3);
        // The fused pass is one walk, but the phase split still matters for
        // profiling: synthetic child slices laid end to end, like
        // cpu_spmv.convert/accumulate.
        tracer.Record("attn.qk", task_start, rec.qk_ns);
        tracer.Record("attn.softmax", task_start + rec.qk_ns, rec.softmax_ns);
        tracer.Record("attn.pv", task_start + rec.qk_ns + rec.softmax_ns,
                      rec.pv_ns);
      },
      /*grain=*/1);
}

}  // namespace

namespace paged_attention_detail {
uint64_t AttnPhaseRecorder::Now() const { return obs::Tracer::Global().NowNs(); }
}  // namespace paged_attention_detail

void PagedAttentionDecodeBatch(const PagedKvCache& cache, int64_t layer,
                               int64_t heads, int64_t kv_heads,
                               const FloatMatrix& q,
                               const std::vector<PagedAttentionItem>& items,
                               FloatMatrix* out,
                               PagedAttentionScratch* scratch) {
  BatchImpl(cache, layer, heads, kv_heads, q, items, out, scratch,
            ActivePagedAttentionVariant());
}

void PagedAttentionDecodeBatchVariant(
    const PagedKvCache& cache, int64_t layer, int64_t heads, int64_t kv_heads,
    const FloatMatrix& q, const std::vector<PagedAttentionItem>& items,
    FloatMatrix* out, PagedAttentionScratch* scratch, CpuSpmmVariant v) {
  SPINFER_CHECK_MSG(
      PagedAttentionVariantAvailable(v),
      "requested paged-attention variant is unavailable on this machine");
  BatchImpl(cache, layer, heads, kv_heads, q, items, out, scratch, v);
}

bool PagedAttentionVariantAvailable(CpuSpmmVariant v) {
  if (v == CpuSpmmVariant::kPortable) {
    return true;
  }
  const CpuFeatures& f = GetCpuFeatures();
  return paged_attention_detail::PagedAttentionAvx2Compiled() && f.avx2 &&
         f.fma;
}

CpuSpmmVariant ActivePagedAttentionVariant() {
  static const CpuSpmmVariant v = [] {
    if (ActiveSimdLevel() == SimdLevel::kAvx2 &&
        PagedAttentionVariantAvailable(CpuSpmmVariant::kAvx2)) {
      return CpuSpmmVariant::kAvx2;
    }
    return CpuSpmmVariant::kPortable;
  }();
  return v;
}

void PagedAttentionDecodeReference(const PagedKvCache& cache, int64_t layer,
                                   int64_t seq_id, int64_t heads,
                                   int64_t kv_heads, const FloatMatrix& q,
                                   int64_t col, FloatMatrix* out,
                                   std::vector<float>* scores,
                                   int64_t context) {
  const int64_t kv_dim = cache.config().kv_dim;
  SPINFER_CHECK(heads > 0 && kv_heads > 0);
  SPINFER_CHECK_MSG(heads % kv_heads == 0,
                    "GQA requires kv_heads to divide heads");
  SPINFER_CHECK(kv_dim % kv_heads == 0);
  const int64_t hd = kv_dim / kv_heads;
  SPINFER_CHECK_EQ(q.rows(), heads * hd);
  SPINFER_CHECK_EQ(out->rows(), heads * hd);
  const int64_t ctx = context < 0 ? cache.SequenceTokens(seq_id) : context;
  SPINFER_CHECK_MSG(ctx > 0, "sequence " << seq_id
                                         << " has no cached tokens to attend "
                                            "over (max_score needs ctx > 0)");
  SPINFER_CHECK(ctx <= cache.SequenceTokens(seq_id));
  const std::vector<int32_t>* blocks = cache.SequenceBlockList(seq_id);
  SPINFER_CHECK(blocks != nullptr);
  const int64_t bt = cache.config().block_tokens;
  if (static_cast<int64_t>(scores->size()) < ctx) {
    scores->resize(static_cast<size_t>(ctx));
  }
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(hd));
  const int64_t group = heads / kv_heads;
  for (int64_t head = 0; head < heads; ++head) {
    const int64_t r0q = head * hd;
    const int64_t r0k = (head / group) * hd;
    float max_score = -1e30f;
    for (int64_t t = 0; t < ctx; ++t) {
      const float* krow =
          cache.KBlockBase(layer, (*blocks)[static_cast<size_t>(t / bt)]) +
          (t % bt) * kv_dim;
      float dot = 0.0f;
      for (int64_t r = 0; r < hd; ++r) {
        dot += q.at(r0q + r, col) * krow[r0k + r];
      }
      (*scores)[static_cast<size_t>(t)] = dot * inv_sqrt_d;
      max_score = std::max(max_score, (*scores)[static_cast<size_t>(t)]);
    }
    float denom = 0.0f;
    for (int64_t t = 0; t < ctx; ++t) {
      float& s = (*scores)[static_cast<size_t>(t)];
      s = std::exp(s - max_score);
      denom += s;
    }
    // t-outer/r-inner: V rows stream once per head and the block pointer
    // resolves once per token, while every out element keeps its exact
    // ascending-t accumulation chain (the pre-fix r-outer loop formed the
    // same chains at O(hd * ctx) pointer resolutions).
    for (int64_t r = 0; r < hd; ++r) {
      out->at(r0q + r, col) = 0.0f;
    }
    for (int64_t t = 0; t < ctx; ++t) {
      const float* vrow =
          cache.VBlockBase(layer, (*blocks)[static_cast<size_t>(t / bt)]) +
          (t % bt) * kv_dim;
      const float s = (*scores)[static_cast<size_t>(t)];
      for (int64_t r = 0; r < hd; ++r) {
        out->at(r0q + r, col) += s * vrow[r0k + r];
      }
    }
    for (int64_t r = 0; r < hd; ++r) {
      out->at(r0q + r, col) /= denom;
    }
  }
}

}  // namespace spinfer
