// Executing continuous-batching serving engine.
//
// Where SimulateServing (src/llm/serving.h) only *prices* a serving
// trajectory, this engine *runs* one: real requests with real token ids flow
// through a thread-safe queue, an Orca-style iteration-level scheduler, a
// block-paged KV cache (PagedKvCache), and TinyTransformer's mixed
// prefill+decode step — one SpMM with N = decode_batch + prefill_chunk
// columns per weight matrix per iteration.
//
// Time model: execution is real, the clock is virtual. Each iteration's
// duration is priced by the same cost model the analytic simulator uses
// (PrefillTimeUs / DecodeStepTimeUs), with arithmetic mirrored expression for
// expression. Consequences, both load-bearing for the tests:
//   * Reports are deterministic for a fixed seed — independent of thread
//     count, machine speed, and tracing — because no wall clock feeds them.
//   * With EOS disabled, uniform request shapes, defaults for the v2 knobs
//     (no chunking, no prefix cache, no cancels), and an ample KV pool, the
//     engine's trajectory coincides with SimulateServing's, so the analytic
//     report cross-checks the executing one to floating-point exactness.
//
// Scheduling policy (DESIGN.md §5, §7): strict-FIFO admission at iteration
// granularity. A request is admitted only when a batch slot is free AND the
// KV pool can cover its prompt blocks now plus every running sequence's
// worst-case growth to prompt + max_new — the growth-reserve form of the
// full-footprint commitment, which collapses to the classic
// sum-of-footprints check when nothing is shared but counts shared prefix
// blocks once when it is. AppendToken can therefore never fail mid-decode
// and no preemption machinery is needed. The queue head blocks admission
// while it waits (no skip-ahead), which is what makes FIFO-completion and
// no-starvation testable properties.
//
// v2 additions (all default-off; defaults reproduce the v1 engine bit for
// bit): hash-based shared-prefix KV reuse (enable_prefix_cache), chunked
// prefill (prefill_chunk_tokens), and client cancellation (Cancel).
//
// Observability (ServingObsConfig, all default-off): a per-request event
// timeline (obs::RequestLog), a scheduler flight recorder wired into
// SPINFER_CHECK crash dumps (obs::FlightRecorder + src/util/crash_dump), and
// a windowed SLO tracker publishing srv.slo.* gauges (obs::SloTracker). All
// of it only *reads* engine state: token streams, reports, and the virtual
// clock are bit-identical with observability on or off, and a
// SPINFER_TRACING_DISABLED build compiles the recording sites out.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/llm/engine.h"
#include "src/llm/kv_allocator.h"
#include "src/llm/serving_substrate.h"
#include "src/llm/tiny_transformer.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/request_log.h"
#include "src/obs/slo_tracker.h"
#include "src/util/stats.h"

namespace spinfer {

// Cost-model description of a TinyTransformer, so the virtual clock and the
// analytic cross-check price the same architecture.
ModelConfig ModelConfigFor(const TinyConfig& cfg);

enum class FinishReason {
  kNone,       // still queued or running
  kEos,        // generated the configured EOS token
  kMaxTokens,  // hit its max_new_tokens budget
  kRejected,   // can never run (empty/oversized prompt, or footprint > pool)
  kCancelled,  // client cancellation (ServingEngine::Cancel)
};

const char* FinishReasonName(FinishReason r);

// Request-scoped observability. Everything is default-off, and enabling any
// of it never changes token streams, reports, or the virtual clock
// (tests/request_log_test.cc asserts bit-identity). Under
// SPINFER_TRACING_DISABLED these knobs are ignored and the recording sites
// compile out.
struct ServingObsConfig {
  // Structured per-request event timeline; read it after Run via
  // ServingEngine::request_log() (WriteJsonl / ChromeAsyncSpans).
  bool request_timeline = false;
  // Ring capacity (scheduler iterations) of the flight recorder; 0 disables
  // it. While enabled, Run installs the SPINFER_CHECK crash-dump hook so a
  // check failure dumps the last N iterations to stderr (the engine
  // uninstalls its own hook on destruction).
  int64_t flight_recorder_iters = 0;
  bool dump_flight_recorder_on_check = true;
  // Sliding-window TTFT/TBT percentiles + KV occupancy, published to
  // srv.slo.* gauges in the global MetricsRegistry every iteration.
  bool slo_tracker = false;
  int64_t slo_window_iters = 64;
  // Wall clock for the timeline's wall_ns stamps (borrowed, must outlive the
  // engine; nullptr = monotonic SteadyClock). Tests inject obs::FakeClock to
  // make the JSONL byte-stable.
  obs::Clock* wall_clock = nullptr;
};

struct ServingEngineConfig {
  int64_t max_batch = 8;
  int64_t kv_block_tokens = 16;
  int64_t kv_num_blocks = 64;
  // Token id that terminates a sequence early; -1 disables EOS eviction.
  int32_t eos_token = -1;
  MatmulBackend backend = MatmulBackend::kTcaBmeCpu;
  // Chunked prefill: cap on prompt tokens computed per iteration across all
  // prefilling sequences; a longer prompt spreads over several iterations,
  // riding the decode batch's SpMM, so one long arrival stalls decode by at
  // most one chunk. 0 = a whole prompt prefills in its admission iteration
  // (the v1 schedule).
  int64_t prefill_chunk_tokens = 0;
  // Shared-prefix KV reuse: admission matches the prompt against the cache's
  // prefix index and adopts identical full blocks (refcounted) instead of
  // recomputing them; only the unmatched tail is prefetched. Off by default.
  bool enable_prefix_cache = false;
  // Prices the virtual clock (PrefillTimeUs / DecodeStepTimeUs).
  EngineConfig cost;
  // Request-scoped observability (timeline / flight recorder / SLO tracker).
  ServingObsConfig obs;
};

// Poisson open-loop traffic for InjectPoissonArrivals. Arrival times are
// drawn from Rng(seed) with exactly the analytic simulator's draw sequence;
// request *content* (prompt lengths, token ids, output budgets) comes from an
// independently-seeded second stream so the arrival process stays comparable
// to SimulateServing whatever the content distribution.
struct PoissonTraffic {
  double arrival_rate_rps = 4.0;
  double horizon_s = 10.0;
  uint64_t seed = 1;
  int64_t prompt_len_min = 8;
  int64_t prompt_len_max = 8;
  int64_t max_new_min = 8;
  int64_t max_new_max = 8;
};

// Full per-request trajectory, kept for every submitted request.
struct RequestRecord {
  int64_t id = 0;
  std::vector<int32_t> prompt;
  int64_t max_new_tokens = 0;
  std::vector<int32_t> generated;  // includes the EOS token when one fired
  double arrival_s = 0.0;  // virtual
  double admit_s = 0.0;    // virtual; 0 if never admitted
  double first_token_s = 0.0;  // virtual; 0 if no token was produced
  double finish_s = 0.0;   // virtual
  double latency_ms = 0.0;  // finish - arrival; 0 for rejected
  double ttft_ms = 0.0;     // first_token - arrival; 0 if no token produced
  // Prompt tokens served from the shared-prefix cache at admission (0
  // without a hit or with the cache disabled).
  int64_t cached_prompt_tokens = 0;
  FinishReason reason = FinishReason::kNone;
};

struct ExecServingReport {
  int64_t arrived = 0;
  int64_t rejected = 0;
  int64_t cancelled = 0;
  int64_t completed = 0;
  int64_t tokens_generated = 0;
  int64_t iterations = 0;
  int64_t peak_batch = 0;
  int64_t peak_kv_blocks = 0;
  // Prefix-cache effectiveness: prompt blocks adopted from the index vs
  // freshly allocated at admission, and copy-on-write block copies.
  int64_t prefix_hit_blocks = 0;
  int64_t prefix_miss_blocks = 0;
  int64_t cow_copies = 0;
  // Longest priced iteration (virtual). An iteration is every in-flight
  // decode sequence's inter-token gap, so this IS the worst decode stall:
  // unchunked, one long prefill pushes it to the whole prompt's cost;
  // chunked, it is bounded by one chunk's prefill riding a decode step.
  double peak_iter_ms = 0.0;
  double sim_time_s = 0.0;
  double throughput_tps = 0.0;  // generated tokens per virtual second
  double mean_batch = 0.0;      // time-weighted in-flight sequences
  LatencySummary ttft;          // time-to-first-token over completed requests
  LatencySummary latency;

  // Deterministic rendering; the byte-stability tests compare these strings
  // across reruns and thread counts.
  std::string ToString() const;
};

class ServingEngine {
 public:
  // `model` is borrowed and must outlive the engine. The KV pool
  // (kv_num_blocks x kv_block_tokens slots per layer) is allocated here,
  // inside an owned SingleInstanceSubstrate.
  ServingEngine(const TinyTransformer* model, const ServingEngineConfig& cfg);
  // Runs the same scheduler over a caller-owned execution substrate (e.g. a
  // tensor-parallel ShardedEngine). `substrate` is borrowed, must outlive the
  // engine, and must not be shared with another engine (the scheduler owns
  // its sequence-id space). cfg.kv_block_tokens/kv_num_blocks are ignored —
  // the substrate brings its own pool.
  ServingEngine(ServingSubstrate* substrate, const ServingEngineConfig& cfg);
  // Uninstalls this engine's crash-dump hook (if it installed one).
  ~ServingEngine();

  // Thread-safe enqueue; returns the request id (dense, starting at 0, in
  // submission order). `arrival_s` is the request's virtual arrival time.
  int64_t Submit(std::vector<int32_t> prompt, int64_t max_new_tokens,
                 double arrival_s = 0.0);

  // Draws an open-loop Poisson trace and submits every request. Deterministic
  // for a fixed traffic spec (see PoissonTraffic).
  void InjectPoissonArrivals(const PoissonTraffic& traffic);

  // Requests cancellation of `id` at virtual time `at_s`. Takes effect at
  // the first iteration boundary whose virtual time is >= at_s: a queued
  // request is dropped, a running one is evicted and its (refcounted) KV
  // blocks released; either way the record's terminal state is kCancelled.
  // No-op for a request that already finished by then. Thread-safe; may be
  // called before or during Run.
  void Cancel(int64_t id, double at_s = 0.0);

  // Runs the scheduler until every submitted request is finished (completed,
  // rejected, or cancelled) and returns the report. Single-shot: one Run per
  // engine. Must not race Submit.
  ExecServingReport Run();

  // Post-Run inspection. `results()` is indexed by request id.
  const std::vector<RequestRecord>& results() const { return records_; }
  // Request ids in the order the scheduler admitted them (strict FIFO by
  // (arrival, id) — the no-starvation property tests assert on this).
  const std::vector<int64_t>& admission_order() const { return admission_order_; }
  const PagedKvCache& kv_cache() const { return substrate_->cache(); }

  // Observability surfaces; nullptr when the corresponding ServingObsConfig
  // knob is off (always nullptr under SPINFER_TRACING_DISABLED).
  obs::RequestLog* request_log() const { return request_log_.get(); }
  obs::FlightRecorder* flight_recorder() const { return flight_recorder_.get(); }
  obs::SloTracker* slo_tracker() const { return slo_tracker_.get(); }

 private:
  struct Active {
    int64_t id = 0;
    // Next prompt position to compute; == prompt length once prefill is
    // done and the sequence decodes.
    int64_t prefill_pos = 0;
  };

  // A request the pool could never hold, or that overflows the model's
  // context window, is rejected at queue-head time.
  bool IsServable(const RequestRecord& r) const;

  // Owned when constructed from a TinyTransformer; null when the substrate
  // is borrowed. `substrate_` is the working pointer either way.
  std::unique_ptr<SingleInstanceSubstrate> owned_substrate_;
  ServingSubstrate* substrate_;
  ServingEngineConfig cfg_;

  std::mutex submit_mu_;
  std::vector<RequestRecord> records_;
  // Pending Cancel calls as (at_s, id), drained by Run at iteration
  // boundaries; guarded by submit_mu_.
  std::vector<std::pair<double, int64_t>> cancels_;
  std::vector<int64_t> admission_order_;
  bool ran_ = false;

  // Constructed from cfg.obs in the ctor; null when off. Declared after the
  // state they observe so they are destroyed first.
  std::unique_ptr<obs::RequestLog> request_log_;
  std::unique_ptr<obs::FlightRecorder> flight_recorder_;
  std::unique_ptr<obs::SloTracker> slo_tracker_;
};

}  // namespace spinfer
