// Execution substrate behind the serving engine's scheduler.
//
// ServingEngine's Orca-style loop (admission, chunk scheduling, virtual-time
// pricing, retirement) is independent of WHAT executes an iteration: a single
// TinyTransformer over one PagedKvCache, or N tensor-parallel shards each
// holding a slice of the weights and of every sequence's KV rows
// (ShardedEngine). This interface is that seam. The scheduler sees one
// logical KV pool — `cache()` is the accounting view it admits against — and
// one MixedStep; a sharded substrate fans both out to its shards, whose
// allocators run in lockstep (same operation sequence => same block tables),
// so shard 0's bookkeeping is exact for all of them.
#pragma once

#include <cstdint>
#include <vector>

#include "src/llm/kv_allocator.h"
#include "src/llm/tiny_transformer.h"

namespace spinfer {

class ServingSubstrate {
 public:
  virtual ~ServingSubstrate() = default;

  // Architecture of the served model (vocab for traffic generation, max_seq
  // for admission limits).
  virtual const TinyConfig& model_config() const = 0;

  // Accounting/read-only view of the KV pool: block counts, per-sequence
  // tokens, utilization, cow_copies. For a sharded substrate this is shard
  // 0's cache; lockstep allocators make it exact for every shard.
  virtual const PagedKvCache& cache() const = 0;

  // Longest indexed shared prefix of `prompt` (empty match when the prefix
  // cache is unused). The returned block ids are in terms of `cache()`.
  virtual PagedKvCache::PrefixMatch MatchPrefix(
      const std::vector<int32_t>& prompt) const = 0;

  // Registers `seq_id` with `tokens` slots, adopting `match` (from
  // MatchPrefix on this substrate) as its leading blocks. `prompt` is the
  // full prompt: a sharded substrate re-derives each shard's own match from
  // it (content hashing + lockstep allocation make the results identical).
  virtual bool AddSequenceSharing(int64_t seq_id,
                                  const std::vector<int32_t>& prompt,
                                  int64_t tokens,
                                  const PagedKvCache::PrefixMatch& match) = 0;

  // Releases `seq_id`'s blocks (refcount-aware) on every shard.
  virtual void RemoveSequence(int64_t seq_id) = 0;

  // Files `seq_id`'s full prompt-prefix blocks in the prefix index.
  virtual void IndexPrefix(int64_t seq_id, const std::vector<int32_t>& prompt,
                           int64_t filled) = 0;

  // One mixed continuous-batching iteration (TinyTransformer::MixedStep
  // semantics, against this substrate's own KV storage).
  virtual void MixedStep(const std::vector<int64_t>& dec_ids,
                         const std::vector<int32_t>& dec_last,
                         const std::vector<PrefillChunk>& chunks,
                         MatmulBackend backend, std::vector<int32_t>* dec_next,
                         std::vector<int32_t>* chunk_next) = 0;
};

// The classic single-model, single-cache substrate — ServingEngine's v1
// execution path, verbatim, behind the interface.
class SingleInstanceSubstrate : public ServingSubstrate {
 public:
  // `model` is borrowed and must outlive the substrate.
  SingleInstanceSubstrate(const TinyTransformer* model, int64_t kv_block_tokens,
                          int64_t kv_num_blocks);

  const TinyConfig& model_config() const override;
  const PagedKvCache& cache() const override { return cache_; }
  PagedKvCache::PrefixMatch MatchPrefix(
      const std::vector<int32_t>& prompt) const override;
  bool AddSequenceSharing(int64_t seq_id, const std::vector<int32_t>& prompt,
                          int64_t tokens,
                          const PagedKvCache::PrefixMatch& match) override;
  void RemoveSequence(int64_t seq_id) override;
  void IndexPrefix(int64_t seq_id, const std::vector<int32_t>& prompt,
                   int64_t filled) override;
  void MixedStep(const std::vector<int64_t>& dec_ids,
                 const std::vector<int32_t>& dec_last,
                 const std::vector<PrefillChunk>& chunks, MatmulBackend backend,
                 std::vector<int32_t>* dec_next,
                 std::vector<int32_t>* chunk_next) override;

 private:
  const TinyTransformer* model_;
  PagedKvCache cache_;
};

}  // namespace spinfer
