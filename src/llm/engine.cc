#include "src/llm/engine.h"

#include <algorithm>
#include <memory>

#include "src/baselines/cublas_gemm.h"
#include "src/baselines/flashllm_spmm.h"
#include "src/core/spinfer_kernel.h"
#include "src/llm/attention.h"
#include "src/llm/parallel.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"

namespace spinfer {
namespace {

// Per-layer small-op overhead (layernorms, residuals, activation, kernel
// launches) and per-step sampling/embedding overhead, microseconds.
double FrameworkLayerOverheadUs(Framework f) {
  switch (f) {
    case Framework::kDeepSpeed:
      return 6.0;
    case Framework::kSpInfer:
    case Framework::kSpInferInt8:
    case Framework::kFlashLlm:
    case Framework::kFasterTransformer:
      return 3.0;
  }
  SPINFER_UNREACHABLE("bad Framework");
}

constexpr double kSamplingOverheadUs = 15.0;

// DeepSpeed's inference kernels trail cuBLAS/FT tuning on these GPUs.
double FrameworkLinearPenalty(Framework f) {
  return f == Framework::kDeepSpeed ? 1.12 : 1.0;
}

// Prices one weight GEMM (m x k sharded already) at token count `tokens`.
double LinearTimeUs(Framework f, int64_t m, int64_t k, int64_t tokens, double sparsity,
                    const DeviceSpec& dev) {
  SpmmProblem p;
  p.m = m;
  p.k = k;
  p.n = tokens;
  p.sparsity = sparsity;
  switch (f) {
    case Framework::kSpInfer:
    case Framework::kSpInferInt8: {
      SpInferKernelConfig cfg;
      cfg.split_k = 0;  // auto-select per shape
      cfg.int8_values = f == Framework::kSpInferInt8;
      return SpInferSpmmKernel(cfg).Estimate(p, dev).time.total_us;
    }
    case Framework::kFlashLlm:
      return FlashLlmSpmmKernel().Estimate(p, dev).time.total_us;
    case Framework::kFasterTransformer:
    case Framework::kDeepSpeed: {
      p.sparsity = 0.0;
      return CublasGemmKernel().Estimate(p, dev).time.total_us *
             FrameworkLinearPenalty(f);
    }
  }
  SPINFER_UNREACHABLE("bad Framework");
}

// All decoder-layer linears for one step at `tokens`, tensor-parallel over
// `g` GPUs (column-parallel QKV/FC1, row-parallel OUT/FC2), plus LM head.
double StepLinearTimeUs(const EngineConfig& cfg, int64_t tokens) {
  const int g = cfg.num_gpus;
  const double sparsity =
      FrameworkWeightFormat(cfg.framework) == WeightFormat::kDense ? 0.0
                                                                   : cfg.sparsity;
  double us = 0.0;
  for (const GemmShape& shape : LayerGemmShapes(cfg.model)) {
    // Column-parallel shards M; row-parallel shards K. QKV and the FFN
    // up/gate projections are column-parallel; OUT and FFN down projections
    // are row-parallel.
    const bool column_parallel = shape.op == "qkv_proj" || shape.op == "ffn_fc1" ||
                                 shape.op == "ffn_gate_up";
    const int64_t m = column_parallel ? std::max<int64_t>(shape.m / g, 16) : shape.m;
    const int64_t k = column_parallel ? shape.k : std::max<int64_t>(shape.k / g, 16);
    us += LinearTimeUs(cfg.framework, m, k, tokens, sparsity, cfg.device);
  }
  us *= static_cast<double>(cfg.model.layers);
  // LM head (dense in every framework), vocab-sharded.
  us += LinearTimeUs(Framework::kFasterTransformer,
                     std::max<int64_t>(cfg.model.vocab / g, 16), cfg.model.hidden,
                     tokens, 0.0, cfg.device);
  return us;
}

double StepOtherTimeUs(const EngineConfig& cfg) {
  return FrameworkLayerOverheadUs(cfg.framework) * static_cast<double>(cfg.model.layers) +
         kSamplingOverheadUs;
}

}  // namespace

const char* FrameworkName(Framework f) {
  switch (f) {
    case Framework::kSpInfer:
      return "SpInfer";
    case Framework::kSpInferInt8:
      return "SpInfer-INT8";
    case Framework::kFlashLlm:
      return "Flash-LLM";
    case Framework::kFasterTransformer:
      return "FasterTransformer";
    case Framework::kDeepSpeed:
      return "DeepSpeed";
  }
  SPINFER_UNREACHABLE("bad Framework");
}

WeightFormat FrameworkWeightFormat(Framework f) {
  switch (f) {
    case Framework::kSpInfer:
      return WeightFormat::kTcaBme;
    case Framework::kSpInferInt8:
      return WeightFormat::kTcaBmeQuant;
    case Framework::kFlashLlm:
      return WeightFormat::kTiledCsl;
    case Framework::kFasterTransformer:
    case Framework::kDeepSpeed:
      return WeightFormat::kDense;
  }
  SPINFER_UNREACHABLE("bad Framework");
}

double DecodeStepTimeUs(const EngineConfig& cfg, int64_t batch, int64_t context) {
  SPINFER_CHECK(batch > 0 && context > 0);
  SPINFER_TRACE_SCOPE_ARG("engine.decode_step", "context", context);
  EngineConfig c = cfg;
  c.batch = batch;
  return StepLinearTimeUs(c, batch) +
         DecodeAttentionCost(c.model, batch, context, c.num_gpus, c.device).time_us +
         LayerCommTimeUs(batch, c.model.hidden, c.num_gpus, c.device) *
             static_cast<double>(c.model.layers) +
         StepOtherTimeUs(c);
}

double PrefillTimeUs(const EngineConfig& cfg, int64_t batch, int64_t seq_len) {
  SPINFER_CHECK(batch > 0 && seq_len > 0);
  SPINFER_TRACE_SCOPE_ARG("engine.prefill", "seq_len", seq_len);
  EngineConfig c = cfg;
  c.batch = batch;
  const int64_t tokens = batch * seq_len;
  return StepLinearTimeUs(c, tokens) +
         PrefillAttentionCost(c.model, batch, seq_len, c.num_gpus, c.device).time_us +
         LayerCommTimeUs(tokens, c.model.hidden, c.num_gpus, c.device) *
             static_cast<double>(c.model.layers) +
         StepOtherTimeUs(c);
}

InferenceReport SimulateInference(const EngineConfig& cfg) {
  SPINFER_CHECK(cfg.num_gpus >= 1 && cfg.batch > 0);
  SPINFER_CHECK(cfg.input_len > 0 && cfg.output_len > 0);
  obs::TraceScope scope("engine.simulate");
  if (scope.active()) {
    scope.AddArg("batch", cfg.batch);
    scope.AddArg("input_len", cfg.input_len);
    scope.AddArg("output_len", cfg.output_len);
    scope.AddArg("num_gpus", cfg.num_gpus);
  }
  InferenceReport report;

  const double weight_sparsity =
      FrameworkWeightFormat(cfg.framework) == WeightFormat::kDense ? 0.0 : cfg.sparsity;
  const int64_t max_context = cfg.input_len + cfg.output_len;
  report.memory = PlanMemory(cfg.model, FrameworkWeightFormat(cfg.framework),
                             weight_sparsity, cfg.batch, max_context, cfg.num_gpus,
                             cfg.device);
  if (!report.memory.Fits()) {
    report.oom = true;
    return report;
  }

  // ---- Prefill: all input tokens at once. ----------------------------------
  const int64_t prefill_tokens = cfg.batch * cfg.input_len;
  report.prefill.linear_us = StepLinearTimeUs(cfg, prefill_tokens);
  report.prefill.attention_us =
      PrefillAttentionCost(cfg.model, cfg.batch, cfg.input_len, cfg.num_gpus, cfg.device)
          .time_us;
  report.prefill.comm_us =
      LayerCommTimeUs(prefill_tokens, cfg.model.hidden, cfg.num_gpus, cfg.device) *
      static_cast<double>(cfg.model.layers);
  report.prefill.other_us = StepOtherTimeUs(cfg);

  // ---- Decode: one token per step, growing context. ------------------------
  const double step_linear_us = StepLinearTimeUs(cfg, cfg.batch);
  const double step_comm_us =
      LayerCommTimeUs(cfg.batch, cfg.model.hidden, cfg.num_gpus, cfg.device) *
      static_cast<double>(cfg.model.layers);
  const double step_other_us = StepOtherTimeUs(cfg);
  for (int64_t t = 0; t < cfg.output_len; ++t) {
    const int64_t context = cfg.input_len + t + 1;
    report.decode.linear_us += step_linear_us;
    report.decode.attention_us +=
        DecodeAttentionCost(cfg.model, cfg.batch, context, cfg.num_gpus, cfg.device)
            .time_us;
    report.decode.comm_us += step_comm_us;
    report.decode.other_us += step_other_us;
  }

  report.prefill_ms = report.prefill.TotalUs() / 1e3;
  report.decode_ms = report.decode.TotalUs() / 1e3;
  report.total_ms = report.prefill_ms + report.decode_ms;
  report.tokens_per_second = static_cast<double>(cfg.batch * cfg.output_len) /
                             (report.total_ms / 1e3);

  // Last-run summary gauges; overwritten per simulation so a bench sweep's
  // metrics dump reflects its final configuration.
  if (obs::TracingEnabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetGauge("engine.prefill_ms")->Set(report.prefill_ms);
    reg.GetGauge("engine.decode_ms")->Set(report.decode_ms);
    reg.GetGauge("engine.tokens_per_second")->Set(report.tokens_per_second);
  }
  return report;
}

}  // namespace spinfer
