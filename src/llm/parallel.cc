#include "src/llm/parallel.h"

#include "src/util/check.h"

namespace spinfer {

double AllReduceTimeUs(uint64_t bytes, int num_gpus, const DeviceSpec& dev) {
  SPINFER_CHECK(num_gpus >= 1);
  if (num_gpus == 1 || bytes == 0) {
    // One rank never leaves the die, and a zero-token batch moves nothing —
    // neither schedule should pay the ring's per-step latency.
    return 0.0;
  }
  const double g = static_cast<double>(num_gpus);
  const double steps = 2.0 * (g - 1.0);
  const double volume = 2.0 * (g - 1.0) / g * static_cast<double>(bytes);
  return steps * dev.link_latency_us + volume / (dev.link_bw_gbs * 1e3);
}

double LayerCommTimeUs(int64_t tokens, int64_t hidden, int num_gpus,
                       const DeviceSpec& dev) {
  const uint64_t bytes =
      2ull * static_cast<uint64_t>(tokens) * static_cast<uint64_t>(hidden);
  return 2.0 * AllReduceTimeUs(bytes, num_gpus, dev);
}

}  // namespace spinfer
