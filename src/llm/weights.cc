#include "src/llm/weights.h"

#include <cmath>

#include "src/format/storage_model.h"
#include "src/format/tca_bme.h"
#include "src/format/tca_bme_quant.h"
#include "src/format/tiled_csl.h"
#include "src/format/sparse_util.h"
#include "src/util/check.h"

namespace spinfer {

const char* WeightFormatName(WeightFormat f) {
  switch (f) {
    case WeightFormat::kDense:
      return "dense";
    case WeightFormat::kTiledCsl:
      return "tiled-csl";
    case WeightFormat::kTcaBme:
      return "tca-bme";
    case WeightFormat::kTcaBmeQuant:
      return "tca-bme-int8";
  }
  SPINFER_UNREACHABLE("bad WeightFormat");
}

uint64_t WeightMatrixBytes(int64_t m, int64_t k, double sparsity, WeightFormat format) {
  SPINFER_CHECK(m > 0 && k > 0);
  SPINFER_CHECK(sparsity >= 0.0 && sparsity <= 1.0);
  const int64_t nnz = static_cast<int64_t>(
      std::llround(static_cast<double>(m) * static_cast<double>(k) * (1.0 - sparsity)));
  switch (format) {
    case WeightFormat::kDense:
      return 2ull * static_cast<uint64_t>(m) * static_cast<uint64_t>(k);
    case WeightFormat::kTiledCsl: {
      const TiledCslConfig cfg;
      const int64_t tiles = (PadUp(m, cfg.tile_rows) / cfg.tile_rows) *
                            (PadUp(k, cfg.tile_cols) / cfg.tile_cols);
      return TiledCslStorageModel(tiles, nnz);
    }
    case WeightFormat::kTcaBme:
      return TcaBmeStorageModel(m, k, nnz);
    case WeightFormat::kTcaBmeQuant:
      return TcaBmeQuantStorageModel(m, k, nnz);
  }
  SPINFER_UNREACHABLE("bad WeightFormat");
}

uint64_t ModelWeightBytes(const ModelConfig& model, double sparsity, WeightFormat format) {
  uint64_t bytes = 0;
  for (const GemmShape& g : LayerGemmShapes(model)) {
    // MoE: LayerGemmShapes reports per-token-active FFN shapes; storage holds
    // every expert.
    int64_t copies = model.layers;
    if (model.num_experts > 1 && g.op.rfind("ffn", 0) == 0) {
      copies = model.layers * model.num_experts / model.active_experts;
    }
    bytes += static_cast<uint64_t>(copies) * WeightMatrixBytes(g.m, g.k, sparsity, format);
  }
  // Embedding + LM head, always dense FP16.
  bytes += 2ull * 2ull * static_cast<uint64_t>(model.vocab) *
           static_cast<uint64_t>(model.hidden);
  return bytes;
}

}  // namespace spinfer
