// Fused, SIMD-dispatched, batched paged-attention decode kernel — the
// executing counterpart of the analytic DecodeAttentionCost model
// (src/llm/attention.h), built in the CPU-backend-v2 style.
//
// One call computes causal decode attention for a whole batch of
// (sequence, query-column) work items at one layer: QK^T, the max-subtracted
// softmax, and PV are fused into a single block-wise pass over each
// sequence's paged KV blocks, so every K and V row is touched exactly once
// per query head while L1-resident (the old per-element loop re-resolved the
// V block pointer once per output element — O(hd * ctx) pointer walks per
// head). The strided query column is hoisted into contiguous per-head
// scratch, and the (item x head) work grid runs on the global ThreadPool
// with disjoint output rows per task.
//
// Contracts, matching the rest of the CPU kernel family:
//   * Bit-identity with the retained reference (PagedAttentionDecodeReference)
//     and with TinyTransformer::Forward's in-batch attention: the fusion and
//     the SIMD variants reschedule — never reorder — each output element's
//     scalar accumulation chain (QK dots ascend the head dimension, softmax
//     and PV ascend the context, separate mul/add roundings, -ffp-contract=off,
//     no FMA). Serving token streams and virtual-time reports are therefore
//     byte-identical to the pre-fusion engine.
//   * Determinism: output bits do not depend on thread count (each work item
//     owns its head's rows of its column) or on which SIMD variant ran.
//   * Allocation-free when warm: all scratch lives in PagedAttentionScratch,
//     grown geometrically so a decode loop whose context grows one token per
//     step does not reallocate per step.
//
// Grouped-query attention: `kv_heads` may divide `heads`; query head h reads
// the cached K/V rows of kv head h / (heads / kv_heads). Classic MHA is
// kv_heads == heads. The cache's kv_dim must equal kv_heads * head_dim.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/cpu_backend.h"
#include "src/llm/kv_allocator.h"
#include "src/numeric/matrix.h"
#include "src/util/aligned_buffer.h"

namespace spinfer {

// One query of a batched decode-attention call: column `col` of the q panel
// belongs to sequence `seq_id` and attends over cached slots [0, context).
// context == -1 (the decode default) means all of SequenceTokens(seq_id);
// chunked prefill passes an explicit horizon so prompt position p attends
// over slots [0, p] even while later slots of the same chunk are already
// written. The attended slots — including the query's own — must hold real
// K/V before the call.
struct PagedAttentionItem {
  int64_t seq_id = 0;
  int64_t col = 0;
  int64_t context = -1;
};

// Reusable scratch for PagedAttentionDecodeBatch. Buffers grow geometrically
// and never shrink, so a serving loop stops allocating once it has seen its
// largest (batch x heads, context) shape — even though decode contexts grow
// every step. grow_count()/capacity_bytes() feed the zero-allocation
// observability contract (TinyTransformer::MatmulScratchGrowCount).
struct PagedAttentionScratch {
  AlignedBuffer<float> q;       // staged contiguous query heads
  AlignedBuffer<float> scores;  // per-work-item attention scores
  AlignedBuffer<float> acc;     // per-work-item PV accumulators
  // Per-item views resolved once per call (hot loops must not re-resolve
  // block lists per token — see PagedKvCache::KRow).
  std::vector<const std::vector<int32_t>*> block_lists;
  std::vector<int64_t> contexts;

  int64_t grow_count() const {
    return static_cast<int64_t>(q.grow_count() + scores.grow_count() +
                                acc.grow_count());
  }
  uint64_t capacity_bytes() const {
    return (q.capacity() + scores.capacity() + acc.capacity()) * sizeof(float);
  }
};

// Batched fused decode attention at one layer: for every item, attends column
// item.col of `q` (a kv-projection panel with heads * head_dim rows) over
// item.seq_id's cached context and writes the same column of `out` (same row
// count as q). Dispatches to the best available SIMD variant.
void PagedAttentionDecodeBatch(const PagedKvCache& cache, int64_t layer,
                               int64_t heads, int64_t kv_heads,
                               const FloatMatrix& q,
                               const std::vector<PagedAttentionItem>& items,
                               FloatMatrix* out, PagedAttentionScratch* scratch);

// Variant-pinned entry for the bit-identity tests and benches; CHECK-fails
// if `v` is unavailable (PagedAttentionVariantAvailable).
void PagedAttentionDecodeBatchVariant(
    const PagedKvCache& cache, int64_t layer, int64_t heads, int64_t kv_heads,
    const FloatMatrix& q, const std::vector<PagedAttentionItem>& items,
    FloatMatrix* out, PagedAttentionScratch* scratch, CpuSpmmVariant v);

// Whether `v` can run here. The attention AVX2 unit needs avx2+fma at
// runtime (it never touches F16C — the KV pools are FP32), so its gate is
// its own, not CpuSpmmVariantAvailable's.
bool PagedAttentionVariantAvailable(CpuSpmmVariant v);
// The variant PagedAttentionDecodeBatch dispatches to; cached, honors the
// SPINFER_SIMD override via ActiveSimdLevel().
CpuSpmmVariant ActivePagedAttentionVariant();

// The pre-fusion scalar kernel, retained as the differential reference: one
// sequence, one column, single-threaded, no SIMD, no fusion — but with the
// PV loop nest in the corrected t-outer/r-inner order (order-preserving; see
// the bit-identity contract above) so V rows stream once per head instead of
// once per output element. `scores` is caller-owned scratch, grown to the
// context length. Numerics mirror TinyTransformer::Forward's in-batch
// attention exactly.
void PagedAttentionDecodeReference(const PagedKvCache& cache, int64_t layer,
                                   int64_t seq_id, int64_t heads,
                                   int64_t kv_heads, const FloatMatrix& q,
                                   int64_t col, FloatMatrix* out,
                                   std::vector<float>* scores,
                                   int64_t context = -1);

}  // namespace spinfer
