// Paged KV-cache allocator (vLLM-style block management).
//
// The serving results (Figs. 13-14, and our serving simulator) hinge on how
// much KV cache fits beside the weights; a real engine manages that pool in
// fixed-size blocks so sequences can grow without reserving their maximum
// context up front. This allocator provides that substrate: per-sequence
// block lists, O(1) alloc/free from a free list, token-granular append, and
// utilization accounting the scheduler admits against.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace spinfer {

struct KvAllocatorConfig {
  // Pool capacity in bytes (device memory left after weights etc.).
  uint64_t capacity_bytes = 0;
  // Bytes of K+V per token across all layers (2 * layers * kv_dim * 2B).
  uint64_t bytes_per_token = 0;
  // Tokens per block (16 is vLLM's default granularity).
  int64_t block_tokens = 16;
};

class KvAllocator {
 public:
  explicit KvAllocator(const KvAllocatorConfig& config);

  // Registers a new sequence with `prompt_tokens` already cached; returns
  // false (allocating nothing) if the pool cannot hold it.
  bool AddSequence(int64_t seq_id, int64_t prompt_tokens);

  // Extends a sequence by one generated token; returns false if a new block
  // was needed and the pool is exhausted (the caller must evict/preempt).
  bool AppendToken(int64_t seq_id);

  // Releases all of a sequence's blocks.
  void RemoveSequence(int64_t seq_id);

  // Whether `tokens` more tokens could be added for a hypothetical new
  // sequence right now.
  bool CanFit(int64_t tokens) const;

  int64_t total_blocks() const { return total_blocks_; }
  int64_t free_blocks() const { return static_cast<int64_t>(free_list_.size()); }
  int64_t used_blocks() const { return total_blocks_ - free_blocks(); }
  double Utilization() const {
    return total_blocks_ == 0
               ? 0.0
               : static_cast<double>(used_blocks()) / static_cast<double>(total_blocks_);
  }

  // Tokens currently cached for `seq_id` (0 if unknown).
  int64_t SequenceTokens(int64_t seq_id) const;
  // Blocks held by `seq_id`.
  int64_t SequenceBlocks(int64_t seq_id) const;
  // Internal fragmentation: allocated-but-unused token slots.
  int64_t WastedTokenSlots() const;

 private:
  struct Sequence {
    int64_t tokens = 0;
    std::vector<int32_t> blocks;
  };

  int64_t BlocksFor(int64_t tokens) const {
    return (tokens + config_.block_tokens - 1) / config_.block_tokens;
  }

  KvAllocatorConfig config_;
  int64_t total_blocks_ = 0;
  std::vector<int32_t> free_list_;
  std::map<int64_t, Sequence> sequences_;
};

}  // namespace spinfer
