// Paged KV-cache allocation (vLLM-style block management).
//
// The serving results (Figs. 13-14, and our serving simulator) hinge on how
// much KV cache fits beside the weights; a real engine manages that pool in
// fixed-size blocks so sequences can grow without reserving their maximum
// context up front. Two layers live here:
//
//   * KvAllocator — pure block bookkeeping: per-sequence block lists, O(1)
//     alloc/free from a free list, token-granular append, per-block refcounts
//     for prefix sharing (copy-on-write on divergent append), and utilization
//     accounting the scheduler admits against. No data moves through it.
//   * PagedKvCache — the executing substrate on top: the same block
//     discipline plus real per-layer K/V storage and a content-hash index
//     over full prompt-prefix blocks, so TinyTransformer's KV-cache decode
//     path reads and writes through the page tables the allocator maintains
//     and new arrivals can adopt identical prefix blocks instead of
//     recomputing them. One token's K (or V) at one layer is one contiguous
//     `kv_dim`-float row inside its block.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace spinfer {

struct KvAllocatorConfig {
  // Pool capacity in bytes (device memory left after weights etc.).
  uint64_t capacity_bytes = 0;
  // Bytes of K+V per token across all layers (2 * layers * kv_dim * 2B).
  uint64_t bytes_per_token = 0;
  // Tokens per block (16 is vLLM's default granularity).
  int64_t block_tokens = 16;
};

// Result of a copy-on-write triggered by AppendToken: the sequence's entry
// `block_index` was remapped from shared `old_block` to freshly allocated
// `new_block`. The storage layer must copy the already-written slots of
// `old_block` into `new_block` before the new token's row is written.
struct CowRemap {
  bool happened = false;
  int64_t block_index = 0;
  int32_t old_block = 0;
  int32_t new_block = 0;
};

class KvAllocator {
 public:
  explicit KvAllocator(const KvAllocatorConfig& config);

  // Registers a new sequence with `prompt_tokens` already cached; returns
  // false (allocating nothing) if the pool cannot hold it.
  bool AddSequence(int64_t seq_id, int64_t prompt_tokens);

  // Like AddSequence, but the sequence adopts `shared_blocks` (each must be
  // live) as its leading blocks — their refcounts are bumped instead of
  // allocating — and only the remaining ceil(tokens/bt) - |shared| blocks
  // come from the free list. Returns false (adopting nothing) if the free
  // list cannot supply the fresh tail.
  bool AddSequenceSharing(int64_t seq_id, int64_t prompt_tokens,
                          const std::vector<int32_t>& shared_blocks);

  // Extends a sequence by one generated token; returns false if a new block
  // was needed and the pool is exhausted (the caller must evict/preempt).
  // If the target slot lands in a block shared with another sequence
  // (refcount > 1), the block is copied-on-write: a fresh block replaces it
  // in this sequence's list and `remap` (if non-null) reports the swap so
  // the storage layer can copy the already-written rows.
  bool AppendToken(int64_t seq_id, CowRemap* remap = nullptr);

  // Releases all of a sequence's blocks (refcount-aware: a block returns to
  // the free list only when its last holder drops it).
  void RemoveSequence(int64_t seq_id);

  // Shrinks a sequence to `tokens` (<= its current count), returning any
  // now-unused tail blocks to the free list (refcount-aware). The serving
  // benches rewind decode state with this; eviction uses RemoveSequence.
  void TruncateSequence(int64_t seq_id, int64_t tokens);

  // Whether `tokens` more tokens could be added for a hypothetical new
  // sequence right now.
  bool CanFit(int64_t tokens) const;

  int64_t total_blocks() const { return total_blocks_; }
  int64_t free_blocks() const { return static_cast<int64_t>(free_list_.size()); }
  int64_t used_blocks() const { return total_blocks_ - free_blocks(); }
  double Utilization() const {
    return total_blocks_ == 0
               ? 0.0
               : static_cast<double>(used_blocks()) / static_cast<double>(total_blocks_);
  }

  // Tokens currently cached for `seq_id` (0 if unknown).
  int64_t SequenceTokens(int64_t seq_id) const;
  // Blocks held by `seq_id`.
  int64_t SequenceBlocks(int64_t seq_id) const;
  // Block ids held by `seq_id` in token order (token t lives in entry
  // t / block_tokens), or nullptr if the sequence is unknown. The pointer is
  // invalidated by the next mutating call for that sequence.
  const std::vector<int32_t>* SequenceBlockList(int64_t seq_id) const;
  // Holders of `block`: 0 = free, 1 = private, >1 = shared.
  int32_t BlockRefCount(int32_t block) const;
  // Internal fragmentation: allocated-but-unused token slots, summed per
  // sequence. A block shared by k sequences contributes its slack k times —
  // by design: the figure answers "how many token appends could the resident
  // sequences absorb without new blocks", not "how many pool slots idle".
  int64_t WastedTokenSlots() const;

  // Blocks needed to hold `tokens` tokens (schedulers reserve against this).
  int64_t BlocksForTokens(int64_t tokens) const { return BlocksFor(tokens); }

 private:
  struct Sequence {
    int64_t tokens = 0;
    std::vector<int32_t> blocks;
  };

  int64_t BlocksFor(int64_t tokens) const {
    return (tokens + config_.block_tokens - 1) / config_.block_tokens;
  }

  // Drops one reference; pushes the block back on the free list at zero.
  void ReleaseBlock(int32_t block);

  KvAllocatorConfig config_;
  int64_t total_blocks_ = 0;
  std::vector<int32_t> free_list_;
  // Holder count per block id; 0 for free blocks.
  std::vector<int32_t> ref_count_;
  std::map<int64_t, Sequence> sequences_;
};

// --- Executing paged KV storage ---------------------------------------------

struct PagedKvCacheConfig {
  int64_t layers = 0;
  // Floats per token per tensor (== hidden for classic MHA: heads * head_dim).
  int64_t kv_dim = 0;
  int64_t block_tokens = 16;
  int64_t num_blocks = 0;
};

// Block-paged K/V storage for the executing CPU serving path. Bookkeeping
// (which blocks a sequence owns, free list, refcounts, fragmentation
// counters) is delegated to an internal KvAllocator; this class adds the
// actual float pools, slot addressing, and the prefix index. Values are
// stored as the FP32 activations the transformer computed — storage is
// exact, so a decode that reads a cached K/V row sees bit-for-bit the column
// that was written at prefill/append time (the substrate of the
// batched-vs-single bit-identity tests).
//
// Prefix index: full prompt-prefix blocks are keyed by a chained content
// hash h_i = H(h_{i-1}, tokens of block i) and looked up by MatchPrefix.
// Every hit is verified against the stored parent hash and token ids, so a
// hash collision degrades to a miss, never to wrong KV. Because a shared
// block's K/V equals bit-for-bit what the adopting sequence would have
// written itself (same tokens, same positions, same weights, per-column
// deterministic kernels), adoption preserves per-sequence bit-identity.
class PagedKvCache {
 public:
  explicit PagedKvCache(const PagedKvCacheConfig& config);

  // Registers `seq_id` with `tokens` slots (the prompt); the caller then
  // fills the K/V rows of slots [0, tokens). Returns false if the pool
  // cannot hold it (nothing allocated).
  bool AddSequence(int64_t seq_id, int64_t tokens);
  // Allocates one more slot; returns false on pool exhaustion. If the slot's
  // block was shared, its already-written rows are copied into a fresh
  // private block first (copy-on-write, counted in cow_copies()). Appending
  // into an indexed block removes that index entry: the block's content is
  // about to diverge from the hash it was filed under.
  bool AppendToken(int64_t seq_id);
  void RemoveSequence(int64_t seq_id);
  // Rewinds `seq_id` to `tokens` slots, freeing tail blocks (refcount-aware).
  void TruncateSequence(int64_t seq_id, int64_t tokens);

  // --- Shared-prefix interface ---------------------------------------------

  // Longest indexed prefix of `prompt_tokens`, in whole blocks, capped at
  // len-1 tokens so the final prompt position is always recomputed (its
  // logits seed generation). `blocks` are the physical block ids to adopt in
  // order; `tokens` == blocks.size() * block_tokens.
  struct PrefixMatch {
    int64_t tokens = 0;
    std::vector<int32_t> blocks;
  };
  PrefixMatch MatchPrefix(const std::vector<int32_t>& prompt_tokens) const;

  // AddSequence variant adopting `match.blocks` (from MatchPrefix against
  // this cache) as the sequence's leading blocks; only the tail past
  // `match.tokens` is freshly allocated. The caller fills slots
  // [match.tokens, tokens) — slots before that already hold the prefix KV.
  bool AddSequenceSharing(int64_t seq_id, int64_t tokens, const PrefixMatch& match);

  // Files the full blocks covering prompt positions [0, min(filled, len-1))
  // of `seq_id` under their chained content hashes, making them adoptable by
  // future MatchPrefix calls. Only fully-written blocks are indexed (call
  // after the covering slots hold real KV); first writer wins on hash ties.
  void IndexPrefix(int64_t seq_id, const std::vector<int32_t>& prompt_tokens,
                   int64_t filled);

  bool CanFit(int64_t tokens) const { return alloc_.CanFit(tokens); }
  int64_t SequenceTokens(int64_t seq_id) const { return alloc_.SequenceTokens(seq_id); }
  int64_t SequenceBlocks(int64_t seq_id) const { return alloc_.SequenceBlocks(seq_id); }
  const std::vector<int32_t>* SequenceBlockList(int64_t seq_id) const {
    return alloc_.SequenceBlockList(seq_id);
  }
  int32_t BlockRefCount(int32_t block) const { return alloc_.BlockRefCount(block); }

  // K/V row of one token slot: `kv_dim` contiguous floats. `token` must be
  // < SequenceTokens(seq_id). Resolves the sequence's block list per call;
  // hot loops (attention) should resolve the list once and use *BlockBase.
  float* KRow(int64_t layer, int64_t seq_id, int64_t token);
  const float* KRow(int64_t layer, int64_t seq_id, int64_t token) const;
  float* VRow(int64_t layer, int64_t seq_id, int64_t token);
  const float* VRow(int64_t layer, int64_t seq_id, int64_t token) const;

  // Base of one block's rows at one layer (block_tokens * kv_dim floats);
  // token t of a sequence lives at offset (t % block_tokens) * kv_dim inside
  // block blocks[t / block_tokens].
  const float* KBlockBase(int64_t layer, int32_t block) const;
  const float* VBlockBase(int64_t layer, int32_t block) const;

  // Accounting passthrough (scheduler gauges, fragmentation counters).
  int64_t total_blocks() const { return alloc_.total_blocks(); }
  int64_t free_blocks() const { return alloc_.free_blocks(); }
  int64_t used_blocks() const { return alloc_.used_blocks(); }
  double Utilization() const { return alloc_.Utilization(); }
  int64_t WastedTokenSlots() const { return alloc_.WastedTokenSlots(); }
  int64_t BlocksForTokens(int64_t tokens) const { return alloc_.BlocksForTokens(tokens); }

  // Copy-on-write block copies performed since construction.
  int64_t cow_copies() const { return cow_copies_; }
  // Live prefix-index entries (one per indexed block).
  int64_t indexed_blocks() const { return static_cast<int64_t>(index_.size()); }

  const PagedKvCacheConfig& config() const { return config_; }
  uint64_t StorageBytes() const {
    return 2ull * k_pool_.size() * sizeof(float);
  }

 private:
  // One indexed full block: where it lives and exactly what it claims to
  // hold, so lookups can verify instead of trusting 64-bit hashes.
  struct PrefixEntry {
    int32_t block = 0;
    uint64_t parent = 0;          // chained hash of everything before it
    std::vector<int32_t> tokens;  // the block_tokens token ids it covers
  };

  int64_t SlotIndex(int64_t layer, int64_t seq_id, int64_t token) const;
  // Copies the first `slots` rows of `old_block` into `new_block` across all
  // layers (K and V pools).
  void CopyBlockPrefix(int32_t old_block, int32_t new_block, int64_t slots);
  // Removes the index entry for `block`, if any.
  void DeindexBlock(int32_t block);

  PagedKvCacheConfig config_;
  KvAllocator alloc_;
  // [layer][block][slot][kv_dim] pools, allocated once at construction.
  std::vector<float> k_pool_;
  std::vector<float> v_pool_;
  // Chained content hash -> indexed block. Keys collide only across distinct
  // chains; entries verify (block tokens) on lookup so a collision is a miss.
  std::unordered_map<uint64_t, PrefixEntry> index_;
  // Reverse map for O(1) deindex on write/free: block id -> its hash key.
  std::unordered_map<int32_t, uint64_t> block_hash_;
  int64_t cow_copies_ = 0;
};

// Moves `seq_id`'s cached K/V — every layer, every token slot — from `from`
// to `to` (the prefill->decode handoff of a disaggregated deployment). The
// two pools must share geometry (layers, kv_dim, block_tokens; CHECKed).
// Returns false, mutating nothing, when `from` does not hold the sequence or
// `to` cannot allocate it; on success the destination rows are bit-for-bit
// the source rows, the destination blocks are fresh private (unshared,
// unindexed) blocks, and the source's blocks are released refcount-aware —
// a slot shared with another source sequence survives there, the copy here
// is private. Total live refcounts are conserved: the sequence's holds move
// pools, nothing leaks and nothing double-frees (the property fuzz in
// tests/paged_kv_property_test.cc drives exactly this invariant).
bool MigrateKvSequence(PagedKvCache* from, PagedKvCache* to, int64_t seq_id);

}  // namespace spinfer
