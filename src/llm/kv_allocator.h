// Paged KV-cache allocation (vLLM-style block management).
//
// The serving results (Figs. 13-14, and our serving simulator) hinge on how
// much KV cache fits beside the weights; a real engine manages that pool in
// fixed-size blocks so sequences can grow without reserving their maximum
// context up front. Two layers live here:
//
//   * KvAllocator — pure block bookkeeping: per-sequence block lists, O(1)
//     alloc/free from a free list, token-granular append, and utilization
//     accounting the scheduler admits against. No data moves through it.
//   * PagedKvCache — the executing substrate on top: the same block
//     discipline plus real per-layer K/V storage, so TinyTransformer's
//     KV-cache decode path reads and writes through the page tables the
//     allocator maintains. One token's K (or V) at one layer is one
//     contiguous `kv_dim`-float row inside its block.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace spinfer {

struct KvAllocatorConfig {
  // Pool capacity in bytes (device memory left after weights etc.).
  uint64_t capacity_bytes = 0;
  // Bytes of K+V per token across all layers (2 * layers * kv_dim * 2B).
  uint64_t bytes_per_token = 0;
  // Tokens per block (16 is vLLM's default granularity).
  int64_t block_tokens = 16;
};

class KvAllocator {
 public:
  explicit KvAllocator(const KvAllocatorConfig& config);

  // Registers a new sequence with `prompt_tokens` already cached; returns
  // false (allocating nothing) if the pool cannot hold it.
  bool AddSequence(int64_t seq_id, int64_t prompt_tokens);

  // Extends a sequence by one generated token; returns false if a new block
  // was needed and the pool is exhausted (the caller must evict/preempt).
  bool AppendToken(int64_t seq_id);

  // Releases all of a sequence's blocks.
  void RemoveSequence(int64_t seq_id);

  // Shrinks a sequence to `tokens` (<= its current count), returning any
  // now-unused tail blocks to the free list. The serving benches rewind
  // decode state with this; eviction uses RemoveSequence.
  void TruncateSequence(int64_t seq_id, int64_t tokens);

  // Whether `tokens` more tokens could be added for a hypothetical new
  // sequence right now.
  bool CanFit(int64_t tokens) const;

  int64_t total_blocks() const { return total_blocks_; }
  int64_t free_blocks() const { return static_cast<int64_t>(free_list_.size()); }
  int64_t used_blocks() const { return total_blocks_ - free_blocks(); }
  double Utilization() const {
    return total_blocks_ == 0
               ? 0.0
               : static_cast<double>(used_blocks()) / static_cast<double>(total_blocks_);
  }

  // Tokens currently cached for `seq_id` (0 if unknown).
  int64_t SequenceTokens(int64_t seq_id) const;
  // Blocks held by `seq_id`.
  int64_t SequenceBlocks(int64_t seq_id) const;
  // Block ids held by `seq_id` in token order (token t lives in entry
  // t / block_tokens), or nullptr if the sequence is unknown. The pointer is
  // invalidated by the next mutating call for that sequence.
  const std::vector<int32_t>* SequenceBlockList(int64_t seq_id) const;
  // Internal fragmentation: allocated-but-unused token slots.
  int64_t WastedTokenSlots() const;

  // Blocks needed to hold `tokens` tokens (schedulers reserve against this).
  int64_t BlocksForTokens(int64_t tokens) const { return BlocksFor(tokens); }

 private:
  struct Sequence {
    int64_t tokens = 0;
    std::vector<int32_t> blocks;
  };

  int64_t BlocksFor(int64_t tokens) const {
    return (tokens + config_.block_tokens - 1) / config_.block_tokens;
  }

  KvAllocatorConfig config_;
  int64_t total_blocks_ = 0;
  std::vector<int32_t> free_list_;
  std::map<int64_t, Sequence> sequences_;
};

// --- Executing paged KV storage ---------------------------------------------

struct PagedKvCacheConfig {
  int64_t layers = 0;
  // Floats per token per tensor (== hidden for classic MHA: heads * head_dim).
  int64_t kv_dim = 0;
  int64_t block_tokens = 16;
  int64_t num_blocks = 0;
};

// Block-paged K/V storage for the executing CPU serving path. Bookkeeping
// (which blocks a sequence owns, free list, fragmentation counters) is
// delegated to an internal KvAllocator; this class adds the actual float
// pools and slot addressing. Values are stored as the FP32 activations the
// transformer computed — storage is exact, so a decode that reads a cached
// K/V row sees bit-for-bit the column that was written at prefill/append
// time (the substrate of the batched-vs-single bit-identity tests).
class PagedKvCache {
 public:
  explicit PagedKvCache(const PagedKvCacheConfig& config);

  // Registers `seq_id` with `tokens` slots (the prompt); the caller then
  // fills the K/V rows of slots [0, tokens). Returns false if the pool
  // cannot hold it (nothing allocated).
  bool AddSequence(int64_t seq_id, int64_t tokens);
  // Allocates one more slot; returns false on pool exhaustion.
  bool AppendToken(int64_t seq_id);
  void RemoveSequence(int64_t seq_id);
  // Rewinds `seq_id` to `tokens` slots, freeing tail blocks.
  void TruncateSequence(int64_t seq_id, int64_t tokens);

  bool CanFit(int64_t tokens) const { return alloc_.CanFit(tokens); }
  int64_t SequenceTokens(int64_t seq_id) const { return alloc_.SequenceTokens(seq_id); }
  int64_t SequenceBlocks(int64_t seq_id) const { return alloc_.SequenceBlocks(seq_id); }
  const std::vector<int32_t>* SequenceBlockList(int64_t seq_id) const {
    return alloc_.SequenceBlockList(seq_id);
  }

  // K/V row of one token slot: `kv_dim` contiguous floats. `token` must be
  // < SequenceTokens(seq_id). Resolves the sequence's block list per call;
  // hot loops (attention) should resolve the list once and use *BlockBase.
  float* KRow(int64_t layer, int64_t seq_id, int64_t token);
  const float* KRow(int64_t layer, int64_t seq_id, int64_t token) const;
  float* VRow(int64_t layer, int64_t seq_id, int64_t token);
  const float* VRow(int64_t layer, int64_t seq_id, int64_t token) const;

  // Base of one block's rows at one layer (block_tokens * kv_dim floats);
  // token t of a sequence lives at offset (t % block_tokens) * kv_dim inside
  // block blocks[t / block_tokens].
  const float* KBlockBase(int64_t layer, int32_t block) const;
  const float* VBlockBase(int64_t layer, int32_t block) const;

  // Accounting passthrough (scheduler gauges, fragmentation counters).
  int64_t total_blocks() const { return alloc_.total_blocks(); }
  int64_t free_blocks() const { return alloc_.free_blocks(); }
  int64_t used_blocks() const { return alloc_.used_blocks(); }
  double Utilization() const { return alloc_.Utilization(); }
  int64_t WastedTokenSlots() const { return alloc_.WastedTokenSlots(); }
  int64_t BlocksForTokens(int64_t tokens) const { return alloc_.BlocksForTokens(tokens); }

  const PagedKvCacheConfig& config() const { return config_; }
  uint64_t StorageBytes() const {
    return 2ull * k_pool_.size() * sizeof(float);
  }

 private:
  int64_t SlotIndex(int64_t layer, int64_t seq_id, int64_t token) const;

  PagedKvCacheConfig config_;
  KvAllocator alloc_;
  // [layer][block][slot][kv_dim] pools, allocated once at construction.
  std::vector<float> k_pool_;
  std::vector<float> v_pool_;
};

}  // namespace spinfer
