// Per-GPU memory planning with OOM detection.
//
// Reproduces the paper's memory results (Figs. 13–14): which (framework,
// model, batch, output-length, GPU-count) configurations fit, and how much
// the TCA-BME weight compression buys. Budget components: sharded weights,
// KV cache at maximum context, activation buffers, kernel workspace, and a
// fixed runtime reserve (CUDA context + cuBLAS workspaces).
#pragma once

#include <cstdint>
#include <string>

#include "src/gpusim/device_spec.h"
#include "src/llm/model_config.h"
#include "src/llm/weights.h"

namespace spinfer {

struct MemoryPlan {
  uint64_t weight_bytes = 0;      // per GPU
  uint64_t kv_cache_bytes = 0;    // per GPU, at max context
  uint64_t activation_bytes = 0;  // per GPU
  uint64_t workspace_bytes = 0;   // per GPU
  uint64_t reserve_bytes = 0;     // runtime overhead
  uint64_t capacity_bytes = 0;    // device memory

  uint64_t TotalBytes() const {
    return weight_bytes + kv_cache_bytes + activation_bytes + workspace_bytes +
           reserve_bytes;
  }
  bool Fits() const { return TotalBytes() <= capacity_bytes; }

  std::string ToString() const;
};

MemoryPlan PlanMemory(const ModelConfig& model, WeightFormat format, double sparsity,
                      int64_t batch, int64_t max_context, int num_gpus,
                      const DeviceSpec& dev);

}  // namespace spinfer
