// A complete, functional decoder-only transformer whose weight matmuls run
// through this library's sparse stack — the integration proof that pruning +
// TCA-BME + the bitmap SpMM backend compose into a working model, mirroring
// the paper's FasterTransformer integration at a CPU-executable scale.
//
// Numerics are exact enough to test: with the same pruned weights, the dense
// and TCA-BME backends produce matching logits and identical greedy decodes.
//
// Two execution modes:
//   * Forward/Generate — full-sequence recompute every step (the original
//     integration proof; simple, O(steps * seq) matmul work).
//   * Prefill/DecodeStep — the serving path: prefill writes every position's
//     per-layer K/V into a PagedKvCache, then each decode iteration runs ONE
//     SpMM with N = batch columns per weight matrix for the whole batch and
//     per-sequence paged attention over the cached context. Every stage is
//     per-column/per-sequence, so a sequence's tokens and logits are
//     bit-identical for any batch composition, any thread count, and also
//     match the full-recompute Generate path bit for bit.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/cpu_backend.h"
#include "src/format/tca_bme.h"
#include "src/llm/kv_allocator.h"
#include "src/llm/paged_attention.h"
#include "src/numeric/matrix.h"
#include "src/pruning/pruner.h"

namespace spinfer {

struct TinyConfig {
  int64_t vocab = 256;
  int64_t hidden = 64;
  int64_t layers = 2;
  int64_t heads = 4;
  int64_t ffn = 256;
  int64_t max_seq = 64;
  // Key/value heads for grouped-query attention; 0 means == heads (classic
  // MHA, the default — and bit-for-bit the pre-GQA model, including its Rng
  // weight-draw order, since wk/wv keep their hidden x hidden shape).
  int64_t kv_heads = 0;

  int64_t head_dim() const { return hidden / heads; }
  int64_t kv_head_count() const { return kv_heads > 0 ? kv_heads : heads; }
  // Rows of wk/wv and of one K (or V) cache row: kv heads x head_dim.
  int64_t kv_dim() const { return kv_head_count() * head_dim(); }
};

// Which engine executes the weight matmuls.
enum class MatmulBackend {
  kDense,     // ReferenceGemm on the dense FP16 weights
  kTcaBmeCpu  // CpuSpmm on the TCA-BME-encoded weights
};

// Greedy sampling: the max-logit column of `logits` row `row` (ties break to
// the lowest token id, matching Generate).
int32_t GreedyToken(const FloatMatrix& logits, int64_t row);

// One scheduled slice of a prompt for MixedStep: positions
// [start, start + count) of `*prompt` for `seq_id`, whose cache slots
// [0, start) must already hold real K/V (earlier chunks or an adopted shared
// prefix). The sequence must already be registered with >= start + count
// slots. A chunk with start + count == prompt->size() completes the prompt
// and produces the sequence's first generated token.
struct PrefillChunk {
  int64_t seq_id = 0;
  const std::vector<int32_t>* prompt = nullptr;
  int64_t start = 0;
  int64_t count = 0;
};

class TinyTransformer {
 public:
  // Deterministic random initialization (scaled Gaussian).
  TinyTransformer(const TinyConfig& config, uint64_t seed);

  // Prunes every transformer weight matrix (attention + FFN; embeddings stay
  // dense, as in the paper's end-to-end setup) and re-encodes TCA-BME.
  void PruneWeights(const Pruner& pruner, double sparsity);

  // Forward pass over `tokens`; returns logits (seq x vocab).
  FloatMatrix Forward(const std::vector<int32_t>& tokens, MatmulBackend backend) const;

  // Greedy decoding: extends `prompt` by `steps` tokens.
  std::vector<int32_t> Generate(const std::vector<int32_t>& prompt, int steps,
                                MatmulBackend backend) const;

  // --- Serving path (paged KV cache) ---------------------------------------

  // KV geometry for a PagedKvCache serving this model.
  PagedKvCacheConfig KvCacheConfig(int64_t block_tokens, int64_t num_blocks) const;

  // Identical to Forward, additionally writing each position's per-layer K/V
  // columns into `cache` slots [0, tokens.size()) of `seq_id` — which must
  // already be registered with exactly tokens.size() slots. The caller takes
  // the first generated token from the returned logits' last row.
  FloatMatrix Prefill(const std::vector<int32_t>& tokens, MatmulBackend backend,
                      PagedKvCache* cache, int64_t seq_id) const;

  // One continuous-batching decode iteration. For sequence i (ragged contexts
  // are fine), `last_tokens[i]` is its most recently produced token; the step
  // appends that token's slot to the cache (exhaustion is a CHECK failure —
  // the scheduler reserves capacity at admission), runs each weight matmul
  // once with N = batch columns, attends per sequence over its full cached
  // context, and writes the greedy next token per sequence to `next_tokens`.
  // `logits_out`, when non-null, receives the (batch x vocab) logits.
  void DecodeStep(const std::vector<int64_t>& seq_ids,
                  const std::vector<int32_t>& last_tokens, MatmulBackend backend,
                  PagedKvCache* cache, std::vector<int32_t>* next_tokens,
                  FloatMatrix* logits_out = nullptr) const;

  // One mixed continuous-batching iteration: a decode batch (as in
  // DecodeStep) plus any number of prompt chunks, all through ONE matmul per
  // weight with N = dec_ids.size() + sum(chunk counts) columns — prefill
  // work rides the decode batch at the wide-N operating point instead of
  // stalling it. Decode columns behave exactly as DecodeStep (with no
  // chunks, this IS DecodeStep, bit for bit); chunk columns write their
  // position's per-layer K/V into the cache and attend causally over slots
  // [0, pos]. Per-column kernels make every sequence's results independent
  // of the batch mix and of where chunk boundaries fall. `dec_next[i]`
  // receives decode sequence i's next token; `chunk_next[c]` receives the
  // first generated token of chunk c if it completes its prompt, else -1
  // (may be null when `chunks` is empty). `dec_logits_out`, when non-null,
  // receives the decode rows' logits (dec x vocab).
  void MixedStep(const std::vector<int64_t>& dec_ids,
                 const std::vector<int32_t>& dec_last,
                 const std::vector<PrefillChunk>& chunks, MatmulBackend backend,
                 PagedKvCache* cache, std::vector<int32_t>* dec_next,
                 std::vector<int32_t>* chunk_next,
                 FloatMatrix* dec_logits_out = nullptr) const;

  const TinyConfig& config() const { return config_; }

  // --- Weight-partition support (tensor-parallel sharding) ------------------
  // The sharded engine slices every weight matrix by output rows and re-
  // encodes the slices; these accessors expose exactly what it needs and
  // nothing mutable.
  struct LayerWeights {
    const HalfMatrix* wq;
    const HalfMatrix* wk;
    const HalfMatrix* wv;
    const HalfMatrix* wo;
    const HalfMatrix* fc1;
    const HalfMatrix* fc2;
  };
  LayerWeights layer_weights(int64_t layer) const;
  // Tied embedding / LM head (vocab x hidden); replicated on every shard.
  const HalfMatrix& embedding() const { return embedding_; }
  // The TCA-BME geometry the model's own matmuls encode with. Row slices must
  // be encoded with the same tile shape — and sliced at multiples of its
  // gt_rows — for the sliced kernels to be bit-identical to the whole-matrix
  // kernel.
  static TcaBmeConfig EncodeFormat();
  // Embeds `token` at absolute position `pos` into column `col` of `act`.
  // Public so the sharded engine's replicated embedding stage produces the
  // exact bits of the single-instance panel.
  void EmbedInto(int32_t token, int64_t pos, int64_t col, FloatMatrix* act) const;
  // Observability for the zero-allocation serving contract (tests, benches).
  // Grow count / capacity of the reusable matmul-path scratch: once a
  // Forward/DecodeStep at the serving shapes has warmed it, further calls at
  // those (or smaller) shapes leave both unchanged — i.e. the matmul path
  // performs zero heap allocations per step.
  int64_t MatmulScratchGrowCount() const;
  uint64_t MatmulScratchCapacityBytes() const;
  // Weight footprints: dense FP16 vs the encoded TCA-BME bytes.
  uint64_t DenseWeightBytes() const;
  uint64_t EncodedWeightBytes() const;
  // Average sparsity across transformer weights.
  double WeightSparsity() const;

 private:
  struct Layer {
    HalfMatrix wq, wo;          // hidden x hidden
    HalfMatrix wk, wv;          // kv_dim x hidden (== hidden x hidden for MHA)
    HalfMatrix fc1;             // ffn x hidden
    HalfMatrix fc2;             // hidden x ffn
    TcaBmeMatrix enc_wq, enc_wk, enc_wv, enc_wo, enc_fc1, enc_fc2;
  };

  // Reusable buffers for one Forward or DecodeStep pass. Shapes depend only
  // on (seq-or-batch, hidden, ffn), so every layer — and every subsequent
  // call at seen shapes — reuses the same storage; nothing here is shrunk.
  // `xh` stages the FP16 conversion feeding the dense reference backend (the
  // sparse backend quantizes on panel fill and never touches it). `scores`
  // grows to the longest attended context.
  struct MatmulScratch {
    SpmmWorkspace ws;
    HalfMatrix xh;
    FloatMatrix normed, q, kk, v, attn_out, proj, ffn_in, hidden_act, ffn_out;
    FloatMatrix act, logits;  // decode-step activation panel and logits
    std::vector<float> scores;
    // Batched paged-attention scratch + the per-step work list (decode
    // columns, then chunk columns), rebuilt in place each MixedStep.
    PagedAttentionScratch attn;
    std::vector<PagedAttentionItem> attn_items;
  };

  // out = W*X on the selected backend, from FP32 activations: the sparse
  // path quantizes to FP16 while filling the SpMM panel (CpuSpmmQuantInto),
  // the dense reference path stages an explicit FP16 copy — both see the
  // same FP16 activation bits. `label` is a static string literal naming the
  // matmul's trace span (e.g. "tt.matmul.wq").
  void MatmulInto(const HalfMatrix& dense, const TcaBmeMatrix& encoded,
                  const FloatMatrix& x, MatmulBackend backend, const char* label,
                  FloatMatrix* out) const;

  // Shared Forward body; when `cache` is non-null, per-layer K/V columns are
  // written into `seq_id`'s slots (the prefill path).
  FloatMatrix ForwardImpl(const std::vector<int32_t>& tokens, MatmulBackend backend,
                          PagedKvCache* cache, int64_t seq_id) const;

  void EncodeAll();

  TinyConfig config_;
  HalfMatrix embedding_;  // vocab x hidden (tied LM head)
  std::vector<Layer> layers_;
  // `mutable`: Forward is logically const. A single TinyTransformer must not
  // run concurrent Forward calls (matching the SpmmWorkspace contract).
  mutable MatmulScratch scratch_;
};

}  // namespace spinfer
