// A complete, functional decoder-only transformer whose weight matmuls run
// through this library's sparse stack — the integration proof that pruning +
// TCA-BME + the bitmap SpMM backend compose into a working model, mirroring
// the paper's FasterTransformer integration at a CPU-executable scale.
//
// Numerics are exact enough to test: with the same pruned weights, the dense
// and TCA-BME backends produce matching logits and identical greedy decodes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/format/tca_bme.h"
#include "src/numeric/matrix.h"
#include "src/pruning/pruner.h"

namespace spinfer {

struct TinyConfig {
  int64_t vocab = 256;
  int64_t hidden = 64;
  int64_t layers = 2;
  int64_t heads = 4;
  int64_t ffn = 256;
  int64_t max_seq = 64;

  int64_t head_dim() const { return hidden / heads; }
};

// Which engine executes the weight matmuls.
enum class MatmulBackend {
  kDense,     // ReferenceGemm on the dense FP16 weights
  kTcaBmeCpu  // CpuSpmm on the TCA-BME-encoded weights
};

class TinyTransformer {
 public:
  // Deterministic random initialization (scaled Gaussian).
  TinyTransformer(const TinyConfig& config, uint64_t seed);

  // Prunes every transformer weight matrix (attention + FFN; embeddings stay
  // dense, as in the paper's end-to-end setup) and re-encodes TCA-BME.
  void PruneWeights(const Pruner& pruner, double sparsity);

  // Forward pass over `tokens`; returns logits (seq x vocab).
  FloatMatrix Forward(const std::vector<int32_t>& tokens, MatmulBackend backend) const;

  // Greedy decoding: extends `prompt` by `steps` tokens.
  std::vector<int32_t> Generate(const std::vector<int32_t>& prompt, int steps,
                                MatmulBackend backend) const;

  const TinyConfig& config() const { return config_; }
  // Weight footprints: dense FP16 vs the encoded TCA-BME bytes.
  uint64_t DenseWeightBytes() const;
  uint64_t EncodedWeightBytes() const;
  // Average sparsity across transformer weights.
  double WeightSparsity() const;

 private:
  struct Layer {
    HalfMatrix wq, wk, wv, wo;  // hidden x hidden
    HalfMatrix fc1;             // ffn x hidden
    HalfMatrix fc2;             // hidden x ffn
    TcaBmeMatrix enc_wq, enc_wk, enc_wv, enc_wo, enc_fc1, enc_fc2;
  };

  // Runs W*X on the selected backend.
  FloatMatrix Matmul(const HalfMatrix& dense, const TcaBmeMatrix& encoded,
                     const HalfMatrix& x, MatmulBackend backend) const;

  void EncodeAll();

  TinyConfig config_;
  HalfMatrix embedding_;  // vocab x hidden (tied LM head)
  std::vector<Layer> layers_;
};

}  // namespace spinfer
