// A complete, functional decoder-only transformer whose weight matmuls run
// through this library's sparse stack — the integration proof that pruning +
// TCA-BME + the bitmap SpMM backend compose into a working model, mirroring
// the paper's FasterTransformer integration at a CPU-executable scale.
//
// Numerics are exact enough to test: with the same pruned weights, the dense
// and TCA-BME backends produce matching logits and identical greedy decodes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/cpu_backend.h"
#include "src/format/tca_bme.h"
#include "src/numeric/matrix.h"
#include "src/pruning/pruner.h"

namespace spinfer {

struct TinyConfig {
  int64_t vocab = 256;
  int64_t hidden = 64;
  int64_t layers = 2;
  int64_t heads = 4;
  int64_t ffn = 256;
  int64_t max_seq = 64;

  int64_t head_dim() const { return hidden / heads; }
};

// Which engine executes the weight matmuls.
enum class MatmulBackend {
  kDense,     // ReferenceGemm on the dense FP16 weights
  kTcaBmeCpu  // CpuSpmm on the TCA-BME-encoded weights
};

class TinyTransformer {
 public:
  // Deterministic random initialization (scaled Gaussian).
  TinyTransformer(const TinyConfig& config, uint64_t seed);

  // Prunes every transformer weight matrix (attention + FFN; embeddings stay
  // dense, as in the paper's end-to-end setup) and re-encodes TCA-BME.
  void PruneWeights(const Pruner& pruner, double sparsity);

  // Forward pass over `tokens`; returns logits (seq x vocab).
  FloatMatrix Forward(const std::vector<int32_t>& tokens, MatmulBackend backend) const;

  // Greedy decoding: extends `prompt` by `steps` tokens.
  std::vector<int32_t> Generate(const std::vector<int32_t>& prompt, int steps,
                                MatmulBackend backend) const;

  const TinyConfig& config() const { return config_; }
  // Observability for the zero-allocation serving contract (tests, benches).
  // Grow count / capacity of the reusable matmul-path scratch: once a
  // Forward at the serving shapes has warmed it, further Forwards at those
  // (or smaller) shapes leave both unchanged — i.e. the matmul path performs
  // zero heap allocations per step.
  int64_t MatmulScratchGrowCount() const;
  uint64_t MatmulScratchCapacityBytes() const;
  // Weight footprints: dense FP16 vs the encoded TCA-BME bytes.
  uint64_t DenseWeightBytes() const;
  uint64_t EncodedWeightBytes() const;
  // Average sparsity across transformer weights.
  double WeightSparsity() const;

 private:
  struct Layer {
    HalfMatrix wq, wk, wv, wo;  // hidden x hidden
    HalfMatrix fc1;             // ffn x hidden
    HalfMatrix fc2;             // hidden x ffn
    TcaBmeMatrix enc_wq, enc_wk, enc_wv, enc_wo, enc_fc1, enc_fc2;
  };

  // Reusable buffers for one Forward pass. Shapes depend only on (seq,
  // hidden, ffn), so every layer — and every subsequent call at seen shapes —
  // reuses the same storage; nothing here is shrunk. `xh` stages the FP16
  // conversion feeding each matmul.
  struct MatmulScratch {
    SpmmWorkspace ws;
    HalfMatrix xh;
    FloatMatrix normed, q, kk, v, attn_out, proj, ffn_in, hidden_act, ffn_out;
    std::vector<float> scores;
  };

  // out = W*X on the selected backend. The sparse path draws all scratch
  // from scratch_.ws; the dense reference path may allocate. `label` is a
  // static string literal naming the matmul's trace span (e.g. "tt.matmul.wq").
  void MatmulInto(const HalfMatrix& dense, const TcaBmeMatrix& encoded,
                  const HalfMatrix& x, MatmulBackend backend, const char* label,
                  FloatMatrix* out) const;

  void EncodeAll();

  TinyConfig config_;
  HalfMatrix embedding_;  // vocab x hidden (tied LM head)
  std::vector<Layer> layers_;
  // `mutable`: Forward is logically const. A single TinyTransformer must not
  // run concurrent Forward calls (matching the SpmmWorkspace contract).
  mutable MatmulScratch scratch_;
};

}  // namespace spinfer
