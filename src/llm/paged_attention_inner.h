// Internal: the fused per-(item, head) attention pass shared by every SIMD
// variant of the batched paged-attention kernel.
//
// A variant supplies two block kernels — QK over one KV block's keys, PV over
// one KV block's values — and this header owns everything else exactly once:
// query staging, the block walk, the max-subtracted softmax, and the
// writeback. A variant can therefore only disagree about *scheduling*
// identical per-element mul-then-add chains, never about which products to
// form or in what order a given output element accumulates them. That is the
// bit-identity contract tests/paged_attention_test.cc enforces against
// PagedAttentionDecodeReference.
//
// Per-element accumulation-order contract (the reference's chains):
//   * score[t] = (sum over r ascending of qh[r] * k_t[r]) * inv_sqrt_d —
//     one scalar chain per key, separate mul/add roundings.
//   * max = ascending-t sweep from -1e30f; exp/denom ascend t.
//   * out[r] = (sum over t ascending of score[t] * v_t[r]) / denom — one
//     scalar chain per output row, so PV must iterate t-outer/r-inner (or
//     vectorize across r, which keeps each row's chain intact).
//
// Do not include outside src/llm/paged_attention*.cc and tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/llm/kv_allocator.h"
#include "src/numeric/matrix.h"

namespace spinfer {
namespace paged_attention_detail {

// Per-task phase counters for the traced path, split at the fusion's three
// stages. Now() is out-of-line (paged_attention.cc) so this header does not
// pull in the tracer.
struct AttnPhaseRecorder {
  uint64_t qk_ns = 0;
  uint64_t softmax_ns = 0;
  uint64_t pv_ns = 0;
  uint64_t keys = 0;
  uint64_t Now() const;
};

// Block kernel contracts. `base` points at the block's first row for this
// head (the r0k offset is already applied); row t is base + t * stride.
//   qk_fn(qh, kbase, rows, stride, hd, inv_sqrt_d, scores):
//     scores[t] = (sum over r ascending of qh[r] * kbase[t*stride + r]) *
//                 inv_sqrt_d for t in [0, rows), per the chain contract.
//   pv_fn(scores, vbase, rows, stride, hd, acc):
//     acc[r] += scores[t] * vbase[t*stride + r] for t ascending (outer),
//     each acc[r] a separate chain.
using QkBlockFn = void (*)(const float* qh, const float* kbase, int64_t rows,
                           int64_t stride, int64_t hd, float inv_sqrt_d,
                           float* scores);
using PvBlockFn = void (*)(const float* scores, const float* vbase,
                           int64_t rows, int64_t stride, int64_t hd,
                           float* acc);

// Portable block kernels: the scalar reference chains, written so the
// baseline-ISA compiler can auto-vectorize the PV r-loop (independent
// element chains — exact) but not the QK dot (a reduction; reordering it
// would change bits, and without -ffast-math the compiler must not).
static inline void ScalarQkBlock(const float* qh, const float* kbase,
                                 int64_t rows, int64_t stride, int64_t hd,
                                 float inv_sqrt_d, float* scores) {
  for (int64_t t = 0; t < rows; ++t) {
    const float* krow = kbase + t * stride;
    float dot = 0.0f;
    for (int64_t r = 0; r < hd; ++r) {
      dot += qh[r] * krow[r];
    }
    scores[t] = dot * inv_sqrt_d;
  }
}

static inline void ScalarPvBlock(const float* scores, const float* vbase,
                                 int64_t rows, int64_t stride, int64_t hd,
                                 float* acc) {
  for (int64_t t = 0; t < rows; ++t) {
    const float s = scores[t];
    const float* vrow = vbase + t * stride;
    for (int64_t r = 0; r < hd; ++r) {
      acc[r] += s * vrow[r];
    }
  }
}

// The fused pass for one (item, head) work unit: stage the strided query
// column into contiguous `qh`, sweep the KV blocks once for QK, softmax in
// place, sweep them once more for PV, write back. `blocks`/`ctx` are the
// item's resolved page table and horizon; `r0q` is the query head's row
// offset in q/out, `r0k` the kv head's row offset inside a kv_dim-float
// cache row. `qh`/`scores`/`acc` are this work unit's private slices of the
// batch scratch. The two KV sweeps touch each block's rows once per stage
// while the block (block_tokens * hd floats per tensor) is L1-resident.
template <bool kTimed>
static void RunAttentionItem(const PagedKvCache& cache, int64_t layer,
                             const std::vector<int32_t>& blocks, int64_t ctx,
                             const FloatMatrix& q, int64_t col, int64_t r0q,
                             int64_t r0k, int64_t hd, float inv_sqrt_d,
                             QkBlockFn qk_fn, PvBlockFn pv_fn, float* qh,
                             float* scores, float* acc, FloatMatrix* out,
                             AttnPhaseRecorder* rec = nullptr) {
  const int64_t stride = cache.config().kv_dim;
  const int64_t bt = cache.config().block_tokens;
  for (int64_t r = 0; r < hd; ++r) {
    qh[r] = q.at(r0q + r, col);
  }
  uint64_t t_phase = 0;
  if constexpr (kTimed) {
    t_phase = rec->Now();
  }
  for (int64_t t0 = 0; t0 < ctx; t0 += bt) {
    const float* kbase =
        cache.KBlockBase(layer, blocks[static_cast<size_t>(t0 / bt)]) + r0k;
    qk_fn(qh, kbase, std::min(bt, ctx - t0), stride, hd, inv_sqrt_d,
          scores + t0);
  }
  if constexpr (kTimed) {
    const uint64_t now = rec->Now();
    rec->qk_ns += now - t_phase;
    rec->keys += static_cast<uint64_t>(ctx);
    t_phase = now;
  }
  // Softmax stays scalar in this shared (baseline-ISA) header: identical
  // libm exp calls in identical order on every variant.
  float max_score = -1e30f;
  for (int64_t t = 0; t < ctx; ++t) {
    max_score = std::max(max_score, scores[t]);
  }
  float denom = 0.0f;
  for (int64_t t = 0; t < ctx; ++t) {
    const float e = std::exp(scores[t] - max_score);
    scores[t] = e;
    denom += e;
  }
  if constexpr (kTimed) {
    const uint64_t now = rec->Now();
    rec->softmax_ns += now - t_phase;
    t_phase = now;
  }
  for (int64_t r = 0; r < hd; ++r) {
    acc[r] = 0.0f;
  }
  for (int64_t t0 = 0; t0 < ctx; t0 += bt) {
    const float* vbase =
        cache.VBlockBase(layer, blocks[static_cast<size_t>(t0 / bt)]) + r0k;
    pv_fn(scores + t0, vbase, std::min(bt, ctx - t0), stride, hd, acc);
  }
  for (int64_t r = 0; r < hd; ++r) {
    out->at(r0q + r, col) = acc[r] / denom;
  }
  if constexpr (kTimed) {
    rec->pv_ns += rec->Now() - t_phase;
  }
}

// The AVX2 variant's block kernels, defined in paged_attention_avx2.cc
// (built with -mavx2 -mfma when available; CHECK-failing stubs otherwise).
// Gate: PagedAttentionVariantAvailable(kAvx2) — compiled-in AND runtime
// avx2+fma. Bit-identical to the scalar kernels by the chain contract: QK
// vectorizes across 8 keys (8x8-transposed K rows, one lane per key's
// ascending-r chain), PV across the head dimension (independent row chains),
// both with explicit separate mul/add — never FMA.
void QkBlockAvx2(const float* qh, const float* kbase, int64_t rows,
                 int64_t stride, int64_t hd, float inv_sqrt_d, float* scores);
void PvBlockAvx2(const float* scores, const float* vbase, int64_t rows,
                 int64_t stride, int64_t hd, float* acc);
// Whether the AVX2 unit was built with its ISA flags (false on non-x86 or
// pre-AVX2 toolchains; the stubs then CHECK-fail if ever reached).
bool PagedAttentionAvx2Compiled();

}  // namespace paged_attention_detail
}  // namespace spinfer
