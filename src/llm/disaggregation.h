// Disaggregated prefill/decode deployment planning (paper §6).
//
// The paper argues SpInfer's decode-phase optimization fits the emerging
// decoupled architecture (Splitwise, DistServe, Mooncake): prefill runs on a
// compute-optimized cluster where SpInfer's advantage is neutral (Fig. 16),
// decode runs on a bandwidth-bound cluster where it shines. This module
// sizes both clusters for a target request rate and prices the KV-cache
// handoff between them — turning the §6 discussion into a planning tool.
#pragma once

#include <cstdint>

#include "src/llm/engine.h"

namespace spinfer {

struct DisaggConfig {
  ModelConfig model;
  Framework framework = Framework::kSpInfer;
  double sparsity = 0.6;

  // Per-instance hardware for each cluster.
  DeviceSpec prefill_device = Rtx4090();
  int prefill_gpus = 2;
  DeviceSpec decode_device = Rtx4090();
  int decode_gpus = 1;

  // Workload.
  double request_rate_rps = 1.0;
  int64_t input_len = 512;
  int64_t output_len = 128;
  // Scheduler cap for decode continuous batching.
  int64_t max_decode_batch = 64;
  // Prefill->decode interconnect for the KV handoff (datacenter network or
  // NVLink fabric), GB/s.
  double transfer_bw_gbs = 25.0;
};

struct DisaggReport {
  bool prefill_fits = false;
  bool decode_fits = false;

  // Per-request costs.
  double prefill_ms = 0.0;       // one prompt on one prefill instance
  double kv_transfer_ms = 0.0;   // shipping the prompt's KV cache
  double ttft_ms = 0.0;          // time to first token (prefill + transfer)
  double tpot_ms = 0.0;          // steady-state time per output token

  // Decode-side capacity.
  int64_t decode_batch = 0;           // memory-feasible concurrent sequences
  double decode_tokens_per_s = 0.0;   // one decode instance at that batch
  double decode_requests_per_s = 0.0;

  // Cluster sizing for the target rate.
  double prefill_instances = 0.0;
  double decode_instances = 0.0;
  double total_gpus = 0.0;
};

DisaggReport PlanDisaggregation(const DisaggConfig& cfg);

}  // namespace spinfer
