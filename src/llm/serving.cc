#include "src/llm/serving.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "src/util/check.h"
#include "src/util/random.h"
#include "src/util/stats.h"

namespace spinfer {
namespace {

// Largest batch whose memory plan fits at full context.
int64_t FeasibleBatch(const ServingConfig& cfg) {
  const int64_t max_context = cfg.input_len + cfg.output_len;
  int64_t lo = 0;
  int64_t hi = cfg.max_batch;
  while (lo < hi) {
    const int64_t mid = (lo + hi + 1) / 2;
    const MemoryPlan plan = PlanMemory(
        cfg.engine.model, FrameworkWeightFormat(cfg.engine.framework),
        FrameworkWeightFormat(cfg.engine.framework) == WeightFormat::kDense
            ? 0.0
            : cfg.engine.sparsity,
        mid, max_context, cfg.engine.num_gpus, cfg.engine.device);
    if (plan.Fits()) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

struct Request {
  double arrival_s = 0.0;
  int64_t generated = 0;
};

}  // namespace

ServingReport SimulateServing(const ServingConfig& cfg) {
  SPINFER_CHECK(cfg.arrival_rate_rps > 0.0 && cfg.sim_seconds > 0.0);
  ServingReport report;
  report.feasible_batch = FeasibleBatch(cfg);
  if (report.feasible_batch == 0) {
    return report;  // model does not fit at all: nothing to serve
  }

  Rng rng(cfg.seed);
  // Pre-draw the arrival process over the horizon (plus slack so late
  // iterations still see arrivals).
  std::deque<Request> queue;
  {
    double t = 0.0;
    while (t < cfg.sim_seconds) {
      t += -std::log(1.0 - rng.Uniform()) / cfg.arrival_rate_rps;
      if (t < cfg.sim_seconds) {
        queue.push_back({t, 0});
        ++report.arrived;
      }
    }
  }

  std::vector<Request> active;
  std::vector<double> latencies_ms;
  double now_s = 0.0;
  double batch_time_integral = 0.0;
  int64_t tokens_generated = 0;

  while (now_s < cfg.sim_seconds || !active.empty()) {
    // Admit arrived requests up to the feasible batch; each admission pays
    // its prefill in this iteration.
    int64_t admitted = 0;
    while (!queue.empty() && queue.front().arrival_s <= now_s &&
           static_cast<int64_t>(active.size()) < report.feasible_batch) {
      active.push_back(queue.front());
      queue.pop_front();
      ++admitted;
    }
    if (active.empty()) {
      // Idle: jump to the next arrival.
      if (queue.empty()) {
        break;
      }
      now_s = queue.front().arrival_s;
      continue;
    }

    double iter_us = 0.0;
    if (admitted > 0) {
      iter_us += PrefillTimeUs(cfg.engine, admitted, cfg.input_len);
    }
    // Decode one token for every active sequence at the mean live context.
    int64_t context_sum = 0;
    for (const Request& r : active) {
      context_sum += cfg.input_len + r.generated + 1;
    }
    const int64_t batch = static_cast<int64_t>(active.size());
    iter_us += DecodeStepTimeUs(cfg.engine, batch, context_sum / batch);
    now_s += iter_us / 1e6;
    batch_time_integral += static_cast<double>(batch) * iter_us / 1e6;
    tokens_generated += batch;

    // Advance sequences; retire completed ones.
    for (auto it = active.begin(); it != active.end();) {
      it->generated += 1;
      if (it->generated >= cfg.output_len) {
        latencies_ms.push_back((now_s - it->arrival_s) * 1e3);
        ++report.completed;
        it = active.erase(it);
      } else {
        ++it;
      }
    }
    // Safety: cap runaway simulations (overload at high arrival rates).
    if (now_s > cfg.sim_seconds * 5) {
      break;
    }
  }

  report.throughput_tps = tokens_generated / std::max(now_s, 1e-9);
  report.mean_batch = batch_time_integral / std::max(now_s, 1e-9);
  const LatencySummary lat = SummarizeLatenciesMs(std::move(latencies_ms));
  report.mean_latency_ms = lat.mean_ms;
  report.p50_latency_ms = lat.p50_ms;
  report.p95_latency_ms = lat.p95_ms;
  report.p99_latency_ms = lat.p99_ms;
  return report;
}

}  // namespace spinfer
