// Executing tensor-parallel serving substrate: N virtual shards of one
// TinyTransformer behind the ServingSubstrate seam, bit-identical to the
// single-instance engine at any shard count.
//
// Partitioning. Megatron splits each layer column/row-wise and joins the
// K-dim partial sums with a floating-point all-reduce — which reassociates
// additions and cannot be bit-identical to the unsharded model. This engine
// instead partitions every weight matrix (wq/wk/wv/wo/fc1/fc2) by OUTPUT
// rows: each shard computes a disjoint row band of every projection from the
// full activation panel, so every output element's scalar accumulation chain
// is exactly the whole-matrix kernel's. The inter-shard "collectives" are
// pure row gathers (copies, no arithmetic), and the TCA-BME row slices are
// cut at GroupTile (gt_rows) boundaries so the sliced sparse kernels traverse
// the same tiles in the same order as the whole-matrix encode. Consequences:
//   * Token streams, logits, and KV bytes are bit-identical to
//     TinyTransformer::MixedStep for any shard count, batch mix, and thread
//     count.
//   * Attention shards by query head (heads % shards == 0); under GQA the kv
//     groups must not straddle a shard cut (kv_heads % shards == 0), so each
//     shard's cache holds exactly its own kv heads' rows (kv_dim / shards).
//
// Time model ("execution real, clock virtual", like ServingEngine): the
// virtual interconnect still prices the canonical Megatron schedule — two
// ring all-reduces of the (hidden x panel) FP16 activations per layer, via
// LayerCommTimeUs on the configured DeviceSpec — accumulated in comm_us().
// The analytic cross-check tests recompute that expression per step from
// step_panel_cols() and match it exactly.
//
// KV discipline: per-shard PagedKvCache pools (kv_dim / shards rows each)
// driven in lockstep — every allocator mutation is applied to all shards in
// the same order, so block tables, free lists, and prefix indexes are
// identical across shards and shard 0 serves as the scheduler's exact
// accounting view (ServingSubstrate::cache()).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/gpusim/device_spec.h"
#include "src/llm/serving_substrate.h"

namespace spinfer {

struct ShardedEngineConfig {
  int shards = 2;
  int64_t kv_block_tokens = 16;
  int64_t kv_num_blocks = 64;  // per shard
  // Interconnect pricing the virtual ring all-reduces (link_bw_gbs /
  // link_latency_us are the fields that matter).
  DeviceSpec device;
};

class ShardedEngine : public ServingSubstrate {
 public:
  // `model` is borrowed and must outlive the engine. Requires (CHECKed):
  // heads, kv_head_count, and hidden/kv_dim/ffn row counts all divisible so
  // every slice boundary lands on a head boundary and a TCA-BME GroupTile
  // boundary (see file comment).
  ShardedEngine(const TinyTransformer* model, const ShardedEngineConfig& cfg);

  // --- ServingSubstrate ------------------------------------------------------
  const TinyConfig& model_config() const override { return model_->config(); }
  const PagedKvCache& cache() const override { return shards_[0].cache; }
  PagedKvCache::PrefixMatch MatchPrefix(
      const std::vector<int32_t>& prompt) const override;
  bool AddSequenceSharing(int64_t seq_id, const std::vector<int32_t>& prompt,
                          int64_t tokens,
                          const PagedKvCache::PrefixMatch& match) override;
  void RemoveSequence(int64_t seq_id) override;
  void IndexPrefix(int64_t seq_id, const std::vector<int32_t>& prompt,
                   int64_t filled) override;
  void MixedStep(const std::vector<int64_t>& dec_ids,
                 const std::vector<int32_t>& dec_last,
                 const std::vector<PrefillChunk>& chunks, MatmulBackend backend,
                 std::vector<int32_t>* dec_next,
                 std::vector<int32_t>* chunk_next) override;

  // --- Introspection ---------------------------------------------------------
  int shards() const { return cfg_.shards; }
  // MixedStep iterations executed.
  int64_t steps() const { return steps_; }
  // Accumulated virtual interconnect time: for each step with panel width n,
  // layers * LayerCommTimeUs(n, hidden, shards, device).
  double comm_us() const { return comm_us_; }
  // Panel width (decode columns + chunk tokens) of each executed step, in
  // order — the cross-check tests re-price the comm from these.
  const std::vector<int64_t>& step_panel_cols() const { return step_cols_; }
  // Byte-stable rendering ("shards=%d steps=%lld comm_us=%.6f"); the
  // determinism tests compare it across thread counts.
  std::string StatsToString() const;

 private:
  struct ShardLayer {
    // Output-row slices: wq/wo rows [s*h/g, (s+1)*h/g), wk/wv rows
    // [s*kvd/g, ...), fc1 rows [s*ffn/g, ...), fc2 rows [s*h/g, ...). All
    // span the full input (K) dimension.
    HalfMatrix wq, wk, wv, wo, fc1, fc2;
    TcaBmeMatrix enc_wq, enc_wk, enc_wv, enc_wo, enc_fc1, enc_fc2;
  };
  struct Shard {
    std::vector<ShardLayer> layers;
    PagedKvCache cache;  // kv_dim / shards rows per token
    // Per-shard output panels (row bands before the gather).
    FloatMatrix q, kk, v, attn_out, proj, hidden_act, ffn_out;

    explicit Shard(const PagedKvCacheConfig& kv) : cache(kv) {}
  };

  // out = W_slice * x on `backend` (same numerics as TinyTransformer's
  // MatmulInto, against one shard's row slice).
  void MatmulInto(const HalfMatrix& dense, const TcaBmeMatrix& encoded,
                  const FloatMatrix& x, MatmulBackend backend,
                  const char* label, FloatMatrix* out);

  const TinyTransformer* model_;
  ShardedEngineConfig cfg_;
  std::vector<Shard> shards_;

  // Shared (sequential across shards) scratch: the full activation panel and
  // the gathered projections, plus the matmul/attention workspaces.
  FloatMatrix act_, normed_, attn_full_, proj_full_, ffn_in_, hidden_full_,
      ffn_out_full_, logits_;
  HalfMatrix xh_;
  SpmmWorkspace ws_;
  PagedAttentionScratch attn_scratch_;
  std::vector<PagedAttentionItem> attn_items_;

  int64_t steps_ = 0;
  double comm_us_ = 0.0;
  std::vector<int64_t> step_cols_;
};

}  // namespace spinfer
