// Transformer model descriptions for the paper's evaluation set (§5.1):
// OPT 13B/30B/66B/175B, LLaMA2 7B/13B/70B, LLaMA3 8B/70B, Qwen2 7B/72B, and
// Mixtral-8x7B. Only architecture shapes matter — kernels and formats are
// value-agnostic — so configs carry dimensions, not checkpoints.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spinfer {

struct ModelConfig {
  std::string name;
  int64_t hidden = 0;      // model dimension h
  int64_t layers = 0;
  int64_t heads = 0;       // attention heads
  int64_t kv_heads = 0;    // KV heads (GQA); == heads for classic MHA
  int64_t ffn_hidden = 0;  // FFN intermediate dimension
  int64_t vocab = 0;
  // LLaMA-style gated FFN (SwiGLU): three FFN matrices instead of two.
  bool gated_ffn = false;
  // Mixture of experts (Mixtral): total and per-token-active expert counts.
  int num_experts = 1;
  int active_experts = 1;

  int64_t head_dim() const { return hidden / heads; }

  // Total parameter count (transformer weights + embeddings).
  int64_t NumParams() const;
};

// One linear layer's weight shape: output = W(m x k) * input.
struct GemmShape {
  std::string op;  // "qkv_proj", "out_proj", "ffn_fc1", ...
  int64_t m = 0;
  int64_t k = 0;
};

// The distinct weight GEMMs of one decoder layer (fused QKV). For MoE
// models, FFN shapes appear once per *active* expert (the per-token work).
std::vector<GemmShape> LayerGemmShapes(const ModelConfig& model);

// Named accessors for the evaluation models.
ModelConfig Opt13B();
ModelConfig Opt30B();
ModelConfig Opt66B();
ModelConfig Opt175B();
ModelConfig Llama2_7B();
ModelConfig Llama2_13B();
ModelConfig Llama2_70B();
ModelConfig Llama3_8B();
ModelConfig Llama3_70B();
ModelConfig Qwen2_7B();
ModelConfig Qwen2_72B();
ModelConfig Mixtral8x7B();

// All models of the kernel-level evaluation (Fig. 10's matrix sources).
std::vector<ModelConfig> AllModels();

// Lookup by name (e.g. "opt-13b"); aborts on unknown names.
ModelConfig ModelByName(const std::string& name);

}  // namespace spinfer
