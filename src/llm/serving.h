// Continuous-batching serving simulator.
//
// The paper calls serving-system work orthogonal (§2.3) — this simulator
// quantifies the interaction: SpInfer's smaller weight footprint leaves more
// HBM for KV cache, which raises the scheduler's feasible batch, which
// raises throughput and lowers tail latency at the same request rate.
//
// Model: Poisson arrivals of identical (input_len, output_len) requests; an
// Orca-style iteration-level scheduler admits queued requests up to the
// memory-feasible batch; each decode iteration costs DecodeStepTimeUs at the
// current batch/context, and newly admitted requests pay their prefill on
// admission.
#pragma once

#include <cstdint>
#include <vector>

#include "src/llm/engine.h"

namespace spinfer {

struct ServingConfig {
  EngineConfig engine;          // model/framework/device/gpus/sparsity
  double arrival_rate_rps = 1.0;  // requests per second
  int64_t input_len = 128;
  int64_t output_len = 128;
  double sim_seconds = 60.0;
  uint64_t seed = 1;
  // Scheduler cap on concurrent sequences (on top of the memory limit).
  int64_t max_batch = 64;
};

struct ServingReport {
  // Largest concurrent batch the memory plan admits (0 = model doesn't fit).
  int64_t feasible_batch = 0;
  int64_t completed = 0;
  int64_t arrived = 0;
  double throughput_tps = 0.0;     // generated tokens per second
  double mean_batch = 0.0;         // average in-flight sequences
  double mean_latency_ms = 0.0;    // request completion latency
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
};

ServingReport SimulateServing(const ServingConfig& cfg);

}  // namespace spinfer
