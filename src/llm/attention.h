// Multi-head attention + KV-cache cost model.
//
// Decode-phase attention is KV-cache-bandwidth bound: each step streams the
// full cache (2 * layers * kv_dim * context * batch FP16 values). Prefill
// attention is compute-heavy (seq^2). Both are modeled per the roofline on
// the target device; weights do not participate (the projections are the
// engine's linear ops).
#pragma once

#include <cstdint>
#include <vector>

#include "src/gpusim/device_spec.h"
#include "src/llm/kv_allocator.h"
#include "src/llm/model_config.h"
#include "src/numeric/matrix.h"

namespace spinfer {

struct AttentionCost {
  double time_us = 0.0;
  uint64_t kv_bytes_read = 0;
  uint64_t flops = 0;
};

// One decode step over all layers, with `context` cached tokens, sharded
// across `num_gpus` (heads split evenly).
AttentionCost DecodeAttentionCost(const ModelConfig& model, int64_t batch,
                                  int64_t context, int num_gpus, const DeviceSpec& dev);

// Full prefill of `seq_len` tokens over all layers (causal attention).
AttentionCost PrefillAttentionCost(const ModelConfig& model, int64_t batch,
                                   int64_t seq_len, int num_gpus, const DeviceSpec& dev);

// Bytes of KV cache held per GPU for `context` tokens.
uint64_t KvCacheBytes(const ModelConfig& model, int64_t batch, int64_t context,
                      int num_gpus);

// The executing paged-attention kernels (the CPU serving path this cost
// model prices) live in src/llm/paged_attention.h.

}  // namespace spinfer
