// Multi-head attention + KV-cache cost model.
//
// Decode-phase attention is KV-cache-bandwidth bound: each step streams the
// full cache (2 * layers * kv_dim * context * batch FP16 values). Prefill
// attention is compute-heavy (seq^2). Both are modeled per the roofline on
// the target device; weights do not participate (the projections are the
// engine's linear ops).
#pragma once

#include <cstdint>
#include <vector>

#include "src/gpusim/device_spec.h"
#include "src/llm/kv_allocator.h"
#include "src/llm/model_config.h"
#include "src/numeric/matrix.h"

namespace spinfer {

struct AttentionCost {
  double time_us = 0.0;
  uint64_t kv_bytes_read = 0;
  uint64_t flops = 0;
};

// One decode step over all layers, with `context` cached tokens, sharded
// across `num_gpus` (heads split evenly).
AttentionCost DecodeAttentionCost(const ModelConfig& model, int64_t batch,
                                  int64_t context, int num_gpus, const DeviceSpec& dev);

// Full prefill of `seq_len` tokens over all layers (causal attention).
AttentionCost PrefillAttentionCost(const ModelConfig& model, int64_t batch,
                                   int64_t seq_len, int num_gpus, const DeviceSpec& dev);

// Bytes of KV cache held per GPU for `context` tokens.
uint64_t KvCacheBytes(const ModelConfig& model, int64_t batch, int64_t context,
                      int num_gpus);

// --- Executing paged attention (CPU serving path) ---------------------------
//
// Causal decode attention for ONE sequence at ONE layer: the query is column
// `col` of `q` (a kv_dim x batch activation panel), keys/values are the
// sequence's cached slots [0, context) in `cache` — including the slot for
// the token being attended, whose K/V must already be written. `context` is
// the number of cached slots visible to this query; pass -1 (the decode
// default) for all of SequenceTokens. Chunked prefill passes an explicit
// horizon so prompt position p attends over slots [0, p] even while later
// slots of the same chunk are already written. The result is written into
// column `col` of `out` (same shape as `q`).
//
// Numerics deliberately mirror TinyTransformer::Forward's in-batch attention
// (max-subtracted softmax, identical accumulation order over the context), and
// the computation touches only this sequence's pages and this column — so a
// sequence's decode output is bit-identical regardless of which other
// sequences share the batch. `scores` is caller-owned scratch, grown to the
// context length.
void PagedAttentionDecode(const PagedKvCache& cache, int64_t layer,
                          int64_t seq_id, int64_t heads, const FloatMatrix& q,
                          int64_t col, FloatMatrix* out,
                          std::vector<float>* scores, int64_t context = -1);

}  // namespace spinfer
