// AVX2 unit of the batched paged-attention kernel. Built with -mavx2 -mfma
// when the compiler supports them (see src/llm/CMakeLists.txt); kernels run
// only after runtime feature detection, so the rest of the binary stays
// executable on baseline x86-64 and non-x86 hosts. No F16C here — the paged
// KV pools hold FP32 rows.
//
// Vectorization scheme, per the chain contract in paged_attention_inner.h:
//   * QK vectorizes *across keys*: eight K rows of a block are 8x8-transposed
//     (the same unpack/shuffle/permute2f128 kernel as cpu_spmv_avx2.cc) so
//     one ymm register holds eight keys' partial dots, and the head dimension
//     is swept in ascending order with one vmulps + one vaddps per element —
//     each lane is exactly the scalar ascending-r chain of one key. The
//     final scale is one vmulps, matching the scalar dot * inv_sqrt_d.
//   * PV vectorizes *across the head dimension*: output-row chains are
//     mutually independent, so acc[r..r+7] += broadcast(score[t]) * v[r..r+7]
//     with explicit mul/add keeps every row's ascending-t chain intact.
// No FMA anywhere; the TU is also built with -ffp-contract=off so the
// compiler cannot re-fuse the scalar tails.
//
// Heads whose dimension is not a multiple of 8 take the scalar block kernels
// (speed-only fallback — identical bits by the shared-chain contract);
// key-count tails past the last group of 8 fall back per key the same way.
#include "src/llm/paged_attention_inner.h"
#include "src/util/check.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define SPINFER_PAGED_ATTN_AVX2 1
#endif

namespace spinfer {
namespace paged_attention_detail {

#if defined(SPINFER_PAGED_ATTN_AVX2)

namespace {

// Classic 8x8 float transpose: in[tt] lane rr -> out[rr] lane tt.
inline void Transpose8x8(const __m256 in[8], __m256 out[8]) {
  const __m256 t0 = _mm256_unpacklo_ps(in[0], in[1]);
  const __m256 t1 = _mm256_unpackhi_ps(in[0], in[1]);
  const __m256 t2 = _mm256_unpacklo_ps(in[2], in[3]);
  const __m256 t3 = _mm256_unpackhi_ps(in[2], in[3]);
  const __m256 t4 = _mm256_unpacklo_ps(in[4], in[5]);
  const __m256 t5 = _mm256_unpackhi_ps(in[4], in[5]);
  const __m256 t6 = _mm256_unpacklo_ps(in[6], in[7]);
  const __m256 t7 = _mm256_unpackhi_ps(in[6], in[7]);
  const __m256 u0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
  out[0] = _mm256_permute2f128_ps(u0, u4, 0x20);
  out[1] = _mm256_permute2f128_ps(u1, u5, 0x20);
  out[2] = _mm256_permute2f128_ps(u2, u6, 0x20);
  out[3] = _mm256_permute2f128_ps(u3, u7, 0x20);
  out[4] = _mm256_permute2f128_ps(u0, u4, 0x31);
  out[5] = _mm256_permute2f128_ps(u1, u5, 0x31);
  out[6] = _mm256_permute2f128_ps(u2, u6, 0x31);
  out[7] = _mm256_permute2f128_ps(u3, u7, 0x31);
}

// One key's dot, the scalar chain — the tail path past the last group of 8.
inline float ScalarDot(const float* qh, const float* krow, int64_t hd) {
  float dot = 0.0f;
  for (int64_t r = 0; r < hd; ++r) {
    dot += qh[r] * krow[r];
  }
  return dot;
}

}  // namespace

void QkBlockAvx2(const float* qh, const float* kbase, int64_t rows,
                 int64_t stride, int64_t hd, float inv_sqrt_d, float* scores) {
  if (hd % 8 != 0) {
    ScalarQkBlock(qh, kbase, rows, stride, hd, inv_sqrt_d, scores);
    return;
  }
  const __m256 inv = _mm256_set1_ps(inv_sqrt_d);
  int64_t t = 0;
  for (; t + 8 <= rows; t += 8) {
    const float* kblk = kbase + t * stride;
    __m256 acc = _mm256_setzero_ps();
    for (int64_t r0 = 0; r0 < hd; r0 += 8) {
      __m256 krows[8];
      for (int tt = 0; tt < 8; ++tt) {
        krows[tt] = _mm256_loadu_ps(kblk + tt * stride + r0);
      }
      __m256 kcols[8];
      Transpose8x8(krows, kcols);
      for (int rr = 0; rr < 8; ++rr) {
        const __m256 qb = _mm256_broadcast_ss(qh + r0 + rr);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(qb, kcols[rr]));
      }
    }
    _mm256_storeu_ps(scores + t, _mm256_mul_ps(acc, inv));
  }
  for (; t < rows; ++t) {
    scores[t] = ScalarDot(qh, kbase + t * stride, hd) * inv_sqrt_d;
  }
}

void PvBlockAvx2(const float* scores, const float* vbase, int64_t rows,
                 int64_t stride, int64_t hd, float* acc) {
  for (int64_t t = 0; t < rows; ++t) {
    const float* vrow = vbase + t * stride;
    const __m256 s = _mm256_broadcast_ss(scores + t);
    int64_t r = 0;
    for (; r + 8 <= hd; r += 8) {
      const __m256 prod = _mm256_mul_ps(s, _mm256_loadu_ps(vrow + r));
      _mm256_storeu_ps(acc + r, _mm256_add_ps(_mm256_loadu_ps(acc + r), prod));
    }
    for (; r < hd; ++r) {
      acc[r] += scores[t] * vrow[r];
    }
  }
}

bool PagedAttentionAvx2Compiled() { return true; }

#else  // !SPINFER_PAGED_ATTN_AVX2

void QkBlockAvx2(const float*, const float*, int64_t, int64_t, int64_t, float,
                 float*) {
  SPINFER_CHECK_MSG(false, "paged-attention AVX2 unit not compiled in");
}

void PvBlockAvx2(const float*, const float*, int64_t, int64_t, int64_t,
                 float*) {
  SPINFER_CHECK_MSG(false, "paged-attention AVX2 unit not compiled in");
}

bool PagedAttentionAvx2Compiled() { return false; }

#endif  // SPINFER_PAGED_ATTN_AVX2

}  // namespace paged_attention_detail
}  // namespace spinfer
