#include "src/llm/sharded_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/core/cpu_backend.h"
#include "src/llm/paged_attention.h"
#include "src/llm/parallel.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"

namespace spinfer {
namespace {

#ifdef SPINFER_TRACING_DISABLED
inline constexpr bool kTpObs = false;
#else
inline constexpr bool kTpObs = true;
#endif

// Cached global instruments for the virtual interconnect (same find-or-create
// discipline as ServingMetrics in serving_engine.cc). Recording never feeds
// back into results: token streams and comm_us are identical with metrics on
// or off.
struct TpMetrics {
  obs::Counter* steps;
  obs::Counter* comm_us;

  static TpMetrics& Get() {
    static TpMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      TpMetrics t;
      t.steps = reg.GetCounter("srv.tp.steps");
      t.comm_us = reg.GetCounter("srv.tp.comm_us");
      return t;
    }();
    return m;
  }
};

// Rows [row0, row0 + rows) of `w` as an owned copy; the slice spans the full
// K dimension, so slice * X computes exactly those rows of w * X.
HalfMatrix SliceRows(const HalfMatrix& w, int64_t row0, int64_t rows) {
  HalfMatrix s(rows, w.cols());
  std::copy(w.data() + row0 * w.cols(), w.data() + (row0 + rows) * w.cols(),
            s.data());
  return s;
}

// The numeric helpers below mirror tiny_transformer.cc's file-local copies
// expression for expression — the bit-identity contract rests on them
// rounding identically.
void ToHalfInto(const FloatMatrix& f, HalfMatrix* h) {
  h->Reshape(f.rows(), f.cols());
  for (int64_t i = 0; i < f.size(); ++i) {
    h->data()[i] = Half(f.data()[i]);
  }
}

void CopyInto(const FloatMatrix& src, FloatMatrix* dst) {
  dst->Reshape(src.rows(), src.cols());
  std::copy(src.data(), src.data() + src.size(), dst->data());
}

void LayerNormColumns(FloatMatrix* a) {
  const int64_t h = a->rows();
  for (int64_t c = 0; c < a->cols(); ++c) {
    double mean = 0.0;
    for (int64_t r = 0; r < h; ++r) {
      mean += a->at(r, c);
    }
    mean /= static_cast<double>(h);
    double var = 0.0;
    for (int64_t r = 0; r < h; ++r) {
      const double d = a->at(r, c) - mean;
      var += d * d;
    }
    var /= static_cast<double>(h);
    const double inv = 1.0 / std::sqrt(var + 1e-5);
    for (int64_t r = 0; r < h; ++r) {
      a->at(r, c) = static_cast<float>((a->at(r, c) - mean) * inv);
    }
  }
}

float Gelu(float x) {
  const float c = 0.7978845608f;  // sqrt(2/pi)
  return 0.5f * x * (1.0f + std::tanh(c * (x + 0.044715f * x * x * x)));
}

// Copies shard panel `src` (a row band) into rows [row0, row0 + src.rows())
// of `dst` — the zero-arithmetic stand-in for the all-gather.
void GatherRows(const FloatMatrix& src, int64_t row0, FloatMatrix* dst) {
  for (int64_t r = 0; r < src.rows(); ++r) {
    std::copy(src.data() + r * src.cols(),
              src.data() + (r + 1) * src.cols(),
              dst->data() + (row0 + r) * dst->cols());
  }
}

}  // namespace

ShardedEngine::ShardedEngine(const TinyTransformer* model,
                             const ShardedEngineConfig& cfg)
    : model_(model), cfg_(cfg) {
  SPINFER_CHECK(model != nullptr);
  const TinyConfig& c = model->config();
  const int64_t g = cfg.shards;
  SPINFER_CHECK(g >= 1);
  // Head-aligned cuts: each shard owns whole query heads, and whole kv
  // groups so no query head reads another shard's kv rows.
  SPINFER_CHECK_MSG(c.heads % g == 0, "heads must divide by shard count");
  SPINFER_CHECK_MSG(c.kv_head_count() % g == 0,
                    "kv heads must divide by shard count");
  // GroupTile-aligned cuts: row slices encoded with the model's own TCA-BME
  // geometry traverse the same tiles as the whole-matrix encode.
  const int64_t gt = TinyTransformer::EncodeFormat().gt_rows;
  SPINFER_CHECK_MSG((c.hidden / g) % gt == 0,
                    "hidden slice must be a GroupTile-row multiple");
  SPINFER_CHECK_MSG((c.kv_dim() / g) % gt == 0,
                    "kv_dim slice must be a GroupTile-row multiple");
  SPINFER_CHECK_MSG((c.ffn / g) % gt == 0,
                    "ffn slice must be a GroupTile-row multiple");

  PagedKvCacheConfig kv;
  kv.layers = c.layers;
  kv.kv_dim = c.kv_dim() / g;
  kv.block_tokens = cfg.kv_block_tokens;
  kv.num_blocks = cfg.kv_num_blocks;

  const TcaBmeConfig fmt = TinyTransformer::EncodeFormat();
  const int64_t h_per = c.hidden / g;
  const int64_t kv_per = c.kv_dim() / g;
  const int64_t ffn_per = c.ffn / g;
  shards_.reserve(static_cast<size_t>(g));
  for (int64_t s = 0; s < g; ++s) {
    shards_.emplace_back(kv);
    Shard& shard = shards_.back();
    shard.layers.resize(static_cast<size_t>(c.layers));
    for (int64_t layer = 0; layer < c.layers; ++layer) {
      const TinyTransformer::LayerWeights w = model->layer_weights(layer);
      ShardLayer& sl = shard.layers[static_cast<size_t>(layer)];
      sl.wq = SliceRows(*w.wq, s * h_per, h_per);
      sl.wk = SliceRows(*w.wk, s * kv_per, kv_per);
      sl.wv = SliceRows(*w.wv, s * kv_per, kv_per);
      sl.wo = SliceRows(*w.wo, s * h_per, h_per);
      sl.fc1 = SliceRows(*w.fc1, s * ffn_per, ffn_per);
      sl.fc2 = SliceRows(*w.fc2, s * h_per, h_per);
      sl.enc_wq = TcaBmeMatrix::Encode(sl.wq, fmt);
      sl.enc_wk = TcaBmeMatrix::Encode(sl.wk, fmt);
      sl.enc_wv = TcaBmeMatrix::Encode(sl.wv, fmt);
      sl.enc_wo = TcaBmeMatrix::Encode(sl.wo, fmt);
      sl.enc_fc1 = TcaBmeMatrix::Encode(sl.fc1, fmt);
      sl.enc_fc2 = TcaBmeMatrix::Encode(sl.fc2, fmt);
    }
  }
}

PagedKvCache::PrefixMatch ShardedEngine::MatchPrefix(
    const std::vector<int32_t>& prompt) const {
  return shards_[0].cache.MatchPrefix(prompt);
}

bool ShardedEngine::AddSequenceSharing(int64_t seq_id,
                                       const std::vector<int32_t>& prompt,
                                       int64_t tokens,
                                       const PagedKvCache::PrefixMatch& match) {
  // Shard 0 adopts the scheduler's match; the others re-derive their own
  // against their own prefix index. Lockstep allocation makes the matches
  // congruent (same token coverage, each shard's own block ids), and
  // identical free lists make the outcomes agree — shard 0's verdict is
  // final, the rest are CHECKed.
  if (!shards_[0].cache.AddSequenceSharing(seq_id, tokens, match)) {
    return false;
  }
  for (size_t s = 1; s < shards_.size(); ++s) {
    const PagedKvCache::PrefixMatch m = shards_[s].cache.MatchPrefix(prompt);
    SPINFER_CHECK_EQ(m.tokens, match.tokens);
    SPINFER_CHECK(shards_[s].cache.AddSequenceSharing(seq_id, tokens, m));
  }
  return true;
}

void ShardedEngine::RemoveSequence(int64_t seq_id) {
  for (Shard& s : shards_) {
    s.cache.RemoveSequence(seq_id);
  }
}

void ShardedEngine::IndexPrefix(int64_t seq_id,
                                const std::vector<int32_t>& prompt,
                                int64_t filled) {
  for (Shard& s : shards_) {
    s.cache.IndexPrefix(seq_id, prompt, filled);
  }
}

void ShardedEngine::MatmulInto(const HalfMatrix& dense,
                               const TcaBmeMatrix& encoded,
                               const FloatMatrix& x, MatmulBackend backend,
                               const char* label, FloatMatrix* out) {
  SPINFER_TRACE_SCOPE(label);
  if (backend == MatmulBackend::kDense) {
    ToHalfInto(x, &xh_);
    *out = ReferenceGemm(dense, xh_);
    return;
  }
  CpuSpmmQuantInto(encoded, x, &ws_, out);
}

void ShardedEngine::MixedStep(const std::vector<int64_t>& dec_ids,
                              const std::vector<int32_t>& dec_last,
                              const std::vector<PrefillChunk>& chunks,
                              MatmulBackend backend,
                              std::vector<int32_t>* dec_next,
                              std::vector<int32_t>* chunk_next) {
  const int64_t dec = static_cast<int64_t>(dec_ids.size());
  SPINFER_CHECK_EQ(static_cast<int64_t>(dec_last.size()), dec);
  SPINFER_CHECK(dec_next != nullptr || dec == 0);
  SPINFER_CHECK(chunk_next != nullptr || chunks.empty());
  const TinyConfig& c = model_->config();
  const int64_t g = cfg_.shards;
  const int64_t h = c.hidden;
  const int64_t h_per = h / g;
  const int64_t kv_per = c.kv_dim() / g;
  const int64_t ffn_per = c.ffn / g;

  int64_t n = dec;
  for (const PrefillChunk& ch : chunks) {
    SPINFER_CHECK(ch.prompt != nullptr && ch.count > 0 && ch.start >= 0);
    const int64_t len = static_cast<int64_t>(ch.prompt->size());
    SPINFER_CHECK(ch.start + ch.count <= len && len <= c.max_seq);
    SPINFER_CHECK_MSG(
        shards_[0].cache.SequenceTokens(ch.seq_id) >= ch.start + ch.count,
        "chunk past the registered slots of sequence " << ch.seq_id);
    n += ch.count;
  }
  SPINFER_CHECK(n > 0);

  SPINFER_TRACE_SCOPE_ARG("tp.mixed_step", "batch", n);

  // Embed the full panel once — the replicated stage every real TP rank
  // performs identically; computed once here since the ranks are virtual.
  act_.Reshape(h, n);
  std::vector<int64_t> positions(static_cast<size_t>(dec));
  for (int64_t i = 0; i < dec; ++i) {
    for (Shard& s : shards_) {  // lockstep slot append on every shard
      SPINFER_CHECK_MSG(s.cache.AppendToken(dec_ids[i]),
                        "KV pool exhausted mid-decode; admission must reserve "
                        "blocks for a sequence's full max length");
    }
    positions[i] = shards_[0].cache.SequenceTokens(dec_ids[i]) - 1;
    SPINFER_CHECK(positions[i] < c.max_seq);
    model_->EmbedInto(dec_last[i], positions[i], /*col=*/i, &act_);
  }
  {
    int64_t col = dec;
    for (const PrefillChunk& ch : chunks) {
      for (int64_t j = 0; j < ch.count; ++j) {
        model_->EmbedInto((*ch.prompt)[static_cast<size_t>(ch.start + j)],
                          ch.start + j, col++, &act_);
      }
    }
  }

  // Shared attention work list (identical on every shard).
  attn_items_.clear();
  for (int64_t i = 0; i < dec; ++i) {
    attn_items_.push_back({dec_ids[i], /*col=*/i, /*context=*/-1});
  }
  {
    int64_t col = dec;
    for (const PrefillChunk& ch : chunks) {
      for (int64_t j = 0; j < ch.count; ++j, ++col) {
        attn_items_.push_back({ch.seq_id, col, /*context=*/ch.start + j + 1});
      }
    }
  }

  for (int64_t layer = 0; layer < c.layers; ++layer) {
    SPINFER_TRACE_SCOPE_ARG("tp.layer", "layer", layer);
    // --- Attention block (pre-LN). LN is replicated work; each shard then
    // computes its own row band of q/k/v from the full normed panel. ---
    CopyInto(act_, &normed_);
    LayerNormColumns(&normed_);
    attn_full_.Reshape(h, n);
    for (int64_t s = 0; s < g; ++s) {
      Shard& shard = shards_[static_cast<size_t>(s)];
      ShardLayer& sl = shard.layers[static_cast<size_t>(layer)];
      MatmulInto(sl.wq, sl.enc_wq, normed_, backend, "tp.matmul.wq", &shard.q);
      MatmulInto(sl.wk, sl.enc_wk, normed_, backend, "tp.matmul.wk", &shard.kk);
      MatmulInto(sl.wv, sl.enc_wv, normed_, backend, "tp.matmul.wv", &shard.v);
      // This shard's kv rows land in its own cache; row r here is global row
      // s * kv_per + r, so the per-shard caches tile the full KV exactly.
      for (int64_t i = 0; i < dec; ++i) {
        float* krow = shard.cache.KRow(layer, dec_ids[i], positions[i]);
        float* vrow = shard.cache.VRow(layer, dec_ids[i], positions[i]);
        for (int64_t r = 0; r < kv_per; ++r) {
          krow[r] = shard.kk.at(r, i);
          vrow[r] = shard.v.at(r, i);
        }
      }
      {
        int64_t col = dec;
        for (const PrefillChunk& ch : chunks) {
          for (int64_t j = 0; j < ch.count; ++j, ++col) {
            float* krow = shard.cache.KRow(layer, ch.seq_id, ch.start + j);
            float* vrow = shard.cache.VRow(layer, ch.seq_id, ch.start + j);
            for (int64_t r = 0; r < kv_per; ++r) {
              krow[r] = shard.kk.at(r, col);
              vrow[r] = shard.v.at(r, col);
            }
          }
        }
      }
      // Heads shard with the rows: this shard's q band holds query heads
      // [s * heads/g, (s+1) * heads/g), which read exactly its kv heads.
      shard.attn_out.Reshape(h_per, n);
      {
        SPINFER_TRACE_SCOPE("tp.attention");
        PagedAttentionDecodeBatch(shard.cache, layer, c.heads / g,
                                  c.kv_head_count() / g, shard.q, attn_items_,
                                  &shard.attn_out, &attn_scratch_);
      }
      GatherRows(shard.attn_out, s * h_per, &attn_full_);
    }
    // wo needs the full attention panel: the row gather above is the
    // all-gather this schedule substitutes for Megatron's all-reduce.
    proj_full_.Reshape(h, n);
    for (int64_t s = 0; s < g; ++s) {
      Shard& shard = shards_[static_cast<size_t>(s)];
      ShardLayer& sl = shard.layers[static_cast<size_t>(layer)];
      MatmulInto(sl.wo, sl.enc_wo, attn_full_, backend, "tp.matmul.wo",
                 &shard.proj);
      GatherRows(shard.proj, s * h_per, &proj_full_);
    }
    for (int64_t i = 0; i < act_.size(); ++i) {
      act_.data()[i] += proj_full_.data()[i];  // residual
    }

    // --- FFN block (pre-LN, GELU). ---
    CopyInto(act_, &ffn_in_);
    LayerNormColumns(&ffn_in_);
    hidden_full_.Reshape(c.ffn, n);
    for (int64_t s = 0; s < g; ++s) {
      Shard& shard = shards_[static_cast<size_t>(s)];
      ShardLayer& sl = shard.layers[static_cast<size_t>(layer)];
      MatmulInto(sl.fc1, sl.enc_fc1, ffn_in_, backend, "tp.matmul.fc1",
                 &shard.hidden_act);
      GatherRows(shard.hidden_act, s * ffn_per, &hidden_full_);
    }
    for (int64_t i = 0; i < hidden_full_.size(); ++i) {
      hidden_full_.data()[i] = Gelu(hidden_full_.data()[i]);
    }
    ffn_out_full_.Reshape(h, n);
    for (int64_t s = 0; s < g; ++s) {
      Shard& shard = shards_[static_cast<size_t>(s)];
      ShardLayer& sl = shard.layers[static_cast<size_t>(layer)];
      MatmulInto(sl.fc2, sl.enc_fc2, hidden_full_, backend, "tp.matmul.fc2",
                 &shard.ffn_out);
      GatherRows(shard.ffn_out, s * h_per, &ffn_out_full_);
    }
    for (int64_t i = 0; i < act_.size(); ++i) {
      act_.data()[i] += ffn_out_full_.data()[i];
    }

    // Virtual interconnect: price the canonical Megatron schedule — two ring
    // all-reduces of the (hidden x n) FP16 activation panel per layer — even
    // though the executed collectives are arithmetic-free gathers.
    comm_us_ += LayerCommTimeUs(n, h, cfg_.shards, cfg_.device);
  }

  // Final LN + tied unembedding for producer columns (replicated LM head,
  // computed once) — the exact code path of TinyTransformer::MixedStep.
  SPINFER_TRACE_SCOPE("tp.unembed");
  LayerNormColumns(&act_);
  std::vector<int64_t> producer_cols;
  producer_cols.reserve(static_cast<size_t>(dec) + chunks.size());
  for (int64_t i = 0; i < dec; ++i) {
    producer_cols.push_back(i);
  }
  {
    int64_t col = dec;
    for (const PrefillChunk& ch : chunks) {
      col += ch.count;
      if (ch.start + ch.count == static_cast<int64_t>(ch.prompt->size())) {
        producer_cols.push_back(col - 1);
      }
    }
  }
  const int64_t producers = static_cast<int64_t>(producer_cols.size());
  const HalfMatrix& emb = model_->embedding();
  logits_.Reshape(producers, c.vocab);
  for (int64_t i = 0; i < producers; ++i) {
    const int64_t col = producer_cols[static_cast<size_t>(i)];
    for (int64_t vtok = 0; vtok < c.vocab; ++vtok) {
      float dot = 0.0f;
      for (int64_t r = 0; r < h; ++r) {
        dot += emb.at(vtok, r).ToFloat() * act_.at(r, col);
      }
      logits_.at(i, vtok) = dot;
    }
  }
  if (dec_next != nullptr) {
    dec_next->resize(static_cast<size_t>(dec));
    for (int64_t i = 0; i < dec; ++i) {
      (*dec_next)[static_cast<size_t>(i)] = GreedyToken(logits_, i);
    }
  }
  if (chunk_next != nullptr) {
    chunk_next->assign(chunks.size(), -1);
    int64_t row = dec;
    for (size_t ci = 0; ci < chunks.size(); ++ci) {
      const PrefillChunk& chunk = chunks[ci];
      if (chunk.start + chunk.count ==
          static_cast<int64_t>(chunk.prompt->size())) {
        (*chunk_next)[ci] = GreedyToken(logits_, row++);
      }
    }
  }

  ++steps_;
  step_cols_.push_back(n);
  if (kTpObs) {
    TpMetrics& m = TpMetrics::Get();
    m.steps->Add(1);
    m.comm_us->Add(static_cast<uint64_t>(
        LayerCommTimeUs(n, h, cfg_.shards, cfg_.device) *
        static_cast<double>(c.layers)));
  }
}

std::string ShardedEngine::StatsToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "shards=%d steps=%lld comm_us=%.6f",
                cfg_.shards, static_cast<long long>(steps_), comm_us_);
  return std::string(buf);
}

}  // namespace spinfer
