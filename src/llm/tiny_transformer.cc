#include "src/llm/tiny_transformer.h"

#include <algorithm>
#include <cmath>

#include "src/core/cpu_backend.h"
#include "src/llm/paged_attention.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

// Encoding geometry for the tiny weights: GroupTile = one TCTile keeps the
// padding overhead negligible at hidden sizes of 64.
TcaBmeConfig TinyFormat() {
  TcaBmeConfig cfg;
  cfg.gt_rows = 16;
  cfg.gt_cols = 16;
  return cfg;
}

// Converts a float activation (rows x cols) to FP16 into reusable storage.
void ToHalfInto(const FloatMatrix& f, HalfMatrix* h) {
  h->Reshape(f.rows(), f.cols());
  for (int64_t i = 0; i < f.size(); ++i) {
    h->data()[i] = Half(f.data()[i]);
  }
}

// Copy into reusable storage (grow-only Reshape, so warmed scratch matrices
// stop allocating; plain operator= could reallocate on every call).
void CopyInto(const FloatMatrix& src, FloatMatrix* dst) {
  dst->Reshape(src.rows(), src.cols());
  std::copy(src.data(), src.data() + src.size(), dst->data());
}

// LayerNorm over the hidden dimension. Activations are (hidden x seq):
// normalize each column.
void LayerNormColumns(FloatMatrix* a) {
  const int64_t h = a->rows();
  for (int64_t c = 0; c < a->cols(); ++c) {
    double mean = 0.0;
    for (int64_t r = 0; r < h; ++r) {
      mean += a->at(r, c);
    }
    mean /= static_cast<double>(h);
    double var = 0.0;
    for (int64_t r = 0; r < h; ++r) {
      const double d = a->at(r, c) - mean;
      var += d * d;
    }
    var /= static_cast<double>(h);
    const double inv = 1.0 / std::sqrt(var + 1e-5);
    for (int64_t r = 0; r < h; ++r) {
      a->at(r, c) = static_cast<float>((a->at(r, c) - mean) * inv);
    }
  }
}

float Gelu(float x) {
  // tanh approximation, the variant transformer stacks use.
  const float c = 0.7978845608f;  // sqrt(2/pi)
  return 0.5f * x * (1.0f + std::tanh(c * (x + 0.044715f * x * x * x)));
}

}  // namespace

int32_t GreedyToken(const FloatMatrix& logits, int64_t row) {
  int32_t best = 0;
  float best_score = logits.at(row, 0);
  for (int64_t vtok = 1; vtok < logits.cols(); ++vtok) {
    if (logits.at(row, vtok) > best_score) {
      best_score = logits.at(row, vtok);
      best = static_cast<int32_t>(vtok);
    }
  }
  return best;
}

TinyTransformer::TinyTransformer(const TinyConfig& config, uint64_t seed)
    : config_(config) {
  SPINFER_CHECK(config.hidden % config.heads == 0);
  SPINFER_CHECK(config.heads % config.kv_head_count() == 0);
  Rng rng(seed);
  const float scale = 1.0f / std::sqrt(static_cast<float>(config.hidden));
  embedding_ = HalfMatrix::Random(config.vocab, config.hidden, rng, scale);
  layers_.resize(static_cast<size_t>(config.layers));
  for (Layer& l : layers_) {
    l.wq = HalfMatrix::Random(config.hidden, config.hidden, rng, scale);
    l.wk = HalfMatrix::Random(config.kv_dim(), config.hidden, rng, scale);
    l.wv = HalfMatrix::Random(config.kv_dim(), config.hidden, rng, scale);
    l.wo = HalfMatrix::Random(config.hidden, config.hidden, rng, scale);
    l.fc1 = HalfMatrix::Random(config.ffn, config.hidden, rng, scale);
    l.fc2 = HalfMatrix::Random(config.hidden, config.ffn, rng,
                               1.0f / std::sqrt(static_cast<float>(config.ffn)));
  }
  EncodeAll();
}

void TinyTransformer::EncodeAll() {
  const TcaBmeConfig fmt = TinyFormat();
  for (Layer& l : layers_) {
    l.enc_wq = TcaBmeMatrix::Encode(l.wq, fmt);
    l.enc_wk = TcaBmeMatrix::Encode(l.wk, fmt);
    l.enc_wv = TcaBmeMatrix::Encode(l.wv, fmt);
    l.enc_wo = TcaBmeMatrix::Encode(l.wo, fmt);
    l.enc_fc1 = TcaBmeMatrix::Encode(l.fc1, fmt);
    l.enc_fc2 = TcaBmeMatrix::Encode(l.fc2, fmt);
  }
}

void TinyTransformer::PruneWeights(const Pruner& pruner, double sparsity) {
  for (Layer& l : layers_) {
    l.wq = pruner.Prune(l.wq, sparsity);
    l.wk = pruner.Prune(l.wk, sparsity);
    l.wv = pruner.Prune(l.wv, sparsity);
    l.wo = pruner.Prune(l.wo, sparsity);
    l.fc1 = pruner.Prune(l.fc1, sparsity);
    l.fc2 = pruner.Prune(l.fc2, sparsity);
  }
  EncodeAll();
}

void TinyTransformer::MatmulInto(const HalfMatrix& dense, const TcaBmeMatrix& encoded,
                                 const FloatMatrix& x, MatmulBackend backend,
                                 const char* label, FloatMatrix* out) const {
  SPINFER_TRACE_SCOPE(label);
  if (backend == MatmulBackend::kDense) {
    ToHalfInto(x, &scratch_.xh);
    *out = ReferenceGemm(dense, scratch_.xh);
    return;
  }
  // The sparse path quantizes to FP16 on panel fill — bit-identical to the
  // explicit ToHalfInto staging above, one conversion pass cheaper.
  CpuSpmmQuantInto(encoded, x, &scratch_.ws, out);
}

int64_t TinyTransformer::MatmulScratchGrowCount() const {
  return scratch_.ws.grow_count() + scratch_.attn.grow_count();
}

uint64_t TinyTransformer::MatmulScratchCapacityBytes() const {
  const MatmulScratch& s = scratch_;
  uint64_t bytes = s.ws.capacity_bytes() + s.xh.capacity() * sizeof(Half) +
                   s.scores.capacity() * sizeof(float) + s.attn.capacity_bytes() +
                   s.attn_items.capacity() * sizeof(PagedAttentionItem);
  for (const FloatMatrix* m :
       {&s.normed, &s.q, &s.kk, &s.v, &s.attn_out, &s.proj, &s.ffn_in,
        &s.hidden_act, &s.ffn_out, &s.act, &s.logits}) {
    bytes += m->capacity() * sizeof(float);
  }
  return bytes;
}

void TinyTransformer::EmbedInto(int32_t token, int64_t pos, int64_t col,
                                FloatMatrix* act) const {
  SPINFER_CHECK(token >= 0 && token < config_.vocab);
  const int64_t h = config_.hidden;
  // Embedding + a fixed sinusoidal positional signal. `pos` is the token's
  // absolute position, so a decode step embeds exactly the bits a
  // full-sequence Forward would give that position.
  for (int64_t r = 0; r < h; ++r) {
    const double p = static_cast<double>(pos) /
                     std::pow(10000.0, static_cast<double>(2 * (r / 2)) / h);
    act->at(r, col) = embedding_.at(token, r).ToFloat() +
                      0.1f * static_cast<float>((r % 2 == 0) ? std::sin(p)
                                                             : std::cos(p));
  }
}

FloatMatrix TinyTransformer::Forward(const std::vector<int32_t>& tokens,
                                     MatmulBackend backend) const {
  return ForwardImpl(tokens, backend, /*cache=*/nullptr, /*seq_id=*/-1);
}

TinyTransformer::LayerWeights TinyTransformer::layer_weights(int64_t layer) const {
  const Layer& l = layers_[static_cast<size_t>(layer)];
  return LayerWeights{&l.wq, &l.wk, &l.wv, &l.wo, &l.fc1, &l.fc2};
}

TcaBmeConfig TinyTransformer::EncodeFormat() { return TinyFormat(); }

PagedKvCacheConfig TinyTransformer::KvCacheConfig(int64_t block_tokens,
                                                  int64_t num_blocks) const {
  PagedKvCacheConfig cfg;
  cfg.layers = config_.layers;
  cfg.kv_dim = config_.kv_dim();
  cfg.block_tokens = block_tokens;
  cfg.num_blocks = num_blocks;
  return cfg;
}

FloatMatrix TinyTransformer::Prefill(const std::vector<int32_t>& tokens,
                                     MatmulBackend backend, PagedKvCache* cache,
                                     int64_t seq_id) const {
  SPINFER_CHECK(cache != nullptr);
  SPINFER_CHECK_EQ(cache->SequenceTokens(seq_id),
                   static_cast<int64_t>(tokens.size()));
  return ForwardImpl(tokens, backend, cache, seq_id);
}

FloatMatrix TinyTransformer::ForwardImpl(const std::vector<int32_t>& tokens,
                                         MatmulBackend backend,
                                         PagedKvCache* cache, int64_t seq_id) const {
  const int64_t seq = static_cast<int64_t>(tokens.size());
  SPINFER_CHECK(seq > 0 && seq <= config_.max_seq);
  const int64_t h = config_.hidden;
  const int64_t hd = config_.head_dim();
  const int64_t kvd = config_.kv_dim();
  // Grouped-query attention: query head `head` reads kv head `head / group`.
  const int64_t group = config_.heads / config_.kv_head_count();

  SPINFER_TRACE_SCOPE_ARG("tt.forward", "seq", seq);

  // Activations are (hidden x seq): one column per token, matching the
  // W(MxK) * X(KxN) convention of the kernels.
  FloatMatrix act(h, seq);
  {
    SPINFER_TRACE_SCOPE("tt.embed");
    for (int64_t t = 0; t < seq; ++t) {
      EmbedInto(tokens[t], /*pos=*/t, /*col=*/t, &act);
    }
  }

  MatmulScratch& s = scratch_;
  for (size_t layer_idx = 0; layer_idx < layers_.size(); ++layer_idx) {
    const Layer& l = layers_[layer_idx];
    SPINFER_TRACE_SCOPE_ARG("tt.layer", "layer",
                            static_cast<int64_t>(layer_idx));
    // --- Attention block (pre-LN). ---
    CopyInto(act, &s.normed);
    LayerNormColumns(&s.normed);
    MatmulInto(l.wq, l.enc_wq, s.normed, backend, "tt.matmul.wq", &s.q);
    MatmulInto(l.wk, l.enc_wk, s.normed, backend, "tt.matmul.wk", &s.kk);
    MatmulInto(l.wv, l.enc_wv, s.normed, backend, "tt.matmul.wv", &s.v);
    const FloatMatrix& q = s.q;
    const FloatMatrix& kk = s.kk;
    const FloatMatrix& v = s.v;
    if (cache != nullptr) {
      // Prefill: persist every position's K/V columns for later paged decode.
      for (int64_t t = 0; t < seq; ++t) {
        float* krow = cache->KRow(static_cast<int64_t>(layer_idx), seq_id, t);
        float* vrow = cache->VRow(static_cast<int64_t>(layer_idx), seq_id, t);
        for (int64_t r = 0; r < kvd; ++r) {
          krow[r] = kk.at(r, t);
          vrow[r] = v.at(r, t);
        }
      }
    }

    s.attn_out.Reshape(h, seq);
    FloatMatrix& attn_out = s.attn_out;
    const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(hd));
    s.scores.resize(static_cast<size_t>(seq));
    std::vector<float>& scores = s.scores;
    {
      SPINFER_TRACE_SCOPE("tt.attention");
      for (int64_t head = 0; head < config_.heads; ++head) {
        const int64_t r0 = head * hd;
        const int64_t kv0 = (head / group) * hd;  // kv-head row base
        for (int64_t t = 0; t < seq; ++t) {
          // Causal scores for query t against keys 0..t.
          float max_score = -1e30f;
          for (int64_t s = 0; s <= t; ++s) {
            float dot = 0.0f;
            for (int64_t r = 0; r < hd; ++r) {
              dot += q.at(r0 + r, t) * kk.at(kv0 + r, s);
            }
            scores[s] = dot * inv_sqrt_d;
            max_score = std::max(max_score, scores[s]);
          }
          float denom = 0.0f;
          for (int64_t s = 0; s <= t; ++s) {
            scores[s] = std::exp(scores[s] - max_score);
            denom += scores[s];
          }
          for (int64_t r = 0; r < hd; ++r) {
            float acc = 0.0f;
            for (int64_t s = 0; s <= t; ++s) {
              acc += scores[s] * v.at(kv0 + r, s);
            }
            attn_out.at(r0 + r, t) = acc / denom;
          }
        }
      }
    }
    MatmulInto(l.wo, l.enc_wo, attn_out, backend, "tt.matmul.wo", &s.proj);
    for (int64_t i = 0; i < act.size(); ++i) {
      act.data()[i] += s.proj.data()[i];  // residual
    }

    // --- FFN block (pre-LN, GELU). ---
    CopyInto(act, &s.ffn_in);
    LayerNormColumns(&s.ffn_in);
    MatmulInto(l.fc1, l.enc_fc1, s.ffn_in, backend, "tt.matmul.fc1", &s.hidden_act);
    for (int64_t i = 0; i < s.hidden_act.size(); ++i) {
      s.hidden_act.data()[i] = Gelu(s.hidden_act.data()[i]);
    }
    MatmulInto(l.fc2, l.enc_fc2, s.hidden_act, backend, "tt.matmul.fc2", &s.ffn_out);
    for (int64_t i = 0; i < act.size(); ++i) {
      act.data()[i] += s.ffn_out.data()[i];
    }
  }

  // Final LN + tied unembedding: logits[t][v] = <embedding_v, act_t>.
  SPINFER_TRACE_SCOPE("tt.unembed");
  LayerNormColumns(&act);
  FloatMatrix logits(seq, config_.vocab);
  for (int64_t t = 0; t < seq; ++t) {
    for (int64_t vtok = 0; vtok < config_.vocab; ++vtok) {
      float dot = 0.0f;
      for (int64_t r = 0; r < h; ++r) {
        dot += embedding_.at(vtok, r).ToFloat() * act.at(r, t);
      }
      logits.at(t, vtok) = dot;
    }
  }
  return logits;
}

void TinyTransformer::DecodeStep(const std::vector<int64_t>& seq_ids,
                                 const std::vector<int32_t>& last_tokens,
                                 MatmulBackend backend, PagedKvCache* cache,
                                 std::vector<int32_t>* next_tokens,
                                 FloatMatrix* logits_out) const {
  SPINFER_CHECK(!seq_ids.empty());
  // A decode-only MixedStep: identical code path, so the original contract
  // (including bit-identity and the warmed zero-allocation property of the
  // matmul scratch) is the general path's, not a parallel implementation's.
  static const std::vector<PrefillChunk> kNoChunks;
  MixedStep(seq_ids, last_tokens, kNoChunks, backend, cache, next_tokens,
            /*chunk_next=*/nullptr, logits_out);
}

void TinyTransformer::MixedStep(const std::vector<int64_t>& dec_ids,
                                const std::vector<int32_t>& dec_last,
                                const std::vector<PrefillChunk>& chunks,
                                MatmulBackend backend, PagedKvCache* cache,
                                std::vector<int32_t>* dec_next,
                                std::vector<int32_t>* chunk_next,
                                FloatMatrix* dec_logits_out) const {
  const int64_t dec = static_cast<int64_t>(dec_ids.size());
  SPINFER_CHECK_EQ(static_cast<int64_t>(dec_last.size()), dec);
  SPINFER_CHECK(cache != nullptr);
  SPINFER_CHECK(dec_next != nullptr || dec == 0);
  SPINFER_CHECK(chunk_next != nullptr || chunks.empty());
  const int64_t h = config_.hidden;
  const int64_t kvd = config_.kv_dim();

  // Panel width: one column per decode sequence plus one per chunk token.
  int64_t n = dec;
  for (const PrefillChunk& c : chunks) {
    SPINFER_CHECK(c.prompt != nullptr && c.count > 0 && c.start >= 0);
    const int64_t len = static_cast<int64_t>(c.prompt->size());
    SPINFER_CHECK(c.start + c.count <= len && len <= config_.max_seq);
    SPINFER_CHECK_MSG(cache->SequenceTokens(c.seq_id) >= c.start + c.count,
                      "chunk past the registered slots of sequence " << c.seq_id);
    n += c.count;
  }
  SPINFER_CHECK(n > 0);

  SPINFER_TRACE_SCOPE_ARG("tt.decode", "batch", n);

  MatmulScratch& s = scratch_;
  // Append each decode sequence's new slot, then embed its last token at its
  // absolute position. Admission reserved the blocks, so exhaustion here is
  // a scheduler bug, not a runtime condition. Chunk columns embed prompt
  // tokens at their absolute positions — the bits a full-sequence Forward
  // would give those positions.
  s.act.Reshape(h, n);
  std::vector<int64_t> positions(static_cast<size_t>(dec));
  for (int64_t i = 0; i < dec; ++i) {
    SPINFER_CHECK_MSG(cache->AppendToken(dec_ids[i]),
                      "KV pool exhausted mid-decode; admission must reserve "
                      "blocks for a sequence's full max length");
    positions[i] = cache->SequenceTokens(dec_ids[i]) - 1;
    SPINFER_CHECK(positions[i] < config_.max_seq);
    EmbedInto(dec_last[i], positions[i], /*col=*/i, &s.act);
  }
  {
    int64_t col = dec;
    for (const PrefillChunk& c : chunks) {
      for (int64_t j = 0; j < c.count; ++j) {
        EmbedInto((*c.prompt)[static_cast<size_t>(c.start + j)], c.start + j,
                  col++, &s.act);
      }
    }
  }

  for (size_t layer_idx = 0; layer_idx < layers_.size(); ++layer_idx) {
    const Layer& l = layers_[layer_idx];
    SPINFER_TRACE_SCOPE_ARG("tt.layer", "layer",
                            static_cast<int64_t>(layer_idx));
    // --- Attention block (pre-LN). One SpMM per weight with N columns. ---
    CopyInto(s.act, &s.normed);
    LayerNormColumns(&s.normed);
    MatmulInto(l.wq, l.enc_wq, s.normed, backend, "tt.matmul.wq", &s.q);
    MatmulInto(l.wk, l.enc_wk, s.normed, backend, "tt.matmul.wk", &s.kk);
    MatmulInto(l.wv, l.enc_wv, s.normed, backend, "tt.matmul.wv", &s.v);
    for (int64_t i = 0; i < dec; ++i) {
      float* krow = cache->KRow(static_cast<int64_t>(layer_idx), dec_ids[i],
                                positions[i]);
      float* vrow = cache->VRow(static_cast<int64_t>(layer_idx), dec_ids[i],
                                positions[i]);
      for (int64_t r = 0; r < kvd; ++r) {
        krow[r] = s.kk.at(r, i);
        vrow[r] = s.v.at(r, i);
      }
    }
    {
      int64_t col = dec;
      for (const PrefillChunk& c : chunks) {
        for (int64_t j = 0; j < c.count; ++j, ++col) {
          float* krow = cache->KRow(static_cast<int64_t>(layer_idx), c.seq_id,
                                    c.start + j);
          float* vrow = cache->VRow(static_cast<int64_t>(layer_idx), c.seq_id,
                                    c.start + j);
          for (int64_t r = 0; r < kvd; ++r) {
            krow[r] = s.kk.at(r, col);
            vrow[r] = s.v.at(r, col);
          }
        }
      }
    }

    s.attn_out.Reshape(h, n);
    {
      SPINFER_TRACE_SCOPE("tt.attention");
      // One fused batched call covers every column: decode columns attend
      // their full cached context, chunk columns attend the causal horizon
      // [0, pos] even though later slots of their chunk are already written
      // above.
      s.attn_items.clear();
      for (int64_t i = 0; i < dec; ++i) {
        s.attn_items.push_back({dec_ids[i], /*col=*/i, /*context=*/-1});
      }
      int64_t col = dec;
      for (const PrefillChunk& c : chunks) {
        for (int64_t j = 0; j < c.count; ++j, ++col) {
          s.attn_items.push_back({c.seq_id, col, /*context=*/c.start + j + 1});
        }
      }
      PagedAttentionDecodeBatch(*cache, static_cast<int64_t>(layer_idx),
                                config_.heads, config_.kv_head_count(), s.q,
                                s.attn_items, &s.attn_out, &s.attn);
    }
    MatmulInto(l.wo, l.enc_wo, s.attn_out, backend, "tt.matmul.wo", &s.proj);
    for (int64_t i = 0; i < s.act.size(); ++i) {
      s.act.data()[i] += s.proj.data()[i];  // residual
    }

    // --- FFN block (pre-LN, GELU). ---
    CopyInto(s.act, &s.ffn_in);
    LayerNormColumns(&s.ffn_in);
    MatmulInto(l.fc1, l.enc_fc1, s.ffn_in, backend, "tt.matmul.fc1", &s.hidden_act);
    for (int64_t i = 0; i < s.hidden_act.size(); ++i) {
      s.hidden_act.data()[i] = Gelu(s.hidden_act.data()[i]);
    }
    MatmulInto(l.fc2, l.enc_fc2, s.hidden_act, backend, "tt.matmul.fc2", &s.ffn_out);
    for (int64_t i = 0; i < s.act.size(); ++i) {
      s.act.data()[i] += s.ffn_out.data()[i];
    }
  }

  // Final LN + tied unembedding — but only for producer columns: every
  // decode column, and the final column of each chunk that completes its
  // prompt (whose logits seed generation). Mid-prompt columns exist to
  // deposit K/V; their logits are never consumed.
  SPINFER_TRACE_SCOPE("tt.unembed");
  LayerNormColumns(&s.act);
  std::vector<int64_t> producer_cols;
  producer_cols.reserve(static_cast<size_t>(dec) + chunks.size());
  for (int64_t i = 0; i < dec; ++i) {
    producer_cols.push_back(i);
  }
  {
    int64_t col = dec;
    for (const PrefillChunk& c : chunks) {
      col += c.count;
      if (c.start + c.count == static_cast<int64_t>(c.prompt->size())) {
        producer_cols.push_back(col - 1);
      }
    }
  }
  const int64_t producers = static_cast<int64_t>(producer_cols.size());
  s.logits.Reshape(producers, config_.vocab);
  for (int64_t i = 0; i < producers; ++i) {
    const int64_t col = producer_cols[static_cast<size_t>(i)];
    for (int64_t vtok = 0; vtok < config_.vocab; ++vtok) {
      float dot = 0.0f;
      for (int64_t r = 0; r < h; ++r) {
        dot += embedding_.at(vtok, r).ToFloat() * s.act.at(r, col);
      }
      s.logits.at(i, vtok) = dot;
    }
  }
  if (dec_next != nullptr) {
    dec_next->resize(static_cast<size_t>(dec));
    for (int64_t i = 0; i < dec; ++i) {
      (*dec_next)[static_cast<size_t>(i)] = GreedyToken(s.logits, i);
    }
  }
  if (chunk_next != nullptr) {
    chunk_next->assign(chunks.size(), -1);
    int64_t row = dec;  // completing chunks' rows follow the decode rows
    for (size_t c = 0; c < chunks.size(); ++c) {
      const PrefillChunk& chunk = chunks[c];
      if (chunk.start + chunk.count ==
          static_cast<int64_t>(chunk.prompt->size())) {
        (*chunk_next)[c] = GreedyToken(s.logits, row++);
      }
    }
  }
  if (dec_logits_out != nullptr) {
    // Decode rows lead the logits panel, so rows [0, dec) are contiguous.
    dec_logits_out->Reshape(dec, config_.vocab);
    std::copy(s.logits.data(), s.logits.data() + dec * config_.vocab,
              dec_logits_out->data());
  }
}

std::vector<int32_t> TinyTransformer::Generate(const std::vector<int32_t>& prompt,
                                               int steps, MatmulBackend backend) const {
  std::vector<int32_t> tokens = prompt;
  for (int i = 0; i < steps && static_cast<int64_t>(tokens.size()) < config_.max_seq;
       ++i) {
    SPINFER_TRACE_SCOPE_ARG("tt.decode_step", "step", i);
    const FloatMatrix logits = Forward(tokens, backend);
    tokens.push_back(GreedyToken(logits, logits.rows() - 1));
  }
  return tokens;
}

uint64_t TinyTransformer::DenseWeightBytes() const {
  uint64_t total = 0;
  for (const Layer& l : layers_) {
    total += 2ull * (l.wq.size() + l.wk.size() + l.wv.size() + l.wo.size() +
                     l.fc1.size() + l.fc2.size());
  }
  return total;
}

uint64_t TinyTransformer::EncodedWeightBytes() const {
  uint64_t total = 0;
  for (const Layer& l : layers_) {
    total += l.enc_wq.StorageBytes() + l.enc_wk.StorageBytes() +
             l.enc_wv.StorageBytes() + l.enc_wo.StorageBytes() +
             l.enc_fc1.StorageBytes() + l.enc_fc2.StorageBytes();
  }
  return total;
}

double TinyTransformer::WeightSparsity() const {
  int64_t nnz = 0;
  int64_t total = 0;
  for (const Layer& l : layers_) {
    for (const HalfMatrix* w : {&l.wq, &l.wk, &l.wv, &l.wo, &l.fc1, &l.fc2}) {
      nnz += w->CountNonZeros();
      total += w->size();
    }
  }
  return 1.0 - static_cast<double>(nnz) / static_cast<double>(total);
}

}  // namespace spinfer
