#include "src/llm/tiny_transformer.h"

#include <algorithm>
#include <cmath>

#include "src/core/cpu_backend.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

// Encoding geometry for the tiny weights: GroupTile = one TCTile keeps the
// padding overhead negligible at hidden sizes of 64.
TcaBmeConfig TinyFormat() {
  TcaBmeConfig cfg;
  cfg.gt_rows = 16;
  cfg.gt_cols = 16;
  return cfg;
}

// Converts a float activation (rows x cols) to FP16 into reusable storage.
void ToHalfInto(const FloatMatrix& f, HalfMatrix* h) {
  h->Reshape(f.rows(), f.cols());
  for (int64_t i = 0; i < f.size(); ++i) {
    h->data()[i] = Half(f.data()[i]);
  }
}

// LayerNorm over the hidden dimension. Activations are (hidden x seq):
// normalize each column.
void LayerNormColumns(FloatMatrix* a) {
  const int64_t h = a->rows();
  for (int64_t c = 0; c < a->cols(); ++c) {
    double mean = 0.0;
    for (int64_t r = 0; r < h; ++r) {
      mean += a->at(r, c);
    }
    mean /= static_cast<double>(h);
    double var = 0.0;
    for (int64_t r = 0; r < h; ++r) {
      const double d = a->at(r, c) - mean;
      var += d * d;
    }
    var /= static_cast<double>(h);
    const double inv = 1.0 / std::sqrt(var + 1e-5);
    for (int64_t r = 0; r < h; ++r) {
      a->at(r, c) = static_cast<float>((a->at(r, c) - mean) * inv);
    }
  }
}

float Gelu(float x) {
  // tanh approximation, the variant transformer stacks use.
  const float c = 0.7978845608f;  // sqrt(2/pi)
  return 0.5f * x * (1.0f + std::tanh(c * (x + 0.044715f * x * x * x)));
}

}  // namespace

TinyTransformer::TinyTransformer(const TinyConfig& config, uint64_t seed)
    : config_(config) {
  SPINFER_CHECK(config.hidden % config.heads == 0);
  Rng rng(seed);
  const float scale = 1.0f / std::sqrt(static_cast<float>(config.hidden));
  embedding_ = HalfMatrix::Random(config.vocab, config.hidden, rng, scale);
  layers_.resize(static_cast<size_t>(config.layers));
  for (Layer& l : layers_) {
    l.wq = HalfMatrix::Random(config.hidden, config.hidden, rng, scale);
    l.wk = HalfMatrix::Random(config.hidden, config.hidden, rng, scale);
    l.wv = HalfMatrix::Random(config.hidden, config.hidden, rng, scale);
    l.wo = HalfMatrix::Random(config.hidden, config.hidden, rng, scale);
    l.fc1 = HalfMatrix::Random(config.ffn, config.hidden, rng, scale);
    l.fc2 = HalfMatrix::Random(config.hidden, config.ffn, rng,
                               1.0f / std::sqrt(static_cast<float>(config.ffn)));
  }
  EncodeAll();
}

void TinyTransformer::EncodeAll() {
  const TcaBmeConfig fmt = TinyFormat();
  for (Layer& l : layers_) {
    l.enc_wq = TcaBmeMatrix::Encode(l.wq, fmt);
    l.enc_wk = TcaBmeMatrix::Encode(l.wk, fmt);
    l.enc_wv = TcaBmeMatrix::Encode(l.wv, fmt);
    l.enc_wo = TcaBmeMatrix::Encode(l.wo, fmt);
    l.enc_fc1 = TcaBmeMatrix::Encode(l.fc1, fmt);
    l.enc_fc2 = TcaBmeMatrix::Encode(l.fc2, fmt);
  }
}

void TinyTransformer::PruneWeights(const Pruner& pruner, double sparsity) {
  for (Layer& l : layers_) {
    l.wq = pruner.Prune(l.wq, sparsity);
    l.wk = pruner.Prune(l.wk, sparsity);
    l.wv = pruner.Prune(l.wv, sparsity);
    l.wo = pruner.Prune(l.wo, sparsity);
    l.fc1 = pruner.Prune(l.fc1, sparsity);
    l.fc2 = pruner.Prune(l.fc2, sparsity);
  }
  EncodeAll();
}

void TinyTransformer::MatmulInto(const HalfMatrix& dense, const TcaBmeMatrix& encoded,
                                 const HalfMatrix& x, MatmulBackend backend,
                                 const char* label, FloatMatrix* out) const {
  SPINFER_TRACE_SCOPE(label);
  if (backend == MatmulBackend::kDense) {
    *out = ReferenceGemm(dense, x);
    return;
  }
  CpuSpmmInto(encoded, x, &scratch_.ws, out);
}

int64_t TinyTransformer::MatmulScratchGrowCount() const {
  return scratch_.ws.grow_count();
}

uint64_t TinyTransformer::MatmulScratchCapacityBytes() const {
  const MatmulScratch& s = scratch_;
  uint64_t bytes = s.ws.capacity_bytes() + s.xh.capacity() * sizeof(Half) +
                   s.scores.capacity() * sizeof(float);
  for (const FloatMatrix* m : {&s.normed, &s.q, &s.kk, &s.v, &s.attn_out,
                               &s.proj, &s.ffn_in, &s.hidden_act, &s.ffn_out}) {
    bytes += m->capacity() * sizeof(float);
  }
  return bytes;
}

FloatMatrix TinyTransformer::Forward(const std::vector<int32_t>& tokens,
                                     MatmulBackend backend) const {
  const int64_t seq = static_cast<int64_t>(tokens.size());
  SPINFER_CHECK(seq > 0 && seq <= config_.max_seq);
  const int64_t h = config_.hidden;
  const int64_t hd = config_.head_dim();

  SPINFER_TRACE_SCOPE_ARG("tt.forward", "seq", seq);

  // Activations are (hidden x seq): one column per token, matching the
  // W(MxK) * X(KxN) convention of the kernels.
  FloatMatrix act(h, seq);
  {
    SPINFER_TRACE_SCOPE("tt.embed");
    for (int64_t t = 0; t < seq; ++t) {
      SPINFER_CHECK(tokens[t] >= 0 && tokens[t] < config_.vocab);
      // Embedding + a fixed sinusoidal positional signal.
      for (int64_t r = 0; r < h; ++r) {
        const double pos = static_cast<double>(t) /
                           std::pow(10000.0, static_cast<double>(2 * (r / 2)) / h);
        act.at(r, t) = embedding_.at(tokens[t], r).ToFloat() +
                       0.1f * static_cast<float>((r % 2 == 0) ? std::sin(pos)
                                                              : std::cos(pos));
      }
    }
  }

  MatmulScratch& s = scratch_;
  for (size_t layer_idx = 0; layer_idx < layers_.size(); ++layer_idx) {
    const Layer& l = layers_[layer_idx];
    SPINFER_TRACE_SCOPE_ARG("tt.layer", "layer",
                            static_cast<int64_t>(layer_idx));
    // --- Attention block (pre-LN). ---
    s.normed = act;
    LayerNormColumns(&s.normed);
    ToHalfInto(s.normed, &s.xh);
    MatmulInto(l.wq, l.enc_wq, s.xh, backend, "tt.matmul.wq", &s.q);
    MatmulInto(l.wk, l.enc_wk, s.xh, backend, "tt.matmul.wk", &s.kk);
    MatmulInto(l.wv, l.enc_wv, s.xh, backend, "tt.matmul.wv", &s.v);
    const FloatMatrix& q = s.q;
    const FloatMatrix& kk = s.kk;
    const FloatMatrix& v = s.v;

    s.attn_out.Reshape(h, seq);
    FloatMatrix& attn_out = s.attn_out;
    const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(hd));
    s.scores.resize(static_cast<size_t>(seq));
    std::vector<float>& scores = s.scores;
    {
      SPINFER_TRACE_SCOPE("tt.attention");
      for (int64_t head = 0; head < config_.heads; ++head) {
        const int64_t r0 = head * hd;
        for (int64_t t = 0; t < seq; ++t) {
          // Causal scores for query t against keys 0..t.
          float max_score = -1e30f;
          for (int64_t s = 0; s <= t; ++s) {
            float dot = 0.0f;
            for (int64_t r = 0; r < hd; ++r) {
              dot += q.at(r0 + r, t) * kk.at(r0 + r, s);
            }
            scores[s] = dot * inv_sqrt_d;
            max_score = std::max(max_score, scores[s]);
          }
          float denom = 0.0f;
          for (int64_t s = 0; s <= t; ++s) {
            scores[s] = std::exp(scores[s] - max_score);
            denom += scores[s];
          }
          for (int64_t r = 0; r < hd; ++r) {
            float acc = 0.0f;
            for (int64_t s = 0; s <= t; ++s) {
              acc += scores[s] * v.at(r0 + r, s);
            }
            attn_out.at(r0 + r, t) = acc / denom;
          }
        }
      }
    }
    ToHalfInto(attn_out, &s.xh);
    MatmulInto(l.wo, l.enc_wo, s.xh, backend, "tt.matmul.wo", &s.proj);
    for (int64_t i = 0; i < act.size(); ++i) {
      act.data()[i] += s.proj.data()[i];  // residual
    }

    // --- FFN block (pre-LN, GELU). ---
    s.ffn_in = act;
    LayerNormColumns(&s.ffn_in);
    ToHalfInto(s.ffn_in, &s.xh);
    MatmulInto(l.fc1, l.enc_fc1, s.xh, backend, "tt.matmul.fc1", &s.hidden_act);
    for (int64_t i = 0; i < s.hidden_act.size(); ++i) {
      s.hidden_act.data()[i] = Gelu(s.hidden_act.data()[i]);
    }
    ToHalfInto(s.hidden_act, &s.xh);
    MatmulInto(l.fc2, l.enc_fc2, s.xh, backend, "tt.matmul.fc2", &s.ffn_out);
    for (int64_t i = 0; i < act.size(); ++i) {
      act.data()[i] += s.ffn_out.data()[i];
    }
  }

  // Final LN + tied unembedding: logits[t][v] = <embedding_v, act_t>.
  SPINFER_TRACE_SCOPE("tt.unembed");
  LayerNormColumns(&act);
  FloatMatrix logits(seq, config_.vocab);
  for (int64_t t = 0; t < seq; ++t) {
    for (int64_t vtok = 0; vtok < config_.vocab; ++vtok) {
      float dot = 0.0f;
      for (int64_t r = 0; r < h; ++r) {
        dot += embedding_.at(vtok, r).ToFloat() * act.at(r, t);
      }
      logits.at(t, vtok) = dot;
    }
  }
  return logits;
}

std::vector<int32_t> TinyTransformer::Generate(const std::vector<int32_t>& prompt,
                                               int steps, MatmulBackend backend) const {
  std::vector<int32_t> tokens = prompt;
  for (int i = 0; i < steps && static_cast<int64_t>(tokens.size()) < config_.max_seq;
       ++i) {
    SPINFER_TRACE_SCOPE_ARG("tt.decode_step", "step", i);
    const FloatMatrix logits = Forward(tokens, backend);
    const int64_t last = logits.rows() - 1;
    int32_t best = 0;
    float best_score = logits.at(last, 0);
    for (int64_t vtok = 1; vtok < config_.vocab; ++vtok) {
      if (logits.at(last, vtok) > best_score) {
        best_score = logits.at(last, vtok);
        best = static_cast<int32_t>(vtok);
      }
    }
    tokens.push_back(best);
  }
  return tokens;
}

uint64_t TinyTransformer::DenseWeightBytes() const {
  uint64_t total = 0;
  for (const Layer& l : layers_) {
    total += 2ull * (l.wq.size() + l.wk.size() + l.wv.size() + l.wo.size() +
                     l.fc1.size() + l.fc2.size());
  }
  return total;
}

uint64_t TinyTransformer::EncodedWeightBytes() const {
  uint64_t total = 0;
  for (const Layer& l : layers_) {
    total += l.enc_wq.StorageBytes() + l.enc_wk.StorageBytes() +
             l.enc_wv.StorageBytes() + l.enc_wo.StorageBytes() +
             l.enc_fc1.StorageBytes() + l.enc_fc2.StorageBytes();
  }
  return total;
}

double TinyTransformer::WeightSparsity() const {
  int64_t nnz = 0;
  int64_t total = 0;
  for (const Layer& l : layers_) {
    for (const HalfMatrix* w : {&l.wq, &l.wk, &l.wv, &l.wo, &l.fc1, &l.fc2}) {
      nnz += w->CountNonZeros();
      total += w->size();
    }
  }
  return 1.0 - static_cast<double>(nnz) / static_cast<double>(total);
}

}  // namespace spinfer
