// Executing disaggregated prefill/decode serving cluster — the running
// counterpart of the analytic PlanDisaggregation sizing tool (paper §6;
// Splitwise / DistServe / Mooncake architecture).
//
// Topology: a pool of prefill instances (each a full-model runner with its
// own PagedKvCache) and a pool of decode instances (each a continuous-
// batching loop over its own PagedKvCache), joined by per-request KV-block
// handoff: when a prompt finishes prefilling, its cache pages cross the
// virtual fabric (priced at transfer_bw_gbs over the cost model's
// KvCacheBytes) and are migrated — refcount-correct, bit-exact — into the
// admitting decode instance's pool via MigrateKvSequence.
//
// Time model, as everywhere in this repo's serving stack: execution is real
// (real tokens through TinyTransformer::Prefill / DecodeStep, real paged KV
// pools), the clock is virtual, priced expression-for-expression like the
// planner:
//   * one prompt at a time per prefill instance, PrefillTimeUs(prefill_cost,
//     1, len); router = earliest-free instance, ties to the lowest index;
//   * handoff delay KvCacheBytes(model, 1, len, 1) / (transfer_bw_gbs * 1e6)
//     milliseconds;
//   * decode iterations DecodeStepTimeUs(decode_cost, batch, mean_context)
//     with ServingEngine's context expression; router = least-loaded
//     instance, ties to the lowest index; growth-reserve admission (a
//     request is admitted only when the pool covers its blocks now plus
//     every resident sequence's growth to prompt + max_new, so decode can
//     never run out of blocks mid-flight).
// The first token comes from the prefill logits, so TTFT = queueing +
// prefill + transfer — with an idle prefill pool, exactly the planner's
// prefill_ms + kv_transfer_ms. The cross-check tests match TTFT, tpot, and
// decode throughput against PlanDisaggregation to <= 1e-9 relative.
//
// Degenerate configs reject gracefully: zero instances, empty prompts, or
// prompts that could never fit a pool finish as kRejected — no UB, no CHECK.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/llm/engine.h"
#include "src/llm/serving_engine.h"
#include "src/llm/tiny_transformer.h"

namespace spinfer {

struct DisaggClusterConfig {
  int64_t prefill_instances = 1;
  int64_t decode_instances = 1;
  // Continuous-batching cap per decode instance.
  int64_t max_decode_batch = 8;
  // Per-instance KV pool geometry (both pools).
  int64_t kv_block_tokens = 16;
  int64_t kv_num_blocks = 64;
  MatmulBackend backend = MatmulBackend::kTcaBmeCpu;
  // Virtual-clock pricing for each pool (PlanDisaggregation's prefill_cfg /
  // decode_cfg; .model also prices the KV handoff bytes).
  EngineConfig prefill_cost;
  EngineConfig decode_cost;
  // Prefill->decode fabric, GB/s.
  double transfer_bw_gbs = 25.0;
};

// One priced decode iteration of one instance; the analytic cross-check
// matches the sample whose mean_context equals the planner's steady-state
// mid-context (input_len + output_len / 2).
struct DisaggIterationSample {
  int64_t batch = 0;
  int64_t mean_context = 0;
  double cost_us = 0.0;
};

struct DisaggClusterReport {
  int64_t arrived = 0;
  int64_t rejected = 0;
  int64_t completed = 0;
  int64_t prefills = 0;
  int64_t migrations = 0;
  int64_t decode_iterations = 0;
  int64_t peak_decode_batch = 0;
  double sim_time_s = 0.0;
  LatencySummary ttft;     // over completed requests
  LatencySummary latency;

  // Deterministic rendering; byte-stable across reruns and thread counts.
  std::string ToString() const;
};

class DisaggCluster {
 public:
  // `model` is borrowed and must outlive the cluster. Every instance's pool
  // is allocated here.
  DisaggCluster(const TinyTransformer* model, const DisaggClusterConfig& cfg);

  // Enqueues a request; returns its dense id. `arrival_s` is virtual.
  int64_t Submit(std::vector<int32_t> prompt, int64_t max_new_tokens,
                 double arrival_s = 0.0);

  // Runs prefill scheduling, KV handoff, and every decode instance's loop to
  // completion. Single-shot.
  DisaggClusterReport Run();

  // Post-Run inspection; results() is indexed by request id.
  const std::vector<RequestRecord>& results() const { return records_; }
  const std::vector<DisaggIterationSample>& decode_samples(
      int64_t instance) const;

 private:
  const TinyTransformer* model_;
  DisaggClusterConfig cfg_;
  std::vector<RequestRecord> records_;
  std::vector<std::vector<DisaggIterationSample>> samples_;  // per decode inst
  bool ran_ = false;
};

}  // namespace spinfer
