#include "src/llm/serving_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

// Cached global instruments (find-or-create once; recording is lock-free).
struct ServingMetrics {
  obs::Counter* arrived;
  obs::Counter* rejected;
  obs::Counter* completed;
  obs::Counter* tokens;
  obs::Counter* iterations;
  obs::Gauge* queue_depth;
  obs::Gauge* batch_size;
  obs::Gauge* kv_used_blocks;
  obs::Gauge* kv_utilization;
  obs::Histogram* latency_ms;

  static ServingMetrics& Get() {
    static ServingMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      ServingMetrics s;
      s.arrived = reg.GetCounter("srv.requests_arrived");
      s.rejected = reg.GetCounter("srv.requests_rejected");
      s.completed = reg.GetCounter("srv.requests_completed");
      s.tokens = reg.GetCounter("srv.tokens_generated");
      s.iterations = reg.GetCounter("srv.iterations");
      s.queue_depth = reg.GetGauge("srv.queue_depth");
      s.batch_size = reg.GetGauge("srv.batch_size");
      s.kv_used_blocks = reg.GetGauge("srv.kv_used_blocks");
      s.kv_utilization = reg.GetGauge("srv.kv_utilization");
      s.latency_ms = reg.GetHistogram(
          "srv.request_latency_ms",
          obs::Histogram::ExponentialBuckets(0.1, 2.0, 24));
      return s;
    }();
    return m;
  }
};

}  // namespace

ModelConfig ModelConfigFor(const TinyConfig& cfg) {
  ModelConfig m;
  m.name = "tiny";
  m.hidden = cfg.hidden;
  m.layers = cfg.layers;
  m.heads = cfg.heads;
  m.kv_heads = cfg.heads;
  m.ffn_hidden = cfg.ffn;
  m.vocab = cfg.vocab;
  return m;
}

const char* FinishReasonName(FinishReason r) {
  switch (r) {
    case FinishReason::kNone:
      return "none";
    case FinishReason::kEos:
      return "eos";
    case FinishReason::kMaxTokens:
      return "max_tokens";
    case FinishReason::kRejected:
      return "rejected";
  }
  return "unknown";
}

std::string ExecServingReport::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "arrived=%lld rejected=%lld completed=%lld tokens=%lld iters=%lld "
      "peak_batch=%lld peak_kv_blocks=%lld sim_s=%.6f tps=%.6f "
      "mean_batch=%.6f lat_ms{mean=%.6f p50=%.6f p95=%.6f p99=%.6f}",
      static_cast<long long>(arrived), static_cast<long long>(rejected),
      static_cast<long long>(completed), static_cast<long long>(tokens_generated),
      static_cast<long long>(iterations), static_cast<long long>(peak_batch),
      static_cast<long long>(peak_kv_blocks), sim_time_s, throughput_tps,
      mean_batch, latency.mean_ms, latency.p50_ms, latency.p95_ms,
      latency.p99_ms);
  return std::string(buf);
}

ServingEngine::ServingEngine(const TinyTransformer* model,
                             const ServingEngineConfig& cfg)
    : model_(model),
      cfg_(cfg),
      cache_(model->KvCacheConfig(cfg.kv_block_tokens, cfg.kv_num_blocks)) {
  SPINFER_CHECK(model != nullptr);
  SPINFER_CHECK(cfg.max_batch > 0);
}

int64_t ServingEngine::Submit(std::vector<int32_t> prompt, int64_t max_new_tokens,
                              double arrival_s) {
  std::lock_guard<std::mutex> lock(submit_mu_);
  SPINFER_CHECK_MSG(!ran_, "Submit after Run");
  RequestRecord r;
  r.id = static_cast<int64_t>(records_.size());
  r.prompt = std::move(prompt);
  r.max_new_tokens = max_new_tokens;
  r.arrival_s = arrival_s;
  records_.push_back(std::move(r));
  ServingMetrics::Get().arrived->Increment();
  return records_.back().id;
}

void ServingEngine::InjectPoissonArrivals(const PoissonTraffic& t) {
  SPINFER_CHECK(t.arrival_rate_rps > 0.0 && t.horizon_s > 0.0);
  SPINFER_CHECK(t.prompt_len_min >= 1 && t.prompt_len_max >= t.prompt_len_min);
  SPINFER_CHECK(t.max_new_min >= 1 && t.max_new_max >= t.max_new_min);
  // Arrival times replay the analytic simulator's exact draw sequence;
  // content comes from a second stream so it cannot perturb the process.
  Rng time_rng(t.seed);
  Rng content_rng(t.seed ^ 0x9e3779b97f4a7c15ull);
  const int64_t vocab = model_->config().vocab;
  double now = 0.0;
  while (true) {
    now += -std::log(1.0 - time_rng.Uniform()) / t.arrival_rate_rps;
    if (now >= t.horizon_s) {
      break;
    }
    const int64_t prompt_len =
        t.prompt_len_min +
        static_cast<int64_t>(content_rng.Below(
            static_cast<uint64_t>(t.prompt_len_max - t.prompt_len_min + 1)));
    const int64_t max_new =
        t.max_new_min + static_cast<int64_t>(content_rng.Below(
                            static_cast<uint64_t>(t.max_new_max - t.max_new_min + 1)));
    std::vector<int32_t> prompt(static_cast<size_t>(prompt_len));
    for (int32_t& tok : prompt) {
      tok = static_cast<int32_t>(content_rng.Below(static_cast<uint64_t>(vocab)));
    }
    Submit(std::move(prompt), max_new, now);
  }
}

bool ServingEngine::IsServable(const RequestRecord& r) const {
  const int64_t prompt_len = static_cast<int64_t>(r.prompt.size());
  if (prompt_len < 1 || r.max_new_tokens < 1) {
    return false;
  }
  if (prompt_len + r.max_new_tokens > model_->config().max_seq) {
    return false;
  }
  return cache_.BlocksForTokens(prompt_len + r.max_new_tokens) <=
         cache_.total_blocks();
}

ExecServingReport ServingEngine::Run() {
  SPINFER_CHECK_MSG(!ran_, "ServingEngine::Run is single-shot");
  ran_ = true;
  ServingMetrics& metrics = ServingMetrics::Get();

  ExecServingReport report;
  report.arrived = static_cast<int64_t>(records_.size());

  // FIFO queue of request ids by (arrival, submission order). stable_sort
  // keeps equal-arrival requests in id order.
  std::vector<int64_t> order(records_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int64_t>(i);
  }
  std::stable_sort(order.begin(), order.end(), [this](int64_t a, int64_t b) {
    return records_[static_cast<size_t>(a)].arrival_s <
           records_[static_cast<size_t>(b)].arrival_s;
  });
  std::deque<int64_t> queue(order.begin(), order.end());

  std::vector<Active> running;
  std::vector<int64_t> dec_ids;
  std::vector<int32_t> dec_last;
  std::vector<int32_t> dec_next;
  std::vector<double> latencies_ms;
  double now_s = 0.0;
  double batch_time_integral = 0.0;

  while (!queue.empty() || !running.empty()) {
    // --- Admission: strict FIFO; the head blocks until it fits. ------------
    int64_t admitted = 0;
    int64_t admitted_prompt_sum = 0;
    const size_t running_before = running.size();
    while (!queue.empty()) {
      RequestRecord& r = records_[static_cast<size_t>(queue.front())];
      if (r.arrival_s > now_s) {
        break;
      }
      if (!IsServable(r)) {
        queue.pop_front();
        r.reason = FinishReason::kRejected;
        r.finish_s = now_s;
        ++report.rejected;
        metrics.rejected->Increment();
        continue;
      }
      if (static_cast<int64_t>(running.size()) >= cfg_.max_batch) {
        break;
      }
      const int64_t prompt_len = static_cast<int64_t>(r.prompt.size());
      // Admit only if the pool can commit the request's full worst-case
      // footprint. A sequence never allocates beyond its footprint, so the
      // commitment cap means AppendToken can never fail mid-decode and no
      // preemption machinery is needed.
      const int64_t footprint =
          cache_.BlocksForTokens(prompt_len + r.max_new_tokens);
      if (committed_blocks_ + footprint > cache_.total_blocks()) {
        break;
      }
      queue.pop_front();
      committed_blocks_ += footprint;
      SPINFER_CHECK(cache_.AddSequence(r.id, prompt_len));
      r.admit_s = now_s;
      admission_order_.push_back(r.id);
      {
        SPINFER_TRACE_SCOPE_ARG("srv.prefill", "prompt", prompt_len);
        const FloatMatrix logits = model_->Prefill(r.prompt, cfg_.backend,
                                                   &cache_, r.id);
        r.generated.push_back(GreedyToken(logits, logits.rows() - 1));
      }
      running.push_back(Active{r.id});
      ++admitted;
      admitted_prompt_sum += prompt_len;
    }

    if (running.empty()) {
      if (queue.empty()) {
        break;
      }
      // Idle: jump the virtual clock to the next arrival. With an empty
      // batch the head always admits or rejects, so its arrival must be in
      // the future — anything else would spin this loop forever.
      const double next_arrival =
          records_[static_cast<size_t>(queue.front())].arrival_s;
      SPINFER_CHECK_MSG(next_arrival > now_s,
                        "scheduler wedged: empty batch cannot admit the "
                        "queue head");
      now_s = next_arrival;
      continue;
    }

    const int64_t batch = static_cast<int64_t>(running.size());
    ++report.iterations;
    metrics.iterations->Increment();
    report.peak_batch = std::max(report.peak_batch, batch);
    report.peak_kv_blocks = std::max(report.peak_kv_blocks, cache_.used_blocks());
    SPINFER_TRACE_SCOPE_ARG("srv.step", "batch", batch);

    // --- Execute one decode token for every previously-running sequence.
    // Newly admitted sequences got their first token from prefill above —
    // the same "+1 token for every active sequence per iteration" accounting
    // the analytic simulator uses.
    if (running_before > 0) {
      dec_ids.clear();
      dec_last.clear();
      for (size_t i = 0; i < running_before; ++i) {
        const RequestRecord& r = records_[static_cast<size_t>(running[i].id)];
        dec_ids.push_back(r.id);
        dec_last.push_back(r.generated.back());
      }
      model_->DecodeStep(dec_ids, dec_last, cfg_.backend, &cache_, &dec_next);
      for (size_t i = 0; i < running_before; ++i) {
        records_[static_cast<size_t>(running[i].id)].generated.push_back(
            dec_next[i]);
      }
    }

    // --- Advance the virtual clock: expression-for-expression the analytic
    // simulator's pricing. Every active sequence now holds g_pre + 1
    // generated tokens, so its context contribution is
    // prompt + (generated - 1) + 1, the analytic `input_len + g_pre + 1`.
    double iter_us = 0.0;
    if (admitted > 0) {
      iter_us += PrefillTimeUs(cfg_.cost, admitted, admitted_prompt_sum / admitted);
    }
    int64_t context_sum = 0;
    for (const Active& a : running) {
      const RequestRecord& r = records_[static_cast<size_t>(a.id)];
      context_sum += static_cast<int64_t>(r.prompt.size()) +
                     (static_cast<int64_t>(r.generated.size()) - 1) + 1;
    }
    iter_us += DecodeStepTimeUs(cfg_.cost, batch, context_sum / batch);
    now_s += iter_us / 1e6;
    batch_time_integral += static_cast<double>(batch) * iter_us / 1e6;
    report.tokens_generated += batch;
    metrics.tokens->Add(static_cast<uint64_t>(batch));

    // --- Retire: EOS or token budget. --------------------------------------
    for (auto it = running.begin(); it != running.end();) {
      RequestRecord& r = records_[static_cast<size_t>(it->id)];
      const bool eos =
          cfg_.eos_token >= 0 && r.generated.back() == cfg_.eos_token;
      if (!eos &&
          static_cast<int64_t>(r.generated.size()) < r.max_new_tokens) {
        ++it;
        continue;
      }
      r.reason = eos ? FinishReason::kEos : FinishReason::kMaxTokens;
      r.finish_s = now_s;
      r.latency_ms = (now_s - r.arrival_s) * 1e3;
      latencies_ms.push_back(r.latency_ms);
      metrics.latency_ms->Record(r.latency_ms);
      metrics.completed->Increment();
      ++report.completed;
      committed_blocks_ -= cache_.BlocksForTokens(
          static_cast<int64_t>(r.prompt.size()) + r.max_new_tokens);
      cache_.RemoveSequence(r.id);
      // Per-request span on the virtual timeline (finish on eviction).
      const obs::TraceArg args[] = {{"id", r.id},
                                    {"generated",
                                     static_cast<int64_t>(r.generated.size())}};
      obs::Tracer::Global().Record(
          "srv.request", static_cast<uint64_t>(r.arrival_s * 1e9),
          static_cast<uint64_t>((now_s - r.arrival_s) * 1e9), args, 2);
      it = running.erase(it);
    }

    metrics.queue_depth->Set(static_cast<double>(queue.size()));
    metrics.batch_size->Set(static_cast<double>(running.size()));
    metrics.kv_used_blocks->Set(static_cast<double>(cache_.used_blocks()));
    metrics.kv_utilization->Set(cache_.Utilization());
  }

  report.sim_time_s = now_s;
  report.throughput_tps =
      static_cast<double>(report.tokens_generated) / std::max(now_s, 1e-9);
  report.mean_batch = batch_time_integral / std::max(now_s, 1e-9);
  report.latency = SummarizeLatenciesMs(std::move(latencies_ms));
  return report;
}

}  // namespace spinfer
