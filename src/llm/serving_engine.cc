#include "src/llm/serving_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/crash_dump.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

// Constant-folds every request-observability site away under
// SPINFER_TRACING_DISABLED: guards read `kServingObs && ptr`, so the whole
// branch is dead code when the flag is set (and the ctor never allocates the
// observers in the first place).
#ifdef SPINFER_TRACING_DISABLED
inline constexpr bool kServingObs = false;
#else
inline constexpr bool kServingObs = true;
#endif

// Cached global instruments (find-or-create once; recording is lock-free).
struct ServingMetrics {
  obs::Counter* arrived;
  obs::Counter* rejected;
  obs::Counter* cancelled;
  obs::Counter* completed;
  obs::Counter* tokens;
  obs::Counter* iterations;
  obs::Counter* prefix_hit_blocks;
  obs::Counter* prefix_miss_blocks;
  obs::Counter* cow_copies;
  obs::Gauge* queue_depth;
  obs::Gauge* batch_size;
  obs::Gauge* kv_used_blocks;
  obs::Gauge* kv_utilization;
  obs::Gauge* kv_wasted_slots;
  obs::Histogram* latency_ms;
  obs::Histogram* ttft_ms;

  static ServingMetrics& Get() {
    static ServingMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      ServingMetrics s;
      s.arrived = reg.GetCounter("srv.requests_arrived");
      s.rejected = reg.GetCounter("srv.requests_rejected");
      s.cancelled = reg.GetCounter("srv.requests_cancelled");
      s.completed = reg.GetCounter("srv.requests_completed");
      s.tokens = reg.GetCounter("srv.tokens_generated");
      s.iterations = reg.GetCounter("srv.iterations");
      s.prefix_hit_blocks = reg.GetCounter("srv.prefix_hit_blocks");
      s.prefix_miss_blocks = reg.GetCounter("srv.prefix_miss_blocks");
      s.cow_copies = reg.GetCounter("srv.cow_copies");
      s.queue_depth = reg.GetGauge("srv.queue_depth");
      s.batch_size = reg.GetGauge("srv.batch_size");
      s.kv_used_blocks = reg.GetGauge("srv.kv_used_blocks");
      s.kv_utilization = reg.GetGauge("srv.kv_utilization");
      s.kv_wasted_slots = reg.GetGauge("srv.kv_wasted_slots");
      s.latency_ms = reg.GetHistogram(
          "srv.request_latency_ms",
          obs::Histogram::ExponentialBuckets(0.1, 2.0, 24));
      s.ttft_ms = reg.GetHistogram(
          "srv.ttft_ms", obs::Histogram::ExponentialBuckets(0.1, 2.0, 24));
      return s;
    }();
    return m;
  }
};

}  // namespace

ModelConfig ModelConfigFor(const TinyConfig& cfg) {
  ModelConfig m;
  m.name = "tiny";
  m.hidden = cfg.hidden;
  m.layers = cfg.layers;
  m.heads = cfg.heads;
  m.kv_heads = cfg.kv_head_count();
  m.ffn_hidden = cfg.ffn;
  m.vocab = cfg.vocab;
  return m;
}

const char* FinishReasonName(FinishReason r) {
  switch (r) {
    case FinishReason::kNone:
      return "none";
    case FinishReason::kEos:
      return "eos";
    case FinishReason::kMaxTokens:
      return "max_tokens";
    case FinishReason::kRejected:
      return "rejected";
    case FinishReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string ExecServingReport::ToString() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "arrived=%lld rejected=%lld cancelled=%lld completed=%lld tokens=%lld "
      "iters=%lld peak_batch=%lld peak_kv_blocks=%lld prefix_hit_blocks=%lld "
      "prefix_miss_blocks=%lld cow_copies=%lld peak_iter_ms=%.6f sim_s=%.6f "
      "tps=%.6f "
      "mean_batch=%.6f ttft_ms{mean=%.6f p50=%.6f p95=%.6f p99=%.6f} "
      "lat_ms{mean=%.6f p50=%.6f p95=%.6f p99=%.6f}",
      static_cast<long long>(arrived), static_cast<long long>(rejected),
      static_cast<long long>(cancelled), static_cast<long long>(completed),
      static_cast<long long>(tokens_generated),
      static_cast<long long>(iterations), static_cast<long long>(peak_batch),
      static_cast<long long>(peak_kv_blocks),
      static_cast<long long>(prefix_hit_blocks),
      static_cast<long long>(prefix_miss_blocks),
      static_cast<long long>(cow_copies), peak_iter_ms, sim_time_s,
      throughput_tps,
      mean_batch, ttft.mean_ms, ttft.p50_ms, ttft.p95_ms, ttft.p99_ms,
      latency.mean_ms, latency.p50_ms, latency.p95_ms, latency.p99_ms);
  return std::string(buf);
}

ServingEngine::ServingEngine(const TinyTransformer* model,
                             const ServingEngineConfig& cfg)
    : owned_substrate_(std::make_unique<SingleInstanceSubstrate>(
          model, cfg.kv_block_tokens, cfg.kv_num_blocks)),
      substrate_(owned_substrate_.get()),
      cfg_(cfg) {
  SPINFER_CHECK(cfg.max_batch > 0);
  SPINFER_CHECK(cfg.prefill_chunk_tokens >= 0);
  if (kServingObs) {
    if (cfg.obs.request_timeline) {
      request_log_ = std::make_unique<obs::RequestLog>(cfg.obs.wall_clock);
    }
    if (cfg.obs.flight_recorder_iters > 0) {
      flight_recorder_ =
          std::make_unique<obs::FlightRecorder>(cfg.obs.flight_recorder_iters);
    }
    if (cfg.obs.slo_tracker) {
      obs::SloTrackerConfig slo;
      slo.window_iters = cfg.obs.slo_window_iters;
      slo_tracker_ = std::make_unique<obs::SloTracker>(slo);
    }
  }
}

ServingEngine::ServingEngine(ServingSubstrate* substrate,
                             const ServingEngineConfig& cfg)
    : substrate_(substrate), cfg_(cfg) {
  SPINFER_CHECK(substrate != nullptr);
  SPINFER_CHECK(cfg.max_batch > 0);
  SPINFER_CHECK(cfg.prefill_chunk_tokens >= 0);
  if (kServingObs) {
    if (cfg.obs.request_timeline) {
      request_log_ = std::make_unique<obs::RequestLog>(cfg.obs.wall_clock);
    }
    if (cfg.obs.flight_recorder_iters > 0) {
      flight_recorder_ =
          std::make_unique<obs::FlightRecorder>(cfg.obs.flight_recorder_iters);
    }
    if (cfg.obs.slo_tracker) {
      obs::SloTrackerConfig slo;
      slo.window_iters = cfg.obs.slo_window_iters;
      slo_tracker_ = std::make_unique<obs::SloTracker>(slo);
    }
  }
}

ServingEngine::~ServingEngine() {
  if (flight_recorder_ != nullptr) {
    // Scoped uninstall: only clears the hook if it still points at our
    // recorder, so a later engine's installation survives.
    UninstallFlightRecorderCrashDump(flight_recorder_.get());
  }
}

int64_t ServingEngine::Submit(std::vector<int32_t> prompt, int64_t max_new_tokens,
                              double arrival_s) {
  std::lock_guard<std::mutex> lock(submit_mu_);
  SPINFER_CHECK_MSG(!ran_, "Submit after Run");
  RequestRecord r;
  r.id = static_cast<int64_t>(records_.size());
  r.prompt = std::move(prompt);
  r.max_new_tokens = max_new_tokens;
  r.arrival_s = arrival_s;
  records_.push_back(std::move(r));
  ServingMetrics::Get().arrived->Increment();
  return records_.back().id;
}

void ServingEngine::Cancel(int64_t id, double at_s) {
  std::lock_guard<std::mutex> lock(submit_mu_);
  cancels_.emplace_back(at_s, id);
}

void ServingEngine::InjectPoissonArrivals(const PoissonTraffic& t) {
  SPINFER_CHECK(t.arrival_rate_rps > 0.0 && t.horizon_s > 0.0);
  SPINFER_CHECK(t.prompt_len_min >= 1 && t.prompt_len_max >= t.prompt_len_min);
  SPINFER_CHECK(t.max_new_min >= 1 && t.max_new_max >= t.max_new_min);
  // Arrival times replay the analytic simulator's exact draw sequence;
  // content comes from a second stream so it cannot perturb the process.
  Rng time_rng(t.seed);
  Rng content_rng(t.seed ^ 0x9e3779b97f4a7c15ull);
  const int64_t vocab = substrate_->model_config().vocab;
  double now = 0.0;
  while (true) {
    now += -std::log(1.0 - time_rng.Uniform()) / t.arrival_rate_rps;
    if (now >= t.horizon_s) {
      break;
    }
    const int64_t prompt_len =
        t.prompt_len_min +
        static_cast<int64_t>(content_rng.Below(
            static_cast<uint64_t>(t.prompt_len_max - t.prompt_len_min + 1)));
    const int64_t max_new =
        t.max_new_min + static_cast<int64_t>(content_rng.Below(
                            static_cast<uint64_t>(t.max_new_max - t.max_new_min + 1)));
    std::vector<int32_t> prompt(static_cast<size_t>(prompt_len));
    for (int32_t& tok : prompt) {
      tok = static_cast<int32_t>(content_rng.Below(static_cast<uint64_t>(vocab)));
    }
    Submit(std::move(prompt), max_new, now);
  }
}

bool ServingEngine::IsServable(const RequestRecord& r) const {
  const int64_t prompt_len = static_cast<int64_t>(r.prompt.size());
  if (prompt_len < 1 || r.max_new_tokens < 1) {
    return false;
  }
  if (prompt_len + r.max_new_tokens > substrate_->model_config().max_seq) {
    return false;
  }
  return substrate_->cache().BlocksForTokens(prompt_len + r.max_new_tokens) <=
         substrate_->cache().total_blocks();
}

ExecServingReport ServingEngine::Run() {
  SPINFER_CHECK_MSG(!ran_, "ServingEngine::Run is single-shot");
  ran_ = true;
  ServingMetrics& metrics = ServingMetrics::Get();

  ExecServingReport report;
  report.arrived = static_cast<int64_t>(records_.size());

  // FIFO queue of request ids by (arrival, submission order). stable_sort
  // keeps equal-arrival requests in id order.
  std::vector<int64_t> order(records_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int64_t>(i);
  }
  std::stable_sort(order.begin(), order.end(), [this](int64_t a, int64_t b) {
    return records_[static_cast<size_t>(a)].arrival_s <
           records_[static_cast<size_t>(b)].arrival_s;
  });
  std::deque<int64_t> queue(order.begin(), order.end());

  // Observability is read-only on engine state: everything below that touches
  // tl / flight_recorder_ / slo_tracker_ records what already happened and
  // feeds nothing back. `kServingObs &&` folds the sites out under
  // SPINFER_TRACING_DISABLED. Submitted events go out up front in queue
  // (arrival, id) order — the single-writer discipline that keeps the JSONL
  // byte-stable across thread counts.
  obs::RequestLog* const tl = kServingObs ? request_log_.get() : nullptr;
  obs::FlightRecorder* const fr =
      kServingObs ? flight_recorder_.get() : nullptr;
  obs::SloTracker* const slo = kServingObs ? slo_tracker_.get() : nullptr;
  if (kServingObs && fr != nullptr && cfg_.obs.dump_flight_recorder_on_check) {
    InstallFlightRecorderCrashDump(fr);
  }
  if (kServingObs && tl != nullptr) {
    for (const int64_t id : queue) {
      const RequestRecord& r = records_[static_cast<size_t>(id)];
      tl->Append(r.id, obs::RequestEventKind::kSubmitted, -1, r.arrival_s,
                 {{"prompt_tokens", static_cast<int64_t>(r.prompt.size())},
                  {"max_new", r.max_new_tokens}});
    }
  }
  std::vector<int64_t> fr_admitted_ids;

  const auto footprint_of = [this](const RequestRecord& r) {
    return substrate_->cache().BlocksForTokens(static_cast<int64_t>(r.prompt.size()) +
                                  r.max_new_tokens);
  };

  std::vector<Active> running;
  std::vector<int64_t> dec_ids;
  std::vector<int32_t> dec_last;
  std::vector<int32_t> dec_next;
  std::vector<int32_t> chunk_next;
  std::vector<PrefillChunk> chunks;
  std::vector<std::pair<double, int64_t>> due_cancels;
  std::vector<double> latencies_ms;
  std::vector<double> ttfts_ms;
  double now_s = 0.0;
  double batch_time_integral = 0.0;
  int64_t published_cow = 0;

  const auto record_terminal_span = [&](const RequestRecord& r) {
    // Per-request span on the virtual timeline (finish on eviction).
    const obs::TraceArg args[] = {{"id", r.id},
                                  {"generated",
                                   static_cast<int64_t>(r.generated.size())}};
    obs::Tracer::Global().Record(
        "srv.request", static_cast<uint64_t>(r.arrival_s * 1e9),
        static_cast<uint64_t>((now_s - r.arrival_s) * 1e9), args, 2);
  };

  while (!queue.empty() || !running.empty()) {
    // 0-based index of the iteration this pass would execute; idle passes
    // (clock jumps) share the index with the iteration that follows them.
    const int64_t iter_idx = report.iterations;
    int64_t fr_admitted = 0;
    int64_t fr_rejected = 0;
    fr_admitted_ids.clear();

    // --- Cancellation: applied at iteration boundaries, in (at_s, id) order
    // for determinism, once the virtual clock reaches the cancel time. -----
    due_cancels.clear();
    {
      std::lock_guard<std::mutex> lock(submit_mu_);
      for (size_t i = 0; i < cancels_.size();) {
        if (cancels_[i].first <= now_s) {
          due_cancels.push_back(cancels_[i]);
          cancels_[i] = cancels_.back();
          cancels_.pop_back();
        } else {
          ++i;
        }
      }
    }
    std::sort(due_cancels.begin(), due_cancels.end());
    for (const auto& [at_s, id] : due_cancels) {
      if (id < 0 || id >= static_cast<int64_t>(records_.size())) {
        continue;
      }
      RequestRecord& r = records_[static_cast<size_t>(id)];
      if (r.reason != FinishReason::kNone) {
        continue;  // already finished — cancellation lost the race
      }
      r.reason = FinishReason::kCancelled;
      r.finish_s = now_s;
      ++report.cancelled;
      metrics.cancelled->Increment();
      const auto run_it =
          std::find_if(running.begin(), running.end(),
                       [id](const Active& a) { return a.id == id; });
      const bool was_running = run_it != running.end();
      if (was_running) {
        substrate_->RemoveSequence(id);  // refcount-aware: shared blocks survive
        running.erase(run_it);
      } else {
        queue.erase(std::find(queue.begin(), queue.end(), id));
      }
      record_terminal_span(r);
      if (kServingObs && tl != nullptr) {
        // A running victim is "evicted" (its KV blocks were reclaimed); a
        // queued one was merely "cancelled".
        tl->Append(id,
                   was_running ? obs::RequestEventKind::kEvicted
                               : obs::RequestEventKind::kCancelled,
                   iter_idx, now_s,
                   {{"generated", static_cast<int64_t>(r.generated.size())}});
      }
    }

    // --- Admission: strict FIFO; the head blocks until it fits. ------------
    // Growth reserve: fresh blocks the running set may still demand growing
    // to prompt + max_new. used_blocks + reserve <= total guarantees every
    // future AppendToken finds a free block (the engine's appends never
    // trigger copy-on-write: only full blocks are shared, so a sequence's
    // divergent writes land in private tail blocks). With nothing shared
    // this admission check is integer-for-integer the v1 sum-of-footprints
    // commitment; with sharing it counts shared blocks once.
    int64_t reserve = 0;
    for (const Active& a : running) {
      reserve += footprint_of(records_[static_cast<size_t>(a.id)]) -
                 substrate_->cache().BlocksForTokens(
                     substrate_->cache().SequenceTokens(a.id));
    }
    while (!queue.empty()) {
      RequestRecord& r = records_[static_cast<size_t>(queue.front())];
      if (r.arrival_s > now_s) {
        break;
      }
      if (!IsServable(r)) {
        queue.pop_front();
        r.reason = FinishReason::kRejected;
        r.finish_s = now_s;
        ++report.rejected;
        ++fr_rejected;
        metrics.rejected->Increment();
        if (kServingObs && tl != nullptr) {
          tl->Append(r.id, obs::RequestEventKind::kRejected, iter_idx, now_s);
        }
        continue;
      }
      if (static_cast<int64_t>(running.size()) >= cfg_.max_batch) {
        break;
      }
      const int64_t prompt_len = static_cast<int64_t>(r.prompt.size());
      PagedKvCache::PrefixMatch match;
      if (cfg_.enable_prefix_cache) {
        match = substrate_->MatchPrefix(r.prompt);
      }
      const int64_t prompt_blocks = substrate_->cache().BlocksForTokens(prompt_len);
      const int64_t fresh_blocks =
          prompt_blocks - static_cast<int64_t>(match.blocks.size());
      const int64_t growth = footprint_of(r) - prompt_blocks;
      if (substrate_->cache().used_blocks() + fresh_blocks + reserve + growth >
          substrate_->cache().total_blocks()) {
        break;
      }
      queue.pop_front();
      SPINFER_CHECK(
          substrate_->AddSequenceSharing(r.id, r.prompt, prompt_len, match));
      reserve += growth;
      r.admit_s = now_s;
      r.cached_prompt_tokens = match.tokens;
      report.prefix_hit_blocks += static_cast<int64_t>(match.blocks.size());
      report.prefix_miss_blocks += fresh_blocks;
      if (cfg_.enable_prefix_cache) {
        metrics.prefix_hit_blocks->Add(
            static_cast<uint64_t>(match.blocks.size()));
        metrics.prefix_miss_blocks->Add(static_cast<uint64_t>(fresh_blocks));
      }
      admission_order_.push_back(r.id);
      ++fr_admitted;
      if (kServingObs && fr != nullptr) {
        fr_admitted_ids.push_back(r.id);
      }
      if (kServingObs && tl != nullptr) {
        tl->Append(r.id, obs::RequestEventKind::kAdmitted, iter_idx, now_s,
                   {{"fresh_blocks", fresh_blocks},
                    {"shared_blocks",
                     static_cast<int64_t>(match.blocks.size())}});
        if (cfg_.enable_prefix_cache) {
          tl->Append(
              r.id, obs::RequestEventKind::kPrefixMatch, iter_idx, now_s,
              {{"hit_blocks", static_cast<int64_t>(match.blocks.size())},
               {"miss_blocks", fresh_blocks},
               {"cached_tokens", match.tokens}});
        }
      }
      // Prefill starts past the adopted prefix; the chunk scheduler below
      // computes the rest (this same iteration when chunking is off).
      running.push_back(Active{r.id, match.tokens});
    }

    if (running.empty()) {
      if (queue.empty()) {
        break;
      }
      // Idle: jump the virtual clock to the next event. With an empty batch
      // the head always admits or rejects, so its arrival must be in the
      // future — anything else would spin this loop forever. A pending
      // cancel for a not-yet-arrived request applies at that same boundary.
      const double next_arrival =
          records_[static_cast<size_t>(queue.front())].arrival_s;
      SPINFER_CHECK_MSG(next_arrival > now_s,
                        "scheduler wedged: empty batch cannot admit the "
                        "queue head");
      now_s = next_arrival;
      continue;
    }

    // --- Build the mixed iteration: every prefill-complete sequence decodes
    // one token; prefilling sequences get prompt chunks under the
    // per-iteration token budget (0 = unlimited), in running order. --------
    dec_ids.clear();
    dec_last.clear();
    chunks.clear();
    int64_t chunk_tokens_sum = 0;
    for (const Active& a : running) {
      const RequestRecord& r = records_[static_cast<size_t>(a.id)];
      const int64_t prompt_len = static_cast<int64_t>(r.prompt.size());
      if (a.prefill_pos < prompt_len) {
        int64_t take = prompt_len - a.prefill_pos;
        if (cfg_.prefill_chunk_tokens > 0) {
          take = std::min(take, cfg_.prefill_chunk_tokens - chunk_tokens_sum);
        }
        if (take <= 0) {
          continue;  // budget spent; this sequence resumes next iteration
        }
        chunks.push_back(PrefillChunk{a.id, &r.prompt, a.prefill_pos, take});
        chunk_tokens_sum += take;
      } else {
        dec_ids.push_back(a.id);
        dec_last.push_back(r.generated.back());
      }
    }

    const int64_t batch = static_cast<int64_t>(running.size());
    ++report.iterations;
    metrics.iterations->Increment();
    report.peak_batch = std::max(report.peak_batch, batch);
    report.peak_kv_blocks =
        std::max(report.peak_kv_blocks, substrate_->cache().used_blocks());
    SPINFER_TRACE_SCOPE_ARG("srv.step", "batch", batch);

    if (kServingObs && tl != nullptr) {
      for (const PrefillChunk& c : chunks) {
        tl->Append(c.seq_id, obs::RequestEventKind::kChunkScheduled, iter_idx,
                   now_s, {{"start", c.start}, {"tokens", c.count}});
      }
    }
    // Flight-recorder composition is captured at execution time (post-
    // admission, pre-retire): that is the working set a crash dump needs.
    // Cost and the post-iteration clock are filled in after pricing.
    obs::IterationSnapshot fr_snap;
    if (kServingObs && fr != nullptr) {
      fr_snap.iter = iter_idx;
      fr_snap.batch = batch;
      fr_snap.decode_seqs = static_cast<int64_t>(dec_ids.size());
      fr_snap.prefill_seqs = static_cast<int64_t>(chunks.size());
      fr_snap.chunk_tokens = chunk_tokens_sum;
      fr_snap.admitted = fr_admitted;
      fr_snap.rejected = fr_rejected;
      fr_snap.queue_depth = static_cast<int64_t>(queue.size());
      fr_snap.kv_used_blocks = substrate_->cache().used_blocks();
      fr_snap.kv_total_blocks = substrate_->cache().total_blocks();
      fr_snap.kv_wasted_slots = substrate_->cache().WastedTokenSlots();
      fr_snap.batch_ids.reserve(running.size());
      for (const Active& a : running) {
        fr_snap.batch_ids.push_back(a.id);
      }
      fr_snap.admitted_ids = fr_admitted_ids;
    }

    // --- Execute: ONE matmul per weight with N = decode + chunk columns. ---
    substrate_->MixedStep(dec_ids, dec_last, chunks, cfg_.backend,
                      &dec_next, &chunk_next);
    for (size_t i = 0; i < dec_ids.size(); ++i) {
      records_[static_cast<size_t>(dec_ids[i])].generated.push_back(dec_next[i]);
    }
    for (size_t c = 0; c < chunks.size(); ++c) {
      const int64_t id = chunks[c].seq_id;
      Active& a = *std::find_if(running.begin(), running.end(),
                                [id](const Active& x) { return x.id == id; });
      a.prefill_pos += chunks[c].count;
      RequestRecord& r = records_[static_cast<size_t>(id)];
      if (a.prefill_pos == static_cast<int64_t>(r.prompt.size())) {
        SPINFER_CHECK(chunk_next[c] >= 0);
        r.generated.push_back(chunk_next[c]);
      }
      if (cfg_.enable_prefix_cache) {
        // Newly filled full blocks become adoptable by later arrivals.
        substrate_->IndexPrefix(id, r.prompt, a.prefill_pos);
      }
    }

    // --- Advance the virtual clock: expression-for-expression the analytic
    // simulator's pricing. Chunk columns are priced as prefill work; every
    // producer (decoded or prefill-completed this iteration) now holds
    // g_pre + 1 generated tokens, so its context contribution is
    // prompt + (generated - 1) + 1, the analytic `input_len + g_pre + 1`.
    double iter_us = 0.0;
    if (!chunks.empty()) {
      const int64_t n_chunks = static_cast<int64_t>(chunks.size());
      iter_us += PrefillTimeUs(cfg_.cost, n_chunks, chunk_tokens_sum / n_chunks);
    }
    int64_t producers = 0;
    int64_t context_sum = 0;
    for (const Active& a : running) {
      const RequestRecord& r = records_[static_cast<size_t>(a.id)];
      if (a.prefill_pos < static_cast<int64_t>(r.prompt.size())) {
        continue;  // mid-prefill: produced no token this iteration
      }
      ++producers;
      context_sum += static_cast<int64_t>(r.prompt.size()) +
                     (static_cast<int64_t>(r.generated.size()) - 1) + 1;
    }
    if (producers > 0) {
      iter_us += DecodeStepTimeUs(cfg_.cost, producers, context_sum / producers);
    }
    report.peak_iter_ms = std::max(report.peak_iter_ms, iter_us / 1e3);
    now_s += iter_us / 1e6;
    batch_time_integral += static_cast<double>(batch) * iter_us / 1e6;
    report.tokens_generated += producers;
    metrics.tokens->Add(static_cast<uint64_t>(producers));

    // First-token timestamps for sequences whose prefill completed at this
    // iteration's boundary (decode-phase sequences got theirs earlier).
    for (const PrefillChunk& c : chunks) {
      RequestRecord& r = records_[static_cast<size_t>(c.seq_id)];
      if (c.start + c.count == static_cast<int64_t>(r.prompt.size())) {
        r.first_token_s = now_s;
        r.ttft_ms = (now_s - r.arrival_s) * 1e3;
        if (kServingObs && slo != nullptr) {
          slo->RecordTtftMs(r.ttft_ms);
        }
      }
    }
    if (kServingObs && slo != nullptr) {
      // Every decode-phase producer waited exactly this iteration for its
      // token: the iteration cost IS the inter-token gap.
      for (size_t i = 0; i < dec_ids.size(); ++i) {
        slo->RecordTbtMs(iter_us / 1e3);
      }
    }
    if (kServingObs && tl != nullptr) {
      // One decode event per producer (decode-phase and prefill-completers
      // alike), stamped at the post-iteration boundary where the token
      // materializes.
      for (const Active& a : running) {
        const RequestRecord& r = records_[static_cast<size_t>(a.id)];
        if (a.prefill_pos < static_cast<int64_t>(r.prompt.size())) {
          continue;
        }
        tl->Append(a.id, obs::RequestEventKind::kDecodeIteration, iter_idx,
                   now_s,
                   {{"token", r.generated.back()},
                    {"generated", static_cast<int64_t>(r.generated.size())}});
      }
    }

    // --- Retire: EOS or token budget (mid-prefill sequences stay). ---------
    for (auto it = running.begin(); it != running.end();) {
      RequestRecord& r = records_[static_cast<size_t>(it->id)];
      if (it->prefill_pos < static_cast<int64_t>(r.prompt.size())) {
        ++it;
        continue;
      }
      const bool eos =
          cfg_.eos_token >= 0 && r.generated.back() == cfg_.eos_token;
      if (!eos &&
          static_cast<int64_t>(r.generated.size()) < r.max_new_tokens) {
        ++it;
        continue;
      }
      r.reason = eos ? FinishReason::kEos : FinishReason::kMaxTokens;
      r.finish_s = now_s;
      r.latency_ms = (now_s - r.arrival_s) * 1e3;
      latencies_ms.push_back(r.latency_ms);
      ttfts_ms.push_back(r.ttft_ms);
      metrics.latency_ms->Record(r.latency_ms);
      metrics.ttft_ms->Record(r.ttft_ms);
      metrics.completed->Increment();
      ++report.completed;
      substrate_->RemoveSequence(r.id);
      record_terminal_span(r);
      if (kServingObs && tl != nullptr) {
        tl->Append(r.id, obs::RequestEventKind::kFinished, iter_idx, now_s,
                   {{"generated", static_cast<int64_t>(r.generated.size())},
                    {"eos", eos ? 1 : 0}});
      }
      it = running.erase(it);
    }

    if (kServingObs && fr != nullptr) {
      fr_snap.vt_s = now_s;
      fr_snap.cost_ms = iter_us / 1e3;
      fr->Record(std::move(fr_snap));
    }
    if (kServingObs && slo != nullptr) {
      slo->EndIteration(substrate_->cache().Utilization(),
                        &obs::MetricsRegistry::Global());
    }

    metrics.queue_depth->Set(static_cast<double>(queue.size()));
    metrics.batch_size->Set(static_cast<double>(running.size()));
    metrics.kv_used_blocks->Set(
        static_cast<double>(substrate_->cache().used_blocks()));
    metrics.kv_utilization->Set(substrate_->cache().Utilization());
    metrics.kv_wasted_slots->Set(
        static_cast<double>(substrate_->cache().WastedTokenSlots()));
    if (substrate_->cache().cow_copies() > published_cow) {
      metrics.cow_copies->Add(
          static_cast<uint64_t>(substrate_->cache().cow_copies() - published_cow));
      published_cow = substrate_->cache().cow_copies();
    }
  }

  report.cow_copies = substrate_->cache().cow_copies();
  report.sim_time_s = now_s;
  report.throughput_tps =
      static_cast<double>(report.tokens_generated) / std::max(now_s, 1e-9);
  report.mean_batch = batch_time_integral / std::max(now_s, 1e-9);
  report.ttft = SummarizeLatenciesMs(std::move(ttfts_ms));
  report.latency = SummarizeLatenciesMs(std::move(latencies_ms));
  return report;
}

}  // namespace spinfer
