// End-to-end inference engine model (paper §5.2).
//
// Walks a model's real per-layer GEMM shapes under Megatron-style tensor
// parallelism, prices every linear with the corresponding kernel's roofline
// estimate (SpInfer-SpMM, Flash-LLM SpMM, or dense cuBLAS), adds the
// attention/KV-cache model, small-op overheads and all-reduce communication,
// and checks the memory plan for OOM — reproducing the latency, throughput,
// memory, and breakdown results of Figs. 2 and 13–15.
#pragma once

#include <cstdint>
#include <string>

#include "src/gpusim/device_spec.h"
#include "src/llm/memory_plan.h"
#include "src/llm/model_config.h"

namespace spinfer {

enum class Framework {
  kSpInfer,            // TCA-BME weights, SpInfer-SpMM linears
  kSpInferInt8,        // TCA-BME + INT8 values (extension; see tca_bme_quant.h)
  kFlashLlm,           // Tiled-CSL weights, Flash-LLM SpMM linears
  kFasterTransformer,  // dense weights, cuBLAS linears
  kDeepSpeed,          // dense weights, cuBLAS linears, heavier runtime
};

const char* FrameworkName(Framework f);
WeightFormat FrameworkWeightFormat(Framework f);

struct EngineConfig {
  ModelConfig model;
  Framework framework = Framework::kSpInfer;
  DeviceSpec device;
  int num_gpus = 1;
  int64_t batch = 8;
  int64_t input_len = 128;
  int64_t output_len = 256;
  // Weight sparsity for the sparse frameworks (the paper evaluates Wanda at
  // 60%); ignored by the dense frameworks.
  double sparsity = 0.6;
};

// Time attribution for one phase, matching the paper's Fig. 15 categories.
struct PhaseBreakdown {
  double linear_us = 0.0;     // SpMM / GEMM (weight matmuls + LM head)
  double attention_us = 0.0;  // MHA incl. KV cache traffic
  double comm_us = 0.0;       // tensor-parallel all-reduce
  double other_us = 0.0;      // layernorm/residual/sampling/framework

  double TotalUs() const { return linear_us + attention_us + comm_us + other_us; }
};

struct InferenceReport {
  MemoryPlan memory;
  bool oom = false;

  double prefill_ms = 0.0;
  double decode_ms = 0.0;  // all output tokens
  double total_ms = 0.0;
  double tokens_per_second = 0.0;  // generated tokens (batch*output) / total

  PhaseBreakdown prefill;
  PhaseBreakdown decode;  // aggregated over all decode steps
};

// Models one full inference (prefill + output_len decode steps).
InferenceReport SimulateInference(const EngineConfig& cfg);

// Building blocks for schedulers (the serving simulator): cost of one decode
// step at `batch` in-flight sequences with `context` cached tokens, and of
// one prefill over `batch` x `seq_len` prompt tokens. Both include linears,
// attention, communication and per-step overheads.
double DecodeStepTimeUs(const EngineConfig& cfg, int64_t batch, int64_t context);
double PrefillTimeUs(const EngineConfig& cfg, int64_t batch, int64_t seq_len);

}  // namespace spinfer
