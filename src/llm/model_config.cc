#include "src/llm/model_config.h"

#include "src/util/check.h"

namespace spinfer {
namespace {

ModelConfig Make(std::string name, int64_t hidden, int64_t layers, int64_t heads,
                 int64_t kv_heads, int64_t ffn, int64_t vocab, bool gated,
                 int num_experts = 1, int active_experts = 1) {
  ModelConfig m;
  m.name = std::move(name);
  m.hidden = hidden;
  m.layers = layers;
  m.heads = heads;
  m.kv_heads = kv_heads;
  m.ffn_hidden = ffn;
  m.vocab = vocab;
  m.gated_ffn = gated;
  m.num_experts = num_experts;
  m.active_experts = active_experts;
  return m;
}

}  // namespace

int64_t ModelConfig::NumParams() const {
  const int64_t kv_dim = kv_heads * head_dim();
  // Attention: Q + O are h*h; K + V are h*kv_dim.
  int64_t per_layer = 2 * hidden * hidden + 2 * hidden * kv_dim;
  // FFN: 2 matrices (up+down), or 3 for gated; times experts for MoE.
  const int64_t ffn_mats = gated_ffn ? 3 : 2;
  per_layer += static_cast<int64_t>(num_experts) * ffn_mats * hidden * ffn_hidden;
  return layers * per_layer + vocab * hidden;  // + tied embedding/LM head
}

std::vector<GemmShape> LayerGemmShapes(const ModelConfig& model) {
  const int64_t h = model.hidden;
  const int64_t kv_dim = model.kv_heads * model.head_dim();
  std::vector<GemmShape> shapes;
  shapes.push_back({"qkv_proj", h + 2 * kv_dim, h});
  shapes.push_back({"out_proj", h, h});
  const int active = model.active_experts;
  if (model.gated_ffn) {
    // SwiGLU: gate and up projections fuse into one (2*ffn, h) GEMM.
    shapes.push_back({"ffn_gate_up", static_cast<int64_t>(active) * 2 * model.ffn_hidden, h});
    shapes.push_back({"ffn_down", h * static_cast<int64_t>(active), model.ffn_hidden});
  } else {
    shapes.push_back({"ffn_fc1", model.ffn_hidden, h});
    shapes.push_back({"ffn_fc2", h, model.ffn_hidden});
  }
  return shapes;
}

ModelConfig Opt13B() { return Make("opt-13b", 5120, 40, 40, 40, 20480, 50272, false); }
ModelConfig Opt30B() { return Make("opt-30b", 7168, 48, 56, 56, 28672, 50272, false); }
ModelConfig Opt66B() { return Make("opt-66b", 9216, 64, 72, 72, 36864, 50272, false); }
ModelConfig Opt175B() { return Make("opt-175b", 12288, 96, 96, 96, 49152, 50272, false); }
ModelConfig Llama2_7B() { return Make("llama2-7b", 4096, 32, 32, 32, 11008, 32000, true); }
ModelConfig Llama2_13B() { return Make("llama2-13b", 5120, 40, 40, 40, 13824, 32000, true); }
ModelConfig Llama2_70B() { return Make("llama2-70b", 8192, 80, 64, 8, 28672, 32000, true); }
ModelConfig Llama3_8B() { return Make("llama3-8b", 4096, 32, 32, 8, 14336, 128256, true); }
ModelConfig Llama3_70B() { return Make("llama3-70b", 8192, 80, 64, 8, 28672, 128256, true); }
ModelConfig Qwen2_7B() { return Make("qwen2-7b", 3584, 28, 28, 4, 18944, 152064, true); }
ModelConfig Qwen2_72B() { return Make("qwen2-72b", 8192, 80, 64, 8, 29568, 152064, true); }
ModelConfig Mixtral8x7B() {
  return Make("mixtral-8x7b", 4096, 32, 32, 8, 14336, 32000, true, 8, 2);
}

std::vector<ModelConfig> AllModels() {
  return {Opt13B(),     Opt30B(),     Opt66B(),    Opt175B(),   Llama2_7B(),
          Llama2_13B(), Llama2_70B(), Llama3_8B(), Llama3_70B(), Qwen2_7B(),
          Qwen2_72B(),  Mixtral8x7B()};
}

ModelConfig ModelByName(const std::string& name) {
  for (const ModelConfig& m : AllModels()) {
    if (m.name == name) {
      return m;
    }
  }
  SPINFER_UNREACHABLE("unknown model name: " + name);
}

}  // namespace spinfer
