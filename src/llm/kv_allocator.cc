#include "src/llm/kv_allocator.h"

#include <algorithm>
#include <cstring>

#include "src/util/check.h"

namespace spinfer {

KvAllocator::KvAllocator(const KvAllocatorConfig& config) : config_(config) {
  SPINFER_CHECK(config.block_tokens > 0);
  SPINFER_CHECK(config.bytes_per_token > 0);
  const uint64_t block_bytes =
      config.bytes_per_token * static_cast<uint64_t>(config.block_tokens);
  total_blocks_ = static_cast<int64_t>(config.capacity_bytes / block_bytes);
  free_list_.reserve(static_cast<size_t>(total_blocks_));
  // LIFO free list; block ids descend so block 0 is handed out first.
  for (int64_t b = total_blocks_ - 1; b >= 0; --b) {
    free_list_.push_back(static_cast<int32_t>(b));
  }
  ref_count_.assign(static_cast<size_t>(total_blocks_), 0);
}

bool KvAllocator::AddSequence(int64_t seq_id, int64_t prompt_tokens) {
  static const std::vector<int32_t> kNoShared;
  return AddSequenceSharing(seq_id, prompt_tokens, kNoShared);
}

bool KvAllocator::AddSequenceSharing(int64_t seq_id, int64_t prompt_tokens,
                                     const std::vector<int32_t>& shared_blocks) {
  SPINFER_CHECK(prompt_tokens >= 0);
  SPINFER_CHECK_MSG(sequences_.find(seq_id) == sequences_.end(),
                    "sequence id already registered: " << seq_id);
  const int64_t need = BlocksFor(prompt_tokens);
  const int64_t shared = static_cast<int64_t>(shared_blocks.size());
  SPINFER_CHECK_MSG(shared <= need, "sequence of " << prompt_tokens
                                                   << " tokens cannot adopt "
                                                   << shared << " blocks");
  if (need - shared > free_blocks()) {
    return false;
  }
  Sequence seq;
  seq.tokens = prompt_tokens;
  seq.blocks.reserve(static_cast<size_t>(need));
  for (int32_t b : shared_blocks) {
    SPINFER_CHECK_MSG(b >= 0 && b < total_blocks_ && ref_count_[b] > 0,
                      "cannot adopt non-live block " << b);
    ++ref_count_[b];
    seq.blocks.push_back(b);
  }
  for (int64_t i = shared; i < need; ++i) {
    const int32_t b = free_list_.back();
    free_list_.pop_back();
    ref_count_[b] = 1;
    seq.blocks.push_back(b);
  }
  sequences_.emplace(seq_id, std::move(seq));
  return true;
}

bool KvAllocator::AppendToken(int64_t seq_id, CowRemap* remap) {
  const auto it = sequences_.find(seq_id);
  SPINFER_CHECK_MSG(it != sequences_.end(), "unknown sequence: " << seq_id);
  Sequence& seq = it->second;
  if (remap != nullptr) {
    remap->happened = false;
  }
  if (BlocksFor(seq.tokens + 1) > static_cast<int64_t>(seq.blocks.size())) {
    if (free_list_.empty()) {
      return false;
    }
    const int32_t b = free_list_.back();
    free_list_.pop_back();
    ref_count_[b] = 1;
    seq.blocks.push_back(b);
    ++seq.tokens;
    return true;
  }
  // The new slot lands inside the sequence's last mapped block. If that
  // block is shared, writing would corrupt the other holders: remap the
  // entry to a fresh private block (copy-on-write) first.
  const int64_t block_index = seq.tokens / config_.block_tokens;
  const int32_t old_block = seq.blocks[static_cast<size_t>(block_index)];
  if (ref_count_[old_block] > 1) {
    if (free_list_.empty()) {
      return false;
    }
    const int32_t new_block = free_list_.back();
    free_list_.pop_back();
    ref_count_[new_block] = 1;
    --ref_count_[old_block];
    seq.blocks[static_cast<size_t>(block_index)] = new_block;
    if (remap != nullptr) {
      remap->happened = true;
      remap->block_index = block_index;
      remap->old_block = old_block;
      remap->new_block = new_block;
    }
  }
  ++seq.tokens;
  return true;
}

void KvAllocator::ReleaseBlock(int32_t block) {
  SPINFER_CHECK(block >= 0 && block < total_blocks_ && ref_count_[block] > 0);
  if (--ref_count_[block] == 0) {
    free_list_.push_back(block);
  }
}

void KvAllocator::RemoveSequence(int64_t seq_id) {
  const auto it = sequences_.find(seq_id);
  if (it == sequences_.end()) {
    return;
  }
  for (int32_t b : it->second.blocks) {
    ReleaseBlock(b);
  }
  sequences_.erase(it);
}

void KvAllocator::TruncateSequence(int64_t seq_id, int64_t tokens) {
  const auto it = sequences_.find(seq_id);
  SPINFER_CHECK_MSG(it != sequences_.end(), "unknown sequence: " << seq_id);
  Sequence& seq = it->second;
  SPINFER_CHECK_MSG(tokens >= 0 && tokens <= seq.tokens,
                    "cannot truncate sequence " << seq_id << " from "
                                                << seq.tokens << " to " << tokens);
  const int64_t keep = BlocksFor(tokens);
  while (static_cast<int64_t>(seq.blocks.size()) > keep) {
    ReleaseBlock(seq.blocks.back());
    seq.blocks.pop_back();
  }
  seq.tokens = tokens;
}

bool KvAllocator::CanFit(int64_t tokens) const {
  return BlocksFor(tokens) <= free_blocks();
}

int64_t KvAllocator::SequenceTokens(int64_t seq_id) const {
  const auto it = sequences_.find(seq_id);
  return it == sequences_.end() ? 0 : it->second.tokens;
}

int64_t KvAllocator::SequenceBlocks(int64_t seq_id) const {
  const auto it = sequences_.find(seq_id);
  return it == sequences_.end() ? 0 : static_cast<int64_t>(it->second.blocks.size());
}

const std::vector<int32_t>* KvAllocator::SequenceBlockList(int64_t seq_id) const {
  const auto it = sequences_.find(seq_id);
  return it == sequences_.end() ? nullptr : &it->second.blocks;
}

int32_t KvAllocator::BlockRefCount(int32_t block) const {
  SPINFER_CHECK(block >= 0 && block < total_blocks_);
  return ref_count_[block];
}

int64_t KvAllocator::WastedTokenSlots() const {
  int64_t waste = 0;
  for (const auto& [id, seq] : sequences_) {
    waste += static_cast<int64_t>(seq.blocks.size()) * config_.block_tokens - seq.tokens;
  }
  return waste;
}

// --- PagedKvCache -----------------------------------------------------------

namespace {

// The internal allocator counts whole blocks; feed it a synthetic byte
// geometry (1 byte per token) so `num_blocks` maps through exactly.
KvAllocatorConfig BookkeepingConfig(const PagedKvCacheConfig& cfg) {
  KvAllocatorConfig acfg;
  acfg.bytes_per_token = 1;
  acfg.block_tokens = cfg.block_tokens;
  acfg.capacity_bytes = static_cast<uint64_t>(cfg.num_blocks) *
                        static_cast<uint64_t>(cfg.block_tokens);
  return acfg;
}

// FNV-1a offset basis doubles as the root of every hash chain (the "parent"
// of a prompt's first block). Deterministic and platform-stable by
// construction — std::hash would tie index behavior to the standard library.
constexpr uint64_t kChainSeed = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t HashMix(uint64_t h, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

// Chained block hash: parent chain hash folded with the block's token ids.
uint64_t ChainBlockHash(uint64_t parent, const int32_t* tokens, int64_t count) {
  uint64_t h = HashMix(parent, 0x626c6f636bull);  // domain-separate from parent
  for (int64_t i = 0; i < count; ++i) {
    h = HashMix(h, static_cast<uint64_t>(static_cast<uint32_t>(tokens[i])));
  }
  return h;
}

}  // namespace

PagedKvCache::PagedKvCache(const PagedKvCacheConfig& config)
    : config_(config), alloc_(BookkeepingConfig(config)) {
  SPINFER_CHECK(config.layers > 0 && config.kv_dim > 0);
  SPINFER_CHECK(config.block_tokens > 0 && config.num_blocks > 0);
  const size_t floats = static_cast<size_t>(config.layers) *
                        static_cast<size_t>(config.num_blocks) *
                        static_cast<size_t>(config.block_tokens) *
                        static_cast<size_t>(config.kv_dim);
  k_pool_.assign(floats, 0.0f);
  v_pool_.assign(floats, 0.0f);
}

bool PagedKvCache::AddSequence(int64_t seq_id, int64_t tokens) {
  return alloc_.AddSequence(seq_id, tokens);
}

PagedKvCache::PrefixMatch PagedKvCache::MatchPrefix(
    const std::vector<int32_t>& prompt_tokens) const {
  PrefixMatch match;
  const int64_t bt = config_.block_tokens;
  const int64_t len = static_cast<int64_t>(prompt_tokens.size());
  // Cap at len-1 tokens: the last prompt position is always recomputed so
  // its logits (which seed generation) come from a live forward pass.
  const int64_t max_blocks = len > 0 ? (len - 1) / bt : 0;
  uint64_t parent = kChainSeed;
  for (int64_t b = 0; b < max_blocks; ++b) {
    const uint64_t h = ChainBlockHash(parent, prompt_tokens.data() + b * bt, bt);
    const auto it = index_.find(h);
    if (it == index_.end()) {
      break;
    }
    // Verify content, not just the 64-bit key: a collision (or a same-key
    // entry from a different parent chain) must degrade to a miss.
    const PrefixEntry& entry = it->second;
    if (entry.parent != parent ||
        !std::equal(entry.tokens.begin(), entry.tokens.end(),
                    prompt_tokens.begin() + b * bt)) {
      break;
    }
    match.blocks.push_back(entry.block);
    match.tokens += bt;
    parent = h;
  }
  return match;
}

bool PagedKvCache::AddSequenceSharing(int64_t seq_id, int64_t tokens,
                                      const PrefixMatch& match) {
  SPINFER_CHECK(match.tokens ==
                static_cast<int64_t>(match.blocks.size()) * config_.block_tokens);
  SPINFER_CHECK(match.tokens <= tokens);
  return alloc_.AddSequenceSharing(seq_id, tokens, match.blocks);
}

void PagedKvCache::IndexPrefix(int64_t seq_id,
                               const std::vector<int32_t>& prompt_tokens,
                               int64_t filled) {
  const std::vector<int32_t>* blocks = alloc_.SequenceBlockList(seq_id);
  SPINFER_CHECK_MSG(blocks != nullptr, "unknown sequence: " << seq_id);
  const int64_t bt = config_.block_tokens;
  const int64_t len = static_cast<int64_t>(prompt_tokens.size());
  SPINFER_CHECK(filled <= alloc_.SequenceTokens(seq_id) && filled <= len);
  // Same len-1 cap as MatchPrefix: never index the block holding the final
  // prompt position unless earlier tokens fill it anyway.
  const int64_t indexable = std::min(filled, len > 0 ? len - 1 : 0) / bt;
  uint64_t parent = kChainSeed;
  for (int64_t b = 0; b < indexable; ++b) {
    const uint64_t h = ChainBlockHash(parent, prompt_tokens.data() + b * bt, bt);
    const int32_t block = (*blocks)[static_cast<size_t>(b)];
    if (index_.find(h) == index_.end() && block_hash_.count(block) == 0) {
      // Otherwise: first writer wins on the hash (sharing chains through the
      // incumbent block), or this block is already filed under another
      // chain. Either way keep walking — later blocks of this prompt may
      // extend a prefix the incumbent stops at.
      PrefixEntry entry;
      entry.block = block;
      entry.parent = parent;
      entry.tokens.assign(prompt_tokens.begin() + b * bt,
                          prompt_tokens.begin() + (b + 1) * bt);
      index_.emplace(h, std::move(entry));
      block_hash_.emplace(block, h);
    }
    parent = h;
  }
}

void PagedKvCache::DeindexBlock(int32_t block) {
  const auto it = block_hash_.find(block);
  if (it == block_hash_.end()) {
    return;
  }
  index_.erase(it->second);
  block_hash_.erase(it);
}

void PagedKvCache::CopyBlockPrefix(int32_t old_block, int32_t new_block,
                                   int64_t slots) {
  if (slots <= 0) {
    return;
  }
  const int64_t row_floats = config_.block_tokens * config_.kv_dim;
  const size_t bytes = static_cast<size_t>(slots * config_.kv_dim) * sizeof(float);
  for (int64_t layer = 0; layer < config_.layers; ++layer) {
    const int64_t src = (layer * config_.num_blocks + old_block) * row_floats;
    const int64_t dst = (layer * config_.num_blocks + new_block) * row_floats;
    std::memcpy(k_pool_.data() + dst, k_pool_.data() + src, bytes);
    std::memcpy(v_pool_.data() + dst, v_pool_.data() + src, bytes);
  }
}

bool PagedKvCache::AppendToken(int64_t seq_id) {
  const int64_t tokens_before = alloc_.SequenceTokens(seq_id);
  CowRemap remap;
  if (!alloc_.AppendToken(seq_id, &remap)) {
    return false;
  }
  if (remap.happened) {
    // The already-written slots of the shared block must follow the remap so
    // the sequence keeps reading its own history bit-for-bit.
    CopyBlockPrefix(remap.old_block, remap.new_block,
                    tokens_before % config_.block_tokens);
    ++cow_copies_;
  }
  // Whichever block now holds the new slot is about to receive a write its
  // index entry (if any) does not describe — retire the entry. Shared
  // holders were detached by the CoW above, so only this sequence sees the
  // divergence.
  const std::vector<int32_t>* blocks = alloc_.SequenceBlockList(seq_id);
  DeindexBlock((*blocks)[static_cast<size_t>(tokens_before / config_.block_tokens)]);
  return true;
}

void PagedKvCache::RemoveSequence(int64_t seq_id) {
  const std::vector<int32_t>* blocks = alloc_.SequenceBlockList(seq_id);
  if (blocks == nullptr) {
    return;
  }
  const std::vector<int32_t> held = *blocks;
  alloc_.RemoveSequence(seq_id);
  for (int32_t b : held) {
    if (alloc_.BlockRefCount(b) == 0) {
      DeindexBlock(b);
    }
  }
}

void PagedKvCache::TruncateSequence(int64_t seq_id, int64_t tokens) {
  const std::vector<int32_t>* blocks = alloc_.SequenceBlockList(seq_id);
  SPINFER_CHECK_MSG(blocks != nullptr, "unknown sequence: " << seq_id);
  const std::vector<int32_t> held = *blocks;
  alloc_.TruncateSequence(seq_id, tokens);
  for (int32_t b : held) {
    if (alloc_.BlockRefCount(b) == 0) {
      DeindexBlock(b);
    }
  }
}

int64_t PagedKvCache::SlotIndex(int64_t layer, int64_t seq_id, int64_t token) const {
  SPINFER_CHECK(layer >= 0 && layer < config_.layers);
  const std::vector<int32_t>* blocks = alloc_.SequenceBlockList(seq_id);
  SPINFER_CHECK_MSG(blocks != nullptr, "unknown sequence: " << seq_id);
  SPINFER_CHECK_MSG(token >= 0 && token < alloc_.SequenceTokens(seq_id),
                    "token slot " << token << " out of range for sequence "
                                  << seq_id);
  const int64_t block = (*blocks)[static_cast<size_t>(token / config_.block_tokens)];
  const int64_t offset = token % config_.block_tokens;
  return ((layer * config_.num_blocks + block) * config_.block_tokens + offset) *
         config_.kv_dim;
}

float* PagedKvCache::KRow(int64_t layer, int64_t seq_id, int64_t token) {
  return k_pool_.data() + SlotIndex(layer, seq_id, token);
}

const float* PagedKvCache::KRow(int64_t layer, int64_t seq_id, int64_t token) const {
  return k_pool_.data() + SlotIndex(layer, seq_id, token);
}

float* PagedKvCache::VRow(int64_t layer, int64_t seq_id, int64_t token) {
  return v_pool_.data() + SlotIndex(layer, seq_id, token);
}

const float* PagedKvCache::VRow(int64_t layer, int64_t seq_id, int64_t token) const {
  return v_pool_.data() + SlotIndex(layer, seq_id, token);
}

const float* PagedKvCache::KBlockBase(int64_t layer, int32_t block) const {
  return k_pool_.data() +
         (layer * config_.num_blocks + block) * config_.block_tokens * config_.kv_dim;
}

const float* PagedKvCache::VBlockBase(int64_t layer, int32_t block) const {
  return v_pool_.data() +
         (layer * config_.num_blocks + block) * config_.block_tokens * config_.kv_dim;
}

bool MigrateKvSequence(PagedKvCache* from, PagedKvCache* to, int64_t seq_id) {
  SPINFER_CHECK(from != nullptr && to != nullptr && from != to);
  SPINFER_CHECK_EQ(from->config().layers, to->config().layers);
  SPINFER_CHECK_EQ(from->config().kv_dim, to->config().kv_dim);
  SPINFER_CHECK_EQ(from->config().block_tokens, to->config().block_tokens);
  const int64_t tokens = from->SequenceTokens(seq_id);
  if (tokens <= 0) {
    return false;  // unknown to the source pool
  }
  SPINFER_CHECK_MSG(to->SequenceTokens(seq_id) == 0,
                    "sequence " << seq_id << " already lives in the target pool");
  // Allocate first, copy, release last: a failed allocation leaves both
  // pools untouched, and the source rows stay readable while copied.
  if (!to->AddSequence(seq_id, tokens)) {
    return false;
  }
  const int64_t layers = from->config().layers;
  const int64_t kv_dim = from->config().kv_dim;
  for (int64_t layer = 0; layer < layers; ++layer) {
    for (int64_t t = 0; t < tokens; ++t) {
      const float* ksrc = from->KRow(layer, seq_id, t);
      const float* vsrc = from->VRow(layer, seq_id, t);
      std::copy(ksrc, ksrc + kv_dim, to->KRow(layer, seq_id, t));
      std::copy(vsrc, vsrc + kv_dim, to->VRow(layer, seq_id, t));
    }
  }
  from->RemoveSequence(seq_id);
  return true;
}

}  // namespace spinfer
