#include "src/llm/kv_allocator.h"

#include "src/util/check.h"

namespace spinfer {

KvAllocator::KvAllocator(const KvAllocatorConfig& config) : config_(config) {
  SPINFER_CHECK(config.block_tokens > 0);
  SPINFER_CHECK(config.bytes_per_token > 0);
  const uint64_t block_bytes =
      config.bytes_per_token * static_cast<uint64_t>(config.block_tokens);
  total_blocks_ = static_cast<int64_t>(config.capacity_bytes / block_bytes);
  free_list_.reserve(static_cast<size_t>(total_blocks_));
  // LIFO free list; block ids descend so block 0 is handed out first.
  for (int64_t b = total_blocks_ - 1; b >= 0; --b) {
    free_list_.push_back(static_cast<int32_t>(b));
  }
}

bool KvAllocator::AddSequence(int64_t seq_id, int64_t prompt_tokens) {
  SPINFER_CHECK(prompt_tokens >= 0);
  SPINFER_CHECK_MSG(sequences_.find(seq_id) == sequences_.end(),
                    "sequence id already registered: " << seq_id);
  const int64_t need = BlocksFor(prompt_tokens);
  if (need > free_blocks()) {
    return false;
  }
  Sequence seq;
  seq.tokens = prompt_tokens;
  seq.blocks.reserve(static_cast<size_t>(need));
  for (int64_t i = 0; i < need; ++i) {
    seq.blocks.push_back(free_list_.back());
    free_list_.pop_back();
  }
  sequences_.emplace(seq_id, std::move(seq));
  return true;
}

bool KvAllocator::AppendToken(int64_t seq_id) {
  const auto it = sequences_.find(seq_id);
  SPINFER_CHECK_MSG(it != sequences_.end(), "unknown sequence: " << seq_id);
  Sequence& seq = it->second;
  if (BlocksFor(seq.tokens + 1) > static_cast<int64_t>(seq.blocks.size())) {
    if (free_list_.empty()) {
      return false;
    }
    seq.blocks.push_back(free_list_.back());
    free_list_.pop_back();
  }
  ++seq.tokens;
  return true;
}

void KvAllocator::RemoveSequence(int64_t seq_id) {
  const auto it = sequences_.find(seq_id);
  if (it == sequences_.end()) {
    return;
  }
  for (int32_t b : it->second.blocks) {
    free_list_.push_back(b);
  }
  sequences_.erase(it);
}

void KvAllocator::TruncateSequence(int64_t seq_id, int64_t tokens) {
  const auto it = sequences_.find(seq_id);
  SPINFER_CHECK_MSG(it != sequences_.end(), "unknown sequence: " << seq_id);
  Sequence& seq = it->second;
  SPINFER_CHECK_MSG(tokens >= 0 && tokens <= seq.tokens,
                    "cannot truncate sequence " << seq_id << " from "
                                                << seq.tokens << " to " << tokens);
  const int64_t keep = BlocksFor(tokens);
  while (static_cast<int64_t>(seq.blocks.size()) > keep) {
    free_list_.push_back(seq.blocks.back());
    seq.blocks.pop_back();
  }
  seq.tokens = tokens;
}

bool KvAllocator::CanFit(int64_t tokens) const {
  return BlocksFor(tokens) <= free_blocks();
}

int64_t KvAllocator::SequenceTokens(int64_t seq_id) const {
  const auto it = sequences_.find(seq_id);
  return it == sequences_.end() ? 0 : it->second.tokens;
}

int64_t KvAllocator::SequenceBlocks(int64_t seq_id) const {
  const auto it = sequences_.find(seq_id);
  return it == sequences_.end() ? 0 : static_cast<int64_t>(it->second.blocks.size());
}

const std::vector<int32_t>* KvAllocator::SequenceBlockList(int64_t seq_id) const {
  const auto it = sequences_.find(seq_id);
  return it == sequences_.end() ? nullptr : &it->second.blocks;
}

int64_t KvAllocator::WastedTokenSlots() const {
  int64_t waste = 0;
  for (const auto& [id, seq] : sequences_) {
    waste += static_cast<int64_t>(seq.blocks.size()) * config_.block_tokens - seq.tokens;
  }
  return waste;
}

// --- PagedKvCache -----------------------------------------------------------

namespace {

// The internal allocator counts whole blocks; feed it a synthetic byte
// geometry (1 byte per token) so `num_blocks` maps through exactly.
KvAllocatorConfig BookkeepingConfig(const PagedKvCacheConfig& cfg) {
  KvAllocatorConfig acfg;
  acfg.bytes_per_token = 1;
  acfg.block_tokens = cfg.block_tokens;
  acfg.capacity_bytes = static_cast<uint64_t>(cfg.num_blocks) *
                        static_cast<uint64_t>(cfg.block_tokens);
  return acfg;
}

}  // namespace

PagedKvCache::PagedKvCache(const PagedKvCacheConfig& config)
    : config_(config), alloc_(BookkeepingConfig(config)) {
  SPINFER_CHECK(config.layers > 0 && config.kv_dim > 0);
  SPINFER_CHECK(config.block_tokens > 0 && config.num_blocks > 0);
  const size_t floats = static_cast<size_t>(config.layers) *
                        static_cast<size_t>(config.num_blocks) *
                        static_cast<size_t>(config.block_tokens) *
                        static_cast<size_t>(config.kv_dim);
  k_pool_.assign(floats, 0.0f);
  v_pool_.assign(floats, 0.0f);
}

bool PagedKvCache::AddSequence(int64_t seq_id, int64_t tokens) {
  return alloc_.AddSequence(seq_id, tokens);
}

bool PagedKvCache::AppendToken(int64_t seq_id) { return alloc_.AppendToken(seq_id); }

void PagedKvCache::RemoveSequence(int64_t seq_id) { alloc_.RemoveSequence(seq_id); }

void PagedKvCache::TruncateSequence(int64_t seq_id, int64_t tokens) {
  alloc_.TruncateSequence(seq_id, tokens);
}

int64_t PagedKvCache::SlotIndex(int64_t layer, int64_t seq_id, int64_t token) const {
  SPINFER_CHECK(layer >= 0 && layer < config_.layers);
  const std::vector<int32_t>* blocks = alloc_.SequenceBlockList(seq_id);
  SPINFER_CHECK_MSG(blocks != nullptr, "unknown sequence: " << seq_id);
  SPINFER_CHECK_MSG(token >= 0 && token < alloc_.SequenceTokens(seq_id),
                    "token slot " << token << " out of range for sequence "
                                  << seq_id);
  const int64_t block = (*blocks)[static_cast<size_t>(token / config_.block_tokens)];
  const int64_t offset = token % config_.block_tokens;
  return ((layer * config_.num_blocks + block) * config_.block_tokens + offset) *
         config_.kv_dim;
}

float* PagedKvCache::KRow(int64_t layer, int64_t seq_id, int64_t token) {
  return k_pool_.data() + SlotIndex(layer, seq_id, token);
}

const float* PagedKvCache::KRow(int64_t layer, int64_t seq_id, int64_t token) const {
  return k_pool_.data() + SlotIndex(layer, seq_id, token);
}

float* PagedKvCache::VRow(int64_t layer, int64_t seq_id, int64_t token) {
  return v_pool_.data() + SlotIndex(layer, seq_id, token);
}

const float* PagedKvCache::VRow(int64_t layer, int64_t seq_id, int64_t token) const {
  return v_pool_.data() + SlotIndex(layer, seq_id, token);
}

const float* PagedKvCache::KBlockBase(int64_t layer, int32_t block) const {
  return k_pool_.data() +
         (layer * config_.num_blocks + block) * config_.block_tokens * config_.kv_dim;
}

const float* PagedKvCache::VBlockBase(int64_t layer, int32_t block) const {
  return v_pool_.data() +
         (layer * config_.num_blocks + block) * config_.block_tokens * config_.kv_dim;
}

}  // namespace spinfer
