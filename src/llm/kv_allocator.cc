#include "src/llm/kv_allocator.h"

#include "src/util/check.h"

namespace spinfer {

KvAllocator::KvAllocator(const KvAllocatorConfig& config) : config_(config) {
  SPINFER_CHECK(config.block_tokens > 0);
  SPINFER_CHECK(config.bytes_per_token > 0);
  const uint64_t block_bytes =
      config.bytes_per_token * static_cast<uint64_t>(config.block_tokens);
  total_blocks_ = static_cast<int64_t>(config.capacity_bytes / block_bytes);
  free_list_.reserve(static_cast<size_t>(total_blocks_));
  // LIFO free list; block ids descend so block 0 is handed out first.
  for (int64_t b = total_blocks_ - 1; b >= 0; --b) {
    free_list_.push_back(static_cast<int32_t>(b));
  }
}

bool KvAllocator::AddSequence(int64_t seq_id, int64_t prompt_tokens) {
  SPINFER_CHECK(prompt_tokens >= 0);
  SPINFER_CHECK_MSG(sequences_.find(seq_id) == sequences_.end(),
                    "sequence id already registered: " << seq_id);
  const int64_t need = BlocksFor(prompt_tokens);
  if (need > free_blocks()) {
    return false;
  }
  Sequence seq;
  seq.tokens = prompt_tokens;
  seq.blocks.reserve(static_cast<size_t>(need));
  for (int64_t i = 0; i < need; ++i) {
    seq.blocks.push_back(free_list_.back());
    free_list_.pop_back();
  }
  sequences_.emplace(seq_id, std::move(seq));
  return true;
}

bool KvAllocator::AppendToken(int64_t seq_id) {
  const auto it = sequences_.find(seq_id);
  SPINFER_CHECK_MSG(it != sequences_.end(), "unknown sequence: " << seq_id);
  Sequence& seq = it->second;
  if (BlocksFor(seq.tokens + 1) > static_cast<int64_t>(seq.blocks.size())) {
    if (free_list_.empty()) {
      return false;
    }
    seq.blocks.push_back(free_list_.back());
    free_list_.pop_back();
  }
  ++seq.tokens;
  return true;
}

void KvAllocator::RemoveSequence(int64_t seq_id) {
  const auto it = sequences_.find(seq_id);
  if (it == sequences_.end()) {
    return;
  }
  for (int32_t b : it->second.blocks) {
    free_list_.push_back(b);
  }
  sequences_.erase(it);
}

bool KvAllocator::CanFit(int64_t tokens) const {
  return BlocksFor(tokens) <= free_blocks();
}

int64_t KvAllocator::SequenceTokens(int64_t seq_id) const {
  const auto it = sequences_.find(seq_id);
  return it == sequences_.end() ? 0 : it->second.tokens;
}

int64_t KvAllocator::SequenceBlocks(int64_t seq_id) const {
  const auto it = sequences_.find(seq_id);
  return it == sequences_.end() ? 0 : static_cast<int64_t>(it->second.blocks.size());
}

int64_t KvAllocator::WastedTokenSlots() const {
  int64_t waste = 0;
  for (const auto& [id, seq] : sequences_) {
    waste += static_cast<int64_t>(seq.blocks.size()) * config_.block_tokens - seq.tokens;
  }
  return waste;
}

}  // namespace spinfer
