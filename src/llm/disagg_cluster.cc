#include "src/llm/disagg_cluster.h"

#include <algorithm>
#include <cstdio>
#include <deque>

#include "src/llm/attention.h"
#include "src/llm/kv_allocator.h"
#include "src/util/check.h"

namespace spinfer {

std::string DisaggClusterReport::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "arrived=%lld rejected=%lld completed=%lld prefills=%lld "
      "migrations=%lld decode_iters=%lld peak_decode_batch=%lld sim_s=%.6f "
      "ttft_ms{mean=%.6f p50=%.6f p95=%.6f p99=%.6f} "
      "lat_ms{mean=%.6f p50=%.6f p95=%.6f p99=%.6f}",
      static_cast<long long>(arrived), static_cast<long long>(rejected),
      static_cast<long long>(completed), static_cast<long long>(prefills),
      static_cast<long long>(migrations),
      static_cast<long long>(decode_iterations),
      static_cast<long long>(peak_decode_batch), sim_time_s, ttft.mean_ms,
      ttft.p50_ms, ttft.p95_ms, ttft.p99_ms, latency.mean_ms, latency.p50_ms,
      latency.p95_ms, latency.p99_ms);
  return std::string(buf);
}

DisaggCluster::DisaggCluster(const TinyTransformer* model,
                             const DisaggClusterConfig& cfg)
    : model_(model), cfg_(cfg) {
  SPINFER_CHECK(model != nullptr);
  SPINFER_CHECK(cfg.prefill_instances >= 0 && cfg.decode_instances >= 0);
  SPINFER_CHECK(cfg.max_decode_batch > 0);
  samples_.resize(static_cast<size_t>(std::max<int64_t>(cfg.decode_instances, 0)));
}

int64_t DisaggCluster::Submit(std::vector<int32_t> prompt,
                              int64_t max_new_tokens, double arrival_s) {
  SPINFER_CHECK(!ran_);
  RequestRecord r;
  r.id = static_cast<int64_t>(records_.size());
  r.prompt = std::move(prompt);
  r.max_new_tokens = max_new_tokens;
  r.arrival_s = arrival_s;
  records_.push_back(std::move(r));
  return records_.back().id;
}

const std::vector<DisaggIterationSample>& DisaggCluster::decode_samples(
    int64_t instance) const {
  SPINFER_CHECK(instance >= 0 &&
                instance < static_cast<int64_t>(samples_.size()));
  return samples_[static_cast<size_t>(instance)];
}

DisaggClusterReport DisaggCluster::Run() {
  SPINFER_CHECK(!ran_);
  ran_ = true;
  DisaggClusterReport report;
  report.arrived = static_cast<int64_t>(records_.size());

  // An unusable topology rejects everything — gracefully, not as UB or a
  // CHECK: the caller asked an empty cluster to serve.
  const bool usable = cfg_.prefill_instances > 0 && cfg_.decode_instances > 0;

  struct PrefillInstance {
    PagedKvCache cache;
    double free_at_s = 0.0;
    explicit PrefillInstance(const PagedKvCacheConfig& kv) : cache(kv) {}
  };
  struct Handoff {
    int64_t id = 0;
    double ready_s = 0.0;       // transfer complete; admissible from here
    int64_t prefill_inst = 0;   // whose pool still holds the KV
  };
  struct DecodeInstance {
    PagedKvCache cache;
    std::deque<Handoff> queue;  // (ready, id) order
    int64_t assigned = 0;       // router load counter
    explicit DecodeInstance(const PagedKvCacheConfig& kv) : cache(kv) {}
  };

  const PagedKvCacheConfig kv =
      model_->KvCacheConfig(cfg_.kv_block_tokens, cfg_.kv_num_blocks);
  std::vector<PrefillInstance> prefills;
  std::vector<DecodeInstance> decodes;
  if (usable) {
    prefills.reserve(static_cast<size_t>(cfg_.prefill_instances));
    for (int64_t i = 0; i < cfg_.prefill_instances; ++i) {
      prefills.emplace_back(kv);
    }
    decodes.reserve(static_cast<size_t>(cfg_.decode_instances));
    for (int64_t i = 0; i < cfg_.decode_instances; ++i) {
      decodes.emplace_back(kv);
    }
  }

  // ---- Phase A: prefill scheduling + execution + handoff routing. ----------
  // One prompt at a time per instance; earliest-free instance wins, ties to
  // the lowest index — an analytic schedule over the virtual clock, executed
  // for real in schedule order.
  std::vector<int64_t> order(records_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int64_t>(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return records_[static_cast<size_t>(a)].arrival_s <
           records_[static_cast<size_t>(b)].arrival_s;
  });

  const int64_t max_seq = model_->config().max_seq;
  double sim_end_s = 0.0;
  for (const int64_t id : order) {
    RequestRecord& r = records_[static_cast<size_t>(id)];
    const int64_t len = static_cast<int64_t>(r.prompt.size());
    const bool servable =
        usable && len > 0 && r.max_new_tokens > 0 &&
        len + r.max_new_tokens <= max_seq &&
        prefills[0].cache.BlocksForTokens(len) <=
            prefills[0].cache.total_blocks() &&
        decodes[0].cache.BlocksForTokens(len + r.max_new_tokens) <=
            decodes[0].cache.total_blocks();
    if (!servable) {
      r.reason = FinishReason::kRejected;
      ++report.rejected;
      continue;
    }

    int64_t best = 0;
    for (int64_t i = 1; i < cfg_.prefill_instances; ++i) {
      if (prefills[static_cast<size_t>(i)].free_at_s <
          prefills[static_cast<size_t>(best)].free_at_s) {
        best = i;
      }
    }
    PrefillInstance& inst = prefills[static_cast<size_t>(best)];
    // A resident sequence waiting on decode admission still holds its blocks
    // here; a full pool is transient backpressure for a real cluster but a
    // sizing error for this virtual-clock executor — reject, don't wedge.
    if (!inst.cache.AddSequence(r.id, len)) {
      r.reason = FinishReason::kRejected;
      ++report.rejected;
      continue;
    }
    const double start_s = std::max(r.arrival_s, inst.free_at_s);
    const double prefill_ms =
        PrefillTimeUs(cfg_.prefill_cost, /*batch=*/1, len) / 1e3;
    const double done_s = start_s + prefill_ms / 1e3;
    inst.free_at_s = done_s;
    ++report.prefills;

    const FloatMatrix logits =
        model_->Prefill(r.prompt, cfg_.backend, &inst.cache, r.id);
    r.generated.push_back(GreedyToken(logits, len - 1));

    // KV handoff: the prompt's cache pages cross the fabric once, priced on
    // the cost model (the executing tiny pools are stand-ins).
    const double transfer_ms =
        static_cast<double>(
            KvCacheBytes(cfg_.prefill_cost.model, /*batch=*/1, len, 1)) /
        (cfg_.transfer_bw_gbs * 1e6);
    const double ready_s = done_s + transfer_ms / 1e3;
    r.admit_s = start_s;
    r.first_token_s = ready_s;
    r.ttft_ms = (ready_s - r.arrival_s) * 1e3;

    if (r.max_new_tokens == 1) {
      // The prefill token already met the budget; no decode admission.
      inst.cache.RemoveSequence(r.id);
      r.finish_s = ready_s;
      r.latency_ms = (ready_s - r.arrival_s) * 1e3;
      r.reason = FinishReason::kMaxTokens;
      ++report.completed;
      sim_end_s = std::max(sim_end_s, ready_s);
      continue;
    }

    int64_t target = 0;
    for (int64_t i = 1; i < cfg_.decode_instances; ++i) {
      if (decodes[static_cast<size_t>(i)].assigned <
          decodes[static_cast<size_t>(target)].assigned) {
        target = i;
      }
    }
    decodes[static_cast<size_t>(target)].queue.push_back(
        Handoff{r.id, ready_s, best});
    ++decodes[static_cast<size_t>(target)].assigned;
  }

  // ---- Phase B: per-decode-instance continuous batching. -------------------
  // Iterate the pools actually built: an unusable topology built none.
  for (int64_t di = 0; di < static_cast<int64_t>(decodes.size()); ++di) {
    DecodeInstance& inst = decodes[static_cast<size_t>(di)];
    std::stable_sort(inst.queue.begin(), inst.queue.end(),
                     [](const Handoff& a, const Handoff& b) {
                       return a.ready_s < b.ready_s;
                     });
    std::vector<int64_t> active;
    std::vector<DisaggIterationSample>& samples =
        samples_[static_cast<size_t>(di)];
    double now_s = 0.0;

    std::vector<int64_t> dec_ids;
    std::vector<int32_t> dec_last, dec_next;
    while (!inst.queue.empty() || !active.empty()) {
      if (active.empty() && !inst.queue.empty()) {
        now_s = std::max(now_s, inst.queue.front().ready_s);
      }
      // Growth-reserve admission (ServingEngine's invariant): admit only
      // while the pool covers the newcomer's blocks now plus everyone's
      // worst-case growth to prompt + max_new, so AppendToken cannot fail.
      while (!inst.queue.empty() &&
             inst.queue.front().ready_s <= now_s &&
             static_cast<int64_t>(active.size()) < cfg_.max_decode_batch) {
        const Handoff h = inst.queue.front();
        const RequestRecord& r = records_[static_cast<size_t>(h.id)];
        const int64_t full = static_cast<int64_t>(r.prompt.size()) +
                             r.max_new_tokens;
        int64_t reserve = 0;
        for (const int64_t aid : active) {
          const RequestRecord& ar = records_[static_cast<size_t>(aid)];
          reserve +=
              inst.cache.BlocksForTokens(static_cast<int64_t>(ar.prompt.size()) +
                                         ar.max_new_tokens) -
              inst.cache.BlocksForTokens(inst.cache.SequenceTokens(aid));
        }
        const int64_t fresh = inst.cache.BlocksForTokens(
            static_cast<int64_t>(r.prompt.size()));
        const int64_t growth = inst.cache.BlocksForTokens(full) - fresh;
        if (inst.cache.used_blocks() + fresh + growth + reserve >
            inst.cache.total_blocks()) {
          break;  // wait for a retirement to free blocks
        }
        SPINFER_CHECK(MigrateKvSequence(
            &prefills[static_cast<size_t>(h.prefill_inst)].cache, &inst.cache,
            h.id));
        ++report.migrations;
        active.push_back(h.id);
        inst.queue.pop_front();
      }
      if (active.empty()) {
        continue;  // clock advanced to the next handoff above
      }

      dec_ids.clear();
      dec_last.clear();
      for (const int64_t id : active) {
        const RequestRecord& r = records_[static_cast<size_t>(id)];
        dec_ids.push_back(id);
        dec_last.push_back(r.generated.back());
      }
      model_->DecodeStep(dec_ids, dec_last, cfg_.backend, &inst.cache,
                         &dec_next);
      int64_t context_sum = 0;
      for (size_t i = 0; i < active.size(); ++i) {
        RequestRecord& r = records_[static_cast<size_t>(active[i])];
        r.generated.push_back(dec_next[i]);
        // ServingEngine's context expression, post-push: prompt +
        // (generated - 1) + 1.
        context_sum += static_cast<int64_t>(r.prompt.size()) +
                       (static_cast<int64_t>(r.generated.size()) - 1) + 1;
      }
      const int64_t batch = static_cast<int64_t>(active.size());
      const double cost_us = DecodeStepTimeUs(cfg_.decode_cost, batch,
                                              context_sum / batch);
      samples.push_back(
          DisaggIterationSample{batch, context_sum / batch, cost_us});
      ++report.decode_iterations;
      report.peak_decode_batch = std::max(report.peak_decode_batch, batch);
      now_s += cost_us / 1e6;

      for (size_t i = 0; i < active.size();) {
        RequestRecord& r = records_[static_cast<size_t>(active[i])];
        if (static_cast<int64_t>(r.generated.size()) >= r.max_new_tokens) {
          inst.cache.RemoveSequence(r.id);
          r.finish_s = now_s;
          r.latency_ms = (now_s - r.arrival_s) * 1e3;
          r.reason = FinishReason::kMaxTokens;
          ++report.completed;
          active.erase(active.begin() + static_cast<int64_t>(i));
        } else {
          ++i;
        }
      }
    }
    sim_end_s = std::max(sim_end_s, now_s);
  }

  report.sim_time_s = sim_end_s;
  std::vector<double> ttfts, lats;
  for (const RequestRecord& r : records_) {
    if (r.reason == FinishReason::kMaxTokens) {
      ttfts.push_back(r.ttft_ms);
      lats.push_back(r.latency_ms);
    }
  }
  report.ttft = SummarizeLatenciesMs(std::move(ttfts));
  report.latency = SummarizeLatenciesMs(std::move(lats));
  return report;
}

}  // namespace spinfer
