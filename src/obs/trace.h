// Tracing core: thread-safe span collection with near-zero disabled cost.
//
// Model: a *span* is one timed interval on one thread — name (a string
// literal or an interned string), start, duration, and up to kTraceMaxArgs
// integer arguments. Spans are recorded through the RAII TraceScope (or the
// SPINFER_TRACE_SCOPE macros) into per-thread append-only buffers and
// serialized to Chrome trace-event JSON by ChromeTraceWriter
// (src/obs/chrome_trace.h), loadable in Perfetto / chrome://tracing.
//
// Cost contract:
//   * Tracing DISABLED (default): every instrumentation site costs exactly
//     one branch on a relaxed atomic flag (TracingEnabled()). Hot loops that
//     cannot afford even that hoist the check and pass a null recorder (see
//     src/core/cpu_backend.cc).
//   * Tracing ENABLED: a span costs two Clock reads plus one write into the
//     recording thread's own buffer. The writer path is lock-free: each
//     thread appends to a chunked log it alone writes, publishing the event
//     count with a release store; no mutex, no CAS, no cross-thread cache
//     traffic on the hot path. (The only lock is a one-time registration per
//     thread.)
//   * Compiled OUT (-DSPINFER_TRACING_DISABLED): the macros expand to
//     nothing and TracingEnabled() is a constant false, so instrumented
//     branches fold away entirely. Start() still parses but records nothing.
//
// Determinism contract: recording spans never touches instrumented
// computations — outputs and PerfCounters are bit-identical with tracing on
// or off (tests/obs_bit_identity_test.cc enforces this).
//
// Lifecycle: Tracer::Global().Start(clock) → instrumented code runs →
// Stop() → Drain() → ChromeTraceWriter. Drain() requires quiescence (no
// instrumented code in flight); Start/Stop must not race instrumented calls.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/clock.h"

namespace spinfer {
namespace obs {

// Maximum integer arguments attached to one span. Fixed so TraceEvent stays
// POD and recording never allocates.
inline constexpr int kTraceMaxArgs = 6;

struct TraceArg {
  const char* name = nullptr;  // static literal
  int64_t value = 0;
};

struct TraceEvent {
  const char* name = nullptr;  // static literal or Tracer::InternName result
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;  // registration-order thread index, stable per thread
  uint32_t num_args = 0;
  TraceArg args[kTraceMaxArgs];
};

namespace trace_detail {
// Process-wide enable flag. Inline so every TU branches on the same atomic.
inline std::atomic<bool> g_tracing_enabled{false};
}  // namespace trace_detail

#ifdef SPINFER_TRACING_DISABLED
constexpr bool TracingEnabled() { return false; }
#else
inline bool TracingEnabled() {
  return trace_detail::g_tracing_enabled.load(std::memory_order_relaxed);
}
#endif

class Tracer {
 public:
  // The process-wide tracer every macro records into.
  static Tracer& Global();

  // Enables recording. `clock` is borrowed (caller keeps it alive until the
  // next Start/Reset); nullptr selects the built-in SteadyClock. Events
  // recorded in earlier Start/Stop windows are kept until Reset.
  void Start(Clock* clock = nullptr);
  void Stop();

  uint64_t NowNs();

  // Appends one finished span to the calling thread's buffer. No-op when
  // tracing is disabled. `args` is copied (at most kTraceMaxArgs entries).
  void Record(const char* name, uint64_t start_ns, uint64_t dur_ns,
              const TraceArg* args = nullptr, int num_args = 0);

  // Copies a dynamic name into tracer-owned storage and returns a pointer
  // valid until Reset(). For span names built at runtime (bench names);
  // static literals should be passed to Record/TraceScope directly. Takes a
  // mutex — do not call per-event in hot loops.
  const char* InternName(const std::string& name);

  // Snapshot of every recorded event, in (tid, append) order. Requires
  // quiescence: call after Stop(), with no instrumented code in flight.
  // Non-destructive; repeated calls return the same (or a grown) list.
  std::vector<TraceEvent> Drain();

  // Drops all events, interned names and thread buffers, and re-arms
  // per-thread registration. Requires quiescence. Primarily for tests.
  void Reset();

  ~Tracer();

 private:
  struct ThreadLog;
  struct Impl;
  Tracer();
  ThreadLog* LogForThisThread();

  Impl* impl_;
};

// RAII span: times its scope and records on destruction. Constructing while
// tracing is disabled costs the one-branch check and nothing else.
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (!TracingEnabled()) {
      return;
    }
    name_ = name;
    start_ns_ = Tracer::Global().NowNs();
  }
  TraceScope(const char* name, const char* arg_name, int64_t arg_value)
      : TraceScope(name) {
    if (name_ != nullptr) {
      args_[0] = TraceArg{arg_name, arg_value};
      num_args_ = 1;
    }
  }
  ~TraceScope() {
    if (name_ != nullptr) {
      Tracer& t = Tracer::Global();
      t.Record(name_, start_ns_, t.NowNs() - start_ns_, args_, num_args_);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  // Attach an argument after construction (e.g. a result computed in the
  // scope). Ignored when the scope is inactive or args are full.
  void AddArg(const char* arg_name, int64_t value) {
    if (name_ != nullptr && num_args_ < kTraceMaxArgs) {
      args_[num_args_++] = TraceArg{arg_name, value};
    }
  }

  bool active() const { return name_ != nullptr; }
  uint64_t start_ns() const { return start_ns_; }

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint32_t num_args_ = 0;
  TraceArg args_[kTraceMaxArgs];
};

// Convenience: Start tracing now and, at process exit, Stop + write the
// Chrome trace JSON to `path` (prints the path written). Used by the bench
// harness's --trace flag.
void EnableTracingToFileAtExit(const std::string& path);

#define SPINFER_TRACE_CONCAT_INNER(a, b) a##b
#define SPINFER_TRACE_CONCAT(a, b) SPINFER_TRACE_CONCAT_INNER(a, b)

#ifdef SPINFER_TRACING_DISABLED
#define SPINFER_TRACE_SCOPE(name) \
  do {                            \
  } while (false)
#define SPINFER_TRACE_SCOPE_ARG(name, arg_name, arg_value) \
  do {                                                     \
  } while (false)
#else
// One span covering the rest of the enclosing scope.
#define SPINFER_TRACE_SCOPE(name)                                    \
  ::spinfer::obs::TraceScope SPINFER_TRACE_CONCAT(spinfer_trace_ts_, \
                                                  __COUNTER__)(name)
// Same, with one integer argument (e.g. a layer index).
#define SPINFER_TRACE_SCOPE_ARG(name, arg_name, arg_value)           \
  ::spinfer::obs::TraceScope SPINFER_TRACE_CONCAT(spinfer_trace_ts_, \
                                                  __COUNTER__)(name, arg_name, \
                                                               arg_value)
#endif

}  // namespace obs
}  // namespace spinfer
