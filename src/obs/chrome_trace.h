// Serializes drained TraceEvents to Chrome trace-event JSON.
//
// Output is the "JSON Object Format" understood by Perfetto and
// chrome://tracing with no fixups: a top-level object holding
// `displayTimeUnit` and a `traceEvents` array of "M" (thread-name metadata)
// events followed by "X" (complete) events. Timestamps are emitted in
// microseconds with fixed 3-decimal nanosecond precision, rebased so the
// earliest span starts at ts 0 — which also makes the output a pure function
// of the event list, so FakeClock-driven tests can assert it byte-for-byte.
#pragma once

#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace spinfer {
namespace obs {

class ChromeTraceWriter {
 public:
  // Deterministic serialization of `events` (kept in the order given; Drain
  // order is (tid, append), which viewers accept without sorting).
  static std::string ToJson(const std::vector<TraceEvent>& events);

  // ToJson + write to `path`. Returns false if the file cannot be written.
  static bool WriteFile(const std::string& path,
                        const std::vector<TraceEvent>& events);
};

}  // namespace obs
}  // namespace spinfer
