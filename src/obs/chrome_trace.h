// Serializes drained TraceEvents to Chrome trace-event JSON.
//
// Output is the "JSON Object Format" understood by Perfetto and
// chrome://tracing with no fixups: a top-level object holding
// `displayTimeUnit` and a `traceEvents` array of "M" (thread-name metadata)
// events followed by "X" (complete) events and, when the caller supplies
// AsyncSpans, "b"/"e" (nestable async begin/end) pairs. Timestamps are
// emitted in microseconds with fixed 3-decimal nanosecond precision, rebased
// so the earliest span (sync or async) starts at ts 0 — which also makes the
// output a pure function of the event list, so FakeClock-driven tests can
// assert it byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/trace.h"

namespace spinfer {
namespace obs {

// One async interval keyed by an id rather than pinned to a thread — the
// Chrome trace shape for request-scoped spans, whose lifetime crosses
// scheduler iterations and threads. Viewers group spans by (cat, id), so all
// phases of one request share its id and land on one timeline row. Built at
// export time (RequestLog::ChromeAsyncSpans), never on a hot path, hence the
// owning std::strings.
struct AsyncSpan {
  std::string name;
  std::string cat = "spinfer";
  uint64_t id = 0;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  std::vector<std::pair<std::string, int64_t>> args;  // on the "b" event
};

class ChromeTraceWriter {
 public:
  // Deterministic serialization of `events` (kept in the order given; Drain
  // order is (tid, append), which viewers accept without sorting).
  static std::string ToJson(const std::vector<TraceEvent>& events);
  // As above plus async spans, each emitted as an adjacent "b"/"e" pair in
  // the order given (begin-before-end is the only ordering viewers require).
  static std::string ToJson(const std::vector<TraceEvent>& events,
                            const std::vector<AsyncSpan>& async_spans);

  // ToJson + write to `path`. Returns false if the file cannot be written.
  static bool WriteFile(const std::string& path,
                        const std::vector<TraceEvent>& events);
  static bool WriteFile(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        const std::vector<AsyncSpan>& async_spans);
};

}  // namespace obs
}  // namespace spinfer
