#include "src/obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>

#include "src/obs/chrome_trace.h"

namespace spinfer {
namespace obs {

// Per-thread append-only event log. Single-writer (the owning thread),
// multi-reader (Drain). The writer fills fixed-capacity chunks in order and
// publishes progress through `published` with release stores; readers
// acquire `published` and walk the chunk list, never reading an unpublished
// slot. No lock is ever taken on the recording path.
struct Tracer::ThreadLog {
  static constexpr size_t kChunkCap = 1024;
  struct Chunk {
    TraceEvent events[kChunkCap];
    std::atomic<Chunk*> next{nullptr};
  };

  uint32_t tid = 0;
  Chunk* head = nullptr;       // owned; freed in the destructor
  Chunk* tail = nullptr;       // writer-only cursor
  size_t tail_used = 0;        // writer-only fill level of `tail`
  std::atomic<uint64_t> published{0};

  ThreadLog() {
    head = tail = new Chunk();
  }
  ~ThreadLog() {
    Chunk* c = head;
    while (c != nullptr) {
      Chunk* next = c->next.load(std::memory_order_relaxed);
      delete c;
      c = next;
    }
  }
};

struct Tracer::Impl {
  std::mutex mutex;  // guards logs / interned / lifecycle; never on the hot path
  std::vector<std::unique_ptr<ThreadLog>> logs;
  std::deque<std::string> interned;  // deque: stable addresses across growth
  std::atomic<Clock*> clock{nullptr};
  SteadyClock steady;
  // Bumped by Reset so threads re-register instead of writing into freed logs.
  std::atomic<uint64_t> generation{1};
};

namespace {

struct TlsSlot {
  void* log = nullptr;
  uint64_t generation = 0;
};
thread_local TlsSlot tls_slot;

}  // namespace

Tracer::Tracer() : impl_(new Impl()) {}
Tracer::~Tracer() { delete impl_; }

Tracer& Tracer::Global() {
  // Intentionally leaked: instrumented code and atexit writers may record or
  // drain after static destructors start running.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadLog* Tracer::LogForThisThread() {
  const uint64_t gen = impl_->generation.load(std::memory_order_acquire);
  if (tls_slot.log != nullptr && tls_slot.generation == gen) {
    return static_cast<ThreadLog*>(tls_slot.log);
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto log = std::make_unique<ThreadLog>();
  log->tid = static_cast<uint32_t>(impl_->logs.size());
  ThreadLog* raw = log.get();
  impl_->logs.push_back(std::move(log));
  tls_slot.log = raw;
  tls_slot.generation = gen;
  return raw;
}

void Tracer::Start(Clock* clock) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->clock.store(clock != nullptr ? clock : &impl_->steady,
                     std::memory_order_release);
  trace_detail::g_tracing_enabled.store(true, std::memory_order_release);
}

void Tracer::Stop() {
  trace_detail::g_tracing_enabled.store(false, std::memory_order_release);
}

uint64_t Tracer::NowNs() {
  Clock* c = impl_->clock.load(std::memory_order_acquire);
  return c != nullptr ? c->NowNs() : impl_->steady.NowNs();
}

void Tracer::Record(const char* name, uint64_t start_ns, uint64_t dur_ns,
                    const TraceArg* args, int num_args) {
  if (!TracingEnabled()) {
    return;
  }
  ThreadLog* log = LogForThisThread();
  if (log->tail_used == ThreadLog::kChunkCap) {
    auto* next = new ThreadLog::Chunk();
    log->tail->next.store(next, std::memory_order_release);
    log->tail = next;
    log->tail_used = 0;
  }
  TraceEvent& e = log->tail->events[log->tail_used];
  e.name = name;
  e.start_ns = start_ns;
  e.dur_ns = dur_ns;
  e.tid = log->tid;
  e.num_args = 0;
  if (args != nullptr) {
    if (num_args > kTraceMaxArgs) {
      num_args = kTraceMaxArgs;
    }
    for (int i = 0; i < num_args; ++i) {
      e.args[i] = args[i];
    }
    e.num_args = static_cast<uint32_t>(num_args);
  }
  ++log->tail_used;
  log->published.store(log->published.load(std::memory_order_relaxed) + 1,
                       std::memory_order_release);
}

const char* Tracer::InternName(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->interned.push_back(name);
  return impl_->interned.back().c_str();
}

std::vector<TraceEvent> Tracer::Drain() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<TraceEvent> out;
  for (const auto& log : impl_->logs) {
    uint64_t remaining = log->published.load(std::memory_order_acquire);
    ThreadLog::Chunk* c = log->head;
    while (remaining > 0 && c != nullptr) {
      const uint64_t take =
          remaining < ThreadLog::kChunkCap ? remaining : ThreadLog::kChunkCap;
      for (uint64_t i = 0; i < take; ++i) {
        out.push_back(c->events[i]);
      }
      remaining -= take;
      c = c->next.load(std::memory_order_acquire);
    }
  }
  return out;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->logs.clear();
  impl_->interned.clear();
  // Invalidate every thread's cached log pointer before the next Record.
  impl_->generation.fetch_add(1, std::memory_order_acq_rel);
}

namespace {

std::string* g_atexit_trace_path = nullptr;

void WriteTraceAtExit() {
  Tracer& tracer = Tracer::Global();
  tracer.Stop();
  const std::vector<TraceEvent> events = tracer.Drain();
  if (g_atexit_trace_path == nullptr) {
    return;
  }
  if (ChromeTraceWriter::WriteFile(*g_atexit_trace_path, events)) {
    std::fprintf(stderr, "wrote trace (%zu events) to %s\n", events.size(),
                 g_atexit_trace_path->c_str());
  } else {
    std::fprintf(stderr, "FAILED to write trace to %s\n",
                 g_atexit_trace_path->c_str());
  }
}

}  // namespace

void EnableTracingToFileAtExit(const std::string& path) {
  if (g_atexit_trace_path == nullptr) {
    g_atexit_trace_path = new std::string(path);
    std::atexit(WriteTraceAtExit);
  } else {
    *g_atexit_trace_path = path;
  }
  Tracer::Global().Start();
}

}  // namespace obs
}  // namespace spinfer
