#include "src/obs/slo_tracker.h"

#include <cstdio>

namespace spinfer {
namespace obs {

namespace {

std::vector<double> DefaultBounds() {
  return Histogram::ExponentialBuckets(0.05, 2.0, 24);
}

}  // namespace

SloTracker::SloTracker(const SloTrackerConfig& config) : config_(config) {
  if (config_.epochs < 1) {
    config_.epochs = 1;
  }
  if (config_.window_iters < config_.epochs) {
    config_.window_iters = config_.epochs;
  }
  if (config_.bucket_bounds_ms.empty()) {
    config_.bucket_bounds_ms = DefaultBounds();
  }
  iters_per_epoch_ =
      (config_.window_iters + config_.epochs - 1) / config_.epochs;
  ttft_epochs_.reserve(static_cast<size_t>(config_.epochs));
  tbt_epochs_.reserve(static_cast<size_t>(config_.epochs));
  for (int64_t i = 0; i < config_.epochs; ++i) {
    ttft_epochs_.push_back(
        std::make_unique<Histogram>(config_.bucket_bounds_ms));
    tbt_epochs_.push_back(std::make_unique<Histogram>(config_.bucket_bounds_ms));
  }
  scratch_ = std::make_unique<Histogram>(config_.bucket_bounds_ms);
}

void SloTracker::RecordTtftMs(double ms) { ttft_epochs_[head_]->Record(ms); }

void SloTracker::RecordTbtMs(double ms) { tbt_epochs_[head_]->Record(ms); }

void SloTracker::MergeWindow(
    const std::vector<std::unique_ptr<Histogram>>& epochs,
    Histogram* into) const {
  into->Reset();
  for (const auto& e : epochs) {
    into->MergeFrom(*e);
  }
}

double SloTracker::TtftQuantileMs(double q) const {
  MergeWindow(ttft_epochs_, scratch_.get());
  return scratch_->Quantile(q);
}

double SloTracker::TbtQuantileMs(double q) const {
  MergeWindow(tbt_epochs_, scratch_.get());
  return scratch_->Quantile(q);
}

uint64_t SloTracker::WindowTtftCount() const {
  uint64_t n = 0;
  for (const auto& e : ttft_epochs_) {
    n += e->Count();
  }
  return n;
}

uint64_t SloTracker::WindowTbtCount() const {
  uint64_t n = 0;
  for (const auto& e : tbt_epochs_) {
    n += e->Count();
  }
  return n;
}

void SloTracker::EndIteration(double kv_occupancy, MetricsRegistry* registry) {
  ++iterations_;
  if (iterations_ % iters_per_epoch_ == 0) {
    head_ = (head_ + 1) % ttft_epochs_.size();
    ttft_epochs_[head_]->Reset();
    tbt_epochs_[head_]->Reset();
  }
  if (registry == nullptr) {
    return;
  }
  if (registry != cached_registry_) {
    cached_registry_ = registry;
    g_ttft_p50_ = registry->GetGauge("srv.slo.ttft_p50_ms");
    g_ttft_p95_ = registry->GetGauge("srv.slo.ttft_p95_ms");
    g_ttft_p99_ = registry->GetGauge("srv.slo.ttft_p99_ms");
    g_tbt_p50_ = registry->GetGauge("srv.slo.tbt_p50_ms");
    g_tbt_p95_ = registry->GetGauge("srv.slo.tbt_p95_ms");
    g_tbt_p99_ = registry->GetGauge("srv.slo.tbt_p99_ms");
    g_kv_occupancy_ = registry->GetGauge("srv.slo.kv_occupancy");
    g_ttft_count_ = registry->GetGauge("srv.slo.window_ttft_count");
    g_tbt_count_ = registry->GetGauge("srv.slo.window_tbt_count");
  }
  MergeWindow(ttft_epochs_, scratch_.get());
  g_ttft_p50_->Set(scratch_->Quantile(0.50));
  g_ttft_p95_->Set(scratch_->Quantile(0.95));
  g_ttft_p99_->Set(scratch_->Quantile(0.99));
  g_ttft_count_->Set(static_cast<double>(scratch_->Count()));
  MergeWindow(tbt_epochs_, scratch_.get());
  g_tbt_p50_->Set(scratch_->Quantile(0.50));
  g_tbt_p95_->Set(scratch_->Quantile(0.95));
  g_tbt_p99_->Set(scratch_->Quantile(0.99));
  g_tbt_count_->Set(static_cast<double>(scratch_->Count()));
  g_kv_occupancy_->Set(kv_occupancy);
}

std::string SloTracker::ToString() const {
  char buf[256];
  MergeWindow(ttft_epochs_, scratch_.get());
  std::snprintf(buf, sizeof(buf),
                "ttft{count=%llu p50=%.3f p95=%.3f p99=%.3f}",
                static_cast<unsigned long long>(scratch_->Count()),
                scratch_->Quantile(0.50), scratch_->Quantile(0.95),
                scratch_->Quantile(0.99));
  std::string out = buf;
  MergeWindow(tbt_epochs_, scratch_.get());
  std::snprintf(buf, sizeof(buf),
                " tbt{count=%llu p50=%.3f p95=%.3f p99=%.3f}",
                static_cast<unsigned long long>(scratch_->Count()),
                scratch_->Quantile(0.50), scratch_->Quantile(0.95),
                scratch_->Quantile(0.99));
  out += buf;
  return out;
}

}  // namespace obs
}  // namespace spinfer
