// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// All instruments are lock-free on the recording path (relaxed atomics); the
// registry mutex is taken only on Get* lookup, so callers cache the returned
// pointer. Pointers stay valid until ResetForTest(). Snapshots (ToString /
// ToJson / quantiles) are exact when recording has quiesced and merely
// approximate while writers race — same contract as Tracer::Drain.
//
// Histogram quantile semantics (Quantile(q), q in [0,1]): linear
// interpolation within the owning bucket, the first bucket's lower bound
// taken as 0, the result clamped to [observed min, observed max]. A rank
// landing in the overflow bucket returns the observed max; an empty
// histogram returns 0.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace spinfer {
namespace obs {

class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time value, set not accumulated — the right shape for "current
// total" snapshots published from elsewhere-owned counters (e.g. ThreadPool
// stats), where Counter::Add would double-count across publishes.
class Gauge {
 public:
  void Set(double value);
  double Value() const;

 private:
  std::atomic<uint64_t> bits_{0};  // bit_cast'd double
};

class Histogram {
 public:
  // `upper_bounds` must be strictly increasing; values above the last bound
  // land in an implicit overflow bucket.
  explicit Histogram(std::vector<double> upper_bounds);

  void Record(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  double Min() const;  // 0 when empty
  double Max() const;  // 0 when empty
  double Mean() const;
  double Quantile(double q) const;  // see header comment for semantics

  // "count=5 sum=12.0 min=... p50=... p95=... p99=... max=..."
  std::string Summary() const;

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }

  // Samples landed in bucket `i`: i < upper_bounds().size() is the bucket
  // with that upper bound, i == upper_bounds().size() is the overflow bucket.
  // Exporters (Prometheus text exposition) cumulate these into `le` series.
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  size_t NumBuckets() const { return buckets_.size(); }

  // Window primitives for the SLO tracker's epoch ring (src/obs/slo_tracker).
  // Both require quiesced writers — same contract as the snapshot methods.
  // Reset drops every sample; MergeFrom adds `other`'s samples (bucket
  // counts, count, sum, extrema) into this histogram. The bucket layouts
  // must match.
  void Reset();
  void MergeFrom(const Histogram& other);

  // upper_bounds = {start, start*factor, ...} (count entries), for latency
  // histograms spanning several decades.
  static std::vector<double> ExponentialBuckets(double start, double factor,
                                                int count);

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // size upper_bounds_+1 (overflow)
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};
  std::atomic<uint64_t> min_bits_;
  std::atomic<uint64_t> max_bits_;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Find-or-create by name. The instrument's address is stable until
  // ResetForTest; cache it rather than re-looking-up in hot code. Requesting
  // an existing histogram ignores `upper_bounds`.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds);

  // Read-only visitation in name-sorted order, under the registry lock.
  // The callbacks must not call back into the registry (deadlock); they may
  // read the instruments (snapshot semantics — see the header comment). This
  // is the export surface Prometheus serialization (src/obs/prom_export)
  // walks without the registry having to know any exposition format.
  void VisitCounters(
      const std::function<void(const std::string&, const Counter&)>& fn) const;
  void VisitGauges(
      const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void VisitHistograms(
      const std::function<void(const std::string&, const Histogram&)>& fn) const;

  // Human-readable dump, one `name kind value` line per instrument, sorted
  // by name.
  std::string ToString() const;
  // {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,
  // p50,p95,p99}}} — sorted keys, deterministic given quiesced instruments.
  std::string ToJson() const;
  bool WriteJsonFile(const std::string& path) const;

  // Drops every instrument (invalidating cached pointers). Tests only.
  void ResetForTest();

 private:
  MetricsRegistry();
  ~MetricsRegistry();
  struct Impl;
  Impl* impl_;
};

}  // namespace obs
}  // namespace spinfer
