#include "src/obs/flight_recorder.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

namespace spinfer {
namespace obs {

namespace {

void AppendIdList(const std::vector<int64_t>& ids, std::string* out) {
  out->push_back('[');
  char buf[32];
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) {
      out->push_back(',');
    }
    std::snprintf(buf, sizeof(buf), "%" PRId64, ids[i]);
    out->append(buf);
  }
  out->push_back(']');
}

}  // namespace

FlightRecorder::FlightRecorder(int64_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {
  ring_.resize(static_cast<size_t>(capacity_));
}

void FlightRecorder::Record(IterationSnapshot snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[static_cast<size_t>(recorded_ % capacity_)] = std::move(snapshot);
  ++recorded_;
}

int64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::vector<IterationSnapshot> FlightRecorder::Snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<IterationSnapshot> out;
  const int64_t retained = recorded_ < capacity_ ? recorded_ : capacity_;
  out.reserve(static_cast<size_t>(retained));
  for (int64_t i = recorded_ - retained; i < recorded_; ++i) {
    out.push_back(ring_[static_cast<size_t>(i % capacity_)]);
  }
  return out;
}

std::string FlightRecorder::DumpLocked() const {
  const int64_t retained = recorded_ < capacity_ ? recorded_ : capacity_;
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "[flight-recorder] %" PRId64 " of %" PRId64
                " iterations retained (capacity %" PRId64 ")\n",
                retained, recorded_, capacity_);
  out.append(buf);
  for (int64_t i = recorded_ - retained; i < recorded_; ++i) {
    const IterationSnapshot& s = ring_[static_cast<size_t>(i % capacity_)];
    std::snprintf(buf, sizeof(buf),
                  "iter=%" PRId64 " vt_ms=%.6f cost_ms=%.6f batch=%" PRId64
                  " decode=%" PRId64 " prefill=%" PRId64
                  " chunk_tokens=%" PRId64 " admitted=%" PRId64
                  " rejected=%" PRId64 " queue=%" PRId64 " kv=%" PRId64
                  "/%" PRId64 " blocks wasted_slots=%" PRId64 " ids=",
                  s.iter, s.vt_s * 1e3, s.cost_ms, s.batch, s.decode_seqs,
                  s.prefill_seqs, s.chunk_tokens, s.admitted, s.rejected,
                  s.queue_depth, s.kv_used_blocks, s.kv_total_blocks,
                  s.kv_wasted_slots);
    out.append(buf);
    AppendIdList(s.batch_ids, &out);
    out.append(" admitted_ids=");
    AppendIdList(s.admitted_ids, &out);
    out.push_back('\n');
  }
  return out;
}

std::string FlightRecorder::Dump() const {
  // try_lock, not lock: the crash-dump hook (src/util/crash_dump) calls this
  // from CheckFailed, possibly while another thread sits inside Record — a
  // blocking lock there would hang the abort path.
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    return "[flight-recorder] ring busy (writer crashed mid-record?); "
           "no snapshot available\n";
  }
  return DumpLocked();
}

void FlightRecorder::DumpToStderr() const {
  const std::string text = Dump();
  std::fwrite(text.data(), 1, text.size(), stderr);
  std::fflush(stderr);
}

bool FlightRecorder::DumpToFile(const std::string& path) const {
  const std::string text = Dump();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  if (written != text.size()) {
    std::fclose(f);
    return false;
  }
  return std::fclose(f) == 0;
}

}  // namespace obs
}  // namespace spinfer
