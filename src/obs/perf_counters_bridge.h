// Bridges simulator PerfCounters into the metrics registry so hardware-event
// totals land next to wall-clock metrics in one dump.
//
// Header-only on purpose: it rides on PerfCounters::ForEachField, so
// spinfer_obs does not link against spinfer_gpusim (obs sits below every
// other library in the dependency order). Values are published as gauges —
// a PerfCounters struct is already a totalled snapshot, and Counter::Add
// would double-count when the same run is recorded twice.
#pragma once

#include <string>

#include "src/gpusim/perf_counters.h"
#include "src/obs/metrics.h"

namespace spinfer {
namespace obs {

// Publishes every counter field as gauge `<prefix>.<field>` plus the derived
// `<prefix>.total_warp_instrs`. nullptr registry means the global one.
inline void RecordPerfCounters(const PerfCounters& c, const std::string& prefix,
                               MetricsRegistry* registry = nullptr) {
  MetricsRegistry& reg =
      registry != nullptr ? *registry : MetricsRegistry::Global();
  c.ForEachField([&](const char* name, uint64_t value) {
    reg.GetGauge(prefix + "." + name)->Set(static_cast<double>(value));
  });
  reg.GetGauge(prefix + ".total_warp_instrs")
      ->Set(static_cast<double>(c.TotalWarpInstrs()));
}

}  // namespace obs
}  // namespace spinfer
