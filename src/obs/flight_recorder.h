// Scheduler flight recorder: a fixed-size ring of per-iteration snapshots.
//
// Post-mortem debugging of a serving crash needs the *recent history* of the
// scheduler — what the batch looked like, how full the KV pool was, who was
// admitted or bounced — not a point-in-time gauge. Logging every iteration
// unconditionally is too expensive and too noisy; the flight recorder instead
// keeps the last N IterationSnapshots in a preallocated ring (O(1) record,
// bounded memory, oldest evicted first) and renders them on demand.
//
// Dump() is deterministic text (a pure function of the retained snapshots,
// fixed formats throughout) so tests can golden it, and crash-safe: it
// try_locks rather than locks, so a SPINFER_CHECK failure handler can dump
// from under a thread that died while recording without deadlocking (see
// src/util/crash_dump.h for the hook glue — it lives in spinfer_util because
// this library is deliberately std-only).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace spinfer {
namespace obs {

// Everything the scheduler knew about one iteration. Plain value type filled
// by the engine loop; vectors are moved in, so steady-state recording only
// reuses the evicted slot's capacity.
struct IterationSnapshot {
  int64_t iter = 0;          // 0-based scheduler iteration index
  double vt_s = 0.0;         // virtual clock after this iteration
  double cost_ms = 0.0;      // virtual cost charged for this iteration
  int64_t batch = 0;         // sequences executed (decode + prefill chunks)
  int64_t decode_seqs = 0;
  int64_t prefill_seqs = 0;  // sequences that ran a prefill chunk
  int64_t chunk_tokens = 0;  // prompt tokens prefetched this iteration
  int64_t admitted = 0;      // admission verdicts made at the iteration start
  int64_t rejected = 0;
  int64_t queue_depth = 0;   // still waiting after admission
  int64_t kv_used_blocks = 0;
  int64_t kv_total_blocks = 0;
  int64_t kv_wasted_slots = 0;  // fragmentation: allocated-but-unwritten slots
  std::vector<int64_t> batch_ids;     // request ids executed, engine order
  std::vector<int64_t> admitted_ids;  // request ids admitted this iteration
};

class FlightRecorder {
 public:
  // `capacity` (> 0) iterations are retained; older ones are overwritten.
  explicit FlightRecorder(int64_t capacity);

  void Record(IterationSnapshot snapshot);

  int64_t capacity() const { return capacity_; }
  // Total iterations ever recorded (>= retained count).
  int64_t recorded() const;

  // Retained snapshots, oldest first.
  std::vector<IterationSnapshot> Snapshots() const;

  // Deterministic multi-line rendering: a header line, then one line per
  // retained iteration, oldest first. If the ring lock is held by a crashed
  // writer the dump degrades to a single warning line instead of blocking.
  std::string Dump() const;
  void DumpToStderr() const;
  bool DumpToFile(const std::string& path) const;

 private:
  std::string DumpLocked() const;  // requires mu_

  const int64_t capacity_;
  mutable std::mutex mu_;
  std::vector<IterationSnapshot> ring_;  // size capacity_, slot = n % capacity
  int64_t recorded_ = 0;
};

}  // namespace obs
}  // namespace spinfer
