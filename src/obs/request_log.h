// Structured per-request event timeline for the serving engine.
//
// Where src/obs/trace.h records anonymous *spans* (one timed interval on one
// thread), this log records *request-scoped events*: typed scheduler
// decisions (submitted, admitted, prefix-hit/miss, chunk-scheduled,
// decode-iteration, finished/evicted/cancelled/rejected) keyed by request id.
// It exists to answer "why was THIS request slow?" — the question aggregate
// counters and thread-local spans structurally cannot.
//
// Every event carries two timestamps:
//   * vt_ns — the engine's deterministic virtual clock (the one that prices
//     iterations and makes reports byte-stable). All analysis tools
//     (tools/request_timeline.py, the Chrome async export) run on this axis.
//   * wall_ns — a real (or injected Fake) obs::Clock read at record time, for
//     correlating the virtual schedule against wall hiccups in production.
//
// Determinism contract: appends happen only from the scheduler loop (single
// writer, no locks), every field is derived from engine state that is itself
// byte-stable across thread counts, and serialization is fixed-format — so
// under FakeClock the JSONL output is byte-identical at --threads=1/2/8
// (tests/request_log_test.cc). Recording never touches engine computations:
// token streams and reports are bit-identical with the timeline on or off.
//
// Export surfaces:
//   * ToJsonl()/WriteJsonl(): one JSON object per line, fixed key order —
//     the machine-readable log tools/request_timeline.py consumes.
//   * ChromeAsyncSpans(): per-request async ("b"/"e") spans on the virtual
//     timeline, viewable in Perfetto on one row per request id next to the
//     engine's sync spans (ChromeTraceWriter's async overload).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/obs/chrome_trace.h"
#include "src/obs/clock.h"

namespace spinfer {
namespace obs {

enum class RequestEventKind : uint8_t {
  kSubmitted,        // entered the queue (vt = arrival time)
  kAdmitted,         // scheduler granted a batch slot + KV reservation
  kPrefixMatch,      // prefix-cache verdict at admission (hit/miss blocks)
  kChunkScheduled,   // a prefill chunk of this prompt ran this iteration
  kDecodeIteration,  // produced one token this iteration
  kFinished,         // terminal: EOS or max-tokens
  kEvicted,          // terminal: evicted mid-run (cancellation)
  kCancelled,        // terminal: cancelled while still queued
  kRejected,         // terminal: never servable
};

// Stable lowercase name used in the JSONL `ev` field ("submitted", ...).
const char* RequestEventKindName(RequestEventKind kind);
bool RequestEventKindIsTerminal(RequestEventKind kind);

inline constexpr int kRequestEventMaxArgs = 3;

struct RequestEventArg {
  const char* name = nullptr;  // static literal
  int64_t value = 0;
};

struct RequestEvent {
  int64_t request_id = 0;
  RequestEventKind kind = RequestEventKind::kSubmitted;
  int64_t iter = -1;     // scheduler iteration (0-based); -1 = pre-scheduling
  int64_t vt_ns = 0;     // virtual time, integer ns (llround of seconds*1e9)
  uint64_t wall_ns = 0;  // wall clock at record time
  uint32_t num_args = 0;
  RequestEventArg args[kRequestEventMaxArgs];
};

class RequestLog {
 public:
  // `wall_clock` is borrowed and must outlive the log; nullptr selects a
  // process-wide SteadyClock. Tests inject FakeClock for byte-stable output.
  explicit RequestLog(Clock* wall_clock = nullptr);

  // Appends one event. Single-writer (the scheduler loop); `args` beyond
  // kRequestEventMaxArgs are dropped.
  void Append(int64_t request_id, RequestEventKind kind, int64_t iter,
              double vt_s, std::initializer_list<RequestEventArg> args = {});

  const std::vector<RequestEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  // One JSON object per line, '\n'-terminated, fixed key order:
  //   {"req":N,"ev":"...","iter":N,"vt_ns":N,"wall_ns":N,<kind args...>}
  // A pure function of the event list — byte-stable wherever the events are.
  std::string ToJsonl() const;
  bool WriteJsonl(const std::string& path) const;

  // Per-request async spans on the virtual timeline, grouped per request id:
  // "request" (submitted -> terminal), "queued" (submitted -> admitted) and
  // "exec" (admitted -> terminal) when the request was admitted. Requests
  // with no terminal event (log captured mid-run) are skipped.
  std::vector<AsyncSpan> ChromeAsyncSpans() const;

 private:
  Clock* wall_clock_;
  std::vector<RequestEvent> events_;
};

}  // namespace obs
}  // namespace spinfer
