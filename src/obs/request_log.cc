#include "src/obs/request_log.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>

namespace spinfer {
namespace obs {

namespace {

SteadyClock* DefaultWallClock() {
  static SteadyClock* clock = new SteadyClock();
  return clock;
}

int64_t SecondsToNs(double s) {
  // llround, not a cast: the same rounding everywhere keeps vt_ns identical
  // across compilers for the byte-stability golden.
  return static_cast<int64_t>(std::llround(s * 1e9));
}

void AppendInt(const char* key, int64_t value, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%" PRId64, key, value);
  out->append(buf);
}

}  // namespace

const char* RequestEventKindName(RequestEventKind kind) {
  switch (kind) {
    case RequestEventKind::kSubmitted:
      return "submitted";
    case RequestEventKind::kAdmitted:
      return "admitted";
    case RequestEventKind::kPrefixMatch:
      return "prefix_match";
    case RequestEventKind::kChunkScheduled:
      return "chunk_scheduled";
    case RequestEventKind::kDecodeIteration:
      return "decode";
    case RequestEventKind::kFinished:
      return "finished";
    case RequestEventKind::kEvicted:
      return "evicted";
    case RequestEventKind::kCancelled:
      return "cancelled";
    case RequestEventKind::kRejected:
      return "rejected";
  }
  return "unknown";
}

bool RequestEventKindIsTerminal(RequestEventKind kind) {
  switch (kind) {
    case RequestEventKind::kFinished:
    case RequestEventKind::kEvicted:
    case RequestEventKind::kCancelled:
    case RequestEventKind::kRejected:
      return true;
    default:
      return false;
  }
}

RequestLog::RequestLog(Clock* wall_clock)
    : wall_clock_(wall_clock != nullptr ? wall_clock : DefaultWallClock()) {}

void RequestLog::Append(int64_t request_id, RequestEventKind kind, int64_t iter,
                        double vt_s,
                        std::initializer_list<RequestEventArg> args) {
  RequestEvent e;
  e.request_id = request_id;
  e.kind = kind;
  e.iter = iter;
  e.vt_ns = SecondsToNs(vt_s);
  e.wall_ns = wall_clock_->NowNs();
  for (const RequestEventArg& a : args) {
    if (e.num_args == kRequestEventMaxArgs) {
      break;
    }
    e.args[e.num_args++] = a;
  }
  events_.push_back(e);
}

std::string RequestLog::ToJsonl() const {
  std::string out;
  out.reserve(events_.size() * 96);
  char buf[128];
  for (const RequestEvent& e : events_) {
    std::snprintf(buf, sizeof(buf),
                  "{\"req\":%" PRId64 ",\"ev\":\"%s\",\"iter\":%" PRId64
                  ",\"vt_ns\":%" PRId64 ",\"wall_ns\":%" PRIu64,
                  e.request_id, RequestEventKindName(e.kind), e.iter, e.vt_ns,
                  e.wall_ns);
    out.append(buf);
    for (uint32_t i = 0; i < e.num_args; ++i) {
      AppendInt(e.args[i].name != nullptr ? e.args[i].name : "arg",
                e.args[i].value, &out);
    }
    out.append("}\n");
  }
  return out;
}

bool RequestLog::WriteJsonl(const std::string& path) const {
  const std::string jsonl = ToJsonl();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(jsonl.data(), 1, jsonl.size(), f);
  if (written != jsonl.size()) {
    std::fclose(f);
    return false;
  }
  return std::fclose(f) == 0;
}

std::vector<AsyncSpan> RequestLog::ChromeAsyncSpans() const {
  // Per request we need the three anchor events; one linear pass collects
  // them, then spans are emitted in ascending request-id order (std::map) so
  // the export is byte-stable regardless of interleaving between requests.
  struct Anchors {
    bool has_submit = false, has_admit = false, has_terminal = false;
    int64_t submit_ns = 0, admit_ns = 0, terminal_ns = 0;
    RequestEventKind terminal = RequestEventKind::kFinished;
    std::vector<std::pair<std::string, int64_t>> terminal_args;
  };
  std::map<int64_t, Anchors> by_req;
  for (const RequestEvent& e : events_) {
    Anchors& a = by_req[e.request_id];
    if (e.kind == RequestEventKind::kSubmitted && !a.has_submit) {
      a.has_submit = true;
      a.submit_ns = e.vt_ns;
    } else if (e.kind == RequestEventKind::kAdmitted && !a.has_admit) {
      a.has_admit = true;
      a.admit_ns = e.vt_ns;
    } else if (RequestEventKindIsTerminal(e.kind) && !a.has_terminal) {
      a.has_terminal = true;
      a.terminal_ns = e.vt_ns;
      a.terminal = e.kind;
      for (uint32_t i = 0; i < e.num_args; ++i) {
        a.terminal_args.emplace_back(
            e.args[i].name != nullptr ? e.args[i].name : "arg",
            e.args[i].value);
      }
    }
  }

  std::vector<AsyncSpan> spans;
  for (const auto& [req, a] : by_req) {
    if (!a.has_submit || !a.has_terminal) {
      continue;  // still in flight when the log was captured
    }
    AsyncSpan request;
    request.name = std::string("request/") + RequestEventKindName(a.terminal);
    request.cat = "srv.request";
    request.id = static_cast<uint64_t>(req);
    request.start_ns = static_cast<uint64_t>(a.submit_ns);
    request.end_ns = static_cast<uint64_t>(a.terminal_ns);
    request.args = a.terminal_args;
    spans.push_back(std::move(request));
    if (!a.has_admit) {
      continue;  // rejected / cancelled-in-queue: no queued/exec phases
    }
    AsyncSpan queued;
    queued.name = "queued";
    queued.cat = "srv.request";
    queued.id = static_cast<uint64_t>(req);
    queued.start_ns = static_cast<uint64_t>(a.submit_ns);
    queued.end_ns = static_cast<uint64_t>(a.admit_ns);
    spans.push_back(std::move(queued));
    AsyncSpan exec;
    exec.name = "exec";
    exec.cat = "srv.request";
    exec.id = static_cast<uint64_t>(req);
    exec.start_ns = static_cast<uint64_t>(a.admit_ns);
    exec.end_ns = static_cast<uint64_t>(a.terminal_ns);
    spans.push_back(std::move(exec));
  }
  return spans;
}

}  // namespace obs
}  // namespace spinfer
