#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace spinfer {
namespace obs {

namespace {

uint64_t DoubleBits(double v) { return std::bit_cast<uint64_t>(v); }
double BitsDouble(uint64_t b) { return std::bit_cast<double>(b); }

// CAS-update an atomic double (stored as bits) towards the min/max of itself
// and `v`. Relaxed is fine: these feed post-run snapshots, not synchronization.
template <typename Better>
void UpdateExtremum(std::atomic<uint64_t>* bits, double v, Better better) {
  uint64_t cur = bits->load(std::memory_order_relaxed);
  while (better(v, BitsDouble(cur)) &&
         !bits->compare_exchange_weak(cur, DoubleBits(v),
                                      std::memory_order_relaxed)) {
  }
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return std::string(buf);
}

}  // namespace

void Gauge::Set(double value) {
  bits_.store(DoubleBits(value), std::memory_order_relaxed);
}

double Gauge::Value() const {
  return BitsDouble(bits_.load(std::memory_order_relaxed));
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(upper_bounds_.size() + 1),
      min_bits_(DoubleBits(0.0)),
      max_bits_(DoubleBits(0.0)) {}

void Histogram::Record(double value) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  const size_t idx = static_cast<size_t>(it - upper_bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_bits_.store(DoubleBits(BitsDouble(sum_bits_.load(
                                 std::memory_order_relaxed)) +
                             value),
                  std::memory_order_relaxed);
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    // First sample seeds both extrema so min of all-positive samples is not
    // stuck at the 0.0 initializer.
    min_bits_.store(DoubleBits(value), std::memory_order_relaxed);
    max_bits_.store(DoubleBits(value), std::memory_order_relaxed);
    return;
  }
  UpdateExtremum(&min_bits_, value, [](double a, double b) { return a < b; });
  UpdateExtremum(&max_bits_, value, [](double a, double b) { return a > b; });
}

double Histogram::Sum() const {
  return BitsDouble(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::Min() const {
  return Count() == 0 ? 0.0
                      : BitsDouble(min_bits_.load(std::memory_order_relaxed));
}

double Histogram::Max() const {
  return Count() == 0 ? 0.0
                      : BitsDouble(max_bits_.load(std::memory_order_relaxed));
}

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double Histogram::Quantile(double q) const {
  const uint64_t n = Count();
  if (n == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based, rounded up (nearest-rank base).
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * static_cast<double>(n) +
                                                  0.999999999999));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (seen + in_bucket < rank) {
      seen += in_bucket;
      continue;
    }
    if (i == upper_bounds_.size()) {
      // Overflow bucket has no upper bound; the best point estimate is the
      // observed max.
      return Max();
    }
    const double lo = i == 0 ? 0.0 : upper_bounds_[i - 1];
    const double hi = upper_bounds_[i];
    const double frac =
        in_bucket == 0
            ? 1.0
            : static_cast<double>(rank - seen) / static_cast<double>(in_bucket);
    const double est = lo + (hi - lo) * frac;
    return std::clamp(est, Min(), Max());
  }
  return Max();
}

std::string Histogram::Summary() const {
  std::string out;
  out += "count=" + std::to_string(Count());
  out += " sum=" + FormatDouble(Sum());
  out += " min=" + FormatDouble(Min());
  out += " p50=" + FormatDouble(Quantile(0.50));
  out += " p95=" + FormatDouble(Quantile(0.95));
  out += " p99=" + FormatDouble(Quantile(0.99));
  out += " max=" + FormatDouble(Max());
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(DoubleBits(0.0), std::memory_order_relaxed);
  min_bits_.store(DoubleBits(0.0), std::memory_order_relaxed);
  max_bits_.store(DoubleBits(0.0), std::memory_order_relaxed);
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.upper_bounds_ != upper_bounds_) {
    // Merging across layouts would silently misfile samples; an exporter bug,
    // not a data condition. Cheap enough to check every merge.
    std::fprintf(stderr, "Histogram::MergeFrom: bucket layouts differ\n");
    std::abort();
  }
  const uint64_t n = other.Count();
  if (n == 0) {
    return;
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].fetch_add(other.BucketCount(i), std::memory_order_relaxed);
  }
  sum_bits_.store(DoubleBits(Sum() + other.Sum()), std::memory_order_relaxed);
  const bool was_empty = Count() == 0;
  count_.fetch_add(n, std::memory_order_relaxed);
  if (was_empty) {
    min_bits_.store(DoubleBits(other.Min()), std::memory_order_relaxed);
    max_bits_.store(DoubleBits(other.Max()), std::memory_order_relaxed);
    return;
  }
  UpdateExtremum(&min_bits_, other.Min(),
                 [](double a, double b) { return a < b; });
  UpdateExtremum(&max_bits_, other.Max(),
                 [](double a, double b) { return a > b; });
}

std::vector<double> Histogram::ExponentialBuckets(double start, double factor,
                                                  int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  // std::map: iteration is name-sorted, which makes every dump deterministic.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl()) {}
MetricsRegistry::~MetricsRegistry() { delete impl_; }

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked for the same reason as Tracer::Global: instruments may be touched
  // from atexit hooks.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->counters[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->gauges[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->histograms[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return slot.get();
}

void MetricsRegistry::VisitCounters(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& [name, c] : impl_->counters) {
    fn(name, *c);
  }
}

void MetricsRegistry::VisitGauges(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& [name, g] : impl_->gauges) {
    fn(name, *g);
  }
}

void MetricsRegistry::VisitHistograms(
    const std::function<void(const std::string&, const Histogram&)>& fn) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& [name, h] : impl_->histograms) {
    fn(name, *h);
  }
}

std::string MetricsRegistry::ToString() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::string out;
  for (const auto& [name, c] : impl_->counters) {
    out += name + " counter " + std::to_string(c->Value()) + "\n";
  }
  for (const auto& [name, g] : impl_->gauges) {
    out += name + " gauge " + FormatDouble(g->Value()) + "\n";
  }
  for (const auto& [name, h] : impl_->histograms) {
    out += name + " histogram " + h->Summary() + "\n";
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : impl_->counters) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"" + name + "\":" + std::to_string(c->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : impl_->gauges) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"" + name + "\":" + FormatDouble(g->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : impl_->histograms) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"" + name + "\":{";
    out += "\"count\":" + std::to_string(h->Count());
    out += ",\"sum\":" + FormatDouble(h->Sum());
    out += ",\"min\":" + FormatDouble(h->Min());
    out += ",\"mean\":" + FormatDouble(h->Mean());
    out += ",\"p50\":" + FormatDouble(h->Quantile(0.50));
    out += ",\"p95\":" + FormatDouble(h->Quantile(0.95));
    out += ",\"p99\":" + FormatDouble(h->Quantile(0.99));
    out += ",\"max\":" + FormatDouble(h->Max());
    out += "}";
  }
  out += "}}\n";
  return out;
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  if (written != json.size()) {
    std::fclose(f);
    return false;
  }
  return std::fclose(f) == 0;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->counters.clear();
  impl_->gauges.clear();
  impl_->histograms.clear();
}

}  // namespace obs
}  // namespace spinfer
