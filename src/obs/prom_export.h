// Prometheus text-exposition (format version 0.0.4) over a MetricsRegistry.
//
// Turns the registry's counters/gauges/histograms into the plain-text format
// every Prometheus-compatible scraper ingests, without the registry knowing
// any exposition details (it only exposes Visit*). Mapping:
//   * instrument names are sanitized to [a-zA-Z0-9_:] and prefixed
//     "spinfer_" ("srv.ttft_ms" -> "spinfer_srv_ttft_ms");
//   * counters additionally get the conventional "_total" suffix;
//   * histograms expand to cumulative `le`-labelled buckets (upper bounds
//     from Histogram::upper_bounds, then le="+Inf"), plus _sum and _count.
// Output is name-sorted (the registry visits in sorted order) and
// fixed-format, so a quiesced registry serializes byte-identically — tests
// golden it, and tools/prom_lint.py validates it in CI.
//
// This is a pull-style snapshot writer: serving code keeps publishing into
// the registry at its own cadence, and whoever answers the scrape (or the
// bench harness via --prom=FILE) calls PromExport at scrape time.
#pragma once

#include <string>

namespace spinfer {
namespace obs {

class MetricsRegistry;

// "srv.ttft ms" -> "spinfer_srv_ttft_ms": invalid chars to '_', "spinfer_"
// prepended (unless already present), empty input -> "spinfer_unnamed".
std::string PromMetricName(const std::string& name);

// Serializes every instrument in `registry`. Deterministic for quiesced
// instruments; concurrent writers yield torn-but-valid snapshots (same
// contract as MetricsRegistry::ToString).
std::string PromExport(const MetricsRegistry& registry);

// PromExport + write to `path`. Returns false if the file cannot be written.
bool WritePromFile(const std::string& path, const MetricsRegistry& registry);

}  // namespace obs
}  // namespace spinfer
