// Windowed SLO tracker: sliding TTFT/TBT percentiles + KV occupancy gauges.
//
// Serving SLOs are stated over recent traffic ("p99 TTFT over the last
// minute"), not over process lifetime — a cumulative histogram buries a
// regression under hours of healthy samples. Exact sliding windows need a
// sample deque; instead this uses the standard epoch-ring approximation: the
// window is split into E epoch histograms, new samples land in the head
// epoch, the ring rotates every window/E iterations (resetting the slot that
// falls out), and window queries merge the live epochs into a scratch
// histogram. Samples therefore expire with epoch granularity — the window
// covers between (E-1)/E and E/E of the nominal length — which is the usual
// trade for O(buckets) memory and O(1) expiry.
//
// The tracker is driven by the scheduler loop (single writer): Record* feeds
// samples, EndIteration advances the window clock and publishes the
// srv.slo.* gauges into a MetricsRegistry (from which the Prometheus
// exporter picks them up). Iteration count, not wall time, is the window
// clock so behaviour is deterministic under the engine's virtual time.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace spinfer {
namespace obs {

struct SloTrackerConfig {
  // Nominal window length in scheduler iterations; rounded up to a multiple
  // of `epochs`.
  int64_t window_iters = 64;
  int64_t epochs = 4;
  // Histogram layout for both TTFT and TBT, in ms. Empty selects
  // ExponentialBuckets(0.05, 2.0, 24) (~50µs .. ~7min).
  std::vector<double> bucket_bounds_ms;
};

class SloTracker {
 public:
  explicit SloTracker(const SloTrackerConfig& config = {});

  // Latency samples, in ms. Single-writer with EndIteration.
  void RecordTtftMs(double ms);
  void RecordTbtMs(double ms);

  // Called once at the end of every scheduler iteration: rotates the epoch
  // ring when due, then (if `registry` is non-null) publishes
  //   srv.slo.ttft_p50_ms / ttft_p95_ms / ttft_p99_ms
  //   srv.slo.tbt_p50_ms  / tbt_p95_ms  / tbt_p99_ms
  //   srv.slo.kv_occupancy (the fraction passed in)
  //   srv.slo.window_ttft_count / window_tbt_count
  // Gauge pointers are resolved once per registry and cached.
  void EndIteration(double kv_occupancy, MetricsRegistry* registry);

  // Windowed queries (merge the live epochs; 0 when the window is empty).
  double TtftQuantileMs(double q) const;
  double TbtQuantileMs(double q) const;
  uint64_t WindowTtftCount() const;
  uint64_t WindowTbtCount() const;

  int64_t iterations() const { return iterations_; }

  // "ttft{count=.. p50=.. p95=.. p99=..} tbt{...}" over the current window.
  std::string ToString() const;

 private:
  void MergeWindow(const std::vector<std::unique_ptr<Histogram>>& epochs,
                   Histogram* into) const;

  SloTrackerConfig config_;
  int64_t iters_per_epoch_ = 0;
  int64_t iterations_ = 0;
  size_t head_ = 0;  // epoch receiving new samples
  std::vector<std::unique_ptr<Histogram>> ttft_epochs_;
  std::vector<std::unique_ptr<Histogram>> tbt_epochs_;
  // Scratch merge targets for window queries; mutable because quantile reads
  // are logically const.
  mutable std::unique_ptr<Histogram> scratch_;

  // Cached gauges, resolved against the registry first seen by EndIteration.
  MetricsRegistry* cached_registry_ = nullptr;
  Gauge* g_ttft_p50_ = nullptr;
  Gauge* g_ttft_p95_ = nullptr;
  Gauge* g_ttft_p99_ = nullptr;
  Gauge* g_tbt_p50_ = nullptr;
  Gauge* g_tbt_p95_ = nullptr;
  Gauge* g_tbt_p99_ = nullptr;
  Gauge* g_kv_occupancy_ = nullptr;
  Gauge* g_ttft_count_ = nullptr;
  Gauge* g_tbt_count_ = nullptr;
};

}  // namespace obs
}  // namespace spinfer
