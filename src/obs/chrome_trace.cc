#include "src/obs/chrome_trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <set>

namespace spinfer {
namespace obs {

namespace {

void AppendJsonEscaped(const char* s, std::string* out) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

// ns → µs with exact 3-decimal precision, no floating point: 1234567 ns
// prints as "1234.567".
void AppendMicros(uint64_t ns, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ns / 1000,
                ns % 1000);
  out->append(buf);
}

}  // namespace

std::string ChromeTraceWriter::ToJson(const std::vector<TraceEvent>& events) {
  return ToJson(events, {});
}

std::string ChromeTraceWriter::ToJson(
    const std::vector<TraceEvent>& events,
    const std::vector<AsyncSpan>& async_spans) {
  uint64_t base_ns = 0;
  bool have_base = false;
  for (const TraceEvent& e : events) {
    base_ns = have_base ? std::min(base_ns, e.start_ns) : e.start_ns;
    have_base = true;
  }
  for (const AsyncSpan& s : async_spans) {
    base_ns = have_base ? std::min(base_ns, s.start_ns) : s.start_ns;
    have_base = true;
  }

  std::set<uint32_t> tids;
  for (const TraceEvent& e : events) {
    tids.insert(e.tid);
  }

  std::string out;
  out.reserve(64 + events.size() * 96);
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");

  char buf[128];
  bool first = true;
  for (const uint32_t tid : tids) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":0,\"tid\":%u,\"name\":\"thread_name\","
                  "\"args\":{\"name\":\"thread %u\"}}",
                  tid, tid);
    out.append(buf);
  }

  for (const TraceEvent& e : events) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    std::snprintf(buf, sizeof(buf), "{\"ph\":\"X\",\"pid\":0,\"tid\":%u,",
                  e.tid);
    out.append(buf);
    out.append("\"ts\":");
    AppendMicros(e.start_ns - base_ns, &out);
    out.append(",\"dur\":");
    AppendMicros(e.dur_ns, &out);
    out.append(",\"name\":\"");
    AppendJsonEscaped(e.name != nullptr ? e.name : "(null)", &out);
    out.append("\",\"cat\":\"spinfer\"");
    if (e.num_args > 0) {
      out.append(",\"args\":{");
      for (uint32_t i = 0; i < e.num_args; ++i) {
        if (i > 0) {
          out.push_back(',');
        }
        out.push_back('"');
        AppendJsonEscaped(e.args[i].name != nullptr ? e.args[i].name : "arg",
                          &out);
        out.append("\":");
        std::snprintf(buf, sizeof(buf), "%" PRId64, e.args[i].value);
        out.append(buf);
      }
      out.push_back('}');
    }
    out.push_back('}');
  }

  // Async request spans: one "b"/"e" pair per span, matched by viewers on
  // (cat, id). id is serialized as a decimal string (the spec's string form)
  // so 64-bit ids survive JSON parsers that coerce numbers to doubles.
  for (const AsyncSpan& s : async_spans) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    for (const char ph : {'b', 'e'}) {
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"%c\",\"pid\":0,\"tid\":0,\"id\":\"%" PRIu64
                    "\",\"ts\":",
                    ph, s.id);
      out.append(buf);
      AppendMicros((ph == 'b' ? s.start_ns : s.end_ns) - base_ns, &out);
      out.append(",\"name\":\"");
      AppendJsonEscaped(s.name.c_str(), &out);
      out.append("\",\"cat\":\"");
      AppendJsonEscaped(s.cat.c_str(), &out);
      out.push_back('"');
      if (ph == 'b' && !s.args.empty()) {
        out.append(",\"args\":{");
        for (size_t i = 0; i < s.args.size(); ++i) {
          if (i > 0) {
            out.push_back(',');
          }
          out.push_back('"');
          AppendJsonEscaped(s.args[i].first.c_str(), &out);
          out.append("\":");
          std::snprintf(buf, sizeof(buf), "%" PRId64, s.args[i].second);
          out.append(buf);
        }
        out.push_back('}');
      }
      out.push_back('}');
      if (ph == 'b') {
        out.push_back(',');
      }
    }
  }

  out.append("]}\n");
  return out;
}

bool ChromeTraceWriter::WriteFile(const std::string& path,
                                  const std::vector<TraceEvent>& events) {
  return WriteFile(path, events, {});
}

bool ChromeTraceWriter::WriteFile(const std::string& path,
                                  const std::vector<TraceEvent>& events,
                                  const std::vector<AsyncSpan>& async_spans) {
  const std::string json = ToJson(events, async_spans);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = (written == json.size()) && (std::fclose(f) == 0);
  if (written != json.size()) {
    std::fclose(f);
  }
  return ok;
}

}  // namespace obs
}  // namespace spinfer
