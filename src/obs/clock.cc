#include "src/obs/clock.h"

#include <chrono>

namespace spinfer {
namespace obs {

uint64_t SteadyClock::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace obs
}  // namespace spinfer
