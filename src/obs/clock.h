// Injectable time source for the observability layer.
//
// Spans and metrics never call std::chrono directly: they go through a Clock
// so tests can drive a FakeClock and assert byte-exact trace output, and so a
// future backend (e.g. rdtsc with calibration) can swap in without touching
// instrumentation sites. The default is SteadyClock — monotonic, immune to
// wall-clock adjustments, the right base for durations.
#pragma once

#include <atomic>
#include <cstdint>

namespace spinfer {
namespace obs {

class Clock {
 public:
  virtual ~Clock() = default;
  // Monotonic nanoseconds since an arbitrary (per-clock) epoch.
  virtual uint64_t NowNs() = 0;
};

// std::chrono::steady_clock; the production time source.
class SteadyClock final : public Clock {
 public:
  uint64_t NowNs() override;
};

// Manually-advanced clock for deterministic tests: time moves only when the
// test says so, making span timestamps and durations exact golden values.
// Thread-safe: readers may race with AdvanceNs from the test thread.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(uint64_t start_ns = 0) : now_ns_(start_ns) {}

  uint64_t NowNs() override { return now_ns_.load(std::memory_order_relaxed); }
  void AdvanceNs(uint64_t delta_ns) {
    now_ns_.fetch_add(delta_ns, std::memory_order_relaxed);
  }
  void SetNs(uint64_t now_ns) { now_ns_.store(now_ns, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_ns_;
};

}  // namespace obs
}  // namespace spinfer
