#include "src/obs/prom_export.h"

#include <cinttypes>
#include <cstdio>

#include "src/obs/metrics.h"

namespace spinfer {
namespace obs {

namespace {

bool IsPromChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

// %.9g: round-trips every bucket bound and gauge this codebase produces
// without decaying to the 6-digit default that merges adjacent exponential
// bounds. Prometheus parses scientific notation, so the 'g' fallback is fine.
void AppendDouble(double v, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendHeader(const std::string& prom_name, const char* type,
                  const std::string& source_name, std::string* out) {
  out->append("# HELP ");
  out->append(prom_name);
  out->append(" spinfer metric ");
  out->append(source_name);
  out->push_back('\n');
  out->append("# TYPE ");
  out->append(prom_name);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

}  // namespace

std::string PromMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 8);
  if (name.rfind("spinfer", 0) != 0) {
    out = "spinfer_";
  }
  for (const char c : name) {
    out.push_back(IsPromChar(c) ? c : '_');
  }
  if (out == "spinfer_" || out.empty()) {
    return "spinfer_unnamed";
  }
  // Leading digit after the prefix is impossible ("spinfer_" prefix), but a
  // bare name starting with a digit would be: it got the prefix above.
  return out;
}

std::string PromExport(const MetricsRegistry& registry) {
  std::string out;
  out.reserve(1024);

  registry.VisitCounters([&out](const std::string& name, const Counter& c) {
    const std::string prom = PromMetricName(name) + "_total";
    AppendHeader(prom, "counter", name, &out);
    out.append(prom);
    out.push_back(' ');
    AppendU64(c.Value(), &out);
    out.push_back('\n');
  });

  registry.VisitGauges([&out](const std::string& name, const Gauge& g) {
    const std::string prom = PromMetricName(name);
    AppendHeader(prom, "gauge", name, &out);
    out.append(prom);
    out.push_back(' ');
    AppendDouble(g.Value(), &out);
    out.push_back('\n');
  });

  registry.VisitHistograms([&out](const std::string& name,
                                  const Histogram& h) {
    const std::string prom = PromMetricName(name);
    AppendHeader(prom, "histogram", name, &out);
    // Prometheus buckets are cumulative ("samples <= le"), ours are disjoint;
    // accumulate while walking the shared upper-bound list.
    uint64_t cumulative = 0;
    const std::vector<double>& bounds = h.upper_bounds();
    for (size_t i = 0; i < bounds.size(); ++i) {
      cumulative += h.BucketCount(i);
      out.append(prom);
      out.append("_bucket{le=\"");
      AppendDouble(bounds[i], &out);
      out.append("\"} ");
      AppendU64(cumulative, &out);
      out.push_back('\n');
    }
    out.append(prom);
    out.append("_bucket{le=\"+Inf\"} ");
    AppendU64(h.Count(), &out);
    out.push_back('\n');
    out.append(prom);
    out.append("_sum ");
    AppendDouble(h.Sum(), &out);
    out.push_back('\n');
    out.append(prom);
    out.append("_count ");
    AppendU64(h.Count(), &out);
    out.push_back('\n');
  });

  return out;
}

bool WritePromFile(const std::string& path, const MetricsRegistry& registry) {
  const std::string text = PromExport(registry);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  if (written != text.size()) {
    std::fclose(f);
    return false;
  }
  return std::fclose(f) == 0;
}

}  // namespace obs
}  // namespace spinfer
