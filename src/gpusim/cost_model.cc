#include "src/gpusim/cost_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/check.h"

namespace spinfer {

std::string TimeBreakdown::ToString() const {
  std::ostringstream oss;
  oss << "total=" << total_us << "us mem=" << mem_us << "us compute=" << compute_us
      << "us decode=" << decode_us << "us fixed=" << fixed_us
      << "us bw_util=" << bw_utilization << " tc_util=" << tc_utilization;
  return oss.str();
}

TimeBreakdown EstimateKernelTime(const KernelTraits& traits, const KernelWork& work,
                                 const DeviceSpec& dev) {
  SPINFER_CHECK(work.n > 0);
  TimeBreakdown out;

  const double bytes =
      static_cast<double>(work.dram_bytes_read + work.dram_bytes_written);
  out.mem_us = bytes / (dev.dram_bw_gbs * traits.bw_eff * 1e3);  // GB/s -> B/us

  if (traits.uses_tensor_core) {
    // One mma B-tile covers 8 columns: N in [1,8] issues identical work, so
    // the issue-efficiency curve floors at N=8.
    const double n = std::max(8.0, static_cast<double>(work.n));
    const double eff = traits.tc_eff_max * (1.0 - std::exp(-n / traits.tc_n_sat));
    out.compute_us =
        static_cast<double>(work.flops) / (dev.tc_fp16_tflops * eff * 1e6);
  } else {
    out.compute_us = static_cast<double>(work.flops) /
                     (dev.cuda_fp16_tflops * traits.cuda_eff * 1e6);
  }

  out.decode_us = static_cast<double>(work.decode_ops) / (dev.int32_tops * 1e6);
  const double serial_decode = traits.decode_serial_fraction * out.decode_us;
  const double overlapped_decode = out.decode_us - serial_decode;

  out.fixed_us = traits.fixed_us;
  out.total_us = out.fixed_us + std::max({out.mem_us, out.compute_us, overlapped_decode}) +
                 serial_decode;

  out.bw_utilization = bytes / (out.total_us * dev.dram_bw_gbs * 1e3);
  out.tc_utilization = traits.uses_tensor_core
                           ? static_cast<double>(work.flops) /
                                 (out.total_us * dev.tc_fp16_tflops * 1e6)
                           : 0.0;
  return out;
}

}  // namespace spinfer
