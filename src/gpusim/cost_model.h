// Roofline-based kernel timing model.
//
// The paper's own analysis (§3.2.2) places all the SpMM variants in the
// memory-bound region of the roofline at decode-phase batch sizes, so modeled
// kernel time is driven by (a) exact DRAM traffic — computed byte-for-byte
// from the real sparse-format encoders — and (b) a per-kernel efficiency
// profile (achievable bandwidth fraction, Tensor-Core issue efficiency as a
// function of N, non-overlapped decode work, fixed launch cost). The profile
// constants are calibrated once against the paper's reported averages (see
// EXPERIMENTS.md) and shared by every bench.
#pragma once

#include <cstdint>
#include <string>

#include "src/gpusim/device_spec.h"

namespace spinfer {

// Per-kernel efficiency profile.
struct KernelTraits {
  std::string name;

  // Fraction of peak DRAM bandwidth the kernel sustains when memory-bound.
  double bw_eff = 0.9;

  // Tensor Core issue efficiency saturates with N:
  //   eff(N) = tc_eff_max * (1 - exp(-N / tc_n_sat)).
  // Small N starves the mma pipe (few B columns per instruction, shallow
  // ILP), which is why Table 1 reports ~19% TC pipe utilization for SpInfer;
  // large N restores tc_eff_max, reproducing Fig. 16's <=11.8% prefill gap.
  double tc_eff_max = 0.8;
  double tc_n_sat = 16.0;

  // For CUDA-core kernels: fraction of peak CUDA FP16 throughput sustained.
  bool uses_tensor_core = true;
  double cuda_eff = 0.3;

  // Fraction of decode-work time that cannot be hidden under the
  // memory/compute lanes (0 with a perfect async pipeline).
  double decode_serial_fraction = 0.05;

  // Fixed per-launch overhead (driver launch, tile scheduling, split-K
  // reduction epilogue), microseconds.
  double fixed_us = 5.0;
};

// Work description handed to the estimator by a kernel's Estimate().
struct KernelWork {
  uint64_t dram_bytes_read = 0;
  uint64_t dram_bytes_written = 0;
  // FLOPs actually executed: 2*M*K*N for compute-as-dense Tensor-Core
  // kernels; 2*NNZ*N for CUDA-core kernels that skip zeros.
  uint64_t flops = 0;
  // Integer/bit ops on CUDA cores for format decoding (SMBD etc.).
  uint64_t decode_ops = 0;
  // N (columns of X) — controls Tensor Core issue efficiency.
  int64_t n = 0;
};

// Modeled time and utilization breakdown.
struct TimeBreakdown {
  double mem_us = 0.0;       // DRAM-traffic-limited time
  double compute_us = 0.0;   // math-pipe-limited time
  double decode_us = 0.0;    // total decode-work time (mostly overlapped)
  double fixed_us = 0.0;
  double total_us = 0.0;

  // Achieved fractions of device peaks, as Nsight would report them.
  double bw_utilization = 0.0;
  double tc_utilization = 0.0;

  std::string ToString() const;
};

// Combines work, traits and device into a modeled kernel duration:
//   total = fixed + max(mem, compute, overlappable decode) + serial decode.
TimeBreakdown EstimateKernelTime(const KernelTraits& traits, const KernelWork& work,
                                 const DeviceSpec& dev);

}  // namespace spinfer
