#include "src/gpusim/l2_cache.h"

#include "src/util/check.h"

namespace spinfer {

L2Cache::L2Cache(const L2Config& config) : config_(config) {
  SPINFER_CHECK(config.line_bytes > 0 && config.ways > 0);
  const uint64_t num_lines = config.capacity_bytes / config.line_bytes;
  SPINFER_CHECK(num_lines % config.ways == 0);
  num_sets_ = num_lines / config.ways;
  lines_.resize(num_lines);
}

bool L2Cache::Touch(uint64_t line_addr, bool is_write) {
  const uint64_t set = line_addr % num_sets_;
  Line* set_lines = &lines_[set * config_.ways];
  ++clock_;
  // Hit?
  for (uint32_t w = 0; w < config_.ways; ++w) {
    Line& l = set_lines[w];
    if (l.valid && l.tag == line_addr) {
      l.lru = clock_;
      l.dirty = l.dirty || is_write;
      ++hits_;
      return true;
    }
  }
  // Miss: evict LRU.
  ++misses_;
  Line* victim = &set_lines[0];
  for (uint32_t w = 1; w < config_.ways; ++w) {
    if (!set_lines[w].valid) {
      victim = &set_lines[w];
      break;
    }
    if (set_lines[w].lru < victim->lru) {
      victim = &set_lines[w];
    }
  }
  if (victim->valid && victim->dirty) {
    dram_write_bytes_ += config_.line_bytes;
  }
  victim->valid = true;
  victim->dirty = is_write;
  victim->tag = line_addr;
  victim->lru = clock_;
  dram_read_bytes_ += config_.line_bytes;  // fill (write-allocate reads too)
  return false;
}

uint64_t L2Cache::Read(uint64_t addr, uint64_t size) {
  const uint64_t before = dram_read_bytes_;
  const uint64_t first = addr / config_.line_bytes;
  const uint64_t last = (addr + size - 1) / config_.line_bytes;
  for (uint64_t line = first; line <= last; ++line) {
    Touch(line, /*is_write=*/false);
  }
  return dram_read_bytes_ - before;
}

uint64_t L2Cache::Write(uint64_t addr, uint64_t size) {
  const uint64_t before = dram_read_bytes_ + dram_write_bytes_;
  const uint64_t first = addr / config_.line_bytes;
  const uint64_t last = (addr + size - 1) / config_.line_bytes;
  for (uint64_t line = first; line <= last; ++line) {
    Touch(line, /*is_write=*/true);
  }
  return dram_read_bytes_ + dram_write_bytes_ - before;
}

}  // namespace spinfer
