// Hardware event counters collected by the functional simulator.
//
// These mirror the Nsight Compute metrics the paper reports in Fig. 12 and
// Table 1: DRAM traffic, shared-memory transactions and bank conflicts,
// instruction mix (LDGSTS / LDSM / LDS / MMA / POPC), and register usage.
// Functional kernel runs populate them by counting actual simulated events;
// the analytical estimator computes the same quantities in closed form, and
// tests assert the two agree.
#pragma once

#include <cstdint>
#include <string>

namespace spinfer {

struct PerfCounters {
  // Global (DRAM) traffic in bytes.
  uint64_t dram_bytes_read = 0;
  uint64_t dram_bytes_written = 0;

  // Shared memory traffic and banking behaviour.
  uint64_t smem_bytes_read = 0;
  uint64_t smem_bytes_written = 0;
  uint64_t smem_transactions = 0;   // total 128-byte wavefronts issued
  uint64_t smem_bank_conflicts = 0; // extra wavefronts caused by conflicts

  // Instruction mix (warp-level instruction counts).
  uint64_t ldgsts_instrs = 0;  // async global->shared copies (cp.async)
  uint64_t ldg_instrs = 0;     // global->register loads
  uint64_t lds_instrs = 0;     // shared->register loads
  uint64_t ldsm_instrs = 0;    // ldmatrix loads
  uint64_t mma_instrs = 0;     // Tensor Core mma.m16n8k16 issues
  uint64_t popc_ops = 0;       // popcount operations (SMBD)
  uint64_t alu_ops = 0;        // other integer ALU ops in decode paths

  // Arithmetic work.
  uint64_t flops = 0;  // 2*FMA count actually performed

  // Static kernel properties.
  uint32_t registers_per_thread = 0;

  PerfCounters& operator+=(const PerfCounters& o);

  // Field-wise equality; used by determinism tests to assert counter totals
  // are identical regardless of execution width.
  bool operator==(const PerfCounters& o) const = default;

  std::string ToString() const;
};

}  // namespace spinfer
