// Hardware event counters collected by the functional simulator.
//
// These mirror the Nsight Compute metrics the paper reports in Fig. 12 and
// Table 1: DRAM traffic, shared-memory transactions and bank conflicts,
// instruction mix (LDGSTS / LDSM / LDS / MMA / POPC), and register usage.
// Functional kernel runs populate them by counting actual simulated events;
// the analytical estimator computes the same quantities in closed form, and
// tests assert the two agree.
#pragma once

#include <cstdint>
#include <string>

namespace spinfer {

struct PerfCounters {
  // Global (DRAM) traffic in bytes.
  uint64_t dram_bytes_read = 0;
  uint64_t dram_bytes_written = 0;

  // Shared memory traffic and banking behaviour.
  uint64_t smem_bytes_read = 0;
  uint64_t smem_bytes_written = 0;
  uint64_t smem_transactions = 0;   // total 128-byte wavefronts issued
  uint64_t smem_bank_conflicts = 0; // extra wavefronts caused by conflicts

  // Instruction mix (warp-level instruction counts).
  uint64_t ldgsts_instrs = 0;  // async global->shared copies (cp.async)
  uint64_t ldg_instrs = 0;     // global->register loads
  uint64_t lds_instrs = 0;     // shared->register loads
  uint64_t ldsm_instrs = 0;    // ldmatrix loads
  uint64_t mma_instrs = 0;     // Tensor Core mma.m16n8k16 issues
  uint64_t popc_ops = 0;       // popcount operations (SMBD)
  uint64_t alu_ops = 0;        // other integer ALU ops in decode paths

  // Arithmetic work.
  uint64_t flops = 0;  // 2*FMA count actually performed

  // Static kernel properties.
  uint32_t registers_per_thread = 0;

  PerfCounters& operator+=(const PerfCounters& o);

  // Field-wise subtraction, saturating at 0 — the natural "what did this
  // region cost" helper for before/after snapshots. registers_per_thread is
  // carried from the left operand (it is a static property, not a flow).
  PerfCounters& operator-=(const PerfCounters& o);

  // Delta(before, after) == after - before; reads in snapshot order.
  static PerfCounters Delta(const PerfCounters& before,
                            const PerfCounters& after);

  // Total warp-level instructions issued — the Table 1 "instructions"
  // column: memory + MMA + POPC + ALU.
  uint64_t TotalWarpInstrs() const;

  // Field-wise equality; used by determinism tests to assert counter totals
  // are identical regardless of execution width.
  bool operator==(const PerfCounters& o) const = default;

  // Visits every counter as (name, value) in declaration order, with
  // registers_per_thread widened to uint64_t. Single source of truth for
  // field enumeration: ToString, arithmetic, and the metrics bridge
  // (src/obs/perf_counters_bridge.h) all go through it, so adding a field
  // here updates every consumer.
  template <typename Visitor>
  void ForEachField(Visitor&& v) const {
    v("dram_bytes_read", dram_bytes_read);
    v("dram_bytes_written", dram_bytes_written);
    v("smem_bytes_read", smem_bytes_read);
    v("smem_bytes_written", smem_bytes_written);
    v("smem_transactions", smem_transactions);
    v("smem_bank_conflicts", smem_bank_conflicts);
    v("ldgsts_instrs", ldgsts_instrs);
    v("ldg_instrs", ldg_instrs);
    v("lds_instrs", lds_instrs);
    v("ldsm_instrs", ldsm_instrs);
    v("mma_instrs", mma_instrs);
    v("popc_ops", popc_ops);
    v("alu_ops", alu_ops);
    v("flops", flops);
    v("registers_per_thread", static_cast<uint64_t>(registers_per_thread));
  }

  std::string ToString() const;
};

inline PerfCounters operator-(PerfCounters lhs, const PerfCounters& rhs) {
  lhs -= rhs;
  return lhs;
}

}  // namespace spinfer
