#include "src/gpusim/occupancy.h"

#include <algorithm>

#include "src/util/check.h"

namespace spinfer {

OccupancyResult ComputeOccupancy(const KernelResources& res, const DeviceSpec& dev) {
  SPINFER_CHECK(res.threads_per_block > 0 && res.threads_per_block % 32 == 0);
  OccupancyResult out;
  const int warps_per_block = static_cast<int>(res.threads_per_block / 32);

  // Register file limit (registers allocate in per-warp granules; the
  // per-thread count is the dominant term).
  int reg_limit = kMaxBlocksPerSm;
  if (res.registers_per_thread > 0) {
    const uint64_t regs_per_block =
        static_cast<uint64_t>(res.registers_per_thread) * res.threads_per_block;
    reg_limit = regs_per_block > 0
                    ? static_cast<int>(dev.regs_per_sm / regs_per_block)
                    : kMaxBlocksPerSm;
  }
  // Shared memory limit.
  int smem_limit = kMaxBlocksPerSm;
  if (res.smem_bytes_per_block > 0) {
    smem_limit = static_cast<int>(dev.smem_per_sm_bytes / res.smem_bytes_per_block);
  }
  // Warp-slot limit.
  const int warp_limit = kMaxWarpsPerSm / warps_per_block;

  out.blocks_per_sm =
      std::min({reg_limit, smem_limit, warp_limit, kMaxBlocksPerSm});
  if (out.blocks_per_sm <= 0) {
    out.blocks_per_sm = 0;
    out.warps_per_sm = 0;
    out.occupancy = 0.0;
    out.limiter = reg_limit <= 0 ? OccupancyResult::Limiter::kRegisters
                                 : OccupancyResult::Limiter::kSharedMemory;
    return out;
  }
  if (out.blocks_per_sm == reg_limit && reg_limit < kMaxBlocksPerSm) {
    out.limiter = OccupancyResult::Limiter::kRegisters;
  } else if (out.blocks_per_sm == smem_limit && smem_limit < kMaxBlocksPerSm) {
    out.limiter = OccupancyResult::Limiter::kSharedMemory;
  } else if (out.blocks_per_sm == warp_limit && warp_limit < kMaxBlocksPerSm) {
    out.limiter = OccupancyResult::Limiter::kWarpSlots;
  } else {
    out.limiter = OccupancyResult::Limiter::kBlockSlots;
  }
  out.warps_per_sm = out.blocks_per_sm * warps_per_block;
  out.occupancy = static_cast<double>(out.warps_per_sm) / kMaxWarpsPerSm;
  return out;
}

}  // namespace spinfer
