// Functional emulation of the PTX `mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32`
// Tensor Core instruction, including its exact per-lane fragment layout.
//
// SpInfer's TCA-BME format and SMBD decoder are built around this layout
// (paper §4.2–4.3): the 16×16 A operand decomposes into four 8×8 quadrants in
// column-major order — Ra0 = top-left, Ra1 = bottom-left, Ra2 = top-right,
// Ra3 = bottom-right — and within a quadrant, lane i holds the two adjacent
// elements at (row i/4, columns 2·(i mod 4) and 2·(i mod 4)+1). Linearized
// row-major inside the quadrant those are positions 2i and 2i+1, which is why
// the 64-bit BitmapTile lets lane i test bits 2i and 2i+1 (paper Fig. 8).
//
// Fast path: the layout formulas are pure functions of (lane, idx), so the
// lane→coordinate maps are precomputed once at compile time
// (mma_detail::kMmaACoords / kMmaBCoords / kMmaCCoords) and the hot
// emulation path works on gathered *operands* — plain row-major float tiles
// converted from the fragments exactly once (MmaAOperand / MmaBOperand /
// MmaM16N8K16Tile). The fragment-level MmaM16N8K16 wrapper and the checked
// MmaXElementCoord functions keep the original API; outputs are bit-identical
// because gathering is a pure relayout and the FP32 summation order of the
// FMA core is unchanged.
#pragma once

#include <array>
#include <cstdint>
#include <utility>

#include "src/numeric/fp16.h"

namespace spinfer {

inline constexpr int kWarpSize = 32;

// Per-lane operand fragments for one mma.m16n8k16. Indices follow the PTX
// register order: A fragment a[8] = {Ra0.lo, Ra0.hi, Ra1.lo, Ra1.hi, ...}.
struct MmaAFragment {
  Half a[8] = {};
};
struct MmaBFragment {
  Half b[4] = {};
};
struct MmaAccumulator {
  float c[4] = {};
};

namespace mma_detail {

// A (row, col) pair small enough that a whole lane map stays in one or two
// cache lines.
struct Coord {
  uint8_t row = 0;
  uint8_t col = 0;
};

// The three maps below are generated from the same formulas the checked
// MmaXElementCoord functions implement; tensor_core_test asserts the two
// agree for every (lane, idx).
constexpr std::array<std::array<Coord, 8>, kWarpSize> BuildACoords() {
  std::array<std::array<Coord, 8>, kWarpSize> m{};
  for (int lane = 0; lane < kWarpSize; ++lane) {
    const int group = lane / 4;
    const int pair = (lane % 4) * 2;
    for (int idx = 0; idx < 8; ++idx) {
      const int row = group + ((idx == 2 || idx == 3 || idx == 6 || idx == 7) ? 8 : 0);
      const int col = pair + (idx & 1) + (idx >= 4 ? 8 : 0);
      m[lane][idx] = {static_cast<uint8_t>(row), static_cast<uint8_t>(col)};
    }
  }
  return m;
}

constexpr std::array<std::array<Coord, 4>, kWarpSize> BuildBCoords() {
  std::array<std::array<Coord, 4>, kWarpSize> m{};
  for (int lane = 0; lane < kWarpSize; ++lane) {
    const int group = lane / 4;
    const int pair = (lane % 4) * 2;
    for (int idx = 0; idx < 4; ++idx) {
      const int k = pair + (idx & 1) + (idx >= 2 ? 8 : 0);
      m[lane][idx] = {static_cast<uint8_t>(k), static_cast<uint8_t>(group)};
    }
  }
  return m;
}

constexpr std::array<std::array<Coord, 4>, kWarpSize> BuildCCoords() {
  std::array<std::array<Coord, 4>, kWarpSize> m{};
  for (int lane = 0; lane < kWarpSize; ++lane) {
    const int group = lane / 4;
    const int pair = (lane % 4) * 2;
    for (int idx = 0; idx < 4; ++idx) {
      const int row = group + (idx >= 2 ? 8 : 0);
      const int col = pair + (idx & 1);
      m[lane][idx] = {static_cast<uint8_t>(row), static_cast<uint8_t>(col)};
    }
  }
  return m;
}

inline constexpr auto kMmaACoords = BuildACoords();  // [lane][idx] -> (row, col)
inline constexpr auto kMmaBCoords = BuildBCoords();  // [lane][idx] -> (k, n)
inline constexpr auto kMmaCCoords = BuildCCoords();  // [lane][idx] -> (row, col)

}  // namespace mma_detail

// Coordinate of A-fragment element `idx` (0..7) of `lane` within the 16×16
// A tile (row-major (row, col)).
std::pair<int, int> MmaAElementCoord(int lane, int idx);

// Coordinate of B-fragment element `idx` (0..3) of `lane` within the 16×8
// B tile ((k, n)).
std::pair<int, int> MmaBElementCoord(int lane, int idx);

// Coordinate of accumulator element `idx` (0..3) of `lane` within the 16×8
// C/D tile ((row, col)).
std::pair<int, int> MmaCElementCoord(int lane, int idx);

// Quadrant-local view of the A layout: register `reg` (0..3 = TL, BL, TR, BR
// — the paper's column-major BitmapTile order) of `lane` holds quadrant
// elements (lane/4, 2·(lane%4)) and (lane/4, 2·(lane%4)+1); equivalently
// row-major linear positions 2·lane and 2·lane+1.
std::pair<int, int> MmaAQuadrantCoord(int lane, int half);  // half in {0,1}

// Gathered (un-distributed) MMA operands: the fragment contents converted to
// float exactly once and laid out as plain tiles. Callers that reuse an
// operand across several mma issues (the SpInfer kernel reuses A across all
// n-tiles and B across all warp rows) gather once and call the Tile form.
struct MmaAOperand {
  float a[16][16] = {};  // row-major 16(m) x 16(k)
};
struct MmaBOperand {
  // n-major so the FMA inner loop walks k contiguously for both operands.
  float bt[8][16] = {};  // [n][k]
};

void GatherMmaA(const MmaAFragment a[kWarpSize], MmaAOperand* out);
void GatherMmaB(const MmaBFragment b[kWarpSize], MmaBOperand* out);

// The FMA core: c(16x8, row-major) += A(16x16) × B(16x8), FP32 accumulation,
// k ascending per output element — the exact summation order the fragment
// API has always used, so results are bit-identical.
void MmaM16N8K16Tile(const MmaAOperand& a, const MmaBOperand& b, float c[16][8]);

// Executes one warp-synchronous mma.m16n8k16: for every lane,
// D = A(16x16) × B(16x8) + C(16x8), FP16 inputs, FP32 accumulation.
// `a`, `b`, `acc` are arrays of kWarpSize per-lane fragments; acc is updated
// in place. (Convenience wrapper over Gather + MmaM16N8K16Tile.)
void MmaM16N8K16(const MmaAFragment a[kWarpSize], const MmaBFragment b[kWarpSize],
                 MmaAccumulator acc[kWarpSize]);

// Bit-manipulation intrinsics the SMBD decoder uses (paper Alg. 2).
// PopCount64 models CUDA's __popcll.
int PopCount64(uint64_t x);

// Number of set bits strictly below bit position `2*lane` — the
// MaskedPopCount of paper Algorithm 2: the offset of lane `lane`'s first
// element within the compressed Values segment of its BitmapTile.
int MaskedPopCount(uint64_t bitmap, int lane);

}  // namespace spinfer
