// Functional emulation of the PTX `mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32`
// Tensor Core instruction, including its exact per-lane fragment layout.
//
// SpInfer's TCA-BME format and SMBD decoder are built around this layout
// (paper §4.2–4.3): the 16×16 A operand decomposes into four 8×8 quadrants in
// column-major order — Ra0 = top-left, Ra1 = bottom-left, Ra2 = top-right,
// Ra3 = bottom-right — and within a quadrant, lane i holds the two adjacent
// elements at (row i/4, columns 2·(i mod 4) and 2·(i mod 4)+1). Linearized
// row-major inside the quadrant those are positions 2i and 2i+1, which is why
// the 64-bit BitmapTile lets lane i test bits 2i and 2i+1 (paper Fig. 8).
#pragma once

#include <cstdint>
#include <utility>

#include "src/numeric/fp16.h"

namespace spinfer {

inline constexpr int kWarpSize = 32;

// Per-lane operand fragments for one mma.m16n8k16. Indices follow the PTX
// register order: A fragment a[8] = {Ra0.lo, Ra0.hi, Ra1.lo, Ra1.hi, ...}.
struct MmaAFragment {
  Half a[8] = {};
};
struct MmaBFragment {
  Half b[4] = {};
};
struct MmaAccumulator {
  float c[4] = {};
};

// Coordinate of A-fragment element `idx` (0..7) of `lane` within the 16×16
// A tile (row-major (row, col)).
std::pair<int, int> MmaAElementCoord(int lane, int idx);

// Coordinate of B-fragment element `idx` (0..3) of `lane` within the 16×8
// B tile ((k, n)).
std::pair<int, int> MmaBElementCoord(int lane, int idx);

// Coordinate of accumulator element `idx` (0..3) of `lane` within the 16×8
// C/D tile ((row, col)).
std::pair<int, int> MmaCElementCoord(int lane, int idx);

// Quadrant-local view of the A layout: register `reg` (0..3 = TL, BL, TR, BR
// — the paper's column-major BitmapTile order) of `lane` holds quadrant
// elements (lane/4, 2·(lane%4)) and (lane/4, 2·(lane%4)+1); equivalently
// row-major linear positions 2·lane and 2·lane+1.
std::pair<int, int> MmaAQuadrantCoord(int lane, int half);  // half in {0,1}

// Executes one warp-synchronous mma.m16n8k16: for every lane,
// D = A(16x16) × B(16x8) + C(16x8), FP16 inputs, FP32 accumulation.
// `a`, `b`, `acc` are arrays of kWarpSize per-lane fragments; acc is updated
// in place.
void MmaM16N8K16(const MmaAFragment a[kWarpSize], const MmaBFragment b[kWarpSize],
                 MmaAccumulator acc[kWarpSize]);

// Bit-manipulation intrinsics the SMBD decoder uses (paper Alg. 2).
// PopCount64 models CUDA's __popcll.
int PopCount64(uint64_t x);

// Number of set bits strictly below bit position `2*lane` — the
// MaskedPopCount of paper Algorithm 2: the offset of lane `lane`'s first
// element within the compressed Values segment of its BitmapTile.
int MaskedPopCount(uint64_t bitmap, int lane);

}  // namespace spinfer
