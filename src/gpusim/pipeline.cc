#include "src/gpusim/pipeline.h"

#include <algorithm>

#include "src/util/check.h"

namespace spinfer {

double PipelineIterationTime(const StageTimes& s, const PipelineConfig& c) {
  const double mem = s.load_w + s.load_x;  // both copies share the memory pipe
  if (!c.double_buffer) {
    // Fully serialized: load, then decode, then compute, every iteration.
    return mem + s.decode + s.mma;
  }
  if (!c.fine_grained_groups) {
    // One cp.async group for both tiles: decoding must wait for the whole
    // group, so CUDA-core work (decode) chains with the mma of the same
    // iteration while the next load proceeds — two overlapping lanes.
    return std::max(mem, s.decode + s.mma);
  }
  // Fine-grained: memory pipe, CUDA cores, and Tensor Cores each form their
  // own lane; steady state is bottlenecked by the slowest resource.
  return std::max({mem, s.decode, s.mma});
}

double PipelineTotalTime(const StageTimes& s, const PipelineConfig& c, int64_t iterations) {
  SPINFER_CHECK(iterations >= 0);
  if (iterations == 0) {
    return 0.0;
  }
  const double iter = PipelineIterationTime(s, c);
  if (!c.double_buffer) {
    return iter * static_cast<double>(iterations);
  }
  // Pipelined: prologue fills the first tiles and decode, then steady state,
  // then the last mma drains.
  const double prologue = s.load_w + (c.fine_grained_groups ? std::max(s.load_x, s.decode)
                                                            : s.load_x + s.decode);
  return prologue + iter * static_cast<double>(iterations - 1) + s.mma +
         (c.fine_grained_groups ? 0.0 : 0.0);
}

}  // namespace spinfer
