#include "src/gpusim/perf_counters.h"

#include <algorithm>
#include <sstream>

namespace spinfer {

PerfCounters& PerfCounters::operator+=(const PerfCounters& o) {
  dram_bytes_read += o.dram_bytes_read;
  dram_bytes_written += o.dram_bytes_written;
  smem_bytes_read += o.smem_bytes_read;
  smem_bytes_written += o.smem_bytes_written;
  smem_transactions += o.smem_transactions;
  smem_bank_conflicts += o.smem_bank_conflicts;
  ldgsts_instrs += o.ldgsts_instrs;
  ldg_instrs += o.ldg_instrs;
  lds_instrs += o.lds_instrs;
  ldsm_instrs += o.ldsm_instrs;
  mma_instrs += o.mma_instrs;
  popc_ops += o.popc_ops;
  alu_ops += o.alu_ops;
  flops += o.flops;
  registers_per_thread = std::max(registers_per_thread, o.registers_per_thread);
  return *this;
}

std::string PerfCounters::ToString() const {
  std::ostringstream oss;
  oss << "dram_rd=" << dram_bytes_read << "B dram_wr=" << dram_bytes_written
      << "B smem_rd=" << smem_bytes_read << "B smem_wr=" << smem_bytes_written
      << "B smem_txn=" << smem_transactions << " bank_conflicts=" << smem_bank_conflicts
      << " ldgsts=" << ldgsts_instrs << " ldg=" << ldg_instrs << " lds=" << lds_instrs
      << " ldsm=" << ldsm_instrs << " mma=" << mma_instrs << " popc=" << popc_ops
      << " flops=" << flops << " regs=" << registers_per_thread;
  return oss.str();
}

}  // namespace spinfer
