#include "src/gpusim/perf_counters.h"

#include <algorithm>
#include <sstream>

namespace spinfer {

PerfCounters& PerfCounters::operator+=(const PerfCounters& o) {
  dram_bytes_read += o.dram_bytes_read;
  dram_bytes_written += o.dram_bytes_written;
  smem_bytes_read += o.smem_bytes_read;
  smem_bytes_written += o.smem_bytes_written;
  smem_transactions += o.smem_transactions;
  smem_bank_conflicts += o.smem_bank_conflicts;
  ldgsts_instrs += o.ldgsts_instrs;
  ldg_instrs += o.ldg_instrs;
  lds_instrs += o.lds_instrs;
  ldsm_instrs += o.ldsm_instrs;
  mma_instrs += o.mma_instrs;
  popc_ops += o.popc_ops;
  alu_ops += o.alu_ops;
  flops += o.flops;
  registers_per_thread = std::max(registers_per_thread, o.registers_per_thread);
  return *this;
}

namespace {

uint64_t SaturatingSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

}  // namespace

PerfCounters& PerfCounters::operator-=(const PerfCounters& o) {
  dram_bytes_read = SaturatingSub(dram_bytes_read, o.dram_bytes_read);
  dram_bytes_written = SaturatingSub(dram_bytes_written, o.dram_bytes_written);
  smem_bytes_read = SaturatingSub(smem_bytes_read, o.smem_bytes_read);
  smem_bytes_written = SaturatingSub(smem_bytes_written, o.smem_bytes_written);
  smem_transactions = SaturatingSub(smem_transactions, o.smem_transactions);
  smem_bank_conflicts = SaturatingSub(smem_bank_conflicts, o.smem_bank_conflicts);
  ldgsts_instrs = SaturatingSub(ldgsts_instrs, o.ldgsts_instrs);
  ldg_instrs = SaturatingSub(ldg_instrs, o.ldg_instrs);
  lds_instrs = SaturatingSub(lds_instrs, o.lds_instrs);
  ldsm_instrs = SaturatingSub(ldsm_instrs, o.ldsm_instrs);
  mma_instrs = SaturatingSub(mma_instrs, o.mma_instrs);
  popc_ops = SaturatingSub(popc_ops, o.popc_ops);
  alu_ops = SaturatingSub(alu_ops, o.alu_ops);
  flops = SaturatingSub(flops, o.flops);
  // registers_per_thread is a static kernel property: keep the left operand.
  return *this;
}

PerfCounters PerfCounters::Delta(const PerfCounters& before,
                                 const PerfCounters& after) {
  return after - before;
}

uint64_t PerfCounters::TotalWarpInstrs() const {
  return ldgsts_instrs + ldg_instrs + lds_instrs + ldsm_instrs + mma_instrs +
         popc_ops + alu_ops;
}

std::string PerfCounters::ToString() const {
  std::ostringstream oss;
  bool first = true;
  ForEachField([&](const char* name, uint64_t value) {
    if (!first) {
      oss << ' ';
    }
    first = false;
    oss << name << '=' << value;
  });
  return oss.str();
}

}  // namespace spinfer
