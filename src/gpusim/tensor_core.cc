#include "src/gpusim/tensor_core.h"

#include <bit>

#include "src/util/check.h"

namespace spinfer {

std::pair<int, int> MmaAElementCoord(int lane, int idx) {
  SPINFER_CHECK(lane >= 0 && lane < kWarpSize);
  SPINFER_CHECK(idx >= 0 && idx < 8);
  const int group = lane / 4;      // 0..7
  const int pair = (lane % 4) * 2;  // 0,2,4,6
  // PTX m16n8k16 .f16 A layout:
  //   a0 = A[g][p]    a1 = A[g][p+1]     (rows 0-7,  cols 0-7:  Ra0)
  //   a2 = A[g+8][p]  a3 = A[g+8][p+1]   (rows 8-15, cols 0-7:  Ra1)
  //   a4 = A[g][p+8]  a5 = A[g][p+9]     (rows 0-7,  cols 8-15: Ra2)
  //   a6 = A[g+8][p+8] a7 = A[g+8][p+9]  (rows 8-15, cols 8-15: Ra3)
  const int row = group + ((idx == 2 || idx == 3 || idx == 6 || idx == 7) ? 8 : 0);
  const int col = pair + (idx & 1) + (idx >= 4 ? 8 : 0);
  return {row, col};
}

std::pair<int, int> MmaBElementCoord(int lane, int idx) {
  SPINFER_CHECK(lane >= 0 && lane < kWarpSize);
  SPINFER_CHECK(idx >= 0 && idx < 4);
  // PTX m16n8k16 .f16 B layout (col-major operand, 16(k) x 8(n)):
  //   b0 = B[p][g]  b1 = B[p+1][g]  b2 = B[p+8][g]  b3 = B[p+9][g]
  const int group = lane / 4;
  const int pair = (lane % 4) * 2;
  const int k = pair + (idx & 1) + (idx >= 2 ? 8 : 0);
  return {k, group};
}

std::pair<int, int> MmaCElementCoord(int lane, int idx) {
  SPINFER_CHECK(lane >= 0 && lane < kWarpSize);
  SPINFER_CHECK(idx >= 0 && idx < 4);
  // PTX m16n8k16 .f32 C/D layout (16(m) x 8(n)):
  //   c0 = C[g][p]  c1 = C[g][p+1]  c2 = C[g+8][p]  c3 = C[g+8][p+1]
  const int group = lane / 4;
  const int pair = (lane % 4) * 2;
  const int row = group + (idx >= 2 ? 8 : 0);
  const int col = pair + (idx & 1);
  return {row, col};
}

std::pair<int, int> MmaAQuadrantCoord(int lane, int half) {
  SPINFER_CHECK(lane >= 0 && lane < kWarpSize);
  SPINFER_CHECK(half == 0 || half == 1);
  return {lane / 4, (lane % 4) * 2 + half};
}

void MmaM16N8K16(const MmaAFragment a[kWarpSize], const MmaBFragment b[kWarpSize],
                 MmaAccumulator acc[kWarpSize]) {
  // Gather the full operands from the distributed fragments.
  float full_a[16][16];
  float full_b[16][8];
  float full_c[16][8];
  for (int lane = 0; lane < kWarpSize; ++lane) {
    for (int i = 0; i < 8; ++i) {
      const auto [r, c] = MmaAElementCoord(lane, i);
      full_a[r][c] = a[lane].a[i].ToFloat();
    }
    for (int i = 0; i < 4; ++i) {
      const auto [k, n] = MmaBElementCoord(lane, i);
      full_b[k][n] = b[lane].b[i].ToFloat();
    }
    for (int i = 0; i < 4; ++i) {
      const auto [r, c] = MmaCElementCoord(lane, i);
      full_c[r][c] = acc[lane].c[i];
    }
  }
  // D = A*B + C with FP32 accumulation.
  float full_d[16][8];
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 8; ++c) {
      float sum = full_c[r][c];
      for (int k = 0; k < 16; ++k) {
        sum += full_a[r][k] * full_b[k][c];
      }
      full_d[r][c] = sum;
    }
  }
  // Scatter back to the per-lane accumulators.
  for (int lane = 0; lane < kWarpSize; ++lane) {
    for (int i = 0; i < 4; ++i) {
      const auto [r, c] = MmaCElementCoord(lane, i);
      acc[lane].c[i] = full_d[r][c];
    }
  }
}

int PopCount64(uint64_t x) { return std::popcount(x); }

int MaskedPopCount(uint64_t bitmap, int lane) {
  SPINFER_CHECK(lane >= 0 && lane < kWarpSize);
  const int offset = lane * 2;
  const uint64_t mask = (offset == 64) ? ~0ull : ((1ull << offset) - 1ull);
  return std::popcount(bitmap & mask);
}

}  // namespace spinfer
