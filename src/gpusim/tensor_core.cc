#include "src/gpusim/tensor_core.h"

#include <bit>

#include "src/util/check.h"

namespace spinfer {

std::pair<int, int> MmaAElementCoord(int lane, int idx) {
  SPINFER_CHECK(lane >= 0 && lane < kWarpSize);
  SPINFER_CHECK(idx >= 0 && idx < 8);
  // PTX m16n8k16 .f16 A layout (see mma_detail::BuildACoords):
  //   a0 = A[g][p]    a1 = A[g][p+1]     (rows 0-7,  cols 0-7:  Ra0)
  //   a2 = A[g+8][p]  a3 = A[g+8][p+1]   (rows 8-15, cols 0-7:  Ra1)
  //   a4 = A[g][p+8]  a5 = A[g][p+9]     (rows 0-7,  cols 8-15: Ra2)
  //   a6 = A[g+8][p+8] a7 = A[g+8][p+9]  (rows 8-15, cols 8-15: Ra3)
  const mma_detail::Coord c = mma_detail::kMmaACoords[lane][idx];
  return {c.row, c.col};
}

std::pair<int, int> MmaBElementCoord(int lane, int idx) {
  SPINFER_CHECK(lane >= 0 && lane < kWarpSize);
  SPINFER_CHECK(idx >= 0 && idx < 4);
  // PTX m16n8k16 .f16 B layout (col-major operand, 16(k) x 8(n)):
  //   b0 = B[p][g]  b1 = B[p+1][g]  b2 = B[p+8][g]  b3 = B[p+9][g]
  const mma_detail::Coord c = mma_detail::kMmaBCoords[lane][idx];
  return {c.row, c.col};
}

std::pair<int, int> MmaCElementCoord(int lane, int idx) {
  SPINFER_CHECK(lane >= 0 && lane < kWarpSize);
  SPINFER_CHECK(idx >= 0 && idx < 4);
  // PTX m16n8k16 .f32 C/D layout (16(m) x 8(n)):
  //   c0 = C[g][p]  c1 = C[g][p+1]  c2 = C[g+8][p]  c3 = C[g+8][p+1]
  const mma_detail::Coord c = mma_detail::kMmaCCoords[lane][idx];
  return {c.row, c.col};
}

std::pair<int, int> MmaAQuadrantCoord(int lane, int half) {
  SPINFER_CHECK(lane >= 0 && lane < kWarpSize);
  SPINFER_CHECK(half == 0 || half == 1);
  return {lane / 4, (lane % 4) * 2 + half};
}

void GatherMmaA(const MmaAFragment a[kWarpSize], MmaAOperand* out) {
  for (int lane = 0; lane < kWarpSize; ++lane) {
    const auto& coords = mma_detail::kMmaACoords[lane];
    for (int i = 0; i < 8; ++i) {
      out->a[coords[i].row][coords[i].col] = a[lane].a[i].ToFloat();
    }
  }
}

void GatherMmaB(const MmaBFragment b[kWarpSize], MmaBOperand* out) {
  for (int lane = 0; lane < kWarpSize; ++lane) {
    const auto& coords = mma_detail::kMmaBCoords[lane];
    for (int i = 0; i < 4; ++i) {
      out->bt[coords[i].col][coords[i].row] = b[lane].b[i].ToFloat();
    }
  }
}

void MmaM16N8K16Tile(const MmaAOperand& a, const MmaBOperand& b, float c[16][8]) {
  for (int r = 0; r < 16; ++r) {
    const float* arow = a.a[r];
    for (int n = 0; n < 8; ++n) {
      const float* bcol = b.bt[n];
      float sum = c[r][n];
      for (int k = 0; k < 16; ++k) {
        sum += arow[k] * bcol[k];
      }
      c[r][n] = sum;
    }
  }
}

void MmaM16N8K16(const MmaAFragment a[kWarpSize], const MmaBFragment b[kWarpSize],
                 MmaAccumulator acc[kWarpSize]) {
  MmaAOperand full_a;
  MmaBOperand full_b;
  GatherMmaA(a, &full_a);
  GatherMmaB(b, &full_b);
  // Gather C, run the FMA core, scatter D back to the per-lane accumulators.
  float full_c[16][8];
  for (int lane = 0; lane < kWarpSize; ++lane) {
    const auto& coords = mma_detail::kMmaCCoords[lane];
    for (int i = 0; i < 4; ++i) {
      full_c[coords[i].row][coords[i].col] = acc[lane].c[i];
    }
  }
  MmaM16N8K16Tile(full_a, full_b, full_c);
  for (int lane = 0; lane < kWarpSize; ++lane) {
    const auto& coords = mma_detail::kMmaCCoords[lane];
    for (int i = 0; i < 4; ++i) {
      acc[lane].c[i] = full_c[coords[i].row][coords[i].col];
    }
  }
}

int PopCount64(uint64_t x) { return std::popcount(x); }

int MaskedPopCount(uint64_t bitmap, int lane) {
  SPINFER_CHECK(lane >= 0 && lane < kWarpSize);
  // lane < 32 means the shift is at most 62, so no 64-bit-shift special case.
  static_assert(2 * (kWarpSize - 1) < 64,
                "lane bit offset must stay below the bitmap width");
  return std::popcount(bitmap & ((1ull << (2 * lane)) - 1ull));
}

}  // namespace spinfer
