// Asynchronous pipeline overlap model (paper §4.3.4, Fig. 9).
//
// The SpInfer kernel overlaps three resources per main-loop iteration:
//   * the memory pipe (cp.async global->shared copies of the GTile + XTile),
//   * CUDA cores (SMBD bitmap decoding),
//   * Tensor Cores (mma computation).
// With double buffering and fine-grained cp.async groups all three proceed
// concurrently in steady state; disabling them serializes stages. This model
// turns per-iteration stage durations into a total kernel duration, and is
// what the Table 1 ablation bench exercises.
#pragma once

#include <cstdint>

namespace spinfer {

// Durations (in arbitrary consistent time units) of one iteration's stages.
struct StageTimes {
  double load_w = 0.0;   // GTile global->shared copy
  double load_x = 0.0;   // XTile global->shared copy
  double decode = 0.0;   // SMBD shared->register decode (CUDA cores)
  double mma = 0.0;      // Tensor Core computation
};

struct PipelineConfig {
  // Double buffering: prefetch iteration i+1 while computing iteration i.
  bool double_buffer = true;
  // Separate cp.async commit groups for W and X, allowing SMBD to start as
  // soon as the GTile lands, overlapping the XTile copy and the previous
  // iteration's mma (paper §4.3.4 "fine-grained asynchronous group
  // management").
  bool fine_grained_groups = true;
};

// Total time for `iterations` main-loop iterations plus prologue/epilogue.
double PipelineTotalTime(const StageTimes& s, const PipelineConfig& c, int64_t iterations);

// Steady-state time per iteration (the pipeline bottleneck).
double PipelineIterationTime(const StageTimes& s, const PipelineConfig& c);

}  // namespace spinfer
