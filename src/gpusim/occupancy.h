// SM occupancy calculator.
//
// Occupancy — resident warps per SM relative to the hardware maximum — is
// the lever behind the paper's register-usage argument (Fig. 12): SpInfer's
// SMBD decodes in place and keeps register pressure low, so more thread
// blocks co-reside and the memory pipeline stays saturated. The autotuner
// also uses this to reject GroupTile shapes whose double-buffered tiles
// exhaust shared memory.
#pragma once

#include <cstdint>

#include "src/gpusim/device_spec.h"

namespace spinfer {

// Per-thread-block resource usage of a kernel launch.
struct KernelResources {
  uint32_t registers_per_thread = 0;
  uint32_t smem_bytes_per_block = 0;
  uint32_t threads_per_block = 0;
};

struct OccupancyResult {
  int blocks_per_sm = 0;
  int warps_per_sm = 0;
  // warps_per_sm / hardware max (48 on Ampere/Ada).
  double occupancy = 0.0;
  // Which resource capped the block count.
  enum class Limiter { kRegisters, kSharedMemory, kBlockSlots, kWarpSlots } limiter =
      Limiter::kBlockSlots;
};

inline constexpr int kMaxWarpsPerSm = 48;
inline constexpr int kMaxBlocksPerSm = 24;

// Computes achievable occupancy for `res` on `dev`. Zero blocks means the
// kernel cannot launch (a single block exceeds an SM's resources).
OccupancyResult ComputeOccupancy(const KernelResources& res, const DeviceSpec& dev);

}  // namespace spinfer
