// GPU device descriptions used by the analytical performance model.
//
// This repository reproduces a CUDA paper in an environment with no GPU; the
// two evaluation platforms (RTX 4090, RTX A6000 — paper §5) are described by
// their published specifications and consumed by the roofline cost model.
#pragma once

#include <cstdint>
#include <string>

namespace spinfer {

// Interconnect between GPUs on a multi-GPU platform.
enum class Interconnect {
  kPcie,    // RTX4090 testbed: PCIe, 30.5 GB/s effective (paper §5)
  kNvlink,  // A6000 testbed: pairwise NVLink
};

struct DeviceSpec {
  std::string name;

  int sm_count = 0;
  double clock_ghz = 0.0;

  // Peak DRAM bandwidth in GB/s.
  double dram_bw_gbs = 0.0;
  // L2 cache size in bytes.
  uint64_t l2_bytes = 0;
  // Device memory in bytes.
  uint64_t memory_bytes = 0;

  // Peak FP16 Tensor Core throughput with FP32 accumulation, in TFLOP/s.
  double tc_fp16_tflops = 0.0;
  // Peak FP16 throughput on CUDA cores, in TFLOP/s.
  double cuda_fp16_tflops = 0.0;
  // Peak INT32 ALU throughput in Tera-ops/s (bit manipulation, popcount).
  double int32_tops = 0.0;

  // Shared memory per SM in bytes; registers per SM (32-bit).
  uint64_t smem_per_sm_bytes = 0;
  uint64_t regs_per_sm = 0;

  // Inter-GPU link for tensor parallelism.
  Interconnect interconnect = Interconnect::kPcie;
  // Effective inter-GPU bandwidth in GB/s (per direction) and per-message
  // latency in microseconds.
  double link_bw_gbs = 0.0;
  double link_latency_us = 0.0;

  // Derived: peak mma.m16n8k16 instruction rate (each is 2*16*8*16 FLOPs).
  double PeakMmaPerSecond() const { return tc_fp16_tflops * 1e12 / 4096.0; }
};

// The two evaluation platforms from the paper.
DeviceSpec Rtx4090();
DeviceSpec A6000();

// Looks up a device by name ("rtx4090" / "a6000"); aborts on unknown names.
DeviceSpec DeviceByName(const std::string& name);

}  // namespace spinfer
