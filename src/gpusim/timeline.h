// Discrete-event timeline for the SpInfer kernel main loop.
//
// A finer model than pipeline.h's closed-form bound: each iteration's four
// stages are scheduled onto the three hardware resources they occupy —
//   DRAM pipe (GTile + XTile cp.async copies),
//   CUDA ALU pipe (SMBD decoding),
//   Tensor Core pipe (mma computation) —
// honoring data dependencies, per-resource serialization, and the
// double-buffer depth (a tile buffer can only be refilled after the
// iteration that used it retires). The result is a total runtime plus
// per-resource busy fractions — the quantities behind Table 1's issue-slot
// and pipe-utilization columns — and an ASCII Gantt chart for the bench.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/gpusim/pipeline.h"

namespace spinfer {

enum class Resource { kDram = 0, kCudaAlu = 1, kTensorCore = 2 };
inline constexpr int kNumResources = 3;

struct TimelineInterval {
  Resource resource;
  int64_t iteration;
  const char* stage;  // "load_w", "load_x", "decode", "mma"
  double start;
  double end;
};

struct TimelineResult {
  double total_time = 0.0;
  // Fraction of total_time each resource spends busy.
  double busy_fraction[kNumResources] = {0.0, 0.0, 0.0};
  std::vector<TimelineInterval> intervals;

  // Renders a proportional ASCII Gantt chart (width ~ `columns` characters).
  std::string RenderGantt(int columns = 72) const;
};

// Simulates `iterations` main-loop iterations with per-iteration stage
// durations `stages` under `config`:
//   * double_buffer: two tile buffers — LOAD(i) may start once iteration
//     i-2 retires (i-1 without double buffering, i.e. strict serialization);
//   * fine_grained_groups: DECODE(i) waits only for LOAD_W(i); otherwise it
//     waits for the whole cp.async group (LOAD_W(i) and LOAD_X(i)).
TimelineResult SimulateKernelTimeline(const StageTimes& stages,
                                      const PipelineConfig& config,
                                      int64_t iterations);

}  // namespace spinfer
