#include "src/gpusim/timeline.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/check.h"

namespace spinfer {

TimelineResult SimulateKernelTimeline(const StageTimes& stages,
                                      const PipelineConfig& config,
                                      int64_t iterations) {
  SPINFER_CHECK(iterations >= 0);
  TimelineResult result;
  if (iterations == 0) {
    return result;
  }

  double resource_free[kNumResources] = {0.0, 0.0, 0.0};
  // End time of each iteration's stages (for dependencies and buffer reuse).
  std::vector<double> load_w_end(static_cast<size_t>(iterations));
  std::vector<double> load_x_end(static_cast<size_t>(iterations));
  std::vector<double> mma_end(static_cast<size_t>(iterations));

  auto schedule = [&](Resource res, int64_t iter, const char* name, double ready,
                      double duration) {
    double& free_at = resource_free[static_cast<int>(res)];
    const double start = std::max(free_at, ready);
    const double end = start + duration;
    free_at = end;
    result.intervals.push_back({res, iter, name, start, end});
    return end;
  };

  // Without double buffering there is one tile buffer: loads of iteration i
  // wait for iteration i-1's mma to retire. With it there are two: wait for
  // i-2.
  const int64_t buffer_depth = config.double_buffer ? 2 : 1;

  for (int64_t i = 0; i < iterations; ++i) {
    const double buffer_ready =
        i >= buffer_depth ? mma_end[static_cast<size_t>(i - buffer_depth)] : 0.0;
    load_w_end[i] = schedule(Resource::kDram, i, "load_w", buffer_ready, stages.load_w);
    load_x_end[i] = schedule(Resource::kDram, i, "load_x", buffer_ready, stages.load_x);

    const double decode_ready =
        config.fine_grained_groups ? load_w_end[i] : load_x_end[i];
    const double decode_end =
        schedule(Resource::kCudaAlu, i, "decode", decode_ready, stages.decode);

    const double mma_ready = std::max(decode_end, load_x_end[i]);
    mma_end[i] = schedule(Resource::kTensorCore, i, "mma", mma_ready, stages.mma);
  }

  result.total_time = mma_end.back();
  double busy[kNumResources] = {0.0, 0.0, 0.0};
  for (const TimelineInterval& iv : result.intervals) {
    busy[static_cast<int>(iv.resource)] += iv.end - iv.start;
  }
  for (int r = 0; r < kNumResources; ++r) {
    result.busy_fraction[r] = result.total_time > 0 ? busy[r] / result.total_time : 0.0;
  }
  return result;
}

std::string TimelineResult::RenderGantt(int columns) const {
  SPINFER_CHECK(columns > 10);
  if (total_time <= 0.0) {
    return "(empty timeline)\n";
  }
  const char* names[kNumResources] = {"DRAM", "ALU ", "TC  "};
  const char glyphs[kNumResources] = {'#', 'd', 'M'};
  std::string rows[kNumResources];
  for (auto& row : rows) {
    row.assign(static_cast<size_t>(columns), '.');
  }
  for (const TimelineInterval& iv : intervals) {
    const int begin = static_cast<int>(std::floor(iv.start / total_time * columns));
    int end = static_cast<int>(std::ceil(iv.end / total_time * columns));
    end = std::min(end, columns);
    for (int c = begin; c < end; ++c) {
      rows[static_cast<int>(iv.resource)][static_cast<size_t>(c)] =
          glyphs[static_cast<int>(iv.resource)];
    }
  }
  std::ostringstream out;
  for (int r = 0; r < kNumResources; ++r) {
    out << names[r] << " |" << rows[r] << "| " << static_cast<int>(busy_fraction[r] * 100)
        << "%\n";
  }
  return out.str();
}

}  // namespace spinfer
