#include "src/gpusim/shared_memory.h"

#include <algorithm>
#include <set>

#include "src/util/check.h"

namespace spinfer {

SmemAccessResult SimulateSmemAccess(const std::vector<uint32_t>& byte_addrs,
                                    int access_bytes) {
  SPINFER_CHECK(access_bytes == 2 || access_bytes == 4 || access_bytes == 8 ||
                access_bytes == 16);
  SmemAccessResult res;
  if (byte_addrs.empty()) {
    return res;
  }

  // Expand each lane access into the 4-byte words it touches. 2-byte
  // accesses map to one word.
  const int words_per_lane = std::max(1, access_bytes / kSmemBankWidthBytes);
  std::vector<uint32_t> word_addrs;
  word_addrs.reserve(byte_addrs.size() * static_cast<size_t>(words_per_lane));
  for (uint32_t addr : byte_addrs) {
    for (int w = 0; w < words_per_lane; ++w) {
      word_addrs.push_back((addr + static_cast<uint32_t>(w) * kSmemBankWidthBytes) /
                           kSmemBankWidthBytes);
    }
  }

  // Hardware issues vector accesses in phases of 32 words (half-warp phases
  // for 8B, quarter-warp for 16B); within a phase, the wavefront count is the
  // maximum number of *distinct* words mapped to any single bank.
  const size_t phase = 32;
  for (size_t start = 0; start < word_addrs.size(); start += phase) {
    const size_t end = std::min(word_addrs.size(), start + phase);
    std::set<uint32_t> per_bank[kSmemBanks];
    for (size_t i = start; i < end; ++i) {
      per_bank[word_addrs[i] % kSmemBanks].insert(word_addrs[i]);
    }
    uint32_t wavefronts = 1;  // a non-empty phase always issues one
    for (const auto& bank : per_bank) {
      wavefronts = std::max(wavefronts, static_cast<uint32_t>(bank.size()));
    }
    res.transactions += wavefronts;
    res.bank_conflicts += wavefronts - 1;
  }
  return res;
}

}  // namespace spinfer
