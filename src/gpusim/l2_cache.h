// Set-associative L2 cache simulator.
//
// The kernels' DRAM-traffic accounting assumes the activation matrix X is
// read from DRAM once and re-read through L2 by subsequent thread-block rows
// (X is a few hundred KB at decode-phase N, versus a 72 MB L2 on the
// RTX4090). This model makes that assumption checkable: replaying a kernel's
// access stream reports the actual DRAM-side traffic.
#pragma once

#include <cstdint>
#include <vector>

namespace spinfer {

struct L2Config {
  uint64_t capacity_bytes = 72ull << 20;  // RTX4090
  uint32_t line_bytes = 128;
  uint32_t ways = 16;
};

class L2Cache {
 public:
  explicit L2Cache(const L2Config& config = {});

  // Simulates a read of [addr, addr+size); returns the bytes that missed to
  // DRAM. LRU replacement within each set.
  uint64_t Read(uint64_t addr, uint64_t size);

  // Simulates a write (write-back, write-allocate); returns bytes written
  // back to DRAM by evictions of dirty lines plus allocate misses' fills.
  uint64_t Write(uint64_t addr, uint64_t size);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t dram_read_bytes() const { return dram_read_bytes_; }
  uint64_t dram_write_bytes() const { return dram_write_bytes_; }

  double HitRate() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

 private:
  struct Line {
    uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    uint64_t lru = 0;  // last-touch timestamp
  };

  // Accesses one line; returns true on hit.
  bool Touch(uint64_t line_addr, bool is_write);

  L2Config config_;
  uint64_t num_sets_;
  std::vector<Line> lines_;  // num_sets * ways
  uint64_t clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t dram_read_bytes_ = 0;
  uint64_t dram_write_bytes_ = 0;
};

}  // namespace spinfer
