#include "src/gpusim/device_spec.h"

#include "src/util/check.h"

namespace spinfer {

DeviceSpec Rtx4090() {
  DeviceSpec d;
  d.name = "RTX4090";
  d.sm_count = 128;
  d.clock_ghz = 2.52;
  d.dram_bw_gbs = 1008.0;
  d.l2_bytes = 72ull << 20;
  d.memory_bytes = 24ull << 30;
  d.tc_fp16_tflops = 165.2;   // FP16 with FP32 accumulate
  d.cuda_fp16_tflops = 82.6;  // Ada: FP16 == FP32 rate on CUDA cores
  d.int32_tops = 41.3;
  d.smem_per_sm_bytes = 100 << 10;
  d.regs_per_sm = 64 << 10;
  d.interconnect = Interconnect::kPcie;
  d.link_bw_gbs = 30.5;  // measured PCIe bandwidth reported in the paper
  d.link_latency_us = 10.0;
  return d;
}

DeviceSpec A6000() {
  DeviceSpec d;
  d.name = "A6000";
  d.sm_count = 84;
  d.clock_ghz = 1.80;
  d.dram_bw_gbs = 768.0;
  d.l2_bytes = 6ull << 20;
  d.memory_bytes = 48ull << 30;
  d.tc_fp16_tflops = 154.8;
  d.cuda_fp16_tflops = 38.7;
  d.int32_tops = 19.4;
  d.smem_per_sm_bytes = 100 << 10;
  d.regs_per_sm = 64 << 10;
  d.interconnect = Interconnect::kNvlink;
  d.link_bw_gbs = 56.2;  // NVLink3 bridge, per direction
  d.link_latency_us = 5.0;
  return d;
}

DeviceSpec DeviceByName(const std::string& name) {
  if (name == "rtx4090" || name == "RTX4090" || name == "4090") {
    return Rtx4090();
  }
  if (name == "a6000" || name == "A6000") {
    return A6000();
  }
  SPINFER_UNREACHABLE("unknown device name: " + name);
}

}  // namespace spinfer
