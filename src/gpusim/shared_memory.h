// Shared-memory banking model.
//
// NVIDIA shared memory is organized as 32 banks of 4-byte words; a warp-wide
// access that touches the same bank at different word addresses serializes
// into multiple wavefronts ("bank conflicts"). Flash-LLM's sparse extraction
// writes nonzeros to data-dependent shared addresses and suffers these
// conflicts; SpInfer's SMBD reads are conflict-free by construction (paper
// §5.1 micro-analysis). This model lets kernels count both.
#pragma once

#include <cstdint>
#include <vector>

namespace spinfer {

inline constexpr int kSmemBanks = 32;
inline constexpr int kSmemBankWidthBytes = 4;

// Result of simulating one warp-wide shared-memory access.
struct SmemAccessResult {
  // Number of wavefronts the access serializes into (>= 1 for a non-empty
  // access; 1 means conflict-free).
  uint32_t transactions = 0;
  // Extra wavefronts caused by bank conflicts: transactions - minimum.
  uint32_t bank_conflicts = 0;
};

// Simulates a warp access where each active lane touches `access_bytes`
// bytes starting at its byte address. Addresses of inactive lanes are
// omitted from `byte_addrs`. Wider-than-4B accesses (8B/16B vector loads)
// are split into 4-byte words and processed in phases of up to 32 words,
// matching hardware behaviour. Lanes reading the same word broadcast (no
// conflict).
SmemAccessResult SimulateSmemAccess(const std::vector<uint32_t>& byte_addrs,
                                    int access_bytes);

}  // namespace spinfer
