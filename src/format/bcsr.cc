#include "src/format/bcsr.h"

#include "src/format/sparse_util.h"
#include "src/util/check.h"

namespace spinfer {

BcsrMatrix BcsrMatrix::Encode(const HalfMatrix& w) {
  BcsrMatrix m;
  m.rows_ = w.rows();
  m.cols_ = w.cols();
  const int64_t block_rows = PadUp(w.rows(), kBcsrBlockDim) / kBcsrBlockDim;
  const int64_t block_cols = PadUp(w.cols(), kBcsrBlockDim) / kBcsrBlockDim;

  m.block_row_ptr_.reserve(static_cast<size_t>(block_rows) + 1);
  m.block_row_ptr_.push_back(0);
  for (int64_t br = 0; br < block_rows; ++br) {
    for (int64_t bc = 0; bc < block_cols; ++bc) {
      bool any = false;
      Half block[kBcsrBlockDim * kBcsrBlockDim];
      for (int r = 0; r < kBcsrBlockDim; ++r) {
        for (int c = 0; c < kBcsrBlockDim; ++c) {
          const Half v = PaddedAt(w, br * kBcsrBlockDim + r, bc * kBcsrBlockDim + c);
          block[r * kBcsrBlockDim + c] = v;
          any = any || !v.IsZero();
        }
      }
      if (any) {
        m.block_cols_.push_back(static_cast<uint32_t>(bc));
        m.block_values_.insert(m.block_values_.end(), block,
                               block + kBcsrBlockDim * kBcsrBlockDim);
      }
    }
    m.block_row_ptr_.push_back(static_cast<uint32_t>(m.block_cols_.size()));
  }
  return m;
}

HalfMatrix BcsrMatrix::Decode() const {
  HalfMatrix w(rows_, cols_);
  for (int64_t br = 0; br + 1 < static_cast<int64_t>(block_row_ptr_.size()); ++br) {
    for (uint32_t b = block_row_ptr_[br]; b < block_row_ptr_[br + 1]; ++b) {
      const int64_t bc = block_cols_[b];
      for (int r = 0; r < kBcsrBlockDim; ++r) {
        for (int c = 0; c < kBcsrBlockDim; ++c) {
          const int64_t rr = br * kBcsrBlockDim + r;
          const int64_t cc = bc * kBcsrBlockDim + c;
          if (rr < rows_ && cc < cols_) {
            w.at(rr, cc) = block_values_[static_cast<size_t>(b) * kBcsrBlockDim * kBcsrBlockDim +
                                         r * kBcsrBlockDim + c];
          }
        }
      }
    }
  }
  return w;
}

uint64_t BcsrMatrix::StorageBytes() const {
  return 2ull * block_values_.size() + 4ull * block_cols_.size() +
         4ull * block_row_ptr_.size();
}

}  // namespace spinfer
