#include "src/format/tca_bme.h"

#include <bit>
#include <utility>

#include "src/format/sparse_util.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace spinfer {
namespace {

// Top-left corner of quadrant q (column-major: TL, BL, TR, BR) within a
// 16x16 TCTile.
constexpr int QuadrantRow(int q) { return (q % 2) * kBitmapTileDim; }
constexpr int QuadrantCol(int q) { return (q / 2) * kBitmapTileDim; }

}  // namespace

int64_t TcaBmeMatrix::BitmapIndex(int64_t gt, int tc, int quadrant) const {
  SPINFER_CHECK(gt >= 0 && gt < num_group_tiles());
  SPINFER_CHECK(tc >= 0 && tc < tcs_per_gt());
  SPINFER_CHECK(quadrant >= 0 && quadrant < 4);
  return (gt * tcs_per_gt() + tc) * 4 + quadrant;
}

TcaBmeMatrix TcaBmeMatrix::Encode(const HalfMatrix& w, const TcaBmeConfig& cfg) {
  SPINFER_CHECK(cfg.gt_rows > 0 && cfg.gt_rows % kTcTileDim == 0);
  SPINFER_CHECK(cfg.gt_cols > 0 && cfg.gt_cols % kTcTileDim == 0);
  SPINFER_CHECK(cfg.value_align_halves >= 1);

  TcaBmeMatrix m;
  m.rows_ = w.rows();
  m.cols_ = w.cols();
  m.cfg_ = cfg;
  m.padded_rows_ = PadUp(w.rows(), cfg.gt_rows);
  m.padded_cols_ = PadUp(w.cols(), cfg.gt_cols);

  const int64_t grid_r = m.gt_grid_rows();
  const int64_t grid_c = m.gt_grid_cols();
  const int tc_rows = m.tc_rows_per_gt();
  const int tc_cols = m.tc_cols_per_gt();

  // Phase 1 (parallel): each GroupTile row builds its bitmap and value
  // segments into private buffers. Every tile's encoding is a pure function
  // of the input, and each segment is padded to the alignment boundary
  // locally, so the per-row buffers are independent of thread count.
  struct RowSegments {
    std::vector<uint64_t> bitmaps;
    std::vector<Half> values;
    int64_t nnz = 0;
  };
  std::vector<RowSegments> row_segs(static_cast<size_t>(grid_r));
  std::vector<std::vector<uint32_t>> row_seg_sizes(static_cast<size_t>(grid_r));

  ParallelFor(0, grid_r, [&](int64_t gr) {
    RowSegments& seg = row_segs[gr];
    std::vector<uint32_t>& sizes = row_seg_sizes[gr];
    seg.bitmaps.reserve(static_cast<size_t>(grid_c) * m.tcs_per_gt() * 4);
    sizes.reserve(static_cast<size_t>(grid_c));
    for (int64_t gc = 0; gc < grid_c; ++gc) {
      const int64_t base_r = gr * cfg.gt_rows;
      const int64_t base_c = gc * cfg.gt_cols;
      // TCTiles in column-major order within the GroupTile.
      for (int tcc = 0; tcc < tc_cols; ++tcc) {
        for (int tcr = 0; tcr < tc_rows; ++tcr) {
          const int64_t tc_r = base_r + static_cast<int64_t>(tcr) * kTcTileDim;
          const int64_t tc_c = base_c + static_cast<int64_t>(tcc) * kTcTileDim;
          // Quadrants (BitmapTiles) in column-major order: TL, BL, TR, BR.
          for (int q = 0; q < 4; ++q) {
            const int64_t bt_r = tc_r + QuadrantRow(q);
            const int64_t bt_c = tc_c + QuadrantCol(q);
            uint64_t bitmap = 0;
            for (int r = 0; r < kBitmapTileDim; ++r) {
              for (int c = 0; c < kBitmapTileDim; ++c) {
                const Half v = PaddedAt(w, bt_r + r, bt_c + c);
                if (!v.IsZero()) {
                  bitmap |= 1ull << (r * kBitmapTileDim + c);
                  seg.values.push_back(v);
                  ++seg.nnz;
                }
              }
            }
            seg.bitmaps.push_back(bitmap);
          }
        }
      }
      // Pad this GroupTile's Values segment so the next segment starts on an
      // LDGSTS.128-compatible boundary. Because every segment length is a
      // multiple of the alignment, local padding equals the sequential
      // encoder's padding against the absolute cursor.
      while (seg.values.size() % static_cast<size_t>(cfg.value_align_halves) != 0) {
        seg.values.push_back(Half(0.0f));
      }
      sizes.push_back(static_cast<uint32_t>(seg.values.size()));
    }
  });

  // Phase 2 (sequential): concatenate the per-row buffers in GroupTile-row
  // order, reproducing the exact arrays the sequential encoder emits.
  m.gtile_offsets_.reserve(static_cast<size_t>(grid_r * grid_c) + 1);
  m.gtile_offsets_.push_back(0);
  m.bitmaps_.reserve(static_cast<size_t>(grid_r * grid_c) * m.tcs_per_gt() * 4);
  for (int64_t gr = 0; gr < grid_r; ++gr) {
    RowSegments& seg = row_segs[gr];
    const uint32_t base = static_cast<uint32_t>(m.values_.size());
    for (const uint32_t end_within_row : row_seg_sizes[gr]) {
      m.gtile_offsets_.push_back(base + end_within_row);
    }
    m.bitmaps_.insert(m.bitmaps_.end(), seg.bitmaps.begin(), seg.bitmaps.end());
    m.values_.insert(m.values_.end(), seg.values.begin(), seg.values.end());
    m.nnz_ += seg.nnz;
    seg = RowSegments{};  // release the staging memory eagerly
  }
  return m;
}

std::optional<TcaBmeMatrix> TcaBmeMatrix::FromParts(int64_t rows, int64_t cols,
                                                    const TcaBmeConfig& cfg,
                                                    std::vector<uint32_t> gtile_offsets,
                                                    std::vector<uint64_t> bitmaps,
                                                    std::vector<Half> values,
                                                    std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<TcaBmeMatrix> {
    if (error != nullptr) {
      *error = msg;
    }
    return std::nullopt;
  };
  if (rows <= 0 || cols <= 0) {
    return fail("non-positive dimensions");
  }
  if (cfg.gt_rows <= 0 || cfg.gt_rows % kTcTileDim != 0 || cfg.gt_cols <= 0 ||
      cfg.gt_cols % kTcTileDim != 0 || cfg.value_align_halves < 1) {
    return fail("invalid GroupTile configuration");
  }
  TcaBmeMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.cfg_ = cfg;
  m.padded_rows_ = PadUp(rows, cfg.gt_rows);
  m.padded_cols_ = PadUp(cols, cfg.gt_cols);

  const int64_t ngt = m.num_group_tiles();
  const int64_t nbt = ngt * m.tcs_per_gt() * 4;
  if (static_cast<int64_t>(gtile_offsets.size()) != ngt + 1) {
    return fail("GTileOffset array has wrong length");
  }
  if (static_cast<int64_t>(bitmaps.size()) != nbt) {
    return fail("Bitmap array has wrong length");
  }
  if (gtile_offsets.front() != 0 || gtile_offsets.back() != values.size()) {
    return fail("GTileOffset sentinel values do not delimit the Values array");
  }
  int64_t nnz = 0;
  for (int64_t gt = 0; gt < ngt; ++gt) {
    if (gtile_offsets[gt] > gtile_offsets[gt + 1]) {
      return fail("GTileOffset array is not monotone");
    }
    if (gtile_offsets[gt] % static_cast<uint32_t>(cfg.value_align_halves) != 0) {
      return fail("GroupTile segment start violates alignment");
    }
    int64_t bits = 0;
    for (int tc = 0; tc < m.tcs_per_gt(); ++tc) {
      for (int q = 0; q < 4; ++q) {
        bits += std::popcount(bitmaps[(gt * m.tcs_per_gt() + tc) * 4 + q]);
      }
    }
    const int64_t seg = gtile_offsets[gt + 1] - gtile_offsets[gt];
    if (bits > seg || seg - bits >= cfg.value_align_halves) {
      return fail("bitmap popcount inconsistent with Values segment size");
    }
    nnz += bits;
  }
  m.nnz_ = nnz;
  m.gtile_offsets_ = std::move(gtile_offsets);
  m.bitmaps_ = std::move(bitmaps);
  m.values_ = std::move(values);
  return m;
}

HalfMatrix TcaBmeMatrix::Decode() const {
  HalfMatrix w(rows_, cols_);
  const int tc_rows = tc_rows_per_gt();
  const int tc_cols = tc_cols_per_gt();

  for (int64_t gt = 0; gt < num_group_tiles(); ++gt) {
    const int64_t gr = gt / gt_grid_cols();
    const int64_t gc = gt % gt_grid_cols();
    size_t cursor = gtile_offsets_[gt];
    for (int tcc = 0; tcc < tc_cols; ++tcc) {
      for (int tcr = 0; tcr < tc_rows; ++tcr) {
        const int tc = tcc * tc_rows + tcr;
        for (int q = 0; q < 4; ++q) {
          const uint64_t bitmap = bitmaps_[BitmapIndex(gt, tc, q)];
          const int64_t bt_r =
              gr * cfg_.gt_rows + static_cast<int64_t>(tcr) * kTcTileDim + QuadrantRow(q);
          const int64_t bt_c =
              gc * cfg_.gt_cols + static_cast<int64_t>(tcc) * kTcTileDim + QuadrantCol(q);
          for (int bit = 0; bit < 64; ++bit) {
            if ((bitmap >> bit) & 1ull) {
              const int64_t r = bt_r + bit / kBitmapTileDim;
              const int64_t c = bt_c + bit % kBitmapTileDim;
              SPINFER_CHECK(r < padded_rows_ && c < padded_cols_);
              if (r < rows_ && c < cols_) {
                w.at(r, c) = values_[cursor];
              }
              ++cursor;
            }
          }
        }
      }
    }
    SPINFER_CHECK(cursor <= gtile_offsets_[gt + 1]);
  }
  return w;
}

uint64_t TcaBmeMatrix::StorageBytes() const {
  return 4ull * gtile_offsets_.size() + 8ull * bitmaps_.size() + 2ull * values_.size();
}

double TcaBmeMatrix::CompressionRatio() const {
  const double dense = 2.0 * static_cast<double>(rows_) * static_cast<double>(cols_);
  return dense / static_cast<double>(StorageBytes());
}

uint64_t TcaBmeStorageModel(int64_t m, int64_t k, int64_t nnz, const TcaBmeConfig& cfg) {
  const int64_t pm = PadUp(m, cfg.gt_rows);
  const int64_t pk = PadUp(k, cfg.gt_cols);
  const int64_t ngt = (pm / cfg.gt_rows) * (pk / cfg.gt_cols);
  const int64_t nbt = (pm / kBitmapTileDim) * (pk / kBitmapTileDim);
  return 4ull * static_cast<uint64_t>(ngt + 1) + 8ull * static_cast<uint64_t>(nbt) +
         2ull * static_cast<uint64_t>(nnz);
}

}  // namespace spinfer
