#include "src/format/reorder.h"

#include <algorithm>
#include <numeric>

#include "src/util/check.h"

namespace spinfer {
namespace {

std::vector<int64_t> RowNnz(const HalfMatrix& w) {
  std::vector<int64_t> nnz(static_cast<size_t>(w.rows()), 0);
  for (int64_t r = 0; r < w.rows(); ++r) {
    for (int64_t c = 0; c < w.cols(); ++c) {
      nnz[r] += !w.at(r, c).IsZero();
    }
  }
  return nnz;
}

}  // namespace

HalfMatrix RowPermutation::Apply(const HalfMatrix& w) const {
  SPINFER_CHECK_EQ(static_cast<int64_t>(order.size()), w.rows());
  HalfMatrix out(w.rows(), w.cols());
  for (int64_t i = 0; i < w.rows(); ++i) {
    for (int64_t c = 0; c < w.cols(); ++c) {
      out.at(i, c) = w.at(order[i], c);
    }
  }
  return out;
}

FloatMatrix RowPermutation::Unapply(const FloatMatrix& o) const {
  SPINFER_CHECK_EQ(static_cast<int64_t>(order.size()), o.rows());
  FloatMatrix out(o.rows(), o.cols());
  for (int64_t i = 0; i < o.rows(); ++i) {
    for (int64_t c = 0; c < o.cols(); ++c) {
      out.at(order[i], c) = o.at(i, c);
    }
  }
  return out;
}

RowPermutation BalanceRows(const HalfMatrix& w, int group_rows) {
  SPINFER_CHECK(group_rows > 0);
  const int64_t rows = w.rows();
  const std::vector<int64_t> nnz = RowNnz(w);
  std::vector<uint32_t> by_weight(static_cast<size_t>(rows));
  std::iota(by_weight.begin(), by_weight.end(), 0u);
  std::sort(by_weight.begin(), by_weight.end(), [&](uint32_t a, uint32_t b) {
    if (nnz[a] != nnz[b]) {
      return nnz[a] > nnz[b];
    }
    return a < b;
  });

  // Round-robin deal: the i-th heaviest row goes to group i mod num_groups,
  // so every group receives one row from each weight stratum. When rows is a
  // multiple of group_rows every group ends up exactly group_rows tall, so
  // flattened positions align with real GroupTile row boundaries.
  const int64_t num_groups = (rows + group_rows - 1) / group_rows;
  std::vector<std::vector<uint32_t>> groups(static_cast<size_t>(num_groups));
  int64_t g = 0;
  for (uint32_t row : by_weight) {
    groups[g].push_back(row);
    g = (g + 1) % num_groups;
  }

  RowPermutation perm;
  perm.order.reserve(static_cast<size_t>(rows));
  for (const auto& group : groups) {
    for (uint32_t row : group) {
      perm.order.push_back(row);
    }
  }
  return perm;
}

double RowGroupImbalance(const HalfMatrix& w, int group_rows) {
  SPINFER_CHECK(group_rows > 0);
  const std::vector<int64_t> nnz = RowNnz(w);
  const int64_t num_groups =
      (w.rows() + group_rows - 1) / group_rows;
  int64_t max_group = 0;
  int64_t total = 0;
  for (int64_t g = 0; g < num_groups; ++g) {
    int64_t sum = 0;
    for (int64_t r = g * group_rows; r < std::min<int64_t>(w.rows(), (g + 1) * group_rows);
         ++r) {
      sum += nnz[r];
    }
    max_group = std::max(max_group, sum);
    total += sum;
  }
  if (total == 0) {
    return 1.0;
  }
  const double mean = static_cast<double>(total) / static_cast<double>(num_groups);
  return static_cast<double>(max_group) / mean;
}

}  // namespace spinfer
