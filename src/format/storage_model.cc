#include "src/format/storage_model.h"

#include <cmath>

#include "src/util/check.h"

namespace spinfer {

double CompressionRatio(int64_t m, int64_t k, uint64_t format_bytes) {
  SPINFER_CHECK(format_bytes > 0);
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) /
         static_cast<double>(format_bytes);
}

double OptimalCompressionRatio(double sparsity) {
  SPINFER_CHECK(sparsity >= 0.0 && sparsity < 1.0);
  return 1.0 / (1.0 - sparsity);
}

uint64_t CsrStorageModel(int64_t m, int64_t nnz) {
  return 6ull * static_cast<uint64_t>(nnz) + 4ull * static_cast<uint64_t>(m + 1);
}

uint64_t TiledCslStorageModel(int64_t num_tiles, int64_t nnz) {
  return 4ull * static_cast<uint64_t>(num_tiles) + 4ull * static_cast<uint64_t>(nnz);
}

double SpartaExpectedCsrNnz(int64_t m, int64_t k, double sparsity) {
  const double s = sparsity;
  const double d = 1.0 - s;
  // P(3 nonzeros in a 4-group) puts 1 in CSR; P(4 nonzeros) puts 2.
  const double per_group = 4.0 * d * d * d * s + 2.0 * d * d * d * d;
  return static_cast<double>(m) * static_cast<double>(k) / 4.0 * per_group;
}

uint64_t SpartaStorageModel(int64_t m, int64_t k, double sparsity) {
  const double mk = static_cast<double>(m) * static_cast<double>(k);
  const double structured = (2.0 + 0.25) * mk / 2.0;
  const double e_csr = SpartaExpectedCsrNnz(m, k, sparsity);
  const double csr = 6.0 * e_csr + 4.0 * static_cast<double>(m + 1);
  return static_cast<uint64_t>(std::llround(structured + csr));
}

}  // namespace spinfer
