// SparTA's composable sparse decomposition (Zheng et al., OSDI'22; paper §3.2.1).
//
// The matrix splits into (a) a 2:4 semi-structured component — for every
// group of four consecutive elements in a row, up to two nonzeros are kept
// with 2-bit intra-group indices, executable on Sparse Tensor Cores — and
// (b) a CSR residual holding nonzeros that exceed the 2-per-group budget,
// executed on CUDA cores. Storage follows paper Eqs. 4–5.
#pragma once

#include <cstdint>
#include <vector>

#include "src/format/csr.h"
#include "src/numeric/matrix.h"

namespace spinfer {

class SpartaMatrix {
 public:
  // Encodes `w`. Columns are processed in groups of 4 (the trailing partial
  // group, if any, is padded with zeros for the 2:4 component).
  static SpartaMatrix Encode(const HalfMatrix& w);

  // Reconstructs the dense matrix (2:4 component + residual).
  HalfMatrix Decode() const;

  // Exact footprint: 2:4 values (2B each) + 2-bit metadata per kept slot +
  // CSR residual (paper Eq. 5).
  uint64_t StorageBytes() const;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  // Number of nonzeros routed to the 2:4 component / the CSR residual.
  int64_t structured_nnz() const { return structured_nnz_; }
  int64_t residual_nnz() const { return residual_.nnz(); }

  const CsrMatrix& residual() const { return residual_; }

  // 2:4 component accessors: per 4-group, two value slots (zero-padded) and
  // two 2-bit indices packed into one byte.
  const std::vector<Half>& structured_values() const { return structured_values_; }
  const std::vector<uint8_t>& structured_meta() const { return structured_meta_; }
  int64_t groups_per_row() const { return groups_per_row_; }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t groups_per_row_ = 0;
  int64_t structured_nnz_ = 0;
  std::vector<Half> structured_values_;  // 2 slots per group
  std::vector<uint8_t> structured_meta_; // packed 2x2-bit indices per group
  CsrMatrix residual_;
};

}  // namespace spinfer
