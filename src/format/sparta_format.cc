#include "src/format/sparta_format.h"

#include "src/format/sparse_util.h"
#include "src/util/check.h"

namespace spinfer {

SpartaMatrix SpartaMatrix::Encode(const HalfMatrix& w) {
  SpartaMatrix m;
  m.rows_ = w.rows();
  m.cols_ = w.cols();
  m.groups_per_row_ = PadUp(w.cols(), 4) / 4;
  m.structured_values_.assign(static_cast<size_t>(m.rows_ * m.groups_per_row_ * 2),
                              Half(0.0f));
  m.structured_meta_.assign(static_cast<size_t>(m.rows_ * m.groups_per_row_), 0);

  // Residual nonzeros accumulate into a dense scratch matrix, then a CSR
  // encode at the end; this keeps the (rare) overflow path simple.
  HalfMatrix residual_dense(w.rows(), w.cols());

  for (int64_t r = 0; r < m.rows_; ++r) {
    for (int64_t g = 0; g < m.groups_per_row_; ++g) {
      int kept = 0;
      const int64_t group_index = r * m.groups_per_row_ + g;
      uint8_t meta = 0;
      for (int i = 0; i < 4; ++i) {
        const int64_t c = g * 4 + i;
        const Half v = PaddedAt(w, r, c);
        if (v.IsZero()) {
          continue;
        }
        if (kept < 2) {
          // First two nonzeros of the group go to the 2:4 component.
          m.structured_values_[group_index * 2 + kept] = v;
          meta |= static_cast<uint8_t>(i) << (2 * kept);
          ++kept;
          ++m.structured_nnz_;
        } else {
          residual_dense.at(r, c) = v;
        }
      }
      // Unused second slot points at an index distinct from slot 0 so
      // decoders can rely on meta alone plus the zero value.
      m.structured_meta_[group_index] = meta;
    }
  }
  m.residual_ = CsrMatrix::Encode(residual_dense);
  return m;
}

HalfMatrix SpartaMatrix::Decode() const {
  HalfMatrix w = residual_.Decode();
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t g = 0; g < groups_per_row_; ++g) {
      const int64_t group_index = r * groups_per_row_ + g;
      const uint8_t meta = structured_meta_[group_index];
      for (int slot = 0; slot < 2; ++slot) {
        const Half v = structured_values_[group_index * 2 + slot];
        if (v.IsZero()) {
          continue;
        }
        const int i = (meta >> (2 * slot)) & 0x3;
        const int64_t c = g * 4 + i;
        SPINFER_CHECK(c < cols_);
        w.at(r, c) = v;
      }
    }
  }
  return w;
}

uint64_t SpartaMatrix::StorageBytes() const {
  // 2:4 component: MK/2 FP16 slots + one 2-bit index per slot (B/4 each),
  // i.e. (2B + 0.25B) * MK/2 — paper Eq. 5's first term — plus the residual
  // CSR footprint.
  const uint64_t slots = structured_values_.size();
  const uint64_t structured = 2ull * slots + (slots + 3) / 4;
  return structured + residual_.StorageBytes();
}

}  // namespace spinfer
