// Tensor-Core-Aware Bitmap Encoding — SpInfer's sparse format (paper §4.2).
//
// Three nested tile levels align the encoding with the GPU execution
// hierarchy:
//   * BitmapTile (8×8): the Tensor Core's minimum matrix unit. A native
//     uint64_t bitmap marks nonzero positions; bit (r*8 + c) covers element
//     (r, c), so warp lane i owns bits 2i and 2i+1 — exactly the two A-operand
//     halves lane i feeds to mma.m16n8k16 (see gpusim/tensor_core.h).
//   * TCTile (16×16): one mma.m16n8k16 A operand = 2×2 BitmapTiles in
//     column-major order (TL, BL, TR, BR), mirroring registers Ra0..Ra3.
//   * GroupTile (GT_H×GT_W): the thread-block tile. GroupTiles are stored
//     row-major over the matrix; TCTiles column-major within a GroupTile.
//
// Storage uses three arrays (paper Eq. 9):
//   GTileOffset — uint32 start offset (in FP16 elements) of every GroupTile's
//                 Values segment, +1 sentinel;
//   Values      — FP16 nonzeros in nested (GroupTile, TCTile, BitmapTile,
//                 bit-order) order, each GroupTile segment padded to an
//                 8-byte boundary so LDGSTS.128 vector copies stay aligned;
//   Bitmap      — one uint64_t per BitmapTile, same nesting.
//
// No per-element index is stored: positions are implied by the bitmap, and
// per-lane value offsets are recomputed online with PopCount/MaskedPopCount
// (SMBD, §4.3.3). That is the entire trick — indexing cost drops from 16–32
// bits per nonzero (Tiled-CSL/CSR) to one bit per *element*, keeping CR > 1
// even at 30% sparsity.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/numeric/matrix.h"

namespace spinfer {

inline constexpr int kBitmapTileDim = 8;   // BT_H == BT_W
inline constexpr int kTcTileDim = 16;      // TT_H == TT_W

struct TcaBmeConfig {
  // GroupTile shape; both must be multiples of kTcTileDim.
  int gt_rows = 64;
  int gt_cols = 64;
  // Values-segment alignment in FP16 elements (4 halves = 8 bytes, the
  // LDGSTS.128 starting-address requirement, §4.3.2).
  int value_align_halves = 4;
};

class TcaBmeMatrix {
 public:
  // Encodes `w`, padding virtually to GroupTile multiples (padding is zeros
  // and costs only bitmap space).
  static TcaBmeMatrix Encode(const HalfMatrix& w, const TcaBmeConfig& cfg = {});

  // Reassembles a matrix from raw arrays (the deserialization path).
  // Validates the structural invariants — config sanity, offset
  // monotonicity and alignment, bitmap popcounts fitting each GroupTile's
  // Values segment — and returns nullopt with a diagnostic in `error` if
  // the parts are inconsistent. Accepting inconsistent arrays would make
  // SMBD read out of bounds, so untrusted input must come through here.
  static std::optional<TcaBmeMatrix> FromParts(int64_t rows, int64_t cols,
                                               const TcaBmeConfig& cfg,
                                               std::vector<uint32_t> gtile_offsets,
                                               std::vector<uint64_t> bitmaps,
                                               std::vector<Half> values,
                                               std::string* error);

  // Reconstructs the dense matrix (exact roundtrip).
  HalfMatrix Decode() const;

  // Exact storage footprint including alignment padding.
  uint64_t StorageBytes() const;

  // CR = dense bytes / StorageBytes (paper Eq. 1).
  double CompressionRatio() const;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t padded_rows() const { return padded_rows_; }
  int64_t padded_cols() const { return padded_cols_; }
  int64_t nnz() const { return nnz_; }
  const TcaBmeConfig& config() const { return cfg_; }

  // GroupTile grid.
  int64_t gt_grid_rows() const { return padded_rows_ / cfg_.gt_rows; }
  int64_t gt_grid_cols() const { return padded_cols_ / cfg_.gt_cols; }
  int64_t num_group_tiles() const { return gt_grid_rows() * gt_grid_cols(); }
  // TCTiles per GroupTile (column-major grid of tc_rows x tc_cols).
  int tc_rows_per_gt() const { return cfg_.gt_rows / kTcTileDim; }
  int tc_cols_per_gt() const { return cfg_.gt_cols / kTcTileDim; }
  int tcs_per_gt() const { return tc_rows_per_gt() * tc_cols_per_gt(); }
  int64_t num_bitmap_tiles() const { return static_cast<int64_t>(bitmaps_.size()); }

  // Index into the Bitmap array for (GroupTile gt — row-major grid index,
  // TCTile tc — column-major index within the GroupTile, quadrant 0..3 —
  // column-major within the TCTile: TL, BL, TR, BR).
  int64_t BitmapIndex(int64_t gt, int tc, int quadrant) const;

  const std::vector<uint64_t>& bitmaps() const { return bitmaps_; }
  const std::vector<uint32_t>& gtile_offsets() const { return gtile_offsets_; }
  const std::vector<Half>& values() const { return values_; }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t padded_rows_ = 0;
  int64_t padded_cols_ = 0;
  int64_t nnz_ = 0;
  TcaBmeConfig cfg_;
  std::vector<uint32_t> gtile_offsets_;  // num_group_tiles + 1, element offsets
  std::vector<uint64_t> bitmaps_;        // one per BitmapTile
  std::vector<Half> values_;             // padded nonzero payload
};

// Closed-form Eq. 9 storage (without alignment padding), used by the
// analytical CR model; tests check it matches the encoder to within padding.
uint64_t TcaBmeStorageModel(int64_t m, int64_t k, int64_t nnz, const TcaBmeConfig& cfg = {});

}  // namespace spinfer
