// Shared helpers for sparse-format encoders.
#pragma once

#include <cstdint>

#include "src/numeric/matrix.h"

namespace spinfer {

// Rounds x up to the next multiple of m (m > 0).
constexpr int64_t PadUp(int64_t x, int64_t m) { return (x + m - 1) / m * m; }

// Reads w[r][c] treating out-of-range coordinates as zero — encoders use this
// to pad matrices to tile multiples without copying.
Half PaddedAt(const HalfMatrix& w, int64_t r, int64_t c);

}  // namespace spinfer
