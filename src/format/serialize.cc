#include "src/format/serialize.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/util/check.h"
#include "src/util/crc32.h"

namespace spinfer {
namespace {

constexpr uint32_t kMatrixMagic = 0x4d425053u;  // 'SPBM'
constexpr uint32_t kBundleMagic = 0x42575053u;  // 'SPWB'
constexpr uint32_t kVersion = 1;

// Append/read helpers. The container is little-endian; on a big-endian host
// these would need byte swaps — checked at compile time below.
static_assert(std::endian::native == std::endian::little,
              "serializer assumes a little-endian host");

template <typename T>
void Append(std::vector<uint8_t>& out, const T& v) {
  const auto* p = reinterpret_cast<const uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
void AppendArray(std::vector<uint8_t>& out, const T* data, size_t count) {
  const auto* p = reinterpret_cast<const uint8_t*>(data);
  out.insert(out.end(), p, p + sizeof(T) * count);
}

// Cursor-based reader with bounds checking.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Read(T* out) {
    if (pos_ + sizeof(T) > size_) {
      return false;
    }
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  template <typename T>
  bool ReadArray(std::vector<T>* out, uint64_t count) {
    // Guard count * sizeof(T) overflow and truncation.
    if (count > (size_ - pos_) / sizeof(T)) {
      return false;
    }
    out->resize(count);
    std::memcpy(out->data(), data_ + pos_, sizeof(T) * count);
    pos_ += sizeof(T) * count;
    return true;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Reads one named scalar field, reporting which field ran off the end of the
// buffer (and where) instead of a bare failure.
template <typename T>
bool ReadField(Reader& r, T* out, const char* field, std::string* error) {
  if (r.Read(out)) {
    return true;
  }
  if (error != nullptr) {
    *error = std::string("truncated container: field '") + field + "' needs " +
             std::to_string(sizeof(T)) + " bytes at offset " + std::to_string(r.pos()) +
             " but only " + std::to_string(r.remaining()) + " remain";
  }
  return false;
}

template <typename T>
bool ReadArrayField(Reader& r, std::vector<T>* out, uint64_t count, const char* field,
                    std::string* error) {
  if (r.ReadArray(out, count)) {
    return true;
  }
  if (error != nullptr) {
    *error = std::string("truncated container: array '") + field + "' declares " +
             std::to_string(count) + " elements (" +
             std::to_string(count * sizeof(T)) + " bytes) at offset " +
             std::to_string(r.pos()) + " but only " + std::to_string(r.remaining()) +
             " bytes remain";
  }
  return false;
}

void AppendMatrixBody(std::vector<uint8_t>& out, const TcaBmeMatrix& m) {
  Append(out, kMatrixMagic);
  Append(out, kVersion);
  Append(out, static_cast<int64_t>(m.rows()));
  Append(out, static_cast<int64_t>(m.cols()));
  Append(out, static_cast<int32_t>(m.config().gt_rows));
  Append(out, static_cast<int32_t>(m.config().gt_cols));
  Append(out, static_cast<int32_t>(m.config().value_align_halves));
  Append(out, static_cast<uint64_t>(m.gtile_offsets().size()));
  Append(out, static_cast<uint64_t>(m.bitmaps().size()));
  Append(out, static_cast<uint64_t>(m.values().size()));
  AppendArray(out, m.gtile_offsets().data(), m.gtile_offsets().size());
  AppendArray(out, m.bitmaps().data(), m.bitmaps().size());
  AppendArray(out, m.values().data(), m.values().size());
}

std::optional<TcaBmeMatrix> ReadMatrixBody(Reader& r, std::string* error) {
  uint32_t magic = 0;
  if (!ReadField(r, &magic, "matrix magic", error)) {
    return std::nullopt;
  }
  if (magic != kMatrixMagic) {
    if (error != nullptr) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "bad matrix magic 0x%08x (expected 0x%08x 'SPBM')", magic,
                    kMatrixMagic);
      *error = buf;
    }
    return std::nullopt;
  }
  uint32_t version = 0;
  if (!ReadField(r, &version, "matrix version", error)) {
    return std::nullopt;
  }
  if (version != kVersion) {
    if (error != nullptr) {
      *error = "unsupported matrix version " + std::to_string(version) +
               " (this build reads version " + std::to_string(kVersion) + ")";
    }
    return std::nullopt;
  }
  int64_t rows = 0;
  int64_t cols = 0;
  int32_t gt_rows = 0;
  int32_t gt_cols = 0;
  int32_t align = 0;
  uint64_t n_offsets = 0;
  uint64_t n_bitmaps = 0;
  uint64_t n_values = 0;
  if (!ReadField(r, &rows, "rows", error) || !ReadField(r, &cols, "cols", error) ||
      !ReadField(r, &gt_rows, "gt_rows", error) ||
      !ReadField(r, &gt_cols, "gt_cols", error) ||
      !ReadField(r, &align, "value_align_halves", error) ||
      !ReadField(r, &n_offsets, "gtile_offsets count", error) ||
      !ReadField(r, &n_bitmaps, "bitmaps count", error) ||
      !ReadField(r, &n_values, "values count", error)) {
    return std::nullopt;
  }
  std::vector<uint32_t> offsets;
  std::vector<uint64_t> bitmaps;
  std::vector<Half> values;
  if (!ReadArrayField(r, &offsets, n_offsets, "gtile_offsets", error) ||
      !ReadArrayField(r, &bitmaps, n_bitmaps, "bitmaps", error) ||
      !ReadArrayField(r, &values, n_values, "values", error)) {
    return std::nullopt;
  }
  TcaBmeConfig cfg;
  cfg.gt_rows = gt_rows;
  cfg.gt_cols = gt_cols;
  cfg.value_align_halves = align;
  return TcaBmeMatrix::FromParts(rows, cols, cfg, std::move(offsets),
                                 std::move(bitmaps), std::move(values), error);
}

bool WriteFile(const std::string& path, const std::vector<uint8_t>& bytes,
               std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open for writing: " + path;
    }
    return false;
  }
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!ok && error != nullptr) {
    *error = "short write: " + path;
  }
  return ok;
}

std::optional<std::vector<uint8_t>> ReadFile(const std::string& path,
                                             std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open for reading: " + path;
    }
    return std::nullopt;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const bool ok = std::fread(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!ok) {
    if (error != nullptr) {
      *error = "short read: " + path;
    }
    return std::nullopt;
  }
  return bytes;
}

void AppendCrc(std::vector<uint8_t>& out) {
  const uint32_t crc = Crc32(out.data(), out.size());
  Append(out, crc);
}

// Verifies and strips the trailing CRC; returns the payload size.
bool CheckCrc(const std::vector<uint8_t>& bytes, size_t* payload_size,
              std::string* error) {
  if (bytes.size() < sizeof(uint32_t)) {
    if (error != nullptr) {
      *error = "container too small";
    }
    return false;
  }
  const size_t payload = bytes.size() - sizeof(uint32_t);
  uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + payload, sizeof(stored));
  if (Crc32(bytes.data(), payload) != stored) {
    if (error != nullptr) {
      *error = "CRC mismatch (corrupted container)";
    }
    return false;
  }
  *payload_size = payload;
  return true;
}

}  // namespace

std::vector<uint8_t> SerializeTcaBme(const TcaBmeMatrix& m) {
  std::vector<uint8_t> out;
  out.reserve(m.StorageBytes() + 64);
  AppendMatrixBody(out, m);
  AppendCrc(out);
  return out;
}

std::optional<TcaBmeMatrix> DeserializeTcaBme(const std::vector<uint8_t>& bytes,
                                              std::string* error) {
  size_t payload = 0;
  if (!CheckCrc(bytes, &payload, error)) {
    return std::nullopt;
  }
  Reader r(bytes.data(), payload);
  return ReadMatrixBody(r, error);
}

bool SaveTcaBme(const std::string& path, const TcaBmeMatrix& m, std::string* error) {
  return WriteFile(path, SerializeTcaBme(m), error);
}

std::optional<TcaBmeMatrix> LoadTcaBme(const std::string& path, std::string* error) {
  const auto bytes = ReadFile(path, error);
  if (!bytes) {
    return std::nullopt;
  }
  return DeserializeTcaBme(*bytes, error);
}

void WeightBundle::Add(const std::string& name, TcaBmeMatrix m) {
  layers_.insert_or_assign(name, std::move(m));
}

const TcaBmeMatrix* WeightBundle::Find(const std::string& name) const {
  const auto it = layers_.find(name);
  return it == layers_.end() ? nullptr : &it->second;
}

std::vector<std::string> WeightBundle::Names() const {
  std::vector<std::string> names;
  names.reserve(layers_.size());
  for (const auto& [name, m] : layers_) {
    names.push_back(name);
  }
  return names;
}

uint64_t WeightBundle::TotalStorageBytes() const {
  uint64_t total = 0;
  for (const auto& [name, m] : layers_) {
    total += m.StorageBytes();
  }
  return total;
}

std::vector<uint8_t> WeightBundle::Serialize() const {
  std::vector<uint8_t> out;
  Append(out, kBundleMagic);
  Append(out, kVersion);
  Append(out, static_cast<uint64_t>(layers_.size()));
  for (const auto& [name, m] : layers_) {
    Append(out, static_cast<uint64_t>(name.size()));
    AppendArray(out, name.data(), name.size());
    AppendMatrixBody(out, m);
  }
  AppendCrc(out);
  return out;
}

std::optional<WeightBundle> WeightBundle::Deserialize(const std::vector<uint8_t>& bytes,
                                                      std::string* error) {
  size_t payload = 0;
  if (!CheckCrc(bytes, &payload, error)) {
    return std::nullopt;
  }
  Reader r(bytes.data(), payload);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t count = 0;
  if (!ReadField(r, &magic, "bundle magic", error)) {
    return std::nullopt;
  }
  if (magic != kBundleMagic) {
    if (error != nullptr) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "bad bundle magic 0x%08x (expected 0x%08x 'SPWB')", magic,
                    kBundleMagic);
      *error = buf;
    }
    return std::nullopt;
  }
  if (!ReadField(r, &version, "bundle version", error)) {
    return std::nullopt;
  }
  if (version != kVersion) {
    if (error != nullptr) {
      *error = "unsupported bundle version " + std::to_string(version) +
               " (this build reads version " + std::to_string(kVersion) + ")";
    }
    return std::nullopt;
  }
  if (!ReadField(r, &count, "layer count", error)) {
    return std::nullopt;
  }
  WeightBundle bundle;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    if (!ReadField(r, &name_len, "layer name length", error)) {
      return std::nullopt;
    }
    std::vector<char> name_buf;
    if (!ReadArrayField(r, &name_buf, name_len, "layer name", error)) {
      return std::nullopt;
    }
    auto m = ReadMatrixBody(r, error);
    if (!m) {
      if (error != nullptr) {
        *error = "layer " + std::to_string(i) + " ('" +
                 std::string(name_buf.begin(), name_buf.end()) + "'): " + *error;
      }
      return std::nullopt;
    }
    bundle.Add(std::string(name_buf.begin(), name_buf.end()), std::move(*m));
  }
  return bundle;
}

bool WeightBundle::Save(const std::string& path, std::string* error) const {
  return WriteFile(path, Serialize(), error);
}

std::optional<WeightBundle> WeightBundle::Load(const std::string& path,
                                               std::string* error) {
  const auto bytes = ReadFile(path, error);
  if (!bytes) {
    return std::nullopt;
  }
  return Deserialize(*bytes, error);
}

}  // namespace spinfer
