// Tiled-CSL: Flash-LLM's sparse format (Xia et al., VLDB'23; paper §3.2.1).
//
// The matrix is partitioned into tiles; each nonzero is stored as one 32-bit
// word packing the FP16 value (high half) with its 16-bit intra-tile linear
// location (low half). A TileOffsets array locates each tile's segment. The
// per-nonzero 16-bit index makes the indexing overhead equal to the data
// itself — the storage gap the paper's Eq. 2 quantifies.
#pragma once

#include <cstdint>
#include <vector>

#include "src/numeric/matrix.h"

namespace spinfer {

struct TiledCslConfig {
  // Tile shape; Flash-LLM uses thread-block tiles of 64x64 along M x K.
  int tile_rows = 64;
  int tile_cols = 64;
};

class TiledCslMatrix {
 public:
  static TiledCslMatrix Encode(const HalfMatrix& w, const TiledCslConfig& cfg = {});

  HalfMatrix Decode() const;

  // Exact footprint: 4B per nonzero (value+location) + 4B per tile offset
  // (paper Eq. 2).
  uint64_t StorageBytes() const;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(nonzeros_.size()); }
  int64_t num_tiles() const { return static_cast<int64_t>(tile_offsets_.size()) - 1; }
  const TiledCslConfig& config() const { return cfg_; }

  const std::vector<uint32_t>& tile_offsets() const { return tile_offsets_; }
  const std::vector<uint32_t>& nonzeros() const { return nonzeros_; }

  // Unpacks one NonZeros entry.
  static Half EntryValue(uint32_t packed) {
    return Half::FromBits(static_cast<uint16_t>(packed >> 16));
  }
  static uint16_t EntryLocation(uint32_t packed) {
    return static_cast<uint16_t>(packed & 0xffffu);
  }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  TiledCslConfig cfg_;
  std::vector<uint32_t> tile_offsets_;  // num_tiles + 1
  std::vector<uint32_t> nonzeros_;      // packed (value, location)
};

}  // namespace spinfer
