// Binary serialization of TCA-BME matrices and named weight bundles.
//
// A deployment encodes each layer once offline (pruning + TCA-BME) and ships
// the compressed weights; at load time the inference engine memory-maps or
// reads them back. The container is little-endian with a magic/version
// header and a trailing CRC-32, and deserialization validates every
// structural invariant (via TcaBmeMatrix::FromParts) before handing data to
// the kernel — a corrupted file can never make SMBD read out of bounds.
//
// Layout (TCBM container):
//   u32 magic 'SPBM'   u32 version
//   i64 rows  i64 cols  i32 gt_rows  i32 gt_cols  i32 value_align
//   u64 n_offsets  u64 n_bitmaps  u64 n_values
//   u32 offsets[n_offsets]  u64 bitmaps[n_bitmaps]  u16 values[n_values]
//   u32 crc32 (over everything above)
//
// A bundle is 'SPWB', u32 version, u64 count, then length-prefixed names
// each followed by an embedded TCBM container, and a trailing CRC-32.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/format/tca_bme.h"

namespace spinfer {

// Serializes one matrix to the TCBM container format.
std::vector<uint8_t> SerializeTcaBme(const TcaBmeMatrix& m);

// Parses a TCBM container; returns nullopt with a diagnostic in `error` on
// truncation, bad magic/version, CRC mismatch, or structural inconsistency.
std::optional<TcaBmeMatrix> DeserializeTcaBme(const std::vector<uint8_t>& bytes,
                                              std::string* error);

// File convenience wrappers.
bool SaveTcaBme(const std::string& path, const TcaBmeMatrix& m, std::string* error);
std::optional<TcaBmeMatrix> LoadTcaBme(const std::string& path, std::string* error);

// A named collection of encoded layers — a pruned model checkpoint.
class WeightBundle {
 public:
  // Adds or replaces a layer.
  void Add(const std::string& name, TcaBmeMatrix m);

  // nullptr if absent.
  const TcaBmeMatrix* Find(const std::string& name) const;

  size_t size() const { return layers_.size(); }
  std::vector<std::string> Names() const;

  // Total encoded bytes across layers (the checkpoint's weight footprint).
  uint64_t TotalStorageBytes() const;

  std::vector<uint8_t> Serialize() const;
  static std::optional<WeightBundle> Deserialize(const std::vector<uint8_t>& bytes,
                                                 std::string* error);

  bool Save(const std::string& path, std::string* error) const;
  static std::optional<WeightBundle> Load(const std::string& path, std::string* error);

 private:
  std::map<std::string, TcaBmeMatrix> layers_;
};

}  // namespace spinfer
