#include "src/format/tiled_csl.h"

#include "src/format/sparse_util.h"
#include "src/util/check.h"

namespace spinfer {

TiledCslMatrix TiledCslMatrix::Encode(const HalfMatrix& w, const TiledCslConfig& cfg) {
  SPINFER_CHECK(cfg.tile_rows > 0 && cfg.tile_cols > 0);
  SPINFER_CHECK_MSG(cfg.tile_rows * cfg.tile_cols <= 65536,
                    "intra-tile location must fit in 16 bits");
  TiledCslMatrix m;
  m.rows_ = w.rows();
  m.cols_ = w.cols();
  m.cfg_ = cfg;

  const int64_t tiles_r = PadUp(w.rows(), cfg.tile_rows) / cfg.tile_rows;
  const int64_t tiles_c = PadUp(w.cols(), cfg.tile_cols) / cfg.tile_cols;
  m.tile_offsets_.reserve(static_cast<size_t>(tiles_r * tiles_c) + 1);
  m.tile_offsets_.push_back(0);

  for (int64_t tr = 0; tr < tiles_r; ++tr) {
    for (int64_t tc = 0; tc < tiles_c; ++tc) {
      for (int r = 0; r < cfg.tile_rows; ++r) {
        for (int c = 0; c < cfg.tile_cols; ++c) {
          const Half v = PaddedAt(w, tr * cfg.tile_rows + r, tc * cfg.tile_cols + c);
          if (!v.IsZero()) {
            const uint32_t location = static_cast<uint32_t>(r * cfg.tile_cols + c);
            m.nonzeros_.push_back((static_cast<uint32_t>(v.bits()) << 16) | location);
          }
        }
      }
      m.tile_offsets_.push_back(static_cast<uint32_t>(m.nonzeros_.size()));
    }
  }
  return m;
}

HalfMatrix TiledCslMatrix::Decode() const {
  HalfMatrix w(rows_, cols_);
  const int64_t tiles_c = PadUp(cols_, cfg_.tile_cols) / cfg_.tile_cols;
  for (int64_t t = 0; t + 1 < static_cast<int64_t>(tile_offsets_.size()); ++t) {
    const int64_t tr = t / tiles_c;
    const int64_t tc = t % tiles_c;
    for (uint32_t i = tile_offsets_[t]; i < tile_offsets_[t + 1]; ++i) {
      const uint16_t loc = EntryLocation(nonzeros_[i]);
      const int64_t r = tr * cfg_.tile_rows + loc / cfg_.tile_cols;
      const int64_t c = tc * cfg_.tile_cols + loc % cfg_.tile_cols;
      SPINFER_CHECK(r < rows_ && c < cols_);
      w.at(r, c) = EntryValue(nonzeros_[i]);
    }
  }
  return w;
}

uint64_t TiledCslMatrix::StorageBytes() const {
  return 4ull * nonzeros_.size() + 4ull * tile_offsets_.size();
}

}  // namespace spinfer
