// Quantized TCA-BME: bitmap sparsity composed with 8-bit weight quantization.
//
// The paper positions SpInfer as *complementary* to quantization (§2.3);
// this extension realizes the composition. The tile structure and bitmap
// indexing are identical to TcaBmeMatrix, but the Values payload stores
// INT8 codes with one FP16 scale per BitmapTile (symmetric absmax
// quantization at 8x8 granularity — fine enough to track local weight
// ranges, coarse enough to cost only 2B per 64 elements).
//
// Storage: Eq. 9 with 1B values plus 2B per BitmapTile of scales:
//   4B*(NGT+1) + 8B*NBT + 2B*NBT + 1B*NNZ
// At 50% sparsity this compresses ~3.5x vs dense FP16 (vs 1.78x unquantized).
#pragma once

#include <cstdint>
#include <vector>

#include "src/format/tca_bme.h"
#include "src/numeric/matrix.h"

namespace spinfer {

class TcaBmeQuantMatrix {
 public:
  // Encodes with per-BitmapTile absmax scaling. Zero entries stay exactly
  // zero (they are bitmap-encoded, not quantized).
  static TcaBmeQuantMatrix Encode(const HalfMatrix& w, const TcaBmeConfig& cfg = {});

  // Reconstructs the (dequantized) dense matrix. Lossy: entries carry
  // quantization error bounded by scale/2 per tile, but the *mask* is exact.
  HalfMatrix Decode() const;

  uint64_t StorageBytes() const;
  double CompressionRatio() const;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t padded_rows() const { return padded_rows_; }
  int64_t padded_cols() const { return padded_cols_; }
  int64_t nnz() const { return nnz_; }
  const TcaBmeConfig& config() const { return cfg_; }

  // Tile-grid geometry, mirroring TcaBmeMatrix: the storage nesting
  // (GroupTile row-major; TCTiles column-major within a GroupTile; quadrants
  // TL, BL, TR, BR) is identical, so kernels walking both formats share one
  // traversal. Bitmaps and scales are indexed by the same running BitmapTile
  // order the encoder pushed them in.
  int64_t gt_grid_rows() const { return padded_rows_ / cfg_.gt_rows; }
  int64_t gt_grid_cols() const { return padded_cols_ / cfg_.gt_cols; }
  int64_t num_group_tiles() const { return gt_grid_rows() * gt_grid_cols(); }
  int tc_rows_per_gt() const { return cfg_.gt_rows / kTcTileDim; }
  int tc_cols_per_gt() const { return cfg_.gt_cols / kTcTileDim; }
  int tcs_per_gt() const { return tc_rows_per_gt() * tc_cols_per_gt(); }
  int64_t BitmapIndex(int64_t gt, int tc, int quadrant) const {
    return (gt * tcs_per_gt() + tc) * 4 + quadrant;
  }

  const std::vector<uint32_t>& gtile_offsets() const { return gtile_offsets_; }
  const std::vector<uint64_t>& bitmaps() const { return bitmaps_; }
  const std::vector<int8_t>& codes() const { return codes_; }
  const std::vector<Half>& scales() const { return scales_; }  // one per BitmapTile

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t padded_rows_ = 0;
  int64_t padded_cols_ = 0;
  int64_t nnz_ = 0;
  TcaBmeConfig cfg_;
  std::vector<uint32_t> gtile_offsets_;  // offsets into codes_, per GroupTile
  std::vector<uint64_t> bitmaps_;
  std::vector<int8_t> codes_;
  std::vector<Half> scales_;
};

// Closed-form storage model for the quantized variant.
uint64_t TcaBmeQuantStorageModel(int64_t m, int64_t k, int64_t nnz,
                                 const TcaBmeConfig& cfg = {});

}  // namespace spinfer
