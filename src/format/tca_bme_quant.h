// Quantized TCA-BME: bitmap sparsity composed with 8-bit weight quantization.
//
// The paper positions SpInfer as *complementary* to quantization (§2.3);
// this extension realizes the composition. The tile structure and bitmap
// indexing are identical to TcaBmeMatrix, but the Values payload stores
// INT8 codes with one FP16 scale per BitmapTile (symmetric absmax
// quantization at 8x8 granularity — fine enough to track local weight
// ranges, coarse enough to cost only 2B per 64 elements).
//
// Storage: Eq. 9 with 1B values plus 2B per BitmapTile of scales:
//   4B*(NGT+1) + 8B*NBT + 2B*NBT + 1B*NNZ
// At 50% sparsity this compresses ~3.5x vs dense FP16 (vs 1.78x unquantized).
#pragma once

#include <cstdint>
#include <vector>

#include "src/format/tca_bme.h"
#include "src/numeric/matrix.h"

namespace spinfer {

class TcaBmeQuantMatrix {
 public:
  // Encodes with per-BitmapTile absmax scaling. Zero entries stay exactly
  // zero (they are bitmap-encoded, not quantized).
  static TcaBmeQuantMatrix Encode(const HalfMatrix& w, const TcaBmeConfig& cfg = {});

  // Reconstructs the (dequantized) dense matrix. Lossy: entries carry
  // quantization error bounded by scale/2 per tile, but the *mask* is exact.
  HalfMatrix Decode() const;

  uint64_t StorageBytes() const;
  double CompressionRatio() const;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return nnz_; }
  const TcaBmeConfig& config() const { return cfg_; }

  const std::vector<uint32_t>& gtile_offsets() const { return gtile_offsets_; }
  const std::vector<uint64_t>& bitmaps() const { return bitmaps_; }
  const std::vector<int8_t>& codes() const { return codes_; }
  const std::vector<Half>& scales() const { return scales_; }  // one per BitmapTile

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t padded_rows_ = 0;
  int64_t padded_cols_ = 0;
  int64_t nnz_ = 0;
  TcaBmeConfig cfg_;
  std::vector<uint32_t> gtile_offsets_;  // offsets into codes_, per GroupTile
  std::vector<uint64_t> bitmaps_;
  std::vector<int8_t> codes_;
  std::vector<Half> scales_;
};

// Closed-form storage model for the quantized variant.
uint64_t TcaBmeQuantStorageModel(int64_t m, int64_t k, int64_t nnz,
                                 const TcaBmeConfig& cfg = {});

}  // namespace spinfer
