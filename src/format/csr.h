// Compressed Sparse Row format.
//
// The classical format used by Sputnik and cuSPARSE-style CUDA-core SpMM
// (paper §3.2.1): FP16 values + 32-bit column indices + 32-bit row pointers.
// Its 4B-per-nonzero index overhead is exactly why CR < 1 below 50% sparsity
// (paper Eq. 3 / Fig. 3).
#pragma once

#include <cstdint>
#include <vector>

#include "src/numeric/matrix.h"

namespace spinfer {

class CsrMatrix {
 public:
  // Encodes `w`; zero entries (bit pattern +/-0) are dropped.
  static CsrMatrix Encode(const HalfMatrix& w);

  // Reconstructs the dense matrix.
  HalfMatrix Decode() const;

  // Exact storage footprint: 2B*nnz values + 4B*nnz column indices +
  // 4B*(rows+1) row pointers (paper Eq. 3).
  uint64_t StorageBytes() const;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  const std::vector<uint32_t>& row_ptr() const { return row_ptr_; }
  const std::vector<uint32_t>& col_idx() const { return col_idx_; }
  const std::vector<Half>& values() const { return values_; }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<uint32_t> row_ptr_;
  std::vector<uint32_t> col_idx_;
  std::vector<Half> values_;
};

}  // namespace spinfer
