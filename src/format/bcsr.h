// Block-CSR (BCSR) with 8x8 dense blocks — the storage scheme behind SMaT
// (Okanovic et al.; paper §5.1 "scientific workloads" comparison).
//
// Only blocks containing at least one nonzero are materialized; each stored
// block is fully dense (128B of FP16). At LLM-pruning sparsity nearly every
// block is nonzero, so BCSR degenerates to dense-plus-index storage — the
// reason SMaT only wins at extreme (>99.7%) sparsity (paper Fig. 11).
#pragma once

#include <cstdint>
#include <vector>

#include "src/numeric/matrix.h"

namespace spinfer {

inline constexpr int kBcsrBlockDim = 8;

class BcsrMatrix {
 public:
  static BcsrMatrix Encode(const HalfMatrix& w);

  HalfMatrix Decode() const;

  // Exact footprint: 128B per nonzero block + 4B block column index per
  // block + 4B row pointers.
  uint64_t StorageBytes() const;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t num_nonzero_blocks() const { return static_cast<int64_t>(block_cols_.size()); }
  int64_t num_block_rows() const { return static_cast<int64_t>(block_row_ptr_.size()) - 1; }

  const std::vector<uint32_t>& block_row_ptr() const { return block_row_ptr_; }
  const std::vector<uint32_t>& block_cols() const { return block_cols_; }
  // Block data, kBcsrBlockDim^2 values per block, row-major within a block.
  const std::vector<Half>& block_values() const { return block_values_; }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<uint32_t> block_row_ptr_;
  std::vector<uint32_t> block_cols_;
  std::vector<Half> block_values_;
};

}  // namespace spinfer
