#include "src/format/sparse_util.h"

namespace spinfer {

Half PaddedAt(const HalfMatrix& w, int64_t r, int64_t c) {
  if (r >= w.rows() || c >= w.cols()) {
    return Half(0.0f);
  }
  return w.at(r, c);
}

}  // namespace spinfer
