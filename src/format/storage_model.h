// Closed-form storage models for sparse formats — paper §3.2.1, Eqs. 1–5.
//
// These are the analytical counterparts of the real encoders in this
// directory; the Fig. 3 bench plots them, and tests validate each against
// the byte-exact encoder output (statistically, for SparTA's expectation).
#pragma once

#include <cstdint>

namespace spinfer {

// Eq. 1: CR = dense bytes / format bytes, dense = 2B * M * K.
double CompressionRatio(int64_t m, int64_t k, uint64_t format_bytes);

// The theoretical optimum (zero indexing overhead): CR = 1 / (1 - s).
double OptimalCompressionRatio(double sparsity);

// Eq. 3: Stor_CSR = (2B + 4B) * NNZ + 4B * (M + 1).
uint64_t CsrStorageModel(int64_t m, int64_t nnz);

// Eq. 2: Stor_Tiled-CSL = 4B * NT + 4B * NNZ, NT = number of tiles.
uint64_t TiledCslStorageModel(int64_t num_tiles, int64_t nnz);

// Eq. 4: expected residual-CSR nonzeros for SparTA under an i.i.d. Bernoulli
// mask of sparsity s:
//   E = (M*K/4) * (4*(1-s)^3*s + 2*(1-s)^4).
double SpartaExpectedCsrNnz(int64_t m, int64_t k, double sparsity);

// Eq. 5: Stor_SparTA = (2B + B/4) * (M*K/2) + Stor_CSR(E_CSR_nnz).
uint64_t SpartaStorageModel(int64_t m, int64_t k, double sparsity);

}  // namespace spinfer
