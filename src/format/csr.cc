#include "src/format/csr.h"

#include "src/util/check.h"

namespace spinfer {

CsrMatrix CsrMatrix::Encode(const HalfMatrix& w) {
  CsrMatrix m;
  m.rows_ = w.rows();
  m.cols_ = w.cols();
  m.row_ptr_.reserve(static_cast<size_t>(w.rows()) + 1);
  m.row_ptr_.push_back(0);
  for (int64_t r = 0; r < w.rows(); ++r) {
    for (int64_t c = 0; c < w.cols(); ++c) {
      const Half v = w.at(r, c);
      if (!v.IsZero()) {
        m.col_idx_.push_back(static_cast<uint32_t>(c));
        m.values_.push_back(v);
      }
    }
    m.row_ptr_.push_back(static_cast<uint32_t>(m.values_.size()));
  }
  return m;
}

HalfMatrix CsrMatrix::Decode() const {
  HalfMatrix w(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (uint32_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      w.at(r, col_idx_[i]) = values_[i];
    }
  }
  return w;
}

uint64_t CsrMatrix::StorageBytes() const {
  return 2ull * values_.size() + 4ull * col_idx_.size() + 4ull * row_ptr_.size();
}

}  // namespace spinfer
