#include "src/format/tca_bme_quant.h"

#include <algorithm>
#include <cmath>

#include "src/format/sparse_util.h"
#include "src/util/check.h"

namespace spinfer {
namespace {

constexpr int QuadrantRow(int q) { return (q % 2) * kBitmapTileDim; }
constexpr int QuadrantCol(int q) { return (q / 2) * kBitmapTileDim; }

}  // namespace

TcaBmeQuantMatrix TcaBmeQuantMatrix::Encode(const HalfMatrix& w, const TcaBmeConfig& cfg) {
  SPINFER_CHECK(cfg.gt_rows > 0 && cfg.gt_rows % kTcTileDim == 0);
  SPINFER_CHECK(cfg.gt_cols > 0 && cfg.gt_cols % kTcTileDim == 0);

  TcaBmeQuantMatrix m;
  m.rows_ = w.rows();
  m.cols_ = w.cols();
  m.cfg_ = cfg;
  m.padded_rows_ = PadUp(w.rows(), cfg.gt_rows);
  m.padded_cols_ = PadUp(w.cols(), cfg.gt_cols);

  const int64_t grid_r = m.padded_rows_ / cfg.gt_rows;
  const int64_t grid_c = m.padded_cols_ / cfg.gt_cols;
  const int tc_rows = cfg.gt_rows / kTcTileDim;
  const int tc_cols = cfg.gt_cols / kTcTileDim;

  m.gtile_offsets_.push_back(0);
  for (int64_t gr = 0; gr < grid_r; ++gr) {
    for (int64_t gc = 0; gc < grid_c; ++gc) {
      for (int tcc = 0; tcc < tc_cols; ++tcc) {
        for (int tcr = 0; tcr < tc_rows; ++tcr) {
          for (int q = 0; q < 4; ++q) {
            const int64_t bt_r =
                gr * cfg.gt_rows + static_cast<int64_t>(tcr) * kTcTileDim + QuadrantRow(q);
            const int64_t bt_c =
                gc * cfg.gt_cols + static_cast<int64_t>(tcc) * kTcTileDim + QuadrantCol(q);
            // Pass 1: bitmap and per-tile absmax.
            uint64_t bitmap = 0;
            float absmax = 0.0f;
            for (int r = 0; r < kBitmapTileDim; ++r) {
              for (int c = 0; c < kBitmapTileDim; ++c) {
                const Half v = PaddedAt(w, bt_r + r, bt_c + c);
                if (!v.IsZero()) {
                  bitmap |= 1ull << (r * kBitmapTileDim + c);
                  absmax = std::max(absmax, std::fabs(v.ToFloat()));
                }
              }
            }
            const float scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
            m.bitmaps_.push_back(bitmap);
            m.scales_.push_back(Half(scale));
            // Pass 2: quantize nonzeros in bit order with the *stored*
            // (FP16-rounded) scale so Decode is reproducible.
            const float stored_scale = Half(scale).ToFloat();
            for (int r = 0; r < kBitmapTileDim; ++r) {
              for (int c = 0; c < kBitmapTileDim; ++c) {
                const Half v = PaddedAt(w, bt_r + r, bt_c + c);
                if (!v.IsZero()) {
                  int code = static_cast<int>(
                      std::lround(v.ToFloat() / stored_scale));
                  code = std::clamp(code, -127, 127);
                  // A surviving nonzero must stay nonzero so the bitmap and
                  // payload agree.
                  if (code == 0) {
                    code = v.ToFloat() >= 0 ? 1 : -1;
                  }
                  m.codes_.push_back(static_cast<int8_t>(code));
                  ++m.nnz_;
                }
              }
            }
          }
        }
      }
      // Align each GroupTile's code segment to 4B (LDGSTS-friendly).
      while (m.codes_.size() % 4 != 0) {
        m.codes_.push_back(0);
      }
      m.gtile_offsets_.push_back(static_cast<uint32_t>(m.codes_.size()));
    }
  }
  return m;
}

HalfMatrix TcaBmeQuantMatrix::Decode() const {
  HalfMatrix w(rows_, cols_);
  const int tc_rows = cfg_.gt_rows / kTcTileDim;
  const int tc_cols = cfg_.gt_cols / kTcTileDim;
  const int64_t grid_c = padded_cols_ / cfg_.gt_cols;
  const int64_t ngt = (padded_rows_ / cfg_.gt_rows) * grid_c;

  int64_t bt_index = 0;
  for (int64_t gt = 0; gt < ngt; ++gt) {
    const int64_t gr = gt / grid_c;
    const int64_t gc = gt % grid_c;
    size_t cursor = gtile_offsets_[gt];
    for (int tcc = 0; tcc < tc_cols; ++tcc) {
      for (int tcr = 0; tcr < tc_rows; ++tcr) {
        for (int q = 0; q < 4; ++q, ++bt_index) {
          const uint64_t bitmap = bitmaps_[bt_index];
          const float scale = scales_[bt_index].ToFloat();
          const int64_t bt_r =
              gr * cfg_.gt_rows + static_cast<int64_t>(tcr) * kTcTileDim + QuadrantRow(q);
          const int64_t bt_c =
              gc * cfg_.gt_cols + static_cast<int64_t>(tcc) * kTcTileDim + QuadrantCol(q);
          for (int bit = 0; bit < 64; ++bit) {
            if ((bitmap >> bit) & 1ull) {
              const float v = static_cast<float>(codes_[cursor++]) * scale;
              const int64_t r = bt_r + bit / kBitmapTileDim;
              const int64_t c = bt_c + bit % kBitmapTileDim;
              if (r < rows_ && c < cols_) {
                Half h(v);
                if (h.IsZero()) {
                  h = Half(v >= 0 ? 6.0e-5f : -6.0e-5f);  // keep mask exact
                }
                w.at(r, c) = h;
              }
            }
          }
        }
      }
    }
  }
  return w;
}

uint64_t TcaBmeQuantMatrix::StorageBytes() const {
  return 4ull * gtile_offsets_.size() + 8ull * bitmaps_.size() +
         2ull * scales_.size() + codes_.size();
}

double TcaBmeQuantMatrix::CompressionRatio() const {
  return 2.0 * static_cast<double>(rows_) * static_cast<double>(cols_) /
         static_cast<double>(StorageBytes());
}

uint64_t TcaBmeQuantStorageModel(int64_t m, int64_t k, int64_t nnz,
                                 const TcaBmeConfig& cfg) {
  const int64_t pm = PadUp(m, cfg.gt_rows);
  const int64_t pk = PadUp(k, cfg.gt_cols);
  const int64_t ngt = (pm / cfg.gt_rows) * (pk / cfg.gt_cols);
  const int64_t nbt = (pm / kBitmapTileDim) * (pk / kBitmapTileDim);
  return 4ull * static_cast<uint64_t>(ngt + 1) + 10ull * static_cast<uint64_t>(nbt) +
         static_cast<uint64_t>(nnz);
}

}  // namespace spinfer
