// Row reordering for GroupTile load balance.
//
// Split-K distributes K-slices evenly, but rows with very uneven nonzero
// counts make GroupTile *payload sizes* uneven, so some thread blocks stream
// more bytes than others and the tail block gates the kernel. Sorting rows
// by nonzero count and dealing them round-robin across GroupTile row-groups
// equalizes per-GroupTile payloads (the trick SMaT and several scientific
// SpMM kernels apply before tiling). The permutation is applied offline to
// the weight matrix; the matching inverse permutation re-orders the output
// rows after the SpMM, so results are unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "src/numeric/matrix.h"

namespace spinfer {

struct RowPermutation {
  // new_row[i] = old row index placed at position i.
  std::vector<uint32_t> order;

  // Applies the permutation: out.row(i) = w.row(order[i]).
  HalfMatrix Apply(const HalfMatrix& w) const;

  // Un-permutes an output matrix computed from the permuted weights:
  // restored.row(order[i]) = o.row(i).
  FloatMatrix Unapply(const FloatMatrix& o) const;
};

// Balanced permutation for GroupTile row-groups of height `group_rows`:
// rows sorted by nonzero count, dealt serpentine across groups.
RowPermutation BalanceRows(const HalfMatrix& w, int group_rows);

// Max/mean nonzero count over row-groups of height `group_rows` — the load
// imbalance the permutation reduces (1.0 = perfectly balanced).
double RowGroupImbalance(const HalfMatrix& w, int group_rows);

}  // namespace spinfer
