// Plain-text table rendering for bench output.
//
// Every bench binary regenerates one of the paper's figures or tables as an
// aligned ASCII table so the series can be diffed against the paper by eye
// and grepped by scripts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace spinfer {

// Accumulates rows of string cells and renders them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends one row; pads or truncates to the header width is NOT done —
  // rows must have exactly as many cells as the header.
  void AddRow(std::vector<std::string> cells);

  // Renders with a header rule and per-column alignment (left for the first
  // column, right for the rest — the usual layout for label + numbers).
  std::string Render() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Number formatting helpers used by bench output.
std::string FormatF(double v, int precision);   // fixed, e.g. "1.66"
std::string FormatSI(double v);                 // engineering, e.g. "28.7K", "1.2G"
std::string FormatBytes(uint64_t bytes);        // e.g. "14.4 GiB"

}  // namespace spinfer
