#include "src/util/cpu_features.h"

#include <cstdlib>
#include <cstring>

namespace spinfer {

namespace {

CpuFeatures Detect() {
  CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
  f.f16c = __builtin_cpu_supports("f16c") != 0;
  f.avx512f = __builtin_cpu_supports("avx512f") != 0;
#endif
  return f;
}

SimdLevel Resolve() {
  const CpuFeatures& f = GetCpuFeatures();
  // The AVX2 kernels also use F16C half conversions; every AVX2-era CPU has
  // all three, but dispatch verifies each flag it depends on.
  SimdLevel level =
      (f.avx2 && f.fma && f.f16c) ? SimdLevel::kAvx2 : SimdLevel::kPortable;
  if (const char* env = std::getenv("SPINFER_SIMD")) {
    if (std::strcmp(env, "portable") == 0 || std::strcmp(env, "scalar") == 0) {
      level = SimdLevel::kPortable;
    }
    // "avx2" (or anything else) keeps the hardware-clamped level: the
    // override can narrow dispatch but never select an unsupported tier.
  }
  return level;
}

}  // namespace

const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = Resolve();
  return level;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kPortable:
      return "portable";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::string CpuFeaturesSummary() {
  const CpuFeatures& f = GetCpuFeatures();
  std::string s;
  auto add = [&s](bool has, const char* name) {
    if (has) {
      if (!s.empty()) {
        s += '+';
      }
      s += name;
    }
  };
  add(f.avx2, "avx2");
  add(f.fma, "fma");
  add(f.f16c, "f16c");
  add(f.avx512f, "avx512f");
  if (s.empty()) {
    s = "baseline";
  }
  s += " (dispatch: ";
  s += SimdLevelName(ActiveSimdLevel());
  s += ')';
  return s;
}

}  // namespace spinfer
