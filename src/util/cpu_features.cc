#include "src/util/cpu_features.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace spinfer {

namespace {

CpuFeatures Detect() {
  CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
  f.f16c = __builtin_cpu_supports("f16c") != 0;
  f.avx512f = __builtin_cpu_supports("avx512f") != 0;
#endif
  return f;
}

SimdLevel Resolve() {
  const CpuFeatures& f = GetCpuFeatures();
  // The AVX2 kernels also use F16C half conversions; every AVX2-era CPU has
  // all three, but dispatch verifies each flag it depends on.
  const SimdLevel hw =
      (f.avx2 && f.fma && f.f16c) ? SimdLevel::kAvx2 : SimdLevel::kPortable;
  return ApplySimdOverride(hw, std::getenv("SPINFER_SIMD"), stderr);
}

}  // namespace

SimdLevel ApplySimdOverride(SimdLevel hw_level, const char* env,
                            std::FILE* warn_to) {
  if (env == nullptr || *env == '\0') {
    return hw_level;
  }
  if (std::strcmp(env, "portable") == 0 || std::strcmp(env, "scalar") == 0) {
    return SimdLevel::kPortable;
  }
  if (std::strcmp(env, "avx2") == 0) {
    // Request AVX2; falls back when the CPU lacks it — the override can
    // narrow dispatch but never select an unsupported tier.
    return hw_level;
  }
  // A typo like SPINFER_SIMD=portble used to silently keep the hardware
  // level, so the user benchmarked AVX2 believing it was the portable path.
  // Results are identical either way (the bit-identity contract), so a loud
  // warning — not an abort — is the right failure mode.
  if (warn_to != nullptr) {
    std::fprintf(warn_to,
                 "[spinfer] warning: unrecognized SPINFER_SIMD value \"%s\" "
                 "ignored (expected \"portable\", \"scalar\", or \"avx2\"); "
                 "dispatching at hardware level \"%s\"\n",
                 env, SimdLevelName(hw_level));
  }
  return hw_level;
}

const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = Resolve();
  return level;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kPortable:
      return "portable";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::string CpuFeaturesSummary() {
  const CpuFeatures& f = GetCpuFeatures();
  std::string s;
  auto add = [&s](bool has, const char* name) {
    if (has) {
      if (!s.empty()) {
        s += '+';
      }
      s += name;
    }
  };
  add(f.avx2, "avx2");
  add(f.fma, "fma");
  add(f.f16c, "f16c");
  add(f.avx512f, "avx512f");
  if (s.empty()) {
    s = "baseline";
  }
  s += " (dispatch: ";
  s += SimdLevelName(ActiveSimdLevel());
  s += ')';
  return s;
}

}  // namespace spinfer
