// Glue between SPINFER_CHECK failures and the obs flight recorder.
//
// This lives in spinfer_util, not spinfer_obs, on purpose: spinfer_obs is
// deliberately std-only so every library can link it without cycles, and
// spinfer_util already PUBLIC-links spinfer_obs — so the one place that may
// know about *both* SetCheckFailureHandler (util) and FlightRecorder (obs)
// is here.
//
// InstallFlightRecorderCrashDump(recorder) registers a check-failure handler
// that dumps `recorder` to stderr right before abort(), so a crashing serving
// run leaves its last N scheduler iterations (batch composition, KV
// occupancy, admission verdicts) in the log. The recorder pointer is held in
// a process-wide atomic: passing nullptr (or a different recorder) replaces
// it, and ServingEngine uninstalls its own recorder on destruction so the
// handler never dereferences a dead engine.
#pragma once

namespace spinfer {
namespace obs {
class FlightRecorder;
}  // namespace obs

// Installs (or, with nullptr, uninstalls) the crash-dump hook. The recorder
// is borrowed; the caller must uninstall before destroying it. Returns the
// previously installed recorder (nullptr if none).
obs::FlightRecorder* InstallFlightRecorderCrashDump(
    obs::FlightRecorder* recorder);

// Uninstalls only if `expected` is the currently installed recorder — the
// owner-scoped cleanup form, safe when several engines raced to install.
void UninstallFlightRecorderCrashDump(obs::FlightRecorder* expected);

}  // namespace spinfer
