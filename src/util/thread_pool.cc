#include "src/util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"

namespace spinfer {

// Per-worker task deque. A plain mutex per queue keeps the stealing protocol
// obviously correct (and ThreadSanitizer-clean); tasks are coarse enough —
// ParallelFor chunks, whole bench sweep points — that lock traffic is noise.
struct ThreadPool::Queue {
  std::mutex mutex;
  std::deque<std::function<void()>> tasks;
};

namespace {

int ResolveThreads(int num_threads) {
  if (num_threads > 0) {
    return num_threads;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Worker index of the current thread within its pool, or -1 off-pool. Used
// to route Submit to the submitting worker's own queue (LIFO locality) and
// to pick a distinct steal-victim starting point per worker.
thread_local int tls_worker_index = -1;
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(ResolveThreads(num_threads)) {
  // The caller participates in ParallelFor, so a width-N pool spawns N-1
  // dedicated workers; width 1 means fully inline execution.
  const int spawned = num_threads_ - 1;
  queues_.reserve(spawned);
  for (int i = 0; i < spawned; ++i) {
    queues_.push_back(new Queue());
  }
  workers_.reserve(spawned);
  for (int i = 0; i < spawned; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stopping_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
  for (Queue* q : queues_) {
    delete q;
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (queues_.empty()) {
    tasks_inline_.fetch_add(1, std::memory_order_relaxed);
    task();  // width-1 pool: run inline
    return;
  }
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  size_t target;
  if (tls_worker_pool == this && tls_worker_index >= 0) {
    target = static_cast<size_t>(tls_worker_index);
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

bool ThreadPool::TryGetTask(int worker_index, std::function<void()>* task) {
  // Own queue first, newest task (back): best cache locality.
  {
    Queue* own = queues_[worker_index];
    std::lock_guard<std::mutex> lock(own->mutex);
    if (!own->tasks.empty()) {
      *task = std::move(own->tasks.back());
      own->tasks.pop_back();
      tasks_popped_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal the oldest task (front) from another worker, scanning from a
  // per-worker start so thieves spread across victims.
  const size_t n = queues_.size();
  for (size_t d = 1; d < n; ++d) {
    Queue* victim = queues_[(static_cast<size_t>(worker_index) + d) % n];
    std::lock_guard<std::mutex> lock(victim->mutex);
    if (!victim->tasks.empty()) {
      *task = std::move(victim->tasks.front());
      victim->tasks.pop_front();
      tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(int worker_index) {
  tls_worker_index = worker_index;
  tls_worker_pool = this;
  std::function<void()> task;
  while (true) {
    if (TryGetTask(worker_index, &task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      return;
    }
    // Re-check for work published between the failed scan and the lock;
    // Submit holds no lock ordering against the queues, so sleep only after
    // a locked re-scan fails.
    lock.unlock();
    if (TryGetTask(worker_index, &task)) {
      task();
      task = nullptr;
      continue;
    }
    lock.lock();
    if (stopping_.load(std::memory_order_relaxed)) {
      return;
    }
    wake_cv_.wait_for(lock, std::chrono::milliseconds(2));
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t)>& fn, int64_t grain) {
  const int64_t total = end - begin;
  if (total <= 0) {
    return;
  }
  if (grain <= 0) {
    // ~8 chunks per execution-width thread: fine enough to balance ragged
    // per-index cost, coarse enough that the shared cursor stays cold.
    grain = std::max<int64_t>(1, total / (static_cast<int64_t>(num_threads_) * 8));
  }
  // Inline fast path: a width-1 pool, or a range that fits in a single
  // chunk, runs on the caller with no task handoff, no shared loop state,
  // and no wake/wait traffic. Same indices, same order as the one chunk the
  // caller would have claimed anyway — results are unchanged.
  parallel_fors_.fetch_add(1, std::memory_order_relaxed);
  if (num_threads_ == 1 || total <= grain) {
    parallel_fors_inline_.fetch_add(1, std::memory_order_relaxed);
    for (int64_t i = begin; i < end; ++i) {
      fn(i);
    }
    return;
  }
  SPINFER_TRACE_SCOPE_ARG("threadpool.parallel_for", "total", total);

  // Shared loop state. Heap-allocated and reference-counted so helper tasks
  // that lose the race for the last chunk can still touch it safely after
  // the caller has returned.
  struct LoopState {
    std::atomic<int64_t> cursor;
    int64_t end = 0;
    int64_t grain = 0;
    const std::function<void(int64_t)>* fn = nullptr;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    int64_t done = 0;  // indices completed, guarded by done_mutex
    int64_t total = 0;
  };
  auto state = std::make_shared<LoopState>();
  state->cursor.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->grain = grain;
  state->fn = &fn;
  state->total = total;

  auto run_chunks = [](const std::shared_ptr<LoopState>& s) {
    int64_t chunk_begin;
    while ((chunk_begin = s->cursor.fetch_add(s->grain, std::memory_order_relaxed)) <
           s->end) {
      const int64_t chunk_end = std::min(s->end, chunk_begin + s->grain);
      for (int64_t i = chunk_begin; i < chunk_end; ++i) {
        (*s->fn)(i);
      }
      std::lock_guard<std::mutex> lock(s->done_mutex);
      s->done += chunk_end - chunk_begin;
      if (s->done == s->total) {
        s->done_cv.notify_all();
      }
    }
  };

  // One helper task per worker; each loops until the cursor is exhausted.
  // Helpers that start after the range is drained exit immediately.
  const int64_t max_helpers =
      std::min<int64_t>(num_threads_ - 1, (total + grain - 1) / grain);
  for (int64_t h = 0; h < max_helpers; ++h) {
    Submit([state, run_chunks] { run_chunks(state); });
  }
  // The caller works too, then blocks until in-flight chunks finish.
  run_chunks(state);
  std::unique_lock<std::mutex> lock(state->done_mutex);
  state->done_cv.wait(lock, [&] { return state->done == state->total; });
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
  s.tasks_inline = tasks_inline_.load(std::memory_order_relaxed);
  s.tasks_popped = tasks_popped_.load(std::memory_order_relaxed);
  s.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  s.parallel_fors = parallel_fors_.load(std::memory_order_relaxed);
  s.parallel_fors_inline = parallel_fors_inline_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::PublishMetrics(obs::MetricsRegistry* registry) const {
  obs::MetricsRegistry& reg =
      registry != nullptr ? *registry : obs::MetricsRegistry::Global();
  const Stats s = stats();
  reg.GetGauge("threadpool.num_threads")->Set(num_threads_);
  reg.GetGauge("threadpool.tasks_submitted")
      ->Set(static_cast<double>(s.tasks_submitted));
  reg.GetGauge("threadpool.tasks_inline")
      ->Set(static_cast<double>(s.tasks_inline));
  reg.GetGauge("threadpool.tasks_popped")
      ->Set(static_cast<double>(s.tasks_popped));
  reg.GetGauge("threadpool.tasks_stolen")
      ->Set(static_cast<double>(s.tasks_stolen));
  reg.GetGauge("threadpool.parallel_fors")
      ->Set(static_cast<double>(s.parallel_fors));
  reg.GetGauge("threadpool.parallel_fors_inline")
      ->Set(static_cast<double>(s.parallel_fors_inline));
}

namespace {

std::mutex g_global_pool_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

}  // namespace

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_pool_mutex);
  if (g_global_pool == nullptr) {
    g_global_pool = std::make_unique<ThreadPool>(0);
  }
  return *g_global_pool;
}

void ThreadPool::SetGlobalThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(g_global_pool_mutex);
  g_global_pool = std::make_unique<ThreadPool>(num_threads);
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn, int64_t grain) {
  ThreadPool::Global().ParallelFor(begin, end, fn, grain);
}

}  // namespace spinfer
