#include "src/util/check.h"

#include <cstdio>
#include <cstdlib>

namespace spinfer {

void CheckFailed(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[spinfer] %s:%d: %s\n", file, line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace spinfer
