#include "src/util/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace spinfer {

namespace {

std::atomic<CheckFailureHandler> g_check_failure_handler{nullptr};
// Flips to true on the first failure; later (or re-entrant) failures skip the
// handler and go straight to abort. Never reset: a process survives at most
// one CheckFailed.
std::atomic<bool> g_handler_fired{false};

}  // namespace

CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler) {
  return g_check_failure_handler.exchange(handler, std::memory_order_acq_rel);
}

void CheckFailed(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[spinfer] %s:%d: %s\n", file, line, msg.c_str());
  std::fflush(stderr);
  // exchange() makes the once-only guarantee atomic: whichever failing thread
  // gets here first runs the handler; a CHECK failing inside the handler
  // re-enters with the flag already set and aborts directly.
  if (!g_handler_fired.exchange(true, std::memory_order_acq_rel)) {
    CheckFailureHandler handler =
        g_check_failure_handler.load(std::memory_order_acquire);
    if (handler != nullptr) {
      handler();
      std::fflush(stderr);
    }
  }
  std::abort();
}

}  // namespace spinfer
