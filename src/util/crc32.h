// CRC-32 (IEEE 802.3 polynomial, reflected) for serialized-container
// integrity checking.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spinfer {

// CRC of `len` bytes starting at `data`, seeded by `seed` (pass the previous
// result to checksum discontiguous regions; 0 for a fresh computation).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace spinfer
