// Work-stealing thread pool and the ParallelFor primitive behind every
// parallel loop in the repository (functional kernels, the TCA-BME encoder,
// pruning scorers, bench sweeps).
//
// Determinism contract: ParallelFor runs the body exactly once per index, in
// an unspecified order on unspecified threads. Callers keep results
// bit-identical for any thread count by (a) writing only to disjoint,
// index-addressed state inside the body and (b) performing any
// order-sensitive reduction (FP32 sums, PerfCounters merges) sequentially
// afterwards, in a fixed index order. Every parallel loop in src/ follows
// this pattern, and tests/parallel_determinism_test.cc enforces it.
//
// Scheduling: each worker owns a deque; submitted tasks go to the owner's
// queue when called from a worker (LIFO for locality) or round-robin
// otherwise, and idle workers steal from the opposite end of other queues
// (FIFO, classic Blumofe–Leiserson work stealing). ParallelFor additionally
// load-balances by carving the index range into chunks claimed from a shared
// atomic cursor, so a straggler index cannot serialize the loop. The calling
// thread participates, which makes nested ParallelFor calls deadlock-free
// (the inner loop always progresses on its caller even when all workers are
// busy).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spinfer {

namespace obs {
class MetricsRegistry;
}  // namespace obs

class ThreadPool {
 public:
  // Scheduling statistics, accumulated since construction on relaxed
  // atomics (zero cross-thread ordering cost; totals are exact once the
  // pool is quiescent). Used by benches and asserted in
  // tests/parallel_determinism_test.cc.
  struct Stats {
    uint64_t tasks_submitted = 0;    // tasks routed to a worker queue
    uint64_t tasks_inline = 0;       // Submit calls run inline (width-1 pool)
    uint64_t tasks_popped = 0;       // tasks a worker took from its own queue
    uint64_t tasks_stolen = 0;       // tasks taken from another worker's queue
    uint64_t parallel_fors = 0;      // ParallelFor invocations
    uint64_t parallel_fors_inline = 0;  // of which ran the inline fast path
  };
  // Spawns `num_threads` workers. 0 picks std::thread::hardware_concurrency.
  // A pool of 1 runs everything inline on the submitting thread.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total execution width: worker threads, counting the caller that
  // participates in ParallelFor. Always >= 1.
  int num_threads() const { return num_threads_; }

  // Fire-and-forget task submission (ParallelFor is built on top of this).
  // Tasks must not throw; the library's error path is SPINFER_CHECK/abort.
  void Submit(std::function<void()> task);

  // Runs fn(i) exactly once for every i in [begin, end), distributing chunks
  // over the pool and the calling thread; returns when all indices are done.
  // `grain` is the minimum number of consecutive indices per chunk (0 picks
  // a balanced default of ~8 chunks per thread). Loops that fit in a single
  // chunk — including every loop on a width-1 pool — run inline on the
  // caller with no task handoff or synchronization at all.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t)>& fn, int64_t grain = 0);

  // Snapshot of the scheduling counters. Exact when no work is in flight.
  Stats stats() const;

  // Publishes stats() as `threadpool.*` gauges (plus threadpool.num_threads)
  // into `registry` (nullptr = the global registry). Gauges, not counters:
  // the pool owns the running totals, so repeated publishes must overwrite
  // rather than re-add.
  void PublishMetrics(obs::MetricsRegistry* registry = nullptr) const;

  // The process-wide pool used by the free ParallelFor below. Created
  // lazily with hardware_concurrency workers.
  static ThreadPool& Global();

  // Rebuilds the global pool with `num_threads` workers (0 = hardware
  // concurrency). Benches wire --threads here; tests use it to replay the
  // same work at 1/2/8 threads. Must not be called while parallel work is
  // in flight.
  static void SetGlobalThreads(int num_threads);

 private:
  struct Queue;

  void WorkerLoop(int worker_index);
  // Pops a task from the worker's own queue (back) or steals one (front of a
  // victim queue). Returns false when no task is available anywhere.
  bool TryGetTask(int worker_index, std::function<void()>* task);

  int num_threads_ = 1;
  std::vector<Queue*> queues_;       // one per worker thread
  std::vector<std::thread> workers_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<uint64_t> next_queue_{0};  // round-robin cursor for Submit
  std::atomic<bool> stopping_{false};

  // Stats counters; relaxed increments only, never part of synchronization.
  std::atomic<uint64_t> tasks_submitted_{0};
  std::atomic<uint64_t> tasks_inline_{0};
  std::atomic<uint64_t> tasks_popped_{0};
  std::atomic<uint64_t> tasks_stolen_{0};
  std::atomic<uint64_t> parallel_fors_{0};
  std::atomic<uint64_t> parallel_fors_inline_{0};
};

// ParallelFor over the global pool; the workhorse entry point.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn, int64_t grain = 0);

}  // namespace spinfer
