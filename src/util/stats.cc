#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace spinfer {

LatencySummary SummarizeLatenciesMs(std::vector<double> latencies_ms) {
  LatencySummary s;
  if (latencies_ms.empty()) {
    return s;
  }
  double sum = 0.0;
  for (double l : latencies_ms) {
    sum += l;
  }
  s.mean_ms = sum / static_cast<double>(latencies_ms.size());
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto at = [&](double p) {
    const double rank = p * static_cast<double>(latencies_ms.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, latencies_ms.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return latencies_ms[lo] + frac * (latencies_ms[hi] - latencies_ms[lo]);
  };
  s.p50_ms = at(0.50);
  s.p95_ms = at(0.95);
  s.p99_ms = at(0.99);
  return s;
}

}  // namespace spinfer
