#include "src/util/stats.h"

#include <algorithm>

namespace spinfer {

double PercentileInPlace(std::vector<double>* v, double p) {
  if (v->empty()) {
    return 0.0;
  }
  std::sort(v->begin(), v->end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  return (*v)[idx];
}

LatencySummary SummarizeLatenciesMs(std::vector<double> latencies_ms) {
  LatencySummary s;
  if (latencies_ms.empty()) {
    return s;
  }
  double sum = 0.0;
  for (double l : latencies_ms) {
    sum += l;
  }
  s.mean_ms = sum / static_cast<double>(latencies_ms.size());
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto at = [&](double p) {
    const size_t idx =
        static_cast<size_t>(p * static_cast<double>(latencies_ms.size() - 1));
    return latencies_ms[idx];
  };
  s.p50_ms = at(0.50);
  s.p95_ms = at(0.95);
  s.p99_ms = at(0.99);
  return s;
}

}  // namespace spinfer
