#include "src/util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/util/check.h"

namespace spinfer {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SPINFER_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  SPINFER_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Render() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        out << "  ";
      }
      if (c == 0) {
        out << row[c] << std::string(width[c] - row[c].size(), ' ');
      } else {
        out << std::string(width[c] - row[c].size(), ' ') << row[c];
      }
    }
    out << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c > 0 ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string FormatF(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatSI(double v) {
  const char* suffix[] = {"", "K", "M", "G", "T", "P"};
  int idx = 0;
  double a = std::fabs(v);
  while (a >= 1000.0 && idx < 5) {
    a /= 1000.0;
    v /= 1000.0;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g%s", v, suffix[idx]);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  const char* suffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int idx = 0;
  double v = static_cast<double>(bytes);
  while (v >= 1024.0 && idx < 4) {
    v /= 1024.0;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffix[idx]);
  return buf;
}

}  // namespace spinfer
