// Latency statistics shared by the analytic serving simulator
// (src/llm/serving.cc) and the executing serving engine
// (src/llm/serving_engine.cc).
//
// Both report the same summary (mean, p50, p95, p99) with the same percentile
// definition, so the engine-vs-simulator cross-check in the tests compares
// like with like instead of two subtly different estimators.
#pragma once

#include <vector>

namespace spinfer {

struct LatencySummary {
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

// Mean plus p50/p95/p99 of `latencies_ms` (taken by value: the summary sorts
// its own copy). Empty input returns all zeros.
//
// Percentiles use linear interpolation between sorted ranks (the "C = 1" /
// numpy-default definition): for rank r = p * (n-1), the result interpolates
// between samples floor(r) and ceil(r). The previous nearest-lower-rank
// definition (index floor(p * (n-1))) systematically understated tail
// percentiles on small n — with 10 samples, p99 reported the 90th-percentile
// sample. This is the library's single percentile implementation; keep it
// that way so reports can never disagree on the definition.
LatencySummary SummarizeLatenciesMs(std::vector<double> latencies_ms);

}  // namespace spinfer
