// Latency statistics shared by the analytic serving simulator
// (src/llm/serving.cc) and the executing serving engine
// (src/llm/serving_engine.cc).
//
// Both report the same summary (mean, p50, p95, p99) with the same percentile
// definition, so the engine-vs-simulator cross-check in the tests compares
// like with like instead of two subtly different estimators.
#pragma once

#include <vector>

namespace spinfer {

struct LatencySummary {
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

// Percentile by sorted-rank index floor(p * (n-1)) — the nearest-rank variant
// the serving simulator has always used. Sorts `*v` in place; empty input
// returns 0.
double PercentileInPlace(std::vector<double>* v, double p);

// Mean plus p50/p95/p99 of `latencies_ms` (taken by value: the summary sorts
// its own copy). Empty input returns all zeros.
LatencySummary SummarizeLatenciesMs(std::vector<double> latencies_ms);

}  // namespace spinfer
