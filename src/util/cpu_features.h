// Runtime CPU-feature detection and the SIMD dispatch policy.
//
// The library ships one binary that must run correctly on any x86-64 machine
// (and non-x86 hosts), so SIMD kernels are selected at runtime: translation
// units compiled with -mavx2/-mfma are entered only after the running CPU has
// advertised those features. Detection happens once and is cached.
//
// Dispatch can be pinned for debugging and A/B testing with the environment
// variable SPINFER_SIMD:
//   SPINFER_SIMD=portable   always take the portable fallback ("scalar" is
//                           accepted as a synonym)
//   SPINFER_SIMD=avx2       request AVX2 (silently falls back when the CPU
//                           lacks it — the override can widen testing, never
//                           crash the process)
// Any other value is ignored with a warning on stderr (a typo must not
// silently benchmark the wrong variant). Every SIMD variant in the library
// is bit-identical to the portable path by contract, so the override changes
// speed, never results.
#pragma once

#include <cstdio>
#include <string>

namespace spinfer {

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool f16c = false;
  bool avx512f = false;
};

// What the running CPU supports; detected once, cached.
const CpuFeatures& GetCpuFeatures();

// SIMD tiers the library dispatches between. Ordered: higher is wider.
enum class SimdLevel {
  kPortable = 0,  // plain C++, auto-vectorized; runs everywhere
  kAvx2 = 1,      // AVX2+FMA hand-written kernels (x86-64)
};

// The level dispatch should use: hardware features clamped by the
// SPINFER_SIMD override. Cached after the first call.
SimdLevel ActiveSimdLevel();

// The override policy, split out so tests can drive it without setenv races
// or a fresh process per value: returns `hw_level` narrowed by `env` (the
// SPINFER_SIMD value; nullptr/empty means unset). Unrecognized values keep
// `hw_level` and print one warning line to `warn_to` (pass nullptr to
// suppress). ActiveSimdLevel() calls this with stderr.
SimdLevel ApplySimdOverride(SimdLevel hw_level, const char* env,
                            std::FILE* warn_to);

const char* SimdLevelName(SimdLevel level);

// Human-readable summary, e.g. "avx2+fma+avx512f (dispatch: avx2)".
std::string CpuFeaturesSummary();

}  // namespace spinfer
