#include "src/util/crc32.h"

#include <array>

namespace spinfer {
namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = seed ^ 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace spinfer
