// Deterministic, fast pseudo-random number generation (xoshiro256**).
//
// All synthetic data in the repository (weights, activations, sparsity masks)
// flows through this generator so that tests and benches are reproducible
// across runs and platforms without depending on libstdc++'s unspecified
// distribution implementations.
#pragma once

#include <cstdint>
#include <vector>

namespace spinfer {

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
// Deterministic for a given seed; passes BigCrush.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t Below(uint64_t n);

  // Standard normal via Box-Muller (deterministic, no cached spare).
  double Gaussian();

  // Bernoulli draw: true with probability p.
  bool Bernoulli(double p);

  // Fisher-Yates shuffles indices [0, n) and returns the first k of them:
  // a uniform random k-subset. Requires k <= n.
  std::vector<uint32_t> Sample(uint32_t n, uint32_t k);

 private:
  uint64_t s_[4];
};

}  // namespace spinfer
