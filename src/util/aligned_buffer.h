// Grow-only, cache-line-aligned scratch buffers.
//
// The CPU SpMM workspace (src/core/cpu_backend.h) and other hot-path scratch
// space need three properties std::vector does not give together: 64-byte
// alignment (full-cache-line loads for SIMD panels, no split lines), strictly
// monotonic capacity (a serving loop must stop allocating once it has seen
// its largest shape), and an observable allocation count so tests can prove
// reuse rather than assume it.
//
// Contents are NOT preserved across growth — this is scratch space the owner
// refills every use, so copying old bytes would be pure waste.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>

namespace spinfer {

template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_destructible_v<T> &&
                    std::is_trivially_constructible_v<T>,
                "AlignedBuffer holds raw scratch storage only");

 public:
  static constexpr size_t kAlignment = 64;  // one x86 cache line

  AlignedBuffer() = default;
  ~AlignedBuffer() { Release(); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(other.data_), capacity_(other.capacity_), grow_count_(other.grow_count_) {
    other.data_ = nullptr;
    other.capacity_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      data_ = other.data_;
      capacity_ = other.capacity_;
      grow_count_ = other.grow_count_;
      other.data_ = nullptr;
      other.capacity_ = 0;
    }
    return *this;
  }

  // Ensures room for at least `count` elements. Never shrinks; existing
  // contents are discarded when growth happens.
  void Reserve(size_t count) {
    if (count <= capacity_) {
      return;
    }
    Release();
    data_ = static_cast<T*>(
        ::operator new(count * sizeof(T), std::align_val_t(kAlignment)));
    capacity_ = count;
    ++grow_count_;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t capacity() const { return capacity_; }

  // Number of allocations performed over the buffer's lifetime. A stable
  // grow_count across repeated uses is the reuse proof tests assert on.
  int64_t grow_count() const { return grow_count_; }

 private:
  void Release() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t(kAlignment));
      data_ = nullptr;
    }
  }

  T* data_ = nullptr;
  size_t capacity_ = 0;
  int64_t grow_count_ = 0;
};

}  // namespace spinfer
