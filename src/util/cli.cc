#include "src/util/cli.h"

#include <cstdlib>

#include "src/util/check.h"

namespace spinfer {

CliFlags::CliFlags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    SPINFER_CHECK_MSG(arg.rfind("--", 0) == 0, "flag must start with --: " << arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // bare boolean flag
    }
  }
}

void CliFlags::RestrictTo(std::initializer_list<const char*> allowed) const {
  for (const auto& [name, value] : flags_) {
    bool known = false;
    for (const char* a : allowed) {
      if (name == a) {
        known = true;
        break;
      }
    }
    SPINFER_CHECK_MSG(known, "unknown flag --" << name);
  }
}

std::string CliFlags::GetString(const std::string& name, const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

int64_t CliFlags::GetInt(const std::string& name, int64_t def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliFlags::GetDouble(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool CliFlags::GetBool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return def;
  }
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace spinfer
