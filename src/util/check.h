// Lightweight invariant-checking macros.
//
// SPINFER_CHECK aborts with a diagnostic when a precondition or internal
// invariant is violated. These are always on (also in release builds): the
// library manipulates hand-packed binary formats where silently continuing
// after a violated invariant would corrupt results.
#pragma once

#include <sstream>
#include <string>

namespace spinfer {

// Aborts the process after printing `msg` with source location context.
// Used by the SPINFER_CHECK family; not intended to be called directly.
[[noreturn]] void CheckFailed(const char* file, int line, const std::string& msg);

// Hook invoked by CheckFailed after the diagnostic is printed and before
// abort(). The intended use is post-mortem state dumps — the flight recorder
// (src/obs/flight_recorder.h, installed via src/util/crash_dump.h) writes the
// last N scheduler iterations to stderr from here. Contract:
//   * The handler runs at most once per process: a SPINFER_CHECK failing
//     *inside* the handler (re-entrancy) skips straight to abort instead of
//     recursing, and a second thread failing concurrently does not run it
//     again. Handlers therefore need not be re-entrant themselves.
//   * The process still aborts after the handler returns; a handler cannot
//     rescue a failed check.
//   * nullptr uninstalls. Thread-safe; returns the previously installed
//     handler so callers can chain or restore it.
using CheckFailureHandler = void (*)();
CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler);

}  // namespace spinfer

#define SPINFER_CHECK(cond)                                                      \
  do {                                                                            \
    if (!(cond)) {                                                                \
      ::spinfer::CheckFailed(__FILE__, __LINE__, "check failed: " #cond);         \
    }                                                                             \
  } while (0)

#define SPINFER_CHECK_MSG(cond, msg)                                              \
  do {                                                                            \
    if (!(cond)) {                                                                \
      std::ostringstream spinfer_check_oss_;                                      \
      spinfer_check_oss_ << "check failed: " #cond ": " << msg;                   \
      ::spinfer::CheckFailed(__FILE__, __LINE__, spinfer_check_oss_.str());       \
    }                                                                             \
  } while (0)

#define SPINFER_CHECK_EQ(a, b)                                                    \
  do {                                                                            \
    auto spinfer_a_ = (a);                                                        \
    auto spinfer_b_ = (b);                                                        \
    if (!(spinfer_a_ == spinfer_b_)) {                                            \
      std::ostringstream spinfer_check_oss_;                                      \
      spinfer_check_oss_ << "check failed: " #a " == " #b " (" << spinfer_a_      \
                         << " vs " << spinfer_b_ << ")";                          \
      ::spinfer::CheckFailed(__FILE__, __LINE__, spinfer_check_oss_.str());       \
    }                                                                             \
  } while (0)

#define SPINFER_UNREACHABLE(msg) ::spinfer::CheckFailed(__FILE__, __LINE__, msg)
