// Minimal command-line flag parsing shared by examples and benches.
//
// Supports `--name=value` and `--name value` forms. Callers that know their
// full flag set pass it to RestrictTo so typos fail loudly instead of
// silently running with defaults.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>

namespace spinfer {

class CliFlags {
 public:
  // Parses argv; aborts on malformed input.
  CliFlags(int argc, char** argv);

  // Typed getters with defaults.
  std::string GetString(const std::string& name, const std::string& def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  // Aborts with the offending name if any parsed flag is not in `allowed`.
  void RestrictTo(std::initializer_list<const char*> allowed) const;

 private:
  std::map<std::string, std::string> flags_;
};

}  // namespace spinfer
