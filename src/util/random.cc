#include "src/util/random.h"

#include <cmath>
#include <numbers>

#include "src/util/check.h"

namespace spinfer {
namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: seeds the xoshiro state from a single 64-bit value.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) {
    s = SplitMix64(x);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::Below(uint64_t n) {
  SPINFER_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::Gaussian() {
  // Box-Muller; draw u1 away from 0 to keep log() finite.
  double u1 = Uniform();
  while (u1 <= 1e-300) {
    u1 = Uniform();
  }
  const double u2 = Uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<uint32_t> Rng::Sample(uint32_t n, uint32_t k) {
  SPINFER_CHECK(k <= n);
  std::vector<uint32_t> idx(n);
  for (uint32_t i = 0; i < n; ++i) {
    idx[i] = i;
  }
  for (uint32_t i = 0; i < k; ++i) {
    const uint32_t j = i + static_cast<uint32_t>(Below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace spinfer
