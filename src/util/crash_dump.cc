#include "src/util/crash_dump.h"

#include <atomic>
#include <cstdio>

#include "src/obs/flight_recorder.h"
#include "src/util/check.h"

namespace spinfer {

namespace {

std::atomic<obs::FlightRecorder*> g_crash_recorder{nullptr};

void DumpRecorderOnCheckFailure() {
  obs::FlightRecorder* recorder =
      g_crash_recorder.load(std::memory_order_acquire);
  if (recorder == nullptr) {
    return;
  }
  std::fputs("[spinfer] SPINFER_CHECK failed; dumping flight recorder:\n",
             stderr);
  recorder->DumpToStderr();
}

}  // namespace

obs::FlightRecorder* InstallFlightRecorderCrashDump(
    obs::FlightRecorder* recorder) {
  obs::FlightRecorder* prev =
      g_crash_recorder.exchange(recorder, std::memory_order_acq_rel);
  if (recorder != nullptr) {
    SetCheckFailureHandler(&DumpRecorderOnCheckFailure);
  }
  // On uninstall the handler stays registered but no-ops (recorder == null);
  // cheaper to reason about than racing handler swaps during shutdown.
  return prev;
}

void UninstallFlightRecorderCrashDump(obs::FlightRecorder* expected) {
  g_crash_recorder.compare_exchange_strong(expected, nullptr,
                                           std::memory_order_acq_rel);
}

}  // namespace spinfer
