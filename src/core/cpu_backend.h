// Bitmap-direct CPU SpMM backend (v2: blocked, SIMD-dispatched, parallel).
//
// The warp-level functional simulator (SpInferSpmmKernel::Run) exists to
// validate the GPU algorithm bit-for-bit; it is deliberately literal and
// slow. This backend is the *production CPU path* for TCA-BME models: it
// walks each BitmapTile's 64-bit mask with count-trailing-zeros, consumes
// the compressed Values run sequentially (the same order SMBD implies), and
// FMAs whole X-row blocks — no fragment emulation. The tiny-transformer
// example and the CPU-deployment story run on this.
//
// v2 execution scheme:
//   * The FP16 activation panel is converted to FP32 once per call into a
//     reusable workspace (exact conversion, so results are unchanged).
//   * Output columns are processed in blocks of kCpuSpmmNBlock; within a
//     block, each interior BitmapTile row becomes one register-tiled update
//     (accumulators stay in registers across up to 8 nonzeros).
//   * The innermost row update is SIMD-dispatched at runtime: an AVX2 unit
//     (compiled separately with -mavx2 -mfma) when the CPU supports it, a
//     portable auto-vectorized loop otherwise. Both are compiled with FP
//     contraction off and accumulate per element in the same order, so the
//     two paths are bit-identical — dispatch changes speed, never results.
//   * GroupTile rows are distributed over the global ThreadPool; each task
//     owns a disjoint output-row range, so any thread count produces
//     bit-identical output.
// Determinism: for a fixed input, output bits do not depend on thread count
// or on which SIMD variant ran. tests/cpu_backend_test.cc enforces both.
#pragma once

#include "src/format/tca_bme.h"
#include "src/gpusim/perf_counters.h"
#include "src/numeric/matrix.h"
#include "src/util/aligned_buffer.h"

namespace spinfer {

// Output-column span one pass over the compressed Values stream covers.
// Decode-time N (<= 128) takes a single pass; larger N is blocked so the
// output tile a GroupTile row touches stays cache-resident. Within a pass
// the row updates block by 32 floats (four AVX2 accumulators); the portable
// loop blocks the same way so both variants share one traversal.
inline constexpr int64_t kCpuSpmmNBlock = 128;

// Reusable scratch for the SpMM/SpMV calls: the FP32 X panel (half->float is
// exact, so converting the panel once per call changes no result bits) and
// the INT8 path's quantized activation vector (int16 codes, so the widening
// multiply-adds read them directly). Grown monotonically, never shrunk — a
// serving loop that has seen its largest shapes performs zero heap
// allocations in this path afterwards. Weight values are converted per
// BitmapTile into a stack-resident staging array inside the kernel and need
// no heap scratch. Not thread-safe to share across concurrent calls; give
// each serving thread its own.
struct SpmmWorkspace {
  AlignedBuffer<float> x_panel;     // K x N fp32 activation panel
  AlignedBuffer<int16_t> xq_panel;  // K quantized activation codes (SpMV INT8)

  int64_t grow_count() const {
    return x_panel.grow_count() + xq_panel.grow_count();
  }
  uint64_t capacity_bytes() const {
    return x_panel.capacity() * sizeof(float) +
           xq_panel.capacity() * sizeof(int16_t);
  }
};

// out = W * X, reshaping `out` to (w.rows(), x.cols()). All scratch comes
// from `ws`; after `out` and `ws` have seen the call's shapes once, repeat
// calls are allocation-free. Single-column calls (x.cols() == 1, the batch-1
// decode shape) route to the bitmap-direct SpMV kernel (src/core/cpu_spmv.h)
// transparently: it is bit-identical to the N-blocked path on that shape,
// only faster.
void CpuSpmmInto(const TcaBmeMatrix& w, const HalfMatrix& x, SpmmWorkspace* ws,
                 FloatMatrix* out);

// out += W * X (out must already have shape (w.rows(), x.cols())), for
// callers that fuse bias/residual into the output before the matmul.
void CpuSpmmAccumulateInto(const TcaBmeMatrix& w, const HalfMatrix& x,
                           SpmmWorkspace* ws, FloatMatrix* out);

// Quantize-and-run forms for FP32 activations: each element of `x` is
// rounded to FP16 while the FP32 panel is built (panel = float(half(x))),
// bit-identical to converting `x` into a HalfMatrix first and calling the
// FP16 entry points — without materializing the intermediate FP16 matrix.
// The serving decode path feeds its FP32 activations straight through these,
// removing one staging buffer and one full conversion pass per matmul.
void CpuSpmmQuantInto(const TcaBmeMatrix& w, const FloatMatrix& x,
                      SpmmWorkspace* ws, FloatMatrix* out);
void CpuSpmmQuantAccumulateInto(const TcaBmeMatrix& w, const FloatMatrix& x,
                                SpmmWorkspace* ws, FloatMatrix* out);

// Legacy conveniences; thin wrappers over the workspace API that pay one
// workspace allocation per call. Results are identical.
FloatMatrix CpuSpmm(const TcaBmeMatrix& w, const HalfMatrix& x);
void CpuSpmmAccumulate(const TcaBmeMatrix& w, const HalfMatrix& x, FloatMatrix* out);

// --- SIMD dispatch introspection (tests, benches, diagnostics) -------------

enum class CpuSpmmVariant {
  kPortable,  // auto-vectorized C++; always available
  kAvx2,      // hand-written AVX2; requires compile-time and runtime support
};

const char* CpuSpmmVariantName(CpuSpmmVariant v);

// Whether `v` can run on this build + this machine.
bool CpuSpmmVariantAvailable(CpuSpmmVariant v);

// The variant CpuSpmm* dispatches to (feature detection + SPINFER_SIMD
// override, cached at first use).
CpuSpmmVariant ActiveCpuSpmmVariant();

// Accumulate-form entry with the variant pinned; CHECK-fails if `v` is
// unavailable. This is how the bit-identity tests drive both paths on one
// machine. Deliberately NOT routed to SpMV at N == 1: this entry always runs
// the N-blocked tiling, which makes it the reference the SpMV differential
// tests compare against.
void CpuSpmmAccumulateIntoVariant(const TcaBmeMatrix& w, const HalfMatrix& x,
                                  SpmmWorkspace* ws, FloatMatrix* out,
                                  CpuSpmmVariant v);

}  // namespace spinfer
