// Bitmap-direct CPU SpMM backend.
//
// The warp-level functional simulator (SpInferSpmmKernel::Run) exists to
// validate the GPU algorithm bit-for-bit; it is deliberately literal and
// slow. This backend is the *production CPU path* for TCA-BME models: it
// walks each BitmapTile's 64-bit mask with count-trailing-zeros, consumes
// the compressed Values run sequentially (the same order SMBD implies), and
// FMAs whole X rows — no fragment emulation. The tiny-transformer example
// and the CPU-deployment story run on this.
#pragma once

#include "src/format/tca_bme.h"
#include "src/gpusim/perf_counters.h"
#include "src/numeric/matrix.h"

namespace spinfer {

// O(M x N) = W * X with FP32 accumulation. Results match the reference GEMM
// within FP32 reassociation tolerance.
FloatMatrix CpuSpmm(const TcaBmeMatrix& w, const HalfMatrix& x);

// Same, accumulating into `out` (+=), for callers that fuse bias/residual.
void CpuSpmmAccumulate(const TcaBmeMatrix& w, const HalfMatrix& x, FloatMatrix* out);

}  // namespace spinfer
