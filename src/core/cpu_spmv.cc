// Portable half of the SpMV fast path: drivers (workspace, activation
// quantization, GroupTile-row parallelism, dispatch) plus the scalar tile
// walk shared through cpu_spmv_inner.h.
//
// Compiled with -ffp-contract=off (see src/core/CMakeLists.txt): every
// multiply and add must round separately so results are bit-identical to the
// AVX2 unit and to CpuSpmm at N = 1.
#include "src/core/cpu_spmv.h"

#include <algorithm>
#include <cmath>

#include "src/core/cpu_spmv_inner.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/cpu_features.h"
#include "src/util/thread_pool.h"

namespace spinfer {
namespace {

using cpu_spmv_detail::SpmmPhaseRecorder;

struct PortableConvert {
  void operator()(const Half* src, float* dst, size_t count) const {
    for (size_t i = 0; i < count; ++i) {
      dst[i] = src[i].ToFloat();
    }
  }
};

void ProcessGroupTileSpmvPortable(const TcaBmeMatrix& w, int64_t gt,
                                  const float* xf, float* out,
                                  SpmmPhaseRecorder* rec) {
  const auto tile = [](uint64_t bitmap, int /*pc*/, const float* vals,
                       int64_t bt_r, int64_t bt_c, const float* x, float* o) {
    cpu_spmv_detail::ScalarSpmvTile(bitmap, vals, bt_r, bt_c, x, o);
  };
  if (rec != nullptr) {
    cpu_spmv_detail::ProcessGroupTileSpmv<true>(w, gt, xf, out, tile,
                                                PortableConvert{}, rec);
  } else {
    cpu_spmv_detail::ProcessGroupTileSpmv<false>(w, gt, xf, out, tile,
                                                 PortableConvert{});
  }
}

void ProcessGroupTileSpmvInt8Portable(const TcaBmeQuantMatrix& w, int64_t gt,
                                      const int16_t* xq, float x_scale,
                                      float* out, SpmmPhaseRecorder* rec) {
  const auto tile = [](uint64_t bitmap, int /*pc*/, const int8_t* codes,
                       float scale, int64_t bt_r, int64_t bt_c,
                       const int16_t* x, float* o) {
    cpu_spmv_detail::ScalarSpmvTileInt8(bitmap, codes, scale, bt_r, bt_c, x, o);
  };
  if (rec != nullptr) {
    cpu_spmv_detail::ProcessGroupTileSpmvInt8<true>(w, gt, xq, x_scale, out,
                                                    tile, rec);
  } else {
    cpu_spmv_detail::ProcessGroupTileSpmvInt8<false>(w, gt, xq, x_scale, out,
                                                     tile);
  }
}

// Row-parallel sweep over the GroupTile grid with the same hoisted-tracing
// scheme as CpuSpmm's AccumulateCore: untraced tasks pass a null recorder
// (untimed walk instantiation, zero instrumentation), traced tasks emit one
// row_task span plus synthetic convert/accumulate child slices. Each
// ParallelFor index owns the output rows of one grid row, so writes are
// disjoint and bits are thread-count-independent.
template <typename RunGroupTile>
void RowParallelSweep(int64_t grid_rows, int64_t grid_cols, bool tracing,
                      const RunGroupTile& run) {
  ParallelFor(0, grid_rows, [&](int64_t gtr) {
    if (!tracing) {
      for (int64_t gtc = 0; gtc < grid_cols; ++gtc) {
        run(gtr * grid_cols + gtc, nullptr);
      }
      return;
    }
    SpmmPhaseRecorder rec;
    obs::Tracer& tracer = obs::Tracer::Global();
    const uint64_t task_start = tracer.NowNs();
    for (int64_t gtc = 0; gtc < grid_cols; ++gtc) {
      run(gtr * grid_cols + gtc, &rec);
    }
    const uint64_t task_end = tracer.NowNs();
    obs::TraceArg task_args[3] = {{"gt_row", gtr},
                                  {"tiles", static_cast<int64_t>(rec.tiles)},
                                  {"nnz", static_cast<int64_t>(rec.nnz)}};
    tracer.Record("cpu_spmv.row_task", task_start, task_end - task_start,
                  task_args, 3);
    // Decode is fused into the accumulate walk in this kernel, so the task
    // splits into two phases, not three.
    tracer.Record("cpu_spmv.convert", task_start, rec.convert_ns);
    tracer.Record("cpu_spmv.accumulate", task_start + rec.convert_ns,
                  rec.accumulate_ns);
  });
}

using SpmvKernelFn = void (*)(const TcaBmeMatrix&, int64_t, const float*,
                              float*, SpmmPhaseRecorder*);
using SpmvInt8KernelFn = void (*)(const TcaBmeQuantMatrix&, int64_t,
                                  const int16_t*, float, float*,
                                  SpmmPhaseRecorder*);

SpmvKernelFn SpmvKernelFor(CpuSpmmVariant v) {
  return v == CpuSpmmVariant::kAvx2 ? &cpu_spmv_detail::ProcessGroupTileSpmvAvx2
                                    : &ProcessGroupTileSpmvPortable;
}

SpmvInt8KernelFn SpmvInt8KernelFor(CpuSpmmVariant v) {
  return v == CpuSpmmVariant::kAvx2
             ? &cpu_spmv_detail::ProcessGroupTileSpmvInt8Avx2
             : &ProcessGroupTileSpmvInt8Portable;
}

// Shared FP16 accumulate core: fills the single-column FP32 panel (the only
// thing the FP16 and quantize-FP32 entries differ in), then sweeps the grid.
// The panel reservation (w.cols() floats) is a subset of what any prior SpMM
// call on the same workspace reserved, so a serving loop warmed on prefill
// shapes stays allocation-free here.
template <typename FillPanel>
void SpmvAccumulateCore(const TcaBmeMatrix& w, int64_t x_rows,
                        const FillPanel& fill_panel, SpmmWorkspace* ws,
                        FloatMatrix* out, CpuSpmmVariant variant) {
  SPINFER_CHECK_EQ(w.cols(), x_rows);
  SPINFER_CHECK_EQ(out->rows(), w.rows());
  SPINFER_CHECK_EQ(out->cols(), 1);
  if (w.rows() == 0) {
    return;
  }
  const bool tracing = obs::TracingEnabled();
  obs::TraceScope call_scope("cpu_spmv");
  if (call_scope.active()) {
    call_scope.AddArg("m", w.rows());
    call_scope.AddArg("k", w.cols());
  }

  ws->x_panel.Reserve(static_cast<size_t>(x_rows));
  float* xf = ws->x_panel.data();
  {
    SPINFER_TRACE_SCOPE("cpu_spmv.convert");
    fill_panel(xf);
  }

  const SpmvKernelFn kernel = SpmvKernelFor(variant);
  float* out_data = out->data();
  RowParallelSweep(w.gt_grid_rows(), w.gt_grid_cols(), tracing,
                   [&](int64_t gt, SpmmPhaseRecorder* rec) {
                     kernel(w, gt, xf, out_data, rec);
                   });
}

void SpmvInt8AccumulateCore(const TcaBmeQuantMatrix& w, const FloatMatrix& x,
                            SpmmWorkspace* ws, FloatMatrix* out,
                            CpuSpmmVariant variant) {
  SPINFER_CHECK_EQ(w.cols(), x.rows());
  SPINFER_CHECK_EQ(x.cols(), 1);
  SPINFER_CHECK_EQ(out->rows(), w.rows());
  SPINFER_CHECK_EQ(out->cols(), 1);
  if (w.rows() == 0) {
    return;
  }
  const bool tracing = obs::TracingEnabled();
  obs::TraceScope call_scope("cpu_spmv_int8");
  if (call_scope.active()) {
    call_scope.AddArg("m", w.rows());
    call_scope.AddArg("k", w.cols());
  }

  // Symmetric absmax quantization of the activation vector, computed fresh
  // per call (decode activations change every step). Sequential scan and
  // round-to-nearest-even via lrintf: deterministic, variant-independent.
  const int64_t k = x.rows();
  ws->xq_panel.Reserve(static_cast<size_t>(k));
  int16_t* xq = ws->xq_panel.data();
  float x_scale = 1.0f;
  {
    SPINFER_TRACE_SCOPE("cpu_spmv.quantize");
    const float* src = x.data();
    float absmax = 0.0f;
    for (int64_t i = 0; i < k; ++i) {
      absmax = std::max(absmax, std::fabs(src[i]));
    }
    const float inv = absmax > 0.0f ? 127.0f / absmax : 0.0f;
    x_scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
    for (int64_t i = 0; i < k; ++i) {
      const long q = std::lrintf(src[i] * inv);
      xq[i] = static_cast<int16_t>(std::clamp(q, -127L, 127L));
    }
  }

  const SpmvInt8KernelFn kernel = SpmvInt8KernelFor(variant);
  float* out_data = out->data();
  RowParallelSweep(w.gt_grid_rows(), w.gt_grid_cols(), tracing,
                   [&](int64_t gt, SpmmPhaseRecorder* rec) {
                     kernel(w, gt, xq, x_scale, out_data, rec);
                   });
}

void FillPanelFromHalf(const HalfMatrix& x, float* xf) {
  const Half* src = x.data();
  const int64_t size = x.size();
  for (int64_t i = 0; i < size; ++i) {
    xf[i] = src[i].ToFloat();
  }
}

// FP32 input: quantize to FP16 on the fly, panel = float(half(x)) — the same
// bits CpuSpmmQuant* stages, so the two entry families stay interchangeable.
void FillPanelFromFloat(const FloatMatrix& x, float* xf) {
  const float* src = x.data();
  const int64_t size = x.size();
  for (int64_t i = 0; i < size; ++i) {
    xf[i] = Half(src[i]).ToFloat();
  }
}

}  // namespace

void CpuSpmvAccumulateInto(const TcaBmeMatrix& w, const HalfMatrix& x,
                           SpmmWorkspace* ws, FloatMatrix* out) {
  SPINFER_CHECK_EQ(x.cols(), 1);
  SpmvAccumulateCore(
      w, x.rows(), [&](float* xf) { FillPanelFromHalf(x, xf); }, ws, out,
      ActiveCpuSpmmVariant());
}

void CpuSpmvInto(const TcaBmeMatrix& w, const HalfMatrix& x, SpmmWorkspace* ws,
                 FloatMatrix* out) {
  SPINFER_CHECK_EQ(w.cols(), x.rows());
  SPINFER_CHECK_EQ(x.cols(), 1);
  out->Reshape(w.rows(), 1);
  out->Fill(0.0f);
  CpuSpmvAccumulateInto(w, x, ws, out);
}

void CpuSpmvQuantAccumulateInto(const TcaBmeMatrix& w, const FloatMatrix& x,
                                SpmmWorkspace* ws, FloatMatrix* out) {
  SPINFER_CHECK_EQ(x.cols(), 1);
  SpmvAccumulateCore(
      w, x.rows(), [&](float* xf) { FillPanelFromFloat(x, xf); }, ws, out,
      ActiveCpuSpmmVariant());
}

void CpuSpmvQuantInto(const TcaBmeMatrix& w, const FloatMatrix& x,
                      SpmmWorkspace* ws, FloatMatrix* out) {
  SPINFER_CHECK_EQ(w.cols(), x.rows());
  SPINFER_CHECK_EQ(x.cols(), 1);
  out->Reshape(w.rows(), 1);
  out->Fill(0.0f);
  CpuSpmvQuantAccumulateInto(w, x, ws, out);
}

void CpuSpmvInt8AccumulateInto(const TcaBmeQuantMatrix& w, const FloatMatrix& x,
                               SpmmWorkspace* ws, FloatMatrix* out) {
  SpmvInt8AccumulateCore(w, x, ws, out, ActiveCpuSpmmVariant());
}

void CpuSpmvInt8Into(const TcaBmeQuantMatrix& w, const FloatMatrix& x,
                     SpmmWorkspace* ws, FloatMatrix* out) {
  SPINFER_CHECK_EQ(w.cols(), x.rows());
  SPINFER_CHECK_EQ(x.cols(), 1);
  out->Reshape(w.rows(), 1);
  out->Fill(0.0f);
  CpuSpmvInt8AccumulateInto(w, x, ws, out);
}

void CpuSpmvAccumulateIntoVariant(const TcaBmeMatrix& w, const HalfMatrix& x,
                                  SpmmWorkspace* ws, FloatMatrix* out,
                                  CpuSpmmVariant v) {
  SPINFER_CHECK_MSG(CpuSpmmVariantAvailable(v),
                    "requested CPU SpMV variant is unavailable on this machine");
  SPINFER_CHECK_EQ(x.cols(), 1);
  SpmvAccumulateCore(
      w, x.rows(), [&](float* xf) { FillPanelFromHalf(x, xf); }, ws, out, v);
}

void CpuSpmvInt8AccumulateIntoVariant(const TcaBmeQuantMatrix& w,
                                      const FloatMatrix& x, SpmmWorkspace* ws,
                                      FloatMatrix* out, CpuSpmmVariant v) {
  SPINFER_CHECK_MSG(CpuSpmmVariantAvailable(v),
                    "requested CPU SpMV variant is unavailable on this machine");
  SpmvInt8AccumulateCore(w, x, ws, out, v);
}

}  // namespace spinfer
