// Portable half of the v2 backend: the driver (workspace, N-blocking,
// GroupTile-row parallelism, dispatch) plus the auto-vectorizing row update.
//
// Compiled with -ffp-contract=off (see src/core/CMakeLists.txt): the row
// update must round every multiply and every add separately so its results
// are bit-identical to the AVX2 unit, which uses explicit mul/add intrinsics.
#include "src/core/cpu_backend.h"

#include <algorithm>

#include "src/core/cpu_backend_inner.h"
#include "src/core/cpu_spmv.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/cpu_features.h"
#include "src/util/thread_pool.h"

namespace spinfer {

namespace cpu_backend_detail {

// Out-of-line (this TU is built without ISA-specific flags) so every SIMD
// variant shares one clean copy; see the declaration for why.
uint64_t SpmmPhaseRecorder::Now() const { return obs::Tracer::Global().NowNs(); }

}  // namespace cpu_backend_detail

namespace {

using cpu_backend_detail::ProcessGroupTile;
using cpu_backend_detail::RowTerm;

// Portable register-tiled row update. The fixed-size inner loops (8 floats =
// one or two vector registers on any target) auto-vectorize at -O2/-O3; the
// t-loop keeps the accumulators live across the row's nonzeros.
struct PortableRowFma {
  void Row8(float* orow, uint64_t rowmask, const float* vals,
            const float* xcol0, int64_t n) const {
    float acc[8];
    for (int u = 0; u < 8; ++u) {
      acc[u] = orow[u];
    }
    int t = 0;
    while (rowmask != 0) {
      const int cc = std::countr_zero(rowmask);
      rowmask &= rowmask - 1;
      const float v = vals[t++];
      const float* xr = xcol0 + cc * n;
      for (int u = 0; u < 8; ++u) {
        acc[u] += v * xr[u];
      }
    }
    for (int u = 0; u < 8; ++u) {
      orow[u] = acc[u];
    }
  }

  void operator()(float* orow, const RowTerm* terms, int count, int64_t nb) const {
    int64_t j = 0;
    for (; j + 8 <= nb; j += 8) {
      float acc[8];
      for (int u = 0; u < 8; ++u) {
        acc[u] = orow[j + u];
      }
      for (int t = 0; t < count; ++t) {
        const float v = terms[t].v;
        const float* xr = terms[t].xrow + j;
        for (int u = 0; u < 8; ++u) {
          acc[u] += v * xr[u];
        }
      }
      for (int u = 0; u < 8; ++u) {
        orow[j + u] = acc[u];
      }
    }
    for (; j < nb; ++j) {
      float acc = orow[j];
      for (int t = 0; t < count; ++t) {
        acc += terms[t].v * terms[t].xrow[j];
      }
      orow[j] = acc;
    }
  }
};

// LUT-based batch conversion for the portable variant; exact, so it matches
// the AVX2 unit's vcvtph2ps bit for bit.
struct PortableConvert {
  void operator()(const Half* src, float* dst, size_t count) const {
    for (size_t i = 0; i < count; ++i) {
      dst[i] = src[i].ToFloat();
    }
  }
};

void ProcessGroupTilePortable(const TcaBmeMatrix& w, int64_t gt, const float* xf,
                              int64_t n, int64_t j0, int64_t nb, float* out,
                              cpu_backend_detail::SpmmPhaseRecorder* rec) {
  if (rec != nullptr) {
    ProcessGroupTile<true>(w, gt, xf, n, j0, nb, out, PortableRowFma{},
                           PortableConvert{}, rec);
  } else {
    ProcessGroupTile<false>(w, gt, xf, n, j0, nb, out, PortableRowFma{},
                            PortableConvert{});
  }
}

using GroupTileFn = void (*)(const TcaBmeMatrix&, int64_t, const float*, int64_t,
                             int64_t, int64_t, float*,
                             cpu_backend_detail::SpmmPhaseRecorder*);

GroupTileFn KernelFor(CpuSpmmVariant v) {
  return v == CpuSpmmVariant::kAvx2 ? &cpu_backend_detail::ProcessGroupTileAvx2
                                    : &ProcessGroupTilePortable;
}

// Shared accumulate core: fills the FP32 X panel once (`fill_panel` is the
// only thing the FP16 and quantize-FP32 entry points differ in), then sweeps
// N blocks x GroupTile columns inside a row-parallel loop. Each ParallelFor
// index owns the output rows of one GroupTile grid row, so writes are
// disjoint and the per-element accumulation order (N-block, then GroupTile
// column, then storage bit order) is fixed regardless of thread count.
template <typename FillPanel>
void AccumulateCore(const TcaBmeMatrix& w, int64_t x_rows, int64_t n,
                    const FillPanel& fill_panel, SpmmWorkspace* ws,
                    FloatMatrix* out, CpuSpmmVariant variant) {
  SPINFER_CHECK_EQ(w.cols(), x_rows);
  SPINFER_CHECK_EQ(out->rows(), w.rows());
  SPINFER_CHECK_EQ(out->cols(), n);
  if (n == 0 || w.rows() == 0) {
    return;
  }
  // The enabled check is hoisted out of the row loop: when tracing is off
  // each task passes a null recorder and runs the untimed ProcessGroupTile
  // instantiation — zero instrumentation inside the tile walk.
  const bool tracing = obs::TracingEnabled();
  obs::TraceScope call_scope("cpu_spmm");
  if (call_scope.active()) {
    call_scope.AddArg("m", w.rows());
    call_scope.AddArg("k", w.cols());
    call_scope.AddArg("n", n);
  }

  ws->x_panel.Reserve(static_cast<size_t>(x_rows * n));
  float* xf = ws->x_panel.data();
  {
    // Named like the per-tile value staging so trace_report aggregates the
    // whole half->float phase under one row.
    SPINFER_TRACE_SCOPE("cpu_spmm.convert");
    fill_panel(xf);
  }

  const GroupTileFn kernel = KernelFor(variant);
  const int64_t grid_rows = w.gt_grid_rows();
  const int64_t grid_cols = w.gt_grid_cols();
  float* out_data = out->data();
  ParallelFor(0, grid_rows, [&](int64_t gtr) {
    if (!tracing) {
      for (int64_t j0 = 0; j0 < n; j0 += kCpuSpmmNBlock) {
        const int64_t nb = std::min(kCpuSpmmNBlock, n - j0);
        for (int64_t gtc = 0; gtc < grid_cols; ++gtc) {
          kernel(w, gtr * grid_cols + gtc, xf, n, j0, nb, out_data, nullptr);
        }
      }
      return;
    }
    // Traced row task: accumulate phase nanoseconds across the task, then
    // emit them as back-to-back synthetic child slices of the task span —
    // Perfetto sees properly nested slices whose durations are the real
    // per-phase totals.
    cpu_backend_detail::SpmmPhaseRecorder rec;
    obs::Tracer& tracer = obs::Tracer::Global();
    const uint64_t task_start = tracer.NowNs();
    for (int64_t j0 = 0; j0 < n; j0 += kCpuSpmmNBlock) {
      const int64_t nb = std::min(kCpuSpmmNBlock, n - j0);
      for (int64_t gtc = 0; gtc < grid_cols; ++gtc) {
        kernel(w, gtr * grid_cols + gtc, xf, n, j0, nb, out_data, &rec);
      }
    }
    const uint64_t task_end = tracer.NowNs();
    obs::TraceArg task_args[3] = {{"gt_row", gtr},
                                  {"tiles", static_cast<int64_t>(rec.tiles)},
                                  {"nnz", static_cast<int64_t>(rec.nnz)}};
    tracer.Record("cpu_spmm.row_task", task_start, task_end - task_start,
                  task_args, 3);
    uint64_t slice_start = task_start;
    tracer.Record("cpu_spmm.convert", slice_start, rec.convert_ns);
    slice_start += rec.convert_ns;
    tracer.Record("cpu_spmm.decode", slice_start, rec.decode_ns);
    slice_start += rec.decode_ns;
    tracer.Record("cpu_spmm.accumulate", slice_start, rec.accumulate_ns);
  });
}

void AccumulateImpl(const TcaBmeMatrix& w, const HalfMatrix& x, SpmmWorkspace* ws,
                    FloatMatrix* out, CpuSpmmVariant variant) {
  AccumulateCore(
      w, x.rows(), x.cols(), [&](float* xf) { ToFloatInto(x, xf); }, ws, out,
      variant);
}

// FP32 input: quantize to FP16 on the fly while filling the panel. The panel
// bits equal float(Half(x[i])) — exactly what ToFloatInto produces from a
// pre-converted HalfMatrix — so the two entry families are bit-identical.
void QuantAccumulateImpl(const TcaBmeMatrix& w, const FloatMatrix& x,
                         SpmmWorkspace* ws, FloatMatrix* out,
                         CpuSpmmVariant variant) {
  AccumulateCore(
      w, x.rows(), x.cols(),
      [&](float* xf) {
        const float* src = x.data();
        const int64_t size = x.size();
        for (int64_t i = 0; i < size; ++i) {
          xf[i] = Half(src[i]).ToFloat();
        }
      },
      ws, out, variant);
}

}  // namespace

const char* CpuSpmmVariantName(CpuSpmmVariant v) {
  return v == CpuSpmmVariant::kAvx2 ? "avx2" : "portable";
}

bool CpuSpmmVariantAvailable(CpuSpmmVariant v) {
  if (v == CpuSpmmVariant::kPortable) {
    return true;
  }
  const CpuFeatures& f = GetCpuFeatures();
  return cpu_backend_detail::CpuSpmmAvx2Compiled() && f.avx2 && f.fma && f.f16c;
}

CpuSpmmVariant ActiveCpuSpmmVariant() {
  static const CpuSpmmVariant active = [] {
    if (ActiveSimdLevel() == SimdLevel::kAvx2 &&
        CpuSpmmVariantAvailable(CpuSpmmVariant::kAvx2)) {
      return CpuSpmmVariant::kAvx2;
    }
    return CpuSpmmVariant::kPortable;
  }();
  return active;
}

void CpuSpmmAccumulateIntoVariant(const TcaBmeMatrix& w, const HalfMatrix& x,
                                  SpmmWorkspace* ws, FloatMatrix* out,
                                  CpuSpmmVariant v) {
  SPINFER_CHECK_MSG(CpuSpmmVariantAvailable(v),
                    "requested CPU SpMM variant is unavailable on this machine");
  AccumulateImpl(w, x, ws, out, v);
}

// Single-column calls (the batch-1 decode shape) route to the bitmap-direct
// SpMV kernel: bit-identical on that shape by the shared-chain contract
// (tests/cpu_spmv_test.cc drives both against each other), only faster. The
// variant-pinned entry above stays unrouted on purpose — it is the N-blocked
// reference those differential tests need.
void CpuSpmmAccumulateInto(const TcaBmeMatrix& w, const HalfMatrix& x,
                           SpmmWorkspace* ws, FloatMatrix* out) {
  if (x.cols() == 1) {
    CpuSpmvAccumulateInto(w, x, ws, out);
    return;
  }
  AccumulateImpl(w, x, ws, out, ActiveCpuSpmmVariant());
}

void CpuSpmmInto(const TcaBmeMatrix& w, const HalfMatrix& x, SpmmWorkspace* ws,
                 FloatMatrix* out) {
  SPINFER_CHECK_EQ(w.cols(), x.rows());
  out->Reshape(w.rows(), x.cols());
  out->Fill(0.0f);
  if (x.cols() == 1) {
    CpuSpmvAccumulateInto(w, x, ws, out);
    return;
  }
  AccumulateImpl(w, x, ws, out, ActiveCpuSpmmVariant());
}

void CpuSpmmQuantAccumulateInto(const TcaBmeMatrix& w, const FloatMatrix& x,
                                SpmmWorkspace* ws, FloatMatrix* out) {
  if (x.cols() == 1) {
    CpuSpmvQuantAccumulateInto(w, x, ws, out);
    return;
  }
  QuantAccumulateImpl(w, x, ws, out, ActiveCpuSpmmVariant());
}

void CpuSpmmQuantInto(const TcaBmeMatrix& w, const FloatMatrix& x,
                      SpmmWorkspace* ws, FloatMatrix* out) {
  SPINFER_CHECK_EQ(w.cols(), x.rows());
  out->Reshape(w.rows(), x.cols());
  out->Fill(0.0f);
  if (x.cols() == 1) {
    CpuSpmvQuantAccumulateInto(w, x, ws, out);
    return;
  }
  QuantAccumulateImpl(w, x, ws, out, ActiveCpuSpmmVariant());
}

FloatMatrix CpuSpmm(const TcaBmeMatrix& w, const HalfMatrix& x) {
  FloatMatrix out;
  SpmmWorkspace ws;
  CpuSpmmInto(w, x, &ws, &out);
  return out;
}

void CpuSpmmAccumulate(const TcaBmeMatrix& w, const HalfMatrix& x, FloatMatrix* out) {
  SpmmWorkspace ws;
  CpuSpmmAccumulateInto(w, x, &ws, out);
}

}  // namespace spinfer
