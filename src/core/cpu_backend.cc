#include "src/core/cpu_backend.h"

#include <bit>

#include "src/util/check.h"

namespace spinfer {

void CpuSpmmAccumulate(const TcaBmeMatrix& w, const HalfMatrix& x, FloatMatrix* out) {
  SPINFER_CHECK_EQ(w.cols(), x.rows());
  SPINFER_CHECK_EQ(out->rows(), w.rows());
  SPINFER_CHECK_EQ(out->cols(), x.cols());
  const int64_t n = x.cols();
  const int64_t m = w.rows();
  const int64_t k = w.cols();
  const int tc_rows = w.tc_rows_per_gt();
  const int tc_cols = w.tc_cols_per_gt();
  const TcaBmeConfig& cfg = w.config();

  for (int64_t gt = 0; gt < w.num_group_tiles(); ++gt) {
    const int64_t base_r = (gt / w.gt_grid_cols()) * cfg.gt_rows;
    const int64_t base_c = (gt % w.gt_grid_cols()) * cfg.gt_cols;
    size_t cursor = w.gtile_offsets()[gt];
    // Nested traversal mirrors the storage order exactly, so `cursor` walks
    // the Values run without any index lookups.
    for (int tcc = 0; tcc < tc_cols; ++tcc) {
      for (int tcr = 0; tcr < tc_rows; ++tcr) {
        const int tc = tcc * tc_rows + tcr;
        for (int q = 0; q < 4; ++q) {
          uint64_t bitmap = w.bitmaps()[w.BitmapIndex(gt, tc, q)];
          const int64_t bt_r = base_r + static_cast<int64_t>(tcr) * kTcTileDim +
                               (q % 2) * kBitmapTileDim;
          const int64_t bt_c = base_c + static_cast<int64_t>(tcc) * kTcTileDim +
                               (q / 2) * kBitmapTileDim;
          while (bitmap != 0) {
            const int bit = std::countr_zero(bitmap);
            bitmap &= bitmap - 1;
            const float v = w.values()[cursor++].ToFloat();
            const int64_t r = bt_r + bit / kBitmapTileDim;
            const int64_t c = bt_c + bit % kBitmapTileDim;
            if (r >= m || c >= k) {
              continue;  // padding region holds no nonzeros by construction
            }
            float* out_row = out->data() + r * n;
            const Half* x_row = x.data() + c * n;
            for (int64_t j = 0; j < n; ++j) {
              out_row[j] += v * x_row[j].ToFloat();
            }
          }
        }
      }
    }
  }
}

FloatMatrix CpuSpmm(const TcaBmeMatrix& w, const HalfMatrix& x) {
  FloatMatrix out(w.rows(), x.cols());
  CpuSpmmAccumulate(w, x, &out);
  return out;
}

}  // namespace spinfer
