// SpInfer umbrella header — the public API surface.
//
//   #include "src/core/spinfer.h"
//
// pulls in the TCA-BME sparse format, the SpInfer-SpMM kernel, the pruning
// algorithms, the device/cost models, and the inference-engine entry points.
// See examples/quickstart.cpp for the 30-line tour.
#pragma once

#include "src/core/cpu_backend.h"      // IWYU pragma: export
#include "src/core/kernel_config.h"    // IWYU pragma: export
#include "src/core/smbd.h"             // IWYU pragma: export
#include "src/core/spinfer_kernel.h"   // IWYU pragma: export
#include "src/core/spmm.h"             // IWYU pragma: export
#include "src/format/tca_bme.h"        // IWYU pragma: export
#include "src/gpusim/device_spec.h"    // IWYU pragma: export
#include "src/numeric/compare.h"       // IWYU pragma: export
#include "src/numeric/matrix.h"        // IWYU pragma: export
