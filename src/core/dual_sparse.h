// Dual sparsity: weight sparsity x dynamic activation sparsity.
//
// The paper's §6 names runtime activation sparsity (Deja Vu, PowerInfer) as
// future work: ReLU-family models leave many activation rows exactly zero
// at inference time, and those rows' weight columns contribute nothing.
// This extension adds the composition:
//   * functionally, the CPU backend skips inactive X rows while walking the
//     bitmaps (the Values cursor still advances — the format is untouched);
//   * analytically, a cost estimate models the Deja Vu-style deployment
//     where inactive neurons are predicted in contiguous groups, letting a
//     GPU kernel skip whole GroupTile columns and their weight traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/spmm.h"
#include "src/format/tca_bme.h"
#include "src/gpusim/cost_model.h"

namespace spinfer {

// Rows of X that contain at least one nonzero.
std::vector<bool> ActiveRows(const HalfMatrix& x);

// O = W * X skipping inactive X rows. Exact: equals CpuSpmm(w, x) because
// skipped products are zero. `counters` (optional) records the FLOPs
// actually performed, which shrink with activation sparsity.
FloatMatrix CpuDualSparseSpmm(const TcaBmeMatrix& w, const HalfMatrix& x,
                              PerfCounters* counters);

// Modeled GPU time when a fraction `activation_sparsity` of X rows is
// inactive, clustered in contiguous groups of `neuron_group` rows (the
// granularity Deja Vu-style predictors emit). Weight traffic and compute
// drop by the fraction of fully-inactive GroupTile columns.
TimeBreakdown EstimateDualSparseTime(const SpmmProblem& p, double activation_sparsity,
                                     int neuron_group, const DeviceSpec& dev);

}  // namespace spinfer
