#include "src/core/smbd.h"

namespace spinfer {

void SmbdDecodeLane(uint64_t bitmap, int lane, const Half* values, Half out[2],
                    int* loads) {
  int n_loads = 0;
  // Phase I: element a0 at bit 2*lane.
  const bool bit0 = (bitmap >> (2 * lane)) & 1ull;
  int offset = 0;
  if (bit0) {
    offset = MaskedPopCount(bitmap, lane);
    out[0] = values[offset];
    ++n_loads;
  } else {
    out[0] = Half(0.0f);
  }
  // Phase II: element a1 at bit 2*lane+1 reuses Phase I's offset (paper:
  // "if the first value (a0) was non-zero, the offset is incremented by one").
  const bool bit1 = (bitmap >> (2 * lane + 1)) & 1ull;
  if (bit1) {
    if (!bit0) {
      // a0 absent: the masked count below 2*lane is also the offset of a1.
      offset = MaskedPopCount(bitmap, lane);
      out[1] = values[offset];
    } else {
      out[1] = values[offset + 1];
    }
    ++n_loads;
  } else {
    out[1] = Half(0.0f);
  }
  if (loads != nullptr) {
    *loads = n_loads;
  }
}

void SmbdDecodeTcTile(const uint64_t bitmaps[4], const Half* const quadrant_values[4],
                      MmaAFragment frag[kWarpSize], PerfCounters* counters) {
  for (int q = 0; q < 4; ++q) {
    uint64_t lane_loads_total = 0;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      Half out[2];
      int loads = 0;
      SmbdDecodeLane(bitmaps[q], lane, quadrant_values[q], out, &loads);
      frag[lane].a[q * 2 + 0] = out[0];
      frag[lane].a[q * 2 + 1] = out[1];
      lane_loads_total += static_cast<uint64_t>(loads);
    }
    if (counters != nullptr) {
      // Per quadrant: one warp-wide MaskedPopCount (Phase I; Phase II reuses
      // it), one full PopCount to advance the running base offset, and a
      // handful of mask/select/add warp instructions.
      counters->popc_ops += 2;
      counters->alu_ops += 8;
      counters->lds_instrs += 2;  // two phases of (predicated) LDS
      counters->smem_bytes_read += lane_loads_total * sizeof(Half);
    }
  }
}

}  // namespace spinfer
