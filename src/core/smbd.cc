#include "src/core/smbd.h"

namespace spinfer {

void SmbdDecodeLane(uint64_t bitmap, int lane, const Half* values, Half out[2],
                    int* loads) {
  int n_loads = 0;
  // Phase I: element a0 at bit 2*lane.
  const bool bit0 = (bitmap >> (2 * lane)) & 1ull;
  int offset = 0;
  if (bit0) {
    offset = MaskedPopCount(bitmap, lane);
    out[0] = values[offset];
    ++n_loads;
  } else {
    out[0] = Half(0.0f);
  }
  // Phase II: element a1 at bit 2*lane+1 reuses Phase I's offset (paper:
  // "if the first value (a0) was non-zero, the offset is incremented by one").
  const bool bit1 = (bitmap >> (2 * lane + 1)) & 1ull;
  if (bit1) {
    if (!bit0) {
      // a0 absent: the masked count below 2*lane is also the offset of a1.
      offset = MaskedPopCount(bitmap, lane);
      out[1] = values[offset];
    } else {
      out[1] = values[offset + 1];
    }
    ++n_loads;
  } else {
    out[1] = Half(0.0f);
  }
  if (loads != nullptr) {
    *loads = n_loads;
  }
}

void SmbdDecodeTcTile(const uint64_t bitmaps[4], const Half* const quadrant_values[4],
                      MmaAFragment frag[kWarpSize], PerfCounters* counters) {
  // Fast path: one pass over the 32 lanes per quadrant with an incremental
  // prefix popcount. Lane i's Phase-I offset is the number of set bits below
  // bit 2i — exactly the running count after lanes 0..i-1 consumed their
  // bits — so the 32 independent MaskedPopCount rescans of the per-lane
  // reference (SmbdDecodeLane, kept for tests) collapse into one
  // accumulator. Outputs and load counts are identical by construction;
  // tests/smbd_equivalence_test.cc checks it over random densities.
  constexpr Half kZero{};  // bits 0x0000, same as Half(0.0f)
  for (int q = 0; q < 4; ++q) {
    const uint64_t bitmap = bitmaps[q];
    const Half* values = quadrant_values[q];
    uint32_t prefix = 0;  // popcount of bits below 2*lane
    for (int lane = 0; lane < kWarpSize; ++lane) {
      const uint32_t pair = (bitmap >> (2 * lane)) & 3u;
      const uint32_t bit0 = pair & 1u;
      frag[lane].a[q * 2 + 0] = (pair & 1u) ? values[prefix] : kZero;
      frag[lane].a[q * 2 + 1] = (pair & 2u) ? values[prefix + bit0] : kZero;
      prefix += bit0 + (pair >> 1);
    }
    if (counters != nullptr) {
      // Per quadrant: one warp-wide MaskedPopCount (Phase I; Phase II reuses
      // it), one full PopCount to advance the running base offset, and a
      // handful of mask/select/add warp instructions. `prefix` has ended as
      // the quadrant's total set-bit count = total value loads.
      counters->popc_ops += 2;
      counters->alu_ops += 8;
      counters->lds_instrs += 2;  // two phases of (predicated) LDS
      counters->smem_bytes_read += static_cast<uint64_t>(prefix) * sizeof(Half);
    }
  }
}

}  // namespace spinfer
