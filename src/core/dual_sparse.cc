#include "src/core/dual_sparse.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/core/spinfer_kernel.h"
#include "src/util/check.h"

namespace spinfer {

std::vector<bool> ActiveRows(const HalfMatrix& x) {
  std::vector<bool> active(static_cast<size_t>(x.rows()), false);
  for (int64_t r = 0; r < x.rows(); ++r) {
    for (int64_t c = 0; c < x.cols(); ++c) {
      if (!x.at(r, c).IsZero()) {
        active[r] = true;
        break;
      }
    }
  }
  return active;
}

FloatMatrix CpuDualSparseSpmm(const TcaBmeMatrix& w, const HalfMatrix& x,
                              PerfCounters* counters) {
  SPINFER_CHECK_EQ(w.cols(), x.rows());
  const std::vector<bool> active = ActiveRows(x);
  const int64_t n = x.cols();
  const int64_t m = w.rows();
  const int64_t k = w.cols();
  const int tc_rows = w.tc_rows_per_gt();
  const int tc_cols = w.tc_cols_per_gt();
  const TcaBmeConfig& cfg = w.config();
  FloatMatrix out(m, n);
  uint64_t flops = 0;

  for (int64_t gt = 0; gt < w.num_group_tiles(); ++gt) {
    const int64_t base_r = (gt / w.gt_grid_cols()) * cfg.gt_rows;
    const int64_t base_c = (gt % w.gt_grid_cols()) * cfg.gt_cols;
    size_t cursor = w.gtile_offsets()[gt];
    for (int tcc = 0; tcc < tc_cols; ++tcc) {
      for (int tcr = 0; tcr < tc_rows; ++tcr) {
        const int tc = tcc * tc_rows + tcr;
        for (int q = 0; q < 4; ++q) {
          uint64_t bitmap = w.bitmaps()[w.BitmapIndex(gt, tc, q)];
          const int64_t bt_r = base_r + static_cast<int64_t>(tcr) * kTcTileDim +
                               (q % 2) * kBitmapTileDim;
          const int64_t bt_c = base_c + static_cast<int64_t>(tcc) * kTcTileDim +
                               (q / 2) * kBitmapTileDim;
          while (bitmap != 0) {
            const int bit = std::countr_zero(bitmap);
            bitmap &= bitmap - 1;
            const size_t vi = cursor++;
            const int64_t r = bt_r + bit / kBitmapTileDim;
            const int64_t c = bt_c + bit % kBitmapTileDim;
            if (r >= m || c >= k || !active[c]) {
              continue;  // inactive input: the whole product row is zero
            }
            const float v = w.values()[vi].ToFloat();
            float* out_row = out.data() + r * n;
            const Half* x_row = x.data() + c * n;
            for (int64_t j = 0; j < n; ++j) {
              out_row[j] += v * x_row[j].ToFloat();
            }
            flops += 2ull * static_cast<uint64_t>(n);
          }
        }
      }
    }
  }
  if (counters != nullptr) {
    counters->flops += flops;
  }
  return out;
}

TimeBreakdown EstimateDualSparseTime(const SpmmProblem& p, double activation_sparsity,
                                     int neuron_group, const DeviceSpec& dev) {
  SPINFER_CHECK(activation_sparsity >= 0.0 && activation_sparsity <= 1.0);
  SPINFER_CHECK(neuron_group > 0);
  // Fraction of GroupTile columns (gt_cols input rows) that are entirely
  // inactive: inactive neurons arrive in contiguous groups of `neuron_group`,
  // so a GroupTile column of width G is skippable with probability
  // ~ s_a^(ceil(G / neuron_group)) under independent group activations.
  const SpInferSpmmKernel kernel;
  const int gt_cols = kernel.config().format.gt_cols;
  const double groups_per_tile =
      std::ceil(static_cast<double>(gt_cols) / static_cast<double>(neuron_group));
  const double skip_prob = std::pow(activation_sparsity, groups_per_tile);

  // Reuse the base estimate and scale the weight-traffic and compute terms
  // by the surviving fraction.
  KernelEstimate base = kernel.Estimate(p, dev);
  const double keep = 1.0 - skip_prob;
  KernelWork work;
  work.dram_bytes_read = static_cast<uint64_t>(
      static_cast<double>(base.counters.dram_bytes_read) * keep);
  work.dram_bytes_written = base.counters.dram_bytes_written;
  work.flops = static_cast<uint64_t>(static_cast<double>(base.counters.flops) * keep);
  work.decode_ops =
      static_cast<uint64_t>(static_cast<double>(base.counters.popc_ops +
                                                base.counters.alu_ops) *
                            32.0 * keep);
  work.n = p.n;
  return EstimateKernelTime(kernel.Traits(), work, dev);
}

}  // namespace spinfer
