// Offline autotuner for the SpInfer-SpMM kernel.
//
// The paper fixes one GroupTile geometry; a production integration tunes it
// per weight shape (the FasterTransformer integration selects kernels at
// engine-build time). This tuner sweeps GroupTile geometries and split-K
// against the cost model — occupancy-aware, so configurations whose
// double-buffered tiles exhaust shared memory are rejected — and returns the
// fastest launchable configuration.
#pragma once

#include <vector>

#include "src/core/spinfer_kernel.h"

namespace spinfer {

struct AutotuneCandidate {
  SpInferKernelConfig config;
  double modeled_us = 0.0;
};

struct AutotuneResult {
  // The winning configuration and its modeled time.
  SpInferKernelConfig config;
  TimeBreakdown time;
  // Every explored candidate, best first (for ablation reporting).
  std::vector<AutotuneCandidate> candidates;
};

// Sweeps gt_rows x gt_cols over {16,32,64,128}^2 with automatic split-K.
AutotuneResult AutotuneSpInfer(const SpmmProblem& problem, const DeviceSpec& dev);

}  // namespace spinfer
