// Internal: the GroupTile traversal shared by every CPU SpMV SIMD variant.
//
// The SpMV (N == 1) kernel family is a sibling of the SpMM traversal in
// cpu_backend_inner.h, specialized for a single output column: there is no
// activation panel blocking, no RowTerm staging, and each BitmapTile row
// collapses to one scalar accumulator. The bitmap walk, Values-cursor
// arithmetic, and ragged-edge handling again live here exactly once, so a
// variant can only disagree about *scheduling* identical per-element
// mul-then-add chains — never about which products to form. That is the
// bit-identity contract tests/cpu_spmv_test.cc enforces against CpuSpmm at
// N = 1.
//
// Do not include outside src/core/cpu_spmv*.cc and tests.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

#include "src/core/cpu_backend_inner.h"
#include "src/format/tca_bme.h"
#include "src/format/tca_bme_quant.h"

namespace spinfer {
namespace cpu_spmv_detail {

// SpMV reuses the SpMM phase recorder (convert/decode/accumulate split) and
// its out-of-line Now(); the driver emits the same synthetic child slices
// under a "cpu_spmv.row_task" span.
using cpu_backend_detail::SpmmPhaseRecorder;

// Interior-tile staging is padded so the AVX2 row-expansion loads (8 floats /
// 16 codes starting at an arbitrary in-tile offset) always stay inside the
// stack array instead of overreading the heap Values stream at the last tile.
inline constexpr int kSpmvStagePadFloats = 8;
inline constexpr int kSpmvStagePadCodes = 16;

// FP16 tile contract — tile_fn(bitmap, pc, tile_vals, bt_r, bt_c, xf, out)
// performs, for every set bit (rr, cc) of `bitmap` in ascending-cc order
// within each row rr:
//     out[bt_r + rr] = out[bt_r + rr] + tile_vals[t] * xf[bt_c + cc]
// where t is the bit's rank in bit order, with one rounding for the multiply
// and one for the add (the variant TUs are compiled with -ffp-contract=off,
// and the AVX2 unit uses explicit mul/add — never FMA). Each output row's
// chain is a pure ascending-column scalar recurrence, so any vectorization
// *across rows* (the AVX2 unit's scheme) produces the same bits as the
// scalar walk. This is also exactly the chain CpuSpmm's RowTerm path forms
// at nb == 1, which is what makes SpMV == SpMM bitwise at N = 1.

// Shared scalar interior tile: the portable variant's tile_fn and the AVX2
// unit's low-popcount fallback. `static`, not `inline`, for the same
// COMDAT-merging reason as EdgeBitmapTile (see cpu_backend_inner.h).
static inline void ScalarSpmvTile(uint64_t bitmap, const float* tile_vals,
                                  int64_t bt_r, int64_t bt_c, const float* xf,
                                  float* out) {
  const float* xt = xf + bt_c;
  int t = 0;
  for (int rr = 0; rr < kBitmapTileDim; ++rr) {
    uint64_t rowmask = (bitmap >> (rr * kBitmapTileDim)) & 0xFFull;
    if (rowmask == 0) {
      continue;
    }
    float acc = out[bt_r + rr];
    while (rowmask != 0) {
      const int cc = std::countr_zero(rowmask);
      rowmask &= rowmask - 1;
      acc += tile_vals[t++] * xt[cc];
    }
    out[bt_r + rr] = acc;
  }
}

// Applies one GroupTile's nonzeros to the single output column, reading the
// fp32 activation vector `xf` (length w.cols()). Identical storage-order walk
// to ProcessGroupTile: TCTiles column-major, quadrants TL,BL,TR,BR, so the
// Values cursor advances without index lookups and, per output row, columns
// are visited in ascending order across the whole GroupTile row. Ragged
// edges reuse the SpMM edge path at n=1/j0=0/nb=1 — shared guarded code, no
// chance of edge divergence between SpMM and SpMV.
template <bool kTimed, typename TileFn, typename ConvertFn>
static void ProcessGroupTileSpmv(const TcaBmeMatrix& w, int64_t gt,
                                 const float* xf, float* out,
                                 const TileFn& tile_fn, const ConvertFn& convert,
                                 SpmmPhaseRecorder* rec = nullptr) {
  const Half* hvalues = w.values().data();
  const int64_t m = w.rows();
  const int64_t k = w.cols();
  const TcaBmeConfig& cfg = w.config();
  const int tc_rows = w.tc_rows_per_gt();
  const int tc_cols = w.tc_cols_per_gt();
  const int64_t base_r = (gt / w.gt_grid_cols()) * cfg.gt_rows;
  const int64_t base_c = (gt % w.gt_grid_cols()) * cfg.gt_cols;
  size_t cursor = w.gtile_offsets()[gt];
  for (int tcc = 0; tcc < tc_cols; ++tcc) {
    for (int tcr = 0; tcr < tc_rows; ++tcr) {
      const int tc = tcc * tc_rows + tcr;
      for (int q = 0; q < 4; ++q) {
        const uint64_t bitmap = w.bitmaps()[w.BitmapIndex(gt, tc, q)];
        if (bitmap == 0) {
          continue;
        }
        const int pc = std::popcount(bitmap);
        alignas(32) float tile_vals[kBitmapTileDim * kBitmapTileDim +
                                    kSpmvStagePadFloats];
        uint64_t t_phase = 0;
        if constexpr (kTimed) {
          t_phase = rec->Now();
        }
        convert(hvalues + cursor, tile_vals, static_cast<size_t>(pc));
        cursor += static_cast<size_t>(pc);
        if constexpr (kTimed) {
          rec->convert_ns += rec->Now() - t_phase;
          rec->tiles += 1;
          rec->nnz += static_cast<uint64_t>(pc);
          t_phase = rec->Now();
        }
        const int64_t bt_r = base_r + static_cast<int64_t>(tcr) * kTcTileDim +
                             (q % 2) * kBitmapTileDim;
        const int64_t bt_c = base_c + static_cast<int64_t>(tcc) * kTcTileDim +
                             (q / 2) * kBitmapTileDim;
        if (bt_r + kBitmapTileDim > m || bt_c + kBitmapTileDim > k) {
          cpu_backend_detail::EdgeBitmapTile(bitmap, tile_vals, bt_r, bt_c, m,
                                             k, xf, /*n=*/1, /*j0=*/0,
                                             /*nb=*/1, out);
        } else {
          tile_fn(bitmap, pc, tile_vals, bt_r, bt_c, xf, out);
        }
        if constexpr (kTimed) {
          rec->accumulate_ns += rec->Now() - t_phase;
        }
      }
    }
  }
}

// INT8 tile contract — the quantized path accumulates per BitmapTile row:
//     idot      = sum over set bits (rr, cc), ascending cc:
//                   int32(code[t]) * int32(xq[bt_c + cc])
//     out[row] += scale * float(idot)
// The integer dot is exact in int32 (|code| <= 127, |xq| <= 127 * 2^8 head-
// room to spare), so its value is schedule-independent; the float side is a
// single mul and a single add per nonzero *row*, fixed order. That is the
// INT8 accumulation-order contract (DESIGN.md): SIMD variants may reorder
// the integer lanes freely and still produce identical bits.

static inline void ScalarSpmvTileInt8(uint64_t bitmap, const int8_t* codes,
                                      float scale, int64_t bt_r, int64_t bt_c,
                                      const int16_t* xq, float* out) {
  const int16_t* xt = xq + bt_c;
  int t = 0;
  for (int rr = 0; rr < kBitmapTileDim; ++rr) {
    uint64_t rowmask = (bitmap >> (rr * kBitmapTileDim)) & 0xFFull;
    if (rowmask == 0) {
      continue;
    }
    int32_t idot = 0;
    while (rowmask != 0) {
      const int cc = std::countr_zero(rowmask);
      rowmask &= rowmask - 1;
      idot += static_cast<int32_t>(codes[t++]) * static_cast<int32_t>(xt[cc]);
    }
    out[bt_r + rr] += scale * static_cast<float>(idot);
  }
}

// Ragged-edge INT8 tile: out-of-bounds rows skip their codes; out-of-bounds
// columns cannot carry set bits (the encoder only sets bits for stored
// nonzeros), but are guarded anyway so a hand-built matrix cannot corrupt
// memory. A row contributes only if at least one in-bounds bit did.
static inline void EdgeSpmvTileInt8(uint64_t bitmap, const int8_t* codes,
                                    float scale, int64_t bt_r, int64_t bt_c,
                                    int64_t m, int64_t k, const int16_t* xq,
                                    float* out) {
  int t = 0;
  for (int rr = 0; rr < kBitmapTileDim; ++rr) {
    uint64_t rowmask = (bitmap >> (rr * kBitmapTileDim)) & 0xFFull;
    if (rowmask == 0) {
      continue;
    }
    if (bt_r + rr >= m) {
      t += std::popcount(rowmask);
      continue;
    }
    int32_t idot = 0;
    bool any = false;
    while (rowmask != 0) {
      const int cc = std::countr_zero(rowmask);
      rowmask &= rowmask - 1;
      const int8_t code = codes[t++];
      if (bt_c + cc < k) {
        idot += static_cast<int32_t>(code) * static_cast<int32_t>(xq[bt_c + cc]);
        any = true;
      }
    }
    if (any) {
      out[bt_r + rr] += scale * static_cast<float>(idot);
    }
  }
}

// Quantized-weights walk. Same geometry as the FP16 walk (the two formats
// share their storage nesting by construction); the cursor runs over INT8
// codes and each tile carries its own dequantization scale, combined with
// the caller's activation scale into one float factor per tile.
// tile_fn(bitmap, pc, tile_codes, scale, bt_r, bt_c, xq, out).
template <bool kTimed, typename TileFn>
static void ProcessGroupTileSpmvInt8(const TcaBmeQuantMatrix& w, int64_t gt,
                                     const int16_t* xq, float x_scale,
                                     float* out, const TileFn& tile_fn,
                                     SpmmPhaseRecorder* rec = nullptr) {
  const int8_t* codes = w.codes().data();
  const Half* scales = w.scales().data();
  const int64_t m = w.rows();
  const int64_t k = w.cols();
  const TcaBmeConfig& cfg = w.config();
  const int tc_rows = w.tc_rows_per_gt();
  const int tc_cols = w.tc_cols_per_gt();
  const int64_t base_r = (gt / w.gt_grid_cols()) * cfg.gt_rows;
  const int64_t base_c = (gt % w.gt_grid_cols()) * cfg.gt_cols;
  size_t cursor = w.gtile_offsets()[gt];
  for (int tcc = 0; tcc < tc_cols; ++tcc) {
    for (int tcr = 0; tcr < tc_rows; ++tcr) {
      const int tc = tcc * tc_rows + tcr;
      for (int q = 0; q < 4; ++q) {
        const int64_t bi = w.BitmapIndex(gt, tc, q);
        const uint64_t bitmap = w.bitmaps()[bi];
        if (bitmap == 0) {
          continue;
        }
        const int pc = std::popcount(bitmap);
        alignas(16) int8_t tile_codes[kBitmapTileDim * kBitmapTileDim +
                                      kSpmvStagePadCodes];
        uint64_t t_phase = 0;
        if constexpr (kTimed) {
          t_phase = rec->Now();
        }
        std::memcpy(tile_codes, codes + cursor, static_cast<size_t>(pc));
        cursor += static_cast<size_t>(pc);
        const float scale = scales[bi].ToFloat() * x_scale;
        if constexpr (kTimed) {
          rec->convert_ns += rec->Now() - t_phase;
          rec->tiles += 1;
          rec->nnz += static_cast<uint64_t>(pc);
          t_phase = rec->Now();
        }
        const int64_t bt_r = base_r + static_cast<int64_t>(tcr) * kTcTileDim +
                             (q % 2) * kBitmapTileDim;
        const int64_t bt_c = base_c + static_cast<int64_t>(tcc) * kTcTileDim +
                             (q / 2) * kBitmapTileDim;
        if (bt_r + kBitmapTileDim > m || bt_c + kBitmapTileDim > k) {
          EdgeSpmvTileInt8(bitmap, tile_codes, scale, bt_r, bt_c, m, k, xq,
                           out);
        } else {
          tile_fn(bitmap, pc, tile_codes, scale, bt_r, bt_c, xq, out);
        }
        if constexpr (kTimed) {
          rec->accumulate_ns += rec->Now() - t_phase;
        }
      }
    }
  }
}

// The AVX2 variant's per-GroupTile kernels, defined in cpu_spmv_avx2.cc
// (built with -mavx2 -mfma -mf16c when available; CHECK-failing stubs
// otherwise). Availability is exactly CpuSpmmVariantAvailable(kAvx2) — the
// SpMV unit shares the SpMM compile/runtime gate.
void ProcessGroupTileSpmvAvx2(const TcaBmeMatrix& w, int64_t gt, const float* xf,
                              float* out, SpmmPhaseRecorder* rec);
void ProcessGroupTileSpmvInt8Avx2(const TcaBmeQuantMatrix& w, int64_t gt,
                                  const int16_t* xq, float x_scale, float* out,
                                  SpmmPhaseRecorder* rec);

}  // namespace cpu_spmv_detail
}  // namespace spinfer
