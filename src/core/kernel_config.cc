#include "src/core/kernel_config.h"

#include <algorithm>

#include "src/format/sparse_util.h"
#include "src/util/check.h"

namespace spinfer {

int ChooseSplitK(int64_t m, int64_t k, const TcaBmeConfig& format, const DeviceSpec& dev) {
  SPINFER_CHECK(m > 0 && k > 0);
  const int64_t m_blocks = PadUp(m, format.gt_rows) / format.gt_rows;
  const int64_t k_tiles = PadUp(k, format.gt_cols) / format.gt_cols;
  int split = 1;
  // Double the split while the grid underfills the device and K still has
  // at least one GroupTile column per partition.
  while (m_blocks * split < 2 * dev.sm_count && split * 2 <= k_tiles && split < 16) {
    split *= 2;
  }
  return split;
}

}  // namespace spinfer
