// Unified SpMM kernel interface.
//
// Every kernel in the evaluation (SpInfer and the five baselines) implements
// this interface twice over:
//   * Run() — functional execution on the GPU simulator: real numerics
//     (verified against ReferenceGemm) plus hardware event counting;
//   * Estimate() — closed-form event counts + modeled GPU time from the
//     roofline cost model, usable at full LLM scale where functional
//     simulation would be too slow.
// Tests assert that Run() and Estimate() agree on event counts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/gpusim/cost_model.h"
#include "src/gpusim/device_spec.h"
#include "src/gpusim/perf_counters.h"
#include "src/numeric/matrix.h"

namespace spinfer {

// Shape + sparsity description of O(MxN) = W(MxK) * X(KxN).
struct SpmmProblem {
  int64_t m = 0;
  int64_t k = 0;
  int64_t n = 0;
  // Fraction of zero entries in W.
  double sparsity = 0.0;
  // Exact nonzero count if known (e.g. from an encoded matrix); -1 derives
  // round(m*k*(1-sparsity)).
  int64_t nnz = -1;

  int64_t Nnz() const;
  uint64_t DenseFlops() const;  // 2*M*K*N
};

struct KernelEstimate {
  TimeBreakdown time;
  PerfCounters counters;
};

class SpmmKernel {
 public:
  virtual ~SpmmKernel() = default;

  virtual std::string name() const = 0;

  // Functional execution. `counters`, if non-null, receives the simulated
  // hardware events.
  virtual FloatMatrix Run(const HalfMatrix& w, const HalfMatrix& x,
                          PerfCounters* counters) const = 0;

  // Analytical event counts + modeled time on `dev`.
  virtual KernelEstimate Estimate(const SpmmProblem& p, const DeviceSpec& dev) const = 0;
};

}  // namespace spinfer
