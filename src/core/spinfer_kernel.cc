#include "src/core/spinfer_kernel.h"

#include <algorithm>
#include <vector>

#include "src/core/smbd.h"
#include "src/format/sparse_util.h"
#include "src/format/tca_bme_quant.h"
#include "src/gpusim/shared_memory.h"
#include "src/gpusim/tensor_core.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace spinfer {
namespace {

// Bytes moved by one LDGSTS.128 warp instruction: 32 lanes x 16B.
constexpr uint64_t kLdgstsWarpBytes = 512;

// Scalar integer ops per BitmapTile of SMBD decode work: the warp-level
// counts charged in SmbdDecodeTcTile (2 popc + 8 alu) times 32 lanes.
constexpr uint64_t kDecodeOpsPerBitmapTile = (2 + 8) * 32;

uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

}  // namespace

SpInferSpmmKernel::SpInferSpmmKernel(SpInferKernelConfig config)
    : config_(std::move(config)) {}

std::string SpInferSpmmKernel::name() const {
  std::string n = "spinfer";
  if (config_.int8_values) {
    n += "-int8";
  }
  if (!config_.smbd) {
    n += "-nosmbd";
  }
  if (!config_.async_pipe) {
    n += "-nopipe";
  }
  return n;
}

FloatMatrix SpInferSpmmKernel::Run(const HalfMatrix& w, const HalfMatrix& x,
                                   PerfCounters* counters) const {
  const TcaBmeMatrix encoded = TcaBmeMatrix::Encode(w, config_.format);
  return RunEncoded(encoded, x, counters);
}

FloatMatrix SpInferSpmmKernel::RunEncoded(const TcaBmeMatrix& enc, const HalfMatrix& x,
                                          PerfCounters* counters) const {
  SPINFER_CHECK_EQ(enc.cols(), x.rows());
  const int64_t m = enc.rows();
  const int64_t k = enc.cols();
  const int64_t n = x.cols();
  const int64_t n8 = PadUp(std::max<int64_t>(n, 1), 8) / 8;  // mma n-tiles

  // Ragged-shape guard: the GroupTile grid is derived from the *padded*
  // dimensions, so a matrix whose M or K is not a GroupTile multiple still
  // covers every row/column (trailing tiles are zero-padded at encode time).
  // These invariants are what keeps that true; if an encoded matrix ever
  // violated them, whole row/column bands would silently drop out.
  const int64_t grid_r = enc.gt_grid_rows();
  const int64_t grid_c = enc.gt_grid_cols();
  SPINFER_CHECK_MSG(grid_r * config_.format.gt_rows >= m,
                    "GroupTile row grid does not cover M (ragged M mis-encoded)");
  SPINFER_CHECK_MSG(grid_c * config_.format.gt_cols >= k,
                    "GroupTile column grid does not cover K (ragged K mis-encoded)");
  const int tc_rows = enc.tc_rows_per_gt();
  const int tc_cols = enc.tc_cols_per_gt();
  const int split = config_.split_k > 0 ? config_.split_k : 1;
  SPINFER_CHECK_MSG(split <= grid_c, "split_k exceeds K GroupTile columns");
  const int64_t gts_per_split = CeilDiv(grid_c, split);

  FloatMatrix out(m, n);

  // Enabled check hoisted once per call; per-block instrumentation below
  // branches on this local, not the atomic.
  const bool tracing = obs::TracingEnabled();
  obs::TraceScope call_scope("sim.run_encoded");
  if (call_scope.active()) {
    call_scope.AddArg("m", m);
    call_scope.AddArg("k", k);
    call_scope.AddArg("n", n);
  }

  // The grid loop mirrors the CUDA launch: one task per (block_m, p)
  // thread-block tile, run on the global pool. Each task fills a private
  // accumulator block and a private PerfCounters; the epilogue below then
  // reduces both sequentially in (block_m, p) order, so the FP32 summation
  // order — and therefore every output bit and counter — is identical for
  // any thread count, including the original single-threaded loop.
  //
  // Accumulators live as plain row-major 16x8 float tiles (one per
  // (tcr, nt)), not per-lane MmaAccumulator fragments: the per-MMA
  // gather/scatter of the fragment API is a pure relayout, so keeping the
  // tile form throughout changes no arithmetic — only the epilogue's
  // indexing.
  constexpr int kTileElems = kTcTileDim * 8;  // one 16x8 accumulator tile
  const size_t acc_elems = static_cast<size_t>(tc_rows) * n8 * kTileElems;
  const int64_t num_blocks = grid_r * split;
  std::vector<std::vector<float>> partials(static_cast<size_t>(num_blocks));
  std::vector<PerfCounters> block_counters(static_cast<size_t>(num_blocks));

  ParallelFor(0, num_blocks, [&](int64_t task) {
    const int64_t block_m = task / split;
    const int p = static_cast<int>(task % split);
    const int64_t gc_begin = p * gts_per_split;
    const int64_t gc_end = std::min<int64_t>(grid_c, gc_begin + gts_per_split);
    if (gc_begin >= gc_end) {
      return;  // empty K partition (split does not divide grid_c)
    }
    PerfCounters local;
    std::vector<float> acc(acc_elems, 0.0f);
    std::vector<MmaBOperand> b_ops(static_cast<size_t>(n8));
    auto acc_tile = [&](int tcr, int64_t nt) {
      return reinterpret_cast<float(*)[8]>(
          &acc[(static_cast<size_t>(tcr) * n8 + nt) * kTileElems]);
    };

    // Pipeline-stage wall-clock, aggregated per block and emitted below as
    // synthetic child slices of the sim.block span (same scheme as the CPU
    // backend's phase recorder). Untouched when tracing is off.
    obs::Tracer& tracer = obs::Tracer::Global();
    uint64_t xload_ns = 0, decode_ns = 0, mma_ns = 0;
    const uint64_t block_start = tracing ? tracer.NowNs() : 0;
    uint64_t t_phase = 0;

    for (int64_t gc = gc_begin; gc < gc_end; ++gc) {
      const int64_t gt = block_m * grid_c + gc;

      // --- Step 1: GTile loading (LDGSTS global->shared). -----------------
      const uint64_t seg_halves = enc.gtile_offsets()[gt + 1] - enc.gtile_offsets()[gt];
      const uint64_t w_tile_bytes =
          2ull * seg_halves + 8ull * static_cast<uint64_t>(enc.tcs_per_gt()) * 4;
      local.dram_bytes_read += w_tile_bytes + 8;  // +2 offset words (LDG)
      local.smem_bytes_written += w_tile_bytes;
      local.ldgsts_instrs += CeilDiv(w_tile_bytes, kLdgstsWarpBytes);
      local.ldg_instrs += 1;

      // --- Step 3: XTile loading. ----------------------------------------
      const uint64_t x_tile_bytes =
          static_cast<uint64_t>(config_.format.gt_cols) * static_cast<uint64_t>(n) * 2;
      if (block_m == 0) {
        // Subsequent block rows re-read the XTile through L2; only the
        // first touch reaches DRAM (X is far smaller than L2 at decode-
        // phase N).
        local.dram_bytes_read += x_tile_bytes;
      }
      local.smem_bytes_written += x_tile_bytes;
      local.ldgsts_instrs += CeilDiv(x_tile_bytes, kLdgstsWarpBytes);

      // --- Steps 2/4/5: SMBD decode, X fragment loads, Tensor Core. ------
      size_t cursor = enc.gtile_offsets()[gt];
      for (int tcc = 0; tcc < tc_cols; ++tcc) {
        const int64_t k0 = gc * config_.format.gt_cols +
                           static_cast<int64_t>(tcc) * kTcTileDim;
        // X fragment loads for this 16-deep K slab: each of the tc_rows
        // warps LDSMs its B operands (one ldmatrix.x4 covers two n8 tiles).
        local.ldsm_instrs +=
            static_cast<uint64_t>(tc_rows) * CeilDiv(static_cast<uint64_t>(n8), 2);
        local.smem_bytes_read += static_cast<uint64_t>(tc_rows) *
                                 static_cast<uint64_t>(n8) * 8 * kTcTileDim * 2;

        // Build this 16-deep K slab's B operands once: they depend only on
        // (k0, nt), so all tc_rows warp rows reuse them. Each X element is
        // bounds-checked and converted exactly once per slab instead of once
        // per (tcr, mma) — the same values the per-MMA fragment gather
        // produced.
        if (tracing) {
          t_phase = tracer.NowNs();
        }
        for (int64_t nt = 0; nt < n8; ++nt) {
          MmaBOperand& bop = b_ops[static_cast<size_t>(nt)];
          for (int nn = 0; nn < 8; ++nn) {
            const int64_t nc = nt * 8 + nn;
            float* col = bop.bt[nn];
            for (int kk = 0; kk < kTcTileDim; ++kk) {
              const int64_t kr = k0 + kk;
              col[kk] = (kr < k && nc < n) ? x.at(kr, nc).ToFloat() : 0.0f;
            }
          }
        }
        if (tracing) {
          xload_ns += tracer.NowNs() - t_phase;
        }

        for (int tcr = 0; tcr < tc_rows; ++tcr) {
          // SMBD: quadrant bitmaps and value-run base pointers, advanced
          // online with PopCount (no stored offsets).
          const int tc = tcc * tc_rows + tcr;
          if (tracing) {
            t_phase = tracer.NowNs();
          }
          uint64_t bitmaps[4];
          const Half* quadrant_values[4];
          for (int q = 0; q < 4; ++q) {
            bitmaps[q] = enc.bitmaps()[enc.BitmapIndex(gt, tc, q)];
            quadrant_values[q] = enc.values().data() + cursor;
            cursor += static_cast<size_t>(PopCount64(bitmaps[q]));
          }
          MmaAFragment a_frag[kWarpSize];
          SmbdDecodeTcTile(bitmaps, quadrant_values, a_frag, &local);
          local.smem_bytes_read += 4 * 8;  // the four 64-bit bitmaps

          // Gather/convert the decoded A operand once; it is reused across
          // every n-tile below.
          MmaAOperand a_op;
          GatherMmaA(a_frag, &a_op);
          if (tracing) {
            const uint64_t t_mid = tracer.NowNs();
            decode_ns += t_mid - t_phase;
            t_phase = t_mid;
          }

          for (int64_t nt = 0; nt < n8; ++nt) {
            MmaM16N8K16Tile(a_op, b_ops[static_cast<size_t>(nt)],
                            acc_tile(tcr, nt));
            local.mma_instrs += 1;
            local.flops += 2ull * 16 * 16 * 8;
          }
          if (tracing) {
            mma_ns += tracer.NowNs() - t_phase;
          }
        }
      }
      // Consistency: the cursor must land within this GroupTile's padded
      // segment.
      SPINFER_CHECK(cursor <= enc.gtile_offsets()[gt + 1]);
    }

    if (tracing) {
      // Block span tagged with its PerfCounters deltas (the per-block
      // `local` totals), then the aggregated pipeline stages as back-to-back
      // child slices.
      const uint64_t block_end = tracer.NowNs();
      obs::TraceArg args[5] = {
          {"block_m", block_m},
          {"split_p", p},
          {"mma_instrs", static_cast<int64_t>(local.mma_instrs)},
          {"ldgsts_instrs", static_cast<int64_t>(local.ldgsts_instrs)},
          {"dram_bytes_read", static_cast<int64_t>(local.dram_bytes_read)}};
      tracer.Record("sim.block", block_start, block_end - block_start, args, 5);
      uint64_t slice = block_start;
      tracer.Record("sim.xload", slice, xload_ns);
      slice += xload_ns;
      tracer.Record("sim.decode", slice, decode_ns);
      slice += decode_ns;
      tracer.Record("sim.mma", slice, mma_ns);
    }
    block_counters[task] = local;
    partials[task] = std::move(acc);
  });

  // Epilogue: apply every block's partials in (block_m, p) order — the same
  // FP32 summation order the CUDA split-K reduction workspace would produce,
  // and the order the sequential grid loop used before parallelization.
  SPINFER_TRACE_SCOPE("sim.epilogue");
  PerfCounters local;
  local.registers_per_thread = config_.smbd ? 104 : 178;
  for (int64_t task = 0; task < num_blocks; ++task) {
    local += block_counters[task];
    const std::vector<float>& acc = partials[task];
    if (acc.empty()) {
      continue;  // empty K partition produced no work
    }
    const int64_t block_m = task / split;
    for (int tcr = 0; tcr < tc_rows; ++tcr) {
      for (int64_t nt = 0; nt < n8; ++nt) {
        const float* tile = &acc[(static_cast<size_t>(tcr) * n8 + nt) * kTileElems];
        for (int r = 0; r < kTcTileDim; ++r) {
          const int64_t rr = block_m * config_.format.gt_rows +
                             static_cast<int64_t>(tcr) * kTcTileDim + r;
          if (rr >= m) {
            break;
          }
          for (int c = 0; c < 8; ++c) {
            const int64_t cc = nt * 8 + c;
            if (cc < n) {
              out.at(rr, cc) += tile[r * 8 + c];
            }
          }
        }
      }
    }
  }

  // Output traffic: with split-K, each partition writes FP32 partials that a
  // reduction pass re-reads; the final result is stored in FP16.
  const uint64_t out_elems = static_cast<uint64_t>(m) * static_cast<uint64_t>(n);
  if (split > 1) {
    local.dram_bytes_written += out_elems * 4 * static_cast<uint64_t>(split);
    local.dram_bytes_read += out_elems * 4 * static_cast<uint64_t>(split);
    local.dram_bytes_written += out_elems * 2;
  } else {
    local.dram_bytes_written += out_elems * 2;
  }

  if (counters != nullptr) {
    *counters += local;
  }
  return out;
}

KernelTraits SpInferSpmmKernel::Traits() const {
  KernelTraits t;
  t.name = name();
  // Calibrated against the paper: Table 1 reports 91.5% peak bandwidth and
  // ~19% TC pipe utilization for the full kernel at decode-phase N; Fig. 16
  // shows SpInfer trailing cuBLAS by up to ~12% when compute-bound.
  t.bw_eff = 0.915;
  t.tc_eff_max = 0.78;
  // tc_n_sat = 57 reproduces both ends of the paper's data: at N=16 the
  // issue/ILP-starved mma pipe sustains ~19% of peak (Table 1's TC pipe
  // utilization), flattening the speedup curve to ~1.9x at 70% sparsity
  // (Fig. 10); at prefill N the efficiency saturates near tc_eff_max so the
  // Fig. 16 gap vs cuBLAS stays ~10%.
  t.tc_n_sat = 57.0;
  t.uses_tensor_core = true;
  t.decode_serial_fraction = config_.async_pipe ? 0.05 : 0.25;
  t.fixed_us = 5.0;
  if (!config_.smbd) {
    // No-SMBD variant: sparse values staged through the register file and
    // expanded via shared memory (Table 1 row 2) — more decode work, a
    // larger serial share, and lower sustained bandwidth from the added
    // round trip. Calibrated to Table 1's +10% duration.
    t.bw_eff = 0.88;
    t.decode_serial_fraction = 0.35;
  }
  return t;
}

KernelResources SpInferSpmmKernel::Resources(double sparsity, int64_t n) const {
  const TcaBmeConfig& f = config_.format;
  KernelResources res;
  res.registers_per_thread = config_.smbd ? 104 : 178;
  res.threads_per_block = 32u * static_cast<uint32_t>(f.gt_rows / kTcTileDim);
  // Double-buffered shared tiles: expected nonzero payload with a 15%
  // headroom margin (the buffer must be provisioned before the tile's exact
  // count is known), the bitmaps, and the XTile (n capped at the kernel's
  // per-block column tile).
  const double gt_elems = static_cast<double>(f.gt_rows) * f.gt_cols;
  const uint32_t w_tile =
      static_cast<uint32_t>(gt_elems * (1.0 - sparsity) * 2.0 * 1.15) +
      static_cast<uint32_t>(gt_elems / 64.0 * 8.0);
  const uint32_t x_tile =
      static_cast<uint32_t>(f.gt_cols) * static_cast<uint32_t>(std::min<int64_t>(n, 64)) * 2;
  res.smem_bytes_per_block = 2 * (w_tile + x_tile);
  return res;
}

KernelEstimate SpInferSpmmKernel::Estimate(const SpmmProblem& p,
                                           const DeviceSpec& dev) const {
  const TcaBmeConfig& f = config_.format;
  const int64_t pm = PadUp(p.m, f.gt_rows);
  const int64_t pk = PadUp(p.k, f.gt_cols);
  const int64_t grid_r = pm / f.gt_rows;
  const int64_t grid_c = pk / f.gt_cols;
  const int64_t ngt = grid_r * grid_c;
  const int64_t nbt = (pm / kBitmapTileDim) * (pk / kBitmapTileDim);
  const int64_t nnz = p.Nnz();
  const int64_t n8 = PadUp(std::max<int64_t>(p.n, 1), 8) / 8;
  const int split = config_.split_k > 0 ? config_.split_k
                                        : ChooseSplitK(p.m, p.k, f, dev);

  KernelEstimate est;
  PerfCounters& c = est.counters;
  c.registers_per_thread = config_.smbd ? 104 : 178;

  // Weight traffic: Eq. 9 storage plus the expected alignment padding
  // ((align-1)/2 FP16 elements per GroupTile on average) and the two offset
  // words each block reads. The INT8 variant swaps the payload term.
  const uint64_t w_bytes =
      (config_.int8_values ? TcaBmeQuantStorageModel(p.m, p.k, nnz, f)
                           : TcaBmeStorageModel(p.m, p.k, nnz, f)) +
      static_cast<uint64_t>(ngt) * static_cast<uint64_t>(f.value_align_halves - 1);
  const uint64_t x_bytes = static_cast<uint64_t>(p.k) * static_cast<uint64_t>(p.n) * 2;
  c.dram_bytes_read = w_bytes + x_bytes + static_cast<uint64_t>(ngt) * 8;

  const uint64_t out_elems = static_cast<uint64_t>(p.m) * static_cast<uint64_t>(p.n);
  c.dram_bytes_written = out_elems * 2;
  if (split > 1) {
    c.dram_bytes_written += out_elems * 4 * static_cast<uint64_t>(split);
    c.dram_bytes_read += out_elems * 4 * static_cast<uint64_t>(split);
  }

  // Instruction mix.
  const uint64_t w_tile_bytes_total = 2ull * nnz + 8ull * nbt;
  c.ldgsts_instrs = CeilDiv(w_tile_bytes_total, kLdgstsWarpBytes) +
                    grid_r * grid_c *
                        CeilDiv(static_cast<uint64_t>(f.gt_cols) *
                                    static_cast<uint64_t>(p.n) * 2,
                                kLdgstsWarpBytes);
  c.ldg_instrs = static_cast<uint64_t>(ngt);
  const int64_t tc_rows = f.gt_rows / kTcTileDim;
  const int64_t tc_cols = f.gt_cols / kTcTileDim;
  c.ldsm_instrs = static_cast<uint64_t>(ngt) * tc_cols * tc_rows *
                  CeilDiv(static_cast<uint64_t>(n8), 2);
  c.mma_instrs = static_cast<uint64_t>(ngt) * tc_rows * tc_cols *
                 static_cast<uint64_t>(n8);
  c.flops = c.mma_instrs * 4096ull;
  c.popc_ops = static_cast<uint64_t>(nbt) * 2;
  c.alu_ops = static_cast<uint64_t>(nbt) * 8;
  c.lds_instrs = static_cast<uint64_t>(nbt) * 2;
  c.smem_bytes_written = w_tile_bytes_total +
                         static_cast<uint64_t>(ngt) *
                             static_cast<uint64_t>(f.gt_cols) *
                             static_cast<uint64_t>(p.n) * 2;

  KernelWork work;
  work.dram_bytes_read = c.dram_bytes_read;
  work.dram_bytes_written = c.dram_bytes_written;
  work.flops = c.flops;
  uint64_t decode_ops = static_cast<uint64_t>(nbt) * kDecodeOpsPerBitmapTile;
  if (!config_.smbd) {
    decode_ops *= 2;  // register staging + smem expansion + re-load
  }
  if (config_.int8_values) {
    decode_ops += decode_ops / 5;  // fused dequantization (scale multiply)
  }
  work.decode_ops = decode_ops;
  work.n = p.n;

  // Occupancy and wave effects: the memory pipeline only saturates with
  // enough resident warps per SM and enough blocks to fill the device.
  KernelTraits traits = Traits();
  const OccupancyResult occ = ComputeOccupancy(Resources(p.sparsity, p.n), dev);
  if (occ.blocks_per_sm == 0) {
    // A single block exceeds an SM's resources: the configuration cannot
    // launch. Report an effectively infinite time so tuners reject it.
    est.time.total_us = 1e18;
    return est;
  }
  // With cp.async in flight, ~8 resident warps per SM saturate the DRAM
  // pipe; below that, bandwidth degrades proportionally.
  double bw_scale = std::min(1.0, occ.warps_per_sm / 8.0);
  const double grid_blocks = static_cast<double>(grid_r) * split;
  bw_scale *= std::min(1.0, grid_blocks / (2.0 * dev.sm_count));
  traits.bw_eff *= bw_scale;

  est.time = EstimateKernelTime(traits, work, dev);
  return est;
}

}  // namespace spinfer
