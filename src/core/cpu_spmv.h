// Bitmap-direct CPU SpMV: the batch-1 decode fast path.
//
// At N == 1 the N-blocked CpuSpmm register tiling degenerates — every
// "register tile" holds a single useful lane, and the RowTerm staging that
// amortizes across output columns amortizes across nothing. Single-stream
// decode (TinyTransformer::DecodeStep, ServingEngine at batch 1) lives in
// exactly that regime, which is the low-sparsity SpMV problem MACKO and the
// block-extraction SpMV line of work target (PAPERS.md). This kernel family
// walks each GroupTile's compressed Values run once, skips empty BitmapTiles
// via the 64-bit masks, and keeps one scalar accumulator per output row; the
// AVX2 unit vectorizes *across the 8 rows of a BitmapTile* (expand the
// row-major Values run with a permutation LUT, transpose 8x8, sweep columns
// with a blend-masked mul/add), which preserves each row's scalar
// accumulation chain exactly.
//
// Contracts, matching CpuSpmm v2:
//   * Bit-identity with CpuSpmm at N = 1: same products, same per-element
//     order (ascending column within each GroupTile row sweep), separate
//     mul/add roundings (-ffp-contract=off, no FMA). The public CpuSpmm*
//     entry points route N == 1 calls here, and the batched-vs-single
//     differential tests depend on the outputs matching bitwise.
//   * Determinism: output bits do not depend on thread count (GroupTile grid
//     rows own disjoint output rows) or on which SIMD variant ran.
//   * Allocation-free when warm: all scratch lives in SpmmWorkspace, grown
//     monotonically.
//
// The INT8 entry points run over TcaBmeQuantMatrix weights with activations
// quantized per call (symmetric absmax over the vector, codes in [-127,127]
// held as int16 for widening multiply-adds). Per BitmapTile row the integer
// dot is exact in int32 and folded into the output with a single
// mul-then-add of scale * float(idot) — see cpu_spmv_inner.h for the
// accumulation-order contract.
#pragma once

#include "src/core/cpu_backend.h"
#include "src/format/tca_bme.h"
#include "src/format/tca_bme_quant.h"
#include "src/numeric/matrix.h"

namespace spinfer {

// out = W * x for a single-column x (x.cols() == 1), reshaping `out` to
// (w.rows(), 1). Bit-identical to CpuSpmmInto on the same inputs.
void CpuSpmvInto(const TcaBmeMatrix& w, const HalfMatrix& x, SpmmWorkspace* ws,
                 FloatMatrix* out);

// out += W * x (out must already have shape (w.rows(), 1)).
void CpuSpmvAccumulateInto(const TcaBmeMatrix& w, const HalfMatrix& x,
                           SpmmWorkspace* ws, FloatMatrix* out);

// FP32-activation forms: elements are rounded to FP16 while the panel is
// built, bit-identical to CpuSpmmQuant* at N = 1 (and to converting x to a
// HalfMatrix first).
void CpuSpmvQuantInto(const TcaBmeMatrix& w, const FloatMatrix& x,
                      SpmmWorkspace* ws, FloatMatrix* out);
void CpuSpmvQuantAccumulateInto(const TcaBmeMatrix& w, const FloatMatrix& x,
                                SpmmWorkspace* ws, FloatMatrix* out);

// INT8 weights x symmetric-absmax-quantized activations. Not bit-comparable
// to the FP16 paths (different numerics by design); bit-identical across
// SIMD variants and thread counts like everything else in this family.
void CpuSpmvInt8Into(const TcaBmeQuantMatrix& w, const FloatMatrix& x,
                     SpmmWorkspace* ws, FloatMatrix* out);
void CpuSpmvInt8AccumulateInto(const TcaBmeQuantMatrix& w, const FloatMatrix& x,
                               SpmmWorkspace* ws, FloatMatrix* out);

// Variant-pinned entries for the bit-identity tests and benches; CHECK-fail
// if `v` is unavailable (same gate as CpuSpmmVariantAvailable — the SpMV
// AVX2 unit shares the SpMM compile/runtime requirements).
void CpuSpmvAccumulateIntoVariant(const TcaBmeMatrix& w, const HalfMatrix& x,
                                  SpmmWorkspace* ws, FloatMatrix* out,
                                  CpuSpmmVariant v);
void CpuSpmvInt8AccumulateIntoVariant(const TcaBmeQuantMatrix& w,
                                      const FloatMatrix& x, SpmmWorkspace* ws,
                                      FloatMatrix* out, CpuSpmmVariant v);

}  // namespace spinfer
