// SparseLinear: the layer-level public API.
//
// What a framework integration (the paper wires SpInfer into
// FasterTransformer) actually holds per linear layer: the TCA-BME-encoded
// weight, an optional FP32 bias, and the tuned kernel configuration. Built
// once offline from a dense/pruned matrix or loaded from a checkpoint;
// Forward() then serves matmuls without ever materializing dense weights.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/cpu_backend.h"
#include "src/core/kernel_config.h"
#include "src/core/spmm.h"
#include "src/format/tca_bme.h"

namespace spinfer {

class SparseLinear {
 public:
  // Encodes `weight` (typically already pruned). If `tune` is set, the
  // GroupTile geometry is autotuned for `expected_n` on `dev` before
  // encoding; otherwise the default geometry is used.
  struct Options {
    bool tune = false;
    int64_t expected_n = 16;
    DeviceSpec device = Rtx4090();
  };
  static SparseLinear FromDense(const HalfMatrix& weight, const Options& options);
  static SparseLinear FromDense(const HalfMatrix& weight);  // default options

  // Wraps an already-encoded matrix (e.g. from WeightBundle::Find).
  explicit SparseLinear(TcaBmeMatrix weight);

  // Sets a per-output-row bias added to every output column.
  void SetBias(std::vector<float> bias);

  // y = W x (+ bias). Runs the bitmap-direct CPU backend. Scratch comes from
  // the layer's own workspace, so repeat calls at seen shapes allocate only
  // the returned matrix; serving loops should prefer ForwardInto.
  FloatMatrix Forward(const HalfMatrix& x) const;

  // Allocation-free serving form: reshapes `out` to (out_features, x.cols()),
  // fills it with the bias (or zero), and accumulates W x. After `out` and
  // the layer workspace have seen the call's shapes once, repeat calls
  // perform zero heap allocations.
  void ForwardInto(const HalfMatrix& x, FloatMatrix* out) const;

  // Quantize-and-forward serving form: `x` holds FP32 activations that are
  // rounded to FP16 while the SpMM panel is built — bit-identical to
  // converting `x` into a HalfMatrix and calling ForwardInto, without the
  // intermediate FP16 staging matrix. Same zero-allocation contract.
  void ForwardQuantInto(const FloatMatrix& x, FloatMatrix* out) const;

  int64_t in_features() const { return weight_.cols(); }
  int64_t out_features() const { return weight_.rows(); }
  double sparsity() const {
    return 1.0 - static_cast<double>(weight_.nnz()) /
                     static_cast<double>(weight_.rows() * weight_.cols());
  }
  uint64_t StorageBytes() const;
  const TcaBmeMatrix& weight() const { return weight_; }

  // Modeled GPU time for a batch of `n` tokens.
  double EstimateGpuTimeUs(int64_t n, const DeviceSpec& dev) const;

 private:
  // Reshapes `out` to (out_features, n) and fills it with the bias (or zero).
  void FillBias(int64_t n, FloatMatrix* out) const;

  TcaBmeMatrix weight_;
  std::optional<std::vector<float>> bias_;
  // Per-layer SpMM scratch, grown monotonically by ForwardInto. `mutable`
  // because a matmul is logically const; this also means a single
  // SparseLinear must not serve concurrent Forward calls (matching the
  // SpmmWorkspace contract).
  mutable SpmmWorkspace workspace_;
};

}  // namespace spinfer
