// SpInfer-SpMM kernel configuration and launch heuristics.
#pragma once

#include <cstdint>

#include "src/format/tca_bme.h"
#include "src/gpusim/device_spec.h"

namespace spinfer {

struct SpInferKernelConfig {
  // Thread-block tile = one GroupTile of the TCA-BME format.
  TcaBmeConfig format;

  // Number of K-dimension partitions (CUTLASS-style split-K, §4.3.1). Each
  // partition writes FP32 partial sums to a reduction workspace that a
  // lightweight epilogue sums. 0 = choose automatically per shape/device
  // (ChooseSplitK); the functional simulator treats 0 as 1.
  int split_k = 0;

  // INT8 value payload (the TcaBmeQuantMatrix composition): halves the
  // dominant Values traffic at the cost of a dequantization step fused into
  // SMBD. Only the cost model consumes this — functional INT8 execution
  // lives in TcaBmeQuantMatrix/CpuSpmm paths.
  bool int8_values = false;

  // Ablation switches (paper Table 1).
  // smbd=false models the no-SMBD variant: sparse data is staged through the
  // register file and expanded into shared memory (Flash-LLM-style), adding
  // register pressure and smem round trips.
  bool smbd = true;
  // async_pipe=false serializes tile loading, decoding and Tensor Core
  // computation instead of overlapping them with double buffering.
  bool async_pipe = true;
};

// Picks split_k so that (M/GT_rows) * split_k thread blocks give every SM
// work, without slicing K below one GroupTile column.
int ChooseSplitK(int64_t m, int64_t k, const TcaBmeConfig& format, const DeviceSpec& dev);

}  // namespace spinfer
