#include "src/core/sparse_linear.h"

#include "src/core/autotuner.h"
#include "src/core/cpu_backend.h"
#include "src/core/spinfer_kernel.h"
#include "src/util/check.h"

namespace spinfer {

SparseLinear SparseLinear::FromDense(const HalfMatrix& weight, const Options& options) {
  TcaBmeConfig format;
  if (options.tune) {
    SpmmProblem p;
    p.m = weight.rows();
    p.k = weight.cols();
    p.n = options.expected_n;
    p.sparsity = weight.Sparsity();
    format = AutotuneSpInfer(p, options.device).config.format;
  }
  return SparseLinear(TcaBmeMatrix::Encode(weight, format));
}

SparseLinear SparseLinear::FromDense(const HalfMatrix& weight) {
  return FromDense(weight, Options{});
}

SparseLinear::SparseLinear(TcaBmeMatrix weight) : weight_(std::move(weight)) {}

void SparseLinear::SetBias(std::vector<float> bias) {
  SPINFER_CHECK_EQ(static_cast<int64_t>(bias.size()), weight_.rows());
  bias_ = std::move(bias);
}

FloatMatrix SparseLinear::Forward(const HalfMatrix& x) const {
  FloatMatrix out;
  ForwardInto(x, &out);
  return out;
}

void SparseLinear::ForwardInto(const HalfMatrix& x, FloatMatrix* out) const {
  SPINFER_CHECK_EQ(x.rows(), weight_.cols());
  FillBias(x.cols(), out);
  CpuSpmmAccumulateInto(weight_, x, &workspace_, out);
}

void SparseLinear::ForwardQuantInto(const FloatMatrix& x, FloatMatrix* out) const {
  SPINFER_CHECK_EQ(x.rows(), weight_.cols());
  FillBias(x.cols(), out);
  CpuSpmmQuantAccumulateInto(weight_, x, &workspace_, out);
}

void SparseLinear::FillBias(int64_t n, FloatMatrix* out) const {
  out->Reshape(weight_.rows(), n);
  if (!bias_.has_value()) {
    out->Fill(0.0f);
    return;
  }
  float* data = out->data();
  for (int64_t r = 0; r < out->rows(); ++r) {
    const float b = (*bias_)[r];
    for (int64_t c = 0; c < n; ++c) {
      data[r * n + c] = b;
    }
  }
}

uint64_t SparseLinear::StorageBytes() const {
  uint64_t bytes = weight_.StorageBytes();
  if (bias_.has_value()) {
    bytes += 4ull * bias_->size();
  }
  return bytes;
}

double SparseLinear::EstimateGpuTimeUs(int64_t n, const DeviceSpec& dev) const {
  SpInferKernelConfig cfg;
  cfg.format = weight_.config();
  SpmmProblem p;
  p.m = weight_.rows();
  p.k = weight_.cols();
  p.n = n;
  p.nnz = weight_.nnz();
  p.sparsity = sparsity();
  return SpInferSpmmKernel(cfg).Estimate(p, dev).time.total_us;
}

}  // namespace spinfer
