#include "src/core/autotuner.h"

#include <algorithm>

#include "src/util/check.h"

namespace spinfer {

AutotuneResult AutotuneSpInfer(const SpmmProblem& problem, const DeviceSpec& dev) {
  SPINFER_CHECK(problem.m > 0 && problem.k > 0 && problem.n > 0);
  AutotuneResult result;
  for (int gt_rows : {16, 32, 64, 128}) {
    for (int gt_cols : {16, 32, 64, 128}) {
      SpInferKernelConfig cfg;
      cfg.format.gt_rows = gt_rows;
      cfg.format.gt_cols = gt_cols;
      cfg.split_k = 0;  // auto per shape
      const SpInferSpmmKernel kernel(cfg);
      const KernelEstimate est = kernel.Estimate(problem, dev);
      result.candidates.push_back({cfg, est.time.total_us});
    }
  }
  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const AutotuneCandidate& a, const AutotuneCandidate& b) {
              return a.modeled_us < b.modeled_us;
            });
  result.config = result.candidates.front().config;
  result.time =
      SpInferSpmmKernel(result.config).Estimate(problem, dev).time;
  return result;
}

}  // namespace spinfer
