// Shared Memory Bitmap Decoding (paper §4.3.3, Fig. 8, Alg. 2).
//
// SMBD turns the compressed (bitmap, values) representation of a 16×16
// TCTile into the per-lane register fragments the mma.m16n8k16 instruction
// expects, without any stored offsets:
//
//   Phase I  (a0): lane i tests bit 2i of the quadrant's 64-bit bitmap. If
//     set, MaskedPopCount(bitmap, i) = popcount of the bits below 2i gives
//     the lane's offset into the quadrant's compressed Values segment; the
//     value is loaded from shared memory. Otherwise a0 = 0.
//   Phase II (a1): lane i tests bit 2i+1 and reuses Phase I's offset —
//     incremented by one if a0 was nonzero — avoiding a second popcount.
//
// The quadrant base offsets themselves are accumulated online with one full
// PopCount per BitmapTile, so the format stores no per-tile offsets either.
#pragma once

#include <cstdint>

#include "src/gpusim/perf_counters.h"
#include "src/gpusim/tensor_core.h"
#include "src/numeric/fp16.h"

namespace spinfer {

// Decodes one 16×16 TCTile into a warp's A fragments.
//
// `bitmaps[q]` is the quadrant's BitmapTile (q in column-major TL,BL,TR,BR
// order = registers Ra0..Ra3); `quadrant_values[q]` points at the start of
// quadrant q's compressed value run (within the shared-memory WTile).
// `frag[lane]` receives all four registers. `counters`, if non-null, is
// charged the PopCount/ALU/LDS work of the decode.
void SmbdDecodeTcTile(const uint64_t bitmaps[4], const Half* const quadrant_values[4],
                      MmaAFragment frag[kWarpSize], PerfCounters* counters);

// Decodes a single quadrant for one lane (the primitive the warp-level
// routine and the unit tests share). Returns the two halves destined for
// register `Ra_q` of `lane` and, via `loads`, how many shared-memory value
// loads the lane issued (0..2).
void SmbdDecodeLane(uint64_t bitmap, int lane, const Half* values, Half out[2],
                    int* loads);

}  // namespace spinfer
