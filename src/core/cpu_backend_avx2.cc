// AVX2 unit of the v2 CPU backend. This is the only translation unit built
// with -mavx2 -mfma (when the compiler supports those flags), and its kernels
// run only after runtime feature detection — the rest of the binary stays
// executable on baseline x86-64 and non-x86 hosts.
//
// Bit-identity contract: the row update uses explicit mul-then-add
// (_mm256_mul_ps + _mm256_add_ps, never _mm256_fmadd_ps) and the TU is built
// with -ffp-contract=off so the compiler cannot re-fuse them. Each output
// element therefore sees exactly the same rounding sequence as the portable
// loop, making the two variants bit-identical on any input.
#include "src/core/cpu_backend_inner.h"
#include "src/util/check.h"

#if defined(__AVX2__) && defined(__FMA__) && defined(__F16C__)
#include <immintrin.h>
#define SPINFER_CPU_BACKEND_AVX2 1
#endif

namespace spinfer {
namespace cpu_backend_detail {

bool CpuSpmmAvx2Compiled() {
#if defined(SPINFER_CPU_BACKEND_AVX2)
  return true;
#else
  return false;
#endif
}

#if defined(SPINFER_CPU_BACKEND_AVX2)

namespace {

struct Avx2RowFma {
  void Row8(float* orow, uint64_t rowmask, const float* vals,
            const float* xcol0, int64_t n) const {
    __m256 a = _mm256_loadu_ps(orow);
    int t = 0;
    while (rowmask != 0) {
      const int cc = std::countr_zero(rowmask);
      rowmask &= rowmask - 1;
      const __m256 v = _mm256_set1_ps(vals[t++]);
      a = _mm256_add_ps(a, _mm256_mul_ps(v, _mm256_loadu_ps(xcol0 + cc * n)));
    }
    _mm256_storeu_ps(orow, a);
  }

  void operator()(float* orow, const RowTerm* terms, int count, int64_t nb) const {
    int64_t j = 0;
    // Widest register tile first: 64 output columns in eight of the sixteen
    // ymm registers, amortizing the per-term broadcast over 8 vector FMAs.
    // Every tier processes each output element as the same t-ascending
    // mul-then-add chain, so tier choice never changes result bits.
    for (; j + 64 <= nb; j += 64) {
      __m256 a0 = _mm256_loadu_ps(orow + j);
      __m256 a1 = _mm256_loadu_ps(orow + j + 8);
      __m256 a2 = _mm256_loadu_ps(orow + j + 16);
      __m256 a3 = _mm256_loadu_ps(orow + j + 24);
      __m256 a4 = _mm256_loadu_ps(orow + j + 32);
      __m256 a5 = _mm256_loadu_ps(orow + j + 40);
      __m256 a6 = _mm256_loadu_ps(orow + j + 48);
      __m256 a7 = _mm256_loadu_ps(orow + j + 56);
      for (int t = 0; t < count; ++t) {
        const __m256 v = _mm256_set1_ps(terms[t].v);
        const float* xr = terms[t].xrow + j;
        a0 = _mm256_add_ps(a0, _mm256_mul_ps(v, _mm256_loadu_ps(xr)));
        a1 = _mm256_add_ps(a1, _mm256_mul_ps(v, _mm256_loadu_ps(xr + 8)));
        a2 = _mm256_add_ps(a2, _mm256_mul_ps(v, _mm256_loadu_ps(xr + 16)));
        a3 = _mm256_add_ps(a3, _mm256_mul_ps(v, _mm256_loadu_ps(xr + 24)));
        a4 = _mm256_add_ps(a4, _mm256_mul_ps(v, _mm256_loadu_ps(xr + 32)));
        a5 = _mm256_add_ps(a5, _mm256_mul_ps(v, _mm256_loadu_ps(xr + 40)));
        a6 = _mm256_add_ps(a6, _mm256_mul_ps(v, _mm256_loadu_ps(xr + 48)));
        a7 = _mm256_add_ps(a7, _mm256_mul_ps(v, _mm256_loadu_ps(xr + 56)));
      }
      _mm256_storeu_ps(orow + j, a0);
      _mm256_storeu_ps(orow + j + 8, a1);
      _mm256_storeu_ps(orow + j + 16, a2);
      _mm256_storeu_ps(orow + j + 24, a3);
      _mm256_storeu_ps(orow + j + 32, a4);
      _mm256_storeu_ps(orow + j + 40, a5);
      _mm256_storeu_ps(orow + j + 48, a6);
      _mm256_storeu_ps(orow + j + 56, a7);
    }
    for (; j + 32 <= nb; j += 32) {
      __m256 a0 = _mm256_loadu_ps(orow + j);
      __m256 a1 = _mm256_loadu_ps(orow + j + 8);
      __m256 a2 = _mm256_loadu_ps(orow + j + 16);
      __m256 a3 = _mm256_loadu_ps(orow + j + 24);
      for (int t = 0; t < count; ++t) {
        const __m256 v = _mm256_set1_ps(terms[t].v);
        const float* xr = terms[t].xrow + j;
        a0 = _mm256_add_ps(a0, _mm256_mul_ps(v, _mm256_loadu_ps(xr)));
        a1 = _mm256_add_ps(a1, _mm256_mul_ps(v, _mm256_loadu_ps(xr + 8)));
        a2 = _mm256_add_ps(a2, _mm256_mul_ps(v, _mm256_loadu_ps(xr + 16)));
        a3 = _mm256_add_ps(a3, _mm256_mul_ps(v, _mm256_loadu_ps(xr + 24)));
      }
      _mm256_storeu_ps(orow + j, a0);
      _mm256_storeu_ps(orow + j + 8, a1);
      _mm256_storeu_ps(orow + j + 16, a2);
      _mm256_storeu_ps(orow + j + 24, a3);
    }
    for (; j + 8 <= nb; j += 8) {
      __m256 a = _mm256_loadu_ps(orow + j);
      for (int t = 0; t < count; ++t) {
        const __m256 v = _mm256_set1_ps(terms[t].v);
        a = _mm256_add_ps(a, _mm256_mul_ps(v, _mm256_loadu_ps(terms[t].xrow + j)));
      }
      _mm256_storeu_ps(orow + j, a);
    }
    for (; j + 4 <= nb; j += 4) {
      __m128 a = _mm_loadu_ps(orow + j);
      for (int t = 0; t < count; ++t) {
        const __m128 v = _mm_set1_ps(terms[t].v);
        a = _mm_add_ps(a, _mm_mul_ps(v, _mm_loadu_ps(terms[t].xrow + j)));
      }
      _mm_storeu_ps(orow + j, a);
    }
    for (; j < nb; ++j) {
      float acc = orow[j];
      for (int t = 0; t < count; ++t) {
        acc += terms[t].v * terms[t].xrow[j];
      }
      orow[j] = acc;
    }
  }
};

struct Avx2Convert {
  void operator()(const Half* src, float* dst, size_t count) const {
    ConvertHalfToFloatAvx2(src, dst, count);
  }
};

}  // namespace

void ProcessGroupTileAvx2(const TcaBmeMatrix& w, int64_t gt, const float* xf,
                          int64_t n, int64_t j0, int64_t nb, float* out,
                          SpmmPhaseRecorder* rec) {
  if (rec != nullptr) {
    ProcessGroupTile<true>(w, gt, xf, n, j0, nb, out, Avx2RowFma{},
                           Avx2Convert{}, rec);
  } else {
    ProcessGroupTile<false>(w, gt, xf, n, j0, nb, out, Avx2RowFma{},
                            Avx2Convert{});
  }
}

void ConvertHalfToFloatAvx2(const Half* src, float* dst, size_t count) {
  static_assert(sizeof(Half) == 2, "F16C conversion assumes 2-byte Half");
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  for (; i < count; ++i) {
    dst[i] = src[i].ToFloat();  // LUT tail: exact, identical to the vector lanes
  }
}

#else  // !SPINFER_CPU_BACKEND_AVX2

void ProcessGroupTileAvx2(const TcaBmeMatrix& w, int64_t gt, const float* xf,
                          int64_t n, int64_t j0, int64_t nb, float* out,
                          SpmmPhaseRecorder* rec) {
  (void)w;
  (void)gt;
  (void)xf;
  (void)n;
  (void)j0;
  (void)nb;
  (void)out;
  (void)rec;
  SPINFER_CHECK_MSG(false, "AVX2 CPU SpMM kernel was not compiled into this binary");
}

void ConvertHalfToFloatAvx2(const Half* src, float* dst, size_t count) {
  (void)src;
  (void)dst;
  (void)count;
  SPINFER_CHECK_MSG(false, "AVX2 CPU SpMM kernel was not compiled into this binary");
}

#endif

}  // namespace cpu_backend_detail
}  // namespace spinfer
