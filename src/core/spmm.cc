#include "src/core/spmm.h"

#include <cmath>

#include "src/util/check.h"

namespace spinfer {

int64_t SpmmProblem::Nnz() const {
  if (nnz >= 0) {
    return nnz;
  }
  SPINFER_CHECK(sparsity >= 0.0 && sparsity <= 1.0);
  return static_cast<int64_t>(
      std::llround(static_cast<double>(m) * static_cast<double>(k) * (1.0 - sparsity)));
}

uint64_t SpmmProblem::DenseFlops() const {
  return 2ull * static_cast<uint64_t>(m) * static_cast<uint64_t>(k) *
         static_cast<uint64_t>(n);
}

}  // namespace spinfer
