// Internal: the GroupTile traversal shared by every CPU SpMM SIMD variant.
//
// Each variant (portable auto-vectorized, AVX2) supplies only the innermost
// row update and the half->float batch conversion; the bitmap walk,
// Values-cursor arithmetic, and ragged-edge handling live here exactly once.
// That is what makes the bit-identity contract between variants cheap to
// keep: a variant cannot disagree about *which* products to form, only about
// how to schedule identical per-element mul-then-add chains — and those are
// lane-independent, so any vector width produces the same bits.
//
// Do not include outside src/core/cpu_backend*.cc and tests.
#pragma once

#include <bit>
#include <cstdint>

#include "src/format/tca_bme.h"

namespace spinfer {
namespace cpu_backend_detail {

// One nonzero's contribution to a row update: scalar weight value plus the
// (already j0-offset) X panel row it multiplies.
struct RowTerm {
  float v;
  const float* xrow;
};

// Per-row-task phase accounting for tracing. Timing is a compile-time
// template parameter of ProcessGroupTile (`kTimed`), so the untraced
// instantiation contains no timing code at all — bit-for-bit the
// pre-instrumentation loop; the driver selects the instantiation once per
// task on the hoisted tracing flag (see src/obs/trace.h). When active,
// decode/convert/accumulate nanoseconds accumulate here and the driver emits
// them as synthetic child slices of the row-task span.
//
// Now() is defined out-of-line in cpu_backend.cc on purpose: this header is
// compiled into TUs with different ISA flags, and an inline body could hand
// AVX-encoded code to the portable path via COMDAT merging.
struct SpmmPhaseRecorder {
  uint64_t convert_ns = 0;     // half->float staging of tile Values
  uint64_t decode_ns = 0;      // bitmap walk / RowTerm gathering
  uint64_t accumulate_ns = 0;  // FMA row updates (incl. fused decode in Row8)
  uint64_t tiles = 0;          // nonzero BitmapTiles processed
  uint64_t nnz = 0;            // nonzeros consumed

  uint64_t Now() const;  // Tracer clock (respects an injected FakeClock)
};

// RowFma contract: fma(orow, terms, count, nb) performs, for every
// j in [0, nb) and t in [0, count) in ascending t order:
//     orow[j] = orow[j] + terms[t].v * terms[t].xrow[j]
// with one rounding for the multiply and one for the add (no fusion — the
// variant TUs are compiled with -ffp-contract=off). Per-element results are
// then identical for every vector width, which is the dispatch invariant the
// tests enforce.
//
// Row8 contract: the decode-width (nb == 8) specialization. row8(orow,
// rowmask, vals, xcol0, n) walks rowmask's set bits in ascending order; the
// t-th set bit cc contributes vals[t] * (xcol0 + cc*n)[j] for j in [0, 8),
// with the same mul-then-add rounding as above. Same products, same order as
// the terms path — only the staging through RowTerm is skipped.
//
// ConvertFn contract: convert(src, dst, count) writes dst[i] =
// float(src[i]) for i in [0, count). Half->float widening is exact, so the
// LUT and F16C implementations produce identical bits; the choice never
// affects results, only speed.

// Ragged-edge BitmapTile: rows/cols may fall outside the logical matrix, so
// every element is guarded. Scalar on purpose — edges are rare, and sharing
// this exact code across variants removes any chance of edge divergence.
// `tile_vals` holds the tile's already-converted values in bit order.
//
// `static`, not `inline`: the including TUs are compiled with different ISA
// flags, and a COMDAT-merged copy could hand AVX-encoded code to the
// portable path. Internal linkage keeps each TU's codegen to itself.
static inline void EdgeBitmapTile(uint64_t bitmap, const float* tile_vals,
                                  int64_t bt_r, int64_t bt_c, int64_t m, int64_t k,
                                  const float* xf, int64_t n, int64_t j0,
                                  int64_t nb, float* out) {
  int t = 0;
  while (bitmap != 0) {
    const int bit = std::countr_zero(bitmap);
    bitmap &= bitmap - 1;
    const float v = tile_vals[t++];
    const int64_t r = bt_r + bit / kBitmapTileDim;
    const int64_t c = bt_c + bit % kBitmapTileDim;
    if (r >= m || c >= k) {
      continue;  // padding region: the stored value is never referenced
    }
    float* orow = out + r * n + j0;
    const float* xrow = xf + c * n + j0;
    for (int64_t j = 0; j < nb; ++j) {
      orow[j] += v * xrow[j];
    }
  }
}

// Applies one GroupTile's nonzeros to the output columns [j0, j0+nb), reading
// activations from the fp32 panel `xf` (row-major K x N). Each BitmapTile's
// compressed Values run is converted half->float in one batch into an
// L1-resident staging array (at most 64 floats), so the hot row updates read
// floats and the conversion vectorizes. The caller owns N-blocking and
// row-parallelism; this walks TCTiles in storage order so the Values cursor
// advances without index lookups, and hands every interior BitmapTile row to
// `row_fma` as one register-tiled update.
template <bool kTimed, typename RowFma, typename ConvertFn>
static void ProcessGroupTile(const TcaBmeMatrix& w, int64_t gt, const float* xf,
                             int64_t n, int64_t j0, int64_t nb, float* out,
                             const RowFma& row_fma, const ConvertFn& convert,
                             SpmmPhaseRecorder* rec = nullptr) {
  const Half* hvalues = w.values().data();
  const int64_t m = w.rows();
  const int64_t k = w.cols();
  const TcaBmeConfig& cfg = w.config();
  const int tc_rows = w.tc_rows_per_gt();
  const int tc_cols = w.tc_cols_per_gt();
  const int64_t base_r = (gt / w.gt_grid_cols()) * cfg.gt_rows;
  const int64_t base_c = (gt % w.gt_grid_cols()) * cfg.gt_cols;
  size_t cursor = w.gtile_offsets()[gt];
  for (int tcc = 0; tcc < tc_cols; ++tcc) {
    for (int tcr = 0; tcr < tc_rows; ++tcr) {
      const int tc = tcc * tc_rows + tcr;
      for (int q = 0; q < 4; ++q) {
        const uint64_t bitmap = w.bitmaps()[w.BitmapIndex(gt, tc, q)];
        if (bitmap == 0) {
          continue;
        }
        const int pc = std::popcount(bitmap);
        float tile_vals[kBitmapTileDim * kBitmapTileDim];
        uint64_t t_phase = 0;
        if constexpr (kTimed) {
          t_phase = rec->Now();
        }
        convert(hvalues + cursor, tile_vals, static_cast<size_t>(pc));
        cursor += static_cast<size_t>(pc);
        if constexpr (kTimed) {
          rec->convert_ns += rec->Now() - t_phase;
          rec->tiles += 1;
          rec->nnz += static_cast<uint64_t>(pc);
        }
        const int64_t bt_r = base_r + static_cast<int64_t>(tcr) * kTcTileDim +
                             (q % 2) * kBitmapTileDim;
        const int64_t bt_c = base_c + static_cast<int64_t>(tcc) * kTcTileDim +
                             (q / 2) * kBitmapTileDim;
        if (bt_r + kBitmapTileDim > m || bt_c + kBitmapTileDim > k) {
          if constexpr (kTimed) {
            t_phase = rec->Now();
          }
          EdgeBitmapTile(bitmap, tile_vals, bt_r, bt_c, m, k, xf, n, j0, nb,
                         out);
          if constexpr (kTimed) {
            rec->accumulate_ns += rec->Now() - t_phase;
          }
          continue;
        }
        // Interior tile: bits are row-major (bit = r*8 + c), so each bitmap
        // byte is one output row's nonzeros and its Values are contiguous in
        // the staging array. Decode width (nb == 8, one accumulator
        // register) skips the RowTerm staging and walks the bits directly;
        // wider blocks gather the row's terms once and replay them per
        // register tile. Both paths form the same products in the same
        // order.
        int tv = 0;
        if (nb == kBitmapTileDim) {
          // Decode is fused into Row8's bit walk; the whole tile charges to
          // the accumulate phase.
          if constexpr (kTimed) {
            t_phase = rec->Now();
          }
          const float* xcol0 = xf + bt_c * n + j0;
          for (int rr = 0; rr < kBitmapTileDim; ++rr) {
            const uint64_t rowmask = (bitmap >> (rr * kBitmapTileDim)) & 0xFFull;
            if (rowmask == 0) {
              continue;
            }
            row_fma.Row8(out + (bt_r + rr) * n + j0, rowmask, tile_vals + tv,
                         xcol0, n);
            tv += std::popcount(rowmask);
          }
          if constexpr (kTimed) {
            rec->accumulate_ns += rec->Now() - t_phase;
          }
          continue;
        }
        for (int rr = 0; rr < kBitmapTileDim; ++rr) {
          uint64_t rowmask = (bitmap >> (rr * kBitmapTileDim)) & 0xFFull;
          if (rowmask == 0) {
            continue;
          }
          if constexpr (kTimed) {
            t_phase = rec->Now();
          }
          RowTerm terms[kBitmapTileDim];
          int count = 0;
          while (rowmask != 0) {
            const int cc = std::countr_zero(rowmask);
            rowmask &= rowmask - 1;
            terms[count].v = tile_vals[tv + count];
            terms[count].xrow = xf + (bt_c + cc) * n + j0;
            ++count;
          }
          tv += count;
          if constexpr (kTimed) {
            const uint64_t t_mid = rec->Now();
            rec->decode_ns += t_mid - t_phase;
            t_phase = t_mid;
          }
          row_fma(out + (bt_r + rr) * n + j0, terms, count, nb);
          if constexpr (kTimed) {
            rec->accumulate_ns += rec->Now() - t_phase;
          }
        }
      }
    }
  }
}

// The AVX2 variant's kernels, defined in cpu_backend_avx2.cc (built with
// -mavx2 -mfma -mf16c when the compiler supports them). Call only when
// CpuSpmmAvx2Compiled() and the running CPU advertises AVX2+FMA+F16C.
bool CpuSpmmAvx2Compiled();
void ProcessGroupTileAvx2(const TcaBmeMatrix& w, int64_t gt, const float* xf,
                          int64_t n, int64_t j0, int64_t nb, float* out,
                          SpmmPhaseRecorder* rec);
// 8-wide vcvtph2ps half->float of `count` elements; exact, so bit-identical
// to the portable LUT conversion for every non-NaN input (and for the NaN
// encodings hardware and the LUT agree on; weights are never NaN).
void ConvertHalfToFloatAvx2(const Half* src, float* dst, size_t count);

}  // namespace cpu_backend_detail
}  // namespace spinfer
