// AVX2 unit of the SpMV fast path. Built with -mavx2 -mfma -mf16c when the
// compiler supports them (see src/core/CMakeLists.txt); kernels run only
// after runtime feature detection, so the rest of the binary stays executable
// on baseline x86-64 and non-x86 hosts.
//
// Vectorization scheme — across rows, never within a row. Each output
// element's value is a scalar accumulation chain (ascending column order,
// separate mul/add roundings), so a horizontal SIMD sum would change result
// bits. Instead, one ymm register holds the 8 output-row accumulators of a
// BitmapTile (output rows are contiguous at N = 1), and the kernel sweeps the
// tile's 8 columns in order:
//
//   1. Expand the row-major compressed Values run into one 8-float vector
//      per tile row with a 256-entry prefix-popcount permutation LUT
//      (vpermps) — lane cc of row rr's vector holds value(rr, cc) when bit
//      (rr, cc) is set, a don't-care otherwise.
//   2. Transpose the 8 row vectors (classic 8x8 unpack/shuffle/permute2f128)
//      to get per-column value vectors.
//   3. For each column cc: acc' = acc + col_cc * broadcast(x[bt_c + cc]),
//      then blend acc' into acc only in lanes whose bitmap bit is set
//      (vblendvps keys on the sign bit; the mask is the bitmap's row bytes
//      shifted so bit cc lands in bit 31). Unset lanes keep acc bitwise —
//      adding a zero instead would already turn -0.0 into +0.0.
//
// Per lane that is exactly the scalar chain: one vmulps rounding, one vaddps
// rounding per set bit, ascending cc. No FMA anywhere; the TU is also built
// with -ffp-contract=off so the compiler cannot re-fuse.
//
// The INT8 kernel expands each row's codes with a byte-shuffle LUT (pshufb,
// 0x80 sentinels zero the unset lanes), widens to int16 (vpmovsxbw), and
// multiply-accumulates against the quantized activations with vpmaddwd. The
// integer dot is exact, so lane order is free; only the final
// scale * float(idot) mul-then-add touches floats, in fixed row order.
#include "src/core/cpu_spmv_inner.h"
#include "src/util/check.h"

#if defined(__AVX2__) && defined(__FMA__) && defined(__F16C__)
#include <immintrin.h>
#define SPINFER_CPU_SPMV_AVX2 1
#endif

namespace spinfer {
namespace cpu_spmv_detail {

#if defined(SPINFER_CPU_SPMV_AVX2)

namespace {

// For each 8-bit row mask, lane cc holds the rank (prefix popcount) of bit
// cc: the index of value(rr, cc) within the row's packed Values run. Unset
// lanes get the running rank too — they select an in-bounds don't-care that
// the blend discards (the staging pad is zeroed, so even one-past-the-run
// stays a real float, never uninitialized garbage).
struct PermLut {
  alignas(32) int32_t idx[256][8];
};

constexpr PermLut MakePermLut() {
  PermLut lut{};
  for (int mask = 0; mask < 256; ++mask) {
    int rank = 0;
    for (int cc = 0; cc < 8; ++cc) {
      lut.idx[mask][cc] = rank;
      if ((mask >> cc) & 1) {
        ++rank;
      }
    }
  }
  return lut;
}

constexpr PermLut kPermLut = MakePermLut();

// Byte-shuffle variant for INT8 codes: set lanes select their rank, unset
// lanes use the 0x80 sentinel (pshufb writes zero), so expanded codes are
// exact — no blend needed on the integer side.
struct ShufLut {
  alignas(16) uint8_t idx[256][16];
};

constexpr ShufLut MakeShufLut() {
  ShufLut lut{};
  for (int mask = 0; mask < 256; ++mask) {
    int rank = 0;
    for (int cc = 0; cc < 8; ++cc) {
      lut.idx[mask][cc] =
          ((mask >> cc) & 1) ? static_cast<uint8_t>(rank++) : 0x80;
    }
    for (int cc = 8; cc < 16; ++cc) {
      lut.idx[mask][cc] = 0x80;
    }
  }
  return lut;
}

constexpr ShufLut kShufLut = MakeShufLut();

// Below this population count the expand+transpose overhead (~40 shuffle-
// port ops per tile) loses to the scalar bit walk. Speed-only knob: both
// paths produce identical bits by the shared-chain contract.
constexpr int kSpmvScalarTileMaxPc = 12;

inline void Avx2SpmvTile(uint64_t bitmap, int pc, const float* vals,
                         int64_t bt_r, int64_t bt_c, const float* xf,
                         float* out) {
  if (pc <= kSpmvScalarTileMaxPc) {
    ScalarSpmvTile(bitmap, vals, bt_r, bt_c, xf, out);
    return;
  }
  // 1. Expand each row's packed values into column-aligned lanes.
  __m256 rows[8];
  int off = 0;
  for (int rr = 0; rr < 8; ++rr) {
    const uint32_t rm = static_cast<uint32_t>(bitmap >> (rr * 8)) & 0xFFu;
    if (rm == 0) {
      rows[rr] = _mm256_setzero_ps();
      continue;
    }
    const __m256i perm =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(kPermLut.idx[rm]));
    rows[rr] = _mm256_permutevar8x32_ps(_mm256_loadu_ps(vals + off), perm);
    off += std::popcount(rm);
  }
  // 2. 8x8 transpose: rows[rr] lane cc -> cols[cc] lane rr.
  const __m256 t0 = _mm256_unpacklo_ps(rows[0], rows[1]);
  const __m256 t1 = _mm256_unpackhi_ps(rows[0], rows[1]);
  const __m256 t2 = _mm256_unpacklo_ps(rows[2], rows[3]);
  const __m256 t3 = _mm256_unpackhi_ps(rows[2], rows[3]);
  const __m256 t4 = _mm256_unpacklo_ps(rows[4], rows[5]);
  const __m256 t5 = _mm256_unpackhi_ps(rows[4], rows[5]);
  const __m256 t6 = _mm256_unpacklo_ps(rows[6], rows[7]);
  const __m256 t7 = _mm256_unpackhi_ps(rows[6], rows[7]);
  const __m256 u0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 cols[8] = {_mm256_permute2f128_ps(u0, u4, 0x20),
                          _mm256_permute2f128_ps(u1, u5, 0x20),
                          _mm256_permute2f128_ps(u2, u6, 0x20),
                          _mm256_permute2f128_ps(u3, u7, 0x20),
                          _mm256_permute2f128_ps(u0, u4, 0x31),
                          _mm256_permute2f128_ps(u1, u5, 0x31),
                          _mm256_permute2f128_ps(u2, u6, 0x31),
                          _mm256_permute2f128_ps(u3, u7, 0x31)};
  // 3. Masked column sweep. rowbytes lane rr = row rr's 8-bit mask; shifting
  // bit cc into bit 31 makes vblendvps select the updated accumulator
  // exactly where bit (rr, cc) is set.
  const __m256i rowbytes =
      _mm256_cvtepu8_epi32(_mm_cvtsi64_si128(static_cast<long long>(bitmap)));
  __m256 acc = _mm256_loadu_ps(out + bt_r);
  for (int cc = 0; cc < 8; ++cc) {
    const __m256 xb = _mm256_broadcast_ss(xf + bt_c + cc);
    const __m256 sum = _mm256_add_ps(acc, _mm256_mul_ps(cols[cc], xb));
    const __m256i lane_mask = _mm256_slli_epi32(rowbytes, 31 - cc);
    acc = _mm256_blendv_ps(acc, sum, _mm256_castsi256_ps(lane_mask));
  }
  _mm256_storeu_ps(out + bt_r, acc);
}

// F16C batch conversion that also zeroes the 8-float staging pad, so the
// expansion's one-past-the-run permute lanes read real (zero) floats.
struct Avx2ConvertPadded {
  void operator()(const Half* src, float* dst, size_t count) const {
    cpu_backend_detail::ConvertHalfToFloatAvx2(src, dst, count);
    static_assert(kSpmvStagePadFloats == 8, "pad is one ymm store");
    _mm256_storeu_ps(dst + count, _mm256_setzero_ps());
  }
};

inline void Avx2SpmvTileInt8(uint64_t bitmap, int pc, const int8_t* codes,
                             float scale, int64_t bt_r, int64_t bt_c,
                             const int16_t* xq, float* out) {
  (void)pc;
  const __m128i xv =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(xq + bt_c));
  int off = 0;
  for (int rr = 0; rr < 8; ++rr) {
    const uint32_t rm = static_cast<uint32_t>(bitmap >> (rr * 8)) & 0xFFu;
    if (rm == 0) {
      continue;
    }
    const __m128i shuf =
        _mm_load_si128(reinterpret_cast<const __m128i*>(kShufLut.idx[rm]));
    const __m128i packed =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + off));
    off += std::popcount(rm);
    // Expanded lane cc = code of bit (rr, cc), zero where unset; widen and
    // form the exact int32 dot against the 8 activation codes.
    const __m128i expanded = _mm_shuffle_epi8(packed, shuf);
    const __m128i c16 = _mm_cvtepi8_epi16(expanded);
    const __m128i prod = _mm_madd_epi16(c16, xv);
    __m128i sum = _mm_add_epi32(prod, _mm_srli_si128(prod, 8));
    sum = _mm_add_epi32(sum, _mm_srli_si128(sum, 4));
    const int32_t idot = _mm_cvtsi128_si32(sum);
    out[bt_r + rr] += scale * static_cast<float>(idot);
  }
}

}  // namespace

void ProcessGroupTileSpmvAvx2(const TcaBmeMatrix& w, int64_t gt,
                              const float* xf, float* out,
                              SpmmPhaseRecorder* rec) {
  const auto tile = [](uint64_t bitmap, int pc, const float* vals, int64_t bt_r,
                       int64_t bt_c, const float* x, float* o) {
    Avx2SpmvTile(bitmap, pc, vals, bt_r, bt_c, x, o);
  };
  if (rec != nullptr) {
    ProcessGroupTileSpmv<true>(w, gt, xf, out, tile, Avx2ConvertPadded{}, rec);
  } else {
    ProcessGroupTileSpmv<false>(w, gt, xf, out, tile, Avx2ConvertPadded{});
  }
}

void ProcessGroupTileSpmvInt8Avx2(const TcaBmeQuantMatrix& w, int64_t gt,
                                  const int16_t* xq, float x_scale, float* out,
                                  SpmmPhaseRecorder* rec) {
  const auto tile = [](uint64_t bitmap, int pc, const int8_t* codes,
                       float scale, int64_t bt_r, int64_t bt_c,
                       const int16_t* x, float* o) {
    Avx2SpmvTileInt8(bitmap, pc, codes, scale, bt_r, bt_c, x, o);
  };
  if (rec != nullptr) {
    ProcessGroupTileSpmvInt8<true>(w, gt, xq, x_scale, out, tile, rec);
  } else {
    ProcessGroupTileSpmvInt8<false>(w, gt, xq, x_scale, out, tile);
  }
}

#else  // !SPINFER_CPU_SPMV_AVX2

void ProcessGroupTileSpmvAvx2(const TcaBmeMatrix& w, int64_t gt,
                              const float* xf, float* out,
                              SpmmPhaseRecorder* rec) {
  (void)w;
  (void)gt;
  (void)xf;
  (void)out;
  (void)rec;
  SPINFER_CHECK_MSG(false, "AVX2 CPU SpMV kernel was not compiled into this binary");
}

void ProcessGroupTileSpmvInt8Avx2(const TcaBmeQuantMatrix& w, int64_t gt,
                                  const int16_t* xq, float x_scale, float* out,
                                  SpmmPhaseRecorder* rec) {
  (void)w;
  (void)gt;
  (void)xq;
  (void)x_scale;
  (void)out;
  (void)rec;
  SPINFER_CHECK_MSG(false, "AVX2 CPU SpMV kernel was not compiled into this binary");
}

#endif

}  // namespace cpu_spmv_detail
}  // namespace spinfer
