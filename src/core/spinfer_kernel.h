// The SpInfer-SpMM kernel (paper §4.3, Alg. 1).
//
// Execution structure (functional simulation mirrors the CUDA kernel):
//   * grid: (M / GT_rows) thread-block rows × split_k K-partitions;
//   * per iteration a block (1) LDGSTS-copies one GroupTile (values +
//     bitmaps) global→shared, (2) SMBD-decodes the WTile shared→registers,
//     (3) LDGSTS-copies the XTile, (4) LDSM-loads X fragments, and (5) runs
//     mma.m16n8k16 Tensor Core ops — double-buffered so (1)/(3) of iteration
//     i+1 overlap (2)/(5) of iteration i;
//   * split-K partials land in an FP32 reduction workspace; an epilogue sums
//     them.
//
// Estimate() produces the same event counts in closed form and feeds the
// roofline cost model with SpInfer's calibrated efficiency profile.
#pragma once

#include "src/core/kernel_config.h"
#include "src/core/spmm.h"
#include "src/format/tca_bme.h"
#include "src/gpusim/occupancy.h"

namespace spinfer {

class SpInferSpmmKernel final : public SpmmKernel {
 public:
  explicit SpInferSpmmKernel(SpInferKernelConfig config = {});

  std::string name() const override;

  FloatMatrix Run(const HalfMatrix& w, const HalfMatrix& x,
                  PerfCounters* counters) const override;

  // Functional execution on an already-encoded weight matrix (the form the
  // inference engine uses: encode once, run per token).
  FloatMatrix RunEncoded(const TcaBmeMatrix& w, const HalfMatrix& x,
                         PerfCounters* counters) const;

  KernelEstimate Estimate(const SpmmProblem& p, const DeviceSpec& dev) const override;

  const SpInferKernelConfig& config() const { return config_; }

  // The calibrated roofline profile (exposed for the ablation bench).
  KernelTraits Traits() const;

  // Per-thread-block resources at the given problem statistics: one warp per
  // TCTile row of the GroupTile, plus double-buffered shared tiles sized for
  // the expected nonzero payload, bitmaps, and the XTile.
  KernelResources Resources(double sparsity, int64_t n) const;

 private:
  SpInferKernelConfig config_;
};

}  // namespace spinfer
