// SparTA composable SpMM (Zheng et al., OSDI'22).
//
// Executes the 2:4 semi-structured component on Sparse Tensor Cores and the
// CSR residual on CUDA cores, then sums the two partial products. Total time
// models the two sub-kernels plus a combine pass; at uniform 50% sparsity
// roughly 9% of nonzeros overflow into the residual (paper Eq. 4).
#pragma once

#include "src/core/spmm.h"

namespace spinfer {

class SpartaSpmmKernel final : public SpmmKernel {
 public:
  std::string name() const override { return "sparta"; }

  FloatMatrix Run(const HalfMatrix& w, const HalfMatrix& x,
                  PerfCounters* counters) const override;

  KernelEstimate Estimate(const SpmmProblem& p, const DeviceSpec& dev) const override;

  // Profiles of the two sub-kernels.
  KernelTraits StructuredTraits() const;
  KernelTraits ResidualTraits() const;
};

}  // namespace spinfer
