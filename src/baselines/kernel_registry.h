// Central registry of every SpMM kernel in the evaluation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/spmm.h"

namespace spinfer {

// Constructs one instance of every kernel (SpInfer with default config plus
// the five baselines), in the order the paper's figures list them.
std::vector<std::unique_ptr<SpmmKernel>> AllKernels();

// Constructs a single kernel by registry name ("spinfer", "cublas_tc",
// "flash_llm", "sputnik", "cusparse", "sparta", "smat"); aborts on unknown
// names.
std::unique_ptr<SpmmKernel> MakeKernel(const std::string& name);

// Names accepted by MakeKernel.
std::vector<std::string> KernelNames();

}  // namespace spinfer
