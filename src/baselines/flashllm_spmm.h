// Flash-LLM's Load-as-Sparse-Compute-as-Dense SpMM (Xia et al., VLDB'23).
//
// The kernel LDG-loads Tiled-CSL NonZeros into registers, scatters them into
// a dense shared-memory tile ("extraction"), then computes the tile densely
// on Tensor Cores. The scatter addresses are data-dependent, so extraction
// suffers shared-memory bank conflicts (paper Fig. 12), and the
// register-file round trip costs SM-internal bandwidth (paper Fig. 7).
#pragma once

#include "src/core/spmm.h"
#include "src/format/tiled_csl.h"

namespace spinfer {

class FlashLlmSpmmKernel final : public SpmmKernel {
 public:
  explicit FlashLlmSpmmKernel(TiledCslConfig format = {});

  std::string name() const override { return "flash_llm"; }

  FloatMatrix Run(const HalfMatrix& w, const HalfMatrix& x,
                  PerfCounters* counters) const override;

  KernelEstimate Estimate(const SpmmProblem& p, const DeviceSpec& dev) const override;

  KernelTraits Traits() const;

 private:
  TiledCslConfig format_;
};

}  // namespace spinfer
