#include "src/baselines/cusparse_spmm.h"

#include "src/format/csr.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace spinfer {

FloatMatrix CusparseSpmmKernel::Run(const HalfMatrix& w, const HalfMatrix& x,
                                    PerfCounters* counters) const {
  SPINFER_CHECK_EQ(w.cols(), x.rows());
  const CsrMatrix csr = CsrMatrix::Encode(w);
  const int64_t n = x.cols();
  FloatMatrix out(w.rows(), n);
  // X converted once up front: each X row is re-read by every nonzero in its
  // column, so per-use conversion would repeat the same work nnz/k times.
  const FloatMatrix xf = ToFloatMatrix(x);
  // Row-parallel: rows are independent and keep their sequential
  // accumulation order, so output bits match at any thread count.
  ParallelFor(0, w.rows(), [&](int64_t r) {
    for (uint32_t i = csr.row_ptr()[r]; i < csr.row_ptr()[r + 1]; ++i) {
      const float v = csr.values()[i].ToFloat();
      const uint32_t col = csr.col_idx()[i];
      const float* xrow = xf.data() + col * n;
      float* orow = &out.at(r, 0);
      for (int64_t j = 0; j < n; ++j) {
        orow[j] += v * xrow[j];
      }
    }
  });
  if (counters != nullptr) {
    PerfCounters c;
    c.dram_bytes_read = 6ull * csr.nnz() + 4ull * (w.rows() + 1) + 2ull * w.cols() * n;
    c.dram_bytes_written = 2ull * w.rows() * n;
    c.flops = 2ull * csr.nnz() * n;
    c.ldg_instrs = (6ull * csr.nnz() + 511) / 512 + static_cast<uint64_t>(w.rows());
    c.registers_per_thread = 80;
    *counters += c;
  }
  return out;
}

KernelTraits CusparseSpmmKernel::Traits() const {
  KernelTraits t;
  t.name = "cusparse";
  // The generic CSR path issues uncoalesced per-row gathers that collapse
  // at LLM densities; calibrated to the paper's ~18x gap vs SpInfer.
  t.bw_eff = 0.13;
  t.uses_tensor_core = false;
  t.cuda_eff = 0.05;
  t.decode_serial_fraction = 0.0;
  t.fixed_us = 12.0;
  return t;
}

KernelEstimate CusparseSpmmKernel::Estimate(const SpmmProblem& p,
                                            const DeviceSpec& dev) const {
  const int64_t nnz = p.Nnz();
  KernelEstimate est;
  PerfCounters& c = est.counters;
  c.dram_bytes_read = 6ull * nnz + 4ull * (p.m + 1) + 2ull * p.k * p.n;
  c.dram_bytes_written = 2ull * p.m * p.n;
  c.flops = 2ull * nnz * p.n;
  c.ldg_instrs = (6ull * nnz + 511) / 512 + static_cast<uint64_t>(p.m);
  c.registers_per_thread = 80;

  KernelWork work;
  work.dram_bytes_read = c.dram_bytes_read;
  work.dram_bytes_written = c.dram_bytes_written;
  work.flops = c.flops;
  work.decode_ops = 0;
  work.n = p.n;
  est.time = EstimateKernelTime(Traits(), work, dev);
  return est;
}

}  // namespace spinfer
