#include "src/baselines/smat_spmm.h"

#include <algorithm>
#include <cmath>

#include "src/format/bcsr.h"
#include "src/format/sparse_util.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace spinfer {

FloatMatrix SmatSpmmKernel::Run(const HalfMatrix& w, const HalfMatrix& x,
                                PerfCounters* counters) const {
  SPINFER_CHECK_EQ(w.cols(), x.rows());
  const BcsrMatrix enc = BcsrMatrix::Encode(w);
  const int64_t m = w.rows();
  const int64_t k = w.cols();
  const int64_t n = x.cols();
  FloatMatrix out(m, n);
  // X converted once up front; see ToFloatMatrix — exact, so bit-identical.
  const FloatMatrix xf = ToFloatMatrix(x);

  // One task per BCSR block row: each owns a disjoint band of output rows,
  // and the per-row accumulation order matches the sequential loop exactly.
  ParallelFor(0, enc.num_block_rows(), [&](int64_t br) {
    for (uint32_t b = enc.block_row_ptr()[br]; b < enc.block_row_ptr()[br + 1]; ++b) {
      const int64_t bc = enc.block_cols()[b];
      const Half* block =
          enc.block_values().data() + static_cast<size_t>(b) * kBcsrBlockDim * kBcsrBlockDim;
      for (int r = 0; r < kBcsrBlockDim; ++r) {
        const int64_t row = br * kBcsrBlockDim + r;
        if (row >= m) {
          break;
        }
        for (int c = 0; c < kBcsrBlockDim; ++c) {
          const int64_t col = bc * kBcsrBlockDim + c;
          const float v = block[r * kBcsrBlockDim + c].ToFloat();
          if (v == 0.0f || col >= k) {
            continue;
          }
          const float* xrow = xf.data() + col * n;
          float* orow = &out.at(row, 0);
          for (int64_t j = 0; j < n; ++j) {
            orow[j] += v * xrow[j];
          }
        }
      }
    }
  });

  if (counters != nullptr) {
    PerfCounters c;
    c.dram_bytes_read = enc.StorageBytes() + 2ull * k * n;
    c.dram_bytes_written = 2ull * m * n;
    const int64_t n8 = PadUp(std::max<int64_t>(n, 1), 8) / 8;
    // Each mma.m16n8k16 consumes a 2x2 group of 8x8 blocks; zero blocks in a
    // group still ride along, so charge mma work per nonzero block rounded
    // up to half an instruction (two blocks per instruction K-depth).
    c.mma_instrs = (static_cast<uint64_t>(enc.num_nonzero_blocks()) * n8 + 3) / 4;
    c.flops = static_cast<uint64_t>(enc.num_nonzero_blocks()) * 2 * 64 * 8 * n8;
    c.registers_per_thread = 128;
    *counters += c;
  }
  return out;
}

KernelTraits SmatSpmmKernel::Traits() const {
  KernelTraits t;
  t.name = "smat";
  t.bw_eff = 0.85;
  t.tc_eff_max = 0.70;
  t.tc_n_sat = 20.0;
  t.uses_tensor_core = true;
  t.decode_serial_fraction = 0.0;
  t.fixed_us = 5.0;
  return t;
}

KernelEstimate SmatSpmmKernel::Estimate(const SpmmProblem& p,
                                        const DeviceSpec& dev) const {
  const int64_t block_rows = PadUp(p.m, kBcsrBlockDim) / kBcsrBlockDim;
  const int64_t block_cols = PadUp(p.k, kBcsrBlockDim) / kBcsrBlockDim;
  // Expected nonzero blocks under an i.i.d. Bernoulli(1-s) mask:
  // P[8x8 block has any nonzero] = 1 - s^64.
  const double p_nonzero = 1.0 - std::pow(p.sparsity, 64.0);
  const uint64_t nnz_blocks = static_cast<uint64_t>(
      std::llround(static_cast<double>(block_rows * block_cols) * p_nonzero));
  const int64_t n8 = PadUp(std::max<int64_t>(p.n, 1), 8) / 8;

  KernelEstimate est;
  PerfCounters& c = est.counters;
  c.dram_bytes_read = nnz_blocks * (2ull * 64 + 4) + 4ull * (block_rows + 1) +
                      2ull * p.k * p.n;
  c.dram_bytes_written = 2ull * p.m * p.n;
  c.mma_instrs = (nnz_blocks * static_cast<uint64_t>(n8) + 3) / 4;
  c.flops = nnz_blocks * 2ull * 64 * 8 * static_cast<uint64_t>(n8);
  c.registers_per_thread = 128;

  KernelWork work;
  work.dram_bytes_read = c.dram_bytes_read;
  work.dram_bytes_written = c.dram_bytes_written;
  work.flops = c.flops;
  work.decode_ops = nnz_blocks * 4;  // block-pointer chasing
  work.n = p.n;
  est.time = EstimateKernelTime(Traits(), work, dev);
  return est;
}

}  // namespace spinfer
