#include "src/baselines/cublas_gemm.h"

#include <algorithm>

#include "src/format/sparse_util.h"
#include "src/util/check.h"

namespace spinfer {
namespace {

void CountDenseWork(int64_t m, int64_t k, int64_t n, PerfCounters* c) {
  const int64_t pm = PadUp(m, 16);
  const int64_t pk = PadUp(k, 16);
  const int64_t n8 = PadUp(std::max<int64_t>(n, 1), 8) / 8;
  c->dram_bytes_read = 2ull * m * k + 2ull * k * n;
  c->dram_bytes_written = 2ull * m * n;
  c->ldgsts_instrs = (2ull * m * k + 2ull * k * n + 511) / 512;
  c->mma_instrs = static_cast<uint64_t>(pm / 16) * (pk / 16) * n8;
  c->flops = c->mma_instrs * 4096ull;
  c->ldsm_instrs = c->mma_instrs;  // one fragment load per mma on average
  // LDGSTS stages all operands through shared memory (Fig. 7 ideal path).
  c->smem_bytes_written = 2ull * m * k + 2ull * k * n;
  c->registers_per_thread = 128;
}

}  // namespace

FloatMatrix CublasGemmKernel::Run(const HalfMatrix& w, const HalfMatrix& x,
                                  PerfCounters* counters) const {
  FloatMatrix out = ReferenceGemm(w, x);
  if (counters != nullptr) {
    PerfCounters c;
    CountDenseWork(w.rows(), w.cols(), x.cols(), &c);
    *counters += c;
  }
  return out;
}

KernelTraits CublasGemmKernel::Traits() const {
  KernelTraits t;
  t.name = "cublas_tc";
  t.bw_eff = 0.92;
  t.tc_eff_max = 0.85;
  t.tc_n_sat = 12.0;
  t.uses_tensor_core = true;
  t.decode_serial_fraction = 0.0;
  t.fixed_us = 4.0;
  return t;
}

KernelEstimate CublasGemmKernel::Estimate(const SpmmProblem& p,
                                          const DeviceSpec& dev) const {
  KernelEstimate est;
  CountDenseWork(p.m, p.k, p.n, &est.counters);
  KernelWork work;
  work.dram_bytes_read = est.counters.dram_bytes_read;
  work.dram_bytes_written = est.counters.dram_bytes_written;
  work.flops = est.counters.flops;
  work.decode_ops = 0;
  work.n = p.n;
  est.time = EstimateKernelTime(Traits(), work, dev);
  return est;
}

}  // namespace spinfer
