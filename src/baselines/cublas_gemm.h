// Dense Tensor-Core GEMM — the cuBLAS_TC baseline every speedup in the paper
// is normalized against (Figs. 1, 10, 16).
//
// cuBLAS reads the full dense weight matrix regardless of sparsity; its
// LDGSTS data path and mature tiling make it the bandwidth-efficiency
// reference point (Fig. 7 "ideal case").
#pragma once

#include "src/core/spmm.h"

namespace spinfer {

class CublasGemmKernel final : public SpmmKernel {
 public:
  std::string name() const override { return "cublas_tc"; }

  FloatMatrix Run(const HalfMatrix& w, const HalfMatrix& x,
                  PerfCounters* counters) const override;

  KernelEstimate Estimate(const SpmmProblem& p, const DeviceSpec& dev) const override;

  KernelTraits Traits() const;
};

}  // namespace spinfer
