#include "src/baselines/kernel_registry.h"

#include "src/baselines/cublas_gemm.h"
#include "src/baselines/cusparse_spmm.h"
#include "src/baselines/flashllm_spmm.h"
#include "src/baselines/smat_spmm.h"
#include "src/baselines/sparta_spmm.h"
#include "src/baselines/sputnik_spmm.h"
#include "src/core/spinfer_kernel.h"
#include "src/util/check.h"

namespace spinfer {

std::vector<std::unique_ptr<SpmmKernel>> AllKernels() {
  std::vector<std::unique_ptr<SpmmKernel>> kernels;
  kernels.push_back(std::make_unique<CusparseSpmmKernel>());
  kernels.push_back(std::make_unique<SputnikSpmmKernel>());
  kernels.push_back(std::make_unique<SpartaSpmmKernel>());
  kernels.push_back(std::make_unique<FlashLlmSpmmKernel>());
  kernels.push_back(std::make_unique<SmatSpmmKernel>());
  kernels.push_back(std::make_unique<SpInferSpmmKernel>());
  kernels.push_back(std::make_unique<CublasGemmKernel>());
  return kernels;
}

std::unique_ptr<SpmmKernel> MakeKernel(const std::string& name) {
  if (name == "spinfer") {
    return std::make_unique<SpInferSpmmKernel>();
  }
  if (name == "cublas_tc") {
    return std::make_unique<CublasGemmKernel>();
  }
  if (name == "flash_llm") {
    return std::make_unique<FlashLlmSpmmKernel>();
  }
  if (name == "sputnik") {
    return std::make_unique<SputnikSpmmKernel>();
  }
  if (name == "cusparse") {
    return std::make_unique<CusparseSpmmKernel>();
  }
  if (name == "sparta") {
    return std::make_unique<SpartaSpmmKernel>();
  }
  if (name == "smat") {
    return std::make_unique<SmatSpmmKernel>();
  }
  SPINFER_UNREACHABLE("unknown kernel name: " + name);
}

std::vector<std::string> KernelNames() {
  return {"cusparse", "sputnik", "sparta", "flash_llm", "smat", "spinfer", "cublas_tc"};
}

}  // namespace spinfer
