// Sputnik-style CUDA-core SpMM (Gale et al., SC'20).
//
// One-dimensional row tiling over a CSR matrix, executed on CUDA cores (no
// Tensor Cores): each thread block processes a strip of rows, streaming
// values + column indices and gathering X rows. Skips zeros entirely —
// FLOPs scale with NNZ — but pays 4B of index per nonzero and forgoes
// Tensor-Core throughput.
#pragma once

#include "src/core/spmm.h"

namespace spinfer {

class SputnikSpmmKernel final : public SpmmKernel {
 public:
  std::string name() const override { return "sputnik"; }

  FloatMatrix Run(const HalfMatrix& w, const HalfMatrix& x,
                  PerfCounters* counters) const override;

  KernelEstimate Estimate(const SpmmProblem& p, const DeviceSpec& dev) const override;

  KernelTraits Traits() const;
};

}  // namespace spinfer
