// SMaT: Tensor-Core SpMM for scientific (highly sparse) matrices
// (Okanovic et al.; paper §5.1, Fig. 11).
//
// BCSR with 8x8 blocks; fully-zero blocks are skipped so both traffic and
// mma work scale with the number of nonzero blocks. At LLM densities nearly
// every block is nonzero (P[block empty] = s^64), so SMaT degenerates to a
// dense-plus-index kernel — the paper's Fig. 11 shows SpInfer 2.12x faster
// at 50% sparsity, with SMaT taking over only above ~99.7%.
#pragma once

#include "src/core/spmm.h"

namespace spinfer {

class SmatSpmmKernel final : public SpmmKernel {
 public:
  std::string name() const override { return "smat"; }

  FloatMatrix Run(const HalfMatrix& w, const HalfMatrix& x,
                  PerfCounters* counters) const override;

  KernelEstimate Estimate(const SpmmProblem& p, const DeviceSpec& dev) const override;

  KernelTraits Traits() const;
};

}  // namespace spinfer
