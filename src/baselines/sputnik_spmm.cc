#include "src/baselines/sputnik_spmm.h"

#include "src/format/csr.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace spinfer {
namespace {

void CountCsrWork(int64_t m, int64_t k, int64_t n, int64_t nnz, PerfCounters* c) {
  c->dram_bytes_read = 6ull * nnz + 4ull * (m + 1) + 2ull * k * n;
  c->dram_bytes_written = 2ull * m * n;
  c->ldg_instrs = (6ull * nnz + 511) / 512 + static_cast<uint64_t>(m);
  c->flops = 2ull * nnz * n;
  c->registers_per_thread = 64;
}

}  // namespace

FloatMatrix SputnikSpmmKernel::Run(const HalfMatrix& w, const HalfMatrix& x,
                                   PerfCounters* counters) const {
  SPINFER_CHECK_EQ(w.cols(), x.rows());
  const CsrMatrix csr = CsrMatrix::Encode(w);
  const int64_t n = x.cols();
  FloatMatrix out(w.rows(), n);
  // X converted once up front; see ToFloatMatrix — exact, so bit-identical.
  const FloatMatrix xf = ToFloatMatrix(x);
  // Row-parallel: rows are independent and keep their sequential
  // accumulation order, so output bits match at any thread count.
  ParallelFor(0, w.rows(), [&](int64_t r) {
    for (uint32_t i = csr.row_ptr()[r]; i < csr.row_ptr()[r + 1]; ++i) {
      const float v = csr.values()[i].ToFloat();
      const uint32_t col = csr.col_idx()[i];
      const float* xrow = xf.data() + col * n;
      float* orow = &out.at(r, 0);
      for (int64_t j = 0; j < n; ++j) {
        orow[j] += v * xrow[j];
      }
    }
  });
  if (counters != nullptr) {
    PerfCounters c;
    CountCsrWork(w.rows(), w.cols(), n, csr.nnz(), &c);
    *counters += c;
  }
  return out;
}

KernelTraits SputnikSpmmKernel::Traits() const {
  KernelTraits t;
  t.name = "sputnik";
  // Reverse-offset alignment keeps loads coalesced, but the gathered X rows
  // and per-nonzero index stream cap sustained bandwidth.
  t.bw_eff = 0.72;
  t.uses_tensor_core = false;
  t.cuda_eff = 0.35;
  t.decode_serial_fraction = 0.0;
  t.fixed_us = 4.0;
  return t;
}

KernelEstimate SputnikSpmmKernel::Estimate(const SpmmProblem& p,
                                           const DeviceSpec& dev) const {
  KernelEstimate est;
  CountCsrWork(p.m, p.k, p.n, p.Nnz(), &est.counters);
  KernelWork work;
  work.dram_bytes_read = est.counters.dram_bytes_read;
  work.dram_bytes_written = est.counters.dram_bytes_written;
  work.flops = est.counters.flops;
  work.decode_ops = 0;
  work.n = p.n;
  est.time = EstimateKernelTime(Traits(), work, dev);
  return est;
}

}  // namespace spinfer
