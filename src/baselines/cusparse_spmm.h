// cuSPARSE-style general CSR SpMM (the vendor baseline, paper §5.1).
//
// cuSPARSE targets scientific matrices (high sparsity, irregular structure);
// its general-purpose CSR path is dramatically inefficient at 40–70%
// density — the paper measures it ~18x slower than SpInfer. Functionally it
// is the same CSR traversal as Sputnik; the profile differs.
#pragma once

#include "src/core/spmm.h"

namespace spinfer {

class CusparseSpmmKernel final : public SpmmKernel {
 public:
  std::string name() const override { return "cusparse"; }

  FloatMatrix Run(const HalfMatrix& w, const HalfMatrix& x,
                  PerfCounters* counters) const override;

  KernelEstimate Estimate(const SpmmProblem& p, const DeviceSpec& dev) const override;

  KernelTraits Traits() const;
};

}  // namespace spinfer
