#include "src/baselines/sparta_spmm.h"

#include <algorithm>

#include "src/format/sparse_util.h"
#include "src/format/sparta_format.h"
#include "src/format/storage_model.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace spinfer {

FloatMatrix SpartaSpmmKernel::Run(const HalfMatrix& w, const HalfMatrix& x,
                                  PerfCounters* counters) const {
  SPINFER_CHECK_EQ(w.cols(), x.rows());
  const SpartaMatrix enc = SpartaMatrix::Encode(w);
  const int64_t m = w.rows();
  const int64_t n = x.cols();
  FloatMatrix out(m, n);
  // X converted once up front; see ToFloatMatrix — exact, so bit-identical.
  const FloatMatrix xf = ToFloatMatrix(x);

  // One task per output row, running the Sparse-Tensor-Core 2:4 pass and
  // then the CUDA-core CSR residual pass for that row. Each output element
  // sees the exact accumulation order of the sequential two-pass loop
  // (structured contributions first, then residual), so results are
  // bit-identical for any thread count.
  const CsrMatrix& residual = enc.residual();
  ParallelFor(0, m, [&](int64_t r) {
    for (int64_t g = 0; g < enc.groups_per_row(); ++g) {
      const int64_t gi = r * enc.groups_per_row() + g;
      const uint8_t meta = enc.structured_meta()[gi];
      for (int slot = 0; slot < 2; ++slot) {
        const float v = enc.structured_values()[gi * 2 + slot].ToFloat();
        if (v == 0.0f) {
          continue;
        }
        const int64_t col = g * 4 + ((meta >> (2 * slot)) & 0x3);
        if (col >= w.cols()) {
          continue;
        }
        const float* xrow = xf.data() + col * n;
        float* orow = &out.at(r, 0);
        for (int64_t j = 0; j < n; ++j) {
          orow[j] += v * xrow[j];
        }
      }
    }
    for (uint32_t i = residual.row_ptr()[r]; i < residual.row_ptr()[r + 1]; ++i) {
      const float v = residual.values()[i].ToFloat();
      const uint32_t col = residual.col_idx()[i];
      const float* xrow = xf.data() + col * n;
      float* orow = &out.at(r, 0);
      for (int64_t j = 0; j < n; ++j) {
        orow[j] += v * xrow[j];
      }
    }
  });

  if (counters != nullptr) {
    PerfCounters c;
    const uint64_t slots = enc.structured_values().size();
    const uint64_t structured_bytes = 2ull * slots + (slots + 3) / 4;
    c.dram_bytes_read = structured_bytes + residual.StorageBytes() + 2ull * w.cols() * n;
    // Both passes write the full output; the second read-modify-writes it.
    c.dram_bytes_written = 2ull * 2ull * m * n;
    c.dram_bytes_read += 2ull * m * n;  // combine pass re-read
    // Sparse-TC mma count: 2:4 compresses K by 2x per instruction.
    const int64_t n8 = PadUp(std::max<int64_t>(n, 1), 8) / 8;
    c.mma_instrs = static_cast<uint64_t>(PadUp(m, 16) / 16) *
                   (PadUp(w.cols(), 32) / 32) * n8;
    c.flops = 2ull * (enc.structured_nnz() + residual.nnz()) * n;
    c.registers_per_thread = 140;
    *counters += c;
  }
  return out;
}

KernelTraits SpartaSpmmKernel::StructuredTraits() const {
  KernelTraits t;
  t.name = "sparta-2:4";
  t.bw_eff = 0.80;
  t.tc_eff_max = 0.62;
  t.tc_n_sat = 60.0;
  t.uses_tensor_core = true;
  t.decode_serial_fraction = 0.0;
  t.fixed_us = 5.0;
  return t;
}

KernelTraits SpartaSpmmKernel::ResidualTraits() const {
  KernelTraits t;
  t.name = "sparta-csr";
  t.bw_eff = 0.75;
  t.uses_tensor_core = false;
  t.cuda_eff = 0.35;
  t.decode_serial_fraction = 0.0;
  t.fixed_us = 4.0;
  return t;
}

KernelEstimate SpartaSpmmKernel::Estimate(const SpmmProblem& p,
                                          const DeviceSpec& dev) const {
  const double e_csr = SpartaExpectedCsrNnz(p.m, p.k, p.sparsity);
  const uint64_t csr_nnz = static_cast<uint64_t>(e_csr);
  const uint64_t mk = static_cast<uint64_t>(p.m) * static_cast<uint64_t>(p.k);
  const uint64_t structured_bytes = (2ull * mk + mk / 4) / 2;  // (2B + B/4) * MK/2
  const int64_t n8 = PadUp(std::max<int64_t>(p.n, 1), 8) / 8;

  KernelEstimate est;
  PerfCounters& c = est.counters;
  c.dram_bytes_read = structured_bytes + CsrStorageModel(p.m, csr_nnz) +
                      2ull * p.k * p.n + 2ull * p.m * p.n;
  c.dram_bytes_written = 2ull * 2ull * p.m * p.n;
  c.mma_instrs = static_cast<uint64_t>(PadUp(p.m, 16) / 16) * (PadUp(p.k, 32) / 32) * n8;
  c.flops = c.mma_instrs * 4096ull + 2ull * csr_nnz * p.n;
  c.registers_per_thread = 140;

  // Structured sub-kernel: Sparse-TC, reads the 2:4 payload + X, writes out.
  KernelWork sw;
  sw.dram_bytes_read = structured_bytes + 2ull * p.k * p.n;
  sw.dram_bytes_written = 2ull * p.m * p.n;
  sw.flops = c.mma_instrs * 4096ull;
  sw.n = p.n;
  const TimeBreakdown st = EstimateKernelTime(StructuredTraits(), sw, dev);

  // Residual sub-kernel: CUDA-core CSR over the overflow nonzeros, with a
  // read-modify-write combine into the structured result.
  KernelWork rw;
  rw.dram_bytes_read = CsrStorageModel(p.m, csr_nnz) + 2ull * p.m * p.n;
  rw.dram_bytes_written = 2ull * p.m * p.n;
  rw.flops = 2ull * csr_nnz * p.n;
  rw.n = p.n;
  const TimeBreakdown rt = EstimateKernelTime(ResidualTraits(), rw, dev);

  est.time.mem_us = st.mem_us + rt.mem_us;
  est.time.compute_us = st.compute_us + rt.compute_us;
  est.time.fixed_us = st.fixed_us + rt.fixed_us;
  est.time.total_us = st.total_us + rt.total_us;
  est.time.bw_utilization =
      static_cast<double>(c.dram_bytes_read + c.dram_bytes_written) /
      (est.time.total_us * dev.dram_bw_gbs * 1e3);
  est.time.tc_utilization = static_cast<double>(sw.flops) /
                            (est.time.total_us * dev.tc_fp16_tflops * 1e6);
  return est;
}

}  // namespace spinfer
