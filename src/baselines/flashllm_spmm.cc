#include "src/baselines/flashllm_spmm.h"

#include <algorithm>
#include <vector>

#include "src/format/sparse_util.h"
#include "src/format/storage_model.h"
#include "src/gpusim/shared_memory.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace spinfer {

FlashLlmSpmmKernel::FlashLlmSpmmKernel(TiledCslConfig format) : format_(format) {}

FloatMatrix FlashLlmSpmmKernel::Run(const HalfMatrix& w, const HalfMatrix& x,
                                    PerfCounters* counters) const {
  SPINFER_CHECK_EQ(w.cols(), x.rows());
  const TiledCslMatrix enc = TiledCslMatrix::Encode(w, format_);
  const int64_t m = w.rows();
  const int64_t k = w.cols();
  const int64_t n = x.cols();
  const int64_t tiles_r = PadUp(m, format_.tile_rows) / format_.tile_rows;
  const int64_t tiles_c = PadUp(k, format_.tile_cols) / format_.tile_cols;

  FloatMatrix out(m, n);
  // X converted once up front; see ToFloatMatrix — exact, so bit-identical.
  const FloatMatrix xf = ToFloatMatrix(x);

  // One task per tile row: output rows of different tile rows are disjoint,
  // and each task keeps private counters that are merged in tile-row order
  // below, so results are bit-identical for any thread count.
  std::vector<PerfCounters> row_counters(static_cast<size_t>(tiles_r));
  ParallelFor(0, tiles_r, [&](int64_t tr) {
    PerfCounters local;
    // Dense shared-memory tile the extraction phase scatters into.
    std::vector<float> tile(static_cast<size_t>(format_.tile_rows) * format_.tile_cols);
    for (int64_t tc = 0; tc < tiles_c; ++tc) {
      const int64_t t = tr * tiles_c + tc;
      const uint32_t begin = enc.tile_offsets()[t];
      const uint32_t end = enc.tile_offsets()[t + 1];
      const uint64_t tile_bytes = 4ull * (end - begin);

      // Load-as-Sparse: NonZeros land in registers first (LDG.128), then the
      // extraction scatters them to shared memory.
      local.dram_bytes_read += tile_bytes + 8;  // +2 offset words
      local.ldg_instrs += (tile_bytes + 511) / 512 + 1;

      std::fill(tile.begin(), tile.end(), 0.0f);
      std::vector<uint32_t> scatter_addrs;
      scatter_addrs.reserve(32);
      for (uint32_t i = begin; i < end; ++i) {
        const uint16_t loc = TiledCslMatrix::EntryLocation(enc.nonzeros()[i]);
        tile[loc] = TiledCslMatrix::EntryValue(enc.nonzeros()[i]).ToFloat();
        // Warp-granular conflict simulation: 32 consecutive nonzeros are one
        // warp's scatter; their shared addresses are the dense positions.
        scatter_addrs.push_back(static_cast<uint32_t>(loc) * 2);
        if (scatter_addrs.size() == 32 || i + 1 == end) {
          const SmemAccessResult r = SimulateSmemAccess(scatter_addrs, 2);
          local.smem_transactions += r.transactions;
          local.smem_bank_conflicts += r.bank_conflicts;
          scatter_addrs.clear();
        }
      }
      local.smem_bytes_written += 2ull * (end - begin);

      // XTile load for this K slab (DRAM once, L2 afterwards).
      const uint64_t x_tile_bytes = static_cast<uint64_t>(format_.tile_cols) * n * 2;
      if (tr == 0) {
        local.dram_bytes_read += x_tile_bytes;
      }
      local.ldgsts_instrs += (x_tile_bytes + 511) / 512;
      local.smem_bytes_written += x_tile_bytes;

      // Compute-as-Dense: the whole tile goes through the Tensor Cores.
      const int64_t n8 = PadUp(std::max<int64_t>(n, 1), 8) / 8;
      local.mma_instrs += static_cast<uint64_t>(format_.tile_rows / 16) *
                          (format_.tile_cols / 16) * n8;
      for (int r = 0; r < format_.tile_rows; ++r) {
        const int64_t row = tr * format_.tile_rows + r;
        if (row >= m) {
          break;
        }
        for (int c = 0; c < format_.tile_cols; ++c) {
          const float wv = tile[static_cast<size_t>(r) * format_.tile_cols + c];
          const int64_t col = tc * format_.tile_cols + c;
          if (wv == 0.0f || col >= k) {
            continue;
          }
          const float* xrow = xf.data() + col * n;
          float* orow = &out.at(row, 0);
          for (int64_t j = 0; j < n; ++j) {
            orow[j] += wv * xrow[j];
          }
        }
      }
    }
    row_counters[tr] = local;
  });

  PerfCounters local;
  local.registers_per_thread = 168;  // Tiled-CSL staging inflates live registers
  for (int64_t tr = 0; tr < tiles_r; ++tr) {
    local += row_counters[tr];
  }
  local.flops = local.mma_instrs * 4096ull;
  local.ldsm_instrs = local.mma_instrs;
  local.dram_bytes_written += 2ull * m * n;

  if (counters != nullptr) {
    *counters += local;
  }
  return out;
}

KernelTraits FlashLlmSpmmKernel::Traits() const {
  KernelTraits t;
  t.name = "flash_llm";
  // The register-file round trip (Fig. 7) and extraction bank conflicts
  // (Fig. 12) cost Flash-LLM sustained bandwidth relative to SpInfer's
  // direct LDGSTS path.
  t.bw_eff = 0.87;
  // Flash-LLM's mma pipe is starved harder than SpInfer's at decode-phase N
  // (Fig. 12 reports visibly lower TC pipe utilization): the register-staged
  // extraction serializes with the Tensor Core stream. This compute floor is
  // what caps its speedup near 1.2x at 70% sparsity (Fig. 10).
  t.tc_eff_max = 0.66;
  t.tc_n_sat = 89.0;
  t.uses_tensor_core = true;
  t.decode_serial_fraction = 0.30;
  t.fixed_us = 6.0;
  return t;
}

KernelEstimate FlashLlmSpmmKernel::Estimate(const SpmmProblem& p,
                                            const DeviceSpec& dev) const {
  const int64_t tiles = (PadUp(p.m, format_.tile_rows) / format_.tile_rows) *
                        (PadUp(p.k, format_.tile_cols) / format_.tile_cols);
  const int64_t nnz = p.Nnz();
  const int64_t n8 = PadUp(std::max<int64_t>(p.n, 1), 8) / 8;

  KernelEstimate est;
  PerfCounters& c = est.counters;
  c.registers_per_thread = 168;
  c.dram_bytes_read = TiledCslStorageModel(tiles, nnz) + 4ull * tiles +
                      2ull * p.k * p.n;
  c.dram_bytes_written = 2ull * p.m * p.n;
  c.mma_instrs = static_cast<uint64_t>(PadUp(p.m, format_.tile_rows) / 16) *
                 (PadUp(p.k, format_.tile_cols) / 16) * n8;
  c.flops = c.mma_instrs * 4096ull;
  c.ldsm_instrs = c.mma_instrs;
  // Expected extraction bank conflicts: random 2B scatters of 32 lanes into
  // a 64-wide tile row region average about 1.8 extra wavefronts per warp
  // write (measured by the functional simulator; see tests).
  c.smem_bank_conflicts = static_cast<uint64_t>(nnz / 32) * 2;

  KernelWork work;
  work.dram_bytes_read = c.dram_bytes_read;
  work.dram_bytes_written = c.dram_bytes_written;
  work.flops = c.flops;
  // Extraction work: unpack + scatter per nonzero, serialized by conflicts.
  work.decode_ops = static_cast<uint64_t>(nnz) * 8;
  work.n = p.n;
  est.time = EstimateKernelTime(Traits(), work, dev);
  return est;
}

}  // namespace spinfer
