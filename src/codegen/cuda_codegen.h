// CUDA C++ source generation for the SpInfer-SpMM kernel.
//
// The simulator in src/core validates the algorithm; this module emits the
// corresponding real CUDA kernel source — the artifact a GPU user compiles
// with nvcc (sm_80+) and links against the TCA-BME containers this library
// produces. Generation is parameterized by the kernel configuration
// (GroupTile geometry, split-K, ablation switches) so the autotuner's
// choice can be materialized directly.
//
// The emitted kernel follows paper Alg. 1 statement for statement:
//   cp.async (LDGSTS) double-buffered GTile/XTile copies with two commit
//   groups, SMBD decoding via __popcll / lane-masked popcount (Alg. 2),
//   ldmatrix B-fragment loads, mma.sync.m16n8k16 PTX, and a split-K FP32
//   reduction epilogue.
//
// This environment has no nvcc, so the generated source is verified
// structurally (golden substrings, balanced braces, config plumbed into
// constants) rather than by execution; see tests/cuda_codegen_test.cc.
#pragma once

#include <string>

#include "src/core/kernel_config.h"

namespace spinfer {

// Full translation unit: launch parameters, device helpers, the kernel, the
// split-K reduction kernel, and a host-side launcher.
std::string GenerateSpInferCudaKernel(const SpInferKernelConfig& config);

// The device-side SMBD decode function alone (Alg. 2), for embedding into
// other kernels.
std::string GenerateSmbdDeviceFunction();

}  // namespace spinfer
