// SparseGPT-style one-shot pruning with OBS error compensation
// (Frantar & Alistarh, ICML'23) — one of the pruning algorithms the paper's
// introduction cites as producing the ~50%-sparsity models SpInfer serves.
//
// Per layer: build the Hessian H = X X^T + lambda*I from calibration
// activations, invert it once, then walk columns left to right. A pruned
// weight w_j is compensated into the remaining columns with the OBS update
//   w_{j+1:} -= (w_j / [H^-1]_{jj}) * [H^-1]_{j, j+1:},
// which is what lets SparseGPT reach 50-60% sparsity where plain magnitude
// pruning collapses. This implementation selects the pruning mask per row by
// the SparseGPT saliency w_j^2 / [H^-1]_{jj}, then applies the exact
// sequential compensation.
#pragma once

#include <vector>

#include "src/pruning/pruner.h"

namespace spinfer {

class SparseGptPruner final : public Pruner {
 public:
  // `calibration` holds `num_samples` rows of K features each (row-major):
  // the activations X^T seen by the layer. `lambda` is the percent-of-mean
  // dampening SparseGPT applies to keep H invertible.
  SparseGptPruner(std::vector<float> calibration, int64_t num_samples,
                  int64_t num_features, double lambda_fraction = 0.01);

  std::string name() const override { return "sparsegpt"; }

  HalfMatrix Prune(const HalfMatrix& w, double sparsity) const override;

 private:
  std::vector<float> calibration_;  // num_samples x num_features
  int64_t num_samples_;
  int64_t num_features_;
  double lambda_fraction_;
};

}  // namespace spinfer
