#include "src/pruning/linalg.h"

#include <cmath>

#include "src/util/check.h"

namespace spinfer {

bool CholeskyFactor(SquareMatrix* a) {
  const int64_t n = a->n();
  for (int64_t j = 0; j < n; ++j) {
    double diag = a->at(j, j);
    for (int64_t k = 0; k < j; ++k) {
      diag -= a->at(j, k) * a->at(j, k);
    }
    if (diag <= 0.0) {
      return false;
    }
    const double ljj = std::sqrt(diag);
    a->at(j, j) = ljj;
    for (int64_t i = j + 1; i < n; ++i) {
      double v = a->at(i, j);
      for (int64_t k = 0; k < j; ++k) {
        v -= a->at(i, k) * a->at(j, k);
      }
      a->at(i, j) = v / ljj;
    }
    // Zero the strictly-upper part so the result is a clean L.
    for (int64_t c = j + 1; c < n; ++c) {
      a->at(j, c) = 0.0;
    }
  }
  return true;
}

bool SpdInverse(const SquareMatrix& a, SquareMatrix* inv) {
  const int64_t n = a.n();
  SPINFER_CHECK_EQ(inv->n(), n);
  SquareMatrix l = a;
  if (!CholeskyFactor(&l)) {
    return false;
  }
  // Solve L L^T X = I column by column: forward then backward substitution.
  std::vector<double> y(static_cast<size_t>(n));
  for (int64_t col = 0; col < n; ++col) {
    // Forward: L y = e_col.
    for (int64_t i = 0; i < n; ++i) {
      double v = (i == col) ? 1.0 : 0.0;
      for (int64_t k = 0; k < i; ++k) {
        v -= l.at(i, k) * y[k];
      }
      y[i] = v / l.at(i, i);
    }
    // Backward: L^T x = y.
    for (int64_t i = n - 1; i >= 0; --i) {
      double v = y[i];
      for (int64_t k = i + 1; k < n; ++k) {
        v -= l.at(k, i) * inv->at(k, col);
      }
      inv->at(i, col) = v / l.at(i, i);
    }
  }
  return true;
}

}  // namespace spinfer
