#include "src/pruning/magnitude.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace spinfer {

HalfMatrix MagnitudePruner::Prune(const HalfMatrix& w, double sparsity) const {
  SPINFER_CHECK(sparsity >= 0.0 && sparsity <= 1.0);
  HalfMatrix out = w;
  const int64_t k = w.cols();
  const int64_t keep = k - static_cast<int64_t>(std::llround(sparsity * static_cast<double>(k)));
  // Rows are scored independently; row-parallel with per-row scratch.
  ParallelFor(0, w.rows(), [&](int64_t r) {
    std::vector<std::pair<float, int64_t>> scored(static_cast<size_t>(k));
    for (int64_t c = 0; c < k; ++c) {
      scored[c] = {std::fabs(w.at(r, c).ToFloat()), c};
    }
    // Partition so the `keep` largest magnitudes stay; ties resolve by index
    // for determinism.
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) {
        return a.first > b.first;
      }
      return a.second < b.second;
    });
    for (int64_t i = keep; i < k; ++i) {
      out.at(r, scored[i].second) = Half(0.0f);
    }
  });
  return out;
}

}  // namespace spinfer
