// N:M semi-structured pruning (paper §1/§2.3): keep at most N nonzeros in
// every group of M consecutive weights along the row. 2:4 is the pattern
// NVIDIA Sparse Tensor Cores accelerate and the structured half of SparTA's
// decomposition — an N:M-pruned matrix has an empty SparTA CSR residual.
#pragma once

#include "src/pruning/pruner.h"

namespace spinfer {

class NmPruner final : public Pruner {
 public:
  NmPruner(int n, int m);

  std::string name() const override;

  // Keeps the `n` largest-magnitude weights of every `m`-group; the
  // `sparsity` argument is ignored (the pattern fixes it at 1 - n/m) but
  // checked for consistency when nonzero.
  HalfMatrix Prune(const HalfMatrix& w, double sparsity) const override;

  double PatternSparsity() const { return 1.0 - static_cast<double>(n_) / m_; }

 private:
  int n_;
  int m_;
};

}  // namespace spinfer
