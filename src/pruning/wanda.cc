#include "src/pruning/wanda.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace spinfer {

WandaPruner::WandaPruner(std::vector<float> feature_norms)
    : feature_norms_(std::move(feature_norms)) {
  SPINFER_CHECK(!feature_norms_.empty());
}

HalfMatrix WandaPruner::Prune(const HalfMatrix& w, double sparsity) const {
  SPINFER_CHECK(sparsity >= 0.0 && sparsity <= 1.0);
  SPINFER_CHECK_EQ(static_cast<int64_t>(feature_norms_.size()), w.cols());
  HalfMatrix out = w;
  const int64_t k = w.cols();
  const int64_t keep = k - static_cast<int64_t>(std::llround(sparsity * static_cast<double>(k)));
  // Rows are scored independently; row-parallel with per-row scratch.
  ParallelFor(0, w.rows(), [&](int64_t r) {
    std::vector<std::pair<float, int64_t>> scored(static_cast<size_t>(k));
    for (int64_t c = 0; c < k; ++c) {
      scored[c] = {std::fabs(w.at(r, c).ToFloat()) * feature_norms_[c], c};
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) {
        return a.first > b.first;
      }
      return a.second < b.second;
    });
    for (int64_t i = keep; i < k; ++i) {
      out.at(r, scored[i].second) = Half(0.0f);
    }
  });
  return out;
}

}  // namespace spinfer
