// Magnitude pruning: drop the smallest-|w| weights per row.
#pragma once

#include "src/pruning/pruner.h"

namespace spinfer {

class MagnitudePruner final : public Pruner {
 public:
  std::string name() const override { return "magnitude"; }

  // Keeps the ceil((1-sparsity)*K) largest-magnitude entries of every row.
  HalfMatrix Prune(const HalfMatrix& w, double sparsity) const override;
};

}  // namespace spinfer
