// Calibration activations for activation-aware pruning.
//
// Wanda scores weights by |W| * ||X_j||_2, where ||X_j||_2 is the L2 norm of
// input feature j over a calibration set. The paper prunes real OPT models
// with WikiText calibration data; this repository substitutes synthetic
// activations whose per-feature scale statistics follow the heavy-tailed
// pattern observed in transformer hidden states (a few large-scale outlier
// features) — the property that makes Wanda differ from plain magnitude
// pruning.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/random.h"

namespace spinfer {

struct CalibrationConfig {
  int64_t num_features = 0;   // K of the layer being pruned
  int64_t num_samples = 128;  // calibration tokens
  // Fraction of features that are outliers, and their scale multiplier
  // (transformers exhibit ~0.1–1% outlier channels with ~10–100x scale).
  double outlier_fraction = 0.005;
  double outlier_scale = 20.0;
};

// Per-feature L2 norms of a synthetic calibration activation matrix.
std::vector<float> SyntheticFeatureNorms(const CalibrationConfig& cfg, Rng& rng);

}  // namespace spinfer
