#include "src/pruning/calibration.h"

#include <cmath>

#include "src/util/check.h"

namespace spinfer {

std::vector<float> SyntheticFeatureNorms(const CalibrationConfig& cfg, Rng& rng) {
  SPINFER_CHECK(cfg.num_features > 0 && cfg.num_samples > 0);
  std::vector<float> norms(static_cast<size_t>(cfg.num_features));
  for (auto& norm : norms) {
    // Sum of num_samples squared Gaussians has mean num_samples; sample the
    // norm directly from its concentration rather than materializing tokens.
    double sum_sq = 0.0;
    for (int s = 0; s < 8; ++s) {
      const double g = rng.Gaussian();
      sum_sq += g * g;
    }
    const double scale = rng.Bernoulli(cfg.outlier_fraction) ? cfg.outlier_scale : 1.0;
    norm = static_cast<float>(
        scale * std::sqrt(sum_sq / 8.0 * static_cast<double>(cfg.num_samples)));
  }
  return norms;
}

}  // namespace spinfer
