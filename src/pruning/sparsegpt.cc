#include "src/pruning/sparsegpt.h"

#include <algorithm>
#include <cmath>

#include "src/pruning/linalg.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace spinfer {

SparseGptPruner::SparseGptPruner(std::vector<float> calibration, int64_t num_samples,
                                 int64_t num_features, double lambda_fraction)
    : calibration_(std::move(calibration)),
      num_samples_(num_samples),
      num_features_(num_features),
      lambda_fraction_(lambda_fraction) {
  SPINFER_CHECK_EQ(static_cast<int64_t>(calibration_.size()),
                   num_samples_ * num_features_);
  SPINFER_CHECK(num_samples_ > 0 && num_features_ > 0);
}

HalfMatrix SparseGptPruner::Prune(const HalfMatrix& w, double sparsity) const {
  SPINFER_CHECK_EQ(w.cols(), num_features_);
  SPINFER_CHECK(sparsity >= 0.0 && sparsity <= 1.0);
  const int64_t k = w.cols();

  // Hessian H = X X^T (summed over calibration samples) with dampening.
  SquareMatrix h(k);
  for (int64_t s = 0; s < num_samples_; ++s) {
    const float* row = calibration_.data() + s * k;
    for (int64_t i = 0; i < k; ++i) {
      const double xi = row[i];
      for (int64_t j = i; j < k; ++j) {
        h.at(i, j) += xi * row[j];
      }
    }
  }
  double mean_diag = 0.0;
  for (int64_t i = 0; i < k; ++i) {
    mean_diag += h.at(i, i);
  }
  mean_diag /= static_cast<double>(k);
  const double lambda = std::max(lambda_fraction_ * mean_diag, 1e-8);
  for (int64_t i = 0; i < k; ++i) {
    h.at(i, i) += lambda;
    for (int64_t j = i + 1; j < k; ++j) {
      h.at(j, i) = h.at(i, j);  // symmetrize the upper-triangle accumulation
    }
  }

  SquareMatrix hinv(k);
  SPINFER_CHECK_MSG(SpdInverse(h, &hinv), "dampened Hessian not SPD");

  const int64_t keep = k - static_cast<int64_t>(std::llround(sparsity * static_cast<double>(k)));
  HalfMatrix out = w;

  // The shared Hessian inverse is read-only from here on; each row's OBS
  // column sweep is independent, so rows run in parallel with per-row
  // scratch buffers.
  ParallelFor(0, w.rows(), [&](int64_t r) {
    std::vector<double> row(static_cast<size_t>(k));
    std::vector<std::pair<double, int64_t>> scored(static_cast<size_t>(k));
    std::vector<bool> pruned(static_cast<size_t>(k));
    for (int64_t c = 0; c < k; ++c) {
      row[c] = w.at(r, c).ToFloat();
      // SparseGPT saliency: error incurred by removing w_c under OBS.
      scored[c] = {row[c] * row[c] / hinv.at(c, c), c};
    }
    std::sort(scored.begin(), scored.end());
    for (int64_t i = 0; i < k - keep; ++i) {
      pruned[scored[i].second] = true;
    }
    // Sequential OBS compensation, left to right.
    for (int64_t j = 0; j < k; ++j) {
      if (!pruned[j] || row[j] == 0.0) {
        continue;
      }
      const double err = row[j] / hinv.at(j, j);
      for (int64_t l = j + 1; l < k; ++l) {
        if (!pruned[l]) {
          row[l] -= err * hinv.at(j, l);
        }
      }
      row[j] = 0.0;
    }
    for (int64_t c = 0; c < k; ++c) {
      if (pruned[c]) {
        out.at(r, c) = Half(0.0f);
      } else {
        Half v(static_cast<float>(row[c]));
        if (row[c] != 0.0 && v.IsZero()) {
          // A surviving weight whose compensated value underflows FP16 must
          // stay nonzero so the stored mask matches the selected one.
          v = Half(row[c] >= 0.0 ? 6.0e-5f : -6.0e-5f);
        }
        out.at(r, c) = v;
      }
    }
  });
  return out;
}

}  // namespace spinfer
