#include "src/pruning/nm_pruner.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/util/check.h"

namespace spinfer {

NmPruner::NmPruner(int n, int m) : n_(n), m_(m) {
  SPINFER_CHECK(m > 0 && n > 0 && n <= m);
}

std::string NmPruner::name() const {
  return std::to_string(n_) + ":" + std::to_string(m_);
}

HalfMatrix NmPruner::Prune(const HalfMatrix& w, double sparsity) const {
  if (sparsity != 0.0) {
    SPINFER_CHECK_MSG(std::fabs(sparsity - PatternSparsity()) < 1e-9,
                      "requested sparsity conflicts with the N:M pattern");
  }
  HalfMatrix out = w;
  std::vector<std::pair<float, int>> group(static_cast<size_t>(m_));
  for (int64_t r = 0; r < w.rows(); ++r) {
    for (int64_t g0 = 0; g0 < w.cols(); g0 += m_) {
      const int len = static_cast<int>(std::min<int64_t>(m_, w.cols() - g0));
      for (int i = 0; i < len; ++i) {
        group[i] = {std::fabs(w.at(r, g0 + i).ToFloat()), i};
      }
      std::sort(group.begin(), group.begin() + len,
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) {
                    return a.first > b.first;
                  }
                  return a.second < b.second;
                });
      for (int i = n_; i < len; ++i) {
        out.at(r, g0 + group[i].second) = Half(0.0f);
      }
    }
  }
  return out;
}

}  // namespace spinfer
