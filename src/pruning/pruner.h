// Unstructured weight pruning (paper §2.3 / §5.2).
//
// SpInfer consumes the *output* of pruning algorithms — an unstructured
// sparse weight matrix at a target sparsity — and is agnostic to which
// algorithm produced it. This module implements the two families the paper
// uses: magnitude pruning and Wanda (activation-aware; the paper's
// end-to-end evaluation prunes OPT with Wanda at 60%).
#pragma once

#include <memory>
#include <string>

#include "src/numeric/matrix.h"

namespace spinfer {

class Pruner {
 public:
  virtual ~Pruner() = default;

  virtual std::string name() const = 0;

  // Returns a copy of `w` with a `sparsity` fraction of entries zeroed.
  // The selection is per-output-row (uniform layer sparsity), matching
  // Wanda's comparison-group choice.
  virtual HalfMatrix Prune(const HalfMatrix& w, double sparsity) const = 0;
};

// Zeroes entries uniformly at random — the mask-statistics workload used by
// kernel benches (matches the i.i.d. assumption of paper Eq. 4).
class RandomPruner final : public Pruner {
 public:
  explicit RandomPruner(uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "random"; }
  HalfMatrix Prune(const HalfMatrix& w, double sparsity) const override;

 private:
  uint64_t seed_;
};

}  // namespace spinfer
