// Small dense linear algebra for the SparseGPT-style pruner: symmetric
// positive-definite Cholesky factorization and inversion in double
// precision. K is a layer's input dimension (a few thousand at most in the
// paper's models); O(K^3) once per layer is what SparseGPT itself pays.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spinfer {

// Row-major dense square double matrix.
class SquareMatrix {
 public:
  explicit SquareMatrix(int64_t n) : n_(n), data_(static_cast<size_t>(n * n), 0.0) {}

  int64_t n() const { return n_; }
  double& at(int64_t r, int64_t c) { return data_[r * n_ + c]; }
  double at(int64_t r, int64_t c) const { return data_[r * n_ + c]; }

 private:
  int64_t n_;
  std::vector<double> data_;
};

// In-place lower Cholesky factorization A = L L^T. Returns false if A is not
// positive definite (a zero/negative pivot), leaving A partially modified.
bool CholeskyFactor(SquareMatrix* a);

// Inverse of an SPD matrix via Cholesky. Returns false if not SPD.
bool SpdInverse(const SquareMatrix& a, SquareMatrix* inv);

}  // namespace spinfer
