// Wanda pruning (Sun et al., ICLR'24) — the algorithm the paper's end-to-end
// evaluation uses at 60% sparsity on OPT (§5.2).
//
// Score(i, j) = |W[i][j]| * ||X_j||_2, pruned per output row (comparison
// group = row), no retraining.
#pragma once

#include <vector>

#include "src/pruning/pruner.h"

namespace spinfer {

class WandaPruner final : public Pruner {
 public:
  // `feature_norms` holds ||X_j||_2 for each of the K input features.
  explicit WandaPruner(std::vector<float> feature_norms);

  std::string name() const override { return "wanda"; }

  HalfMatrix Prune(const HalfMatrix& w, double sparsity) const override;

 private:
  std::vector<float> feature_norms_;
};

}  // namespace spinfer
