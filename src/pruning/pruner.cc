#include "src/pruning/pruner.h"

#include "src/util/check.h"
#include "src/util/random.h"

namespace spinfer {

HalfMatrix RandomPruner::Prune(const HalfMatrix& w, double sparsity) const {
  SPINFER_CHECK(sparsity >= 0.0 && sparsity <= 1.0);
  Rng rng(seed_);
  HalfMatrix out = w;
  for (int64_t i = 0; i < out.size(); ++i) {
    if (rng.Bernoulli(sparsity)) {
      out.data()[i] = Half(0.0f);
    }
  }
  return out;
}

}  // namespace spinfer
