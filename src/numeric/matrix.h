// Host-side dense matrices and the reference GEMM.
//
// Conventions follow the paper (§2.1): the weight matrix W is M×K, the
// activation matrix X is K×N, and O = W·X is M×N. Weight matrices are stored
// row-major in FP16; accumulations happen in FP32, matching the Tensor Core
// mma contract (f16 inputs, f32 accumulator).
#pragma once

#include <cstdint>
#include <vector>

#include "src/numeric/fp16.h"
#include "src/util/random.h"

namespace spinfer {

// Row-major M×K matrix of FP16 values.
class HalfMatrix {
 public:
  HalfMatrix() = default;
  HalfMatrix(int64_t rows, int64_t cols);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }

  Half& at(int64_t r, int64_t c) { return data_[r * cols_ + c]; }
  Half at(int64_t r, int64_t c) const { return data_[r * cols_ + c]; }

  const Half* data() const { return data_.data(); }
  Half* data() { return data_.data(); }

  // Re-shapes in place; element values are unspecified afterwards. Storage
  // only grows (vector capacity is kept), so scratch matrices cycled through
  // repeating shapes stop allocating once they have seen their largest size.
  void Reshape(int64_t rows, int64_t cols);
  // Backing capacity in elements; stable capacity across calls is how
  // workspace-reuse tests prove a path performs no hidden allocations.
  int64_t capacity() const { return static_cast<int64_t>(data_.capacity()); }

  // Number of non-zero entries (zero = bit pattern +/-0).
  int64_t CountNonZeros() const;

  // Fraction of entries that are zero.
  double Sparsity() const;

  // Builders -----------------------------------------------------------------

  // Gaussian(0, stddev) entries; deterministic for a given rng state.
  static HalfMatrix Random(int64_t rows, int64_t cols, Rng& rng, float stddev = 1.0f);

  // Gaussian entries with each entry independently zeroed with probability
  // `sparsity` — the i.i.d. mask model the paper's analysis assumes (Eq. 4).
  static HalfMatrix RandomSparse(int64_t rows, int64_t cols, double sparsity, Rng& rng);

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<Half> data_;
};

// Row-major matrix of FP32 values (outputs / accumulators).
class FloatMatrix {
 public:
  FloatMatrix() = default;
  FloatMatrix(int64_t rows, int64_t cols);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }

  float& at(int64_t r, int64_t c) { return data_[r * cols_ + c]; }
  float at(int64_t r, int64_t c) const { return data_[r * cols_ + c]; }

  const float* data() const { return data_.data(); }
  float* data() { return data_.data(); }

  void Fill(float v);

  // Same grow-only reshape contract as HalfMatrix::Reshape.
  void Reshape(int64_t rows, int64_t cols);
  int64_t capacity() const { return static_cast<int64_t>(data_.capacity()); }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<float> data_;
};

// Exact elementwise half→float conversion of a whole matrix. Hot kernels
// pre-convert their activation operand once instead of converting each
// element at every use; results are unchanged because the conversion is
// deterministic and exact.
FloatMatrix ToFloatMatrix(const HalfMatrix& m);

// Same conversion into caller-owned storage of at least m.size() floats —
// the allocation-free form workspace paths use.
void ToFloatInto(const HalfMatrix& m, float* out);

// Reference dense GEMM: O = W(MxK) * X(KxN), FP16 inputs, FP32 accumulation,
// plain triple loop. This is the correctness oracle for every kernel.
FloatMatrix ReferenceGemm(const HalfMatrix& w, const HalfMatrix& x);

}  // namespace spinfer
