// Software IEEE 754 binary16 ("half precision") implementation.
//
// The paper's kernels operate on FP16 weights/activations with FP32
// accumulation (the Tensor Core mma.m16n8k16 contract). This environment has
// no hardware half type we can rely on portably, so Half stores the 16-bit
// pattern and converts to/from float with round-to-nearest-even — the same
// semantics as CUDA's __half.
#pragma once

#include <cstdint>

namespace spinfer {

// A 16-bit IEEE binary16 value. POD; exactly 2 bytes, safe to memcpy into the
// packed Values arrays of the sparse formats.
class Half {
 public:
  Half() = default;

  // Converts from float with round-to-nearest-even; overflow maps to +/-inf.
  explicit Half(float f) : bits_(FromFloat(f)) {}

  // Reinterprets a raw bit pattern.
  static Half FromBits(uint16_t bits) {
    Half h;
    h.bits_ = bits;
    return h;
  }

  float ToFloat() const { return ToFloatImpl(bits_); }
  uint16_t bits() const { return bits_; }

  bool IsZero() const { return (bits_ & 0x7fff) == 0; }
  bool IsNan() const { return (bits_ & 0x7c00) == 0x7c00 && (bits_ & 0x03ff) != 0; }
  bool IsInf() const { return (bits_ & 0x7fff) == 0x7c00; }

  // Equality is bitwise except that +0 == -0 (matching float semantics for the
  // common sparse-format roundtrip checks); NaN != NaN.
  friend bool operator==(Half a, Half b) {
    if (a.IsNan() || b.IsNan()) {
      return false;
    }
    if (a.IsZero() && b.IsZero()) {
      return true;
    }
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(Half a, Half b) { return !(a == b); }

 private:
  static uint16_t FromFloat(float f);
  static float ToFloatImpl(uint16_t h);

  uint16_t bits_ = 0;
};

static_assert(sizeof(Half) == 2, "Half must be exactly 16 bits");

}  // namespace spinfer
