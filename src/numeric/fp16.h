// Software IEEE 754 binary16 ("half precision") implementation.
//
// The paper's kernels operate on FP16 weights/activations with FP32
// accumulation (the Tensor Core mma.m16n8k16 contract). This environment has
// no hardware half type we can rely on portably, so Half stores the 16-bit
// pattern and converts to/from float with round-to-nearest-even — the same
// semantics as CUDA's __half.
//
// Fast path: half→float is the hottest conversion in the functional
// simulator (every gathered MMA operand passes through it), so ToFloat() is
// a single load from a 65,536-entry lookup table. The table is built at
// compile time from the bit-twiddled reference conversion below, which stays
// available (fp16_detail::HalfToFloatBits) as the oracle the exhaustive
// equivalence test in tests/fp16_test.cc compares against. float→half is the
// same RNE bit algorithm as before, inlined here so hot encoders avoid the
// call.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace spinfer {
namespace fp16_detail {

// Rounds the low `shift` bits of `m` away (round-to-nearest-even) and returns
// m >> shift (+1 if rounded up). Requires 1 <= shift <= 31.
constexpr uint32_t ShiftRightRne(uint32_t m, int shift) {
  const uint32_t kept = m >> shift;
  const uint32_t half = 1u << (shift - 1);
  const uint32_t rem = m & ((half << 1) - 1u);
  if (rem > half || (rem == half && (kept & 1u))) {
    return kept + 1;
  }
  return kept;
}

// Reference bit-twiddled half→float conversion (exact for every encoding,
// NaN payloads included). The lookup table is generated from this function;
// it is not the runtime hot path.
constexpr float HalfToFloatBits(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1fu;
  const uint32_t mant = h & 0x3ffu;

  uint32_t out = 0;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // +/- zero
    } else {
      // Subnormal: normalize into float's representation.
      int e = 0;
      uint32_t m = mant;
      while ((m & 0x400u) == 0) {
        m <<= 1;
        ++e;
      }
      m &= 0x3ffu;
      out = sign | (static_cast<uint32_t>(113 - e) << 23) | (m << 13);
    }
  } else if (exp == 31) {
    out = sign | 0x7f800000u | (mant << 13);  // inf / nan
  } else {
    out = sign | ((exp + 112) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(out);
}

// float→half with round-to-nearest-even; overflow maps to +/-inf, float
// subnormals (< 2^-126, far below half's 2^-24 ulp) flush to zero, NaNs are
// quieted.
constexpr uint16_t FloatToHalfBits(float f) {
  const uint32_t x = std::bit_cast<uint32_t>(f);

  const uint16_t sign = static_cast<uint16_t>((x >> 16) & 0x8000u);
  const uint32_t biased_exp = (x >> 23) & 0xffu;
  const uint32_t mant = x & 0x7fffffu;

  if (biased_exp == 0xff) {
    // Inf or NaN; quiet any NaN.
    return mant != 0 ? static_cast<uint16_t>(sign | 0x7e00u)
                     : static_cast<uint16_t>(sign | 0x7c00u);
  }
  if (biased_exp == 0) {
    // Float subnormal: magnitude < 2^-126, far below half's smallest
    // subnormal (2^-24); rounds to zero.
    return sign;
  }

  const int e = static_cast<int>(biased_exp) - 127;  // unbiased exponent
  if (e >= 16) {
    return static_cast<uint16_t>(sign | 0x7c00u);  // overflow -> inf
  }
  if (e >= -14) {
    // Normal half candidate. Rounding may carry into the exponent (including
    // into infinity at e == 15), which the bit layout handles naturally.
    // ShiftRightRne is applied to the full 24-bit significand (implicit bit
    // included), so its result lies in [2^10, 2^11]; subtracting 2^10 leaves
    // the mantissa field, and a rounding carry to exactly 2^11 propagates
    // into the exponent via the addition — the correct RNE carry behaviour.
    uint32_t val = (static_cast<uint32_t>(e + 15) << 10) +
                   ShiftRightRne(mant | 0x800000u, 13) - (1u << 10);
    if (val >= 0x7c00u) {
      val = 0x7c00u;
    }
    return static_cast<uint16_t>(sign | val);
  }
  // Subnormal half: result = round(1.mant * 2^e / 2^-24) in units of 2^-24.
  // The total right shift of the 24-bit significand is 13 + (-14 - e).
  const int shift = 13 + (-14 - e);
  if (shift > 31) {
    return sign;  // far underflow
  }
  const uint32_t significand = mant | 0x800000u;
  const uint32_t val = ShiftRightRne(significand, shift);
  // val can reach 0x400 (rounds up to the smallest normal); layout handles it.
  return static_cast<uint16_t>(sign | val);
}

// 65,536-entry half→float table, constant-initialized in fp16.cc from
// HalfToFloatBits over every encoding. 256 KiB of rodata; the working set of
// a decode loop touches only the encodings its values actually use.
extern const std::array<float, 65536> kHalfToFloatLut;

}  // namespace fp16_detail

// A 16-bit IEEE binary16 value. POD; exactly 2 bytes, safe to memcpy into the
// packed Values arrays of the sparse formats.
class Half {
 public:
  Half() = default;

  // Converts from float with round-to-nearest-even; overflow maps to +/-inf.
  explicit constexpr Half(float f) : bits_(fp16_detail::FloatToHalfBits(f)) {}

  // Reinterprets a raw bit pattern.
  static constexpr Half FromBits(uint16_t bits) {
    Half h;
    h.bits_ = bits;
    return h;
  }

  // Table-driven: one indexed load, bit-identical to the reference
  // conversion for all 65,536 encodings (tests/fp16_test.cc proves it).
  float ToFloat() const { return fp16_detail::kHalfToFloatLut[bits_]; }
  constexpr uint16_t bits() const { return bits_; }

  constexpr bool IsZero() const { return (bits_ & 0x7fff) == 0; }
  constexpr bool IsNan() const {
    return (bits_ & 0x7c00) == 0x7c00 && (bits_ & 0x03ff) != 0;
  }
  constexpr bool IsInf() const { return (bits_ & 0x7fff) == 0x7c00; }

  // Equality is bitwise except that +0 == -0 (matching float semantics for the
  // common sparse-format roundtrip checks); NaN != NaN.
  friend constexpr bool operator==(Half a, Half b) {
    if (a.IsNan() || b.IsNan()) {
      return false;
    }
    if (a.IsZero() && b.IsZero()) {
      return true;
    }
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator!=(Half a, Half b) { return !(a == b); }

 private:
  uint16_t bits_ = 0;
};

static_assert(sizeof(Half) == 2, "Half must be exactly 16 bits");

}  // namespace spinfer
