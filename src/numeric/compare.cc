#include "src/numeric/compare.h"

#include <cmath>
#include <sstream>

#include "src/util/check.h"

namespace spinfer {

std::string CompareResult::ToString() const {
  std::ostringstream oss;
  oss << (ok ? "OK" : "MISMATCH") << " max_abs_err=" << max_abs_err
      << " max_rel_err=" << max_rel_err;
  if (!ok) {
    oss << " first_bad=(" << first_bad_row << "," << first_bad_col << ")";
  }
  return oss.str();
}

CompareResult CompareMatrices(const FloatMatrix& got, const FloatMatrix& want,
                              double rtol, double atol) {
  SPINFER_CHECK_EQ(got.rows(), want.rows());
  SPINFER_CHECK_EQ(got.cols(), want.cols());
  CompareResult res;
  for (int64_t r = 0; r < got.rows(); ++r) {
    for (int64_t c = 0; c < got.cols(); ++c) {
      const double g = got.at(r, c);
      const double w = want.at(r, c);
      const double abs_err = std::fabs(g - w);
      const double rel_err = abs_err / (std::fabs(w) + 1e-30);
      res.max_abs_err = std::max(res.max_abs_err, abs_err);
      if (std::fabs(w) > atol) {
        res.max_rel_err = std::max(res.max_rel_err, rel_err);
      }
      if (abs_err > atol + rtol * std::fabs(w)) {
        if (res.ok) {
          res.first_bad_row = r;
          res.first_bad_col = c;
        }
        res.ok = false;
      }
    }
  }
  return res;
}

}  // namespace spinfer
