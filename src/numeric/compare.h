// Tolerant comparison of kernel outputs against the reference GEMM.
//
// Different kernels sum the K dimension in different orders (split-K, tile
// order), so FP32 results differ by rounding. Comparisons use a relative
// error threshold scaled by the reduction length.
#pragma once

#include <string>

#include "src/numeric/matrix.h"

namespace spinfer {

struct CompareResult {
  bool ok = true;
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
  int64_t first_bad_row = -1;
  int64_t first_bad_col = -1;

  std::string ToString() const;
};

// Compares `got` to `want` entry-wise. An entry passes if
//   |got - want| <= atol + rtol * |want|.
CompareResult CompareMatrices(const FloatMatrix& got, const FloatMatrix& want,
                              double rtol = 1e-3, double atol = 1e-2);

}  // namespace spinfer
