#include "src/numeric/fp16.h"

namespace spinfer {
namespace fp16_detail {
namespace {

constexpr std::array<float, 65536> BuildHalfToFloatLut() {
  std::array<float, 65536> lut{};
  for (uint32_t bits = 0; bits <= 0xffffu; ++bits) {
    lut[bits] = HalfToFloatBits(static_cast<uint16_t>(bits));
  }
  return lut;
}

}  // namespace

// Constant-initialized (the initializer is a constant expression), so the
// table is ready before any static constructor runs — no init-order hazard
// for code that converts halves during startup.
alignas(64) const std::array<float, 65536> kHalfToFloatLut = BuildHalfToFloatLut();

}  // namespace fp16_detail
}  // namespace spinfer
