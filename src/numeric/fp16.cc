#include "src/numeric/fp16.h"

#include <cstring>

namespace spinfer {
namespace {

// Rounds the low `shift` bits of `m` away (round-to-nearest-even) and returns
// m >> shift (+1 if rounded up). Requires 1 <= shift <= 31.
uint32_t ShiftRightRne(uint32_t m, int shift) {
  const uint32_t kept = m >> shift;
  const uint32_t half = 1u << (shift - 1);
  const uint32_t rem = m & ((half << 1) - 1u);
  if (rem > half || (rem == half && (kept & 1u))) {
    return kept + 1;
  }
  return kept;
}

}  // namespace

uint16_t Half::FromFloat(float f) {
  uint32_t x;
  std::memcpy(&x, &f, sizeof(x));

  const uint16_t sign = static_cast<uint16_t>((x >> 16) & 0x8000u);
  const uint32_t biased_exp = (x >> 23) & 0xffu;
  const uint32_t mant = x & 0x7fffffu;

  if (biased_exp == 0xff) {
    // Inf or NaN; quiet any NaN.
    return mant != 0 ? static_cast<uint16_t>(sign | 0x7e00u)
                     : static_cast<uint16_t>(sign | 0x7c00u);
  }
  if (biased_exp == 0) {
    // Float subnormal: magnitude < 2^-126, far below half's smallest
    // subnormal (2^-24); rounds to zero.
    return sign;
  }

  const int e = static_cast<int>(biased_exp) - 127;  // unbiased exponent
  if (e >= 16) {
    return static_cast<uint16_t>(sign | 0x7c00u);  // overflow -> inf
  }
  if (e >= -14) {
    // Normal half candidate. Rounding may carry into the exponent (including
    // into infinity at e == 15), which the bit layout handles naturally.
    // ShiftRightRne is applied to the full 24-bit significand (implicit bit
    // included), so its result lies in [2^10, 2^11]; subtracting 2^10 leaves
    // the mantissa field, and a rounding carry to exactly 2^11 propagates
    // into the exponent via the addition — the correct RNE carry behaviour.
    uint32_t val = (static_cast<uint32_t>(e + 15) << 10) +
                   ShiftRightRne(mant | 0x800000u, 13) - (1u << 10);
    if (val >= 0x7c00u) {
      val = 0x7c00u;
    }
    return static_cast<uint16_t>(sign | val);
  }
  // Subnormal half: result = round(1.mant * 2^e / 2^-24) in units of 2^-24.
  // The total right shift of the 24-bit significand is 13 + (-14 - e).
  const int shift = 13 + (-14 - e);
  if (shift > 31) {
    return sign;  // far underflow
  }
  const uint32_t significand = mant | 0x800000u;
  const uint32_t val = ShiftRightRne(significand, shift);
  // val can reach 0x400 (rounds up to the smallest normal); layout handles it.
  return static_cast<uint16_t>(sign | val);
}

float Half::ToFloatImpl(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1fu;
  const uint32_t mant = h & 0x3ffu;

  uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // +/- zero
    } else {
      // Subnormal: normalize into float's representation.
      int e = 0;
      uint32_t m = mant;
      while ((m & 0x400u) == 0) {
        m <<= 1;
        ++e;
      }
      m &= 0x3ffu;
      out = sign | (static_cast<uint32_t>(113 - e) << 23) | (m << 13);
    }
  } else if (exp == 31) {
    out = sign | 0x7f800000u | (mant << 13);  // inf / nan
  } else {
    out = sign | ((exp + 112) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &out, sizeof(f));
  return f;
}

}  // namespace spinfer
