#include "src/numeric/matrix.h"

#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace spinfer {

HalfMatrix::HalfMatrix(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols)) {
  SPINFER_CHECK(rows >= 0 && cols >= 0);
}

int64_t HalfMatrix::CountNonZeros() const {
  int64_t nnz = 0;
  for (const Half& h : data_) {
    if (!h.IsZero()) {
      ++nnz;
    }
  }
  return nnz;
}

void HalfMatrix::Reshape(int64_t rows, int64_t cols) {
  SPINFER_CHECK(rows >= 0 && cols >= 0);
  rows_ = rows;
  cols_ = cols;
  data_.resize(static_cast<size_t>(rows * cols));
}

double HalfMatrix::Sparsity() const {
  if (size() == 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(CountNonZeros()) / static_cast<double>(size());
}

HalfMatrix HalfMatrix::Random(int64_t rows, int64_t cols, Rng& rng, float stddev) {
  HalfMatrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = Half(static_cast<float>(rng.Gaussian()) * stddev);
  }
  return m;
}

HalfMatrix HalfMatrix::RandomSparse(int64_t rows, int64_t cols, double sparsity, Rng& rng) {
  SPINFER_CHECK(sparsity >= 0.0 && sparsity <= 1.0);
  HalfMatrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    if (rng.Bernoulli(sparsity)) {
      m.data()[i] = Half(0.0f);
    } else {
      float v = static_cast<float>(rng.Gaussian());
      // A pruned-in-place weight must stay non-zero so the mask is exactly
      // what the Bernoulli draw decided; nudge the (measure-zero) exact zeros.
      if (Half(v).IsZero()) {
        v = 0.001f;
      }
      m.data()[i] = Half(v);
    }
  }
  return m;
}

FloatMatrix::FloatMatrix(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), 0.0f) {
  SPINFER_CHECK(rows >= 0 && cols >= 0);
}

void FloatMatrix::Fill(float v) {
  for (float& f : data_) {
    f = v;
  }
}

void FloatMatrix::Reshape(int64_t rows, int64_t cols) {
  SPINFER_CHECK(rows >= 0 && cols >= 0);
  rows_ = rows;
  cols_ = cols;
  data_.resize(static_cast<size_t>(rows * cols));
}

FloatMatrix ToFloatMatrix(const HalfMatrix& m) {
  FloatMatrix out(m.rows(), m.cols());
  ToFloatInto(m, out.data());
  return out;
}

void ToFloatInto(const HalfMatrix& m, float* out) {
  for (int64_t i = 0; i < m.size(); ++i) {
    out[i] = m.data()[i].ToFloat();
  }
}

FloatMatrix ReferenceGemm(const HalfMatrix& w, const HalfMatrix& x) {
  SPINFER_CHECK_EQ(w.cols(), x.rows());
  const int64_t m = w.rows();
  const int64_t k = w.cols();
  const int64_t n = x.cols();
  FloatMatrix out(m, n);
  // Convert X to float once up front: every output row walks the whole of X,
  // so converting per use would redo the same conversion M times. The
  // conversion is exact, so results are unchanged.
  const FloatMatrix xf = ToFloatMatrix(x);
  // Row-parallel: each output row keeps its sequential accumulation order,
  // so the reference result is bit-identical for any thread count.
  ParallelFor(0, m, [&](int64_t i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float wv = w.at(i, kk).ToFloat();
      if (wv == 0.0f) {
        continue;  // sparse-friendly; result identical because 0*x contributes 0
      }
      const float* xrow = xf.data() + kk * n;
      float* orow = &out.at(i, 0);
      for (int64_t j = 0; j < n; ++j) {
        orow[j] += wv * xrow[j];
      }
    }
  });
  return out;
}

}  // namespace spinfer
