// Roofline analysis of GEMM vs SpMM (paper §3.2.2, Eqs. 6-8, Fig. 4).
//
// Compute Intensity (CI) is FLOPs per FP16-element of memory traffic, in the
// paper's normalized units: CI_GEMM = M*N / (M + N) for a K-contracted
// product (the K factor cancels). SpMM's weight traffic shrinks by the
// format's compression ratio, so CI_SpMM = M*N / (M/CR + N); the optimum
// assumes zero indexing overhead: CI_opt = M*N / (M*(1-s) + N).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/gpusim/device_spec.h"

namespace spinfer {

// Eq. 6.
double CiGemm(int64_t m, int64_t n);

// Eq. 7: CI given a format's compression ratio.
double CiSpmm(int64_t m, int64_t n, double compression_ratio);

// Eq. 8: CI with zero indexing overhead at sparsity s.
double CiOptimal(int64_t m, int64_t n, double sparsity);

// A point on the roofline: compute intensity (FLOP per byte) and attainable
// performance (TFLOP/s) on a device.
struct RooflinePoint {
  std::string label;
  double flops_per_byte = 0.0;
  double attainable_tflops = 0.0;
  bool memory_bound = false;
};

// Attainable performance min(CI * BW, peak) for the device's Tensor Core
// roofline. `flops_per_byte` is true arithmetic intensity in FLOP/B.
RooflinePoint RooflineAttainable(const std::string& label, double flops_per_byte,
                                 const DeviceSpec& dev);

// The ridge point (FLOP/B) where the device transitions from memory- to
// compute-bound.
double RooflineRidge(const DeviceSpec& dev);

}  // namespace spinfer
