#include "src/roofline/roofline.h"

#include <algorithm>

#include "src/util/check.h"

namespace spinfer {

double CiGemm(int64_t m, int64_t n) {
  SPINFER_CHECK(m > 0 && n > 0);
  return static_cast<double>(m) * static_cast<double>(n) /
         (static_cast<double>(m) + static_cast<double>(n));
}

double CiSpmm(int64_t m, int64_t n, double compression_ratio) {
  SPINFER_CHECK(m > 0 && n > 0 && compression_ratio > 0.0);
  return static_cast<double>(m) * static_cast<double>(n) /
         (static_cast<double>(m) / compression_ratio + static_cast<double>(n));
}

double CiOptimal(int64_t m, int64_t n, double sparsity) {
  SPINFER_CHECK(m > 0 && n > 0);
  SPINFER_CHECK(sparsity >= 0.0 && sparsity < 1.0);
  return static_cast<double>(m) * static_cast<double>(n) /
         (static_cast<double>(m) * (1.0 - sparsity) + static_cast<double>(n));
}

RooflinePoint RooflineAttainable(const std::string& label, double flops_per_byte,
                                 const DeviceSpec& dev) {
  RooflinePoint p;
  p.label = label;
  p.flops_per_byte = flops_per_byte;
  const double mem_limited = flops_per_byte * dev.dram_bw_gbs / 1e3;  // TFLOP/s
  p.attainable_tflops = std::min(mem_limited, dev.tc_fp16_tflops);
  p.memory_bound = mem_limited < dev.tc_fp16_tflops;
  return p;
}

double RooflineRidge(const DeviceSpec& dev) {
  return dev.tc_fp16_tflops * 1e3 / dev.dram_bw_gbs;  // FLOP per byte
}

}  // namespace spinfer
