// Figure 13: end-to-end inference of OPT-13B and OPT-30B on RTX4090 GPUs
// (PCIe platform) — latency across batch sizes, output lengths and GPU
// counts for SpInfer vs Flash-LLM vs FasterTransformer vs DeepSpeed, with
// OOM patterns.
#include "bench/bench_util.h"
#include "bench/e2e_common.h"

int main(int argc, char** argv) {
  using namespace spinfer;
  BenchInit(argc, argv);
  const DeviceSpec dev = Rtx4090();
  PrintHeader("Figure 13: end-to-end inference on RTX4090 (modeled; Wanda 60%)");

  RunE2eSweep(Opt13B(), dev, /*num_gpus=*/1, {8, 16, 32}, {64, 128, 256, 512, 1024});
  RunE2eSweep(Opt13B(), dev, /*num_gpus=*/2, {8, 16, 32}, {64, 128, 256, 512, 1024});
  RunE2eSweep(Opt30B(), dev, /*num_gpus=*/2, {8, 16, 32}, {64, 128, 256, 512, 1024});
  RunE2eSweep(Opt30B(), dev, /*num_gpus=*/4, {8, 16, 32}, {64, 128, 256, 512, 1024});

  std::printf(
      "\nPaper reference: SpInfer averages 1.35x over Flash-LLM, 1.42x over FT,\n"
      "1.49x over DS on RTX4090; Flash-LLM OOMs for OPT-30B on 2 GPUs at every\n"
      "batch size, while SpInfer reaches batch 16 x 512 tokens.\n");
  return 0;
}
