// Extension bench: disaggregated prefill/decode deployment (paper §6).
//
// Sizes a Splitwise/DistServe-style deployment for OPT-13B at increasing
// request rates: prefill instances (2x RTX4090, compute-bound — SpInfer is
// neutral here per Fig. 16) feed decode instances over a 25 GB/s fabric.
// SpInfer's compressed weights let a decode instance be a SINGLE GPU with a
// large KV budget, which is where the GPU-count savings come from.
#include "bench/bench_util.h"
#include "src/llm/disaggregation.h"

int main() {
  using namespace spinfer;
  PrintHeader("Extension: disaggregated prefill/decode for OPT-13B (in=512, out=128)");

  for (double rps : {1.0, 4.0, 16.0}) {
    Table t({"framework", "decode GPUs/inst", "decode batch", "TTFT (ms)",
             "TPOT (ms)", "prefill inst", "decode inst", "total GPUs"});
    for (Framework f : {Framework::kFasterTransformer, Framework::kFlashLlm,
                        Framework::kSpInfer, Framework::kSpInferInt8}) {
      DisaggConfig cfg;
      cfg.model = Opt13B();
      cfg.framework = f;
      cfg.sparsity = 0.6;
      cfg.prefill_gpus = 2;
      // Dense and Tiled-CSL weights need 2-GPU decode instances; the
      // TCA-BME variants fit one GPU.
      cfg.decode_gpus =
          (f == Framework::kSpInfer || f == Framework::kSpInferInt8) ? 1 : 2;
      cfg.request_rate_rps = rps;
      cfg.input_len = 512;
      cfg.output_len = 128;
      const DisaggReport r = PlanDisaggregation(cfg);
      if (!r.decode_fits || !r.prefill_fits) {
        t.AddRow({FrameworkName(f), std::to_string(cfg.decode_gpus), "OOM", "-", "-",
                  "-", "-", "-"});
        continue;
      }
      t.AddRow({FrameworkName(f), std::to_string(cfg.decode_gpus),
                std::to_string(r.decode_batch), FormatF(r.ttft_ms, 0),
                FormatF(r.tpot_ms, 1), FormatF(r.prefill_instances, 2),
                FormatF(r.decode_instances, 2), FormatF(r.total_gpus, 0)});
    }
    std::printf("request rate %.0f req/s:\n%s\n", rps, t.Render().c_str());
  }
  std::printf("SpInfer decode instances use half the GPUs of the dense/Tiled-CSL\n"
              "deployments at every rate — the paper's §6 'well-suited for\n"
              "disaggregated serving' claim, quantified.\n");
  return 0;
}
