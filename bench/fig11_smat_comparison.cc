// Figure 11: SpInfer vs SMaT (Tensor-Core SpMM for scientific workloads)
// from LLM sparsity up to the extreme regime. SMaT's block skipping only
// pays off when whole 8x8 blocks vanish — above ~99.7% sparsity.
#include "bench/bench_util.h"

int main() {
  using namespace spinfer;
  const DeviceSpec dev = Rtx4090();
  const int64_t m = 8192;
  const int64_t k = 8192;
  const int64_t n = 16;

  PrintHeader("Figure 11: SpInfer vs SMaT across sparsity, M=K=8192 N=16, RTX4090");
  Table t({"sparsity", "spinfer_us", "smat_us", "spinfer_speedup"});
  double crossover = -1.0;
  double prev_ratio = 10.0;
  for (double s : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 0.995, 0.997, 0.998, 0.999}) {
    const SpmmProblem p = MakeProblem(m, k, n, s);
    const double spinfer_t = ModeledTimeUs("spinfer", p, dev);
    const double smat_t = ModeledTimeUs("smat", p, dev);
    const double ratio = smat_t / spinfer_t;
    if (prev_ratio >= 1.0 && ratio < 1.0) {
      crossover = s;
    }
    prev_ratio = ratio;
    t.AddRow({FormatF(s * 100, 1) + "%", FormatF(spinfer_t, 1), FormatF(smat_t, 1),
              FormatF(ratio, 2) + "x"});
  }
  std::printf("%s\n", t.Render().c_str());
  if (crossover > 0) {
    std::printf("SMaT overtakes SpInfer at ~%.1f%% sparsity.\n", crossover * 100);
  } else {
    std::printf("No crossover in the measured range.\n");
  }
  std::printf("Paper reference: SpInfer 2.12x faster at 50%%; SMaT wins only above\n"
              "~99.7%% sparsity.\n");
  return 0;
}
