// Extension bench: weight sparsity x dynamic activation sparsity (§6 future
// work). Models the Deja Vu-style deployment where a predictor marks
// contiguous neuron groups inactive, letting the kernel skip whole GroupTile
// columns.
#include "bench/bench_util.h"
#include "src/core/dual_sparse.h"

int main() {
  using namespace spinfer;
  const DeviceSpec dev = Rtx4090();
  const SpmmProblem p = MakeProblem(8192, 8192, 16, 0.6);
  const double base_us = ModeledTimeUs("spinfer", p, dev);
  const double cublas_us = ModeledTimeUs("cublas_tc", p, dev);

  PrintHeader("Extension: dual sparsity, M=K=8192 N=16, weights at 60%");
  Table t({"activation sparsity", "group=1 (scattered)", "group=16", "group=64",
           "speedup vs dense cuBLAS (g=64)"});
  for (double ax : {0.0, 0.3, 0.5, 0.7, 0.9}) {
    const double g1 = EstimateDualSparseTime(p, ax, 1, dev).total_us;
    const double g16 = EstimateDualSparseTime(p, ax, 16, dev).total_us;
    const double g64 = EstimateDualSparseTime(p, ax, 64, dev).total_us;
    t.AddRow({FormatF(ax * 100, 0) + "%", FormatF(g1, 1) + "us",
              FormatF(g16, 1) + "us", FormatF(g64, 1) + "us",
              FormatF(cublas_us / g64, 2) + "x"});
  }
  std::printf("%s", t.Render().c_str());
  std::printf("\n(baseline SpInfer without activation sparsity: %.1f us, %.2fx)\n\n",
              base_us, cublas_us / base_us);
  std::printf("Contiguous neuron groups unlock whole-GroupTile skips; scattered\n"
              "activation sparsity cannot shrink traffic — the adaptive-encoding gap\n"
              "the paper's discussion section identifies.\n");
  return 0;
}
