// Figure 14: end-to-end inference of OPT-30B and OPT-66B on A6000 GPUs
// (NVLink platform).
#include "bench/bench_util.h"
#include "bench/e2e_common.h"

int main(int argc, char** argv) {
  using namespace spinfer;
  BenchInit(argc, argv);
  const DeviceSpec dev = A6000();
  PrintHeader("Figure 14: end-to-end inference on A6000 (modeled; Wanda 60%)");

  RunE2eSweep(Opt30B(), dev, /*num_gpus=*/1, {8, 16, 32}, {64, 128, 256, 512, 1024});
  RunE2eSweep(Opt30B(), dev, /*num_gpus=*/2, {8, 16, 32}, {64, 128, 256, 512, 1024});
  RunE2eSweep(Opt66B(), dev, /*num_gpus=*/2, {8, 16, 32}, {64, 128, 256, 512, 1024});
  RunE2eSweep(Opt66B(), dev, /*num_gpus=*/4, {8, 16, 32}, {64, 128, 256, 512, 1024});

  std::printf(
      "\nPaper reference: SpInfer averages 1.29x over Flash-LLM, 1.36x over FT,\n"
      "1.55x over DS on A6000; OPT-66B on 2 GPUs OOMs for the dense frameworks\n"
      "while SpInfer fits.\n");
  return 0;
}
