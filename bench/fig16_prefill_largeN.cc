// Figure 16: SpInfer's prefill-phase limitation. As N = batch x seq_len
// grows, the GEMM becomes compute-bound; the bitmap-decoding overhead and
// the slightly lower sustained mma throughput make SpInfer up to ~11.8%
// slower than cuBLAS_TC at large N, while it keeps winning at decode-phase N.
#include <algorithm>

#include "bench/bench_util.h"

int main() {
  using namespace spinfer;
  const DeviceSpec dev = Rtx4090();
  const int64_t m = 28672;
  const int64_t k = 8192;

  PrintHeader("Figure 16: small vs large N, M=28672 K=8192, RTX4090 (modeled)");
  for (double s : {0.5, 0.6}) {
    std::printf("sparsity = %.0f%%\n", s * 100);
    Table t({"N", "cublas_us", "spinfer_us", "spinfer/cublas", "regime"});
    double worst = 0.0;
    for (int64_t n : {8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}) {
      const SpmmProblem p = MakeProblem(m, k, n, s);
      const auto cublas = MakeKernel("cublas_tc")->Estimate(p, dev);
      const auto spinf = MakeKernel("spinfer")->Estimate(p, dev);
      const double ratio = spinf.time.total_us / cublas.time.total_us;
      worst = std::max(worst, ratio);
      t.AddRow({std::to_string(n), FormatF(cublas.time.total_us, 0),
                FormatF(spinf.time.total_us, 0), FormatF(ratio, 3),
                spinf.time.compute_us > spinf.time.mem_us ? "compute-bound"
                                                          : "memory-bound"});
    }
    std::printf("%s", t.Render().c_str());
    std::printf("worst case: SpInfer %.1f%% slower than cuBLAS at large N\n\n",
                100.0 * (worst - 1.0));
  }
  std::printf("Paper reference: up to 11.8%% slower in the compute-bound prefill\n"
              "regime; memory savings persist regardless.\n");
  return 0;
}
