// Figure 15: breakdown of end-to-end inference time into SpMM/GEMM, MHA,
// inter-GPU communication, and other — including the paper's observation
// that SpInfer's memory savings let it use HALF the GPUs and thereby erase
// the communication term entirely on the PCIe platform.
#include "bench/bench_util.h"
#include "src/llm/engine.h"

namespace {

void PrintBreakdown(const char* label, const spinfer::InferenceReport& r) {
  using namespace spinfer;
  if (r.oom) {
    std::printf("%-36s OOM (%s)\n", label, r.memory.ToString().c_str());
    return;
  }
  const double linear = r.prefill.linear_us + r.decode.linear_us;
  const double attn = r.prefill.attention_us + r.decode.attention_us;
  const double comm = r.prefill.comm_us + r.decode.comm_us;
  const double other = r.prefill.other_us + r.decode.other_us;
  const double total = linear + attn + comm + other;
  std::printf("%-36s total=%7.0fms  SpMM/GEMM=%4.1f%%  MHA=%4.1f%%  COMM=%4.1f%%  other=%4.1f%%\n",
              label, total / 1e3, 100 * linear / total, 100 * attn / total,
              100 * comm / total, 100 * other / total);
}

}  // namespace

int main() {
  using namespace spinfer;
  PrintHeader("Figure 15: end-to-end time breakdown (OPT-13B, batch 16, out 256)");

  EngineConfig cfg;
  cfg.model = Opt13B();
  cfg.device = Rtx4090();
  cfg.batch = 16;
  cfg.input_len = 128;
  cfg.output_len = 256;
  cfg.sparsity = 0.6;

  // SpInfer fits on ONE RTX4090; the baselines need two (dense 26 GB).
  cfg.framework = Framework::kSpInfer;
  cfg.num_gpus = 1;
  PrintBreakdown("SpInfer, 1x RTX4090", SimulateInference(cfg));
  cfg.num_gpus = 2;
  PrintBreakdown("SpInfer, 2x RTX4090", SimulateInference(cfg));
  cfg.framework = Framework::kFlashLlm;
  PrintBreakdown("Flash-LLM, 2x RTX4090", SimulateInference(cfg));
  cfg.framework = Framework::kFasterTransformer;
  PrintBreakdown("FasterTransformer, 2x RTX4090", SimulateInference(cfg));

  std::printf("\nSame comparison on the NVLink platform (A6000, OPT-30B):\n");
  cfg.model = Opt30B();
  cfg.device = A6000();
  cfg.framework = Framework::kSpInfer;
  cfg.num_gpus = 1;
  PrintBreakdown("SpInfer, 1x A6000", SimulateInference(cfg));
  cfg.num_gpus = 2;
  PrintBreakdown("SpInfer, 2x A6000", SimulateInference(cfg));
  cfg.framework = Framework::kFlashLlm;
  PrintBreakdown("Flash-LLM, 2x A6000", SimulateInference(cfg));
  cfg.framework = Framework::kFasterTransformer;
  PrintBreakdown("FasterTransformer, 2x A6000", SimulateInference(cfg));

  std::printf(
      "\nPaper shape check: SpMM/GEMM dominates everywhere; SpInfer's SpMM slice is\n"
      "smallest; the 1-GPU SpInfer row has zero COMM while 2-GPU baselines pay\n"
      "PCIe all-reduce costs (much larger than on NVLink).\n");
  return 0;
}
