// Extension bench: continuous-batching serving under load.
//
// Quantifies the paper's orthogonality claim (§2.3): plugging SpInfer into
// an iteration-level scheduler turns its weight-memory savings into a larger
// feasible batch, higher sustained throughput, and lower tail latency at the
// same request rate.
#include "bench/bench_util.h"
#include "src/llm/serving.h"

int main() {
  using namespace spinfer;
  PrintHeader("Extension: OPT-13B serving on 1x RTX4090, Poisson arrivals");

  for (double rps : {1.0, 3.0, 6.0}) {
    Table t({"framework", "feasible batch", "completed", "tok/s", "mean batch",
             "p50 (ms)", "p95 (ms)"});
    for (Framework f : {Framework::kFasterTransformer, Framework::kFlashLlm,
                        Framework::kSpInfer}) {
      ServingConfig cfg;
      cfg.engine.model = Opt13B();
      cfg.engine.framework = f;
      cfg.engine.device = Rtx4090();
      cfg.engine.num_gpus = 1;
      cfg.engine.sparsity = 0.6;
      cfg.arrival_rate_rps = rps;
      cfg.input_len = 128;
      cfg.output_len = 64;
      cfg.sim_seconds = 60.0;
      cfg.seed = 7;
      const ServingReport r = SimulateServing(cfg);
      if (r.feasible_batch == 0) {
        t.AddRow({FrameworkName(f), "0 (OOM)", "-", "-", "-", "-", "-"});
        continue;
      }
      t.AddRow({FrameworkName(f), std::to_string(r.feasible_batch),
                std::to_string(r.completed), FormatF(r.throughput_tps, 0),
                FormatF(r.mean_batch, 1), FormatF(r.p50_latency_ms, 0),
                FormatF(r.p95_latency_ms, 0)});
    }
    std::printf("arrival rate %.0f req/s:\n%s\n", rps, t.Render().c_str());
  }
  std::printf("FasterTransformer cannot host the dense model on one 24 GB GPU at all;\n"
              "SpInfer's extra KV headroom over Flash-LLM shows up as tail latency.\n");
  return 0;
}
