// Figure 10: SpMM kernel performance across the LLM weight-shape suite
// (OPT / LLaMA2 / LLaMA3 / Qwen2 / Mixtral), batch sizes N in {8,16,32},
// sparsities 40-70%, on RTX4090 and A6000. Speedups normalized to
// Tensor-Core cuBLAS, exactly as the paper plots them.
//
// Every (model, N, sparsity) sweep point is independent; points run on the
// global thread pool (--threads=N) and aggregate sequentially in sweep
// order, so the printed tables are identical for any thread count.
#include <cmath>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "src/llm/model_config.h"

int main(int argc, char** argv) {
  using namespace spinfer;
  BenchInit(argc, argv);
  const std::vector<std::string> kernels = {"cusparse", "sputnik", "sparta",
                                            "flash_llm", "spinfer"};
  const std::vector<int64_t> batch_sizes = {8, 16, 32};
  const std::vector<int> sparsities = {40, 50, 60, 70};

  // The sweep grid, flattened into independently computable points.
  struct SweepPoint {
    const ModelConfig* model;
    const std::vector<GemmShape>* shapes;
    int64_t n;
    int pct;
  };
  const std::vector<ModelConfig>& models = AllModels();
  std::vector<std::vector<GemmShape>> model_shapes;
  model_shapes.reserve(models.size());
  for (const ModelConfig& model : models) {
    model_shapes.push_back(LayerGemmShapes(model));
  }
  std::vector<SweepPoint> points;
  for (size_t mi = 0; mi < models.size(); ++mi) {
    for (int64_t n : batch_sizes) {
      for (int pct : sparsities) {
        points.push_back({&models[mi], &model_shapes[mi], n, pct});
      }
    }
  }

  struct PointResult {
    std::vector<std::string> row;
    std::map<std::string, double> log_geomean;  // per kernel
    bool spinfer_beats_all = true;
  };

  for (const DeviceSpec& dev : {Rtx4090(), A6000()}) {
    PrintHeader("Figure 10: speedup over cuBLAS_TC on " + dev.name +
                " (geomean over each model's layer shapes)");

    std::vector<PointResult> results(points.size());
    ParallelFor(0, static_cast<int64_t>(points.size()), [&](int64_t pi) {
      const SweepPoint& pt = points[static_cast<size_t>(pi)];
      PointResult& res = results[static_cast<size_t>(pi)];
      const double s = pt.pct / 100.0;
      res.row = {pt.model->name, std::to_string(pt.n), std::to_string(pt.pct) + "%"};
      for (const std::string& kernel : kernels) {
        double log_sum = 0.0;
        for (const GemmShape& g : *pt.shapes) {
          const SpmmProblem p = MakeProblem(g.m, g.k, pt.n, s);
          const double cublas = ModeledTimeUs("cublas_tc", p, dev);
          const double time = ModeledTimeUs(kernel, p, dev);
          log_sum += std::log(cublas / time);
          if (kernel == "spinfer" && time >= cublas) {
            res.spinfer_beats_all = false;
          }
        }
        const double geomean =
            std::exp(log_sum / static_cast<double>(pt.shapes->size()));
        res.row.push_back(FormatF(geomean, 2) + "x");
        res.log_geomean[kernel] = std::log(geomean);
      }
    });

    // Sequential aggregation in sweep order (identical for any --threads).
    std::map<std::string, double> log_speedup_sum;
    std::map<std::string, int> count;
    std::map<int, double> spinfer_log_by_sparsity;
    std::map<int, int> spinfer_wins_by_sparsity;
    std::map<int, int> cases_by_sparsity;
    Table t({"model", "N", "sparsity", "cusparse", "sputnik", "sparta", "flash_llm",
             "spinfer"});
    for (size_t pi = 0; pi < points.size(); ++pi) {
      const SweepPoint& pt = points[pi];
      PointResult& res = results[pi];
      for (const std::string& kernel : kernels) {
        log_speedup_sum[kernel] += res.log_geomean[kernel];
        count[kernel] += 1;
      }
      spinfer_log_by_sparsity[pt.pct] += res.log_geomean["spinfer"];
      cases_by_sparsity[pt.pct] += 1;
      spinfer_wins_by_sparsity[pt.pct] += res.spinfer_beats_all ? 1 : 0;
      t.AddRow(res.row);
    }
    std::printf("%s\n", t.Render().c_str());

    Table summary({"kernel", "geomean speedup vs cuBLAS", "SpInfer speedup vs kernel"});
    const double spinfer_avg =
        std::exp(log_speedup_sum["spinfer"] / count["spinfer"]);
    for (const std::string& kernel : kernels) {
      const double avg = std::exp(log_speedup_sum[kernel] / count[kernel]);
      summary.AddRow({kernel, FormatF(avg, 2) + "x", FormatF(spinfer_avg / avg, 2) + "x"});
    }
    std::printf("%s\n", summary.Render().c_str());

    Table per_s({"sparsity", "SpInfer geomean vs cuBLAS", "beats cuBLAS on"});
    for (int pct : sparsities) {
      per_s.AddRow(
          {std::to_string(pct) + "%",
           FormatF(std::exp(spinfer_log_by_sparsity[pct] / cases_by_sparsity[pct]), 2) + "x",
           FormatF(100.0 * spinfer_wins_by_sparsity[pct] / cases_by_sparsity[pct], 1) +
               "% of cases"});
    }
    std::printf("%s\n", per_s.Render().c_str());
  }
  std::printf(
      "Paper reference (RTX4090 averages): SpInfer 1.79x over cuBLAS; 18.14x over\n"
      "cuSPARSE, 2.55x over Sputnik, 1.67x over SparTA, 1.56x over Flash-LLM.\n"
      "At 40%%: 1.46x (wins 94%% of cases); 50%%: 1.66x; 70%%: 1.90x (wins 100%%).\n");
  return 0;
}
