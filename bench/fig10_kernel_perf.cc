// Figure 10: SpMM kernel performance across the LLM weight-shape suite
// (OPT / LLaMA2 / LLaMA3 / Qwen2 / Mixtral), batch sizes N in {8,16,32},
// sparsities 40-70%, on RTX4090 and A6000. Speedups normalized to
// Tensor-Core cuBLAS, exactly as the paper plots them.
#include <cmath>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "src/llm/model_config.h"

int main() {
  using namespace spinfer;
  const std::vector<std::string> kernels = {"cusparse", "sputnik", "sparta",
                                            "flash_llm", "spinfer"};
  const std::vector<int64_t> batch_sizes = {8, 16, 32};
  const std::vector<int> sparsities = {40, 50, 60, 70};

  for (const DeviceSpec& dev : {Rtx4090(), A6000()}) {
    PrintHeader("Figure 10: speedup over cuBLAS_TC on " + dev.name +
                " (geomean over each model's layer shapes)");
    // Aggregates for the paper's summary statistics.
    std::map<std::string, double> log_speedup_sum;
    std::map<std::string, int> count;
    std::map<int, double> spinfer_log_by_sparsity;
    std::map<int, int> spinfer_wins_by_sparsity;
    std::map<int, int> cases_by_sparsity;

    Table t({"model", "N", "sparsity", "cusparse", "sputnik", "sparta", "flash_llm",
             "spinfer"});
    for (const ModelConfig& model : AllModels()) {
      const auto shapes = LayerGemmShapes(model);
      for (int64_t n : batch_sizes) {
        for (int pct : sparsities) {
          const double s = pct / 100.0;
          std::vector<std::string> row = {model.name, std::to_string(n),
                                          std::to_string(pct) + "%"};
          for (const std::string& kernel : kernels) {
            double log_sum = 0.0;
            bool spinfer_beats_all = true;
            for (const GemmShape& g : shapes) {
              const SpmmProblem p = MakeProblem(g.m, g.k, n, s);
              const double cublas = ModeledTimeUs("cublas_tc", p, dev);
              const double time = ModeledTimeUs(kernel, p, dev);
              log_sum += std::log(cublas / time);
              if (kernel == "spinfer" && time >= cublas) {
                spinfer_beats_all = false;
              }
            }
            const double geomean = std::exp(log_sum / static_cast<double>(shapes.size()));
            row.push_back(FormatF(geomean, 2) + "x");
            log_speedup_sum[kernel] += std::log(geomean);
            count[kernel] += 1;
            if (kernel == "spinfer") {
              spinfer_log_by_sparsity[pct] += std::log(geomean);
              cases_by_sparsity[pct] += 1;
              spinfer_wins_by_sparsity[pct] += spinfer_beats_all ? 1 : 0;
            }
          }
          t.AddRow(row);
        }
      }
    }
    std::printf("%s\n", t.Render().c_str());

    Table summary({"kernel", "geomean speedup vs cuBLAS", "SpInfer speedup vs kernel"});
    const double spinfer_avg =
        std::exp(log_speedup_sum["spinfer"] / count["spinfer"]);
    for (const std::string& kernel : kernels) {
      const double avg = std::exp(log_speedup_sum[kernel] / count[kernel]);
      summary.AddRow({kernel, FormatF(avg, 2) + "x", FormatF(spinfer_avg / avg, 2) + "x"});
    }
    std::printf("%s\n", summary.Render().c_str());

    Table per_s({"sparsity", "SpInfer geomean vs cuBLAS", "beats cuBLAS on"});
    for (int pct : sparsities) {
      per_s.AddRow(
          {std::to_string(pct) + "%",
           FormatF(std::exp(spinfer_log_by_sparsity[pct] / cases_by_sparsity[pct]), 2) + "x",
           FormatF(100.0 * spinfer_wins_by_sparsity[pct] / cases_by_sparsity[pct], 1) +
               "% of cases"});
    }
    std::printf("%s\n", per_s.Render().c_str());
  }
  std::printf(
      "Paper reference (RTX4090 averages): SpInfer 1.79x over cuBLAS; 18.14x over\n"
      "cuSPARSE, 2.55x over Sputnik, 1.67x over SparTA, 1.56x over Flash-LLM.\n"
      "At 40%%: 1.46x (wins 94%% of cases); 50%%: 1.66x; 70%%: 1.90x (wins 100%%).\n");
  return 0;
}
