// Real CPU-time microbenchmarks (google-benchmark) for the host-side
// components a deployment actually executes on this machine: TCA-BME
// encode/decode, SMBD warp decode, the functional SpMM kernels, and the
// pruning algorithms. These complement the modeled-GPU figure benches with
// measured wall-clock numbers.
#include <benchmark/benchmark.h>

#include "src/baselines/kernel_registry.h"
#include "src/core/smbd.h"
#include "src/core/spinfer_kernel.h"
#include "src/format/csr.h"
#include "src/format/tca_bme.h"
#include "src/pruning/magnitude.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

void BM_TcaBmeEncode(benchmark::State& state) {
  const int64_t dim = state.range(0);
  Rng rng(1);
  const HalfMatrix w = HalfMatrix::RandomSparse(dim, dim, 0.6, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TcaBmeMatrix::Encode(w));
  }
  state.SetBytesProcessed(state.iterations() * dim * dim * 2);
}
BENCHMARK(BM_TcaBmeEncode)->Arg(256)->Arg(512)->Arg(1024);

void BM_TcaBmeDecode(benchmark::State& state) {
  const int64_t dim = state.range(0);
  Rng rng(2);
  const TcaBmeMatrix enc =
      TcaBmeMatrix::Encode(HalfMatrix::RandomSparse(dim, dim, 0.6, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.Decode());
  }
  state.SetBytesProcessed(state.iterations() * dim * dim * 2);
}
BENCHMARK(BM_TcaBmeDecode)->Arg(256)->Arg(512);

void BM_CsrEncode(benchmark::State& state) {
  const int64_t dim = state.range(0);
  Rng rng(3);
  const HalfMatrix w = HalfMatrix::RandomSparse(dim, dim, 0.6, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CsrMatrix::Encode(w));
  }
  state.SetBytesProcessed(state.iterations() * dim * dim * 2);
}
BENCHMARK(BM_CsrEncode)->Arg(512);

void BM_SmbdWarpDecode(benchmark::State& state) {
  Rng rng(4);
  uint64_t bitmaps[4];
  std::vector<Half> runs[4];
  const Half* ptrs[4];
  for (int q = 0; q < 4; ++q) {
    bitmaps[q] = rng.Next() & rng.Next();
    runs[q].assign(64, Half(1.0f));
    ptrs[q] = runs[q].data();
  }
  MmaAFragment frag[kWarpSize];
  for (auto _ : state) {
    SmbdDecodeTcTile(bitmaps, ptrs, frag, nullptr);
    benchmark::DoNotOptimize(frag);
  }
  state.SetItemsProcessed(state.iterations() * 256);  // A-tile elements
}
BENCHMARK(BM_SmbdWarpDecode);

void BM_FunctionalSpmm(benchmark::State& state) {
  const int64_t dim = state.range(0);
  Rng rng(5);
  const HalfMatrix w = HalfMatrix::RandomSparse(dim, dim, 0.6, rng);
  const HalfMatrix x = HalfMatrix::Random(dim, 16, rng, 0.5f);
  const SpInferSpmmKernel kernel;
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w, kernel.config().format);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.RunEncoded(enc, x, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * 2 * dim * dim * 16);
}
BENCHMARK(BM_FunctionalSpmm)->Arg(128)->Arg(256);

void BM_MagnitudePrune(benchmark::State& state) {
  const int64_t dim = state.range(0);
  Rng rng(6);
  const HalfMatrix w = HalfMatrix::Random(dim, dim, rng);
  const MagnitudePruner pruner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pruner.Prune(w, 0.6));
  }
  state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_MagnitudePrune)->Arg(512);

void BM_KernelEstimate(benchmark::State& state) {
  // The engine calls Estimate() thousands of times per simulated inference;
  // it must be cheap.
  const auto kernel = MakeKernel("spinfer");
  SpmmProblem p;
  p.m = 28672;
  p.k = 8192;
  p.n = 16;
  p.sparsity = 0.6;
  const DeviceSpec dev = Rtx4090();
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel->Estimate(p, dev));
  }
}
BENCHMARK(BM_KernelEstimate);

}  // namespace
}  // namespace spinfer

BENCHMARK_MAIN();
