// Shared helpers for the figure/table bench binaries.
#pragma once

#include <cstdio>
#include <string>

#include "src/baselines/kernel_registry.h"
#include "src/core/spmm.h"
#include "src/gpusim/device_spec.h"
#include "src/util/cli.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

namespace spinfer {

// Parses the flags shared by every bench binary and configures the global
// thread pool. `--threads=N` sets the sweep/kernel execution width (default:
// hardware concurrency). Determinism guarantee: every parallel loop in the
// library reduces in a fixed order, so all modeled numbers and functional
// outputs are bit-identical for any N — --threads only changes wall-clock.
inline CliFlags BenchInit(int argc, char** argv) {
  CliFlags flags(argc, argv);
  flags.RestrictTo({"threads"});
  ThreadPool::SetGlobalThreads(static_cast<int>(flags.GetInt("threads", 0)));
  return flags;
}

inline SpmmProblem MakeProblem(int64_t m, int64_t k, int64_t n, double sparsity) {
  SpmmProblem p;
  p.m = m;
  p.k = k;
  p.n = n;
  p.sparsity = sparsity;
  return p;
}

// Modeled kernel time in microseconds.
inline double ModeledTimeUs(const std::string& kernel, const SpmmProblem& p,
                            const DeviceSpec& dev) {
  return MakeKernel(kernel)->Estimate(p, dev).time.total_us;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace spinfer
