// Shared helpers for the figure/table bench binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/baselines/kernel_registry.h"
#include "src/core/spmm.h"
#include "src/gpusim/device_spec.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/cli.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

namespace spinfer {

// Parses the flags shared by every bench binary and configures the global
// thread pool. `--threads=N` sets the sweep/kernel execution width (default:
// hardware concurrency). Determinism guarantee: every parallel loop in the
// library reduces in a fixed order, so all modeled numbers and functional
// outputs are bit-identical for any N — --threads only changes wall-clock.
//
// `--trace=FILE` turns tracing on for the whole run and writes a Chrome
// trace-event JSON (Perfetto / chrome://tracing) at exit. Note traced runs
// pay the recording overhead inside timed regions; perf_regression instead
// keeps its timing loop untraced and records a separate traced pass.
inline CliFlags BenchInit(int argc, char** argv) {
  CliFlags flags(argc, argv);
  flags.RestrictTo({"threads", "trace"});
  ThreadPool::SetGlobalThreads(static_cast<int>(flags.GetInt("threads", 0)));
  const std::string trace_path = flags.GetString("trace", "");
  if (!trace_path.empty()) {
    obs::EnableTracingToFileAtExit(trace_path);
  }
  return flags;
}

inline SpmmProblem MakeProblem(int64_t m, int64_t k, int64_t n, double sparsity) {
  SpmmProblem p;
  p.m = m;
  p.k = k;
  p.n = n;
  p.sparsity = sparsity;
  return p;
}

// Modeled kernel time in microseconds.
inline double ModeledTimeUs(const std::string& kernel, const SpmmProblem& p,
                            const DeviceSpec& dev) {
  return MakeKernel(kernel)->Estimate(p, dev).time.total_us;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

// --- Wall-clock perf-smoke helpers (bench/perf_regression.cc) ---------------

// One timed bench point: best-of-`repetitions` wall time at `threads` width.
struct BenchRecord {
  std::string name;
  double wall_ms = 0.0;
  int repetitions = 0;
  int threads = 0;
};

// Runs `fn` once untimed (warm-up) and then `reps` timed repetitions,
// returning the minimum wall time in milliseconds. Minimum — not mean — so a
// background hiccup on a shared runner cannot masquerade as a regression.
inline double MinWallMs(int reps, const std::function<void()>& fn) {
  SPINFER_CHECK(reps >= 1);
  fn();  // warm-up: first-touch page faults, lazy statics
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < best) {
      best = ms;
    }
  }
  return best;
}

// As above, additionally recording every timed repetition (not the warm-up)
// into `hist` so a metrics dump carries the per-rep distribution (p50/p95)
// next to the best-of summary. Timing behaviour is identical.
inline double MinWallMs(int reps, const std::function<void()>& fn,
                        obs::Histogram* hist) {
  SPINFER_CHECK(reps >= 1);
  fn();
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (hist != nullptr) {
      hist->Record(ms);
    }
    if (r == 0 || ms < best) {
      best = ms;
    }
  }
  return best;
}

// Buckets for per-bench wall-time histograms: 1µs .. ~16s, x2 per bucket.
inline std::vector<double> BenchWallMsBuckets() {
  return obs::Histogram::ExponentialBuckets(0.001, 2.0, 24);
}

// Runs `fn` once with tracing enabled, the whole run wrapped in a span named
// `bench.<name>`. Used by perf_regression's --trace mode so the timed
// repetitions stay untraced while the trace still covers every bench.
inline void RunTracedOnce(const std::string& name,
                          const std::function<void()>& fn) {
  obs::Tracer& tracer = obs::Tracer::Global();
  const char* span = tracer.InternName("bench." + name);
  tracer.Start();
  {
    obs::TraceScope scope(span);
    fn();
  }
  tracer.Stop();
}

// Writes the records as a JSON object keyed by bench name, e.g.
//   {"spinfer_functional": {"wall_ms": 12.3, "repetitions": 5, "threads": 1}}
// The flat name->metrics shape is the contract future PRs diff against; add
// keys freely, never repurpose existing ones.
inline void WriteBenchJson(const std::string& path,
                           const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  SPINFER_CHECK_MSG(f != nullptr, "cannot open bench output file");
  std::fprintf(f, "{\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "  \"%s\": {\"wall_ms\": %.6f, \"repetitions\": %d, "
                 "\"threads\": %d}%s\n",
                 r.name.c_str(), r.wall_ms, r.repetitions, r.threads,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  SPINFER_CHECK_MSG(std::fclose(f) == 0, "cannot write bench output file");
}

}  // namespace spinfer
