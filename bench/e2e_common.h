// Shared driver for the end-to-end inference benches (Figures 13-15).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/llm/engine.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

namespace spinfer {

inline const std::vector<Framework>& E2eFrameworks() {
  static const std::vector<Framework> kFrameworks = {
      Framework::kFasterTransformer, Framework::kDeepSpeed, Framework::kFlashLlm,
      Framework::kSpInfer};
  return kFrameworks;
}

// Prints the paper's per-(model, gpu-count, batch) latency sweep over output
// lengths, one column per framework; OOM configurations print "OOM" exactly
// as the figures mark them.
inline void RunE2eSweep(const ModelConfig& model, const DeviceSpec& dev, int num_gpus,
                        const std::vector<int64_t>& batches,
                        const std::vector<int64_t>& output_lens) {
  // Every (batch, out_len) sweep point is an independent SimulateInference
  // call; run them all on the pool and render sequentially afterwards so the
  // printed tables are identical for any --threads value.
  const int64_t num_out = static_cast<int64_t>(output_lens.size());
  const int64_t num_points = static_cast<int64_t>(batches.size()) * num_out;
  std::vector<std::vector<std::string>> rows(static_cast<size_t>(num_points));
  ParallelFor(0, num_points, [&](int64_t point) {
    const int64_t batch = batches[static_cast<size_t>(point / num_out)];
    const int64_t out = output_lens[static_cast<size_t>(point % num_out)];
    std::vector<std::string> row = {std::to_string(out)};
    double spinfer_ms = 0.0;
    double spinfer_tps = 0.0;
    double flash_ms = 0.0;
    for (Framework f : E2eFrameworks()) {
      EngineConfig cfg;
      cfg.model = model;
      cfg.framework = f;
      cfg.device = dev;
      cfg.num_gpus = num_gpus;
      cfg.batch = batch;
      cfg.input_len = 128;
      cfg.output_len = out;
      cfg.sparsity = 0.6;  // Wanda at 60%, the paper's setting
      const InferenceReport r = SimulateInference(cfg);
      if (r.oom) {
        row.push_back("OOM");
      } else {
        row.push_back(FormatF(r.total_ms, 0));
      }
      if (f == Framework::kSpInfer && !r.oom) {
        spinfer_ms = r.total_ms;
        spinfer_tps = r.tokens_per_second;
      }
      if (f == Framework::kFlashLlm && !r.oom) {
        flash_ms = r.total_ms;
      }
    }
    row.push_back(spinfer_ms > 0 ? FormatF(spinfer_tps, 0) : "-");
    row.push_back(spinfer_ms > 0 && flash_ms > 0
                      ? FormatF(flash_ms / spinfer_ms, 2) + "x"
                      : "-");
    rows[point] = std::move(row);
  });

  for (size_t b = 0; b < batches.size(); ++b) {
    std::printf("\n--- %s, %dx %s, batch=%ld (total latency ms; tok/s for SpInfer) ---\n",
                model.name.c_str(), num_gpus, dev.name.c_str(),
                static_cast<long>(batches[b]));
    Table t({"out_len", "FT", "DS", "Flash-LLM", "SpInfer", "SpInfer tok/s",
             "speedup vs FL"});
    for (int64_t o = 0; o < num_out; ++o) {
      t.AddRow(rows[b * static_cast<size_t>(num_out) + o]);
    }
    std::printf("%s", t.Render().c_str());
  }
}

}  // namespace spinfer
