// Figure 12: micro-level comparison of SpInfer against cuBLAS_TC and
// Flash-LLM — registers per thread, DRAM bytes read, bandwidth utilization,
// shared-memory bank conflicts, and Tensor Core pipe utilization.
//
// Modeled metrics come from the analytical estimators at a full LLM shape;
// bank conflicts are measured by the functional simulator on a sampled tile
// (they are per-byte properties, independent of scale).
#include <map>

#include "bench/bench_util.h"
#include "src/util/random.h"

int main(int argc, char** argv) {
  using namespace spinfer;
  BenchInit(argc, argv);
  const DeviceSpec dev = Rtx4090();
  const SpmmProblem p = MakeProblem(8192, 8192, 16, 0.5);

  // Functional sample for bank-conflict and register measurements.
  Rng rng(1212);
  const HalfMatrix w = HalfMatrix::RandomSparse(256, 256, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(256, 16, rng, 0.5f);

  PrintHeader("Figure 12: micro metrics, M=K=8192 N=16 s=50%, RTX4090");
  Table t({"metric", "cublas_tc", "flash_llm", "spinfer"});

  std::map<std::string, KernelEstimate> est;
  std::map<std::string, PerfCounters> run;
  for (const char* name : {"cublas_tc", "flash_llm", "spinfer"}) {
    const auto kernel = MakeKernel(name);
    est[name] = kernel->Estimate(p, dev);
    kernel->Run(w, x, &run[name]);
  }

  auto add = [&](const std::string& metric, auto getter, int precision,
                 const std::string& suffix) {
    t.AddRow({metric, FormatF(getter("cublas_tc"), precision) + suffix,
              FormatF(getter("flash_llm"), precision) + suffix,
              FormatF(getter("spinfer"), precision) + suffix});
  };
  add("registers/thread",
      [&](const std::string& k) { return double(run[k].registers_per_thread); }, 0, "");
  add("DRAM read (MB)",
      [&](const std::string& k) { return est[k].counters.dram_bytes_read / 1e6; }, 1, "");
  add("bandwidth util",
      [&](const std::string& k) { return 100.0 * est[k].time.bw_utilization; }, 1, "%");
  add("bank conflicts (per 64KB tile)",
      [&](const std::string& k) { return double(run[k].smem_bank_conflicts); }, 0, "");
  add("TC pipe util",
      [&](const std::string& k) { return 100.0 * est[k].time.tc_utilization; }, 1, "%");
  add("warp instrs (modeled, M)",
      [&](const std::string& k) {
        return static_cast<double>(est[k].counters.TotalWarpInstrs()) / 1e6;
      },
      1, "");
  add("modeled time (us)",
      [&](const std::string& k) { return est[k].time.total_us; }, 1, "");
  std::printf("%s\n", t.Render().c_str());

  std::printf("Functional-sample counter dumps (256x256 tile):\n");
  for (const char* name : {"cublas_tc", "flash_llm", "spinfer"}) {
    std::printf("  %-10s %s\n", name, run[name].ToString().c_str());
  }
  std::printf(
      "Paper shape check: SpInfer has the fewest registers, least DRAM traffic,\n"
      "highest bandwidth utilization, zero bank conflicts (Flash-LLM's scattered\n"
      "extraction conflicts heavily), and the best TC pipe utilization among the\n"
      "sparse kernels.\n");
  return 0;
}
