// Table 1: kernel-level ablation of SMBD and the asynchronous pipeline.
// The paper removes each optimization and reports duration, peak-bandwidth
// utilization, issue-slot activity, warp cycles per instruction, and Tensor
// Core pipe utilization.
//
// Issue-slot busy and warp-cycles-per-instruction are derived from the model
// as instruction-throughput proxies: issued warp instructions per available
// issue slot, and its inverse scaled to cycles.
#include "bench/bench_util.h"
#include "src/core/spinfer_kernel.h"
#include "src/gpusim/pipeline.h"
#include "src/gpusim/timeline.h"

int main() {
  using namespace spinfer;
  const DeviceSpec dev = Rtx4090();
  // The ablation aggregates a decode-phase workload; model the OPT-30B fc1
  // shape, executed many times as in the paper's 303ms total.
  const SpmmProblem p = MakeProblem(28672, 7168, 16, 0.6);
  const int kRepeats = 1000;

  PrintHeader("Table 1: ablation study (SMBD / AsyncPipe), RTX4090, modeled");
  Table t({"SMBD", "AsyncPipe", "Duration(ms)", "MaxBW(%)", "IssueSlotBusy(%)",
           "WarpCyc/Inst", "TCPipeUtil(%)"});

  struct Variant {
    bool smbd;
    bool pipe;
  };
  double base_ms = 0.0;
  double no_smbd_ms = 0.0;
  double no_pipe_ms = 0.0;
  for (const Variant v : {Variant{true, true}, {false, true}, {true, false}}) {
    SpInferKernelConfig cfg;
    cfg.split_k = 0;
    cfg.smbd = v.smbd;
    cfg.async_pipe = v.pipe;
    const SpInferSpmmKernel kernel(cfg);
    const KernelEstimate est = kernel.Estimate(p, dev);
    const double ms = est.time.total_us * kRepeats / 1e3;
    if (v.smbd && v.pipe) {
      base_ms = ms;
    } else if (!v.smbd) {
      no_smbd_ms = ms;
    } else {
      no_pipe_ms = ms;
    }

    // Instruction-throughput proxies. Total issued warp instructions:
    const PerfCounters& c = est.counters;
    const double instrs = static_cast<double>(c.TotalWarpInstrs());
    // Issue slots: 4 schedulers per SM, one instruction per cycle each.
    const double slots = est.time.total_us * 1e-6 * dev.clock_ghz * 1e9 * 4.0 *
                         static_cast<double>(dev.sm_count);
    const double issue_busy = 100.0 * instrs / slots;
    // Warp cycles per issued instruction across resident warps (proxy for
    // latency exposure): assume 12 resident warps per SM on average.
    const double warp_cycles = slots * 12.0 / 4.0 / instrs / 100.0;

    t.AddRow({v.smbd ? "yes" : "no", v.pipe ? "yes" : "no", FormatF(ms, 1),
              FormatF(100.0 * est.time.bw_utilization, 1),
              FormatF(issue_busy, 1), FormatF(warp_cycles, 1),
              FormatF(100.0 * est.time.tc_utilization, 1)});
  }
  std::printf("%s\n", t.Render().c_str());
  std::printf("Measured slowdowns: no-SMBD +%.2f%%, no-AsyncPipe +%.2f%%.\n",
              100.0 * (no_smbd_ms / base_ms - 1.0),
              100.0 * (no_pipe_ms / base_ms - 1.0));
  std::printf(
      "Paper reference (303.1ms baseline): removing SMBD costs +10.0%% duration and\n"
      "collapses bandwidth utilization; removing AsyncPipe costs +2.0%%.\n");

  PrintHeader("Pipeline schedule model (per-iteration stage overlap)");
  const StageTimes stages{/*load_w=*/4.6, /*load_x=*/0.5, /*decode=*/2.9, /*mma=*/2.4};
  Table pt({"variant", "per-iter time", "vs full"});
  PipelineConfig full;
  PipelineConfig coarse;
  coarse.fine_grained_groups = false;
  PipelineConfig serial;
  serial.double_buffer = false;
  const double tf = PipelineIterationTime(stages, full);
  pt.AddRow({"double-buffer + fine-grained groups", FormatF(tf, 2), "1.00x"});
  pt.AddRow({"double-buffer only", FormatF(PipelineIterationTime(stages, coarse), 2),
             FormatF(PipelineIterationTime(stages, coarse) / tf, 2) + "x"});
  pt.AddRow({"fully serialized", FormatF(PipelineIterationTime(stages, serial), 2),
             FormatF(PipelineIterationTime(stages, serial) / tf, 2) + "x"});
  std::printf("%s\n", pt.Render().c_str());

  PrintHeader("Discrete-event timeline (8 iterations; # = DRAM, d = SMBD, M = mma)");
  for (const auto& [label, cfg2] :
       {std::pair<const char*, PipelineConfig>{"full pipeline", full},
        {"no double-buffer (serialized)", serial}}) {
    const TimelineResult r = SimulateKernelTimeline(stages, cfg2, 8);
    std::printf("%s (total %.1f units):\n%s\n", label, r.total_time,
                r.RenderGantt(72).c_str());
  }
  return 0;
}
