// Figure 7 companion: the weight-matrix data-movement path.
//
// The paper's Fig. 7 diagrams three paths for fetching W: cuBLAS's ideal
// LDGSTS global->shared bypass, Flash-LLM's LDG round trip through the
// register file plus a scattered shared-memory unpack, and SpInfer's
// LDGSTS bypass of the compressed GTile. The functional simulator's
// instruction counters make the schematic measurable.
#include "bench/bench_util.h"
#include "src/util/random.h"

int main() {
  using namespace spinfer;
  Rng rng(707);
  const HalfMatrix w = HalfMatrix::RandomSparse(512, 512, 0.6, rng);
  const HalfMatrix x = HalfMatrix::Random(512, 16, rng, 0.5f);

  PrintHeader("Figure 7: W data-movement path, 512x512 @ 60% sparsity (measured)");
  Table t({"kernel", "LDGSTS (bypass)", "LDG (via regs)", "smem written",
           "smem bank conflicts", "DRAM read"});
  for (const char* name : {"cublas_tc", "flash_llm", "spinfer"}) {
    PerfCounters c;
    MakeKernel(name)->Run(w, x, &c);
    t.AddRow({name, std::to_string(c.ldgsts_instrs), std::to_string(c.ldg_instrs),
              FormatBytes(c.smem_bytes_written), std::to_string(c.smem_bank_conflicts),
              FormatBytes(c.dram_bytes_read)});
  }
  std::printf("%s\n", t.Render().c_str());
  std::printf(
      "Shape check: Flash-LLM is the only kernel moving W through the register\n"
      "file (LDG) and paying scatter conflicts; SpInfer's path is LDGSTS-only,\n"
      "like cuBLAS, but over the compressed GTile (smallest DRAM column).\n");
  return 0;
}
