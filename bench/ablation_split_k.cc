// Design-choice ablation: split-K parallelism (paper §4.3.1).
//
// Decode-phase grids are short (M/GT_rows blocks); split-K multiplies the
// block count at the price of an FP32 reduction-workspace round trip. This
// bench sweeps the factor across shapes and sparsities, showing the
// fill-vs-traffic tradeoff the ChooseSplitK heuristic navigates.
#include "bench/bench_util.h"
#include "src/core/spinfer_kernel.h"
#include "src/format/sparse_util.h"

int main() {
  using namespace spinfer;
  const DeviceSpec dev = Rtx4090();

  PrintHeader("Ablation: split-K factor (modeled us, N=16, s=60%, RTX4090)");
  for (const auto& [m, k] : {std::pair<int64_t, int64_t>{4096, 4096},
                             {8192, 8192},
                             {1024, 32768},
                             {28672, 8192}}) {
    const SpmmProblem p = MakeProblem(m, k, 16, 0.6);
    Table t({"split_k", "time_us", "workspace traffic", "note"});
    const int auto_split = ChooseSplitK(m, k, TcaBmeConfig{}, dev);
    double best = 1e30;
    int best_split = 1;
    for (int split : {1, 2, 4, 8, 16}) {
      if (split > PadUp(k, 64) / 64) {
        continue;
      }
      SpInferKernelConfig cfg;
      cfg.split_k = split;
      const KernelEstimate est = SpInferSpmmKernel(cfg).Estimate(p, dev);
      const uint64_t ws =
          split > 1 ? 2ull * 4 * m * 16 * static_cast<uint64_t>(split) : 0;
      if (est.time.total_us < best) {
        best = est.time.total_us;
        best_split = split;
      }
      t.AddRow({std::to_string(split), FormatF(est.time.total_us, 1), FormatBytes(ws),
                split == auto_split ? "<- heuristic" : ""});
    }
    std::printf("M=%ld K=%ld:\n%sbest: split_k=%d; heuristic chose %d\n\n",
                static_cast<long>(m), static_cast<long>(k), t.Render().c_str(),
                best_split, auto_split);
  }
  return 0;
}
