// Figure 2: runtime and memory breakdown of dense OPT-13B on 2x RTX4090
// under FasterTransformer (batch 16, output 256). The paper reads off this
// figure that weights are 87.6% of memory and GEMM 61.6% of execution time —
// the two bottlenecks SpInfer attacks.
#include "bench/bench_util.h"
#include "src/llm/engine.h"

int main() {
  using namespace spinfer;
  EngineConfig cfg;
  cfg.model = Opt13B();
  cfg.framework = Framework::kFasterTransformer;
  cfg.device = Rtx4090();
  cfg.num_gpus = 2;
  cfg.batch = 16;
  cfg.input_len = 128;
  cfg.output_len = 256;

  const InferenceReport r = SimulateInference(cfg);
  PrintHeader("Figure 2: OPT-13B breakdown, FasterTransformer, 2x RTX4090, BS=16");
  if (r.oom) {
    std::printf("unexpected OOM: %s\n", r.memory.ToString().c_str());
    return 1;
  }

  // Runtime breakdown over the full request (prefill + decode).
  const double linear = r.prefill.linear_us + r.decode.linear_us;
  const double attn = r.prefill.attention_us + r.decode.attention_us;
  const double comm = r.prefill.comm_us + r.decode.comm_us;
  const double other = r.prefill.other_us + r.decode.other_us;
  const double total = linear + attn + comm + other;
  Table rt({"runtime component", "time_ms", "share"});
  rt.AddRow({"GEMM (linear)", FormatF(linear / 1e3, 1), FormatF(100 * linear / total, 1) + "%"});
  rt.AddRow({"MHA", FormatF(attn / 1e3, 1), FormatF(100 * attn / total, 1) + "%"});
  rt.AddRow({"COMM", FormatF(comm / 1e3, 1), FormatF(100 * comm / total, 1) + "%"});
  rt.AddRow({"Other", FormatF(other / 1e3, 1), FormatF(100 * other / total, 1) + "%"});
  std::printf("%s\n", rt.Render().c_str());

  // Memory breakdown (per GPU).
  const MemoryPlan& m = r.memory;
  const double mem_total = static_cast<double>(m.TotalBytes());
  Table mt({"memory component", "bytes", "share"});
  auto row = [&](const char* name, uint64_t bytes) {
    mt.AddRow({name, FormatBytes(bytes), FormatF(100.0 * bytes / mem_total, 1) + "%"});
  };
  row("Model weights", m.weight_bytes);
  row("KV cache", m.kv_cache_bytes);
  row("Activations", m.activation_bytes);
  row("Workspace+reserve", m.workspace_bytes + m.reserve_bytes);
  std::printf("%s\n", mt.Render().c_str());
  std::printf("Paper reference: weights ~87.6%% of memory, GEMM ~61.6%% of runtime.\n");
  return 0;
}
