// Figure 1: execution time of unstructured SpMM implementations vs cuBLAS
// at M/K/N = 28672/8192/16 (a LLaMA2-70B FFN shape) on RTX4090, across
// sparsity levels. The paper's point: before SpInfer, no kernel beat cuBLAS
// at <= 50% sparsity.
#include "bench/bench_util.h"

int main() {
  using namespace spinfer;
  const DeviceSpec dev = Rtx4090();
  const int64_t m = 28672;
  const int64_t k = 8192;
  const int64_t n = 16;

  PrintHeader("Figure 1: SpMM vs cuBLAS, M/K/N=28672/8192/16, RTX4090 (modeled us)");
  Table t({"sparsity", "cublas_tc", "cusparse", "sputnik", "sparta", "flash_llm",
           "spinfer", "spinfer_speedup"});
  for (double s : {0.4, 0.5, 0.6, 0.7, 0.8}) {
    const SpmmProblem p = MakeProblem(m, k, n, s);
    const double cublas = ModeledTimeUs("cublas_tc", p, dev);
    const double spinfer_t = ModeledTimeUs("spinfer", p, dev);
    t.AddRow({FormatF(s * 100, 0) + "%", FormatF(cublas, 1),
              FormatF(ModeledTimeUs("cusparse", p, dev), 1),
              FormatF(ModeledTimeUs("sputnik", p, dev), 1),
              FormatF(ModeledTimeUs("sparta", p, dev), 1),
              FormatF(ModeledTimeUs("flash_llm", p, dev), 1), FormatF(spinfer_t, 1),
              FormatF(cublas / spinfer_t, 2) + "x"});
  }
  std::printf("%s\n", t.Render().c_str());
  std::printf("Paper shape check: only SpInfer undercuts cuBLAS at <=50%% sparsity;\n"
              "Flash-LLM/SparTA cross over near 50-60%%; cuSPARSE is far behind.\n");
  return 0;
}
