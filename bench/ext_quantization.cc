// Extension bench: sparsity x INT8 quantization composition.
//
// The paper positions SpInfer as complementary to quantization (§2.3); the
// TcaBmeQuantMatrix variant realizes it. This bench reports compression and
// the projected kernel speedup (quantized payload halves the dominant Values
// traffic) across sparsity levels.
#include <algorithm>
#include <cmath>

#include "bench/bench_util.h"
#include "src/format/storage_model.h"
#include "src/format/tca_bme_quant.h"
#include "src/util/random.h"

int main() {
  using namespace spinfer;
  const DeviceSpec dev = Rtx4090();
  const int64_t m = 4096;
  const int64_t k = 4096;

  PrintHeader("Extension: TCA-BME x INT8 quantization, M=K=4096");
  Table t({"sparsity", "FP16 CR", "INT8 CR", "measured INT8 CR", "rel quant err",
           "projected speedup vs cuBLAS"});
  Rng rng(4242);
  for (int pct : {30, 40, 50, 60, 70}) {
    const double s = pct / 100.0;
    const int64_t nnz = static_cast<int64_t>(m * k * (1.0 - s));
    const double fp16_cr = CompressionRatio(m, k, TcaBmeStorageModel(m, k, nnz));
    const double int8_cr = CompressionRatio(m, k, TcaBmeQuantStorageModel(m, k, nnz));

    // Byte-exact + error measurement on a 1024^2 sample.
    const HalfMatrix w = HalfMatrix::RandomSparse(1024, 1024, s, rng);
    const TcaBmeQuantMatrix enc = TcaBmeQuantMatrix::Encode(w);
    const HalfMatrix back = enc.Decode();
    double num = 0.0;
    double den = 0.0;
    for (int64_t i = 0; i < w.size(); ++i) {
      const double a = w.data()[i].ToFloat();
      const double b = back.data()[i].ToFloat();
      num += (a - b) * (a - b);
      den += a * a;
    }

    // Memory-bound projection: kernel time scales with payload bytes.
    const SpmmProblem p = MakeProblem(m, k, 16, s);
    const double cublas = ModeledTimeUs("cublas_tc", p, dev);
    const double spinfer_fp16 = ModeledTimeUs("spinfer", p, dev);
    const double traffic_ratio =
        static_cast<double>(TcaBmeQuantStorageModel(m, k, nnz)) /
        static_cast<double>(TcaBmeStorageModel(m, k, nnz));
    const double spinfer_int8 =
        std::max(spinfer_fp16 * traffic_ratio, spinfer_fp16 * 0.5);

    t.AddRow({std::to_string(pct) + "%", FormatF(fp16_cr, 2) + "x",
              FormatF(int8_cr, 2) + "x", FormatF(enc.CompressionRatio(), 2) + "x",
              FormatF(std::sqrt(num / den), 4),
              FormatF(cublas / spinfer_int8, 2) + "x"});
  }
  std::printf("%s\n", t.Render().c_str());
  std::printf("INT8 payloads roughly halve TCA-BME's dominant traffic term, compounding\n"
              "the sparsity speedup; quantization error stays well under 1%% RMS.\n");
  return 0;
}
