// Design-choice ablation: GroupTile geometry.
//
// TCA-BME fixes BitmapTile (8x8, the TC atom) and TCTile (16x16, the mma
// shape) by hardware contract, but the GroupTile — the thread-block tile —
// trades off offset-array overhead, padding waste, shared-memory pressure
// (occupancy) and grid parallelism. This bench sweeps the geometry across
// representative LLM shapes and shows what the autotuner picks.
#include "bench/bench_util.h"
#include "src/core/autotuner.h"
#include "src/gpusim/occupancy.h"

int main() {
  using namespace spinfer;
  const DeviceSpec dev = Rtx4090();

  struct Shape {
    const char* label;
    int64_t m, k;
  };
  const Shape shapes[] = {
      {"OPT-13B out_proj", 5120, 5120},
      {"OPT-30B fc1", 28672, 7168},
      {"LLaMA2-70B down", 8192, 28672},
      {"short-M strip", 512, 16384},
  };

  PrintHeader("Ablation: GroupTile geometry (modeled us, N=16, s=60%, RTX4090)");
  for (const Shape& s : shapes) {
    const SpmmProblem p = MakeProblem(s.m, s.k, 16, 0.6);
    Table t({"GT geometry", "time_us", "smem/block", "warps/SM", "split_k"});
    for (int gr : {16, 32, 64, 128}) {
      for (int gc : {16, 64, 128}) {
        SpInferKernelConfig cfg;
        cfg.format.gt_rows = gr;
        cfg.format.gt_cols = gc;
        cfg.split_k = 0;
        const SpInferSpmmKernel kernel(cfg);
        const KernelEstimate est = kernel.Estimate(p, dev);
        const KernelResources res = kernel.Resources(0.6, 16);
        const OccupancyResult occ = ComputeOccupancy(res, dev);
        t.AddRow({std::to_string(gr) + "x" + std::to_string(gc),
                  FormatF(est.time.total_us, 1), FormatBytes(res.smem_bytes_per_block),
                  std::to_string(occ.warps_per_sm),
                  std::to_string(ChooseSplitK(p.m, p.k, cfg.format, dev))});
      }
    }
    const AutotuneResult tuned = AutotuneSpInfer(p, dev);
    std::printf("%s (%ldx%ld):\n%sautotuner picks %dx%d -> %.1f us\n\n", s.label,
                static_cast<long>(s.m), static_cast<long>(s.k), t.Render().c_str(),
                tuned.config.format.gt_rows, tuned.config.format.gt_cols,
                tuned.time.total_us);
  }
  std::printf("Takeaway: the default 64x64 GroupTile is near-optimal for square LLM\n"
              "shapes; short-M strips prefer smaller row tiles to keep the grid full.\n");
  return 0;
}
