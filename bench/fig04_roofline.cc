// Figure 4: roofline comparison of GEMM vs SpMM formats at varying
// sparsities and batch sizes (Eqs. 6-8). Formats with higher CR sit at
// higher compute intensity and therefore higher attainable performance in
// the memory-bound region.
#include "bench/bench_util.h"
#include "src/format/storage_model.h"
#include "src/format/tca_bme.h"
#include "src/roofline/roofline.h"

int main() {
  using namespace spinfer;
  const DeviceSpec dev = Rtx4090();
  const int64_t m = 4096;
  const int64_t k = 4096;

  PrintHeader("Figure 4: compute intensity (paper-normalized units, Eqs. 6-8)");
  std::printf("Device ridge point: %.1f FLOP/B (RTX4090)\n\n", RooflineRidge(dev));

  for (int64_t n : {8, 16, 32}) {
    Table t({"sparsity", "GEMM", "CSR", "Tiled-CSL", "SparTA", "TCA-BME", "optimal"});
    for (int pct : {40, 50, 60, 70}) {
      const double s = pct / 100.0;
      const int64_t nnz = static_cast<int64_t>(m * k * (1.0 - s));
      const int64_t tiles = (m / 64) * (k / 64);
      const double cr_csr = CompressionRatio(m, k, CsrStorageModel(m, nnz));
      const double cr_csl = CompressionRatio(m, k, TiledCslStorageModel(tiles, nnz));
      const double cr_sparta = CompressionRatio(m, k, SpartaStorageModel(m, k, s));
      const double cr_tca = CompressionRatio(m, k, TcaBmeStorageModel(m, k, nnz));
      t.AddRow({FormatF(pct, 0) + "%", FormatF(CiGemm(m, n), 1),
                FormatF(CiSpmm(m, n, cr_csr), 1), FormatF(CiSpmm(m, n, cr_csl), 1),
                FormatF(CiSpmm(m, n, cr_sparta), 1), FormatF(CiSpmm(m, n, cr_tca), 1),
                FormatF(CiOptimal(m, n, s), 1)});
    }
    std::printf("N = %ld (batch size)\n%s\n", static_cast<long>(n), t.Render().c_str());
  }

  PrintHeader("Figure 4 (attainable TFLOP/s at true arithmetic intensity, N=16)");
  Table a({"kernel", "FLOP/B", "attainable", "bound"});
  // True intensity: 2*M*K*N flops over W-format bytes + X + O.
  const int64_t n = 16;
  const double flops = 2.0 * m * k * n;
  struct Fmt {
    const char* name;
    double bytes;
  };
  const int64_t nnz50 = m * k / 2;
  const double xo_bytes = 2.0 * k * n + 2.0 * m * n;
  const Fmt fmts[] = {
      {"GEMM (dense)", 2.0 * m * k + xo_bytes},
      {"CSR", static_cast<double>(CsrStorageModel(m, nnz50)) + xo_bytes},
      {"Tiled-CSL",
       static_cast<double>(TiledCslStorageModel((m / 64) * (k / 64), nnz50)) + xo_bytes},
      {"TCA-BME", static_cast<double>(TcaBmeStorageModel(m, k, nnz50)) + xo_bytes},
      {"optimal", 1.0 * m * k + xo_bytes},
  };
  for (const Fmt& f : fmts) {
    const RooflinePoint p = RooflineAttainable(f.name, flops / f.bytes, dev);
    a.AddRow({f.name, FormatF(p.flops_per_byte, 2), FormatF(p.attainable_tflops, 1),
              p.memory_bound ? "memory" : "compute"});
  }
  std::printf("%s\n", a.Render().c_str());
  std::printf("Paper shape check: all decode-phase points are memory-bound; TCA-BME\n"
              "sits closest to the optimal CI, CSR/Tiled-CSL below dense GEMM.\n");
  return 0;
}
