// Perf-smoke regression harness.
//
// Times the repository's hot paths — the functional simulator (ReferenceGemm,
// the SpInfer functional kernel, the TCA-BME encoder, SMBD decode) and the
// production CPU backend (CpuSpmmInto at decode/prefill widths with thread
// sweep points, plus a tiny-transformer decode step) — on fixed shapes and
// writes the results to BENCH.json (name -> wall_ms / repetitions /
// threads). The shapes and seeds are frozen so successive PRs can diff the
// numbers directly (tools/bench_delta.py renders the diff against
// bench/BENCH_baseline.json); EXPERIMENTS.md records the trajectory.
//
// Usage: perf_regression [--threads=N] [--reps=R] [--out=BENCH.json]
//                        [--trace=TRACE.json] [--metrics=METRICS.json]
//                        [--timeline=TIMELINE.jsonl] [--prom=METRICS.prom]
//
// --trace: after each bench's (untraced) timing loop, one extra traced pass
// runs under a `bench.<name>` span; the combined Chrome trace-event JSON is
// written at the end and loads in Perfetto / chrome://tracing. Timing
// numbers never include tracing overhead.
// --metrics: per-bench wall-time histograms (every rep), thread-pool
// scheduling totals, and PerfCounters gauges, dumped as a registry JSON.
// Kept out of BENCH.json so its flat name->record diff contract is untouched.
// --timeline: the serving_obs_overhead engine's per-request event log,
// written as JSONL (tools/request_timeline.py summarizes/validates it). The
// same run's async spans join the --trace output as per-request "b"/"e"
// pairs.
// --prom: Prometheus text-exposition snapshot of the metrics registry after
// all benches ran (tools/prom_lint.py validates it).
//
// This is a smoke harness, not a statistics engine: each point reports the
// best of `reps` repetitions (default 5). Treat >1.3x movement on the same
// machine as signal, anything less as noise.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/cpu_backend.h"
#include "src/core/cpu_spmv.h"
#include "src/llm/paged_attention.h"
#include "src/core/smbd.h"
#include "src/format/tca_bme_quant.h"
#include "src/core/spinfer_kernel.h"
#include "src/format/tca_bme.h"
#include "src/gpusim/device_spec.h"
#include "src/llm/disagg_cluster.h"
#include "src/llm/model_config.h"
#include "src/llm/serving_engine.h"
#include "src/llm/sharded_engine.h"
#include "src/llm/tiny_transformer.h"
#include "src/numeric/matrix.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/perf_counters_bridge.h"
#include "src/obs/prom_export.h"
#include "src/obs/request_log.h"
#include "src/pruning/magnitude.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

// Fixed bench shapes. Chosen to run in O(100ms) per repetition pre-fast-path
// on one core so the smoke stays cheap enough for CI.
constexpr int64_t kGemmM = 256, kGemmK = 256, kGemmN = 64;
constexpr int64_t kSpmmM = 512, kSpmmK = 512, kSpmmN = 64;
constexpr double kSpmmSparsity = 0.6;
constexpr int64_t kEncodeM = 1024, kEncodeK = 1024;
constexpr double kEncodeSparsity = 0.6;
constexpr int kDecodeTiles = 4096;  // 16x16 TCTiles per decode repetition
// Production CPU backend shape: an OPT-13B-class layer at the paper's 60%
// operating point, timed at decode (n=8) and small-prefill (n=64) widths.
constexpr int64_t kCpuSpmmM = 4096, kCpuSpmmK = 4096;
constexpr double kCpuSpmmSparsity = 0.6;
constexpr int64_t kTtDecodeCtx = 32;  // tokens per tiny-transformer decode step

// Folds a FloatMatrix into one float so results feed a volatile sink; keeps
// the optimizer from deleting timed work and doubles as a cross-run checksum.
float Checksum(const FloatMatrix& m) {
  float s = 0.0f;
  for (int64_t i = 0; i < m.size(); ++i) {
    s += m.data()[i];
  }
  return s;
}

volatile float g_sink = 0.0f;

int Main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  flags.RestrictTo(
      {"threads", "reps", "out", "trace", "metrics", "timeline", "prom"});
  ThreadPool::SetGlobalThreads(static_cast<int>(flags.GetInt("threads", 1)));
  const int reps = static_cast<int>(flags.GetInt("reps", 5));
  const std::string out_path = flags.GetString("out", "BENCH.json");
  const std::string trace_path = flags.GetString("trace", "");
  const std::string metrics_path = flags.GetString("metrics", "");
  const std::string timeline_path = flags.GetString("timeline", "");
  const std::string prom_path = flags.GetString("prom", "");
  const int threads = ThreadPool::Global().num_threads();

  PrintHeader("Perf-smoke regression (fixed shapes, wall clock)");
  std::printf("threads=%d reps=%d out=%s\n", threads, reps, out_path.c_str());

  std::vector<BenchRecord> records;
  auto bench_at = [&](const std::string& name, int at_threads,
                      const std::function<void()>& fn) {
    BenchRecord r;
    r.name = name;
    obs::Histogram* hist =
        metrics_path.empty()
            ? nullptr
            : obs::MetricsRegistry::Global().GetHistogram(
                  "bench." + name + ".wall_ms", BenchWallMsBuckets());
    r.wall_ms = MinWallMs(reps, fn, hist);
    r.repetitions = reps;
    r.threads = at_threads;
    records.push_back(r);
    std::printf("%-28s %10.3f ms\n", name.c_str(), r.wall_ms);
    if (!trace_path.empty()) {
      // Separate traced pass: the timing numbers above never pay recording
      // overhead, and the trace still covers every bench end to end.
      RunTracedOnce(name, fn);
    }
  };
  auto bench = [&](const std::string& name, const std::function<void()>& fn) {
    bench_at(name, threads, fn);
  };

  // --- ReferenceGemm: dense FP16 oracle. -----------------------------------
  {
    Rng rng(1001);
    const HalfMatrix w = HalfMatrix::Random(kGemmM, kGemmK, rng);
    const HalfMatrix x = HalfMatrix::Random(kGemmK, kGemmN, rng);
    bench("reference_gemm", [&] { g_sink = Checksum(ReferenceGemm(w, x)); });
  }

  // --- SpInfer functional kernel (encode once, run per rep). ---------------
  {
    Rng rng(1002);
    const HalfMatrix w =
        HalfMatrix::RandomSparse(kSpmmM, kSpmmK, kSpmmSparsity, rng);
    const HalfMatrix x = HalfMatrix::Random(kSpmmK, kSpmmN, rng);
    const SpInferSpmmKernel kernel;
    const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w, kernel.config().format);
    PerfCounters last_counters;
    bench("spinfer_functional", [&] {
      PerfCounters c;
      g_sink = Checksum(kernel.RunEncoded(enc, x, &c));
      last_counters = c;
    });
    if (!metrics_path.empty()) {
      // One functional run's hardware-event totals next to the wall times.
      obs::RecordPerfCounters(last_counters, "sim.spinfer_functional");
    }
  }

  // --- TCA-BME encoder. ----------------------------------------------------
  {
    Rng rng(1003);
    const HalfMatrix w =
        HalfMatrix::RandomSparse(kEncodeM, kEncodeK, kEncodeSparsity, rng);
    bench("tca_bme_encode", [&] {
      const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
      g_sink = static_cast<float>(enc.nnz());
    });
  }

  // --- SMBD decode: many independent TCTiles at ~60% density. --------------
  {
    Rng rng(1004);
    std::vector<uint64_t> bitmaps(static_cast<size_t>(kDecodeTiles) * 4);
    std::vector<Half> values;
    std::vector<size_t> run_starts(bitmaps.size());
    for (size_t i = 0; i < bitmaps.size(); ++i) {
      // AND of two draws ~ 25% density padded up with a third OR draw to land
      // near the bench's 60% target overall.
      uint64_t bm = (rng.Next() & rng.Next()) | (rng.Next() & rng.Next());
      bitmaps[i] = bm;
      run_starts[i] = values.size();
      for (int b = 0; b < 64; ++b) {
        if ((bm >> b) & 1ull) {
          values.push_back(Half(static_cast<float>(b + 1)));
        }
      }
    }
    bench("smbd_decode", [&] {
      float acc = 0.0f;
      for (int t = 0; t < kDecodeTiles; ++t) {
        const uint64_t* bm = &bitmaps[static_cast<size_t>(t) * 4];
        const Half* ptrs[4];
        for (int q = 0; q < 4; ++q) {
          ptrs[q] = values.data() + run_starts[static_cast<size_t>(t) * 4 + q];
        }
        MmaAFragment frag[kWarpSize];
        SmbdDecodeTcTile(bm, ptrs, frag, nullptr);
        acc += frag[t % kWarpSize].a[t % 8].ToFloat();
      }
      g_sink = acc;
    });
  }

  // --- Production CPU SpMM backend (encode once, reuse workspace). ---------
  {
    Rng rng(1005);
    const HalfMatrix w =
        HalfMatrix::RandomSparse(kCpuSpmmM, kCpuSpmmK, kCpuSpmmSparsity, rng);
    const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
    const HalfMatrix x8 = HalfMatrix::Random(kCpuSpmmK, 8, rng);
    const HalfMatrix x64 = HalfMatrix::Random(kCpuSpmmK, 64, rng);
    SpmmWorkspace ws;
    FloatMatrix out;
    bench("cpu_spmm_n8", [&] {
      CpuSpmmInto(enc, x8, &ws, &out);
      g_sink = out.data()[0];
    });
    bench("cpu_spmm_n64", [&] {
      CpuSpmmInto(enc, x64, &ws, &out);
      g_sink = out.data()[0];
    });
    // Thread-sweep points on the n=64 shape: same bits at any width (the
    // backend's determinism contract), only the wall clock moves.
    for (const int t : {2, 4}) {
      ThreadPool::SetGlobalThreads(t);
      bench_at("cpu_spmm_n64_t" + std::to_string(t), t, [&] {
        CpuSpmmInto(enc, x64, &ws, &out);
        g_sink = out.data()[0];
      });
    }
    ThreadPool::SetGlobalThreads(static_cast<int>(flags.GetInt("threads", 1)));

    // --- Bitmap-direct SpMV (batch-1 decode fast path), same layer shape. --
    // cpu_spmv is the dispatched variant the serving path runs; the
    // _portable point keeps the fallback honest; the _int8 point times the
    // quantized-weight path (per-call activation quantization included).
    const HalfMatrix x1 = HalfMatrix::Random(kCpuSpmmK, 1, rng);
    bench("cpu_spmv", [&] {
      CpuSpmvInto(enc, x1, &ws, &out);
      g_sink = out.data()[0];
    });
    bench("cpu_spmv_portable", [&] {
      out.Reshape(enc.rows(), 1);
      out.Fill(0.0f);
      CpuSpmvAccumulateIntoVariant(enc, x1, &ws, &out,
                                   CpuSpmmVariant::kPortable);
      g_sink = out.data()[0];
    });
    const TcaBmeQuantMatrix encq = TcaBmeQuantMatrix::Encode(w);
    FloatMatrix x1f(kCpuSpmmK, 1);
    for (int64_t i = 0; i < x1f.size(); ++i) {
      x1f.data()[i] = x1.data()[i].ToFloat();
    }
    bench("cpu_spmv_int8", [&] {
      CpuSpmvInt8Into(encq, x1f, &ws, &out);
      g_sink = out.data()[0];
    });
  }

  // --- Tiny-transformer decode step on the sparse serving path. ------------
  {
    TinyTransformer model(TinyConfig{}, 1006);
    model.PruneWeights(MagnitudePruner(), 0.6);
    std::vector<int32_t> tokens(static_cast<size_t>(kTtDecodeCtx));
    for (size_t i = 0; i < tokens.size(); ++i) {
      tokens[i] = static_cast<int32_t>((i * 7 + 3) % model.config().vocab);
    }
    bench("tiny_transformer_decode_step", [&] {
      g_sink = Checksum(model.Forward(tokens, MatmulBackend::kTcaBmeCpu));
    });
  }

  // --- Batched paged-attention decode kernel (fused, SIMD-dispatched). -----
  // The executing attention path in isolation: 4 sequences x 8 heads over a
  // paged FP32 KV cache, head_dim 32. The ctx=256/2048 points track the
  // context scaling (attention is the decode bottleneck at long context);
  // the _ref point runs the retained scalar reference on the same pages, so
  // ctx2048_ref / ctx2048 is the fused kernel's paired speedup.
  {
    PagedKvCacheConfig kcfg;
    kcfg.layers = 1;
    kcfg.kv_dim = 256;  // 8 heads x head_dim 32
    kcfg.block_tokens = 16;
    kcfg.num_blocks = 4 * 128 + 8;
    PagedKvCache cache(kcfg);
    constexpr int64_t kAttnSeqs = 4;
    constexpr int64_t kAttnCtx = 2048;
    constexpr int64_t kAttnHeads = 8;
    Rng rng(2001);
    for (int64_t s = 0; s < kAttnSeqs; ++s) {
      SPINFER_CHECK(cache.AddSequence(s, kAttnCtx));
      for (int64_t t = 0; t < kAttnCtx; ++t) {
        float* krow = cache.KRow(0, s, t);
        float* vrow = cache.VRow(0, s, t);
        for (int64_t r = 0; r < kcfg.kv_dim; ++r) {
          krow[r] = rng.Uniform(-1.0f, 1.0f);
          vrow[r] = rng.Uniform(-1.0f, 1.0f);
        }
      }
    }
    FloatMatrix q(kcfg.kv_dim, kAttnSeqs);
    for (int64_t i = 0; i < q.size(); ++i) {
      q.data()[i] = rng.Uniform(-1.0f, 1.0f);
    }
    FloatMatrix attn(kcfg.kv_dim, kAttnSeqs);
    PagedAttentionScratch scratch;
    std::vector<PagedAttentionItem> items(static_cast<size_t>(kAttnSeqs));
    for (const int64_t ctx : {int64_t{256}, kAttnCtx}) {
      for (int64_t s = 0; s < kAttnSeqs; ++s) {
        items[static_cast<size_t>(s)] = {s, s, ctx};
      }
      bench("paged_attention_ctx" + std::to_string(ctx), [&] {
        PagedAttentionDecodeBatch(cache, /*layer=*/0, kAttnHeads, kAttnHeads,
                                  q, items, &attn, &scratch);
        g_sink = attn.data()[0];
      });
    }
    std::vector<float> scores;
    bench("paged_attention_ctx2048_ref", [&] {
      for (int64_t s = 0; s < kAttnSeqs; ++s) {
        PagedAttentionDecodeReference(cache, /*layer=*/0, s, kAttnHeads,
                                      kAttnHeads, q, s, &attn, &scores,
                                      kAttnCtx);
      }
      g_sink = attn.data()[0];
    });
    const double fused_ms = records[records.size() - 2].wall_ms;
    const double ref_ms = records.back().wall_ms;
    std::printf("  derived: fused over reference %17.2fx at ctx=2048\n",
                ref_ms / fused_ms);
  }

  // --- Continuous-batching serving decode (paged KV cache). ----------------
  // One SpMM with N = batch columns per weight matrix per iteration; the
  // batch-1/4/8 points quantify the amortization the executing engine buys
  // over single-sequence decode. Each repetition replays identical work: the
  // sequences are rewound to their prompt context afterwards, so the cache
  // never grows across reps and the workspace stays warm.
  {
    TinyConfig big;
    big.vocab = 256;
    big.hidden = 256;
    big.layers = 4;
    big.heads = 8;
    big.ffn = 1024;
    big.max_seq = 128;
    TinyTransformer model(big, 1007);
    model.PruneWeights(MagnitudePruner(), 0.6);
    constexpr int64_t kSrvSeqs = 8;
    constexpr int64_t kSrvPrompt = 32;
    constexpr int64_t kSrvSteps = 16;
    PagedKvCache cache(model.KvCacheConfig(/*block_tokens=*/16,
                                           /*num_blocks=*/64));
    Rng rng(1008);
    std::vector<int32_t> last(static_cast<size_t>(kSrvSeqs));
    for (int64_t s = 0; s < kSrvSeqs; ++s) {
      std::vector<int32_t> prompt(static_cast<size_t>(kSrvPrompt));
      for (auto& t : prompt) {
        t = static_cast<int32_t>(rng.Below(static_cast<uint64_t>(big.vocab)));
      }
      SPINFER_CHECK(cache.AddSequence(s, kSrvPrompt));
      const FloatMatrix logits =
          model.Prefill(prompt, MatmulBackend::kTcaBmeCpu, &cache, s);
      last[static_cast<size_t>(s)] = GreedyToken(logits, kSrvPrompt - 1);
    }
    std::vector<int32_t> next;
    for (const int64_t batch : {1, 4, 8}) {
      std::vector<int64_t> ids(static_cast<size_t>(batch));
      for (int64_t i = 0; i < batch; ++i) {
        ids[static_cast<size_t>(i)] = i;
      }
      bench("serving_decode_b" + std::to_string(batch), [&] {
        std::vector<int32_t> cur(last.begin(), last.begin() + batch);
        for (int64_t step = 0; step < kSrvSteps; ++step) {
          model.DecodeStep(ids, cur, MatmulBackend::kTcaBmeCpu, &cache, &next);
          cur = next;
        }
        for (int64_t i = 0; i < batch; ++i) {
          cache.TruncateSequence(i, kSrvPrompt);
        }
        g_sink = static_cast<float>(cur[0]);
      });
      // Derived serving metrics, stdout only — BENCH.json keeps its flat
      // name->wall_ms schema. Tail latency per rep lands in the --metrics
      // histograms like every other bench.
      const double tokens = static_cast<double>(batch * kSrvSteps);
      const double wall_ms = records.back().wall_ms;
      std::printf("  derived: %31.1f tok/s %9.3f ms/token\n",
                  tokens / (wall_ms / 1000.0), wall_ms / tokens);
    }
  }

  // --- Long-context serving decode: attention-bound batch-8 regime. --------
  // 512-token prompts make per-step attention (batch x heads x ctx x head_dim)
  // rival the weight matmuls — the regime the fused paged-attention kernel
  // targets and the prefix cache makes cheap to reach. Same rewind discipline
  // as the serving_decode_b* points above.
  {
    TinyConfig big;
    big.vocab = 256;
    big.hidden = 256;
    big.layers = 2;
    big.heads = 8;
    big.ffn = 512;
    big.max_seq = 576;
    TinyTransformer model(big, 1011);
    model.PruneWeights(MagnitudePruner(), 0.6);
    constexpr int64_t kLcSeqs = 8;
    constexpr int64_t kLcPrompt = 512;
    constexpr int64_t kLcSteps = 8;
    PagedKvCache cache(model.KvCacheConfig(/*block_tokens=*/16,
                                           /*num_blocks=*/8 * 36 + 8));
    Rng rng(1012);
    std::vector<int32_t> last(static_cast<size_t>(kLcSeqs));
    for (int64_t s = 0; s < kLcSeqs; ++s) {
      std::vector<int32_t> prompt(static_cast<size_t>(kLcPrompt));
      for (auto& t : prompt) {
        t = static_cast<int32_t>(rng.Below(static_cast<uint64_t>(big.vocab)));
      }
      SPINFER_CHECK(cache.AddSequence(s, kLcPrompt));
      const FloatMatrix logits =
          model.Prefill(prompt, MatmulBackend::kTcaBmeCpu, &cache, s);
      last[static_cast<size_t>(s)] = GreedyToken(logits, kLcPrompt - 1);
    }
    std::vector<int64_t> ids(static_cast<size_t>(kLcSeqs));
    for (int64_t i = 0; i < kLcSeqs; ++i) {
      ids[static_cast<size_t>(i)] = i;
    }
    std::vector<int32_t> next;
    bench("serving_decode_b8_longctx", [&] {
      std::vector<int32_t> cur = last;
      for (int64_t step = 0; step < kLcSteps; ++step) {
        model.DecodeStep(ids, cur, MatmulBackend::kTcaBmeCpu, &cache, &next);
        cur = next;
      }
      for (int64_t i = 0; i < kLcSeqs; ++i) {
        cache.TruncateSequence(i, kLcPrompt);
      }
      g_sink = static_cast<float>(cur[0]);
    });
    const double tokens = static_cast<double>(kLcSeqs * kLcSteps);
    const double wall_ms = records.back().wall_ms;
    std::printf("  derived: %31.1f tok/s %9.3f ms/token\n",
                tokens / (wall_ms / 1000.0), wall_ms / tokens);
  }

  // --- Serving v2: shared-prefix KV reuse and chunked prefill. -------------
  // Acceptance-scale workload: 32 requests sharing a 512-token system prompt
  // plus 4-token unique tails, arrivals 0.5 ms apart. Execution runs the
  // tiny model; the virtual clock is priced as OPT-13B on an RTX 4090 — the
  // regime where prompt prefill dominates per-iteration fixed costs, i.e.
  // where prefix caching and chunking earn their keep. BENCH.json records
  // the engine's real wall time per run; the virtual-time wins (TTFT ratio,
  // worst decode stall) are derived stdout metrics and feed EXPERIMENTS.md.
  {
    TinyConfig big;
    big.vocab = 256;
    big.hidden = 128;
    big.layers = 2;
    big.heads = 4;
    big.ffn = 256;
    big.max_seq = 640;
    TinyTransformer model(big, 1009);
    model.PruneWeights(MagnitudePruner(), 0.6);

    constexpr int64_t kSrvV2Requests = 32;
    constexpr int64_t kSrvV2Prefix = 512;
    Rng rng(1010);
    std::vector<int32_t> prefix(static_cast<size_t>(kSrvV2Prefix));
    for (auto& t : prefix) {
      t = static_cast<int32_t>(rng.Below(static_cast<uint64_t>(big.vocab)));
    }
    std::vector<std::vector<int32_t>> prompts;
    for (int64_t r = 0; r < kSrvV2Requests; ++r) {
      std::vector<int32_t> p = prefix;
      for (int t = 0; t < 4; ++t) {
        p.push_back(
            static_cast<int32_t>(rng.Below(static_cast<uint64_t>(big.vocab))));
      }
      prompts.push_back(std::move(p));
    }
    const auto run = [&](bool prefix_cache, int64_t chunk,
                         ExecServingReport* out) {
      ServingEngineConfig cfg;
      cfg.max_batch = 8;
      cfg.kv_block_tokens = 16;
      cfg.kv_num_blocks = 512;
      cfg.enable_prefix_cache = prefix_cache;
      cfg.prefill_chunk_tokens = chunk;
      cfg.cost.model = Opt13B();
      cfg.cost.framework = Framework::kSpInfer;
      cfg.cost.device = Rtx4090();
      cfg.cost.sparsity = 0.6;
      ServingEngine engine(&model, cfg);
      for (int64_t r = 0; r < kSrvV2Requests; ++r) {
        // The first request decodes long enough to hold (and keep indexed)
        // the prefix blocks until the last wave of adopters has admitted.
        engine.Submit(prompts[static_cast<size_t>(r)], r == 0 ? 64 : 6,
                      static_cast<double>(r) * 0.0005);
      }
      *out = engine.Run();
      g_sink = static_cast<float>(out->tokens_generated);
    };

    ExecServingReport v1;  // no cache, whole-prompt prefill: the v1 schedule
    run(false, 0, &v1);
    ExecServingReport cached;
    bench("serving_prefix_cache", [&] { run(true, 0, &cached); });
    std::printf(
        "  derived: virtual ttft %10.3f -> %8.3f ms mean (%4.2fx), "
        "%lld/%lld prompt blocks from cache\n",
        v1.ttft.mean_ms, cached.ttft.mean_ms,
        v1.ttft.mean_ms / cached.ttft.mean_ms,
        static_cast<long long>(cached.prefix_hit_blocks),
        static_cast<long long>(cached.prefix_hit_blocks +
                               cached.prefix_miss_blocks));
    // Chunk = 128: a CpuSpmm call traverses the whole sparse weight whatever
    // the panel width, so smaller chunks buy the same virtual-stall bound at
    // disproportionate real cost; 128 keeps the smoke cheap.
    ExecServingReport chunked;
    bench("serving_chunked_prefill", [&] { run(false, 128, &chunked); });
    std::printf(
        "  derived: virtual peak iteration %6.3f -> %8.3f ms (%4.2fx "
        "decode-stall bound)\n",
        v1.peak_iter_ms, chunked.peak_iter_ms,
        v1.peak_iter_ms / chunked.peak_iter_ms);
  }

  // --- Serving observability overhead: full engine, instrumented vs not. ---
  // Same model shape as the serving_decode_b* points, but through the
  // ServingEngine scheduler so every obs recording site is on the timed
  // path: 8 requests, 32-token prompts, 16 new tokens each.
  // serving_engine_b8 is the uninstrumented baseline; serving_obs_overhead
  // runs the identical workload with the request timeline, flight recorder,
  // and SLO tracker all on — the pair bounds the cost of observability
  // (acceptance: within 3%). The instrumented run's artifacts feed
  // --timeline/--prom and the per-request async spans of --trace.
  std::vector<obs::AsyncSpan> request_spans;
  {
    TinyConfig big;
    big.vocab = 256;
    big.hidden = 256;
    big.layers = 4;
    big.heads = 8;
    big.ffn = 1024;
    big.max_seq = 128;
    TinyTransformer model(big, 1013);
    model.PruneWeights(MagnitudePruner(), 0.6);
    constexpr int64_t kObsSeqs = 8;
    constexpr int64_t kObsPrompt = 32;
    constexpr int64_t kObsMaxNew = 16;
    Rng rng(1014);
    std::vector<std::vector<int32_t>> prompts;
    for (int64_t s = 0; s < kObsSeqs; ++s) {
      std::vector<int32_t> p(static_cast<size_t>(kObsPrompt));
      for (auto& t : p) {
        t = static_cast<int32_t>(rng.Below(static_cast<uint64_t>(big.vocab)));
      }
      prompts.push_back(std::move(p));
    }
    std::unique_ptr<ServingEngine> obs_engine;
    const auto run = [&](bool obs_on) {
      ServingEngineConfig cfg;
      cfg.max_batch = 8;
      cfg.kv_block_tokens = 16;
      cfg.kv_num_blocks = 64;
      cfg.enable_prefix_cache = true;
      cfg.cost.model = Opt13B();
      cfg.cost.framework = Framework::kSpInfer;
      cfg.cost.device = Rtx4090();
      cfg.cost.sparsity = 0.6;
      if (obs_on) {
        cfg.obs.request_timeline = true;
        cfg.obs.flight_recorder_iters = 64;
        cfg.obs.slo_tracker = true;
      }
      auto engine = std::make_unique<ServingEngine>(&model, cfg);
      for (int64_t s = 0; s < kObsSeqs; ++s) {
        engine->Submit(prompts[static_cast<size_t>(s)], kObsMaxNew,
                       static_cast<double>(s) * 0.0005);
      }
      const ExecServingReport rep = engine->Run();
      g_sink = static_cast<float>(rep.tokens_generated);
      if (obs_on) {
        obs_engine = std::move(engine);  // keep the logs for the artifacts
      }
    };
    bench("serving_engine_b8", [&] { run(false); });
    const double base_ms = records.back().wall_ms;
    bench("serving_obs_overhead", [&] { run(true); });
    const double obs_ms = records.back().wall_ms;
    std::printf("  derived: observability overhead %13.2f%%\n",
                100.0 * (obs_ms - base_ms) / base_ms);

    if (!timeline_path.empty()) {
      SPINFER_CHECK_MSG(obs_engine->request_log()->WriteJsonl(timeline_path),
                        "cannot write timeline output file");
      std::printf("wrote %s (%zu timeline events)\n", timeline_path.c_str(),
                  obs_engine->request_log()->events().size());
    }
    if (!trace_path.empty()) {
      request_spans = obs_engine->request_log()->ChromeAsyncSpans();
    }
  }

  // --- Multi-instance serving: TP shards and prefill/decode clusters. ------
  // serving_tp{2,4} run the serving_engine_b8 workload through the sharded
  // substrate; the delta over the single-instance point is the real cost of
  // slicing one step across N shards on one host (per-shard matmul calls +
  // copy-gathers — the virtual ring itself is priced, not executed).
  // serving_disagg runs the same 8 requests through the two-pool cluster
  // (prefill -> KV handoff -> decode), timing the executing pipeline.
  {
    TinyConfig big;
    big.vocab = 256;
    big.hidden = 256;
    big.layers = 4;
    big.heads = 8;
    big.ffn = 1024;
    big.max_seq = 128;
    TinyTransformer model(big, 1013);
    model.PruneWeights(MagnitudePruner(), 0.6);
    constexpr int64_t kTpSeqs = 8;
    constexpr int64_t kTpPrompt = 32;
    constexpr int64_t kTpMaxNew = 16;
    Rng rng(1014);
    std::vector<std::vector<int32_t>> prompts;
    for (int64_t s = 0; s < kTpSeqs; ++s) {
      std::vector<int32_t> p(static_cast<size_t>(kTpPrompt));
      for (auto& t : p) {
        t = static_cast<int32_t>(rng.Below(static_cast<uint64_t>(big.vocab)));
      }
      prompts.push_back(std::move(p));
    }
    const auto run_tp = [&](int shards) {
      ServingEngineConfig cfg;
      cfg.max_batch = 8;
      cfg.kv_block_tokens = 16;
      cfg.kv_num_blocks = 64;
      cfg.cost.model = Opt13B();
      cfg.cost.framework = Framework::kSpInfer;
      cfg.cost.device = Rtx4090();
      cfg.cost.sparsity = 0.6;
      ShardedEngineConfig scfg;
      scfg.shards = shards;
      scfg.kv_block_tokens = 16;
      scfg.kv_num_blocks = 64;
      scfg.device = Rtx4090();
      ShardedEngine substrate(&model, scfg);
      ServingEngine engine(&substrate, cfg);
      for (int64_t s = 0; s < kTpSeqs; ++s) {
        engine.Submit(prompts[static_cast<size_t>(s)], kTpMaxNew,
                      static_cast<double>(s) * 0.0005);
      }
      const ExecServingReport rep = engine.Run();
      g_sink = static_cast<float>(rep.tokens_generated);
    };
    bench("serving_tp2", [&] { run_tp(2); });
    bench("serving_tp4", [&] { run_tp(4); });
    const auto run_disagg = [&] {
      DisaggClusterConfig cfg;
      cfg.prefill_instances = 2;
      cfg.decode_instances = 1;
      cfg.max_decode_batch = 8;
      cfg.kv_block_tokens = 16;
      cfg.kv_num_blocks = 64;
      cfg.prefill_cost.model = Opt13B();
      cfg.prefill_cost.framework = Framework::kSpInfer;
      cfg.prefill_cost.device = Rtx4090();
      cfg.prefill_cost.sparsity = 0.6;
      cfg.decode_cost = cfg.prefill_cost;
      DisaggCluster cluster(&model, cfg);
      for (int64_t s = 0; s < kTpSeqs; ++s) {
        cluster.Submit(prompts[static_cast<size_t>(s)], kTpMaxNew,
                       static_cast<double>(s) * 0.0005);
      }
      const DisaggClusterReport rep = cluster.Run();
      g_sink = static_cast<float>(rep.completed);
    };
    bench("serving_disagg", [&] { run_disagg(); });
  }

  WriteBenchJson(out_path, records);
  std::printf("wrote %s\n", out_path.c_str());

  if (!trace_path.empty()) {
    obs::Tracer& tracer = obs::Tracer::Global();
    tracer.Stop();
    const std::vector<obs::TraceEvent> events = tracer.Drain();
    SPINFER_CHECK_MSG(
        obs::ChromeTraceWriter::WriteFile(trace_path, events, request_spans),
        "cannot write trace output file");
    std::printf("wrote %s (%zu trace events, %zu request spans)\n",
                trace_path.c_str(), events.size(), request_spans.size());
  }
  if (!metrics_path.empty()) {
    ThreadPool::Global().PublishMetrics();
    SPINFER_CHECK_MSG(
        obs::MetricsRegistry::Global().WriteJsonFile(metrics_path),
        "cannot write metrics output file");
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  if (!prom_path.empty()) {
    ThreadPool::Global().PublishMetrics();
    SPINFER_CHECK_MSG(
        obs::WritePromFile(prom_path, obs::MetricsRegistry::Global()),
        "cannot write prom output file");
    std::printf("wrote %s\n", prom_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace spinfer

int main(int argc, char** argv) { return spinfer::Main(argc, argv); }
