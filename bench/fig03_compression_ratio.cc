// Figure 3: compression ratio (Eq. 1) of CSR, Tiled-CSL, SparTA and TCA-BME
// across sparsity levels at the representative M = K = 4096 scale, against
// the zero-overhead optimum. TCA-BME is the only format with CR > 1 at low
// sparsity.
//
// Closed-form models (Eqs. 2-5, 9) are printed alongside byte-exact encoder
// measurements on real Bernoulli-masked matrices.
#include "bench/bench_util.h"
#include "src/format/csr.h"
#include "src/format/sparta_format.h"
#include "src/format/storage_model.h"
#include "src/format/tca_bme.h"
#include "src/format/tiled_csl.h"
#include "src/util/random.h"

int main() {
  using namespace spinfer;
  const int64_t m = 4096;
  const int64_t k = 4096;

  PrintHeader("Figure 3: compression ratio vs sparsity, M=K=4096 (closed-form)");
  Table t({"sparsity", "CSR", "Tiled-CSL", "SparTA", "TCA-BME", "optimal"});
  for (int pct = 10; pct <= 90; pct += 10) {
    const double s = pct / 100.0;
    const int64_t nnz = static_cast<int64_t>(m * k * (1.0 - s));
    const int64_t tiles = (m / 64) * (k / 64);
    t.AddRow({FormatF(pct, 0) + "%",
              FormatF(CompressionRatio(m, k, CsrStorageModel(m, nnz)), 3),
              FormatF(CompressionRatio(m, k, TiledCslStorageModel(tiles, nnz)), 3),
              FormatF(CompressionRatio(m, k, SpartaStorageModel(m, k, s)), 3),
              FormatF(CompressionRatio(m, k, TcaBmeStorageModel(m, k, nnz)), 3),
              FormatF(OptimalCompressionRatio(s), 3)});
  }
  std::printf("%s\n", t.Render().c_str());

  PrintHeader("Figure 3 (validation): byte-exact encoders on a 1024x1024 sample");
  Table v({"sparsity", "CSR", "Tiled-CSL", "SparTA", "TCA-BME"});
  Rng rng(2025);
  for (int pct : {30, 50, 70}) {
    const double s = pct / 100.0;
    const HalfMatrix w = HalfMatrix::RandomSparse(1024, 1024, s, rng);
    const double dense = 2.0 * 1024 * 1024;
    v.AddRow({FormatF(pct, 0) + "%",
              FormatF(dense / CsrMatrix::Encode(w).StorageBytes(), 3),
              FormatF(dense / TiledCslMatrix::Encode(w).StorageBytes(), 3),
              FormatF(dense / SpartaMatrix::Encode(w).StorageBytes(), 3),
              FormatF(TcaBmeMatrix::Encode(w).CompressionRatio(), 3)});
  }
  std::printf("%s\n", v.Render().c_str());
  std::printf("Paper shape check: CSR/Tiled-CSL < 1 below 50%%; SparTA slightly > 1\n"
              "at 50%%; TCA-BME > 1 everywhere in the 30-70%% range.\n");
  return 0;
}
