#include "src/util/table.h"

#include <gtest/gtest.h>

#include "src/util/cli.h"

namespace spinfer {
namespace {

TEST(TableTest, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "23"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("23"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(FormatF(1.6666, 2), "1.67");
  EXPECT_EQ(FormatF(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatBytes(1024), "1.00 KiB");
  EXPECT_EQ(FormatBytes(15461882265ull), "14.40 GiB");
  EXPECT_EQ(FormatSI(28672.0), "28.7K");
}

TEST(CliTest, ParsesForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "0.5", "--flag", "--name=x"};
  CliFlags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("beta", 0.0), 0.5);
  EXPECT_TRUE(flags.GetBool("flag", false));
  EXPECT_EQ(flags.GetString("name", ""), "x");
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_FALSE(flags.Has("missing"));
}

}  // namespace
}  // namespace spinfer
