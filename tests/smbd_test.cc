#include "src/core/smbd.h"

#include <bit>
#include <vector>

#include <gtest/gtest.h>

#include "src/format/tca_bme.h"
#include "src/gpusim/shared_memory.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

// Builds the compressed value run for a bitmap: value at bit position b is
// 100 + b, so decode results are self-describing.
std::vector<Half> CompressBitmap(uint64_t bitmap) {
  std::vector<Half> values;
  for (int b = 0; b < 64; ++b) {
    if ((bitmap >> b) & 1ull) {
      values.push_back(Half(static_cast<float>(100 + b)));
    }
  }
  return values;
}

TEST(SmbdTest, LaneDecodeAllPatternsExhaustiveOnLowBits) {
  // Exhaust all 16 combinations of the two bits each lane owns, across all
  // surrounding fill patterns of the preceding bits.
  for (int lane : {0, 1, 7, 13, 31}) {
    for (uint64_t fill : {0ull, 0x5555555555555555ull, ~0ull, 0x123456789abcdefull}) {
      for (int pattern = 0; pattern < 4; ++pattern) {
        uint64_t bitmap = fill;
        // Force the lane's two bits to `pattern`.
        bitmap &= ~(3ull << (2 * lane));
        bitmap |= static_cast<uint64_t>(pattern) << (2 * lane);
        const std::vector<Half> values = CompressBitmap(bitmap);
        Half out[2];
        int loads = 0;
        SmbdDecodeLane(bitmap, lane, values.data(), out, &loads);
        const bool bit0 = pattern & 1;
        const bool bit1 = pattern & 2;
        EXPECT_EQ(loads, static_cast<int>(bit0) + static_cast<int>(bit1));
        if (bit0) {
          EXPECT_EQ(out[0].ToFloat(), 100.0f + 2 * lane);
        } else {
          EXPECT_TRUE(out[0].IsZero());
        }
        if (bit1) {
          EXPECT_EQ(out[1].ToFloat(), 100.0f + 2 * lane + 1);
        } else {
          EXPECT_TRUE(out[1].IsZero());
        }
      }
    }
  }
}

TEST(SmbdTest, WarpDecodeReconstructsTcTile) {
  Rng rng(91);
  for (int trial = 0; trial < 20; ++trial) {
    uint64_t bitmaps[4];
    std::vector<Half> runs[4];
    const Half* ptrs[4];
    for (int q = 0; q < 4; ++q) {
      bitmaps[q] = rng.Next() & rng.Next();  // ~25% density
      runs[q] = CompressBitmap(bitmaps[q]);
      runs[q].push_back(Half(-1.0f));  // canary
      ptrs[q] = runs[q].data();
    }
    MmaAFragment frag[kWarpSize];
    SmbdDecodeTcTile(bitmaps, ptrs, frag, nullptr);
    for (int lane = 0; lane < kWarpSize; ++lane) {
      for (int q = 0; q < 4; ++q) {
        for (int half = 0; half < 2; ++half) {
          const int bit = 2 * lane + half;
          const Half got = frag[lane].a[q * 2 + half];
          if ((bitmaps[q] >> bit) & 1ull) {
            EXPECT_EQ(got.ToFloat(), 100.0f + bit) << "q=" << q << " bit=" << bit;
          } else {
            EXPECT_TRUE(got.IsZero());
          }
        }
      }
    }
  }
}

TEST(SmbdTest, CountersChargedPerQuadrant) {
  uint64_t bitmaps[4] = {~0ull, 0ull, 0x1ull, 0xf0f0f0f0f0f0f0f0ull};
  std::vector<Half> runs[4];
  const Half* ptrs[4];
  for (int q = 0; q < 4; ++q) {
    runs[q] = CompressBitmap(bitmaps[q]);
    runs[q].push_back(Half(0.0f));
    ptrs[q] = runs[q].data();
  }
  MmaAFragment frag[kWarpSize];
  PerfCounters c;
  SmbdDecodeTcTile(bitmaps, ptrs, frag, &c);
  EXPECT_EQ(c.popc_ops, 4u * 2);
  EXPECT_EQ(c.lds_instrs, 4u * 2);
  // Value bytes read = 2B per set bit.
  const uint64_t set_bits = 64 + 0 + 1 + 32;
  EXPECT_EQ(c.smem_bytes_read, set_bits * 2);
}

// The load addresses SMBD generates are monotonically nondecreasing across
// lanes within 128 bytes — at most one wavefront of conflict even in the
// worst alignment, i.e. essentially conflict-free (paper Fig. 12).
TEST(SmbdTest, PhaseOneLoadsAreConflictFree) {
  Rng rng(92);
  for (int trial = 0; trial < 50; ++trial) {
    const uint64_t bitmap = rng.Next();
    std::vector<uint32_t> addrs;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if ((bitmap >> (2 * lane)) & 1ull) {
        addrs.push_back(static_cast<uint32_t>(MaskedPopCount(bitmap, lane)) * 2);
      }
    }
    const SmemAccessResult r = SimulateSmemAccess(addrs, 2);
    EXPECT_EQ(r.bank_conflicts, 0u);
  }
}

// End-to-end format/decoder agreement: decoding every TCTile of an encoded
// matrix via SMBD reproduces the dense matrix exactly.
TEST(SmbdTest, DecodesEncodedMatrixExactly) {
  Rng rng(93);
  const HalfMatrix w = HalfMatrix::RandomSparse(32, 32, 0.5, rng);
  TcaBmeConfig cfg;
  cfg.gt_rows = 32;
  cfg.gt_cols = 32;
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w, cfg);
  HalfMatrix rebuilt(32, 32);
  size_t cursor = 0;
  for (int tcc = 0; tcc < enc.tc_cols_per_gt(); ++tcc) {
    for (int tcr = 0; tcr < enc.tc_rows_per_gt(); ++tcr) {
      const int tc = tcc * enc.tc_rows_per_gt() + tcr;
      uint64_t bitmaps[4];
      const Half* ptrs[4];
      for (int q = 0; q < 4; ++q) {
        bitmaps[q] = enc.bitmaps()[enc.BitmapIndex(0, tc, q)];
        ptrs[q] = enc.values().data() + cursor;
        cursor += static_cast<size_t>(std::popcount(bitmaps[q]));
      }
      MmaAFragment frag[kWarpSize];
      SmbdDecodeTcTile(bitmaps, ptrs, frag, nullptr);
      for (int lane = 0; lane < kWarpSize; ++lane) {
        for (int i = 0; i < 8; ++i) {
          const auto [r, c] = MmaAElementCoord(lane, i);
          rebuilt.at(tcr * 16 + r, tcc * 16 + c) = frag[lane].a[i];
        }
      }
    }
  }
  for (int64_t r = 0; r < 32; ++r) {
    for (int64_t c = 0; c < 32; ++c) {
      EXPECT_EQ(rebuilt.at(r, c), w.at(r, c)) << r << "," << c;
    }
  }
}

}  // namespace
}  // namespace spinfer
