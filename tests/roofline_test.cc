#include "src/roofline/roofline.h"

#include <gtest/gtest.h>

#include "src/format/storage_model.h"
#include "src/format/tca_bme.h"

namespace spinfer {
namespace {

TEST(RooflineTest, CiGemmEq6) {
  EXPECT_DOUBLE_EQ(CiGemm(4096, 16), 4096.0 * 16 / (4096 + 16));
  // Decode-phase N=1: CI ~ 1, deeply memory bound.
  EXPECT_NEAR(CiGemm(4096, 1), 1.0, 0.01);
}

TEST(RooflineTest, CiSpmmReducesToGemmAtCrOne) {
  EXPECT_DOUBLE_EQ(CiSpmm(4096, 16, 1.0), CiGemm(4096, 16));
}

TEST(RooflineTest, CiOptimalEq8) {
  // At s=0.5 the weight term halves.
  EXPECT_DOUBLE_EQ(CiOptimal(4096, 16, 0.5), 4096.0 * 16 / (4096 * 0.5 + 16));
  EXPECT_GT(CiOptimal(4096, 16, 0.7), CiOptimal(4096, 16, 0.5));
}

TEST(RooflineTest, HigherCrMeansHigherCi) {
  const double ci_csr = CiSpmm(4096, 16, 0.8);     // CR < 1: worse than dense
  const double ci_dense = CiGemm(4096, 16);
  const double ci_tca = CiSpmm(4096, 16, 1.7);
  EXPECT_LT(ci_csr, ci_dense);
  EXPECT_GT(ci_tca, ci_dense);
  EXPECT_LT(ci_tca, CiOptimal(4096, 16, 0.5));
}

TEST(RooflineTest, FormatCiOrderingMatchesFig4) {
  // Derive each format's CI from its storage model at s=0.5, M=K=4096, N=16.
  const int64_t m = 4096;
  const int64_t k = 4096;
  const int64_t n = 16;
  const double s = 0.5;
  const int64_t nnz = static_cast<int64_t>(m * k * (1 - s));
  const double cr_csr = CompressionRatio(m, k, CsrStorageModel(m, nnz));
  const double cr_tca = CompressionRatio(m, k, TcaBmeStorageModel(m, k, nnz));
  EXPECT_LT(CiSpmm(m, n, cr_csr), CiGemm(m, n));
  EXPECT_GT(CiSpmm(m, n, cr_tca), CiGemm(m, n));
  EXPECT_LT(CiSpmm(m, n, cr_tca), CiOptimal(m, n, s));
}

TEST(RooflineTest, DecodeShapesAreMemoryBound) {
  const DeviceSpec dev = Rtx4090();
  // True arithmetic intensity of a decode GEMM: 2*M*K*N flops over
  // ~2*M*K bytes = N flops/byte; far below the ridge.
  const RooflinePoint p = RooflineAttainable("decode", 16.0, dev);
  EXPECT_TRUE(p.memory_bound);
  EXPECT_LT(p.attainable_tflops, dev.tc_fp16_tflops);
  EXPECT_GT(RooflineRidge(dev), 100.0);
}

TEST(RooflineTest, PrefillShapesAreComputeBound) {
  const DeviceSpec dev = Rtx4090();
  const RooflinePoint p = RooflineAttainable("prefill", 2000.0, dev);
  EXPECT_FALSE(p.memory_bound);
  EXPECT_DOUBLE_EQ(p.attainable_tflops, dev.tc_fp16_tflops);
}

}  // namespace
}  // namespace spinfer
