#include "src/llm/attention.h"

#include <gtest/gtest.h>

namespace spinfer {
namespace {

TEST(AttentionTest, KvCacheBytesFormula) {
  const ModelConfig m = Opt13B();
  // 2 (K,V) * 40 layers * 5120 * batch * context * 2B.
  EXPECT_EQ(KvCacheBytes(m, 8, 1024, 1),
            2ull * 40 * 5120 * 8 * 1024 * 2);
  EXPECT_EQ(KvCacheBytes(m, 8, 1024, 2), KvCacheBytes(m, 8, 1024, 1) / 2);
}

TEST(AttentionTest, GqaShrinksCache) {
  // LLaMA2-70B has 8 KV heads vs 64 query heads: cache is 8x smaller than
  // an MHA model of the same width.
  const uint64_t gqa = KvCacheBytes(Llama2_70B(), 1, 1000, 1);
  const ModelConfig mha = []() {
    ModelConfig m = Llama2_70B();
    m.kv_heads = m.heads;
    return m;
  }();
  EXPECT_EQ(KvCacheBytes(mha, 1, 1000, 1), 8 * gqa);
}

TEST(AttentionTest, DecodeCostGrowsWithContext) {
  const DeviceSpec dev = Rtx4090();
  const ModelConfig m = Opt13B();
  const double t256 = DecodeAttentionCost(m, 16, 256, 1, dev).time_us;
  const double t512 = DecodeAttentionCost(m, 16, 512, 1, dev).time_us;
  EXPECT_GT(t512, t256);
}

TEST(AttentionTest, DecodeIsKvBandwidthBound) {
  const DeviceSpec dev = Rtx4090();
  const AttentionCost c = DecodeAttentionCost(Opt13B(), 32, 512, 1, dev);
  // Streaming the cache at ~80% of 1008 GB/s should dominate the estimate.
  const double stream_us =
      static_cast<double>(c.kv_bytes_read) / (dev.dram_bw_gbs * 0.8 * 1e3);
  EXPECT_NEAR(c.time_us, stream_us + 1.5 * 40, stream_us * 0.05);
}

TEST(AttentionTest, PrefillScalesQuadratically) {
  const DeviceSpec dev = Rtx4090();
  const ModelConfig m = Opt13B();
  const double t512 = PrefillAttentionCost(m, 8, 512, 1, dev).time_us;
  const double t1024 = PrefillAttentionCost(m, 8, 1024, 1, dev).time_us;
  EXPECT_GT(t1024 / t512, 3.0);  // ~4x flops, some fixed cost
}

TEST(AttentionTest, TensorParallelSplitsWork) {
  const DeviceSpec dev = Rtx4090();
  const ModelConfig m = Opt13B();
  const AttentionCost one = DecodeAttentionCost(m, 16, 512, 1, dev);
  const AttentionCost two = DecodeAttentionCost(m, 16, 512, 2, dev);
  EXPECT_EQ(two.kv_bytes_read, one.kv_bytes_read / 2);
  EXPECT_LT(two.time_us, one.time_us);
}

}  // namespace
}  // namespace spinfer
