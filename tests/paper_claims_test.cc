// Consolidated assertions for the paper's headline (abstract-level) claims,
// evaluated over the same sweep the figure benches print. If a calibration
// change breaks the reproduction's story, this file is what fails.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/baselines/kernel_registry.h"
#include "src/llm/engine.h"
#include "src/llm/model_config.h"

namespace spinfer {
namespace {

SpmmProblem Problem(int64_t m, int64_t k, int64_t n, double s) {
  SpmmProblem p;
  p.m = m;
  p.k = k;
  p.n = n;
  p.sparsity = s;
  return p;
}

double TimeUs(const char* kernel, const SpmmProblem& p, const DeviceSpec& dev) {
  return MakeKernel(kernel)->Estimate(p, dev).time.total_us;
}

// Abstract: "significantly outperforms ... up to 2.14x and 2.27x over
// Flash-LLM and SparTA ... across a range of sparsity levels (30% to 70%)".
// The *maximum* speedup over each baseline across the sweep should land in
// that order of magnitude (we accept [1.7, 3.5]).
TEST(PaperClaimsTest, MaxSpeedupsOverSparseBaselines) {
  const DeviceSpec dev = Rtx4090();
  double max_vs_flash = 0.0;
  double max_vs_sparta = 0.0;
  for (const ModelConfig& model : {Opt13B(), Llama2_70B(), Qwen2_7B()}) {
    for (const GemmShape& g : LayerGemmShapes(model)) {
      for (double s : {0.3, 0.5, 0.7}) {
        for (int64_t n : {8, 16, 32}) {
          const SpmmProblem p = Problem(g.m, g.k, n, s);
          const double spinfer_t = TimeUs("spinfer", p, dev);
          max_vs_flash = std::max(max_vs_flash, TimeUs("flash_llm", p, dev) / spinfer_t);
          max_vs_sparta = std::max(max_vs_sparta, TimeUs("sparta", p, dev) / spinfer_t);
        }
      }
    }
  }
  EXPECT_GT(max_vs_flash, 1.7);  // paper: up to 2.14x
  EXPECT_LT(max_vs_flash, 3.5);
  EXPECT_GT(max_vs_sparta, 1.7);  // paper: up to 2.27x
  EXPECT_LT(max_vs_sparta, 3.5);
}

// Abstract: "outperforms highly optimized cuBLAS at sparsity levels as low
// as 30% ... the first effective translation of unstructured pruning's
// theoretical advantages". Check every evaluated layer shape at 30%.
TEST(PaperClaimsTest, BeatsCublasAt30PercentEverywhere) {
  const DeviceSpec dev = Rtx4090();
  for (const ModelConfig& model : AllModels()) {
    for (const GemmShape& g : LayerGemmShapes(model)) {
      const SpmmProblem p = Problem(g.m, g.k, 16, 0.3);
      EXPECT_LT(TimeUs("spinfer", p, dev), TimeUs("cublas_tc", p, dev))
          << model.name << " " << g.op;
    }
  }
}

// Abstract: "substantial improvements in ... end-to-end inference speed
// (up to 1.58x)". Max over the OPT-13B grid where both frameworks fit.
TEST(PaperClaimsTest, EndToEndMaxSpeedupOverFlashLlm) {
  EngineConfig cfg;
  cfg.model = Opt13B();
  cfg.device = Rtx4090();
  cfg.sparsity = 0.6;
  cfg.input_len = 128;
  double max_speedup = 0.0;
  for (int gpus : {1, 2}) {
    for (int64_t batch : {8, 16, 32}) {
      for (int64_t out : {64, 128, 256}) {
        cfg.num_gpus = gpus;
        cfg.batch = batch;
        cfg.output_len = out;
        cfg.framework = Framework::kSpInfer;
        const InferenceReport a = SimulateInference(cfg);
        cfg.framework = Framework::kFlashLlm;
        const InferenceReport b = SimulateInference(cfg);
        if (a.oom || b.oom) {
          continue;
        }
        max_speedup = std::max(max_speedup, b.total_ms / a.total_ms);
      }
    }
  }
  EXPECT_GT(max_speedup, 1.4);  // paper: up to 1.58x
  EXPECT_LT(max_speedup, 1.9);
}

// §5.2: "memory ... 47.5% reduction compared to the dense baseline" for
// OPT-13B inference at 60% sparsity (weights + KV + runtime).
TEST(PaperClaimsTest, EndToEndMemoryReduction) {
  const DeviceSpec dev = Rtx4090();
  const MemoryPlan dense =
      PlanMemory(Opt13B(), WeightFormat::kDense, 0.0, 16, 384, 2, dev);
  const MemoryPlan sparse =
      PlanMemory(Opt13B(), WeightFormat::kTcaBme, 0.6, 16, 384, 2, dev);
  const double reduction = 1.0 - static_cast<double>(sparse.TotalBytes()) /
                                     static_cast<double>(dense.TotalBytes());
  EXPECT_GT(reduction, 0.30);  // paper: 47.5% on total footprint
  EXPECT_LT(reduction, 0.60);
}

// Conclusion: "consistently surpasses state-of-the-art SpMM kernels" — at
// the paper's central 50-60% operating point SpInfer is the fastest kernel
// on BOTH devices for every evaluated layer shape.
TEST(PaperClaimsTest, FastestKernelAtOperatingPoint) {
  for (const DeviceSpec& dev : {Rtx4090(), A6000()}) {
    for (const ModelConfig& model : {Opt13B(), Opt66B(), Llama3_8B()}) {
      for (const GemmShape& g : LayerGemmShapes(model)) {
        const SpmmProblem p = Problem(g.m, g.k, 16, 0.6);
        const double spinfer_t = TimeUs("spinfer", p, dev);
        for (const std::string& other :
             {"cublas_tc", "flash_llm", "sparta", "sputnik", "cusparse", "smat"}) {
          EXPECT_LE(spinfer_t, TimeUs(other.c_str(), p, dev))
              << dev.name << " " << model.name << " " << g.op << " vs " << other;
        }
      }
    }
  }
}

}  // namespace
}  // namespace spinfer
