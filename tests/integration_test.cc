// End-to-end integration: prune -> encode -> SpMM -> verify, across the full
// public API, the way a downstream user composes the library.
#include <gtest/gtest.h>

#include "src/baselines/kernel_registry.h"
#include "src/core/spinfer.h"
#include "src/pruning/magnitude.h"
#include "src/pruning/wanda.h"
#include "src/pruning/calibration.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

TEST(IntegrationTest, PruneEncodeComputeVerify) {
  Rng rng(161);
  // 1. A dense "layer" weight matrix.
  const HalfMatrix dense = HalfMatrix::Random(128, 128, rng, 0.1f);
  // 2. Prune with Wanda at the paper's 60%.
  CalibrationConfig cal;
  cal.num_features = 128;
  Rng cal_rng(162);
  const WandaPruner pruner(SyntheticFeatureNorms(cal, cal_rng));
  const HalfMatrix sparse = pruner.Prune(dense, 0.6);
  EXPECT_NEAR(sparse.Sparsity(), 0.6, 0.01);
  // 3. Encode to TCA-BME: memory shrinks below dense.
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(sparse);
  EXPECT_GT(enc.CompressionRatio(), 1.0);
  // 4. Run the SpInfer kernel against the reference.
  const HalfMatrix x = HalfMatrix::Random(128, 16, rng, 0.5f);
  const SpInferSpmmKernel kernel;
  PerfCounters counters;
  const FloatMatrix got = kernel.RunEncoded(enc, x, &counters);
  const FloatMatrix want = ReferenceGemm(sparse, x);
  const CompareResult cmp = CompareMatrices(got, want, 2e-3, 5e-2);
  EXPECT_TRUE(cmp.ok) << cmp.ToString();
  // 5. The decoded format is byte-exact.
  const HalfMatrix roundtrip = enc.Decode();
  for (int64_t i = 0; i < sparse.size(); ++i) {
    EXPECT_EQ(roundtrip.data()[i].bits(), sparse.data()[i].bits());
  }
}

// Every kernel agrees with every other kernel on the same problem.
TEST(IntegrationTest, AllKernelsAgreePairwise) {
  Rng rng(163);
  const HalfMatrix w = HalfMatrix::RandomSparse(96, 96, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(96, 8, rng, 0.5f);
  const FloatMatrix reference = ReferenceGemm(w, x);
  for (const auto& kernel : AllKernels()) {
    const FloatMatrix out = kernel->Run(w, x, nullptr);
    const CompareResult cmp = CompareMatrices(out, reference, 2e-3, 5e-2);
    EXPECT_TRUE(cmp.ok) << kernel->name() << ": " << cmp.ToString();
  }
}

// Magnitude pruning degrades the *output* less than random pruning at equal
// sparsity — the reason pruning algorithms exist; sanity check that our
// pipeline preserves this.
TEST(IntegrationTest, MagnitudePruningBeatsRandomOnOutputError) {
  Rng rng(164);
  const HalfMatrix dense = HalfMatrix::Random(96, 96, rng, 0.1f);
  const HalfMatrix x = HalfMatrix::Random(96, 8, rng, 0.5f);
  const FloatMatrix want = ReferenceGemm(dense, x);

  auto output_error = [&](const HalfMatrix& pruned) {
    const FloatMatrix got = ReferenceGemm(pruned, x);
    double err = 0.0;
    for (int64_t i = 0; i < got.size(); ++i) {
      const double d = got.data()[i] - want.data()[i];
      err += d * d;
    }
    return err;
  };

  const double mag_err = output_error(MagnitudePruner().Prune(dense, 0.6));
  const double rand_err = output_error(RandomPruner(5).Prune(dense, 0.6));
  EXPECT_LT(mag_err, rand_err);
}

// Sweep sparsity x shape as a property test: the SpInfer kernel is exact for
// every mask the pruners can produce.
class SparsityShapeSweep
    : public ::testing::TestWithParam<std::tuple<double, int64_t>> {};

TEST_P(SparsityShapeSweep, KernelCorrectEverywhere) {
  const auto [sparsity, dim] = GetParam();
  Rng rng(165 + static_cast<uint64_t>(dim) + static_cast<uint64_t>(sparsity * 100));
  const HalfMatrix w = HalfMatrix::RandomSparse(dim, dim, sparsity, rng);
  const HalfMatrix x = HalfMatrix::Random(dim, 8, rng, 0.5f);
  const FloatMatrix got = SpInferSpmmKernel().Run(w, x, nullptr);
  const CompareResult cmp = CompareMatrices(got, ReferenceGemm(w, x), 2e-3, 5e-2);
  EXPECT_TRUE(cmp.ok) << cmp.ToString();
}

INSTANTIATE_TEST_SUITE_P(Sweep, SparsityShapeSweep,
                         ::testing::Combine(::testing::Values(0.3, 0.5, 0.7),
                                            ::testing::Values<int64_t>(64, 128)));

}  // namespace
}  // namespace spinfer
