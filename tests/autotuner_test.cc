#include "src/core/autotuner.h"

#include <gtest/gtest.h>

#include "src/numeric/compare.h"

namespace spinfer {
namespace {

SpmmProblem Problem(int64_t m, int64_t k, int64_t n, double s) {
  SpmmProblem p;
  p.m = m;
  p.k = k;
  p.n = n;
  p.sparsity = s;
  return p;
}

TEST(AutotunerTest, ExploresAllGeometries) {
  const AutotuneResult r = AutotuneSpInfer(Problem(4096, 4096, 16, 0.5), Rtx4090());
  EXPECT_EQ(r.candidates.size(), 16u);  // 4 x 4 geometries
  // Candidates sorted best-first.
  for (size_t i = 1; i < r.candidates.size(); ++i) {
    EXPECT_LE(r.candidates[i - 1].modeled_us, r.candidates[i].modeled_us);
  }
}

TEST(AutotunerTest, NeverWorseThanDefault) {
  const DeviceSpec dev = Rtx4090();
  for (const auto& [m, k] : {std::pair<int64_t, int64_t>{4096, 4096},
                             {28672, 8192},
                             {5120, 5120},
                             {1024, 16384}}) {
    const SpmmProblem p = Problem(m, k, 16, 0.6);
    const AutotuneResult tuned = AutotuneSpInfer(p, dev);
    const double default_us = SpInferSpmmKernel().Estimate(p, dev).time.total_us;
    EXPECT_LE(tuned.time.total_us, default_us * 1.0001) << m << "x" << k;
  }
}

TEST(AutotunerTest, WinnerIsLaunchable) {
  const AutotuneResult r = AutotuneSpInfer(Problem(8192, 8192, 32, 0.5), Rtx4090());
  const OccupancyResult occ = ComputeOccupancy(
      SpInferSpmmKernel(r.config).Resources(0.5, 32), Rtx4090());
  EXPECT_GT(occ.blocks_per_sm, 0);
  EXPECT_LT(r.time.total_us, 1e17);  // not the cannot-launch sentinel
}

TEST(AutotunerTest, TunedConfigStaysNumericallyCorrect) {
  const AutotuneResult r = AutotuneSpInfer(Problem(96, 96, 16, 0.5), Rtx4090());
  Rng rng(181);
  const HalfMatrix w = HalfMatrix::RandomSparse(96, 96, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(96, 16, rng, 0.5f);
  SpInferKernelConfig cfg = r.config;
  cfg.split_k = 1;  // functional path needs an explicit split within range
  const FloatMatrix got = SpInferSpmmKernel(cfg).Run(w, x, nullptr);
  const CompareResult cmp = CompareMatrices(got, ReferenceGemm(w, x), 2e-3, 5e-2);
  EXPECT_TRUE(cmp.ok) << cmp.ToString();
}

TEST(AutotunerTest, SmallMatrixPrefersSmallTiles) {
  // A short-M matrix underfills the grid with 128-row GroupTiles; the tuner
  // should pick something that keeps the device busy.
  const AutotuneResult r = AutotuneSpInfer(Problem(512, 16384, 16, 0.6), Rtx4090());
  EXPECT_LE(r.config.format.gt_rows, 64);
}

}  // namespace
}  // namespace spinfer
