#include <cmath>

#include <gtest/gtest.h>

#include "src/pruning/calibration.h"
#include "src/pruning/magnitude.h"
#include "src/pruning/pruner.h"
#include "src/pruning/wanda.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

TEST(RandomPrunerTest, HitsTargetRate) {
  Rng rng(141);
  const HalfMatrix w = HalfMatrix::Random(128, 128, rng);
  const HalfMatrix pruned = RandomPruner(7).Prune(w, 0.6);
  EXPECT_NEAR(pruned.Sparsity(), 0.6, 0.03);
}

TEST(RandomPrunerTest, Deterministic) {
  Rng rng(142);
  const HalfMatrix w = HalfMatrix::Random(32, 32, rng);
  const HalfMatrix a = RandomPruner(9).Prune(w, 0.5);
  const HalfMatrix b = RandomPruner(9).Prune(w, 0.5);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i].bits(), b.data()[i].bits());
  }
}

TEST(MagnitudePrunerTest, ExactPerRowSparsity) {
  Rng rng(143);
  const HalfMatrix w = HalfMatrix::Random(16, 100, rng);
  const HalfMatrix pruned = MagnitudePruner().Prune(w, 0.6);
  for (int64_t r = 0; r < 16; ++r) {
    int64_t nnz = 0;
    for (int64_t c = 0; c < 100; ++c) {
      nnz += !pruned.at(r, c).IsZero();
    }
    EXPECT_EQ(nnz, 40) << "row " << r;
  }
}

TEST(MagnitudePrunerTest, KeepsLargestMagnitudes) {
  Rng rng(144);
  const HalfMatrix w = HalfMatrix::Random(8, 64, rng);
  const HalfMatrix pruned = MagnitudePruner().Prune(w, 0.5);
  for (int64_t r = 0; r < 8; ++r) {
    float min_kept = 1e30f;
    float max_dropped = 0.0f;
    for (int64_t c = 0; c < 64; ++c) {
      const float mag = std::fabs(w.at(r, c).ToFloat());
      if (pruned.at(r, c).IsZero()) {
        max_dropped = std::max(max_dropped, mag);
      } else {
        min_kept = std::min(min_kept, mag);
      }
    }
    EXPECT_GE(min_kept, max_dropped);
  }
}

TEST(MagnitudePrunerTest, ZeroSparsityIsIdentity) {
  Rng rng(145);
  const HalfMatrix w = HalfMatrix::Random(8, 32, rng);
  const HalfMatrix pruned = MagnitudePruner().Prune(w, 0.0);
  for (int64_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(pruned.data()[i].bits(), w.data()[i].bits());
  }
}

TEST(WandaPrunerTest, OutlierChannelsSurvive) {
  // A channel with a huge activation norm keeps its weights even when their
  // magnitudes are small — the property that distinguishes Wanda from
  // magnitude pruning.
  const int64_t k = 64;
  HalfMatrix w(4, k);
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < k; ++c) {
      w.at(r, c) = Half(c == 0 ? 0.01f : 1.0f);  // tiny weight in channel 0
    }
  }
  std::vector<float> norms(k, 1.0f);
  norms[0] = 1000.0f;  // outlier activation channel
  const HalfMatrix pruned = WandaPruner(norms).Prune(w, 0.5);
  for (int64_t r = 0; r < 4; ++r) {
    EXPECT_FALSE(pruned.at(r, 0).IsZero()) << "row " << r;
  }
  // Magnitude pruning would drop channel 0 first.
  const HalfMatrix mag = MagnitudePruner().Prune(w, 0.5);
  for (int64_t r = 0; r < 4; ++r) {
    EXPECT_TRUE(mag.at(r, 0).IsZero());
  }
}

TEST(WandaPrunerTest, TargetSparsityPerRow) {
  Rng rng(146);
  const HalfMatrix w = HalfMatrix::Random(8, 80, rng);
  CalibrationConfig cal;
  cal.num_features = 80;
  Rng cal_rng(147);
  const WandaPruner pruner(SyntheticFeatureNorms(cal, cal_rng));
  const HalfMatrix pruned = pruner.Prune(w, 0.6);
  EXPECT_NEAR(pruned.Sparsity(), 0.6, 0.01);
}

TEST(CalibrationTest, NormsPositiveWithOutliers) {
  CalibrationConfig cal;
  cal.num_features = 10000;
  cal.outlier_fraction = 0.01;
  cal.outlier_scale = 50.0;
  Rng rng(148);
  const auto norms = SyntheticFeatureNorms(cal, rng);
  ASSERT_EQ(norms.size(), 10000u);
  int outliers = 0;
  for (float n : norms) {
    EXPECT_GT(n, 0.0f);
    outliers += n > 100.0f;
  }
  // ~1% outlier channels at ~50x scale.
  EXPECT_GT(outliers, 30);
  EXPECT_LT(outliers, 300);
}

}  // namespace
}  // namespace spinfer
