#include "src/gpusim/pipeline.h"

#include <gtest/gtest.h>

namespace spinfer {
namespace {

constexpr StageTimes kStages{/*load_w=*/4.0, /*load_x=*/2.0, /*decode=*/3.0,
                             /*mma=*/5.0};

TEST(PipelineTest, SerializedSumsAllStages) {
  PipelineConfig cfg;
  cfg.double_buffer = false;
  EXPECT_DOUBLE_EQ(PipelineIterationTime(kStages, cfg), 4 + 2 + 3 + 5);
  EXPECT_DOUBLE_EQ(PipelineTotalTime(kStages, cfg, 10), 140.0);
}

TEST(PipelineTest, DoubleBufferOverlapsMemoryWithCompute) {
  PipelineConfig cfg;
  cfg.double_buffer = true;
  cfg.fine_grained_groups = false;
  // max(mem=6, decode+mma=8) = 8.
  EXPECT_DOUBLE_EQ(PipelineIterationTime(kStages, cfg), 8.0);
}

TEST(PipelineTest, FineGrainedOverlapsAllThreeResources) {
  PipelineConfig cfg;
  // max(mem=6, decode=3, mma=5) = 6.
  EXPECT_DOUBLE_EQ(PipelineIterationTime(kStages, cfg), 6.0);
}

TEST(PipelineTest, FineGrainedBeatsCoarseBeatsSerial) {
  PipelineConfig fine;
  PipelineConfig coarse;
  coarse.fine_grained_groups = false;
  PipelineConfig serial;
  serial.double_buffer = false;
  const double tf = PipelineTotalTime(kStages, fine, 100);
  const double tc = PipelineTotalTime(kStages, coarse, 100);
  const double ts = PipelineTotalTime(kStages, serial, 100);
  EXPECT_LT(tf, tc);
  EXPECT_LT(tc, ts);
}

TEST(PipelineTest, SteadyStateDominatesLongLoops) {
  PipelineConfig cfg;
  const double t1000 = PipelineTotalTime(kStages, cfg, 1000);
  EXPECT_NEAR(t1000 / 1000.0, PipelineIterationTime(kStages, cfg), 0.05);
}

TEST(PipelineTest, ZeroIterations) {
  PipelineConfig cfg;
  EXPECT_DOUBLE_EQ(PipelineTotalTime(kStages, cfg, 0), 0.0);
}

TEST(PipelineTest, MemoryBoundIterBottleneckedByLoads) {
  StageTimes s{/*load_w=*/10.0, /*load_x=*/5.0, /*decode=*/1.0, /*mma=*/2.0};
  PipelineConfig cfg;
  EXPECT_DOUBLE_EQ(PipelineIterationTime(s, cfg), 15.0);
}

}  // namespace
}  // namespace spinfer
