#include "src/llm/engine.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace spinfer {
namespace {

EngineConfig BaseConfig() {
  EngineConfig cfg;
  cfg.model = Opt13B();
  cfg.framework = Framework::kSpInfer;
  cfg.device = Rtx4090();
  cfg.num_gpus = 1;
  cfg.batch = 16;
  cfg.input_len = 128;
  cfg.output_len = 256;
  cfg.sparsity = 0.6;
  return cfg;
}

TEST(EngineTest, SpInferOpt13BRunsOnOneGpu) {
  const InferenceReport r = SimulateInference(BaseConfig());
  EXPECT_FALSE(r.oom) << r.memory.ToString();
  EXPECT_GT(r.tokens_per_second, 100.0);
  EXPECT_GT(r.decode_ms, r.prefill_ms);  // 256 steps vs one prefill
}

TEST(EngineTest, ThroughputNearPaperHeadline) {
  // Paper: SpInfer OPT-13B, 1x RTX4090, batch 32 -> ~1817 tok/s;
  // Flash-LLM -> ~1184 tok/s. Both only fit a single 24 GB GPU at a short
  // context (the paper itself reports Flash-LLM OOM at batch 8 beyond 256
  // output tokens), so evaluate the shortest point of the sweep.
  EngineConfig cfg = BaseConfig();
  cfg.batch = 32;
  cfg.input_len = 32;
  cfg.output_len = 64;
  const InferenceReport spinfer_r = SimulateInference(cfg);
  ASSERT_FALSE(spinfer_r.oom) << spinfer_r.memory.ToString();
  EXPECT_NEAR(spinfer_r.tokens_per_second, 1817.0, 1817.0 * 0.25);

  cfg.framework = Framework::kFlashLlm;
  const InferenceReport flash_r = SimulateInference(cfg);
  ASSERT_FALSE(flash_r.oom) << flash_r.memory.ToString();
  EXPECT_NEAR(flash_r.tokens_per_second, 1184.0, 1184.0 * 0.30);

  // Max speedup over Flash-LLM ~1.5x in this configuration (paper: 1.58x).
  const double speedup = spinfer_r.tokens_per_second / flash_r.tokens_per_second;
  EXPECT_GT(speedup, 1.25);
  EXPECT_LT(speedup, 1.9);
}

TEST(EngineTest, DenseFrameworksOomOnOneGpu) {
  EngineConfig cfg = BaseConfig();
  cfg.framework = Framework::kFasterTransformer;
  EXPECT_TRUE(SimulateInference(cfg).oom);
  cfg.framework = Framework::kDeepSpeed;
  EXPECT_TRUE(SimulateInference(cfg).oom);
}

TEST(EngineTest, SpInferFastestOnTwoGpus) {
  EngineConfig cfg = BaseConfig();
  cfg.num_gpus = 2;
  double best = 1e30;
  double spinfer_ms = 0.0;
  for (Framework f : {Framework::kSpInfer, Framework::kFlashLlm,
                      Framework::kFasterTransformer, Framework::kDeepSpeed}) {
    cfg.framework = f;
    const InferenceReport r = SimulateInference(cfg);
    ASSERT_FALSE(r.oom) << FrameworkName(f);
    if (f == Framework::kSpInfer) {
      spinfer_ms = r.total_ms;
    }
    best = std::min(best, r.total_ms);
  }
  EXPECT_DOUBLE_EQ(best, spinfer_ms);
}

TEST(EngineTest, DeepSpeedSlowerThanFasterTransformer) {
  EngineConfig cfg = BaseConfig();
  cfg.num_gpus = 2;
  cfg.framework = Framework::kFasterTransformer;
  const double ft = SimulateInference(cfg).total_ms;
  cfg.framework = Framework::kDeepSpeed;
  const double ds = SimulateInference(cfg).total_ms;
  EXPECT_GT(ds, ft);
}

TEST(EngineTest, DecodeDominatedByLinears) {
  // Fig. 15: SpMM (linear) is the largest decode component for SpInfer.
  const InferenceReport r = SimulateInference(BaseConfig());
  EXPECT_GT(r.decode.linear_us, r.decode.attention_us);
  EXPECT_GT(r.decode.linear_us, r.decode.comm_us);
  EXPECT_GT(r.decode.linear_us, r.decode.other_us);
}

TEST(EngineTest, CommAppearsOnlyWithMultipleGpus) {
  EngineConfig cfg = BaseConfig();
  EXPECT_DOUBLE_EQ(SimulateInference(cfg).decode.comm_us, 0.0);
  cfg.num_gpus = 2;
  EXPECT_GT(SimulateInference(cfg).decode.comm_us, 0.0);
}

TEST(EngineTest, PcieCommExceedsNvlink) {
  // Fig. 15: COMM is pronounced on the PCIe-only RTX4090 platform.
  EngineConfig cfg = BaseConfig();
  cfg.num_gpus = 2;
  const double pcie = SimulateInference(cfg).decode.comm_us;
  cfg.device = A6000();
  const double nvlink = SimulateInference(cfg).decode.comm_us;
  EXPECT_GT(pcie, nvlink);
}

TEST(EngineTest, LongerOutputsScaleDecodeTime) {
  EngineConfig cfg = BaseConfig();
  cfg.output_len = 64;
  const double t64 = SimulateInference(cfg).decode_ms;
  cfg.output_len = 512;
  const double t512 = SimulateInference(cfg).decode_ms;
  EXPECT_GT(t512, 6.0 * t64);  // superlinear: KV cache grows
}

TEST(EngineTest, SpeedupOverFlashLlmInPaperRange) {
  // Fig. 13 average: 1.35x over Flash-LLM on RTX4090 across configs.
  EngineConfig cfg = BaseConfig();
  cfg.num_gpus = 2;
  cfg.model = Opt13B();
  double total_speedup = 0.0;
  int count = 0;
  for (int64_t batch : {8, 16, 32}) {
    for (int64_t out : {128, 256}) {
      cfg.batch = batch;
      cfg.output_len = out;
      cfg.framework = Framework::kSpInfer;
      const InferenceReport a = SimulateInference(cfg);
      cfg.framework = Framework::kFlashLlm;
      const InferenceReport b = SimulateInference(cfg);
      if (a.oom || b.oom) {
        continue;
      }
      total_speedup += b.total_ms / a.total_ms;
      ++count;
    }
  }
  ASSERT_GT(count, 0);
  const double avg = total_speedup / count;
  EXPECT_GT(avg, 1.15);
  EXPECT_LT(avg, 1.7);
}

}  // namespace
}  // namespace spinfer
