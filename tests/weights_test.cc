#include "src/llm/weights.h"

#include <gtest/gtest.h>

#include "src/format/tca_bme.h"
#include "src/numeric/matrix.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

TEST(WeightsTest, DenseBytesExact) {
  EXPECT_EQ(WeightMatrixBytes(1024, 512, 0.0, WeightFormat::kDense),
            2ull * 1024 * 512);
  // Dense storage ignores sparsity.
  EXPECT_EQ(WeightMatrixBytes(1024, 512, 0.6, WeightFormat::kDense),
            2ull * 1024 * 512);
}

TEST(WeightsTest, TcaBmeMatchesEncoder) {
  Rng rng(151);
  const HalfMatrix w = HalfMatrix::RandomSparse(256, 256, 0.6, rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  const uint64_t model =
      WeightMatrixBytes(256, 256, w.Sparsity(), WeightFormat::kTcaBme);
  EXPECT_NEAR(static_cast<double>(model), static_cast<double>(enc.StorageBytes()),
              static_cast<double>(enc.StorageBytes()) * 0.01);
}

TEST(WeightsTest, Opt13BModelSizes) {
  // Paper §5.2: dense OPT-13B needs ~26 GB; SpInfer's 60%-sparse model
  // ~14.4 GB total (weights + runtime); weights alone land near 12 GB.
  const uint64_t dense = ModelWeightBytes(Opt13B(), 0.0, WeightFormat::kDense);
  EXPECT_NEAR(static_cast<double>(dense), 26e9, 2e9);
  const uint64_t tca = ModelWeightBytes(Opt13B(), 0.6, WeightFormat::kTcaBme);
  EXPECT_NEAR(static_cast<double>(tca), 12e9, 1.5e9);
  // Flash-LLM's Tiled-CSL at 60%: 4B per nonzero ~ 0.8 of dense.
  const uint64_t csl = ModelWeightBytes(Opt13B(), 0.6, WeightFormat::kTiledCsl);
  EXPECT_GT(csl, tca);
  EXPECT_LT(csl, dense);
}

TEST(WeightsTest, TcaBmeReductionTracksSparsity) {
  // "sparsity-aligned memory reduction": bytes shrink nearly linearly.
  const uint64_t s40 = ModelWeightBytes(Opt13B(), 0.4, WeightFormat::kTcaBme);
  const uint64_t s60 = ModelWeightBytes(Opt13B(), 0.6, WeightFormat::kTcaBme);
  const uint64_t s70 = ModelWeightBytes(Opt13B(), 0.7, WeightFormat::kTcaBme);
  EXPECT_GT(s40, s60);
  EXPECT_GT(s60, s70);
}

TEST(WeightsTest, TiledCslExceedsDenseBelow50) {
  // The Fig. 3 storage pathology at the model level: Tiled-CSL at 40%
  // sparsity stores MORE than dense.
  const uint64_t dense = ModelWeightBytes(Opt13B(), 0.0, WeightFormat::kDense);
  const uint64_t csl40 = ModelWeightBytes(Opt13B(), 0.4, WeightFormat::kTiledCsl);
  EXPECT_GT(csl40, dense);
}

TEST(WeightsTest, MixtralStoresAllExperts) {
  const uint64_t bytes = ModelWeightBytes(Mixtral8x7B(), 0.0, WeightFormat::kDense);
  EXPECT_NEAR(static_cast<double>(bytes), 2.0 * 47e9, 2.0 * 47e9 * 0.15);
}

TEST(WeightsTest, FormatNames) {
  EXPECT_STREQ(WeightFormatName(WeightFormat::kDense), "dense");
  EXPECT_STREQ(WeightFormatName(WeightFormat::kTcaBme), "tca-bme");
  EXPECT_STREQ(WeightFormatName(WeightFormat::kTiledCsl), "tiled-csl");
}

}  // namespace
}  // namespace spinfer
