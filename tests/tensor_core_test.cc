#include "src/gpusim/tensor_core.h"

#include <bit>
#include <cstdint>
#include <set>

#include <gtest/gtest.h>

#include "src/numeric/matrix.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

// Every element of the A/B/C operands must be owned by exactly one
// (lane, idx) pair — the layouts partition the tiles.
TEST(TensorCoreTest, ALayoutIsAPartition) {
  std::set<std::pair<int, int>> seen;
  for (int lane = 0; lane < kWarpSize; ++lane) {
    for (int idx = 0; idx < 8; ++idx) {
      const auto rc = MmaAElementCoord(lane, idx);
      EXPECT_GE(rc.first, 0);
      EXPECT_LT(rc.first, 16);
      EXPECT_GE(rc.second, 0);
      EXPECT_LT(rc.second, 16);
      EXPECT_TRUE(seen.insert(rc).second) << "duplicate " << rc.first << "," << rc.second;
    }
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST(TensorCoreTest, BLayoutIsAPartition) {
  std::set<std::pair<int, int>> seen;
  for (int lane = 0; lane < kWarpSize; ++lane) {
    for (int idx = 0; idx < 4; ++idx) {
      const auto kn = MmaBElementCoord(lane, idx);
      EXPECT_LT(kn.first, 16);
      EXPECT_LT(kn.second, 8);
      EXPECT_TRUE(seen.insert(kn).second);
    }
  }
  EXPECT_EQ(seen.size(), 128u);
}

TEST(TensorCoreTest, CLayoutIsAPartition) {
  std::set<std::pair<int, int>> seen;
  for (int lane = 0; lane < kWarpSize; ++lane) {
    for (int idx = 0; idx < 4; ++idx) {
      const auto rc = MmaCElementCoord(lane, idx);
      EXPECT_LT(rc.first, 16);
      EXPECT_LT(rc.second, 8);
      EXPECT_TRUE(seen.insert(rc).second);
    }
  }
  EXPECT_EQ(seen.size(), 128u);
}

// The quadrant decomposition must match the full-layout coordinates: register
// pair q of lane i covers quadrant q (column-major TL,BL,TR,BR) at the
// quadrant-local coordinates MmaAQuadrantCoord reports.
TEST(TensorCoreTest, QuadrantViewMatchesFullLayout) {
  for (int lane = 0; lane < kWarpSize; ++lane) {
    for (int q = 0; q < 4; ++q) {
      for (int half = 0; half < 2; ++half) {
        const auto [qr, qc] = MmaAQuadrantCoord(lane, half);
        const auto [fr, fc] = MmaAElementCoord(lane, q * 2 + half);
        EXPECT_EQ(fr, qr + (q % 2) * 8);
        EXPECT_EQ(fc, qc + (q / 2) * 8);
      }
    }
  }
}

// Paper Fig. 8: within a quadrant, lane i owns row-major linear positions
// 2i and 2i+1 — the property that makes bitmap bits 2i/2i+1 per lane work.
TEST(TensorCoreTest, LaneOwnsBits2iAnd2iPlus1) {
  for (int lane = 0; lane < kWarpSize; ++lane) {
    const auto [r0, c0] = MmaAQuadrantCoord(lane, 0);
    const auto [r1, c1] = MmaAQuadrantCoord(lane, 1);
    EXPECT_EQ(r0 * 8 + c0, 2 * lane);
    EXPECT_EQ(r1 * 8 + c1, 2 * lane + 1);
  }
}

TEST(TensorCoreTest, MmaMatchesReference) {
  Rng rng(21);
  const HalfMatrix a = HalfMatrix::Random(16, 16, rng);
  const HalfMatrix b = HalfMatrix::Random(16, 8, rng);

  MmaAFragment afrag[kWarpSize];
  MmaBFragment bfrag[kWarpSize];
  MmaAccumulator acc[kWarpSize] = {};
  for (int lane = 0; lane < kWarpSize; ++lane) {
    for (int i = 0; i < 8; ++i) {
      const auto [r, c] = MmaAElementCoord(lane, i);
      afrag[lane].a[i] = a.at(r, c);
    }
    for (int i = 0; i < 4; ++i) {
      const auto [k, n] = MmaBElementCoord(lane, i);
      bfrag[lane].b[i] = b.at(k, n);
    }
  }
  MmaM16N8K16(afrag, bfrag, acc);

  const FloatMatrix want = ReferenceGemm(a, b);
  for (int lane = 0; lane < kWarpSize; ++lane) {
    for (int i = 0; i < 4; ++i) {
      const auto [r, c] = MmaCElementCoord(lane, i);
      EXPECT_NEAR(acc[lane].c[i], want.at(r, c), 1e-2) << r << "," << c;
    }
  }
}

TEST(TensorCoreTest, MmaAccumulates) {
  MmaAFragment afrag[kWarpSize] = {};
  MmaBFragment bfrag[kWarpSize] = {};
  MmaAccumulator acc[kWarpSize];
  for (int lane = 0; lane < kWarpSize; ++lane) {
    for (float& c : acc[lane].c) {
      c = 3.5f;
    }
  }
  MmaM16N8K16(afrag, bfrag, acc);  // zero matrices: acc unchanged
  for (int lane = 0; lane < kWarpSize; ++lane) {
    for (float c : acc[lane].c) {
      EXPECT_FLOAT_EQ(c, 3.5f);
    }
  }
}

// The fast path gathers each fragment into a dense operand once and runs the
// FMA loop on plain arrays. It must be bit-identical — not merely close — to
// the original per-element formulation that re-derived every coordinate and
// re-converted every half inside the r/n/k loop, because golden outputs and
// the determinism tests depend on exact FP32 summation order.
TEST(TensorCoreTest, OperandFastPathBitIdenticalToPerElementMma) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    MmaAFragment afrag[kWarpSize];
    MmaBFragment bfrag[kWarpSize];
    MmaAccumulator init[kWarpSize];
    for (int lane = 0; lane < kWarpSize; ++lane) {
      for (Half& h : afrag[lane].a) {
        h = Half(static_cast<float>(rng.Gaussian()));
      }
      for (Half& h : bfrag[lane].b) {
        h = Half(static_cast<float>(rng.Gaussian()));
      }
      for (float& c : init[lane].c) {
        c = static_cast<float>(rng.Gaussian());
      }
    }

    // Reference: the pre-fast-path algorithm, written out verbatim — gather
    // the whole tile per element via the coord functions, accumulate in
    // ascending k starting from C.
    float a_tile[16][16];
    float b_tile[16][8];
    for (int lane = 0; lane < kWarpSize; ++lane) {
      for (int i = 0; i < 8; ++i) {
        const auto [r, c] = MmaAElementCoord(lane, i);
        a_tile[r][c] = afrag[lane].a[i].ToFloat();
      }
      for (int i = 0; i < 4; ++i) {
        const auto [k, n] = MmaBElementCoord(lane, i);
        b_tile[k][n] = bfrag[lane].b[i].ToFloat();
      }
    }
    MmaAccumulator want[kWarpSize];
    for (int lane = 0; lane < kWarpSize; ++lane) {
      want[lane] = init[lane];
    }
    for (int lane = 0; lane < kWarpSize; ++lane) {
      for (int i = 0; i < 4; ++i) {
        const auto [r, n] = MmaCElementCoord(lane, i);
        float sum = want[lane].c[i];
        for (int k = 0; k < 16; ++k) {
          sum += a_tile[r][k] * b_tile[k][n];
        }
        want[lane].c[i] = sum;
      }
    }

    MmaAccumulator got[kWarpSize];
    for (int lane = 0; lane < kWarpSize; ++lane) {
      got[lane] = init[lane];
    }
    MmaM16N8K16(afrag, bfrag, got);

    for (int lane = 0; lane < kWarpSize; ++lane) {
      for (int i = 0; i < 4; ++i) {
        // Bitwise equality: EXPECT_EQ on float would accept -0 == +0 drift.
        ASSERT_EQ(std::bit_cast<uint32_t>(got[lane].c[i]),
                  std::bit_cast<uint32_t>(want[lane].c[i]))
            << "trial=" << trial << " lane=" << lane << " i=" << i;
      }
    }

    // The operand-level API used by the kernel inner loop must agree too.
    MmaAOperand a_op;
    MmaBOperand b_op;
    GatherMmaA(afrag, &a_op);
    GatherMmaB(bfrag, &b_op);
    float c_tile[16][8];
    for (int lane = 0; lane < kWarpSize; ++lane) {
      for (int i = 0; i < 4; ++i) {
        const auto [r, n] = MmaCElementCoord(lane, i);
        c_tile[r][n] = init[lane].c[i];
      }
    }
    MmaM16N8K16Tile(a_op, b_op, c_tile);
    for (int lane = 0; lane < kWarpSize; ++lane) {
      for (int i = 0; i < 4; ++i) {
        const auto [r, n] = MmaCElementCoord(lane, i);
        ASSERT_EQ(std::bit_cast<uint32_t>(c_tile[r][n]),
                  std::bit_cast<uint32_t>(want[lane].c[i]))
            << "trial=" << trial << " lane=" << lane << " i=" << i;
      }
    }
  }
}

TEST(TensorCoreTest, PopCount) {
  EXPECT_EQ(PopCount64(0), 0);
  EXPECT_EQ(PopCount64(~0ull), 64);
  EXPECT_EQ(PopCount64(0xF0F0ull), 8);
}

TEST(TensorCoreTest, MaskedPopCount) {
  // Alg. 2: count set bits strictly below position 2*lane.
  const uint64_t bitmap = 0b1011;  // bits 0,1,3 set
  EXPECT_EQ(MaskedPopCount(bitmap, 0), 0);
  EXPECT_EQ(MaskedPopCount(bitmap, 1), 2);  // bits 0,1
  EXPECT_EQ(MaskedPopCount(bitmap, 2), 3);  // bits 0,1,3
  EXPECT_EQ(MaskedPopCount(~0ull, 31), 62);
}

}  // namespace
}  // namespace spinfer
