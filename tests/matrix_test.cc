#include "src/numeric/matrix.h"

#include <gtest/gtest.h>

#include "src/numeric/compare.h"

namespace spinfer {
namespace {

TEST(MatrixTest, RandomSparseHitsTargetSparsity) {
  Rng rng(11);
  const HalfMatrix w = HalfMatrix::RandomSparse(256, 256, 0.6, rng);
  EXPECT_NEAR(w.Sparsity(), 0.6, 0.02);
}

TEST(MatrixTest, RandomSparseZeroAndFull) {
  Rng rng(12);
  const HalfMatrix dense = HalfMatrix::RandomSparse(64, 64, 0.0, rng);
  EXPECT_EQ(dense.CountNonZeros(), 64 * 64);
  const HalfMatrix empty = HalfMatrix::RandomSparse(64, 64, 1.0, rng);
  EXPECT_EQ(empty.CountNonZeros(), 0);
}

TEST(MatrixTest, ReferenceGemmIdentity) {
  Rng rng(13);
  const int64_t k = 32;
  HalfMatrix eye(k, k);
  for (int64_t i = 0; i < k; ++i) {
    eye.at(i, i) = Half(1.0f);
  }
  const HalfMatrix x = HalfMatrix::Random(k, 8, rng);
  const FloatMatrix out = ReferenceGemm(eye, x);
  for (int64_t r = 0; r < k; ++r) {
    for (int64_t c = 0; c < 8; ++c) {
      EXPECT_FLOAT_EQ(out.at(r, c), x.at(r, c).ToFloat());
    }
  }
}

TEST(MatrixTest, ReferenceGemmKnownValues) {
  HalfMatrix w(2, 3);
  w.at(0, 0) = Half(1.0f);
  w.at(0, 1) = Half(2.0f);
  w.at(0, 2) = Half(3.0f);
  w.at(1, 0) = Half(-1.0f);
  w.at(1, 2) = Half(0.5f);
  HalfMatrix x(3, 2);
  x.at(0, 0) = Half(4.0f);
  x.at(1, 0) = Half(5.0f);
  x.at(2, 0) = Half(6.0f);
  x.at(0, 1) = Half(1.0f);
  x.at(1, 1) = Half(1.0f);
  x.at(2, 1) = Half(1.0f);
  const FloatMatrix out = ReferenceGemm(w, x);
  EXPECT_FLOAT_EQ(out.at(0, 0), 4 + 10 + 18);
  EXPECT_FLOAT_EQ(out.at(0, 1), 6.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), -4 + 3);
  EXPECT_FLOAT_EQ(out.at(1, 1), -0.5f);
}

TEST(CompareTest, DetectsMismatch) {
  FloatMatrix a(2, 2);
  FloatMatrix b(2, 2);
  a.at(1, 1) = 1.0f;
  const CompareResult res = CompareMatrices(a, b);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.first_bad_row, 1);
  EXPECT_EQ(res.first_bad_col, 1);
}

TEST(CompareTest, AcceptsWithinTolerance) {
  FloatMatrix a(2, 2);
  FloatMatrix b(2, 2);
  a.Fill(100.0f);
  b.Fill(100.05f);
  EXPECT_TRUE(CompareMatrices(a, b, /*rtol=*/1e-3, /*atol=*/1e-2).ok);
}

}  // namespace
}  // namespace spinfer
