#include "src/format/tiled_csl.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace spinfer {
namespace {

bool MatricesEqual(const HalfMatrix& a, const HalfMatrix& b) {
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      if (!(a.at(r, c) == b.at(r, c))) {
        return false;
      }
    }
  }
  return a.rows() == b.rows() && a.cols() == b.cols();
}

class TiledCslRoundtripTest : public ::testing::TestWithParam<double> {};

TEST_P(TiledCslRoundtripTest, EncodeDecodeRoundtrips) {
  Rng rng(41);
  const HalfMatrix w = HalfMatrix::RandomSparse(128, 128, GetParam(), rng);
  const TiledCslMatrix enc = TiledCslMatrix::Encode(w);
  EXPECT_EQ(enc.nnz(), w.CountNonZeros());
  EXPECT_TRUE(MatricesEqual(enc.Decode(), w));
}

INSTANTIATE_TEST_SUITE_P(Sparsities, TiledCslRoundtripTest,
                         ::testing::Values(0.0, 0.4, 0.5, 0.6, 0.95));

TEST(TiledCslTest, NonMultipleDimensionsPad) {
  Rng rng(42);
  const HalfMatrix w = HalfMatrix::RandomSparse(70, 90, 0.5, rng);
  const TiledCslMatrix enc = TiledCslMatrix::Encode(w);
  EXPECT_TRUE(MatricesEqual(enc.Decode(), w));
  EXPECT_EQ(enc.num_tiles(), 2 * 2);  // ceil(70/64) * ceil(90/64)
}

TEST(TiledCslTest, StorageMatchesEq2) {
  Rng rng(43);
  const HalfMatrix w = HalfMatrix::RandomSparse(128, 64, 0.5, rng);
  const TiledCslMatrix enc = TiledCslMatrix::Encode(w);
  // 4B * NNZ + 4B * (NT + 1).
  EXPECT_EQ(enc.StorageBytes(), 4ull * enc.nnz() + 4ull * (enc.num_tiles() + 1));
}

TEST(TiledCslTest, EntryPackingRoundtrips) {
  const Half v(1.5f);
  const uint32_t packed = (static_cast<uint32_t>(v.bits()) << 16) | 1234u;
  EXPECT_EQ(TiledCslMatrix::EntryValue(packed), v);
  EXPECT_EQ(TiledCslMatrix::EntryLocation(packed), 1234u);
}

TEST(TiledCslTest, IndexingOverheadEqualsDataAt16Bit) {
  // The paper's core storage observation: Tiled-CSL spends as many bytes on
  // locations as on values (4B per nonzero vs 2B of payload), so CR < 1
  // below 50% sparsity.
  Rng rng(44);
  const HalfMatrix w = HalfMatrix::RandomSparse(256, 256, 0.4, rng);
  const TiledCslMatrix enc = TiledCslMatrix::Encode(w);
  const double dense_bytes = 2.0 * 256 * 256;
  EXPECT_GT(static_cast<double>(enc.StorageBytes()), dense_bytes);  // CR < 1
}

}  // namespace
}  // namespace spinfer
