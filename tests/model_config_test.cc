#include "src/llm/model_config.h"

#include <gtest/gtest.h>

namespace spinfer {
namespace {

TEST(ModelConfigTest, ParameterCountsNearNominal) {
  // Within 15% of the marketing parameter count (embeddings etc. vary).
  EXPECT_NEAR(static_cast<double>(Opt13B().NumParams()), 13e9, 13e9 * 0.15);
  EXPECT_NEAR(static_cast<double>(Opt30B().NumParams()), 30e9, 30e9 * 0.15);
  EXPECT_NEAR(static_cast<double>(Opt66B().NumParams()), 66e9, 66e9 * 0.15);
  EXPECT_NEAR(static_cast<double>(Llama2_7B().NumParams()), 6.7e9, 6.7e9 * 0.15);
  EXPECT_NEAR(static_cast<double>(Llama2_70B().NumParams()), 69e9, 69e9 * 0.15);
  EXPECT_NEAR(static_cast<double>(Qwen2_7B().NumParams()), 7.6e9, 7.6e9 * 0.15);
  // Mixtral: all experts stored -> ~47B total.
  EXPECT_NEAR(static_cast<double>(Mixtral8x7B().NumParams()), 47e9, 47e9 * 0.15);
}

TEST(ModelConfigTest, LayerShapesOpt) {
  const auto shapes = LayerGemmShapes(Opt13B());
  ASSERT_EQ(shapes.size(), 4u);
  EXPECT_EQ(shapes[0].op, "qkv_proj");
  EXPECT_EQ(shapes[0].m, 3 * 5120);
  EXPECT_EQ(shapes[0].k, 5120);
  EXPECT_EQ(shapes[2].m, 20480);  // fc1
  EXPECT_EQ(shapes[3].k, 20480);  // fc2
}

TEST(ModelConfigTest, LayerShapesGqa) {
  // LLaMA2-70B: 64 heads, 8 KV heads, head_dim 128 -> QKV M = 8192 + 2*1024.
  const auto shapes = LayerGemmShapes(Llama2_70B());
  EXPECT_EQ(shapes[0].m, 8192 + 2 * 1024);
  // Fig. 1 / Fig. 16 use M=28672, K=8192: the LLaMA2-70B FFN down-proj
  // transposed pair; gate_up is (2*28672, 8192).
  EXPECT_EQ(shapes[2].m, 2 * 28672);
  EXPECT_EQ(shapes[2].k, 8192);
  EXPECT_EQ(shapes[3].k, 28672);
}

TEST(ModelConfigTest, MoeActiveExperts) {
  const auto shapes = LayerGemmShapes(Mixtral8x7B());
  // Two active experts double the per-token FFN shape.
  EXPECT_EQ(shapes[2].m, 2 * 2 * 14336);
}

TEST(ModelConfigTest, LookupByName) {
  EXPECT_EQ(ModelByName("opt-13b").hidden, 5120);
  EXPECT_EQ(ModelByName("llama3-8b").kv_heads, 8);
  EXPECT_EQ(AllModels().size(), 12u);
}

TEST(ModelConfigTest, HeadDimDividesHidden) {
  for (const ModelConfig& m : AllModels()) {
    EXPECT_EQ(m.hidden % m.heads, 0) << m.name;
    EXPECT_EQ(m.heads % m.kv_heads, 0) << m.name;
    EXPECT_GT(m.NumParams(), 0) << m.name;
  }
}

}  // namespace
}  // namespace spinfer
