#include "src/core/dual_sparse.h"

#include <gtest/gtest.h>

#include "src/core/cpu_backend.h"
#include "src/numeric/compare.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

// X with whole rows zeroed — the ReLU-induced pattern.
HalfMatrix RowSparseX(int64_t k, int64_t n, double row_sparsity, Rng& rng) {
  HalfMatrix x = HalfMatrix::Random(k, n, rng, 0.5f);
  for (int64_t r = 0; r < k; ++r) {
    if (rng.Bernoulli(row_sparsity)) {
      for (int64_t c = 0; c < n; ++c) {
        x.at(r, c) = Half(0.0f);
      }
    }
  }
  return x;
}

TEST(DualSparseTest, ActiveRowsDetection) {
  Rng rng(231);
  const HalfMatrix x = RowSparseX(64, 8, 0.5, rng);
  const std::vector<bool> active = ActiveRows(x);
  for (int64_t r = 0; r < 64; ++r) {
    bool any = false;
    for (int64_t c = 0; c < 8; ++c) {
      any = any || !x.at(r, c).IsZero();
    }
    EXPECT_EQ(active[r], any);
  }
}

TEST(DualSparseTest, MatchesDenseActivationPath) {
  Rng rng(232);
  const HalfMatrix w = HalfMatrix::RandomSparse(128, 128, 0.6, rng);
  const HalfMatrix x = RowSparseX(128, 16, 0.7, rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  const FloatMatrix skip = CpuDualSparseSpmm(enc, x, nullptr);
  const FloatMatrix full = CpuSpmm(enc, x);
  // Exact: the skipped products were zero contributions.
  EXPECT_TRUE(CompareMatrices(skip, full, 0.0, 0.0).ok);
  EXPECT_TRUE(CompareMatrices(skip, ReferenceGemm(w, x), 2e-3, 5e-2).ok);
}

TEST(DualSparseTest, FlopsScaleWithActivationSparsity) {
  Rng rng(233);
  const HalfMatrix w = HalfMatrix::RandomSparse(128, 128, 0.5, rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  PerfCounters dense_c;
  CpuDualSparseSpmm(enc, HalfMatrix::Random(128, 16, rng, 0.5f), &dense_c);
  PerfCounters sparse_c;
  CpuDualSparseSpmm(enc, RowSparseX(128, 16, 0.8, rng), &sparse_c);
  // ~80% of input rows inactive -> ~20% of FLOPs survive (iid mask).
  EXPECT_LT(static_cast<double>(sparse_c.flops),
            0.35 * static_cast<double>(dense_c.flops));
  EXPECT_GT(sparse_c.flops, 0u);
}

TEST(DualSparseTest, FullyInactiveInputGivesZeroOutput) {
  Rng rng(234);
  const HalfMatrix w = HalfMatrix::RandomSparse(64, 64, 0.5, rng);
  HalfMatrix x(64, 8);  // all zero
  const FloatMatrix out = CpuDualSparseSpmm(TcaBmeMatrix::Encode(w), x, nullptr);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.data()[i], 0.0f);
  }
}

TEST(DualSparseTest, EstimateImprovesWithActivationSparsity) {
  const DeviceSpec dev = Rtx4090();
  SpmmProblem p;
  p.m = 8192;
  p.k = 8192;
  p.n = 16;
  p.sparsity = 0.6;
  const double base = EstimateDualSparseTime(p, 0.0, 64, dev).total_us;
  const double mid = EstimateDualSparseTime(p, 0.5, 64, dev).total_us;
  const double high = EstimateDualSparseTime(p, 0.9, 64, dev).total_us;
  EXPECT_GT(base, mid);
  EXPECT_GT(mid, high);
}

TEST(DualSparseTest, FineGrainedSparsityCannotSkipTiles) {
  // With neuron groups much smaller than the GroupTile width, whole-tile
  // skips become improbable and the benefit collapses — the reason the
  // paper calls for *adaptive* encodings for activation sparsity (§6).
  const DeviceSpec dev = Rtx4090();
  SpmmProblem p;
  p.m = 8192;
  p.k = 8192;
  p.n = 16;
  p.sparsity = 0.6;
  const double grouped = EstimateDualSparseTime(p, 0.8, 64, dev).total_us;
  const double scattered = EstimateDualSparseTime(p, 0.8, 1, dev).total_us;
  EXPECT_LT(grouped, scattered);
}

}  // namespace
}  // namespace spinfer
