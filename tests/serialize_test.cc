#include "src/format/serialize.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "src/util/crc32.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

bool MatricesEqual(const HalfMatrix& a, const HalfMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return false;
  }
  for (int64_t i = 0; i < a.size(); ++i) {
    if (a.data()[i].bits() != b.data()[i].bits()) {
      return false;
    }
  }
  return true;
}

TEST(Crc32Test, KnownVectors) {
  // The classic IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, SeedChainsRegions) {
  const char data[] = "hello world";
  const uint32_t whole = Crc32(data, 11);
  const uint32_t part = Crc32(data + 5, 6, Crc32(data, 5));
  EXPECT_EQ(whole, part);
}

TEST(SerializeTest, MatrixRoundtrip) {
  Rng rng(171);
  const HalfMatrix w = HalfMatrix::RandomSparse(128, 192, 0.6, rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  const std::vector<uint8_t> bytes = SerializeTcaBme(enc);
  std::string error;
  const auto back = DeserializeTcaBme(bytes, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->rows(), enc.rows());
  EXPECT_EQ(back->nnz(), enc.nnz());
  EXPECT_EQ(back->StorageBytes(), enc.StorageBytes());
  EXPECT_TRUE(MatricesEqual(back->Decode(), w));
}

TEST(SerializeTest, NonDefaultGeometryRoundtrips) {
  Rng rng(172);
  TcaBmeConfig cfg;
  cfg.gt_rows = 32;
  cfg.gt_cols = 128;
  const HalfMatrix w = HalfMatrix::RandomSparse(96, 256, 0.4, rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w, cfg);
  std::string error;
  const auto back = DeserializeTcaBme(SerializeTcaBme(enc), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->config().gt_cols, 128);
  EXPECT_TRUE(MatricesEqual(back->Decode(), w));
}

TEST(SerializeTest, DetectsTruncation) {
  Rng rng(173);
  const TcaBmeMatrix enc =
      TcaBmeMatrix::Encode(HalfMatrix::RandomSparse(64, 64, 0.5, rng));
  std::vector<uint8_t> bytes = SerializeTcaBme(enc);
  bytes.resize(bytes.size() / 2);
  std::string error;
  EXPECT_FALSE(DeserializeTcaBme(bytes, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(SerializeTest, DetectsBitFlipAnywhere) {
  // Failure injection: a single flipped bit anywhere must be caught by the
  // CRC (or by structural validation), never returned as a valid matrix
  // with silently different *structure*. (Flips inside the FP16 payload are
  // caught by the CRC.)
  Rng rng(174);
  const TcaBmeMatrix enc =
      TcaBmeMatrix::Encode(HalfMatrix::RandomSparse(32, 32, 0.5, rng));
  const std::vector<uint8_t> good = SerializeTcaBme(enc);
  for (size_t trial = 0; trial < 64; ++trial) {
    std::vector<uint8_t> bad = good;
    const size_t byte = rng.Below(bad.size());
    bad[byte] ^= static_cast<uint8_t>(1u << rng.Below(8));
    std::string error;
    EXPECT_FALSE(DeserializeTcaBme(bad, &error).has_value())
        << "flip at byte " << byte << " accepted";
  }
}

TEST(SerializeTest, RejectsBadMagic) {
  Rng rng(175);
  const TcaBmeMatrix enc =
      TcaBmeMatrix::Encode(HalfMatrix::RandomSparse(32, 32, 0.5, rng));
  std::vector<uint8_t> bytes = SerializeTcaBme(enc);
  bytes[0] ^= 0xff;
  std::string error;
  EXPECT_FALSE(DeserializeTcaBme(bytes, &error).has_value());
}

TEST(SerializeTest, FileRoundtrip) {
  Rng rng(176);
  const HalfMatrix w = HalfMatrix::RandomSparse(64, 64, 0.5, rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  const std::string path =
      (std::filesystem::temp_directory_path() / "spinfer_serialize_test.tcbm").string();
  std::string error;
  ASSERT_TRUE(SaveTcaBme(path, enc, &error)) << error;
  const auto back = LoadTcaBme(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_TRUE(MatricesEqual(back->Decode(), w));
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadMissingFileFailsGracefully) {
  std::string error;
  EXPECT_FALSE(LoadTcaBme("/nonexistent/path/weights.tcbm", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(SerializeTest, BundleRoundtrip) {
  Rng rng(177);
  WeightBundle bundle;
  bundle.Add("layer0.qkv", TcaBmeMatrix::Encode(HalfMatrix::RandomSparse(64, 32, 0.5, rng)));
  bundle.Add("layer0.out", TcaBmeMatrix::Encode(HalfMatrix::RandomSparse(32, 32, 0.6, rng)));
  bundle.Add("layer1.fc1", TcaBmeMatrix::Encode(HalfMatrix::RandomSparse(128, 32, 0.4, rng)));
  EXPECT_EQ(bundle.size(), 3u);

  std::string error;
  const auto back = WeightBundle::Deserialize(bundle.Serialize(), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->size(), 3u);
  EXPECT_EQ(back->Names(), bundle.Names());
  EXPECT_EQ(back->TotalStorageBytes(), bundle.TotalStorageBytes());
  ASSERT_NE(back->Find("layer0.qkv"), nullptr);
  EXPECT_EQ(back->Find("layer0.qkv")->nnz(), bundle.Find("layer0.qkv")->nnz());
  EXPECT_EQ(back->Find("missing"), nullptr);
}

TEST(SerializeTest, BundleDetectsCorruption) {
  Rng rng(178);
  WeightBundle bundle;
  bundle.Add("w", TcaBmeMatrix::Encode(HalfMatrix::RandomSparse(32, 32, 0.5, rng)));
  std::vector<uint8_t> bytes = bundle.Serialize();
  bytes[bytes.size() / 2] ^= 0x10;
  std::string error;
  EXPECT_FALSE(WeightBundle::Deserialize(bytes, &error).has_value());
}

TEST(FromPartsTest, RejectsInconsistentParts) {
  Rng rng(179);
  const TcaBmeMatrix good =
      TcaBmeMatrix::Encode(HalfMatrix::RandomSparse(32, 32, 0.5, rng));
  std::string error;

  // Wrong bitmap count.
  auto bitmaps = good.bitmaps();
  bitmaps.pop_back();
  EXPECT_FALSE(TcaBmeMatrix::FromParts(32, 32, good.config(), good.gtile_offsets(),
                                       bitmaps, good.values(), &error)
                   .has_value());

  // Bitmap popcount exceeding the segment.
  bitmaps = good.bitmaps();
  bitmaps[0] = ~0ull;
  EXPECT_FALSE(TcaBmeMatrix::FromParts(32, 32, good.config(), good.gtile_offsets(),
                                       bitmaps, good.values(), &error)
                   .has_value());

  // Non-monotone offsets.
  auto offsets = good.gtile_offsets();
  if (offsets.size() >= 3) {
    std::swap(offsets[0], offsets[1]);
    EXPECT_FALSE(TcaBmeMatrix::FromParts(32, 32, good.config(), offsets,
                                         good.bitmaps(), good.values(), &error)
                     .has_value());
  }

  // The unmodified parts reassemble fine.
  const auto ok = TcaBmeMatrix::FromParts(32, 32, good.config(), good.gtile_offsets(),
                                          good.bitmaps(), good.values(), &error);
  ASSERT_TRUE(ok.has_value()) << error;
  EXPECT_EQ(ok->nnz(), good.nnz());
}

}  // namespace
}  // namespace spinfer
