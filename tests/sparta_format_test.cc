#include "src/format/sparta_format.h"

#include <gtest/gtest.h>

#include "src/format/storage_model.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

bool MatricesEqual(const HalfMatrix& a, const HalfMatrix& b) {
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      if (!(a.at(r, c) == b.at(r, c))) {
        return false;
      }
    }
  }
  return a.rows() == b.rows() && a.cols() == b.cols();
}

class SpartaRoundtripTest : public ::testing::TestWithParam<double> {};

TEST_P(SpartaRoundtripTest, EncodeDecodeRoundtrips) {
  Rng rng(51);
  const HalfMatrix w = HalfMatrix::RandomSparse(64, 96, GetParam(), rng);
  const SpartaMatrix enc = SpartaMatrix::Encode(w);
  EXPECT_TRUE(MatricesEqual(enc.Decode(), w));
  EXPECT_EQ(enc.structured_nnz() + enc.residual_nnz(), w.CountNonZeros());
}

INSTANTIATE_TEST_SUITE_P(Sparsities, SpartaRoundtripTest,
                         ::testing::Values(0.0, 0.3, 0.5, 0.7, 1.0));

TEST(SpartaTest, DenseMatrixPutsHalfInResidual) {
  Rng rng(52);
  const HalfMatrix w = HalfMatrix::RandomSparse(32, 32, 0.0, rng);
  const SpartaMatrix enc = SpartaMatrix::Encode(w);
  // Every 4-group has 4 nonzeros: 2 structured + 2 residual.
  EXPECT_EQ(enc.structured_nnz(), 32 * 32 / 2);
  EXPECT_EQ(enc.residual_nnz(), 32 * 32 / 2);
}

TEST(SpartaTest, TwoFourPatternNeedsNoResidual) {
  // A matrix already in 2:4 form fits entirely in the structured part.
  HalfMatrix w(8, 16);
  for (int64_t r = 0; r < 8; ++r) {
    for (int64_t g = 0; g < 4; ++g) {
      w.at(r, g * 4 + 1) = Half(1.0f);
      w.at(r, g * 4 + 3) = Half(2.0f);
    }
  }
  const SpartaMatrix enc = SpartaMatrix::Encode(w);
  EXPECT_EQ(enc.residual_nnz(), 0);
  EXPECT_EQ(enc.structured_nnz(), 8 * 4 * 2);
  EXPECT_TRUE(MatricesEqual(enc.Decode(), w));
}

TEST(SpartaTest, ResidualCountMatchesEq4Expectation) {
  // Eq. 4 gives the expected residual NNZ under an i.i.d. mask; the encoder
  // should land within a few percent at this size.
  Rng rng(53);
  const double s = 0.5;
  const HalfMatrix w = HalfMatrix::RandomSparse(512, 512, s, rng);
  const SpartaMatrix enc = SpartaMatrix::Encode(w);
  const double expected = SpartaExpectedCsrNnz(512, 512, s);
  EXPECT_NEAR(static_cast<double>(enc.residual_nnz()), expected, expected * 0.08);
}

TEST(SpartaTest, NonMultipleOfFourColumns) {
  Rng rng(54);
  const HalfMatrix w = HalfMatrix::RandomSparse(16, 30, 0.5, rng);
  const SpartaMatrix enc = SpartaMatrix::Encode(w);
  EXPECT_TRUE(MatricesEqual(enc.Decode(), w));
}

}  // namespace
}  // namespace spinfer
