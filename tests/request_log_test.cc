// Per-request timeline (obs::RequestLog) + its ServingEngine wiring.
//
// Load-bearing claims, each enforced here:
//   * Serialization is byte-exact: ToJsonl and the Chrome async-span export
//     are pure functions of the event list, goldened against literal strings
//     under FakeClock.
//   * The engine's timeline is deterministic: with a FakeClock for wall
//     stamps, the JSONL, the flight-recorder dump, and the report are
//     byte-identical at 1/2/8 threads on a workload exercising chunked
//     prefill, prefix cache, cancellation, and rejection.
//   * Observability is free of observable effect: enabling every obs knob
//     changes neither per-request token streams nor one byte of
//     ExecServingReport::ToString.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/gpusim/device_spec.h"
#include "src/llm/serving_engine.h"
#include "src/llm/tiny_transformer.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/clock.h"
#include "src/obs/request_log.h"
#include "src/pruning/magnitude.h"
#include "src/util/thread_pool.h"

namespace spinfer {
namespace {

using obs::RequestEventKind;

TEST(RequestLogTest, JsonlGoldenIsByteExact) {
  obs::FakeClock wall(1000);
  obs::RequestLog log(&wall);
  log.Append(0, RequestEventKind::kSubmitted, -1, 0.0,
             {{"prompt_tokens", 7}, {"max_new", 3}});
  wall.AdvanceNs(500);
  log.Append(0, RequestEventKind::kAdmitted, 0, 0.0015,
             {{"fresh_blocks", 2}, {"shared_blocks", 1}});
  log.Append(0, RequestEventKind::kDecodeIteration, 1, 0.002,
             {{"token", 42}, {"generated", 1}});
  log.Append(0, RequestEventKind::kFinished, 2, 0.0025,
             {{"generated", 2}, {"eos", 0}});

  const std::string expected =
      "{\"req\":0,\"ev\":\"submitted\",\"iter\":-1,\"vt_ns\":0,"
      "\"wall_ns\":1000,\"prompt_tokens\":7,\"max_new\":3}\n"
      "{\"req\":0,\"ev\":\"admitted\",\"iter\":0,\"vt_ns\":1500000,"
      "\"wall_ns\":1500,\"fresh_blocks\":2,\"shared_blocks\":1}\n"
      "{\"req\":0,\"ev\":\"decode\",\"iter\":1,\"vt_ns\":2000000,"
      "\"wall_ns\":1500,\"token\":42,\"generated\":1}\n"
      "{\"req\":0,\"ev\":\"finished\",\"iter\":2,\"vt_ns\":2500000,"
      "\"wall_ns\":1500,\"generated\":2,\"eos\":0}\n";
  EXPECT_EQ(log.ToJsonl(), expected);

  // WriteJsonl emits the same bytes.
  const std::string path = testing::TempDir() + "/request_log_golden.jsonl";
  ASSERT_TRUE(log.WriteJsonl(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string read_back(expected.size() + 64, '\0');
  const size_t n = std::fread(read_back.data(), 1, read_back.size(), f);
  std::fclose(f);
  read_back.resize(n);
  EXPECT_EQ(read_back, expected);
}

TEST(RequestLogTest, ChromeAsyncSpanGoldenIsByteExact) {
  obs::FakeClock wall(0);
  obs::RequestLog log(&wall);
  log.Append(0, RequestEventKind::kSubmitted, -1, 0.0);
  log.Append(0, RequestEventKind::kAdmitted, 0, 0.0015);
  log.Append(0, RequestEventKind::kFinished, 2, 0.0025,
             {{"generated", 2}, {"eos", 0}});

  const std::vector<obs::AsyncSpan> spans = log.ChromeAsyncSpans();
  ASSERT_EQ(spans.size(), 3u);
  const std::string json = obs::ChromeTraceWriter::ToJson({}, spans);
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"ph\":\"b\",\"pid\":0,\"tid\":0,\"id\":\"0\",\"ts\":0.000,"
      "\"name\":\"request/finished\",\"cat\":\"srv.request\","
      "\"args\":{\"generated\":2,\"eos\":0}},"
      "{\"ph\":\"e\",\"pid\":0,\"tid\":0,\"id\":\"0\",\"ts\":2500.000,"
      "\"name\":\"request/finished\",\"cat\":\"srv.request\"},"
      "{\"ph\":\"b\",\"pid\":0,\"tid\":0,\"id\":\"0\",\"ts\":0.000,"
      "\"name\":\"queued\",\"cat\":\"srv.request\"},"
      "{\"ph\":\"e\",\"pid\":0,\"tid\":0,\"id\":\"0\",\"ts\":1500.000,"
      "\"name\":\"queued\",\"cat\":\"srv.request\"},"
      "{\"ph\":\"b\",\"pid\":0,\"tid\":0,\"id\":\"0\",\"ts\":1500.000,"
      "\"name\":\"exec\",\"cat\":\"srv.request\"},"
      "{\"ph\":\"e\",\"pid\":0,\"tid\":0,\"id\":\"0\",\"ts\":2500.000,"
      "\"name\":\"exec\",\"cat\":\"srv.request\"}"
      "]}\n";
  EXPECT_EQ(json, expected);
}

TEST(RequestLogTest, RejectedAndUnadmittedRequestsGetRequestSpanOnly) {
  obs::FakeClock wall(0);
  obs::RequestLog log(&wall);
  log.Append(4, RequestEventKind::kSubmitted, -1, 0.0);
  log.Append(4, RequestEventKind::kRejected, 0, 0.001);
  log.Append(9, RequestEventKind::kSubmitted, -1, 0.0);  // never terminal
  const std::vector<obs::AsyncSpan> spans = log.ChromeAsyncSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "request/rejected");
  EXPECT_EQ(spans[0].id, 4u);
}

// ---------------------------------------------------------------------------
// Engine integration.

TinyTransformer MakeModel() {
  TinyConfig cfg;
  cfg.max_seq = 64;
  TinyTransformer model(cfg, 7);
  model.PruneWeights(MagnitudePruner(), 0.6);
  return model;
}

ServingEngineConfig ObsEngineConfig(const TinyConfig& model_cfg,
                                    obs::Clock* wall) {
  ServingEngineConfig cfg;
  cfg.max_batch = 4;
  cfg.kv_block_tokens = 8;
  cfg.kv_num_blocks = 64;
  cfg.prefill_chunk_tokens = 8;
  cfg.enable_prefix_cache = true;
  cfg.cost.model = ModelConfigFor(model_cfg);
  cfg.cost.framework = Framework::kSpInfer;
  cfg.cost.device = Rtx4090();
  cfg.cost.sparsity = 0.6;
  cfg.obs.request_timeline = true;
  cfg.obs.flight_recorder_iters = 16;
  cfg.obs.slo_tracker = true;
  cfg.obs.wall_clock = wall;
  return cfg;
}

PoissonTraffic Traffic() {
  PoissonTraffic t;
  t.arrival_rate_rps = 30.0;
  t.horizon_s = 1.0;
  t.seed = 3;
  t.prompt_len_min = 4;
  t.prompt_len_max = 40;
  t.max_new_min = 4;
  t.max_new_max = 10;
  return t;
}

struct ObsRun {
  std::string report;
  std::string jsonl;
  std::string flight_dump;
  std::vector<std::vector<int32_t>> streams;
};

ObsRun RunObsWorkload(const TinyTransformer& model, bool obs_on) {
  obs::FakeClock wall(12345);
  ServingEngineConfig cfg = ObsEngineConfig(model.config(), &wall);
  if (!obs_on) {
    cfg.obs = ServingObsConfig{};
  }
  ServingEngine engine(&model, cfg);
  engine.InjectPoissonArrivals(Traffic());
  // An unservable prompt (overflows max_seq) exercises the rejected path...
  engine.Submit(std::vector<int32_t>(100, 1), 8, 0.05);
  // ...and cancels hit both a queued and (likely) a running victim.
  engine.Cancel(2, 0.0);
  engine.Cancel(5, 0.2);
  const ExecServingReport report = engine.Run();

  ObsRun out;
  out.report = report.ToString();
  for (const RequestRecord& r : engine.results()) {
    out.streams.push_back(r.generated);
  }
  if (obs_on) {
    EXPECT_NE(engine.request_log(), nullptr);
    EXPECT_NE(engine.flight_recorder(), nullptr);
    EXPECT_NE(engine.slo_tracker(), nullptr);
    out.jsonl = engine.request_log()->ToJsonl();
    out.flight_dump = engine.flight_recorder()->Dump();
  } else {
    EXPECT_EQ(engine.request_log(), nullptr);
    EXPECT_EQ(engine.flight_recorder(), nullptr);
    EXPECT_EQ(engine.slo_tracker(), nullptr);
  }
  return out;
}

TEST(RequestLogEngineTest, TimelineAndFlightDumpByteStableAcrossThreads) {
  const TinyTransformer model = MakeModel();
  ThreadPool::SetGlobalThreads(1);
  const ObsRun baseline = RunObsWorkload(model, /*obs_on=*/true);

  // The workload really exercised every event kind.
  for (const char* needle :
       {"\"ev\":\"submitted\"", "\"ev\":\"admitted\"",
        "\"ev\":\"prefix_match\"", "\"ev\":\"chunk_scheduled\"",
        "\"ev\":\"decode\"", "\"ev\":\"finished\"", "\"ev\":\"rejected\"",
        "\"ev\":\"cancelled\""}) {
    EXPECT_NE(baseline.jsonl.find(needle), std::string::npos) << needle;
  }
  EXPECT_NE(baseline.flight_dump.find("[flight-recorder]"), std::string::npos);

  for (int threads : {2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    const ObsRun run = RunObsWorkload(model, /*obs_on=*/true);
    EXPECT_EQ(run.report, baseline.report) << "threads=" << threads;
    EXPECT_EQ(run.jsonl, baseline.jsonl) << "threads=" << threads;
    EXPECT_EQ(run.flight_dump, baseline.flight_dump) << "threads=" << threads;
    EXPECT_EQ(run.streams, baseline.streams) << "threads=" << threads;
  }
  ThreadPool::SetGlobalThreads(0);
}

TEST(RequestLogEngineTest, ObservabilityDoesNotPerturbStreamsOrReport) {
  const TinyTransformer model = MakeModel();
  ThreadPool::SetGlobalThreads(1);
  const ObsRun with_obs = RunObsWorkload(model, /*obs_on=*/true);
  const ObsRun without_obs = RunObsWorkload(model, /*obs_on=*/false);
  EXPECT_EQ(with_obs.report, without_obs.report);
  EXPECT_EQ(with_obs.streams, without_obs.streams);
  ThreadPool::SetGlobalThreads(0);
}

}  // namespace
}  // namespace spinfer
