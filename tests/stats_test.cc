#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace spinfer {
namespace {

// The small-sample case that motivated replacing the truncating rank index:
// with 10 samples 1..10, floor(p * (n-1)) reported p50 = 5, p95 = 9, and —
// the real bug — p99 = 9, the same sample as p95 (the 90th-percentile
// element of the sorted list). Interpolation separates the three and makes
// p99 respond to the maximum.
TEST(StatsTest, TenSamplePercentilesInterpolateBetweenRanks) {
  std::vector<double> v;
  for (int i = 1; i <= 10; ++i) {
    v.push_back(static_cast<double>(i));
  }
  const LatencySummary s = SummarizeLatenciesMs(v);
  EXPECT_DOUBLE_EQ(s.mean_ms, 5.5);
  EXPECT_DOUBLE_EQ(s.p50_ms, 5.5);   // rank 4.5: between 5 and 6 (was 5)
  EXPECT_DOUBLE_EQ(s.p95_ms, 9.55);  // rank 8.55: between 9 and 10 (was 9)
  EXPECT_DOUBLE_EQ(s.p99_ms, 9.91);  // rank 8.91: between 9 and 10 (was 9)
  EXPECT_LT(s.p95_ms, s.p99_ms);     // the old definition collapsed these
}

TEST(StatsTest, EmptyInputReturnsAllZeros) {
  const LatencySummary s = SummarizeLatenciesMs({});
  EXPECT_EQ(s.mean_ms, 0.0);
  EXPECT_EQ(s.p50_ms, 0.0);
  EXPECT_EQ(s.p95_ms, 0.0);
  EXPECT_EQ(s.p99_ms, 0.0);
}

TEST(StatsTest, SingleSampleIsEveryPercentile) {
  const LatencySummary s = SummarizeLatenciesMs({42.0});
  EXPECT_DOUBLE_EQ(s.mean_ms, 42.0);
  EXPECT_DOUBLE_EQ(s.p50_ms, 42.0);
  EXPECT_DOUBLE_EQ(s.p95_ms, 42.0);
  EXPECT_DOUBLE_EQ(s.p99_ms, 42.0);
}

TEST(StatsTest, UnsortedInputIsSortedInternally) {
  const LatencySummary s = SummarizeLatenciesMs({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.p50_ms, 2.0);  // rank 1.0: exactly the middle sample
  EXPECT_DOUBLE_EQ(s.mean_ms, 2.0);
}

TEST(StatsTest, ExactIntegerRankNeedsNoInterpolation) {
  // n = 101 puts p50/p99 exactly on sample ranks; interpolation must then
  // reproduce the nearest-rank answer bit for bit (frac == 0).
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) {
    v.push_back(static_cast<double>(i));
  }
  const LatencySummary s = SummarizeLatenciesMs(v);
  EXPECT_DOUBLE_EQ(s.p50_ms, 50.0);
  EXPECT_DOUBLE_EQ(s.p95_ms, 95.0);
  EXPECT_DOUBLE_EQ(s.p99_ms, 99.0);
}

TEST(StatsTest, PercentilesAreMonotoneInP) {
  const std::vector<double> v = {5.0, 80.0, 12.0, 7.0, 100.0, 3.0, 50.0};
  const LatencySummary s = SummarizeLatenciesMs(v);
  EXPECT_LE(s.p50_ms, s.p95_ms);
  EXPECT_LE(s.p95_ms, s.p99_ms);
  EXPECT_LE(s.p99_ms, 100.0);
}

}  // namespace
}  // namespace spinfer
