// Regression coverage for ragged shapes: M or K not a multiple of the
// GroupTile geometry must pad, never drop rows or columns, across the
// Run/RunEncoded/Estimate paths — and a weight matrix encoded with a
// geometry that cannot cover the padded shape must trip the kernel's grid
// guard instead of silently computing a partial product.
#include "src/core/spinfer_kernel.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/numeric/compare.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

struct RaggedCase {
  int64_t m;
  int64_t k;
  int64_t n;
  int split_k;
};

class RaggedTileTest : public ::testing::TestWithParam<RaggedCase> {};

TEST_P(RaggedTileTest, RunMatchesReferenceOnEveryRow) {
  const RaggedCase& tc = GetParam();
  Rng rng(500 + static_cast<uint64_t>(tc.m + tc.k * 2 + tc.n * 3 + tc.split_k));
  const HalfMatrix w = HalfMatrix::RandomSparse(tc.m, tc.k, 0.55, rng);
  const HalfMatrix x = HalfMatrix::Random(tc.k, tc.n, rng, 0.5f);

  SpInferKernelConfig cfg;
  cfg.split_k = tc.split_k;
  const SpInferSpmmKernel kernel(cfg);
  const FloatMatrix got = kernel.Run(w, x, nullptr);
  const FloatMatrix want = ReferenceGemm(w, x);
  ASSERT_EQ(got.rows(), tc.m);
  ASSERT_EQ(got.cols(), tc.n);
  const CompareResult cmp = CompareMatrices(got, want, 2e-3, 5e-2);
  EXPECT_TRUE(cmp.ok) << cmp.ToString();
  // The final (ragged) row must carry real values, not padding zeros.
  double last_row_ref = 0.0;
  for (int64_t c = 0; c < tc.n; ++c) {
    last_row_ref += std::fabs(want.at(tc.m - 1, c));
  }
  if (last_row_ref > 0.0) {
    double last_row_got = 0.0;
    for (int64_t c = 0; c < tc.n; ++c) {
      last_row_got += std::fabs(got.at(tc.m - 1, c));
    }
    EXPECT_GT(last_row_got, 0.0) << "ragged final row dropped";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RaggedTileTest,
    ::testing::Values(RaggedCase{65, 64, 16, 1},     // M one past a tile
                      RaggedCase{64, 65, 16, 1},     // K one past a tile
                      RaggedCase{63, 63, 16, 1},     // both one short
                      RaggedCase{100, 100, 16, 1},   // mid-tile both
                      RaggedCase{100, 200, 8, 2},    // ragged + split-K
                      RaggedCase{130, 190, 7, 3},    // everything ragged
                      RaggedCase{1, 1, 1, 1}));      // degenerate minimum

TEST(RaggedTileTest, EncodedPathAgreesWithDirectRun) {
  Rng rng(510);
  const HalfMatrix w = HalfMatrix::RandomSparse(90, 150, 0.6, rng);
  const HalfMatrix x = HalfMatrix::Random(150, 12, rng, 0.5f);
  const SpInferSpmmKernel kernel;
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  PerfCounters c1;
  PerfCounters c2;
  const FloatMatrix direct = kernel.Run(w, x, &c1);
  const FloatMatrix encoded = kernel.RunEncoded(enc, x, &c2);
  ASSERT_EQ(direct.rows(), encoded.rows());
  ASSERT_EQ(direct.cols(), encoded.cols());
  for (int64_t r = 0; r < direct.rows(); ++r) {
    for (int64_t c = 0; c < direct.cols(); ++c) {
      ASSERT_EQ(direct.at(r, c), encoded.at(r, c)) << r << "," << c;
    }
  }
  EXPECT_TRUE(c1 == c2);
}

TEST(RaggedTileTest, EstimateAgreesWithFunctionalCountsOnRaggedShape) {
  Rng rng(511);
  const int64_t m = 100;
  const int64_t k = 170;
  const int64_t n = 12;
  const HalfMatrix w = HalfMatrix::RandomSparse(m, k, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(k, n, rng, 0.5f);
  SpInferKernelConfig cfg;
  cfg.split_k = 2;
  const SpInferSpmmKernel kernel(cfg);
  PerfCounters run;
  kernel.Run(w, x, &run);
  SpmmProblem p;
  p.m = m;
  p.k = k;
  p.n = n;
  p.sparsity = 0.5;
  p.nnz = w.CountNonZeros();
  const KernelEstimate est = kernel.Estimate(p, Rtx4090());
  // The estimator must use the same padded grid as the functional kernel:
  // exact agreement on the instruction mix, even off tile boundaries.
  EXPECT_EQ(est.counters.mma_instrs, run.mma_instrs);
  EXPECT_EQ(est.counters.flops, run.flops);
  EXPECT_EQ(est.counters.popc_ops, run.popc_ops);
  EXPECT_EQ(est.counters.lds_instrs, run.lds_instrs);
  EXPECT_EQ(est.counters.ldsm_instrs, run.ldsm_instrs);
  EXPECT_EQ(est.counters.ldg_instrs, run.ldg_instrs);
  EXPECT_EQ(est.counters.dram_bytes_written, run.dram_bytes_written);
}

TEST(RaggedTileDeathTest, MismatchedEncodingTripsGridGuard) {
  // Encode with 64x64 GroupTiles, then run with a kernel configured for a
  // finer 16x16 geometry: the encoded grid cannot be reinterpreted, and the
  // kernel must refuse instead of reading tiles at the wrong stride.
  Rng rng(512);
  const HalfMatrix w = HalfMatrix::RandomSparse(128, 128, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(128, 8, rng, 0.5f);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);  // default 64x64 tiles

  SpInferKernelConfig fine;
  fine.format.gt_rows = 16;
  fine.format.gt_cols = 16;
  const SpInferSpmmKernel kernel(fine);
  EXPECT_DEATH(kernel.RunEncoded(enc, x, nullptr), "");
}

}  // namespace
}  // namespace spinfer
